// CGMT pipeline tests: program execution correctness, branch handling,
// store queue behaviour, context switching on misses and multithreaded
// completion.
#include <gtest/gtest.h>

#include "cpu/banked_manager.hpp"
#include "cpu/cgmt_core.hpp"
#include "core/virec_manager.hpp"
#include "kasm/assembler.hpp"

namespace virec::cpu {
namespace {

class CgmtTest : public ::testing::Test {
 protected:
  void build(const std::string& source, u32 threads = 1) {
    program = kasm::assemble(source);
    mem::MemSystemConfig mc;
    ms = std::make_unique<mem::MemorySystem>(mc);
    env = CoreEnv{.core_id = 0, .num_threads = threads, .ms = ms.get()};
    manager = std::make_unique<BankedManager>(env);
    CgmtCoreConfig config;
    config.num_threads = threads;
    core = std::make_unique<CgmtCore>(config, env, *manager, program);
  }

  // Seed a thread's *offloaded* context: initial register values live
  // in the reserved backing region and are picked up by
  // on_thread_start when the thread is first scheduled.
  void set_reg(int tid, int reg, u64 value) {
    ms->memory().write_u64(
        ms->reg_addr(0, static_cast<u32>(tid), static_cast<u32>(reg)), value);
  }
  u64 reg(int tid, int r) {
    return manager->read_reg(tid, static_cast<isa::RegId>(r));
  }

  kasm::Program program;
  std::unique_ptr<mem::MemorySystem> ms;
  CoreEnv env;
  std::unique_ptr<ContextManager> manager;
  std::unique_ptr<CgmtCore> core;
};

TEST_F(CgmtTest, StraightLineArithmetic) {
  build(R"(
    mov x0, #6
    mov x1, #7
    mul x2, x0, x1
    halt
  )");
  core->start_thread(0);
  core->run();
  EXPECT_EQ(reg(0, 2), 42u);
  EXPECT_EQ(core->instructions(), 4u);
  EXPECT_TRUE(core->done());
}

TEST_F(CgmtTest, PipelineReachesHighIpcOnAluCode) {
  // ALU-only loop body: after icache warm-up the single-issue pipeline
  // should stream close to 1 IPC (BTFN predicts the loop branch).
  std::string source = "mov x0, #500\nmov x1, #0\nloop:\n";
  for (int i = 0; i < 8; ++i) source += "add x1, x1, #1\n";
  source += "sub x0, x0, #1\ncbnz x0, loop\nhalt\n";
  build(source);
  core->start_thread(0);
  core->run();
  EXPECT_EQ(reg(0, 1), 4000u);
  EXPECT_GT(core->ipc(), 0.8);
}

TEST_F(CgmtTest, CountedLoopExecutesExactly) {
  build(R"(
    mov x0, #10
    mov x1, #0
    loop:
      add x1, x1, #2
      sub x0, x0, #1
      cbnz x0, loop
    halt
  )");
  core->start_thread(0);
  core->run();
  EXPECT_EQ(reg(0, 1), 20u);
  EXPECT_EQ(reg(0, 0), 0u);
}

TEST_F(CgmtTest, BackwardBranchesArePredicted) {
  build(R"(
    mov x0, #50
    loop:
      sub x0, x0, #1
      cbnz x0, loop
    halt
  )");
  core->start_thread(0);
  core->run();
  // BTFN: only the final not-taken iteration mispredicts.
  EXPECT_LE(core->stats().get("mispredicts"), 2.0);
}

TEST_F(CgmtTest, ConditionalBranchSemantics) {
  build(R"(
    mov x0, #5
    cmp x0, #5
    b.ne not_taken
    mov x1, #111
    b end
    not_taken:
    mov x1, #222
    end: halt
  )");
  core->start_thread(0);
  core->run();
  EXPECT_EQ(reg(0, 1), 111u);
}

TEST_F(CgmtTest, ForwardTakenBranchMispredictsOnce) {
  build(R"(
    mov x0, #0
    cbz x0, far
    mov x1, #1
    far: halt
  )");
  core->start_thread(0);
  core->run();
  EXPECT_EQ(reg(0, 1), 0u);  // skipped instruction never committed
  EXPECT_EQ(core->stats().get("mispredicts"), 1.0);
}

TEST_F(CgmtTest, CallAndReturn) {
  build(R"(
    mov x0, #5
    bl double_it
    mov x2, x0
    halt
    double_it:
    add x0, x0, x0
    ret
  )");
  core->start_thread(0);
  core->run();
  EXPECT_EQ(reg(0, 2), 10u);
}

TEST_F(CgmtTest, LoadsAndStoresThroughTimingPath) {
  build(R"(
    mov x0, #0x5000
    mov x1, #77
    str x1, [x0]
    ldr x2, [x0]
    add x2, x2, #1
    str x2, [x0, #8]
    halt
  )");
  core->start_thread(0);
  core->run();
  EXPECT_EQ(ms->memory().read_u64(0x5000), 77u);
  EXPECT_EQ(ms->memory().read_u64(0x5008), 78u);
}

TEST_F(CgmtTest, PostIndexStreamsLoad) {
  // Sum four sequential values with post-index loads.
  for (int i = 0; i < 4; ++i) {
    // (filled below after build: memory belongs to the memory system)
  }
  build(R"(
    mov x0, #0x6000
    mov x1, #4
    mov x2, #0
    loop:
      ldr x3, [x0], #8
      add x2, x2, x3
      sub x1, x1, #1
      cbnz x1, loop
    halt
  )");
  for (int i = 0; i < 4; ++i) {
    ms->memory().write_u64(0x6000 + i * 8, static_cast<u64>(10 + i));
  }
  core->start_thread(0);
  core->run();
  EXPECT_EQ(reg(0, 2), 46u);
  EXPECT_EQ(reg(0, 0), 0x6000u + 32);
}

TEST_F(CgmtTest, SingleThreadStallsOnMiss) {
  build(R"(
    mov x0, #0x100000
    ldr x1, [x0]
    halt
  )");
  core->start_thread(0);
  core->run();
  EXPECT_EQ(core->stats().get("dcache_data_misses"), 1.0);
  EXPECT_EQ(core->stats().get("context_switches"), 0.0);
  EXPECT_GT(core->cycle(), 40u);  // paid the DRAM latency
}

TEST_F(CgmtTest, TwoThreadsSwitchOnMisses) {
  // Each thread chases misses over a large strided region.
  build(R"(
    loop:
      ldr x1, [x0], #4096
      sub x2, x2, #1
      cbnz x2, loop
    halt
  )", /*threads=*/2);
  set_reg(0, 0, 0x10'0000);
  set_reg(0, 2, 20);
  set_reg(1, 0, 0x20'0000);
  set_reg(1, 2, 20);
  core->start_thread(0);
  core->start_thread(1);
  core->run();
  EXPECT_GT(core->stats().get("context_switches"), 10.0);
  EXPECT_EQ(reg(0, 2), 0u);
  EXPECT_EQ(reg(1, 2), 0u);
}

TEST_F(CgmtTest, MultithreadingHidesLatency) {
  // 4224-byte stride = 66 lines: successive misses spread across DRAM
  // channels and banks so memory-level parallelism is available.
  const char* source = R"(
    loop:
      ldr x1, [x0], #4224
      add x3, x3, x1
      sub x2, x2, #1
      cbnz x2, loop
    halt
  )";
  build(source, /*threads=*/1);
  set_reg(0, 0, 0x10'0000);
  set_reg(0, 2, 32);
  core->start_thread(0);
  core->run();
  const Cycle single = core->cycle();

  build(source, /*threads=*/4);
  for (int t = 0; t < 4; ++t) {
    set_reg(t, 0, 0x10'0000 + static_cast<u64>(t) * 0x40'0000);
    set_reg(t, 2, 32);
    core->start_thread(t);
  }
  core->run();
  const Cycle four = core->cycle();
  // 4x the work in well under 4x the time (in fact under 2.5x).
  EXPECT_LT(four, single * 5 / 2);
}

TEST_F(CgmtTest, SwitchOnMissCanBeDisabled) {
  mem::MemSystemConfig mc;
  program = kasm::assemble(R"(
    loop:
      ldr x1, [x0], #4096
      sub x2, x2, #1
      cbnz x2, loop
    halt
  )");
  ms = std::make_unique<mem::MemorySystem>(mc);
  env = CoreEnv{.core_id = 0, .num_threads = 2, .ms = ms.get()};
  manager = std::make_unique<BankedManager>(env);
  CgmtCoreConfig config;
  config.num_threads = 2;
  config.switch_on_miss = false;
  core = std::make_unique<CgmtCore>(config, env, *manager, program);
  set_reg(0, 0, 0x10'0000);
  set_reg(0, 2, 8);
  set_reg(1, 0, 0x20'0000);
  set_reg(1, 2, 8);
  core->start_thread(0);
  core->start_thread(1);
  core->run();
  EXPECT_EQ(core->stats().get("context_switches"), 0.0);
}

TEST_F(CgmtTest, StoreQueueAbsorbsStores) {
  build(R"(
    mov x0, #0x7000
    mov x1, #1
    str x1, [x0], #8
    str x1, [x0], #8
    str x1, [x0], #8
    halt
  )");
  core->start_thread(0);
  core->run();
  // Stores retire through the SQ without stalling commit.
  EXPECT_EQ(core->stats().get("sq_full_stall_cycles"), 0.0);
  EXPECT_EQ(ms->memory().read_u64(0x7010), 1u);
}

TEST_F(CgmtTest, HaltedThreadStopsAndOthersContinue) {
  build(R"(
    cbz x0, quick
    mov x1, #0
    loop:
      add x1, x1, #1
      sub x0, x0, #1
      cbnz x0, loop
    quick: halt
  )", /*threads=*/2);
  set_reg(0, 0, 0);    // halts immediately
  set_reg(1, 0, 100);  // loops a while
  core->start_thread(0);
  core->start_thread(1);
  core->run();
  EXPECT_TRUE(core->done());
  EXPECT_EQ(reg(1, 1), 100u);
}

TEST_F(CgmtTest, ThreadsCannotStartTwice) {
  build("halt\n");
  core->start_thread(0);
  EXPECT_THROW(core->start_thread(0), std::logic_error);
}

TEST_F(CgmtTest, NzcvIsPerThread) {
  build(R"(
    cmp x0, #5
    b.lt less
    mov x1, #100
    b end
    less: mov x1, #200
    end: halt
  )", /*threads=*/2);
  set_reg(0, 0, 3);   // less
  set_reg(1, 0, 9);   // not less
  core->start_thread(0);
  core->start_thread(1);
  core->run();
  EXPECT_EQ(reg(0, 1), 200u);
  EXPECT_EQ(reg(1, 1), 100u);
}

TEST_F(CgmtTest, MaxCyclesGuardThrows) {
  mem::MemSystemConfig mc;
  program = kasm::assemble("loop: b loop\nhalt\n");
  ms = std::make_unique<mem::MemorySystem>(mc);
  env = CoreEnv{.core_id = 0, .num_threads = 1, .ms = ms.get()};
  manager = std::make_unique<BankedManager>(env);
  CgmtCoreConfig config;
  config.max_cycles = 5000;
  core = std::make_unique<CgmtCore>(config, env, *manager, program);
  core->start_thread(0);
  EXPECT_THROW(core->run(), std::runtime_error);
}

TEST_F(CgmtTest, ViReCManagedCoreExecutesCorrectly) {
  // The same counted loop through a tiny ViReC RF must still be
  // functionally exact.
  program = kasm::assemble(R"(
    mov x0, #25
    mov x1, #0
    loop:
      add x1, x1, #3
      sub x0, x0, #1
      cbnz x0, loop
    halt
  )");
  mem::MemSystemConfig mc;
  ms = std::make_unique<mem::MemorySystem>(mc);
  env = CoreEnv{.core_id = 0, .num_threads = 1, .ms = ms.get()};
  core::ViReCConfig vc;
  vc.num_phys_regs = 4;
  manager = std::make_unique<core::ViReCManager>(vc, env);
  CgmtCoreConfig config;
  core = std::make_unique<CgmtCore>(config, env, *manager, program);
  core->start_thread(0);
  core->run();
  EXPECT_EQ(reg(0, 1), 75u);
}

}  // namespace
}  // namespace virec::cpu
