// Unit tests for instruction classification, register queries and
// disassembly.
#include <gtest/gtest.h>

#include <set>

#include "isa/disasm.hpp"
#include "isa/inst.hpp"

namespace virec::isa {
namespace {

Inst make(Op op) {
  Inst inst;
  inst.op = op;
  return inst;
}

TEST(Classify, Loads) {
  for (Op op : {Op::kLdr, Op::kLdrw, Op::kLdrsw, Op::kLdrh, Op::kLdrb}) {
    EXPECT_TRUE(is_load(op)) << op_name(op);
    EXPECT_TRUE(is_mem(op));
    EXPECT_FALSE(is_store(op));
  }
}

TEST(Classify, Stores) {
  for (Op op : {Op::kStr, Op::kStrw, Op::kStrh, Op::kStrb}) {
    EXPECT_TRUE(is_store(op)) << op_name(op);
    EXPECT_TRUE(is_mem(op));
    EXPECT_FALSE(is_load(op));
  }
}

TEST(Classify, Branches) {
  for (Op op : {Op::kB, Op::kBcond, Op::kCbz, Op::kCbnz, Op::kBl, Op::kRet}) {
    EXPECT_TRUE(is_branch(op)) << op_name(op);
  }
  EXPECT_FALSE(is_branch(Op::kAdd));
  EXPECT_TRUE(is_cond_branch(Op::kBcond));
  EXPECT_TRUE(is_cond_branch(Op::kCbz));
  EXPECT_FALSE(is_cond_branch(Op::kB));
  EXPECT_FALSE(is_cond_branch(Op::kRet));
}

TEST(Classify, Flags) {
  EXPECT_TRUE(writes_flags(Op::kCmp));
  EXPECT_TRUE(writes_flags(Op::kCmpImm));
  EXPECT_FALSE(writes_flags(Op::kAdd));
  EXPECT_TRUE(reads_flags(Op::kBcond));
  EXPECT_FALSE(reads_flags(Op::kCbz));
}

TEST(Classify, Fp) {
  for (Op op : {Op::kFadd, Op::kFsub, Op::kFmul, Op::kFdiv, Op::kFmadd,
                Op::kScvtf, Op::kFcvtzs}) {
    EXPECT_TRUE(is_fp(op)) << op_name(op);
  }
  EXPECT_FALSE(is_fp(Op::kMul));
}

TEST(MemSize, Widths) {
  EXPECT_EQ(mem_size(Op::kLdr), 8u);
  EXPECT_EQ(mem_size(Op::kStr), 8u);
  EXPECT_EQ(mem_size(Op::kLdrw), 4u);
  EXPECT_EQ(mem_size(Op::kLdrsw), 4u);
  EXPECT_EQ(mem_size(Op::kStrw), 4u);
  EXPECT_EQ(mem_size(Op::kLdrh), 2u);
  EXPECT_EQ(mem_size(Op::kLdrb), 1u);
  EXPECT_EQ(mem_size(Op::kAdd), 0u);
}

TEST(Latency, MultiCycleOps) {
  EXPECT_EQ(op_latency(Op::kAdd), 1u);
  EXPECT_EQ(op_latency(Op::kMul), 3u);
  EXPECT_GE(op_latency(Op::kUdiv), 8u);
  EXPECT_GE(op_latency(Op::kFdiv), op_latency(Op::kFmul));
  EXPECT_GE(op_latency(Op::kFmadd), op_latency(Op::kFadd));
}

std::set<RegId> to_set(const RegList& list) {
  std::set<RegId> out;
  for (u32 i = 0; i < list.count; ++i) out.insert(list.regs[i]);
  return out;
}

TEST(RegQueries, AluRegisterForm) {
  Inst inst = make(Op::kAdd);
  inst.rd = 1;
  inst.rn = 2;
  inst.rm = 3;
  EXPECT_EQ(to_set(src_regs(inst)), (std::set<RegId>{2, 3}));
  EXPECT_EQ(to_set(dst_regs(inst)), (std::set<RegId>{1}));
  EXPECT_EQ(to_set(all_regs(inst)), (std::set<RegId>{1, 2, 3}));
}

TEST(RegQueries, XzrIsNeverReported) {
  Inst inst = make(Op::kAdd);
  inst.rd = kZeroReg;
  inst.rn = kZeroReg;
  inst.rm = 5;
  EXPECT_EQ(to_set(src_regs(inst)), (std::set<RegId>{5}));
  EXPECT_TRUE(to_set(dst_regs(inst)).empty());
}

TEST(RegQueries, LoadRegOffset) {
  Inst inst = make(Op::kLdr);
  inst.rd = 6;
  inst.rn = 2;
  inst.rm = 5;
  inst.mem_mode = MemMode::kRegOffset;
  inst.shift = 3;
  EXPECT_EQ(to_set(src_regs(inst)), (std::set<RegId>{2, 5}));
  EXPECT_EQ(to_set(dst_regs(inst)), (std::set<RegId>{6}));
}

TEST(RegQueries, PostIndexLoadWritesBase) {
  Inst inst = make(Op::kLdr);
  inst.rd = 4;
  inst.rn = 0;
  inst.mem_mode = MemMode::kPostIndex;
  inst.imm = 8;
  EXPECT_EQ(to_set(src_regs(inst)), (std::set<RegId>{0}));
  EXPECT_EQ(to_set(dst_regs(inst)), (std::set<RegId>{0, 4}));
}

TEST(RegQueries, StoreReadsValueAndBase) {
  Inst inst = make(Op::kStr);
  inst.rd = 7;  // stored value
  inst.rn = 1;
  EXPECT_EQ(to_set(src_regs(inst)), (std::set<RegId>{1, 7}));
  EXPECT_TRUE(to_set(dst_regs(inst)).empty());
}

TEST(RegQueries, PreIndexStoreWritesBase) {
  Inst inst = make(Op::kStr);
  inst.rd = 7;
  inst.rn = 1;
  inst.mem_mode = MemMode::kPreIndex;
  inst.imm = 16;
  EXPECT_EQ(to_set(dst_regs(inst)), (std::set<RegId>{1}));
}

TEST(RegQueries, MaddReadsThree) {
  Inst inst = make(Op::kMadd);
  inst.rd = 1;
  inst.rn = 2;
  inst.rm = 3;
  inst.ra = 4;
  EXPECT_EQ(to_set(src_regs(inst)), (std::set<RegId>{2, 3, 4}));
}

TEST(RegQueries, MovkReadsItsDestination) {
  Inst inst = make(Op::kMovk);
  inst.rd = 9;
  inst.imm = 0xffff;
  EXPECT_EQ(to_set(src_regs(inst)), (std::set<RegId>{9}));
  EXPECT_EQ(to_set(dst_regs(inst)), (std::set<RegId>{9}));
}

TEST(RegQueries, BlWritesLinkRegister) {
  Inst inst = make(Op::kBl);
  inst.target = 0;
  EXPECT_EQ(to_set(dst_regs(inst)), (std::set<RegId>{30}));
}

TEST(RegQueries, RetReadsLinkRegister) {
  Inst inst = make(Op::kRet);
  EXPECT_EQ(to_set(src_regs(inst)), (std::set<RegId>{30}));
}

TEST(RegQueries, CbzReadsOnlyItsOperand) {
  Inst inst = make(Op::kCbz);
  inst.rn = 11;
  inst.target = 0;
  EXPECT_EQ(to_set(src_regs(inst)), (std::set<RegId>{11}));
  EXPECT_TRUE(to_set(dst_regs(inst)).empty());
}

TEST(RegQueries, AllRegsDeduplicates) {
  Inst inst = make(Op::kAdd);
  inst.rd = 3;
  inst.rn = 3;
  inst.rm = 3;
  EXPECT_EQ(all_regs(inst).count, 1u);
}

TEST(Disasm, RegisterNames) {
  EXPECT_EQ(reg_name(0), "x0");
  EXPECT_EQ(reg_name(30), "x30");
  EXPECT_EQ(reg_name(kZeroReg), "xzr");
}

TEST(Disasm, BasicFormats) {
  Inst add = make(Op::kAdd);
  add.rd = 1;
  add.rn = 2;
  add.rm = 3;
  EXPECT_EQ(disasm(add), "add x1, x2, x3");

  Inst addi = make(Op::kAddImm);
  addi.rd = 1;
  addi.rn = 2;
  addi.imm = 42;
  EXPECT_EQ(disasm(addi), "add x1, x2, #42");

  Inst cmp = make(Op::kCmpImm);
  cmp.rn = 5;
  cmp.imm = -1;
  EXPECT_EQ(disasm(cmp), "cmp x5, #-1");
}

TEST(Disasm, MemoryOperands) {
  Inst ldr = make(Op::kLdr);
  ldr.rd = 6;
  ldr.rn = 2;
  ldr.rm = 5;
  ldr.mem_mode = MemMode::kRegOffset;
  ldr.shift = 3;
  EXPECT_EQ(disasm(ldr), "ldr x6, [x2, x5, lsl #3]");

  Inst post = make(Op::kLdr);
  post.rd = 4;
  post.rn = 0;
  post.mem_mode = MemMode::kPostIndex;
  post.imm = 8;
  EXPECT_EQ(disasm(post), "ldr x4, [x0], #8");

  Inst pre = make(Op::kStr);
  pre.rd = 4;
  pre.rn = 0;
  pre.mem_mode = MemMode::kPreIndex;
  pre.imm = -16;
  EXPECT_EQ(disasm(pre), "str x4, [x0, #-16]!");
}

TEST(Disasm, Branches) {
  Inst b = make(Op::kB);
  b.target = 12;
  EXPECT_EQ(disasm(b), "b @12");

  Inst bc = make(Op::kBcond);
  bc.cond = Cond::kLt;
  bc.target = 3;
  EXPECT_EQ(disasm(bc), "b.lt @3");

  Inst cbnz = make(Op::kCbnz);
  cbnz.rn = 2;
  cbnz.target = 0;
  EXPECT_EQ(disasm(cbnz), "cbnz x2, @0");
}

TEST(Disasm, EveryOpcodeHasAName) {
  for (int op = 0; op <= static_cast<int>(Op::kHalt); ++op) {
    EXPECT_STRNE(op_name(static_cast<Op>(op)), "?");
  }
}

}  // namespace
}  // namespace virec::isa
