// Context-manager tests for the baseline schemes (banked, software,
// prefetch): timing contracts and functional register movement.
#include <gtest/gtest.h>

#include "cpu/banked_manager.hpp"
#include "cpu/prefetch_manager.hpp"
#include "cpu/software_manager.hpp"

namespace virec::cpu {
namespace {

class ManagerTest : public ::testing::Test {
 protected:
  ManagerTest()
      : ms(mem::MemSystemConfig{}),
        env{.core_id = 0, .num_threads = 4, .ms = &ms} {}

  void seed_backing(int tid, int reg, u64 value) {
    ms.memory().write_u64(
        ms.reg_addr(0, static_cast<u32>(tid), static_cast<u32>(reg)), value);
  }
  u64 backing(int tid, int reg) {
    return ms.memory().read_u64(
        ms.reg_addr(0, static_cast<u32>(tid), static_cast<u32>(reg)));
  }

  isa::Inst add(int rd, int rn, int rm) {
    isa::Inst inst;
    inst.op = isa::Op::kAdd;
    inst.rd = static_cast<isa::RegId>(rd);
    inst.rn = static_cast<isa::RegId>(rn);
    inst.rm = static_cast<isa::RegId>(rm);
    return inst;
  }

  mem::MemorySystem ms;
  CoreEnv env;
};

TEST_F(ManagerTest, BankedLoadsOffloadedContextOnStart) {
  BankedManager banked(env);
  seed_backing(2, 7, 1234);
  const Cycle ready = banked.on_thread_start(2, 100);
  EXPECT_GT(ready, 100u);  // paid the context fetch
  EXPECT_EQ(banked.read_reg(2, 7), 1234u);
}

TEST_F(ManagerTest, BankedDecodeAlwaysHits) {
  BankedManager banked(env);
  banked.on_thread_start(0, 0);
  const DecodeAccess acc = banked.on_decode(0, add(1, 2, 3), 500);
  EXPECT_TRUE(acc.hit);
  EXPECT_EQ(acc.ready, 500u);
}

TEST_F(ManagerTest, BankedIsolatesThreads) {
  BankedManager banked(env);
  banked.write_reg(0, 5, 111);
  banked.write_reg(1, 5, 222);
  EXPECT_EQ(banked.read_reg(0, 5), 111u);
  EXPECT_EQ(banked.read_reg(1, 5), 222u);
}

TEST_F(ManagerTest, BankedHaltWritesBackToBacking) {
  BankedManager banked(env);
  banked.on_thread_start(0, 0);
  banked.write_reg(0, 3, 999);
  banked.on_thread_halt(0, 50);
  EXPECT_EQ(backing(0, 3), 999u);
}

TEST_F(ManagerTest, BankedAreaScalesWithThreads) {
  BankedManager banked(env);
  EXPECT_EQ(banked.physical_regs(), 4u * isa::kNumArchRegs);
}

TEST_F(ManagerTest, SoftwareChargesSaveRestoreOnThreadChange) {
  SoftwareManager sw(env);
  seed_backing(0, 1, 10);
  seed_backing(1, 1, 20);
  // First decode of thread 0 loads its context.
  const DecodeAccess first = sw.on_decode(0, add(2, 1, 1), 100);
  EXPECT_FALSE(first.hit);
  EXPECT_GT(first.ready, 100u);
  // Subsequent decodes of the same thread are free.
  const DecodeAccess same = sw.on_decode(0, add(2, 1, 1), first.ready);
  EXPECT_TRUE(same.hit);
  // Switching threads pays a full save+restore.
  const DecodeAccess other = sw.on_decode(1, add(2, 1, 1), same.ready);
  EXPECT_FALSE(other.hit);
  EXPECT_GT(other.ready - same.ready, 30u);  // ~32 paired ld/st accesses
  EXPECT_EQ(sw.read_reg(1, 1), 20u);
}

TEST_F(ManagerTest, SoftwarePreservesValuesAcrossSwitches) {
  SoftwareManager sw(env);
  sw.on_decode(0, add(2, 1, 1), 0);
  sw.write_reg(0, 2, 777);
  sw.on_decode(1, add(2, 1, 1), 1000);  // switches away, saving thread 0
  EXPECT_EQ(backing(0, 2), 777u);
  EXPECT_EQ(sw.read_reg(0, 2), 777u);  // readable through the backing
  sw.on_decode(0, add(2, 1, 1), 2000);
  EXPECT_EQ(sw.read_reg(0, 2), 777u);
}

TEST_F(ManagerTest, SoftwareHaltSavesResidentContext) {
  SoftwareManager sw(env);
  sw.on_decode(0, add(2, 1, 1), 0);
  sw.write_reg(0, 4, 31337);
  sw.on_thread_halt(0, 500);
  EXPECT_EQ(backing(0, 4), 31337u);
}

TEST_F(ManagerTest, SoftwareUsesOneRegisterFile) {
  SoftwareManager sw(env);
  EXPECT_EQ(sw.physical_regs(), static_cast<u32>(isa::kNumArchRegs));
}

class PrefetchTest : public ManagerTest,
                     public ::testing::WithParamInterface<PrefetchMode> {};

TEST_P(PrefetchTest, StartLoadsInitialContext) {
  PrefetchManager pf(env, GetParam());
  seed_backing(0, 3, 42);
  const Cycle ready = pf.on_thread_start(0, 10);
  EXPECT_GT(ready, 10u);
  EXPECT_EQ(pf.read_reg(0, 3), 42u);
}

TEST_P(PrefetchTest, PrefetchedThreadSwitchesQuickly) {
  PrefetchManager pf(env, GetParam());
  pf.on_thread_start(0, 0);
  pf.on_thread_start(1, 0);
  pf.on_decode(0, add(2, 1, 1), 50);
  // The switch kicks a prefetch for the predicted thread (0).
  pf.on_context_switch(0, 1, 0, 100);
  // Later switch back to 0: nearly free (context already resident).
  const Cycle r2 = pf.on_context_switch(1, 0, 1, 10'000);
  EXPECT_LE(r2 - 10'000, 2u);
}

TEST_P(PrefetchTest, FirstScheduleHasNoOutgoingSpill) {
  // The core's very first schedule (and the one after any idle period)
  // reports from_tid = -1: there is no outgoing episode to close.
  // Regression: the manager used to index its per-thread arrays with
  // -1 and spill out-of-bounds values to a wild backing address.
  PrefetchManager pf(env, GetParam());
  pf.on_thread_start(0, 0);
  const double spills_before = pf.stats().get("reg_spills");
  const Cycle ready = pf.on_context_switch(-1, 0, 1, 100);
  EXPECT_GE(ready, 100u);
  EXPECT_EQ(pf.stats().get("reg_spills"), spills_before);
}

TEST_P(PrefetchTest, HaltPersistsValues) {
  PrefetchManager pf(env, GetParam());
  pf.on_thread_start(0, 0);
  pf.write_reg(0, 9, 4711);
  pf.on_thread_halt(0, 100);
  EXPECT_EQ(backing(0, 9), 4711u);
}

TEST_P(PrefetchTest, UsesDoubleBufferArea) {
  PrefetchManager pf(env, GetParam());
  EXPECT_EQ(pf.physical_regs(), 2u * isa::kNumArchRegs);
}

INSTANTIATE_TEST_SUITE_P(Modes, PrefetchTest,
                         ::testing::Values(PrefetchMode::kFull,
                                           PrefetchMode::kExact),
                         [](const auto& info) {
                           return info.param == PrefetchMode::kFull ? "Full"
                                                                    : "Exact";
                         });

TEST_F(ManagerTest, ExactPrefetchDemandFillsOracleMisses) {
  PrefetchManager pf(env, PrefetchMode::kExact);
  pf.on_thread_start(0, 0);
  pf.on_thread_start(1, 0);
  // Thread 0 episode touches x1/x2 only.
  pf.on_decode(0, add(2, 1, 1), 10);
  pf.on_context_switch(0, 1, 0, 100);   // history(0) = {x1, x2}
  pf.on_decode(1, add(2, 1, 1), 150);
  pf.on_context_switch(1, 0, 1, 1000);  // prefetches history(0)
  // Now thread 0 touches registers outside its history: demand fill.
  const DecodeAccess acc = pf.on_decode(0, add(9, 8, 7), 2000);
  EXPECT_FALSE(acc.hit);
  EXPECT_GT(acc.fills, 0u);
}

TEST_F(ManagerTest, FullPrefetchMovesWholeContext) {
  PrefetchManager full(env, PrefetchMode::kFull);
  PrefetchManager exact(env, PrefetchMode::kExact);
  for (auto* pf : {&full, &exact}) {
    pf->on_thread_start(0, 0);
    pf->on_thread_start(1, 0);
    pf->on_decode(0, add(2, 1, 1), 10);
    pf->on_context_switch(0, 1, 0, 100);
    pf->on_decode(1, add(2, 1, 1), 150);
    pf->on_context_switch(1, 0, 1, 1000);
  }
  // Full mode spills every register on each switch, exact only the
  // used set.
  EXPECT_GT(full.stats().get("reg_spills"), exact.stats().get("reg_spills"));
}

}  // namespace
}  // namespace virec::cpu
