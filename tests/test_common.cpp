// Unit tests for the common utilities (types, stats, tables, RNG).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace virec {
namespace {

TEST(Types, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(4097));
}

TEST(Types, Log2Pow2) {
  EXPECT_EQ(log2_pow2(1), 0u);
  EXPECT_EQ(log2_pow2(2), 1u);
  EXPECT_EQ(log2_pow2(64), 6u);
  EXPECT_EQ(log2_pow2(1ull << 40), 40u);
}

TEST(Types, AlignUpDown) {
  EXPECT_EQ(align_up(0, 64), 0u);
  EXPECT_EQ(align_up(1, 64), 64u);
  EXPECT_EQ(align_up(64, 64), 64u);
  EXPECT_EQ(align_up(65, 64), 128u);
  EXPECT_EQ(align_down(63, 64), 0u);
  EXPECT_EQ(align_down(64, 64), 64u);
  EXPECT_EQ(align_down(127, 64), 64u);
}

TEST(Stats, IncrementAndGet) {
  StatSet stats("unit");
  EXPECT_EQ(stats.get("x"), 0.0);
  stats.inc("x");
  stats.inc("x", 2.5);
  EXPECT_DOUBLE_EQ(stats.get("x"), 3.5);
  EXPECT_TRUE(stats.has("x"));
  EXPECT_FALSE(stats.has("y"));
}

TEST(Stats, SetOverwrites) {
  StatSet stats;
  stats.inc("a", 10);
  stats.set("a", 3);
  EXPECT_DOUBLE_EQ(stats.get("a"), 3.0);
}

TEST(Stats, PrefixAppearsInAll) {
  StatSet stats("core");
  stats.inc("cycles", 7);
  const auto all = stats.all();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].name, "core.cycles");
  EXPECT_DOUBLE_EQ(all[0].value, 7.0);
}

TEST(Stats, InsertionOrderStable) {
  StatSet stats;
  stats.inc("b");
  stats.inc("a");
  stats.inc("c");
  const auto all = stats.all();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].name, "b");
  EXPECT_EQ(all[1].name, "a");
  EXPECT_EQ(all[2].name, "c");
}

TEST(Stats, ClearKeepsEntries) {
  StatSet stats;
  stats.inc("a", 5);
  stats.clear();
  EXPECT_TRUE(stats.has("a"));
  EXPECT_EQ(stats.get("a"), 0.0);
}

TEST(Stats, MergeAdds) {
  StatSet a, b;
  a.inc("x", 1);
  b.inc("x", 2);
  b.inc("y", 3);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
  EXPECT_DOUBLE_EQ(a.get("y"), 3.0);
}

TEST(Stats, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, Mean) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, RowArityMismatchThrows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt_pct(0.421, 1), "42.1%");
}

TEST(Rng, Deterministic) {
  Xorshift128 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer) {
  Xorshift128 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Xorshift128 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowRoughlyUniform) {
  Xorshift128 rng(99);
  std::array<int, 8> buckets{};
  for (int i = 0; i < 8000; ++i) ++buckets[rng.next_below(8)];
  for (int count : buckets) {
    EXPECT_GT(count, 700);
    EXPECT_LT(count, 1300);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Xorshift128 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

}  // namespace
}  // namespace virec
