// Cross-cutting property tests: invariants the paper's claims rest on,
// checked over parameterized sweeps.
//
//  * Functional equivalence: every (scheme x policy x workload)
//    combination computes bit-identical results.
//  * Hit-rate monotonicity in RF size.
//  * Scheduling-aware policies (MRT-*, LRC) beat scheduling-oblivious
//    ones; LRC beats plain PLRU end to end.
//  * Determinism: identical configs give identical cycle counts.
//  * Banked is an upper bound for register-cache schemes' performance.
#include <gtest/gtest.h>

#include "sim/runner.hpp"

namespace virec {
namespace {

using sim::RunSpec;
using sim::Scheme;

workloads::WorkloadParams tiny_params() {
  workloads::WorkloadParams params;
  params.iters_per_thread = 48;
  params.elements = 1 << 12;
  return params;
}

// ---------------------------------------------------------------------------
// Functional equivalence across policies.
// ---------------------------------------------------------------------------
struct PolicyCase {
  std::string workload;
  core::PolicyKind policy;
};

class PolicyEquivalence : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(PolicyEquivalence, ComputesCorrectResults) {
  RunSpec spec;
  spec.workload = GetParam().workload;
  spec.scheme = Scheme::kViReC;
  spec.policy = GetParam().policy;
  spec.threads_per_core = 4;
  spec.context_fraction = 0.5;  // heavy pressure: lots of evictions
  spec.params = tiny_params();
  EXPECT_TRUE(sim::run_spec(spec).check_ok);
}

std::vector<PolicyCase> policy_cases() {
  std::vector<PolicyCase> cases;
  for (const char* wl : {"gather", "spmv", "maebo", "hist"}) {
    for (core::PolicyKind pk : core::all_policies()) {
      cases.push_back({wl, pk});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyEquivalence,
                         ::testing::ValuesIn(policy_cases()),
                         [](const auto& info) {
                           std::string name =
                               info.param.workload + "_" +
                               core::policy_name(info.param.policy);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Hit-rate monotonicity in physical RF size.
// ---------------------------------------------------------------------------
class HitRateMonotonic : public ::testing::TestWithParam<const char*> {};

TEST_P(HitRateMonotonic, LargerRfNeverHurtsHitRate) {
  double prev = -1.0;
  for (double frac : {0.4, 0.6, 0.8, 1.0}) {
    RunSpec spec;
    spec.workload = GetParam();
    spec.scheme = Scheme::kViReC;
    spec.threads_per_core = 8;
    spec.context_fraction = frac;
    spec.params = tiny_params();
    const double hit = sim::run_spec(spec).rf_hit_rate;
    EXPECT_GE(hit, prev - 0.01) << "fraction " << frac;
    prev = hit;
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, HitRateMonotonic,
                         ::testing::Values("gather", "spmv", "maebo",
                                           "stride", "triad", "hist"));

// ---------------------------------------------------------------------------
// Policy quality ordering (Figure 12's qualitative result).
// ---------------------------------------------------------------------------
double hit_rate_for(core::PolicyKind policy, double fraction) {
  RunSpec spec;
  spec.workload = "gather";
  spec.scheme = Scheme::kViReC;
  spec.policy = policy;
  spec.threads_per_core = 8;
  spec.context_fraction = fraction;
  spec.params = tiny_params();
  spec.params.iters_per_thread = 128;
  return sim::run_spec(spec).rf_hit_rate;
}

TEST(PolicyOrdering, MrtBeatsPlainPlru) {
  EXPECT_GT(hit_rate_for(core::PolicyKind::kMrtPLRU, 0.8),
            hit_rate_for(core::PolicyKind::kPLRU, 0.8));
  EXPECT_GT(hit_rate_for(core::PolicyKind::kMrtPLRU, 0.4),
            hit_rate_for(core::PolicyKind::kPLRU, 0.4));
}

TEST(PolicyOrdering, LrcBeatsPlru) {
  EXPECT_GT(hit_rate_for(core::PolicyKind::kLRC, 0.8),
            hit_rate_for(core::PolicyKind::kPLRU, 0.8));
  EXPECT_GT(hit_rate_for(core::PolicyKind::kLRC, 0.4),
            hit_rate_for(core::PolicyKind::kPLRU, 0.4));
}

TEST(PolicyOrdering, SchedulingAwareBeatsObliviousLru) {
  // Perfect LRU thrashes under round-robin scheduling (Section 4.1);
  // MRT-LRU fixes exactly that.
  EXPECT_GT(hit_rate_for(core::PolicyKind::kMrtLRU, 0.8),
            hit_rate_for(core::PolicyKind::kLRU, 0.8));
}

TEST(PolicyOrdering, LrcTracksMrtPlruClosely) {
  // LRC = MRT-PLRU + commit bit: never significantly worse.
  const double lrc = hit_rate_for(core::PolicyKind::kLRC, 0.8);
  const double mrt = hit_rate_for(core::PolicyKind::kMrtPLRU, 0.8);
  EXPECT_GE(lrc, mrt - 0.01);
}

// ---------------------------------------------------------------------------
// Determinism.
// ---------------------------------------------------------------------------
class Determinism : public ::testing::TestWithParam<Scheme> {};

TEST_P(Determinism, RepeatRunsIdentical) {
  RunSpec spec;
  spec.workload = "gather";
  spec.scheme = GetParam();
  spec.threads_per_core = 4;
  spec.params = tiny_params();
  const sim::RunResult a = sim::run_spec(spec);
  const sim::RunResult b = sim::run_spec(spec);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.context_switches, b.context_switches);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, Determinism,
    ::testing::Values(Scheme::kBanked, Scheme::kSoftware,
                      Scheme::kPrefetchFull, Scheme::kPrefetchExact,
                      Scheme::kViReC, Scheme::kNSF),
    [](const auto& info) {
      std::string name = sim::scheme_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Performance-order properties.
// ---------------------------------------------------------------------------
Cycle cycles_for(const char* workload, Scheme scheme, double fraction,
                 u32 threads = 4) {
  RunSpec spec;
  spec.workload = workload;
  spec.scheme = scheme;
  spec.threads_per_core = threads;
  spec.context_fraction = fraction;
  spec.params = tiny_params();
  spec.params.iters_per_thread = 128;
  return sim::run_spec(spec).cycles;
}

TEST(PerfOrdering, BankedBoundsViReCOnStreamingKernels) {
  for (const char* wl : {"triad", "stride", "maebo"}) {
    EXPECT_GE(cycles_for(wl, Scheme::kViReC, 0.8),
              cycles_for(wl, Scheme::kBanked, 1.0) * 95 / 100)
        << wl;
  }
}

TEST(PerfOrdering, ViReCBeatsSoftwareSwitching) {
  for (const char* wl : {"gather", "maebo"}) {
    EXPECT_LT(cycles_for(wl, Scheme::kViReC, 0.8),
              cycles_for(wl, Scheme::kSoftware, 1.0))
        << wl;
  }
}

TEST(PerfOrdering, ViReCBeatsFullContextPrefetch) {
  // Figure 9: full-context prefetching is almost always worse.
  for (const char* wl : {"gather", "maebo", "stride"}) {
    EXPECT_LT(cycles_for(wl, Scheme::kViReC, 0.8),
              cycles_for(wl, Scheme::kPrefetchFull, 0.8))
        << wl;
  }
}

TEST(PerfOrdering, ViReCNotWorseThanNsf) {
  // The NSF baseline (PLRU, blocking BSI, no pinning, no dummy fill,
  // no sysreg prefetch) must not beat the full ViReC design.
  for (const char* wl : {"gather", "maebo"}) {
    EXPECT_LE(cycles_for(wl, Scheme::kViReC, 0.8),
              cycles_for(wl, Scheme::kNSF, 0.8) * 105 / 100)
        << wl;
  }
}

TEST(PerfOrdering, MultithreadingBeatsSingleThread) {
  // 4 threads do 4x the single thread's work in far less than 4x time.
  RunSpec spec;
  spec.workload = "gather";
  spec.scheme = Scheme::kBanked;
  spec.params = tiny_params();
  spec.params.iters_per_thread = 128;
  spec.threads_per_core = 1;
  const Cycle one = sim::run_spec(spec).cycles;
  spec.threads_per_core = 4;
  const Cycle four = sim::run_spec(spec).cycles;
  EXPECT_LT(four, 2 * one);
}

TEST(PerfOrdering, GracefulDegradationUnderContention) {
  // 40% context may cost performance but must stay within 2x of the
  // full-context configuration (graceful, not collapsing).
  for (const char* wl : {"gather", "maebo", "triad", "stride"}) {
    const Cycle full = cycles_for(wl, Scheme::kViReC, 1.0, 8);
    const Cycle tight = cycles_for(wl, Scheme::kViReC, 0.4, 8);
    EXPECT_LT(tight, full * 2) << wl;
  }
}

// ---------------------------------------------------------------------------
// Stats sanity under every scheme.
// ---------------------------------------------------------------------------
class StatsSanity : public ::testing::TestWithParam<Scheme> {};

TEST_P(StatsSanity, CountersAreConsistent) {
  RunSpec spec;
  spec.workload = "gather";
  spec.scheme = GetParam();
  spec.threads_per_core = 4;
  spec.params = tiny_params();
  sim::System system(build_config(spec), workloads::find_workload("gather"),
                     spec.params);
  const sim::RunResult result = system.run();
  EXPECT_TRUE(result.check_ok);
  const StatSet& core = system.core(0).stats();
  EXPECT_EQ(core.get("halts"), 4.0);
  EXPECT_GT(result.instructions, 0u);
  EXPECT_LE(result.ipc, 1.0);  // single-issue ceiling
  const StatSet& dcache = system.memory_system().dcache(0).stats();
  EXPECT_GE(dcache.get("reads") + dcache.get("writes"),
            dcache.get("misses"));
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, StatsSanity,
    ::testing::Values(Scheme::kBanked, Scheme::kSoftware,
                      Scheme::kPrefetchFull, Scheme::kPrefetchExact,
                      Scheme::kViReC, Scheme::kNSF),
    [](const auto& info) {
      std::string name = sim::scheme_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace virec
