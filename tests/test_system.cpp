// System assembly and runner tests: offload, multi-core lockstep,
// configuration derivation.
#include <gtest/gtest.h>

#include "sim/runner.hpp"

namespace virec::sim {
namespace {

workloads::WorkloadParams tiny_params() {
  workloads::WorkloadParams params;
  params.iters_per_thread = 32;
  params.elements = 1 << 12;
  return params;
}

TEST(SchemeNames, RoundTrip) {
  for (Scheme s : {Scheme::kBanked, Scheme::kSoftware, Scheme::kPrefetchFull,
                   Scheme::kPrefetchExact, Scheme::kViReC, Scheme::kNSF}) {
    EXPECT_EQ(parse_scheme(scheme_name(s)), s);
  }
  EXPECT_THROW(parse_scheme("bogus"), std::invalid_argument);
}

TEST(Config, NmpDefaultMatchesTable1) {
  const SystemConfig config = SystemConfig::nmp_default();
  EXPECT_EQ(config.mem.icache.size_bytes, 32u * 1024);
  EXPECT_EQ(config.mem.dcache.size_bytes, 8u * 1024);
  EXPECT_EQ(config.mem.dcache.hit_latency, 2u);
  EXPECT_EQ(config.mem.dcache.mshrs, 24u);
  EXPECT_FALSE(config.mem.has_l2);
  EXPECT_EQ(config.core.sq_entries, 5u);
  EXPECT_EQ(config.mem.dram.t_cl, 14u);
}

TEST(Config, ContextRegsScalesWithFraction) {
  EXPECT_EQ(context_regs(1.0, 6, 4), 24u);
  EXPECT_EQ(context_regs(0.5, 6, 4), 12u);
  EXPECT_EQ(context_regs(0.4, 6, 8), 20u);  // ceil(2.4 * 8)
  EXPECT_GE(context_regs(0.01, 6, 1), 4u);  // floor of 4
}

TEST(Runner, SpecDerivesPhysRegs) {
  RunSpec spec;
  spec.workload = "gather";  // active context 6
  spec.threads_per_core = 4;
  spec.context_fraction = 0.5;
  EXPECT_EQ(spec_phys_regs(spec), 12u);
  spec.phys_regs = 99;
  EXPECT_EQ(spec_phys_regs(spec), 99u);
}

TEST(Runner, BuildConfigAppliesOverrides) {
  RunSpec spec;
  spec.dcache_bytes = 2048;
  spec.dcache_latency = 5;
  spec.num_cores = 3;
  spec.policy = core::PolicyKind::kPLRU;
  const SystemConfig config = build_config(spec);
  EXPECT_EQ(config.mem.dcache.size_bytes, 2048u);
  EXPECT_EQ(config.mem.dcache.hit_latency, 5u);
  EXPECT_EQ(config.num_cores, 3u);
  EXPECT_EQ(config.virec.policy, core::PolicyKind::kPLRU);
}

TEST(System, SingleCoreRunsAndChecks) {
  RunSpec spec;
  spec.workload = "reduce";
  spec.scheme = Scheme::kViReC;
  spec.threads_per_core = 4;
  spec.params = tiny_params();
  const RunResult result = run_spec(spec);
  EXPECT_TRUE(result.check_ok);
  EXPECT_GT(result.ipc, 0.0);
}

TEST(System, MultiCorePartitionsWork) {
  RunSpec spec;
  spec.workload = "gather";
  spec.scheme = Scheme::kBanked;
  spec.threads_per_core = 2;
  spec.params = tiny_params();
  spec.num_cores = 4;  // 8 threads across 4 cores
  const RunResult result = run_spec(spec);
  EXPECT_TRUE(result.check_ok);
  // All four cores executed instructions.
  EXPECT_GT(result.instructions, 4u * 2u * 32u * 4u);
}

TEST(System, SharedMemoryContentionSlowsCores) {
  RunSpec spec;
  spec.workload = "gather";
  spec.scheme = Scheme::kBanked;
  spec.threads_per_core = 4;
  spec.params = tiny_params();
  spec.params.iters_per_thread = 128;
  spec.num_cores = 1;
  const Cycle one = run_spec(spec).cycles;
  spec.num_cores = 8;
  const Cycle eight = run_spec(spec).cycles;
  // Eight cores share the crossbar and DRAM: slower than a private run,
  // even though each core has the same per-core work.
  EXPECT_GT(eight, one);
}

TEST(System, PerCoreStatsAccessible) {
  RunSpec spec;
  spec.workload = "stride";
  spec.scheme = Scheme::kViReC;
  spec.threads_per_core = 4;
  spec.params = tiny_params();
  System system(build_config(spec), workloads::find_workload("stride"),
                spec.params);
  system.run();
  EXPECT_GT(system.core(0).cycle(), 0u);
  EXPECT_GT(system.manager(0).stats().get("rf_hits"), 0.0);
  EXPECT_GT(system.memory_system().dcache(0).stats().get("reads"), 0.0);
}

TEST(System, OffloadSeedsBackingRegion) {
  RunSpec spec;
  spec.workload = "gather";
  spec.threads_per_core = 2;
  spec.params = tiny_params();
  System system(build_config(spec), workloads::find_workload("gather"),
                spec.params);
  // Before running, thread 1's offloaded x2 (iteration count) must sit
  // in the reserved region.
  const u64 v = system.memory_system().memory().read_u64(
      system.memory_system().reg_addr(0, 1, 2));
  EXPECT_EQ(v, spec.params.iters_per_thread);
}

TEST(System, FailedCheckRaises) {
  RunSpec spec;
  spec.workload = "gather";
  spec.threads_per_core = 2;
  spec.params = tiny_params();
  System system(build_config(spec), workloads::find_workload("gather"),
                spec.params);
  // Corrupt one thread's offloaded accumulator so the result is wrong.
  system.memory_system().memory().write_u64(
      system.memory_system().reg_addr(0, 0, 3), 12345);
  const RunResult result = system.run();
  EXPECT_FALSE(result.check_ok);
  EXPECT_FALSE(result.check_msg.empty());
}

TEST(System, EverySchemeYieldsSameArchitecturalResult) {
  // The central cross-scheme property: timing machinery must never
  // change computed values.
  RunSpec spec;
  spec.workload = "triad";
  spec.threads_per_core = 4;
  spec.params = tiny_params();
  for (Scheme scheme : {Scheme::kBanked, Scheme::kSoftware,
                        Scheme::kPrefetchFull, Scheme::kPrefetchExact,
                        Scheme::kViReC, Scheme::kNSF}) {
    spec.scheme = scheme;
    const RunResult result = run_spec(spec);
    EXPECT_TRUE(result.check_ok) << scheme_name(scheme);
  }
}

TEST(System, RunnerThrowsOnCheckFailure) {
  // run_spec wraps check failures into exceptions; exercised through a
  // deliberately corrupted System is covered above, so here we just
  // confirm normal paths do not throw.
  RunSpec spec;
  spec.workload = "copy";
  spec.params = tiny_params();
  EXPECT_NO_THROW(run_spec(spec));
}

}  // namespace
}  // namespace virec::sim
