// Conservative-PDES run loop tests: the headline invariant (a
// partitioned parallel run is bit-identical to the serial lockstep
// loop — results, every registry scalar, every sample — for every
// scheme x policy at 1/2/4 workers), its interaction with --no-skip,
// checkpoints crossing between parallel and serial runs, the watchdog
// boundary, and the relaxed-sync escape hatch.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/pdes.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "workloads/workload.hpp"

namespace virec::sim {
namespace {

namespace fs = std::filesystem;

/// Multi-core contention point: small enough to sweep every scheme x
/// policy x worker count, large enough that partitions genuinely
/// interleave at the crossbar.
RunSpec tiny_spec(Scheme scheme, core::PolicyKind policy) {
  RunSpec spec;
  spec.workload = "gather";
  spec.scheme = scheme;
  spec.policy = policy;
  spec.num_cores = 4;
  spec.threads_per_core = 4;
  spec.context_fraction = 0.5;
  spec.params.iters_per_thread = 24;
  spec.params.elements = 1 << 12;
  return spec;
}

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("pdes_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Bit-exact double comparison: "close" is not good enough for the
/// PDES-equivalence contract.
void expect_bits_eq(double a, double b, const char* what) {
  u64 ab, bb;
  std::memcpy(&ab, &a, sizeof ab);
  std::memcpy(&bb, &b, sizeof bb);
  EXPECT_EQ(ab, bb) << what << ": " << a << " vs " << b;
}

void expect_results_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  expect_bits_eq(a.ipc, b.ipc, "ipc");
  EXPECT_EQ(a.check_ok, b.check_ok);
  expect_bits_eq(a.rf_hit_rate, b.rf_hit_rate, "rf_hit_rate");
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.rf_fills, b.rf_fills);
  EXPECT_EQ(a.rf_spills, b.rf_spills);
  expect_bits_eq(a.avg_dcache_miss_latency, b.avg_dcache_miss_latency,
                 "avg_dcache_miss_latency");
  for (std::size_t i = 0; i < kNumCycleBuckets; ++i) {
    expect_bits_eq(a.cpi_stack[i], b.cpi_stack[i],
                   cycle_bucket_name(static_cast<CycleBucket>(i)));
  }
}

/// Every scalar in the registry — including the crossbar/DRAM
/// contention counters charged through the gated boundary — must match
/// the serial run bit for bit.
void expect_stats_identical(System& parallel, System& serial) {
  const std::vector<Stat> sa = parallel.registry().all_scalars();
  const std::vector<Stat> sb = serial.registry().all_scalars();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].name, sb[i].name) << i;
    expect_bits_eq(sa[i].value, sb[i].value, sa[i].name.c_str());
  }
}

/// Run @p spec twice — PDES on @p jobs workers and on the serial
/// lockstep loop — returning both systems so callers can compare
/// registries/samples too.
std::pair<RunResult, RunResult> run_both(const RunSpec& spec, u32 jobs,
                                         std::unique_ptr<System>* pdes_out,
                                         std::unique_ptr<System>* serial_out,
                                         Cycle sample_interval = 0) {
  const workloads::Workload& workload = workloads::find_workload(spec.workload);
  auto pdes_sys =
      std::make_unique<System>(build_config(spec), workload, spec.params);
  auto serial_sys =
      std::make_unique<System>(build_config(spec), workload, spec.params);
  pdes_sys->set_pdes(jobs);
  if (sample_interval > 0) {
    pdes_sys->set_sample_interval(sample_interval);
    serial_sys->set_sample_interval(sample_interval);
  }
  const RunResult ra = pdes_sys->run();
  const RunResult rb = serial_sys->run();
  *pdes_out = std::move(pdes_sys);
  *serial_out = std::move(serial_sys);
  return {ra, rb};
}

// ---------------------------------------------------------------------
// Headline invariant: PDES at 1/2/4 workers vs the serial lockstep
// loop => bit-identical RunResult and registry, for every scheme x
// policy.

class PdesEquivalence
    : public ::testing::TestWithParam<std::tuple<Scheme, core::PolicyKind>> {};

TEST_P(PdesEquivalence, ParallelRunMatchesSerialRun) {
  const auto [scheme, policy] = GetParam();
  for (const u32 jobs : {1u, 2u, 4u}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    std::unique_ptr<System> pdes, serial;
    const auto [ra, rb] =
        run_both(tiny_spec(scheme, policy), jobs, &pdes, &serial);
    ASSERT_TRUE(ra.check_ok) << ra.check_msg;
    expect_results_identical(ra, rb);
    expect_stats_identical(*pdes, *serial);
  }
}

std::vector<std::tuple<Scheme, core::PolicyKind>> all_points() {
  std::vector<std::tuple<Scheme, core::PolicyKind>> out;
  for (Scheme s : {Scheme::kBanked, Scheme::kSoftware, Scheme::kPrefetchFull,
                   Scheme::kPrefetchExact, Scheme::kViReC, Scheme::kNSF}) {
    for (core::PolicyKind p : core::all_policies()) out.emplace_back(s, p);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAllPolicies, PdesEquivalence, ::testing::ValuesIn(all_points()),
    [](const ::testing::TestParamInfo<PdesEquivalence::ParamType>& info) {
      std::string name =
          std::string(scheme_name(std::get<0>(info.param))) + "_" +
          core::policy_name(std::get<1>(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// ---------------------------------------------------------------------
// Worker counts that do not divide the core count exercise uneven
// contiguous partitions (4 cores on 3 workers: 1+1+2); more workers
// than cores must clamp.

TEST(Pdes, UnevenAndOversubscribedPartitions) {
  const RunSpec spec = tiny_spec(Scheme::kViReC, core::PolicyKind::kLRC);
  std::unique_ptr<System> serial_keep;
  RunResult serial_result;
  {
    std::unique_ptr<System> pdes, serial;
    const auto [ra, rb] = run_both(spec, 3, &pdes, &serial);
    ASSERT_TRUE(ra.check_ok) << ra.check_msg;
    expect_results_identical(ra, rb);
    serial_result = rb;
    serial_keep = std::move(serial);
  }
  {
    std::unique_ptr<System> pdes, serial;
    const auto [ra, rb] = run_both(spec, 64, &pdes, &serial);
    expect_results_identical(ra, serial_result);
    expect_stats_identical(*pdes, *serial_keep);
  }
}

// ---------------------------------------------------------------------
// --no-skip interop: the partition loop must be exact when stepping
// cycle by cycle too (no event skips to hide ordering mistakes).

TEST(Pdes, NoSkipInterop) {
  RunSpec spec = tiny_spec(Scheme::kViReC, core::PolicyKind::kLRC);
  spec.no_skip = true;
  std::unique_ptr<System> pdes, serial;
  const auto [ra, rb] = run_both(spec, 4, &pdes, &serial);
  ASSERT_TRUE(ra.check_ok) << ra.check_msg;
  expect_results_identical(ra, rb);
  expect_stats_identical(*pdes, *serial);

  // And skip-on PDES == no-skip serial: the full cross-product agrees.
  RunSpec skip_spec = tiny_spec(Scheme::kViReC, core::PolicyKind::kLRC);
  std::unique_ptr<System> pdes2, serial2;
  const auto [rc, rd] = run_both(skip_spec, 4, &pdes2, &serial2);
  expect_results_identical(rc, rb);
  (void)rd;
}

// ---------------------------------------------------------------------
// Sampling: epoch barriers land on exactly the sampling grid, so the
// sampled time series is identical sample for sample.

TEST(Pdes, SampledTimeSeriesIdentical) {
  std::unique_ptr<System> pdes, serial;
  // An odd interval avoids aliasing with any workload period.
  const auto [ra, rb] =
      run_both(tiny_spec(Scheme::kViReC, core::PolicyKind::kLRC), 4, &pdes,
               &serial, /*sample_interval=*/237);
  ASSERT_TRUE(ra.check_ok) << ra.check_msg;
  expect_results_identical(ra, rb);
  const std::vector<Sample>& sa = pdes->samples();
  const std::vector<Sample>& sb = serial->samples();
  ASSERT_EQ(sa.size(), sb.size());
  ASSERT_GE(sa.size(), 3u) << "run too short to exercise sampling";
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].cycle, sb[i].cycle) << i;
    EXPECT_EQ(sa[i].instructions, sb[i].instructions) << i;
    expect_bits_eq(sa[i].ipc, sb[i].ipc, "sample ipc");
    expect_bits_eq(sa[i].interval_ipc, sb[i].interval_ipc,
                   "sample interval_ipc");
    expect_bits_eq(sa[i].rf_hit_rate, sb[i].rf_hit_rate, "sample rf_hit_rate");
    EXPECT_EQ(sa[i].runnable_threads, sb[i].runnable_threads) << i;
    EXPECT_EQ(sa[i].outstanding_misses, sb[i].outstanding_misses) << i;
    for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
      expect_bits_eq(sa[i].cpi[b], sb[i].cpi[b], "sample cpi");
    }
  }
}

// ---------------------------------------------------------------------
// Checkpointing: PDES is a pure run-loop knob with no state of its
// own — config_hash ignores it, checkpoints written under PDES restore
// into serial runs and vice versa, bit-identically.

TEST(Pdes, CheckpointsCrossRunModes) {
  const RunSpec spec = tiny_spec(Scheme::kViReC, core::PolicyKind::kLRC);
  const fs::path dir = scratch_dir("ckpt");
  const workloads::Workload& workload = workloads::find_workload(spec.workload);

  // Checkpoint under PDES...
  System straight(build_config(spec), workload, spec.params);
  straight.set_pdes(4);
  straight.set_checkpointing(1000, dir.string());
  const RunResult want = straight.run();
  ASSERT_TRUE(want.check_ok) << want.check_msg;

  std::vector<fs::path> snaps;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".vckpt") snaps.push_back(e.path());
  }
  std::sort(snaps.begin(), snaps.end());
  ASSERT_GE(snaps.size(), 2u) << "run too short to checkpoint mid-flight";
  const fs::path snap = snaps[snaps.size() / 2];

  // ...restore into a serial run...
  System serial(build_config(spec), workload, spec.params);
  serial.restore(snap.string());
  expect_results_identical(want, serial.run());

  // ...and into another PDES run.
  System parallel(build_config(spec), workload, spec.params);
  parallel.set_pdes(2);
  parallel.restore(snap.string());
  expect_results_identical(want, parallel.run());

  // Serial-written checkpoints restore into PDES runs too, and both
  // modes write byte-identical snapshots on the same grid.
  const fs::path dir2 = scratch_dir("ckpt_serial");
  System serial_writer(build_config(spec), workload, spec.params);
  serial_writer.set_checkpointing(1000, dir2.string());
  expect_results_identical(want, serial_writer.run());
  std::ifstream a(snap, std::ios::binary);
  std::ifstream b(dir2 / snap.filename(), std::ios::binary);
  ASSERT_TRUE(a && b);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b)
      << "PDES and serial runs must write byte-identical snapshots";

  System resumed(build_config(spec), workload, spec.params);
  resumed.set_pdes(4);
  resumed.restore((dir2 / snap.filename()).string());
  expect_results_identical(want, resumed.run());

  fs::remove_all(dir);
  fs::remove_all(dir2);
}

// ---------------------------------------------------------------------
// Watchdog boundary: the parallel loop fires strictly after max_cycles
// with the same message shape as the serial loop — a budget equal to
// the natural run length completes, one cycle less throws.

TEST(Pdes, WatchdogBoundaryMatchesSerial) {
  RunSpec spec = tiny_spec(Scheme::kViReC, core::PolicyKind::kLRC);
  const Cycle natural = run_spec(spec).cycles;
  ASSERT_GT(natural, 1u);

  spec.pdes_jobs = 4;
  spec.max_cycles = natural;  // exactly enough: must complete
  EXPECT_NO_THROW(run_spec(spec));
  spec.max_cycles = natural - 1;  // one short: must throw
  try {
    run_spec(spec);
    FAIL() << "watchdog did not fire";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("max_cycles"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------
// Relaxed mode: not deterministic, but it must complete, pass the
// workload check and conserve the cycle-accounting identity.

TEST(Pdes, RelaxedSyncCompletesAndChecks) {
  RunSpec spec = tiny_spec(Scheme::kViReC, core::PolicyKind::kLRC);
  spec.pdes_jobs = 4;
  spec.relaxed_sync = true;
  const RunResult result = run_spec(spec);
  ASSERT_TRUE(result.check_ok) << result.check_msg;
  EXPECT_GT(result.cycles, 0u);
  EXPECT_GT(result.instructions, 0u);
  double stack = 0.0;
  for (const double v : result.cpi_stack) stack += v;
  // Functional behaviour is exact in relaxed mode (ordering only
  // affects timing), so the account must still close over the cycles
  // the run actually took.
  EXPECT_GT(stack, 0.0);
}

// ---------------------------------------------------------------------
// The gate key packing underpinning the ordering proof.

// Gate parking under oversubscription: twice as many workers as
// hardware threads guarantees waiters blow past the bounded spin and
// park in std::atomic::wait; the global access order must still be
// exactly ascending-key (the lockstep order), with every wake driven
// by publish()'s notify. A worker between wait_turn() and its next
// publish() still holds its old (minimal) bound, so no higher-key
// worker can record its access first — the log must come out strictly
// sorted.
TEST(Pdes, GateParksUnderOversubscriptionAndStaysOrdered) {
  const u32 hw = std::max(2u, std::thread::hardware_concurrency());
  const u32 parts = std::min(hw * 2, u32{64});
  constexpr Cycle kSteps = 200;
  PdesGate gate(parts, /*relaxed_window=*/0);
  std::mutex mu;
  std::vector<u64> order;
  order.reserve(static_cast<std::size_t>(parts) * kSteps);
  std::vector<std::thread> workers;
  for (u32 w = 0; w < parts; ++w) {
    workers.emplace_back([&gate, &mu, &order, w] {
      for (Cycle c = 1; c <= kSteps; ++c) {
        gate.publish(w, PdesGate::key_of(c, w));
        gate.wait_turn(w);
        {
          std::lock_guard<std::mutex> lock(mu);
          order.push_back(PdesGate::key_of(c, w));
        }
        // A periodic stall on the lead partition piles the others onto
        // its bound, past the spin budget and into the futex path.
        if (w == 0 && c % 32 == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
      gate.publish(w, PdesGate::kDoneBound);
    });
  }
  for (std::thread& t : workers) t.join();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(parts) * kSteps);
  for (std::size_t i = 1; i < order.size(); ++i) {
    ASSERT_LT(order[i - 1], order[i]) << "shared accesses out of global order";
  }
}

// abort() must wake workers parked in the futex wait (a missed notify
// would hang them forever — this is the liveness half of the parking
// contract).
TEST(Pdes, AbortWakesParkedWaiters) {
  PdesGate gate(4, /*relaxed_window=*/0);
  std::atomic<int> unwound{0};
  std::vector<std::thread> waiters;
  for (u32 w = 1; w < 4; ++w) {
    waiters.emplace_back([&gate, &unwound, w] {
      gate.publish(w, PdesGate::key_of(1000, w));
      try {
        gate.wait_turn(w);  // partition 0 never advances: park here
        ADD_FAILURE() << "wait_turn returned without partition 0 advancing";
      } catch (const PdesAborted&) {
        unwound.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.abort();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(unwound.load(), 3);
}

TEST(Pdes, GateKeysOrderCycleMajorCoreMinor) {
  EXPECT_LT(PdesGate::key_of(7, 1023), PdesGate::key_of(8, 0));
  EXPECT_LT(PdesGate::key_of(8, 0), PdesGate::key_of(8, 1));
  EXPECT_EQ(PdesGate::key_of(kNeverCycle, 5), PdesGate::kDoneBound);
  EXPECT_LT(PdesGate::key_of(u64{1} << 50, 0), PdesGate::kDoneBound);
}

}  // namespace
}  // namespace virec::sim
