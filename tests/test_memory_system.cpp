// MemorySystem layout and integration tests: reserved register-region
// addressing, code addresses, per-core cache isolation and shared DRAM.
#include <gtest/gtest.h>

#include <set>

#include "mem/memory_system.hpp"

namespace virec::mem {
namespace {

TEST(Layout, RegAddressesAreDisjointPerThread) {
  MemSystemConfig config;
  config.num_cores = 2;
  MemorySystem ms(config);
  std::set<Addr> seen;
  for (u32 core = 0; core < 2; ++core) {
    for (u32 tid = 0; tid < 16; ++tid) {
      for (u32 reg = 0; reg < 31; ++reg) {
        const Addr addr = ms.reg_addr(core, tid, reg);
        EXPECT_TRUE(seen.insert(addr).second) << core << "/" << tid << "/"
                                              << reg;
        EXPECT_TRUE(ms.in_reg_region(addr));
      }
      EXPECT_TRUE(seen.insert(ms.sysreg_addr(core, tid)).second);
    }
  }
}

TEST(Layout, GprsSpanFourLinesSysregsOneMore) {
  MemorySystem ms(MemSystemConfig{});
  const Addr base = ms.context_base(0, 0);
  EXPECT_EQ(ms.reg_addr(0, 0, 0), base);
  EXPECT_EQ(ms.reg_addr(0, 0, 7), base + 56);       // same line
  EXPECT_EQ(line_of(ms.reg_addr(0, 0, 8)), base + 64);
  EXPECT_EQ(ms.sysreg_addr(0, 0), base + 4 * kLineBytes);
}

TEST(Layout, ContextsAreLineAligned) {
  MemorySystem ms(MemSystemConfig{});
  for (u32 tid = 0; tid < 8; ++tid) {
    EXPECT_EQ(ms.context_base(0, tid) % kLineBytes, 0u);
  }
}

TEST(Layout, RegRegionDoesNotOverlapDataOrCode) {
  MemorySystem ms(MemSystemConfig{});
  EXPECT_FALSE(ms.in_reg_region(0x2000'0000));      // workload arrays
  EXPECT_FALSE(ms.in_reg_region(MemorySystem::code_addr(100)));
  EXPECT_TRUE(ms.in_reg_region(MemorySystem::kRegRegionBase));
}

TEST(Layout, CodeAddressesAreSequential) {
  EXPECT_EQ(MemorySystem::code_addr(1) - MemorySystem::code_addr(0), 4u);
}

TEST(Integration, PerCoreCachesAreIndependent) {
  MemSystemConfig config;
  config.num_cores = 2;
  MemorySystem ms(config);
  ms.dcache(0).access(0x1000, false, 0);
  EXPECT_TRUE(ms.dcache(0).probe(0x1000));
  EXPECT_FALSE(ms.dcache(1).probe(0x1000));
}

TEST(Integration, CoresShareDramBandwidth) {
  MemSystemConfig config;
  config.num_cores = 2;
  MemorySystem ms(config);
  // Same instant, both cores miss: the second completes later because
  // the crossbar and DRAM serialise the transfers.
  const Cycle a = ms.dcache(0).access(0x10000, false, 0).done;
  const Cycle b = ms.dcache(1).access(0x20000, false, 0).done;
  EXPECT_NE(a, b);
}

TEST(Integration, L2OptionInterposes) {
  MemSystemConfig config;
  config.has_l2 = true;
  MemorySystem ms(config);
  // First touch misses through L2 to DRAM; evicting it from L1 and
  // re-touching must be served much faster (L2 hit).
  const Cycle cold = ms.dcache(0).access(0x5000, false, 0).done;
  // Thrash the L1 set.
  Cycle t = cold + 1;
  const u32 stride = ms.dcache(0).num_sets() * kLineBytes;
  for (u32 i = 1; i <= 4; ++i) {
    t = ms.dcache(0).access(0x5000 + i * stride, false, t).done + 1;
  }
  ASSERT_FALSE(ms.dcache(0).probe(0x5000));
  const Cycle warm_start = t;
  const Cycle warm = ms.dcache(0).access(0x5000, false, warm_start).done;
  EXPECT_LT(warm - warm_start, cold);
}

TEST(Integration, ResetTimingPreservesFunctionalMemory) {
  MemorySystem ms(MemSystemConfig{});
  ms.memory().write_u64(0x1234, 99);
  ms.dcache(0).access(0x1234, false, 0);
  ms.reset_timing();
  EXPECT_EQ(ms.memory().read_u64(0x1234), 99u);
  EXPECT_FALSE(ms.dcache(0).probe(0x1234));
  EXPECT_EQ(ms.dcache(0).stats().get("reads"), 0.0);
}

TEST(Integration, PerContextStrideFitsGprsAndSysregs) {
  // 4 GPR lines + 1 sysreg line = 320 B must fit in the 512 B stride.
  EXPECT_GE(MemorySystem::kBytesPerContext, 5 * kLineBytes);
  // And 64 contexts per core must fit the per-core region.
  EXPECT_GE(MemorySystem::kRegRegionPerCore,
            64 * MemorySystem::kBytesPerContext);
}

}  // namespace
}  // namespace virec::mem
