// Rollback queue tests: FIFO discipline, C-bit compaction on flush and
// the oldest-is-memory CSL mask input.
#include <gtest/gtest.h>

#include "core/rollback_queue.hpp"

namespace virec::core {
namespace {

RollbackQueue::Entry entry_for(u16 phys, u8 tid, isa::RegId arch,
                               bool is_mem = false) {
  RollbackQueue::Entry e;
  e.count = 1;
  e.phys[0] = phys;
  e.tid[0] = tid;
  e.arch[0] = arch;
  e.is_mem = is_mem;
  return e;
}

TEST(RollbackQueue, PushPopFifo) {
  RollbackQueue queue(4);
  queue.push(entry_for(0, 0, 1, true));
  queue.push(entry_for(1, 0, 2, false));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_TRUE(queue.oldest_is_mem());
  queue.pop_oldest();
  EXPECT_FALSE(queue.oldest_is_mem());
  queue.pop_oldest();
  EXPECT_TRUE(queue.empty());
}

TEST(RollbackQueue, OverflowThrows) {
  RollbackQueue queue(2);
  queue.push(entry_for(0, 0, 0));
  queue.push(entry_for(1, 0, 1));
  EXPECT_THROW(queue.push(entry_for(2, 0, 2)), std::logic_error);
}

TEST(RollbackQueue, UnderflowThrows) {
  RollbackQueue queue(2);
  EXPECT_THROW(queue.pop_oldest(), std::logic_error);
}

TEST(RollbackQueue, FlushResetsCBitsOfQueuedRegisters) {
  TagStore tags(4, 2, PolicyKind::kLRC);
  std::vector<u8> locked(4, 0);
  const int a = tags.allocate(0, 5, locked, nullptr);
  const int b = tags.allocate(0, 6, locked, nullptr);
  const int c = tags.allocate(0, 7, locked, nullptr);
  RollbackQueue queue(4);
  queue.push(entry_for(static_cast<u16>(a), 0, 5));
  queue.push(entry_for(static_cast<u16>(b), 0, 6));
  // Entry c committed already (not in queue).
  queue.flush_to(tags);
  EXPECT_FALSE(tags.entry(static_cast<u32>(a)).c_bit);
  EXPECT_FALSE(tags.entry(static_cast<u32>(b)).c_bit);
  EXPECT_TRUE(tags.entry(static_cast<u32>(c)).c_bit);
  EXPECT_TRUE(queue.empty());
}

TEST(RollbackQueue, FlushIgnoresRemappedEntries) {
  TagStore tags(1, 2, PolicyKind::kLRU);
  std::vector<u8> locked(1, 0);
  const int idx = tags.allocate(0, 5, locked, nullptr);
  RollbackQueue queue(4);
  queue.push(entry_for(static_cast<u16>(idx), 0, 5));
  // The entry is remapped to another register before the flush.
  tags.allocate(1, 3, locked, nullptr);
  queue.flush_to(tags);
  EXPECT_TRUE(tags.entry(0).c_bit);  // new mapping untouched
}

TEST(RollbackQueue, ClearDiscardsWithoutTouchingCBits) {
  TagStore tags(2, 1, PolicyKind::kLRC);
  std::vector<u8> locked(2, 0);
  const int idx = tags.allocate(0, 1, locked, nullptr);
  RollbackQueue queue(4);
  queue.push(entry_for(static_cast<u16>(idx), 0, 1));
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_TRUE(tags.entry(static_cast<u32>(idx)).c_bit);
}

TEST(RollbackQueue, MultiRegisterEntries) {
  TagStore tags(4, 1, PolicyKind::kLRC);
  std::vector<u8> locked(4, 0);
  const int a = tags.allocate(0, 1, locked, nullptr);
  const int b = tags.allocate(0, 2, locked, nullptr);
  RollbackQueue::Entry e;
  e.count = 2;
  e.phys = {static_cast<u16>(a), static_cast<u16>(b)};
  e.tid = {0, 0};
  e.arch = {1, 2};
  RollbackQueue queue(4);
  queue.push(e);
  queue.flush_to(tags);
  EXPECT_FALSE(tags.entry(static_cast<u32>(a)).c_bit);
  EXPECT_FALSE(tags.entry(static_cast<u32>(b)).c_bit);
}

TEST(RollbackQueue, DepthAccessor) {
  RollbackQueue queue(8);
  EXPECT_EQ(queue.depth(), 8u);
}

}  // namespace
}  // namespace virec::core
