// DRAM timing model tests: row-buffer behaviour, bank conflicts and
// channel interleaving.
#include <gtest/gtest.h>

#include "mem/dram.hpp"

namespace virec::mem {
namespace {

DramConfig one_bank() {
  DramConfig config;
  config.channels = 1;
  config.banks_per_channel = 1;
  return config;
}

TEST(Dram, FirstAccessPaysActivate) {
  DramModel dram(one_bank());
  const DramConfig c = one_bank();
  const Cycle done = dram.line_access(0, false, 0);
  EXPECT_EQ(done, c.t_rcd + c.t_cl + c.burst_cycles);
}

TEST(Dram, RowHitIsFaster) {
  DramModel dram(one_bank());
  const DramConfig c = one_bank();
  const Cycle first = dram.line_access(0, false, 0);
  // Same row, after the bank is free again.
  const Cycle second = dram.line_access(64, false, first);
  EXPECT_EQ(second - first, c.t_cl + c.burst_cycles);
  EXPECT_EQ(dram.stats().get("row_hits"), 1.0);
}

TEST(Dram, RowConflictPaysPrecharge) {
  DramModel dram(one_bank());
  const DramConfig c = one_bank();
  const Cycle first = dram.line_access(0, false, 0);
  const Cycle second = dram.line_access(c.row_bytes * 4, false, first);
  EXPECT_EQ(second - first, c.t_rp + c.t_rcd + c.t_cl + c.burst_cycles);
  EXPECT_EQ(dram.stats().get("row_conflicts"), 1.0);
}

TEST(Dram, BusyBankDelaysRequest) {
  DramModel dram(one_bank());
  const Cycle first = dram.line_access(0, false, 0);
  // Issued while the bank is still busy: queues behind it.
  const Cycle second = dram.line_access(64, false, 1);
  EXPECT_GT(second, first);
  EXPECT_GT(dram.stats().get("bank_conflict_cycles"), 0.0);
}

TEST(Dram, ChannelsServeLinesIndependently) {
  DramConfig config;
  config.channels = 2;
  config.banks_per_channel = 1;
  DramModel dram(config);
  // Adjacent lines interleave across channels: both can start at 0.
  const Cycle a = dram.line_access(0, false, 0);
  const Cycle b = dram.line_access(64, false, 0);
  EXPECT_EQ(a, b);
}

TEST(Dram, SameChannelLinesSerialiseOnBank) {
  DramConfig config;
  config.channels = 2;
  config.banks_per_channel = 1;
  DramModel dram(config);
  const Cycle a = dram.line_access(0, false, 0);
  const Cycle b = dram.line_access(128, false, 0);  // same channel, same bank
  EXPECT_GT(b, a);
}

TEST(Dram, ManyBanksOverlap) {
  DramConfig config;
  config.channels = 1;
  config.banks_per_channel = 16;
  config.row_bytes = 2048;
  DramModel dram(config);
  // 16 requests to 16 different banks at the same instant: completion
  // spread should be limited by the shared data bus, not full
  // serialisation of activates.
  Cycle last = 0;
  for (u32 b = 0; b < 16; ++b) {
    last = std::max(last, dram.line_access(b * 64, false, 0));
  }
  DramModel serial(one_bank());
  Cycle serial_last = 0;
  for (u32 i = 0; i < 16; ++i) {
    serial_last = serial.line_access(i * config.row_bytes, false, serial_last);
  }
  EXPECT_LT(last, serial_last);
}

TEST(Dram, ResetClearsState) {
  DramModel dram(one_bank());
  dram.line_access(0, false, 0);
  dram.reset();
  EXPECT_EQ(dram.stats().get("reads"), 0.0);
  const DramConfig c = one_bank();
  EXPECT_EQ(dram.line_access(0, false, 0), c.t_rcd + c.t_cl + c.burst_cycles);
}

TEST(Dram, CountsReadsAndWrites) {
  DramModel dram(one_bank());
  dram.line_access(0, false, 0);
  dram.line_access(0, true, 1000);
  EXPECT_EQ(dram.stats().get("reads"), 1.0);
  EXPECT_EQ(dram.stats().get("writes"), 1.0);
}

TEST(Dram, RejectsZeroChannels) {
  DramConfig config;
  config.channels = 0;
  EXPECT_THROW(DramModel{config}, std::invalid_argument);
}

}  // namespace
}  // namespace virec::mem
