// Tests of the observability layer: histogram bucket math, typed-stat
// bookkeeping, the StatRegistry walk, the JSON report (golden-parsed
// with the minimal checker in json_checker.hpp), the sampled time
// series, and the Perfetto trace sink's output framing.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>

#include "common/json.hpp"
#include "common/stats.hpp"
#include "cpu/perfetto_trace.hpp"
#include "json_checker.hpp"
#include "sim/observability.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace virec;
using virec::testing::JsonParser;
using virec::testing::JsonValue;

// --------------------------------------------------------------------
// Histogram bucket math

TEST(Histogram, BucketRoundTrip) {
  // Every representative value must land in a bucket whose bounds
  // contain it: bucket_low(i) <= v < bucket_high(i).
  for (const double v : {0.0, 0.25, 0.999, 1.0, 1.5, 2.0, 3.0, 4.0, 7.0,
                         8.0, 100.0, 1023.0, 1024.0, 1e6, 1e12}) {
    const u32 b = Histogram::bucket_of(v);
    EXPECT_LE(Histogram::bucket_low(b), v) << "v=" << v << " b=" << b;
    EXPECT_LT(v, Histogram::bucket_high(b)) << "v=" << v << " b=" << b;
  }
}

TEST(Histogram, BucketBoundariesAreExclusiveAbove) {
  // 2^k is the first value of bucket k+1, not the last of bucket k.
  for (u32 k = 0; k < 40; ++k) {
    const double v = static_cast<double>(u64{1} << k);
    EXPECT_EQ(Histogram::bucket_of(v), k + 1) << "v=2^" << k;
  }
}

TEST(Histogram, DisabledRecordIsNoOp) {
  Histogram h("h", "");
  h.record(5.0);
  EXPECT_EQ(h.count(), 0u);
  h.set_enabled(true);
  h.record(5.0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, Moments) {
  Histogram h("h", "");
  h.set_enabled(true);
  for (const double v : {1.0, 3.0, 5.0, 7.0}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 16.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 7.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  // 1 -> bucket 1; 3 -> bucket 2; 5, 7 -> bucket 3.
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 2u);
  u64 total = 0;
  for (const u64 c : h.buckets()) total += c;
  EXPECT_EQ(total, h.count());
}

TEST(Histogram, NegativeClampsToBucketZero) {
  Histogram h("h", "");
  h.set_enabled(true);
  h.record(-3.0);
  ASSERT_EQ(h.buckets().size(), 1u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(Histogram, Merge) {
  Histogram a("h", ""), b("h", "");
  a.set_enabled(true);
  b.set_enabled(true);
  a.record(2.0);
  b.record(100.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
  EXPECT_EQ(a.buckets()[Histogram::bucket_of(100.0)], 1u);
}

TEST(Distribution, Stddev) {
  Distribution d("d", "");
  d.set_enabled(true);
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) d.record(v);
  EXPECT_DOUBLE_EQ(d.mean(), 5.0);
  EXPECT_NEAR(d.stddev(), 2.0, 1e-12);  // classic textbook data set
  EXPECT_DOUBLE_EQ(d.min(), 2.0);
  EXPECT_DOUBLE_EQ(d.max(), 9.0);
}

// --------------------------------------------------------------------
// StatSet / StatRegistry

TEST(StatSet, DetailedTogglesTypedStats) {
  StatSet set("comp");
  Histogram* h = set.histogram("lat", "a latency");
  EXPECT_FALSE(h->enabled());
  set.set_detailed(true);
  EXPECT_TRUE(h->enabled());
  // Typed stats created after the toggle inherit it.
  EXPECT_TRUE(set.distribution("late", "")->enabled());
  // The pointer is stable and deduplicated by name.
  EXPECT_EQ(set.histogram("lat"), h);
}

TEST(StatRegistry, FullNamesAndScalars) {
  StatSet core_set("virec");
  core_set.inc("rf_hits", 3);
  StatSet dram_set("dram");
  dram_set.inc("reads", 7);

  StatRegistry reg;
  reg.add("core0", core_set);
  reg.add("", dram_set);

  const std::vector<Stat> all = reg.all_scalars();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].name, "core0.virec.rf_hits");
  EXPECT_DOUBLE_EQ(all[0].value, 3.0);
  EXPECT_EQ(all[1].name, "dram.reads");
  EXPECT_DOUBLE_EQ(all[1].value, 7.0);
}

TEST(StatRegistry, PopulatedHistogramsAndDetailed) {
  StatSet set("c");
  Histogram* h = set.histogram("x");
  StatRegistry reg;
  reg.add("", set);
  reg.set_detailed(true);
  EXPECT_EQ(reg.populated_histograms(), 0u);
  h->record(1.0);
  EXPECT_EQ(reg.populated_histograms(), 1u);
}

// --------------------------------------------------------------------
// JsonWriter <-> checker round trip

TEST(JsonWriter, EscapesAndNesting) {
  std::ostringstream ss;
  {
    JsonWriter w(ss);
    w.begin_object();
    w.kv("quote\"back\\slash", std::string("line\nbreak\ttab"));
    w.key("arr");
    w.begin_array();
    w.value(u64{18446744073709551615ull});
    w.value(-1.5);
    w.value(true);
    w.null();
    w.end_array();
    w.end_object();
  }
  const JsonValue v = JsonParser::parse(ss.str());
  EXPECT_EQ(v.at("quote\"back\\slash").string, "line\nbreak\ttab");
  ASSERT_EQ(v.at("arr").array.size(), 4u);
  EXPECT_DOUBLE_EQ(v.at("arr").array[0].number, 18446744073709551615.0);
  EXPECT_DOUBLE_EQ(v.at("arr").array[1].number, -1.5);
  EXPECT_TRUE(v.at("arr").array[2].boolean);
}

TEST(JsonChecker, RejectsMalformed) {
  EXPECT_THROW(JsonParser::parse("{\"a\": 1,}"), std::runtime_error);
  EXPECT_THROW(JsonParser::parse("[1, 2] trailing"), std::runtime_error);
  EXPECT_THROW(JsonParser::parse("{\"a\": 1 \"b\": 2}"), std::runtime_error);
}

// --------------------------------------------------------------------
// Full JSON report of a real run

struct ReportFixture {
  sim::RunSpec spec;
  sim::RunResult result;
  std::unique_ptr<sim::System> system;

  explicit ReportFixture(Cycle sample_interval = 0) {
    spec.workload = "gather";
    spec.params.iters_per_thread = 64;
    spec.params.elements = 4096;
    const workloads::Workload& workload =
        workloads::find_workload(spec.workload);
    system = std::make_unique<sim::System>(sim::build_config(spec), workload,
                                           spec.params);
    system->set_detailed_stats(true);
    if (sample_interval > 0) system->set_sample_interval(sample_interval);
    result = system->run();
  }

  JsonValue report(Cycle sample_interval = 0) const {
    std::ostringstream ss;
    sim::write_json_report(ss, *system, spec, result, sample_interval);
    return JsonParser::parse(ss.str());
  }
};

TEST(JsonReport, GoldenParse) {
  const ReportFixture fx;
  const JsonValue v = fx.report();

  EXPECT_DOUBLE_EQ(v.at("schema_version").number, 3.0);
  // v3: every report says which build produced it.
  EXPECT_FALSE(v.at("provenance").at("git").string.empty());
  EXPECT_FALSE(v.at("provenance").at("compiler").string.empty());
  EXPECT_FALSE(v.at("provenance").at("build").string.empty());
  EXPECT_EQ(v.at("config").at("workload").string, "gather");
  EXPECT_EQ(v.at("config").at("scheme").string, "virec");
  EXPECT_DOUBLE_EQ(v.at("config").at("threads_per_core").number, 8.0);
  EXPECT_DOUBLE_EQ(v.at("results").at("cycles").number,
                   static_cast<double>(fx.result.cycles));
  EXPECT_DOUBLE_EQ(v.at("results").at("ipc").number, fx.result.ipc);
  EXPECT_TRUE(v.at("results").at("check_ok").boolean);
  EXPECT_FALSE(v.has("time_series"));  // not sampled

  // The stats array carries scalars and at least 3 populated
  // histograms, each with coherent buckets.
  int populated_hists = 0;
  bool saw_scalar = false;
  for (const JsonValue& s : v.at("stats").array) {
    ASSERT_TRUE(s.has("name"));
    ASSERT_TRUE(s.has("kind"));
    if (s.at("kind").string == "scalar") saw_scalar = true;
    if (s.at("kind").string == "histogram" && s.at("count").number > 0) {
      ++populated_hists;
      u64 total = 0;
      for (const JsonValue& b : s.at("buckets").array) {
        EXPECT_LT(b.at("lo").number, b.at("hi").number);
        total += static_cast<u64>(b.at("count").number);
      }
      EXPECT_EQ(total, static_cast<u64>(s.at("count").number))
          << s.at("name").string;
    }
  }
  EXPECT_TRUE(saw_scalar);
  EXPECT_GE(populated_hists, 3) << "want >=3 populated histograms";
}

TEST(JsonReport, TimeSeriesMatchesScalarResult) {
  const Cycle interval = 256;
  const ReportFixture fx(interval);
  const JsonValue v = fx.report(interval);

  const JsonValue& ts = v.at("time_series");
  EXPECT_DOUBLE_EQ(ts.at("interval").number, static_cast<double>(interval));
  const auto& samples = ts.at("samples").array;
  ASSERT_GE(samples.size(), 2u);
  // Cycle stamps are strictly increasing; cumulative instruction
  // counts are monotone.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GT(samples[i].at("cycle").number, samples[i - 1].at("cycle").number);
    EXPECT_GE(samples[i].at("instructions").number,
              samples[i - 1].at("instructions").number);
  }
  // The final cumulative IPC must agree with the scalar result (the
  // acceptance bound is 1%; the implementation makes it exact).
  const double final_ipc = samples.back().at("ipc").number;
  EXPECT_NEAR(final_ipc, fx.result.ipc, 0.01 * fx.result.ipc);
}

TEST(JsonReport, SampledRunMatchesUnsampledRun) {
  const ReportFixture plain;
  const ReportFixture sampled(128);
  // Sampling is pure observation: identical cycles and instructions.
  EXPECT_EQ(plain.result.cycles, sampled.result.cycles);
  EXPECT_EQ(plain.result.instructions, sampled.result.instructions);
}

// --------------------------------------------------------------------
// Perfetto trace sink

TEST(PerfettoTrace, WellFormedEventArray) {
  std::ostringstream ss;
  {
    cpu::PerfettoTraceWriter writer(ss);
    cpu::PerfettoTracer tracer(writer, 0, 2);
    isa::Inst inst;
    tracer.on_fetch(10, 0, 0, inst);
    tracer.on_commit(11, 0, 0, inst);
    tracer.on_data_miss(12, 0, 0, 0x1000, 40);
    tracer.on_reg_fill(12, 0, 3);
    tracer.on_context_switch(13, 0, 1, 0);
    tracer.on_commit(14, 1, 0, inst);
    tracer.on_rollback(15, 1, 2);
    tracer.on_halt(20, 1);
    tracer.flush_open_spans(25);
    writer.finish();
  }
  const JsonValue v = JsonParser::parse(ss.str());
  ASSERT_TRUE(v.is_array());
  int residency = 0, miss = 0, instants = 0;
  for (const JsonValue& e : v.array) {
    ASSERT_TRUE(e.is_object());
    ASSERT_TRUE(e.has("ph"));
    const std::string ph = e.at("ph").string;
    if (ph == "X") {
      EXPECT_GE(e.at("dur").number, 0.0);
      if (e.at("cat").string == "residency") ++residency;
      if (e.at("name").string == "dmiss") ++miss;
    } else if (ph == "i") {
      ++instants;
      EXPECT_EQ(e.at("s").string, "t");
    } else {
      EXPECT_EQ(ph, "M");
    }
  }
  // t0's span closed by the switch, t1's by the halt => 2 residency
  // spans; one miss-stall span; fill + rollback + halt instants.
  EXPECT_EQ(residency, 2);
  EXPECT_EQ(miss, 1);
  EXPECT_GE(instants, 3);
}

TEST(PerfettoTrace, EndToEndGatherRun) {
  ReportFixture fx_builder;  // reuse the spec shape, build a new system
  sim::RunSpec spec = fx_builder.spec;
  const workloads::Workload& workload =
      workloads::find_workload(spec.workload);
  sim::System system(sim::build_config(spec), workload, spec.params);

  std::ostringstream ss;
  cpu::PerfettoTraceWriter writer(ss);
  cpu::PerfettoTracer tracer(writer, 0, spec.threads_per_core);
  system.set_tracer(0, &tracer);
  const sim::RunResult result = system.run();
  ASSERT_TRUE(result.check_ok);
  tracer.flush_open_spans(system.core(0).cycle());
  writer.finish();

  const JsonValue v = JsonParser::parse(ss.str());
  ASSERT_TRUE(v.is_array());
  EXPECT_GT(writer.events_written(), 0u);
  // Context-residency spans exist for several distinct threads.
  std::set<double> resident_tids;
  for (const JsonValue& e : v.array) {
    if (e.at("ph").string == "X" && e.at("cat").string == "residency") {
      resident_tids.insert(e.at("tid").number);
    }
  }
  EXPECT_GE(resident_tids.size(), 2u);
}

// --------------------------------------------------------------------
// Sweep JSON export

TEST(SweepJson, ParsesAndMatchesRecords) {
  sim::Sweep sweep;
  sweep.base().workload = "gather";
  sweep.base().params.iters_per_thread = 16;
  sweep.base().params.elements = 1024;
  sweep.over_threads({2, 4});
  const sim::SweepResults results = sweep.run();

  std::ostringstream ss;
  results.write_json(ss);
  const JsonValue v = JsonParser::parse(ss.str());
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.array.size(), results.size());
  for (std::size_t i = 0; i < v.array.size(); ++i) {
    const JsonValue& rec = v.array[i];
    EXPECT_DOUBLE_EQ(
        rec.at("result").at("cycles").number,
        static_cast<double>(results.records()[i].result.cycles));
    EXPECT_TRUE(rec.at("result").at("check_ok").boolean);
  }
}

}  // namespace
