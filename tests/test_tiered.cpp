// Tiered simulation tests: functional-tier architectural fidelity
// (oracle-enforced at every instruction, so tier boundaries included),
// sampled-estimate sanity, determinism, guards, and checkpoint
// round-trips mid-sampled-run.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "tiered/tiered_runner.hpp"

namespace virec::sim {
namespace {

struct SchemePoint {
  Scheme scheme;
  core::PolicyKind policy;
};

// All six schemes; the ViReC-family entries carry representative
// replacement policies (the others ignore the field).
const std::vector<SchemePoint>& scheme_grid() {
  static const std::vector<SchemePoint> grid = {
      {Scheme::kBanked, core::PolicyKind::kLRC},
      {Scheme::kSoftware, core::PolicyKind::kLRC},
      {Scheme::kPrefetchFull, core::PolicyKind::kLRC},
      {Scheme::kPrefetchExact, core::PolicyKind::kLRC},
      {Scheme::kViReC, core::PolicyKind::kLRC},
      {Scheme::kViReC, core::PolicyKind::kPLRU},
      {Scheme::kViReC, core::PolicyKind::kLRU},
      {Scheme::kNSF, core::PolicyKind::kPLRU},
  };
  return grid;
}

RunSpec small_spec(const std::string& workload, Scheme scheme,
                   core::PolicyKind policy) {
  RunSpec spec;
  spec.workload = workload;
  spec.scheme = scheme;
  spec.policy = policy;
  spec.threads_per_core = 4;
  spec.params.iters_per_thread = 64;
  spec.params.elements = 1 << 12;
  return spec;
}

std::string tmp_path(const std::string& stem) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + stem;
}

// The lockstep oracle runs through BOTH tiers of a sampled run: every
// functional instruction and every detailed commit is compared against
// the shadow interpreter's registers/memory/NZCV through the same
// manager, so any architectural divergence — in particular at the
// cut/resume boundaries between tiers — throws check::CheckError.
TEST(Tiered, OracleHoldsAcrossTierBoundariesAllSchemes) {
  for (const SchemePoint& p : scheme_grid()) {
    RunSpec spec = small_spec("gather", p.scheme, p.policy);
    spec.params.iters_per_thread = 256;
    System system(build_config(spec),
                  workloads::find_workload(spec.workload), spec.params);
    system.enable_check();
    TieredConfig config;
    config.sample_windows = 5;
    config.window_insts = 200;
    config.warmup_insts = 100;
    TieredRunner runner(system, config);
    TieredResult result;
    ASSERT_NO_THROW(result = runner.run())
        << "scheme " << scheme_name(p.scheme);
    EXPECT_TRUE(result.full.check_ok) << result.full.check_msg;
    EXPECT_EQ(result.windows.size(), 5u);
    EXPECT_GT(result.insts_functional, 0u);
    EXPECT_GT(result.insts_detailed, 0u);
  }
}

TEST(Tiered, FunctionalFFMatchesDetailedArchitecturally) {
  for (const SchemePoint& p : scheme_grid()) {
    RunSpec spec = small_spec("stride", p.scheme, p.policy);
    const RunResult detailed = run_spec(spec);

    RunSpec ff = spec;
    ff.functional_ff = true;
    ff.check = true;  // oracle validates every functional instruction
    const TieredResult functional = run_spec_tiered(ff);

    EXPECT_TRUE(functional.full.check_ok) << functional.full.check_msg;
    // Same committed instruction stream, same architectural end state.
    EXPECT_EQ(functional.full.instructions, detailed.instructions)
        << "scheme " << scheme_name(p.scheme);
    EXPECT_EQ(functional.total_insts, detailed.instructions);
  }
}

// Closed accounting survives the tier switches: the FastForward bucket
// absorbs exactly the functional span, so the stack still sums to the
// elapsed cycles.
TEST(Tiered, CycleAccountingStaysClosed) {
  RunSpec spec = small_spec("gather", Scheme::kViReC, core::PolicyKind::kLRC);
  const TieredResult result = [&] {
    System system(build_config(spec),
                  workloads::find_workload(spec.workload), spec.params);
    TieredConfig config;
    config.sample_windows = 4;
    config.window_insts = 200;
    config.warmup_insts = 50;
    TieredRunner runner(system, config);
    return runner.run();
  }();
  double stack_sum = 0.0;
  for (const double v : result.full.cpi_stack) stack_sum += v;
  EXPECT_DOUBLE_EQ(stack_sum, static_cast<double>(result.full.cycles));
  // The fast-forward bucket covers the functional spans: at least one
  // warm-clock cycle per functional instruction (cpi_scale >= 1).
  const double ff = result.full.cpi_stack[static_cast<std::size_t>(
      CycleBucket::kFastForward)];
  EXPECT_GE(static_cast<u64>(ff), result.insts_functional);
}

TEST(Tiered, SampledEstimateTracksFullRun) {
  RunSpec spec = small_spec("gather", Scheme::kViReC, core::PolicyKind::kLRC);
  spec.params.iters_per_thread = 512;
  const RunResult full = run_spec(spec);

  RunSpec sampled = spec;
  sampled.sample_windows = 10;
  sampled.window_insts = 500;
  sampled.warmup_insts = 250;
  const TieredResult tiered = run_spec_tiered(sampled);
  EXPECT_EQ(tiered.total_insts, full.instructions);
  ASSERT_GT(tiered.est_ipc, 0.0);
  const double err =
      std::abs(tiered.est_ipc - full.ipc) / full.ipc;
  // Loose bound for a short run; the bench harness validates the
  // <= 5% target on the long-workload grid.
  EXPECT_LT(err, 0.15) << "est " << tiered.est_ipc << " vs " << full.ipc;
}

// Full-run IPC falls inside the reported confidence interval —
// widened by a 2% calibration slack for residual warm-state bias,
// which at this miniature workload scale can exceed the pure sampling
// variance the interval measures (docs/performance.md discusses the
// known pathological points, stride/software and reduce, which are
// deliberately not in this grid) — on >= 90% of a seeded grid.
TEST(Tiered, ConfidenceIntervalCoversFullIpc) {
  struct Point {
    const char* workload;
    Scheme scheme;
    u64 seed;
  };
  const std::vector<Point> grid = {
      {"gather", Scheme::kViReC, 1},   {"gather", Scheme::kBanked, 2},
      {"gather", Scheme::kNSF, 3},     {"stride", Scheme::kViReC, 4},
      {"stride", Scheme::kBanked, 5},  {"pchase", Scheme::kViReC, 6},
      {"pchase", Scheme::kBanked, 7},  {"gather_local", Scheme::kViReC, 8},
      {"gather", Scheme::kPrefetchFull, 9},
      {"gather", Scheme::kPrefetchExact, 10},
  };
  int covered = 0;
  for (const Point& point : grid) {
    RunSpec spec =
        small_spec(point.workload, point.scheme, core::PolicyKind::kLRC);
    spec.params.iters_per_thread = 2048;
    spec.params.seed = point.seed;
    const RunResult full = run_spec(spec);

    RunSpec sampled = spec;
    sampled.sample_windows = 12;
    sampled.window_insts = 400;
    sampled.warmup_insts = 200;
    const TieredResult tiered = run_spec_tiered(sampled);
    const double slack = 0.02 * full.ipc;
    if (full.ipc >= tiered.est_ipc_lo - slack &&
        full.ipc <= tiered.est_ipc_hi + slack) {
      ++covered;
    } else {
      std::printf("MISS %s/%s full=%.5f est=%.5f [%.5f,%.5f]\n",
                  point.workload, scheme_name(point.scheme), full.ipc,
                  tiered.est_ipc, tiered.est_ipc_lo, tiered.est_ipc_hi);
    }
  }
  EXPECT_GE(covered, 9) << "full-run IPC inside the CI on only " << covered
                        << "/10 grid points";
}

// Identical sampled specs produce bit-identical estimates, and a
// sampled sweep is deterministic and order-stable under --jobs.
TEST(Tiered, SampledRunsAreDeterministic) {
  RunSpec spec = small_spec("gather", Scheme::kViReC, core::PolicyKind::kLRC);
  spec.params.iters_per_thread = 1024;
  spec.sample_windows = 6;
  spec.window_insts = 300;
  spec.warmup_insts = 100;
  const TieredResult a = run_spec_tiered(spec);
  const TieredResult b = run_spec_tiered(spec);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].start_inst, b.windows[i].start_inst);
    EXPECT_EQ(a.windows[i].cycles, b.windows[i].cycles);
    EXPECT_EQ(a.windows[i].insts, b.windows[i].insts);
  }
  EXPECT_DOUBLE_EQ(a.est_ipc, b.est_ipc);
  EXPECT_DOUBLE_EQ(a.cpi_ci_half, b.cpi_ci_half);

  Sweep sweep;
  sweep.base() = spec;
  sweep.over_schemes({Scheme::kBanked, Scheme::kViReC, Scheme::kNSF})
      .over_threads({2, 4});
  const SweepResults serial = sweep.run(/*jobs=*/1);
  const SweepResults parallel = sweep.run(/*jobs=*/2);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.records()[i].result.cycles,
              parallel.records()[i].result.cycles);
    EXPECT_DOUBLE_EQ(serial.records()[i].result.ipc,
                     parallel.records()[i].result.ipc);
  }
}

TEST(Tiered, CheckpointRoundTripMidSampledRun) {
  RunSpec spec = small_spec("gather", Scheme::kViReC, core::PolicyKind::kLRC);
  spec.params.iters_per_thread = 512;
  TieredConfig config;
  config.sample_windows = 6;
  config.window_insts = 250;
  config.warmup_insts = 100;
  const std::string path = tmp_path("virec_tiered_ckpt.vckpt");

  System sys_a(build_config(spec), workloads::find_workload(spec.workload),
               spec.params);
  TieredRunner runner_a(sys_a, config);
  runner_a.set_window_hook([&](u32 done) {
    if (done == 2) runner_a.save(path);
  });
  const TieredResult uninterrupted = runner_a.run();

  System sys_b(build_config(spec), workloads::find_workload(spec.workload),
               spec.params);
  TieredRunner runner_b(sys_b, config);
  runner_b.restore(path);
  const TieredResult resumed = runner_b.run();
  std::remove(path.c_str());

  ASSERT_EQ(resumed.windows.size(), uninterrupted.windows.size());
  for (std::size_t i = 0; i < resumed.windows.size(); ++i) {
    EXPECT_EQ(resumed.windows[i].start_inst,
              uninterrupted.windows[i].start_inst);
    EXPECT_EQ(resumed.windows[i].cycles, uninterrupted.windows[i].cycles);
    EXPECT_EQ(resumed.windows[i].insts, uninterrupted.windows[i].insts);
  }
  EXPECT_DOUBLE_EQ(resumed.est_ipc, uninterrupted.est_ipc);
  EXPECT_EQ(resumed.full.instructions, uninterrupted.full.instructions);
  EXPECT_TRUE(resumed.full.check_ok);
}

TEST(Tiered, GuardsRejectInvalidConfigs) {
  // Zero-size measurement windows.
  TieredConfig zero;
  zero.sample_windows = 4;
  zero.window_insts = 0;
  EXPECT_THROW(zero.validate(), std::invalid_argument);
  // Fast-forward and sampling are exclusive.
  TieredConfig both;
  both.sample_windows = 4;
  both.functional_ff = true;
  EXPECT_THROW(both.validate(), std::invalid_argument);
  // Sampling + check rejected at the spec level.
  RunSpec checked = small_spec("gather", Scheme::kViReC,
                               core::PolicyKind::kLRC);
  checked.sample_windows = 4;
  checked.check = true;
  EXPECT_THROW(run_spec_tiered(checked), std::invalid_argument);
  // Multi-core sampling unsupported.
  RunSpec multi = small_spec("gather", Scheme::kViReC, core::PolicyKind::kLRC);
  multi.num_cores = 2;
  multi.sample_windows = 4;
  EXPECT_THROW(run_spec_tiered(multi), std::invalid_argument);
  // Windows that cannot fit the workload (warm-up + window exceed the
  // per-window instruction spacing for every window).
  RunSpec fat = small_spec("gather", Scheme::kViReC, core::PolicyKind::kLRC);
  fat.params.iters_per_thread = 8;
  fat.sample_windows = 50;
  fat.window_insts = 100'000;
  fat.warmup_insts = 100'000;
  EXPECT_THROW(run_spec_tiered(fat), std::invalid_argument);
}

// A spec without sampling flags takes the pre-tiered path and is
// bit-identical to a direct System::run().
TEST(Tiered, UnsampledSpecUnchanged) {
  RunSpec spec = small_spec("gather", Scheme::kViReC, core::PolicyKind::kLRC);
  const RunResult via_spec = run_spec(spec);
  System system(build_config(spec), workloads::find_workload(spec.workload),
                spec.params);
  const RunResult direct = system.run();
  EXPECT_EQ(via_spec.cycles, direct.cycles);
  EXPECT_EQ(via_spec.instructions, direct.instructions);
  for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
    EXPECT_DOUBLE_EQ(via_spec.cpi_stack[b], direct.cpi_stack[b]);
  }
  EXPECT_DOUBLE_EQ(
      via_spec.cpi_stack[static_cast<std::size_t>(CycleBucket::kFastForward)],
      0.0);
}

}  // namespace
}  // namespace virec::sim
