// ProgramBuilder and Program tests.
#include <gtest/gtest.h>

#include "kasm/builder.hpp"

namespace virec::kasm {
namespace {

TEST(Builder, EmitsInstructionsInOrder) {
  ProgramBuilder b;
  b.mov_imm(X(0), 1).add_imm(X(0), X(0), 2).halt();
  const Program p = b.build();
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.at(0).op, Op::kMovImm);
  EXPECT_EQ(p.at(1).op, Op::kAddImm);
  EXPECT_EQ(p.at(2).op, Op::kHalt);
}

TEST(Builder, ResolvesBackwardLabel) {
  ProgramBuilder b;
  b.label("top").sub_imm(X(0), X(0), 1).cbnz(X(0), "top").halt();
  const Program p = b.build();
  EXPECT_EQ(p.at(1).target, 0);
}

TEST(Builder, ResolvesForwardLabel) {
  ProgramBuilder b;
  b.cbz(X(0), "end").nop().label("end").halt();
  const Program p = b.build();
  EXPECT_EQ(p.at(0).target, 2);
}

TEST(Builder, UnresolvedLabelThrows) {
  ProgramBuilder b;
  b.b("missing").halt();
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(Builder, DuplicateLabelThrows) {
  ProgramBuilder b;
  b.label("x");
  EXPECT_THROW(b.label("x"), std::invalid_argument);
}

TEST(Builder, MemoryHelpers) {
  ProgramBuilder b;
  b.ldr(X(0), X(1), 8);
  b.ldr(X(0), X(1), X(2), 3);
  b.ldr_post(X(0), X(1), 8);
  b.str_pre(X(0), X(1), -8);
  b.halt();
  const Program p = b.build();
  EXPECT_EQ(p.at(0).mem_mode, MemMode::kOffset);
  EXPECT_EQ(p.at(1).mem_mode, MemMode::kRegOffset);
  EXPECT_EQ(p.at(2).mem_mode, MemMode::kPostIndex);
  EXPECT_EQ(p.at(3).mem_mode, MemMode::kPreIndex);
  EXPECT_EQ(p.at(3).imm, -8);
}

TEST(Builder, SizeTracksEmitted) {
  ProgramBuilder b;
  EXPECT_EQ(b.size(), 0u);
  b.nop().nop();
  EXPECT_EQ(b.size(), 2u);
}

TEST(Program, LabelLookupThrowsOnUnknown) {
  ProgramBuilder b;
  b.label("a").halt();
  const Program p = b.build();
  EXPECT_EQ(p.label("a"), 0u);
  EXPECT_THROW(p.label("b"), std::out_of_range);
}

TEST(Program, ValidateRejectsOutOfRangeTarget) {
  std::vector<isa::Inst> code(2);
  code[0].op = isa::Op::kB;
  code[0].target = 99;
  code[1].op = isa::Op::kHalt;
  Program p(std::move(code), {});
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Program, ValidateRejectsMissingHalt) {
  std::vector<isa::Inst> code(1);
  code[0].op = isa::Op::kNop;
  Program p(std::move(code), {});
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Program, EmptyProgramIsValid) {
  Program p;
  EXPECT_NO_THROW(p.validate());
  EXPECT_TRUE(p.empty());
}

TEST(Builder, FluentChainingReturnsSelf) {
  ProgramBuilder b;
  ProgramBuilder& ref = b.nop();
  EXPECT_EQ(&ref, &b);
}

TEST(Builder, BlAndRet) {
  ProgramBuilder b;
  b.bl("f").halt().label("f").ret();
  const Program p = b.build();
  EXPECT_EQ(p.at(0).op, Op::kBl);
  EXPECT_EQ(p.at(0).target, 2);
  EXPECT_EQ(p.at(2).op, Op::kRet);
}

TEST(Builder, RawEmit) {
  ProgramBuilder b;
  isa::Inst inst;
  inst.op = Op::kHalt;
  b.emit(inst);
  EXPECT_EQ(b.build().at(0).op, Op::kHalt);
}

}  // namespace
}  // namespace virec::kasm
