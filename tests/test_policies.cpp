// Replacement policy tests, including the Figure 5 / Figure 6 scenarios
// from the paper (PLRU thrashing vs MRT-PLRU thread targeting vs LRC
// commit-bit differentiation).
#include <gtest/gtest.h>

#include <array>

#include "core/replacement_policy.hpp"

namespace virec::core {
namespace {

std::vector<RfEntry> make_entries(u32 n) {
  std::vector<RfEntry> entries(n);
  return entries;
}

std::vector<u8> no_locks(u32 n) { return std::vector<u8>(n, 0); }

void insert(ReplacementPolicy& policy, std::vector<RfEntry>& entries, u32 idx,
            u8 tid, u8 arch) {
  policy.on_insert(entries, idx, tid, arch);
}

TEST(PolicyNames, RoundTrip) {
  for (PolicyKind kind : all_policies()) {
    EXPECT_EQ(parse_policy(policy_name(kind)), kind);
  }
  EXPECT_THROW(parse_policy("bogus"), std::invalid_argument);
}

TEST(PolicyNames, AllSevenPresent) { EXPECT_EQ(all_policies().size(), 7u); }

TEST(Plru, EvictsOldestAge) {
  ReplacementPolicy plru(PolicyKind::kPLRU);
  auto entries = make_entries(3);
  for (u32 i = 0; i < 3; ++i) insert(plru, entries, i, 0, static_cast<u8>(i));
  // Touch 1 and 2 repeatedly; 0 ages out.
  for (int round = 0; round < 4; ++round) {
    plru.on_access(entries, 1);
    plru.on_instruction(entries, {1});
    plru.on_access(entries, 2);
    plru.on_instruction(entries, {2});
  }
  EXPECT_EQ(plru.pick_victim(entries, no_locks(3)), 0);
}

TEST(Plru, AgeSaturatesAtMax) {
  ReplacementPolicy plru(PolicyKind::kPLRU);
  auto entries = make_entries(2);
  insert(plru, entries, 0, 0, 0);
  insert(plru, entries, 1, 0, 1);
  for (int i = 0; i < 100; ++i) plru.on_instruction(entries, {});
  EXPECT_EQ(entries[0].age, ReplacementPolicy::kMaxAge);
  EXPECT_EQ(entries[1].age, ReplacementPolicy::kMaxAge);
}

TEST(Plru, IgnoresThreads) {
  // Figure 5(b): PLRU evicts the upcoming thread's old registers even
  // though they are needed soon.
  ReplacementPolicy plru(PolicyKind::kPLRU);
  auto entries = make_entries(4);
  insert(plru, entries, 0, 0, 2);  // blue thread x2 (old)
  insert(plru, entries, 1, 0, 4);  // blue thread x4 (old)
  insert(plru, entries, 2, 1, 5);  // red thread x5 (fresh)
  insert(plru, entries, 3, 1, 6);  // red thread x6 (fresh)
  // Red thread executes for a while: blue entries age.
  for (int i = 0; i < 5; ++i) {
    plru.on_access(entries, 2);
    plru.on_instruction(entries, {2});
    plru.on_access(entries, 3);
    plru.on_instruction(entries, {3});
  }
  plru.on_context_switch(/*from_tid=*/1, /*to_tid=*/0);
  // Even though thread 0 runs next, PLRU victimises its aged registers.
  const int victim = plru.pick_victim(entries, no_locks(4));
  EXPECT_EQ(entries[static_cast<u32>(victim)].tid, 0);
}

TEST(MrtPlru, TargetsMostRecentlySuspendedThread) {
  // Figure 5(c): MRT-PLRU evicts from the thread that just suspended.
  ReplacementPolicy mrt(PolicyKind::kMrtPLRU);
  auto entries = make_entries(4);
  insert(mrt, entries, 0, 0, 2);
  insert(mrt, entries, 1, 0, 4);
  insert(mrt, entries, 2, 1, 5);
  insert(mrt, entries, 3, 1, 6);
  for (int i = 0; i < 5; ++i) {
    mrt.on_access(entries, 2);
    mrt.on_instruction(entries, {2});
  }
  mrt.on_context_switch(/*from_tid=*/1, /*to_tid=*/0);
  const int victim = mrt.pick_victim(entries, no_locks(4));
  // Thread 1 just suspended (runs furthest in the future): its entries
  // must be victimised despite their fresh ages.
  EXPECT_EQ(entries[static_cast<u32>(victim)].tid, 1);
}

TEST(TBits, SwitchSetsFromToMaxAndDecrementsOthers) {
  ReplacementPolicy lrc(PolicyKind::kLRC);
  auto entries = make_entries(3);
  insert(lrc, entries, 0, 0, 1);
  insert(lrc, entries, 1, 1, 1);
  insert(lrc, entries, 2, 2, 1);
  lrc.set_t(entries[2], 3);
  lrc.on_context_switch(/*from_tid=*/0, /*to_tid=*/1);
  EXPECT_EQ(lrc.t_of(entries[0]), ReplacementPolicy::kMaxTBits);
  EXPECT_EQ(lrc.t_of(entries[1]), 0);  // incoming thread forced to zero
  EXPECT_EQ(lrc.t_of(entries[2]), 2);  // decremented
}

TEST(TBits, DecrementSaturatesAtZero) {
  ReplacementPolicy lrc(PolicyKind::kLRC);
  auto entries = make_entries(2);
  insert(lrc, entries, 0, 2, 1);
  insert(lrc, entries, 1, 3, 1);
  for (int i = 0; i < 10; ++i) lrc.on_context_switch(0, 1);
  EXPECT_EQ(lrc.t_of(entries[0]), 0);
  EXPECT_EQ(lrc.t_of(entries[1]), 0);
}

TEST(Lrc, CommitBitBreaksTies) {
  // Figure 6: within the suspended thread, committed registers are
  // evicted before flushed (to-be-replayed) ones.
  ReplacementPolicy lrc(PolicyKind::kLRC);
  auto entries = make_entries(3);
  insert(lrc, entries, 0, 1, 0);  // x0: committed
  insert(lrc, entries, 1, 1, 2);  // x2: in flight, flushed
  insert(lrc, entries, 2, 1, 5);  // x5: in flight, flushed
  // All same thread, saturate ages equally.
  for (int i = 0; i < 10; ++i) lrc.on_instruction(entries, {});
  // Rollback resets C of the flushed ones.
  ReplacementPolicy::on_flush_reset(entries[1]);
  ReplacementPolicy::on_flush_reset(entries[2]);
  lrc.on_context_switch(/*from_tid=*/1, /*to_tid=*/0);
  const int victim = lrc.pick_victim(entries, no_locks(3));
  EXPECT_EQ(victim, 0);  // the committed register goes first
}

TEST(Lrc, SpeculativeCommitSetOnAccess) {
  ReplacementPolicy lrc(PolicyKind::kLRC);
  auto entries = make_entries(1);
  insert(lrc, entries, 0, 0, 3);
  ReplacementPolicy::on_flush_reset(entries[0]);
  EXPECT_FALSE(entries[0].c_bit);
  lrc.on_access(entries, 0);
  EXPECT_TRUE(entries[0].c_bit);
}

TEST(Lrc, ThreadFieldDominatesCommitField) {
  ReplacementPolicy lrc(PolicyKind::kLRC);
  auto entries = make_entries(2);
  insert(lrc, entries, 0, 0, 1);  // current thread, committed
  insert(lrc, entries, 1, 1, 1);  // suspended thread, flushed
  lrc.set_t(entries[0], 0);
  entries[0].c_bit = true;
  lrc.set_t(entries[1], ReplacementPolicy::kMaxTBits);
  entries[1].c_bit = false;
  // Suspended-thread entry must still be preferred (T is most
  // significant in the priority word).
  EXPECT_EQ(lrc.pick_victim(entries, no_locks(2)), 1);
}

TEST(Lru, PerfectTimestampOrder) {
  ReplacementPolicy lru(PolicyKind::kLRU);
  auto entries = make_entries(3);
  for (u32 i = 0; i < 3; ++i) insert(lru, entries, i, 0, static_cast<u8>(i));
  lru.on_access(entries, 0);  // 0 is now newest
  EXPECT_EQ(lru.pick_victim(entries, no_locks(3)), 1);
}

TEST(Lru, DistinguishesBeyondAgeSaturation) {
  // Perfect LRU keeps ordering that PLRU's 3-bit ages lose.
  ReplacementPolicy lru(PolicyKind::kLRU);
  ReplacementPolicy plru(PolicyKind::kPLRU);
  auto e_lru = make_entries(2);
  auto e_plru = make_entries(2);
  insert(lru, e_lru, 0, 0, 0);
  insert(lru, e_lru, 1, 0, 1);
  insert(plru, e_plru, 0, 0, 0);
  insert(plru, e_plru, 1, 0, 1);
  // Long time passes; both saturate in PLRU.
  for (int i = 0; i < 20; ++i) {
    lru.on_instruction(e_lru, {});
    plru.on_instruction(e_plru, {});
  }
  EXPECT_EQ(e_plru[0].age, e_plru[1].age);       // PLRU cannot tell apart
  EXPECT_EQ(lru.pick_victim(e_lru, no_locks(2)), 0);  // LRU still can
}

TEST(MrtLru, ThreadThenTimestamp) {
  ReplacementPolicy mrtlru(PolicyKind::kMrtLRU);
  auto entries = make_entries(4);
  insert(mrtlru, entries, 0, 0, 0);
  insert(mrtlru, entries, 1, 0, 1);
  insert(mrtlru, entries, 2, 1, 0);
  insert(mrtlru, entries, 3, 1, 1);
  mrtlru.on_access(entries, 2);  // thread1/x0 refreshed
  mrtlru.on_context_switch(/*from_tid=*/1, /*to_tid=*/0);
  // Victim from thread 1 (max T); among those, oldest timestamp = idx 3.
  EXPECT_EQ(mrtlru.pick_victim(entries, no_locks(4)), 3);
}

TEST(Fifo, EvictsInInsertionOrder) {
  ReplacementPolicy fifo(PolicyKind::kFIFO);
  auto entries = make_entries(3);
  for (u32 i = 0; i < 3; ++i) insert(fifo, entries, i, 0, static_cast<u8>(i));
  // Touching does not matter for FIFO.
  fifo.on_access(entries, 0);
  EXPECT_EQ(fifo.pick_victim(entries, no_locks(3)), 0);
}

TEST(Random, OnlyPicksValidUnlocked) {
  ReplacementPolicy random(PolicyKind::kRandom, /*seed=*/7);
  auto entries = make_entries(4);
  insert(random, entries, 1, 0, 1);
  insert(random, entries, 3, 0, 3);
  std::vector<u8> locked(4, 0);
  locked[3] = 1;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(random.pick_victim(entries, locked), 1);
  }
}

TEST(AllPolicies, RespectLocks) {
  for (PolicyKind kind : all_policies()) {
    ReplacementPolicy policy(kind);
    auto entries = make_entries(2);
    insert(policy, entries, 0, 0, 0);
    insert(policy, entries, 1, 0, 1);
    std::vector<u8> locked(2, 0);
    locked[0] = 1;
    EXPECT_EQ(policy.pick_victim(entries, locked), 1) << policy_name(kind);
    locked[1] = 1;
    EXPECT_EQ(policy.pick_victim(entries, locked), -1) << policy_name(kind);
  }
}

TEST(AllPolicies, SkipInvalidEntries) {
  for (PolicyKind kind : all_policies()) {
    ReplacementPolicy policy(kind);
    auto entries = make_entries(3);
    insert(policy, entries, 1, 0, 1);  // only index 1 is valid
    EXPECT_EQ(policy.pick_victim(entries, no_locks(3)), 1)
        << policy_name(kind);
  }
}

TEST(AllPolicies, EmptyRfHasNoVictim) {
  for (PolicyKind kind : all_policies()) {
    ReplacementPolicy policy(kind);
    auto entries = make_entries(4);
    EXPECT_EQ(policy.pick_victim(entries, no_locks(4)), -1)
        << policy_name(kind);
  }
}

TEST(TBits, LazyMatchesEagerReference) {
  // The O(1) epoch-mark realisation of on_context_switch must be
  // bit-exact with the eager per-entry walk: from-thread entries go to
  // kMaxTBits, to-thread entries to 0 (from wins when from == to),
  // everything else decrements saturating at zero.
  ReplacementPolicy lrc(PolicyKind::kLRC);
  constexpr u32 kEntries = 16;
  constexpr u8 kThreads = 4;
  auto entries = make_entries(kEntries);
  std::array<u8, kEntries> eager{};
  u64 rng = 0x9e3779b97f4a7c15ull;
  const auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int op = 0; op < 2000; ++op) {
    if (next() % 4 == 0) {
      const u32 idx = static_cast<u32>(next() % kEntries);
      const u8 tid = static_cast<u8>(next() % kThreads);
      lrc.on_insert(entries, idx, tid, static_cast<isa::RegId>(next() % 31));
      eager[idx] = 0;
    } else {
      const int from = static_cast<int>(next() % kThreads);
      const int to = static_cast<int>(next() % kThreads);
      lrc.on_context_switch(from, to);
      for (u32 i = 0; i < kEntries; ++i) {
        if (!entries[i].valid) continue;
        if (entries[i].tid == from) {
          eager[i] = ReplacementPolicy::kMaxTBits;
        } else if (entries[i].tid == to) {
          eager[i] = 0;
        } else if (eager[i] > 0) {
          --eager[i];
        }
      }
    }
    for (u32 i = 0; i < kEntries; ++i) {
      if (!entries[i].valid) continue;
      ASSERT_EQ(lrc.t_of(entries[i]), eager[i])
          << "entry " << i << " after op " << op;
    }
  }
}

TEST(Insert, ResetsAllPolicyState) {
  ReplacementPolicy lrc(PolicyKind::kLRC);
  auto entries = make_entries(1);
  insert(lrc, entries, 0, 0, 5);
  entries[0].age = 5;
  lrc.set_t(entries[0], 3);
  entries[0].dirty = true;
  lrc.on_insert(entries, 0, 2, 7);
  EXPECT_EQ(entries[0].tid, 2);
  EXPECT_EQ(entries[0].arch, 7);
  EXPECT_EQ(entries[0].age, 0);
  EXPECT_EQ(lrc.t_of(entries[0]), 0);
  EXPECT_FALSE(entries[0].dirty);
  EXPECT_TRUE(entries[0].c_bit);
}

}  // namespace
}  // namespace virec::core
