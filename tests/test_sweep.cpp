// Sweep utility tests.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "ckpt/journal.hpp"
#include "sim/sweep.hpp"

namespace virec::sim {
namespace {

Sweep tiny_sweep() {
  Sweep sweep;
  sweep.base().workload = "reduce";
  sweep.base().params.iters_per_thread = 32;
  sweep.base().params.elements = 1 << 12;
  return sweep;
}

TEST(Sweep, GridSizeIsProduct) {
  Sweep sweep = tiny_sweep();
  sweep.over_schemes({Scheme::kBanked, Scheme::kViReC})
      .over_threads({2, 4})
      .over_context_fractions({1.0, 0.5, 0.25});
  EXPECT_EQ(sweep.size(), 12u);
  EXPECT_EQ(sweep.specs().size(), 12u);
}

TEST(Sweep, MissingAxesUseBase) {
  Sweep sweep = tiny_sweep();
  sweep.base().threads_per_core = 3;
  sweep.over_schemes({Scheme::kViReC});
  const std::vector<RunSpec> specs = sweep.specs();
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].threads_per_core, 3u);
  EXPECT_EQ(specs[0].workload, "reduce");
}

TEST(Sweep, RunProducesOneRecordPerPoint) {
  Sweep sweep = tiny_sweep();
  sweep.over_schemes({Scheme::kBanked, Scheme::kViReC}).over_threads({2, 4});
  const SweepResults results = sweep.run();
  EXPECT_EQ(results.size(), 4u);
  for (const SweepRecord& record : results.records()) {
    EXPECT_TRUE(record.result.check_ok);
    EXPECT_GT(record.result.cycles, 0u);
  }
}

TEST(Sweep, CyclesLookup) {
  Sweep sweep = tiny_sweep();
  sweep.over_schemes({Scheme::kBanked, Scheme::kViReC}).over_threads({2});
  const SweepResults results = sweep.run();
  EXPECT_TRUE(
      results.cycles_of("reduce", Scheme::kBanked, 2, 1.0).has_value());
  EXPECT_FALSE(
      results.cycles_of("gather", Scheme::kBanked, 2, 1.0).has_value());
}

TEST(Sweep, WhereFilters) {
  Sweep sweep = tiny_sweep();
  sweep.over_schemes({Scheme::kBanked, Scheme::kViReC}).over_threads({2, 4});
  const SweepResults results = sweep.run();
  const auto banked = results.where([](const SweepRecord& r) {
    return r.spec.scheme == Scheme::kBanked;
  });
  EXPECT_EQ(banked.size(), 2u);
}

TEST(Sweep, CsvHasHeaderAndRows) {
  Sweep sweep = tiny_sweep();
  sweep.over_threads({2});
  const SweepResults results = sweep.run();
  std::ostringstream os;
  results.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("workload,scheme,policy"), std::string::npos);
  EXPECT_NE(csv.find("reduce,virec,lrc"), std::string::npos);
  // header + 1 row
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(Sweep, PolicyAxis) {
  Sweep sweep = tiny_sweep();
  sweep.base().scheme = Scheme::kViReC;
  sweep.base().context_fraction = 0.5;
  sweep.over_policies(
      {core::PolicyKind::kPLRU, core::PolicyKind::kLRC});
  const SweepResults results = sweep.run();
  EXPECT_EQ(results.size(), 2u);
  EXPECT_EQ(results.records()[0].spec.policy, core::PolicyKind::kPLRU);
  EXPECT_EQ(results.records()[1].spec.policy, core::PolicyKind::kLRC);
}

TEST(Sweep, CoresAxisRunsMulticore) {
  Sweep sweep = tiny_sweep();
  sweep.over_cores({1, 2});
  const SweepResults results = sweep.run();
  EXPECT_EQ(results.size(), 2u);
  EXPECT_TRUE(results.records()[1].result.check_ok);
}

TEST(Sweep, FindUsesKeyedIndex) {
  Sweep sweep = tiny_sweep();
  sweep.over_schemes({Scheme::kBanked, Scheme::kViReC})
      .over_context_fractions({1.0, 0.5});
  const SweepResults results = sweep.run();
  const SweepRecord* hit = results.find("reduce", Scheme::kViReC, 8, 0.5);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->spec.scheme, Scheme::kViReC);
  EXPECT_EQ(hit->spec.context_fraction, 0.5);
  EXPECT_EQ(hit->result.cycles,
            results.cycles_of("reduce", Scheme::kViReC, 8, 0.5).value());
  EXPECT_EQ(results.find("reduce", Scheme::kViReC, 8, 0.7), nullptr);
  EXPECT_EQ(results.find("gather", Scheme::kViReC, 8, 0.5), nullptr);
}

TEST(Sweep, ParallelRunIsByteIdenticalToSerial) {
  // Mixed scheme/policy grid; the CSV and JSON documents must come out
  // byte-identical whatever the job count.
  Sweep sweep = tiny_sweep();
  sweep.over_schemes({Scheme::kBanked, Scheme::kViReC})
      .over_policies({core::PolicyKind::kPLRU, core::PolicyKind::kLRC})
      .over_threads({2, 4})
      .over_context_fractions({1.0, 0.5});
  const SweepResults serial = sweep.run(1);
  const SweepResults parallel = sweep.run(4);
  ASSERT_EQ(serial.size(), 16u);
  ASSERT_EQ(parallel.size(), 16u);

  std::ostringstream csv1, csv4, json1, json4;
  serial.write_csv(csv1);
  parallel.write_csv(csv4);
  serial.write_json(json1);
  parallel.write_json(json4);
  EXPECT_EQ(csv1.str(), csv4.str());
  EXPECT_EQ(json1.str(), json4.str());
}

TEST(Sweep, FailingPointPropagatesFromParallelRun) {
  Sweep sweep = tiny_sweep();
  sweep.over_workloads({"reduce", "no-such-kernel", "gather"})
      .over_threads({2, 4});
  // Must throw (unknown workload, wrapped with the point's spec label)
  // and terminate — no deadlocked join.
  EXPECT_THROW(sweep.run(4), std::runtime_error);
  try {
    sweep.run(1);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("workload=no-such-kernel"),
              std::string::npos)
        << e.what();
  }
}

TEST(Sweep, ResumedRunIsByteIdenticalToUninterrupted) {
  // Simulate a killed sweep: journal only half the grid, then resume
  // against the same journal. The resumed CSV and JSON must reproduce
  // an uninterrupted run byte for byte.
  Sweep sweep = tiny_sweep();
  sweep.over_schemes({Scheme::kBanked, Scheme::kViReC})
      .over_policies({core::PolicyKind::kPLRU, core::PolicyKind::kLRC})
      .over_threads({2, 4});
  const std::string path = ::testing::TempDir() + "sweep_resume.vjl";
  std::remove(path.c_str());

  const SweepResults clean = sweep.run(2);

  {
    // "First run, killed partway": journal the first half of the grid.
    ckpt::SweepJournal journal(path);
    const std::vector<RunSpec> grid = sweep.specs();
    for (std::size_t i = 0; i < grid.size() / 2; ++i) {
      journal.record(ckpt::spec_hash(grid[i]), run_spec(grid[i]));
    }
  }

  ckpt::SweepJournal journal(path);
  EXPECT_EQ(journal.load(), sweep.size() / 2);
  const SweepResults resumed = sweep.run(2, &journal);

  std::ostringstream csv_clean, csv_resumed, json_clean, json_resumed;
  clean.write_csv(csv_clean);
  resumed.write_csv(csv_resumed);
  clean.write_json(json_clean);
  resumed.write_json(json_resumed);
  EXPECT_EQ(csv_clean.str(), csv_resumed.str());
  EXPECT_EQ(json_clean.str(), json_resumed.str());

  // The resume appended the other half, so a second resume runs nothing
  // new and still reproduces the same documents.
  ckpt::SweepJournal full(path);
  EXPECT_EQ(full.load(), sweep.size());
  const SweepResults replay = sweep.run(1, &full);
  std::ostringstream csv_replay;
  replay.write_csv(csv_replay);
  EXPECT_EQ(csv_clean.str(), csv_replay.str());
  std::remove(path.c_str());
}

TEST(Sweep, DuplicateGridPointsSimulateOnce) {
  // A threads axis with repeated values collapses to two unique points;
  // the output must still carry one row per grid index, with duplicate
  // rows byte-identical to their representative.
  Sweep sweep = tiny_sweep();
  sweep.over_threads({2, 2, 4, 2});

  const SweepResults results = sweep.run(2);
  ASSERT_EQ(results.size(), 4u);
  std::ostringstream csv_os;
  results.write_csv(csv_os);
  const std::string csv = csv_os.str();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
  EXPECT_EQ(results.records()[0].result.cycles,
            results.records()[1].result.cycles);
  EXPECT_EQ(results.records()[0].result.cycles,
            results.records()[3].result.cycles);

  // With a journal, only the unique points are recorded — and the
  // progress callback still reports every grid index as done.
  const std::string path = ::testing::TempDir() + "sweep_dup.vjl";
  std::remove(path.c_str());
  std::atomic<std::size_t> last_done{0};
  {
    ckpt::SweepJournal journal(path);
    sweep.run(1, &journal,
              [&last_done](std::size_t done, std::size_t, double) {
                last_done = done;
              });
  }
  EXPECT_EQ(last_done.load(), 4u);
  ckpt::SweepJournal reread(path);
  EXPECT_EQ(reread.load(), 2u);  // one entry per unique point

  // Resuming from that journal runs nothing and reproduces the same CSV.
  const SweepResults resumed = sweep.run(1, &reread);
  std::ostringstream csv_resumed;
  resumed.write_csv(csv_resumed);
  EXPECT_EQ(csv, csv_resumed.str());
  std::remove(path.c_str());
}

TEST(Sweep, ConcurrentWritersInterleaveSafely) {
  // Several processes appending to one journal (the documented
  // multi-daemon / multi-sweep sharing mode): every record must survive
  // intact. Forked writers stress the flock + single-write(2) protocol
  // with interleaved appends; synthetic results keep it fast.
  const std::string path = ::testing::TempDir() + "sweep_flock.vjl";
  std::remove(path.c_str());
  constexpr u64 kWriters = 4;
  constexpr u64 kRecords = 64;

  std::vector<pid_t> pids;
  for (u64 w = 0; w < kWriters; ++w) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: append kRecords entries, racing its siblings.
      ckpt::SweepJournal journal(path);
      for (u64 r = 0; r < kRecords; ++r) {
        RunResult result;
        result.cycles = w * 1000 + r;
        result.instructions = r + 1;
        result.ipc = static_cast<double>(w);
        result.check_ok = true;
        journal.record((w << 32) | r, result);
      }
      _exit(0);
    }
    pids.push_back(pid);
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }

  // No torn or lost lines: all writers' records load back exactly.
  ckpt::SweepJournal reread(path);
  EXPECT_EQ(reread.load(), kWriters * kRecords);
  EXPECT_FALSE(reread.provenance().empty());  // header written once
  for (u64 w = 0; w < kWriters; ++w) {
    for (u64 r = 0; r < kRecords; ++r) {
      RunResult out;
      ASSERT_TRUE(reread.lookup((w << 32) | r, &out)) << w << "/" << r;
      EXPECT_EQ(out.cycles, w * 1000 + r);
    }
  }
  std::remove(path.c_str());
}

TEST(Sweep, JournalIgnoresForeignAndCorruptLines) {
  const std::string path = ::testing::TempDir() + "sweep_corrupt.vjl";
  {
    std::ofstream out(path);
    out << "garbage line that is not a journal record\n";
    out << "VJ1 0123456789abcdef 10 20\n";  // truncated record
  }
  ckpt::SweepJournal journal(path);
  EXPECT_EQ(journal.load(), 0u);  // both lines rejected, none crash
  // A fresh record still round-trips through the same file.
  Sweep sweep = tiny_sweep();
  const RunSpec spec = sweep.specs().front();
  journal.record(ckpt::spec_hash(spec), run_spec(spec));
  ckpt::SweepJournal reread(path);
  EXPECT_EQ(reread.load(), 1u);
  RunResult out;
  EXPECT_TRUE(reread.lookup(ckpt::spec_hash(spec), &out));
  EXPECT_EQ(out.cycles, run_spec(spec).cycles);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace virec::sim
