// Simulation-service tests (docs/service.md): the canonical spec
// codec, the content-addressed ResultStore, the SweepService broker
// (cache serving, in-flight dedup, admission control, failure
// delivery), the wire protocol's framing/hex layers, and the Unix
// socket line transport. The end-to-end daemon path (virec-simd +
// virec-sim --connect) is exercised by the CI service smoke job.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/spec_codec.hpp"
#include "common/json_parse.hpp"
#include "svc/protocol.hpp"
#include "svc/result_store.hpp"
#include "svc/socket.hpp"
#include "svc/sweep_service.hpp"

namespace virec {
namespace {

/// A point small enough to simulate in a few milliseconds.
sim::RunSpec quick_spec(u32 threads = 2) {
  sim::RunSpec spec;
  spec.workload = "reduce";
  spec.threads_per_core = threads;
  spec.params.iters_per_thread = 8;
  spec.params.elements = 256;
  return spec;
}

/// Deterministic synthetic result with every field populated, so a
/// codec round trip that drops a field cannot pass by accident.
sim::RunResult synthetic_result() {
  sim::RunResult r;
  r.cycles = 123456789;
  r.instructions = 987654321;
  r.ipc = 1.25e-3;
  r.check_ok = true;
  r.check_msg = "ok-ish";
  r.rf_hit_rate = 0.87654321;
  r.context_switches = 4242;
  r.rf_fills = 17;
  r.rf_spills = 19;
  r.avg_dcache_miss_latency = 33.125;
  for (std::size_t b = 0; b < r.cpi_stack.size(); ++b) {
    r.cpi_stack[b] = 0.001 * static_cast<double>(b + 1);
  }
  return r;
}

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(SpecCodec, SpecRoundTripsExactly) {
  sim::RunSpec spec = quick_spec(4);
  spec.scheme = sim::Scheme::kBanked;
  spec.policy = core::PolicyKind::kPLRU;
  spec.context_fraction = 0.37;
  spec.params.seed = 777;
  spec.dcache_bytes = 8192;
  spec.phys_regs = 48;
  spec.group_spill = true;
  spec.max_cycles = 1'000'000;
  spec.check = true;
  spec.no_skip = true;
  spec.sample_windows = 5;
  spec.window_insts = 2000;
  spec.warmup_insts = 300;

  ckpt::Encoder enc;
  ckpt::encode_spec(enc, spec);
  ckpt::Decoder dec(enc.bytes().data(), enc.size());
  const sim::RunSpec back = ckpt::decode_spec(dec);
  dec.finish();

  EXPECT_EQ(back.workload, spec.workload);
  EXPECT_EQ(back.scheme, spec.scheme);
  EXPECT_EQ(back.policy, spec.policy);
  EXPECT_EQ(back.threads_per_core, spec.threads_per_core);
  EXPECT_EQ(back.context_fraction, spec.context_fraction);
  EXPECT_EQ(back.params.seed, spec.params.seed);
  EXPECT_EQ(back.dcache_bytes, spec.dcache_bytes);
  EXPECT_EQ(back.phys_regs, spec.phys_regs);
  EXPECT_EQ(back.group_spill, spec.group_spill);
  EXPECT_EQ(back.max_cycles, spec.max_cycles);
  EXPECT_EQ(back.check, spec.check);
  EXPECT_EQ(back.no_skip, spec.no_skip);
  EXPECT_EQ(back.sample_windows, spec.sample_windows);
  EXPECT_EQ(back.window_insts, spec.window_insts);
  EXPECT_EQ(back.warmup_insts, spec.warmup_insts);
  EXPECT_EQ(ckpt::spec_hash(back), ckpt::spec_hash(spec));
}

TEST(SpecCodec, IdentityIgnoresRunModeFlags) {
  // check/no_skip change how a run is validated/stepped, not its
  // outcome (test_skip.cpp proves bit-equality), so a checked request
  // must hit the cache of an unchecked run.
  sim::RunSpec a = quick_spec();
  sim::RunSpec b = a;
  b.check = true;
  b.no_skip = true;
  EXPECT_EQ(ckpt::spec_hash(a), ckpt::spec_hash(b));

  // Everything outcome-defining must move the hash.
  sim::RunSpec c = a;
  c.params.seed += 1;
  EXPECT_NE(ckpt::spec_hash(a), ckpt::spec_hash(c));
  sim::RunSpec d = a;
  d.sample_windows = 3;
  EXPECT_NE(ckpt::spec_hash(a), ckpt::spec_hash(d));
  sim::RunSpec e = a;
  e.context_fraction = 0.5;
  EXPECT_NE(ckpt::spec_hash(a), ckpt::spec_hash(e));
}

TEST(SpecCodec, ResultRoundTripsBitExactly) {
  const sim::RunResult r = synthetic_result();
  ckpt::Encoder enc;
  ckpt::encode_result(enc, r);
  ckpt::Decoder dec(enc.bytes().data(), enc.size());
  const sim::RunResult back = ckpt::decode_result(dec);
  dec.finish();

  EXPECT_EQ(back.cycles, r.cycles);
  EXPECT_EQ(back.instructions, r.instructions);
  EXPECT_EQ(back.ipc, r.ipc);  // bit pattern, not approximate
  EXPECT_EQ(back.check_ok, r.check_ok);
  EXPECT_EQ(back.check_msg, r.check_msg);
  EXPECT_EQ(back.rf_hit_rate, r.rf_hit_rate);
  EXPECT_EQ(back.context_switches, r.context_switches);
  EXPECT_EQ(back.rf_fills, r.rf_fills);
  EXPECT_EQ(back.rf_spills, r.rf_spills);
  EXPECT_EQ(back.avg_dcache_miss_latency, r.avg_dcache_miss_latency);
  for (std::size_t b = 0; b < r.cpi_stack.size(); ++b) {
    EXPECT_EQ(back.cpi_stack[b], r.cpi_stack[b]);
  }
}

TEST(ResultStore, PutLookupRoundTrip) {
  svc::ResultStore store(temp_dir("store_roundtrip"));
  const sim::RunSpec spec = quick_spec();
  const u64 hash = ckpt::spec_hash(spec);
  const sim::RunResult r = synthetic_result();

  sim::RunResult out;
  EXPECT_FALSE(store.lookup(hash, spec, &out));
  store.put(hash, spec, r, 1.5);
  ASSERT_TRUE(store.lookup(hash, spec, &out));
  EXPECT_EQ(out.cycles, r.cycles);
  EXPECT_EQ(out.ipc, r.ipc);
  EXPECT_EQ(store.size(), 1u);

  svc::StoreEntry entry;
  ASSERT_TRUE(store.lookup_entry(hash, spec, &entry));
  EXPECT_EQ(entry.wall_secs, 1.5);
  EXPECT_FALSE(entry.provenance.empty());
}

TEST(ResultStore, IdentityMismatchReadsAsMiss) {
  // Same hash key, different spec (as after a codec change or a hash
  // collision): the embedded identity bytes must reject the entry.
  svc::ResultStore store(temp_dir("store_identity"));
  const sim::RunSpec spec = quick_spec();
  const u64 hash = ckpt::spec_hash(spec);
  store.put(hash, spec, synthetic_result());

  sim::RunSpec other = spec;
  other.params.seed += 1;
  sim::RunResult out;
  EXPECT_FALSE(store.lookup(hash, other, &out));
  EXPECT_TRUE(store.lookup(hash, spec, &out));
}

TEST(ResultStore, CorruptEntryReadsAsMissAndVerifyRepairs) {
  svc::ResultStore store(temp_dir("store_corrupt"));
  const sim::RunSpec spec = quick_spec();
  const u64 hash = ckpt::spec_hash(spec);
  store.put(hash, spec, synthetic_result());

  // Flip a byte in the middle of the entry file.
  const std::string path = store.entry_path(hash);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    char b = 0;
    f.read(&b, 1);
    f.seekp(40);
    b = static_cast<char>(b ^ 0x5a);
    f.write(&b, 1);
  }
  sim::RunResult out;
  EXPECT_FALSE(store.lookup(hash, spec, &out));

  svc::ResultStore::VerifyReport report = store.verify(/*repair=*/false);
  EXPECT_EQ(report.total, 1u);
  EXPECT_EQ(report.corrupt, 1u);
  EXPECT_EQ(store.size(), 1u);  // report-only: file kept
  report = store.verify(/*repair=*/true);
  EXPECT_EQ(report.corrupt, 1u);
  EXPECT_EQ(store.size(), 0u);

  // Truncation is also just a miss.
  store.put(hash, spec, synthetic_result());
  std::filesystem::resize_file(path, 10);
  EXPECT_FALSE(store.lookup(hash, spec, &out));
}

TEST(ResultStore, GcKeepsNewestEntries) {
  svc::ResultStore store(temp_dir("store_gc"));
  std::vector<sim::RunSpec> specs;
  for (u32 t = 1; t <= 4; ++t) {
    specs.push_back(quick_spec(t));
    store.put(ckpt::spec_hash(specs.back()), specs.back(),
              synthetic_result());
  }
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.gc(10), 0u);  // under the cap: nothing removed
  EXPECT_EQ(store.gc(2), 2u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(ResultStore, GcEqualMtimesEvictDeterministically) {
  // Coarse-mtime filesystems land a whole burst of writes on one
  // timestamp; eviction must then be decided by the entry name (the
  // spec hash), not directory-iteration order.
  const std::string dir = temp_dir("store_gc_ties");
  svc::ResultStore store(dir);
  for (u32 t = 1; t <= 4; ++t) {
    const sim::RunSpec spec = quick_spec(t);
    store.put(ckpt::spec_hash(spec), spec, synthetic_result());
  }
  std::vector<std::string> names;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".vres") {
      names.push_back(e.path().filename().string());
    }
  }
  ASSERT_EQ(names.size(), 4u);
  const auto stamp = std::filesystem::file_time_type::clock::now();
  for (const std::string& n : names) {
    std::filesystem::last_write_time(std::filesystem::path(dir) / n, stamp);
  }
  EXPECT_EQ(store.gc(2), 2u);
  // Equal mtimes, so the survivors are exactly the two smallest names.
  std::sort(names.begin(), names.end());
  std::vector<std::string> survivors;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".vres") {
      survivors.push_back(e.path().filename().string());
    }
  }
  std::sort(survivors.begin(), survivors.end());
  EXPECT_EQ(survivors,
            std::vector<std::string>(names.begin(), names.begin() + 2));
}

TEST(SweepService, SecondSubmitIsAllCacheHits) {
  svc::ResultStore store(temp_dir("svc_cache"));
  svc::SweepService service(svc::ServiceConfig{2, 64, 0.01}, &store);
  const std::vector<sim::RunSpec> grid = {quick_spec(2), quick_spec(4)};

  svc::SweepTicket first = service.submit("a", grid, {});
  first.wait();
  EXPECT_EQ(first.counts().points, 2u);
  EXPECT_EQ(first.counts().executed, 2u);
  EXPECT_EQ(first.counts().failed, 0u);

  std::atomic<std::size_t> streamed{0};
  svc::SweepTicket second = service.submit(
      "b", grid,
      [&](std::size_t, const sim::RunResult* result,
          svc::PointSource source, const std::string&) {
        EXPECT_NE(result, nullptr);
        EXPECT_EQ(source, svc::PointSource::kStoreHit);
        ++streamed;
      });
  second.wait();
  EXPECT_EQ(second.counts().store_hits, 2u);
  EXPECT_EQ(second.counts().executed, 0u);
  EXPECT_EQ(streamed.load(), 2u);
  EXPECT_EQ(service.stats().executed, 2u);  // nothing ran twice
  EXPECT_EQ(store.size(), 2u);
}

TEST(SweepService, ColdStoreServesAcrossServiceRestart) {
  const std::string dir = temp_dir("svc_restart");
  const std::vector<sim::RunSpec> grid = {quick_spec(2)};
  sim::RunResult first_result;
  {
    svc::ResultStore store(dir);
    svc::SweepService service(svc::ServiceConfig{1, 64, 0.01}, &store);
    svc::SweepTicket t = service.submit(
        "a", grid,
        [&](std::size_t, const sim::RunResult* r, svc::PointSource,
            const std::string&) { first_result = *r; });
    t.wait();
    EXPECT_EQ(t.counts().executed, 1u);
  }
  // "Restarted daemon": a fresh service over the same directory serves
  // the point from disk, bit-identically.
  svc::ResultStore store(dir);
  svc::SweepService service(svc::ServiceConfig{1, 64, 0.01}, &store);
  sim::RunResult again;
  svc::SweepTicket t = service.submit(
      "b", grid,
      [&](std::size_t, const sim::RunResult* r, svc::PointSource,
          const std::string&) { again = *r; });
  t.wait();
  EXPECT_EQ(t.counts().store_hits, 1u);
  EXPECT_EQ(service.stats().executed, 0u);
  EXPECT_EQ(again.cycles, first_result.cycles);
  EXPECT_EQ(again.ipc, first_result.ipc);
}

TEST(SweepService, ConcurrentOverlappingSubmitsExecuteEachPointOnce) {
  svc::ResultStore store(temp_dir("svc_dedup"));
  svc::SweepService service(svc::ServiceConfig{2, 64, 0.01}, &store);
  // Two "clients" race the same two-point grid from separate threads.
  const std::vector<sim::RunSpec> grid = {quick_spec(2), quick_spec(4)};
  svc::SweepTicket tickets[2];
  std::thread clients[2];
  for (int c = 0; c < 2; ++c) {
    clients[c] = std::thread([&service, &grid, &tickets, c] {
      tickets[c] =
          service.submit(c == 0 ? "a" : "b", grid, {});
      tickets[c].wait();
    });
  }
  for (std::thread& t : clients) t.join();

  // However the race lands (dedup onto the in-flight run, or a store/
  // memo hit after it finishes), each unique point ran exactly once.
  EXPECT_EQ(service.stats().executed, 2u);
  for (const svc::SweepTicket& t : tickets) {
    const svc::SweepTicket::Counts counts = t.counts();
    EXPECT_EQ(counts.failed, 0u);
    EXPECT_EQ(counts.executed + counts.store_hits + counts.dedup_hits, 2u);
  }
}

TEST(SweepService, DuplicatePointsWithinOneBatchCoalesce) {
  svc::SweepService service(svc::ServiceConfig{1, 64, 0.01}, nullptr);
  const sim::RunSpec spec = quick_spec();
  svc::SweepTicket t = service.submit("a", {spec, spec, spec}, {});
  t.wait();
  const svc::SweepTicket::Counts counts = t.counts();
  EXPECT_EQ(counts.points, 3u);
  EXPECT_EQ(counts.failed, 0u);
  EXPECT_EQ(service.stats().executed, 1u);
  EXPECT_EQ(counts.executed + counts.store_hits + counts.dedup_hits, 3u);
}

TEST(SweepService, AdmissionControlRejectsWholeBatch) {
  svc::SweepService service(svc::ServiceConfig{1, 1, 0.125}, nullptr);
  // Three unique points against a pending limit of one: rejected whole,
  // before anything is queued.
  const std::vector<sim::RunSpec> grid = {quick_spec(2), quick_spec(3),
                                          quick_spec(4)};
  try {
    service.submit("a", grid, {});
    FAIL() << "expected ServiceBusy";
  } catch (const svc::ServiceBusy& busy) {
    EXPECT_EQ(busy.retry_after_secs, 0.125);
  }
  EXPECT_EQ(service.stats().pending, 0u);
  // A batch that fits still goes through afterwards.
  svc::SweepTicket t = service.submit("a", {quick_spec(2)}, {});
  t.wait();
  EXPECT_EQ(t.counts().executed, 1u);
}

TEST(SweepService, CancelReclaimsDisconnectedClientsSlots) {
  // A client vanishing mid-stream (the daemon calls cancel() when it
  // notices) must release the admission slots of its unstarted points;
  // an execution another client dedup-joined survives and still
  // delivers to the survivor.
  svc::SweepService service(svc::ServiceConfig{1, 64, 0.01}, nullptr);

  // A deliberately slow first point pins the single worker so the rest
  // of the batch is still queued when the client "disconnects".
  sim::RunSpec blocker = quick_spec();
  blocker.workload = "gather";
  blocker.params.iters_per_thread = 2000;
  blocker.params.elements = 1 << 14;
  const std::vector<sim::RunSpec> batch = {blocker, quick_spec(2),
                                           quick_spec(3), quick_spec(4)};
  svc::SweepTicket gone = service.submit("gone", batch, {});
  for (int i = 0; i < 5000 && service.stats().inflight == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.stats().inflight, 1u);
  ASSERT_EQ(service.stats().pending, 3u);

  // A second client dedup-joins one of the queued points.
  std::atomic<std::size_t> survivor_points{0};
  svc::SweepTicket stay = service.submit(
      "stay", {quick_spec(2)},
      [&](std::size_t, const sim::RunResult* result, svc::PointSource source,
          const std::string&) {
        EXPECT_NE(result, nullptr);
        EXPECT_EQ(source, svc::PointSource::kDedup);
        ++survivor_points;
      });

  // Only the two waiterless queued points are reclaimed: the
  // dedup-joined one must still run, the running one must finish.
  EXPECT_EQ(service.cancel("gone"), 2u);
  EXPECT_EQ(service.stats().pending, 1u);
  gone.wait();  // every waiter of "gone" was failed, so this returns
  EXPECT_EQ(gone.counts().failed, 4u);
  EXPECT_EQ(gone.counts().executed, 0u);

  stay.wait();
  EXPECT_EQ(survivor_points.load(), 1u);
  EXPECT_EQ(stay.counts().dedup_hits, 1u);
  EXPECT_EQ(stay.counts().failed, 0u);

  // Exactly the blocker and the dedup survivor ran; the reclaimed
  // points never started and their slots are free again.
  EXPECT_EQ(service.stats().executed, 2u);
  EXPECT_EQ(service.stats().pending, 0u);
  svc::SweepTicket retry = service.submit("b", {quick_spec(3)}, {});
  retry.wait();
  EXPECT_EQ(retry.counts().executed, 1u);
}

TEST(SweepService, FailedPointsDeliverErrorsAndAreNotCached) {
  svc::SweepService service(svc::ServiceConfig{1, 64, 0.01}, nullptr);
  sim::RunSpec bad = quick_spec();
  bad.workload = "no-such-kernel";
  std::string error;
  svc::SweepTicket t = service.submit(
      "a", {bad},
      [&](std::size_t, const sim::RunResult* result, svc::PointSource,
          const std::string& e) {
        EXPECT_EQ(result, nullptr);
        error = e;
      });
  t.wait();
  EXPECT_EQ(t.counts().failed, 1u);
  EXPECT_NE(error.find("no-such-kernel"), std::string::npos) << error;
  // Failures are not memoized: the retry runs (and fails) again rather
  // than serving a cached error.
  svc::SweepTicket retry = service.submit("a", {bad}, {});
  retry.wait();
  EXPECT_EQ(retry.counts().failed, 1u);
  EXPECT_EQ(service.stats().failed, 2u);
}

TEST(SweepService, CorruptStoreEntryCausesCleanRerun) {
  svc::ResultStore store(temp_dir("svc_corrupt"));
  svc::SweepService* service =
      new svc::SweepService(svc::ServiceConfig{1, 64, 0.01}, &store);
  const sim::RunSpec spec = quick_spec();
  svc::SweepTicket t = service->submit("a", {spec}, {});
  t.wait();
  delete service;  // drop the in-memory memo; only the disk copy stays

  const std::string path = store.entry_path(ckpt::spec_hash(spec));
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(20);
    f.write("\xff\xff\xff\xff", 4);
  }
  svc::SweepService fresh(svc::ServiceConfig{1, 64, 0.01}, &store);
  svc::SweepTicket rerun = fresh.submit("a", {spec}, {});
  rerun.wait();
  EXPECT_EQ(rerun.counts().executed, 1u);  // corrupt hit became a re-run
  EXPECT_EQ(rerun.counts().failed, 0u);
  // ... and the store healed: the rewritten entry verifies clean.
  EXPECT_EQ(store.verify(false).corrupt, 0u);
}

TEST(Protocol, FrameRoundTripAndCorruptionDetection) {
  const std::string body = "{\"type\":\"ping\"}";
  const std::string line = svc::proto::frame(body);
  EXPECT_EQ(line.back(), '\n');
  std::string back;
  ASSERT_TRUE(svc::proto::unframe(line, &back));
  EXPECT_EQ(back, body);

  std::string corrupted = line;
  corrupted[2] ^= 0x01;
  EXPECT_FALSE(svc::proto::unframe(corrupted, &back));
  EXPECT_FALSE(svc::proto::unframe("too short", &back));
  EXPECT_FALSE(svc::proto::unframe("", &back));
}

TEST(Protocol, HexRoundTrip) {
  const std::vector<u8> bytes = {0x00, 0x01, 0xab, 0xff, 0x7f};
  const std::string hex = svc::proto::to_hex(bytes);
  EXPECT_EQ(hex, "0001abff7f");
  std::vector<u8> back;
  ASSERT_TRUE(svc::proto::from_hex(hex, &back));
  EXPECT_EQ(back, bytes);
  EXPECT_FALSE(svc::proto::from_hex("abc", &back));   // odd length
  EXPECT_FALSE(svc::proto::from_hex("zz", &back));    // non-hex
}

TEST(Protocol, SpecAndResultTravelBitExactly) {
  sim::RunSpec spec = quick_spec(4);
  spec.context_fraction = 0.123456789012345;
  sim::RunSpec spec_back;
  ASSERT_TRUE(
      svc::proto::decode_spec_hex(svc::proto::encode_spec_hex(spec),
                                  &spec_back));
  EXPECT_EQ(ckpt::spec_hash(spec_back), ckpt::spec_hash(spec));
  EXPECT_EQ(spec_back.context_fraction, spec.context_fraction);

  const sim::RunResult r = synthetic_result();
  sim::RunResult r_back;
  ASSERT_TRUE(svc::proto::decode_result_hex(
      svc::proto::encode_result_hex(r), &r_back));
  EXPECT_EQ(r_back.ipc, r.ipc);
  EXPECT_EQ(r_back.cpi_stack, r.cpi_stack);

  sim::RunSpec junk;
  EXPECT_FALSE(svc::proto::decode_spec_hex("deadbeef", &junk));
}

TEST(Socket, LineTransportRoundTrip) {
  const std::string path = ::testing::TempDir() + "svc_sock_test.sock";
  svc::UnixListener listener(path);
  std::thread server([&listener] {
    svc::UnixConn conn = listener.accept();
    ASSERT_TRUE(conn.valid());
    std::string line;
    while (conn.read_line(&line)) {
      conn.write_line("echo:" + line + "\n");
    }
  });
  svc::UnixConn client = svc::unix_connect(path);
  ASSERT_TRUE(client.valid());
  // Two lines in one write must come back as two reads (buffering).
  ASSERT_TRUE(client.write_line("one\ntwo\n"));
  std::string line;
  ASSERT_TRUE(client.read_line(&line));
  EXPECT_EQ(line, "echo:one");
  ASSERT_TRUE(client.read_line(&line));
  EXPECT_EQ(line, "echo:two");
  client.close();
  server.join();
  listener.shutdown();
  EXPECT_FALSE(svc::unix_connect(path).valid());
}

TEST(Socket, PeerClosedDetectsDisconnect) {
  const std::string path = ::testing::TempDir() + "svc_peerclosed.sock";
  svc::UnixListener listener(path);
  svc::UnixConn client;
  std::thread dial([&] { client = svc::unix_connect(path); });
  svc::UnixConn server = listener.accept();
  dial.join();
  ASSERT_TRUE(server.valid());
  ASSERT_TRUE(client.valid());
  EXPECT_FALSE(server.peer_closed());
  // Pipelined bytes waiting count as alive, and peeking consumes
  // nothing — the line is still readable afterwards.
  ASSERT_TRUE(client.write_line("still here\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(server.peer_closed());
  std::string line;
  ASSERT_TRUE(server.read_line(&line));
  EXPECT_EQ(line, "still here");
  client.close();
  bool closed = false;
  for (int i = 0; i < 5000 && !(closed = server.peer_closed()); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(closed);
  listener.shutdown();
}

TEST(JsonParse, ParsesDocumentsAndRejectsMalformed) {
  const JsonValue doc = json_parse(
      "{\"type\":\"done\",\"id\":18446744073709551615,"
      "\"list\":[1,2.5,true,null,\"x\"],\"nested\":{\"k\":-3}}");
  EXPECT_EQ(doc.at("type").string, "done");
  // 2^64-1 survives exactly via the raw token (a double would round).
  EXPECT_EQ(doc.at("id").as_u64(), 18446744073709551615ull);
  EXPECT_EQ(doc.at("list").array.size(), 5u);
  EXPECT_EQ(doc.at("list").array[1].number, 2.5);
  EXPECT_EQ(doc.at("nested").at("k").as_i64(), -3);
  EXPECT_EQ(doc.find("absent"), nullptr);

  EXPECT_THROW(json_parse("{\"a\":1,\"a\":2}"), JsonParseError);  // dup key
  EXPECT_THROW(json_parse("{\"a\":1} trailing"), JsonParseError);
  EXPECT_THROW(json_parse("{\"a\":}"), JsonParseError);
  EXPECT_THROW(json_parse("{\"a\":1"), JsonParseError);  // unterminated
  EXPECT_THROW(json_parse(""), JsonParseError);
  EXPECT_THROW(doc.at("absent"), JsonParseError);
  EXPECT_THROW(doc.at("type").as_u64(), JsonParseError);  // not a number
}

}  // namespace
}  // namespace virec
