// VRMU tag store tests: mapping maintenance, allocation/eviction and
// C-bit rollback resets.
#include <gtest/gtest.h>

#include "ckpt/serialize.hpp"
#include "core/tag_store.hpp"

namespace virec::core {
namespace {

TEST(TagStore, EmptyLookupMisses) {
  TagStore tags(8, 4, PolicyKind::kLRC);
  EXPECT_EQ(tags.lookup(0, 3), -1);
  EXPECT_EQ(tags.valid_entries(), 0u);
}

TEST(TagStore, AllocateThenLookup) {
  TagStore tags(8, 4, PolicyKind::kLRC);
  std::vector<u8> locked(8, 0);
  const int idx = tags.allocate(1, 5, locked, nullptr);
  ASSERT_GE(idx, 0);
  EXPECT_EQ(tags.lookup(1, 5), idx);
  EXPECT_EQ(tags.lookup(0, 5), -1);  // different thread, same arch reg
  EXPECT_EQ(tags.valid_entries(), 1u);
}

TEST(TagStore, SameArchDifferentThreadsCoexist) {
  TagStore tags(8, 4, PolicyKind::kLRC);
  std::vector<u8> locked(8, 0);
  const int a = tags.allocate(0, 7, locked, nullptr);
  const int b = tags.allocate(1, 7, locked, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(tags.lookup(0, 7), a);
  EXPECT_EQ(tags.lookup(1, 7), b);
}

TEST(TagStore, FullRfEvicts) {
  TagStore tags(2, 2, PolicyKind::kLRU);
  std::vector<u8> locked(2, 0);
  tags.allocate(0, 0, locked, nullptr);
  tags.allocate(0, 1, locked, nullptr);
  TagStore::Victim victim;
  const int idx = tags.allocate(0, 2, locked, &victim);
  ASSERT_GE(idx, 0);
  EXPECT_TRUE(victim.valid);
  EXPECT_EQ(victim.arch, 0);  // LRU: oldest mapping displaced
  EXPECT_EQ(tags.lookup(0, 0), -1);
  EXPECT_EQ(tags.lookup(0, 2), idx);
}

TEST(TagStore, EvictionReportsDirtyState) {
  TagStore tags(1, 1, PolicyKind::kLRU);
  std::vector<u8> locked(1, 0);
  const int idx = tags.allocate(0, 0, locked, nullptr);
  tags.mark_dirty(static_cast<u32>(idx));
  TagStore::Victim victim;
  tags.allocate(0, 1, locked, &victim);
  EXPECT_TRUE(victim.valid);
  EXPECT_TRUE(victim.dirty);
}

TEST(TagStore, AllLockedReturnsMinusOne) {
  TagStore tags(2, 1, PolicyKind::kLRU);
  std::vector<u8> locked(2, 1);
  EXPECT_EQ(tags.allocate(0, 0, locked, nullptr), -1);
}

TEST(TagStore, InvalidateDropsMapping) {
  TagStore tags(4, 1, PolicyKind::kLRC);
  std::vector<u8> locked(4, 0);
  const int idx = tags.allocate(0, 3, locked, nullptr);
  tags.invalidate(static_cast<u32>(idx));
  EXPECT_EQ(tags.lookup(0, 3), -1);
  EXPECT_EQ(tags.valid_entries(), 0u);
}

TEST(TagStore, ResetCBitOnlyIfMappingCurrent) {
  TagStore tags(2, 2, PolicyKind::kLRC);
  std::vector<u8> locked(2, 0);
  const int idx = tags.allocate(0, 4, locked, nullptr);
  ASSERT_TRUE(tags.entry(static_cast<u32>(idx)).c_bit);
  // Stale identity: wrong thread — must not reset.
  tags.reset_c_bit(static_cast<u32>(idx), 1, 4);
  EXPECT_TRUE(tags.entry(static_cast<u32>(idx)).c_bit);
  // Matching identity resets.
  tags.reset_c_bit(static_cast<u32>(idx), 0, 4);
  EXPECT_FALSE(tags.entry(static_cast<u32>(idx)).c_bit);
}

TEST(TagStore, TouchRefreshesAgeAndC) {
  TagStore tags(2, 1, PolicyKind::kLRC);
  std::vector<u8> locked(2, 0);
  const int idx = tags.allocate(0, 0, locked, nullptr);
  tags.age_tick({});
  tags.age_tick({});
  EXPECT_GT(tags.entry(static_cast<u32>(idx)).age, 0);
  tags.reset_c_bit(static_cast<u32>(idx), 0, 0);
  tags.touch(static_cast<u32>(idx));
  EXPECT_EQ(tags.entry(static_cast<u32>(idx)).age, 0);
  EXPECT_TRUE(tags.entry(static_cast<u32>(idx)).c_bit);
}

TEST(TagStore, ContextSwitchUpdatesTBits) {
  TagStore tags(2, 2, PolicyKind::kLRC);
  std::vector<u8> locked(2, 0);
  const int a = tags.allocate(0, 0, locked, nullptr);
  const int b = tags.allocate(1, 0, locked, nullptr);
  tags.on_context_switch(/*from=*/0, /*to=*/1);
  // T is stored lazily; entry_t materializes it.
  EXPECT_EQ(tags.entry_t(static_cast<u32>(a)), ReplacementPolicy::kMaxTBits);
  EXPECT_EQ(tags.entry_t(static_cast<u32>(b)), 0);
}

// Lazy T survives a checkpoint: save_state materializes every entry's
// effective T (pending per-thread switch events and epoch decrements
// folded in), and a restored store reports bit-identical T values —
// both immediately and after further switches on both stores.
TEST(TagStore, CheckpointPreservesLazyTBits) {
  TagStore tags(8, 4, PolicyKind::kLRC);
  std::vector<u8> locked(8, 0);
  for (int tid = 0; tid < 4; ++tid) {
    tags.allocate(tid, 0, locked, nullptr);
    tags.allocate(tid, 1, locked, nullptr);
  }
  // Leave pending lazy events on several threads plus saturating
  // decrements on the bystanders.
  tags.on_context_switch(0, 1);
  tags.on_context_switch(1, 2);
  tags.on_context_switch(2, 0);
  tags.on_context_switch(0, 3);

  std::vector<u8> expected(tags.size());
  for (u32 i = 0; i < tags.size(); ++i) expected[i] = tags.entry_t(i);

  ckpt::Encoder enc;
  tags.save_state(enc);
  TagStore restored(8, 4, PolicyKind::kLRC);
  ckpt::Decoder dec(enc.bytes().data(), enc.size());
  restored.restore_state(dec);

  for (u32 i = 0; i < tags.size(); ++i) {
    EXPECT_EQ(restored.entry_t(i), expected[i]) << "entry " << i;
  }
  // Post-restore switches must age both stores identically.
  tags.on_context_switch(3, 1);
  restored.on_context_switch(3, 1);
  tags.on_context_switch(1, 2);
  restored.on_context_switch(1, 2);
  for (u32 i = 0; i < tags.size(); ++i) {
    EXPECT_EQ(restored.entry_t(i), tags.entry_t(i)) << "entry " << i;
  }
}

TEST(TagStore, PrefersFreeEntriesOverEviction) {
  TagStore tags(4, 1, PolicyKind::kLRU);
  std::vector<u8> locked(4, 0);
  tags.allocate(0, 0, locked, nullptr);
  TagStore::Victim victim;
  tags.allocate(0, 1, locked, &victim);
  EXPECT_FALSE(victim.valid);  // free entry used, nothing displaced
}

TEST(TagStore, RejectsZeroRegisters) {
  EXPECT_THROW(TagStore(0, 1, PolicyKind::kLRC), std::invalid_argument);
}

TEST(TagStore, RemapAfterEvictionIsConsistent) {
  TagStore tags(2, 2, PolicyKind::kFIFO);
  std::vector<u8> locked(2, 0);
  tags.allocate(0, 0, locked, nullptr);
  tags.allocate(0, 1, locked, nullptr);
  // Evict (0,0), then reallocate it: both lookups must be coherent.
  tags.allocate(1, 0, locked, nullptr);
  EXPECT_EQ(tags.lookup(0, 0), -1);
  const int back = tags.allocate(0, 0, locked, nullptr);
  EXPECT_EQ(tags.lookup(0, 0), back);
  EXPECT_EQ(tags.valid_entries(), 2u);
}

}  // namespace
}  // namespace virec::core
