// VRMU tag store tests: mapping maintenance, allocation/eviction and
// C-bit rollback resets.
#include <gtest/gtest.h>

#include "core/tag_store.hpp"

namespace virec::core {
namespace {

TEST(TagStore, EmptyLookupMisses) {
  TagStore tags(8, 4, PolicyKind::kLRC);
  EXPECT_EQ(tags.lookup(0, 3), -1);
  EXPECT_EQ(tags.valid_entries(), 0u);
}

TEST(TagStore, AllocateThenLookup) {
  TagStore tags(8, 4, PolicyKind::kLRC);
  std::vector<u8> locked(8, 0);
  const int idx = tags.allocate(1, 5, locked, nullptr);
  ASSERT_GE(idx, 0);
  EXPECT_EQ(tags.lookup(1, 5), idx);
  EXPECT_EQ(tags.lookup(0, 5), -1);  // different thread, same arch reg
  EXPECT_EQ(tags.valid_entries(), 1u);
}

TEST(TagStore, SameArchDifferentThreadsCoexist) {
  TagStore tags(8, 4, PolicyKind::kLRC);
  std::vector<u8> locked(8, 0);
  const int a = tags.allocate(0, 7, locked, nullptr);
  const int b = tags.allocate(1, 7, locked, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(tags.lookup(0, 7), a);
  EXPECT_EQ(tags.lookup(1, 7), b);
}

TEST(TagStore, FullRfEvicts) {
  TagStore tags(2, 2, PolicyKind::kLRU);
  std::vector<u8> locked(2, 0);
  tags.allocate(0, 0, locked, nullptr);
  tags.allocate(0, 1, locked, nullptr);
  TagStore::Victim victim;
  const int idx = tags.allocate(0, 2, locked, &victim);
  ASSERT_GE(idx, 0);
  EXPECT_TRUE(victim.valid);
  EXPECT_EQ(victim.arch, 0);  // LRU: oldest mapping displaced
  EXPECT_EQ(tags.lookup(0, 0), -1);
  EXPECT_EQ(tags.lookup(0, 2), idx);
}

TEST(TagStore, EvictionReportsDirtyState) {
  TagStore tags(1, 1, PolicyKind::kLRU);
  std::vector<u8> locked(1, 0);
  const int idx = tags.allocate(0, 0, locked, nullptr);
  tags.mark_dirty(static_cast<u32>(idx));
  TagStore::Victim victim;
  tags.allocate(0, 1, locked, &victim);
  EXPECT_TRUE(victim.valid);
  EXPECT_TRUE(victim.dirty);
}

TEST(TagStore, AllLockedReturnsMinusOne) {
  TagStore tags(2, 1, PolicyKind::kLRU);
  std::vector<u8> locked(2, 1);
  EXPECT_EQ(tags.allocate(0, 0, locked, nullptr), -1);
}

TEST(TagStore, InvalidateDropsMapping) {
  TagStore tags(4, 1, PolicyKind::kLRC);
  std::vector<u8> locked(4, 0);
  const int idx = tags.allocate(0, 3, locked, nullptr);
  tags.invalidate(static_cast<u32>(idx));
  EXPECT_EQ(tags.lookup(0, 3), -1);
  EXPECT_EQ(tags.valid_entries(), 0u);
}

TEST(TagStore, ResetCBitOnlyIfMappingCurrent) {
  TagStore tags(2, 2, PolicyKind::kLRC);
  std::vector<u8> locked(2, 0);
  const int idx = tags.allocate(0, 4, locked, nullptr);
  ASSERT_TRUE(tags.entry(static_cast<u32>(idx)).c_bit);
  // Stale identity: wrong thread — must not reset.
  tags.reset_c_bit(static_cast<u32>(idx), 1, 4);
  EXPECT_TRUE(tags.entry(static_cast<u32>(idx)).c_bit);
  // Matching identity resets.
  tags.reset_c_bit(static_cast<u32>(idx), 0, 4);
  EXPECT_FALSE(tags.entry(static_cast<u32>(idx)).c_bit);
}

TEST(TagStore, TouchRefreshesAgeAndC) {
  TagStore tags(2, 1, PolicyKind::kLRC);
  std::vector<u8> locked(2, 0);
  const int idx = tags.allocate(0, 0, locked, nullptr);
  tags.age_tick({});
  tags.age_tick({});
  EXPECT_GT(tags.entry(static_cast<u32>(idx)).age, 0);
  tags.reset_c_bit(static_cast<u32>(idx), 0, 0);
  tags.touch(static_cast<u32>(idx));
  EXPECT_EQ(tags.entry(static_cast<u32>(idx)).age, 0);
  EXPECT_TRUE(tags.entry(static_cast<u32>(idx)).c_bit);
}

TEST(TagStore, ContextSwitchUpdatesTBits) {
  TagStore tags(2, 2, PolicyKind::kLRC);
  std::vector<u8> locked(2, 0);
  const int a = tags.allocate(0, 0, locked, nullptr);
  const int b = tags.allocate(1, 0, locked, nullptr);
  tags.on_context_switch(/*from=*/0, /*to=*/1);
  EXPECT_EQ(tags.entry(static_cast<u32>(a)).t_bits,
            ReplacementPolicy::kMaxTBits);
  EXPECT_EQ(tags.entry(static_cast<u32>(b)).t_bits, 0);
}

TEST(TagStore, PrefersFreeEntriesOverEviction) {
  TagStore tags(4, 1, PolicyKind::kLRU);
  std::vector<u8> locked(4, 0);
  tags.allocate(0, 0, locked, nullptr);
  TagStore::Victim victim;
  tags.allocate(0, 1, locked, &victim);
  EXPECT_FALSE(victim.valid);  // free entry used, nothing displaced
}

TEST(TagStore, RejectsZeroRegisters) {
  EXPECT_THROW(TagStore(0, 1, PolicyKind::kLRC), std::invalid_argument);
}

TEST(TagStore, RemapAfterEvictionIsConsistent) {
  TagStore tags(2, 2, PolicyKind::kFIFO);
  std::vector<u8> locked(2, 0);
  tags.allocate(0, 0, locked, nullptr);
  tags.allocate(0, 1, locked, nullptr);
  // Evict (0,0), then reallocate it: both lookups must be coherent.
  tags.allocate(1, 0, locked, nullptr);
  EXPECT_EQ(tags.lookup(0, 0), -1);
  const int back = tags.allocate(0, 0, locked, nullptr);
  EXPECT_EQ(tags.lookup(0, 0), back);
  EXPECT_EQ(tags.valid_entries(), 2u);
}

}  // namespace
}  // namespace virec::core
