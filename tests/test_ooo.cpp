// Simplified OoO comparator core tests.
#include <gtest/gtest.h>

#include "cpu/ooo_core.hpp"
#include "kasm/assembler.hpp"

namespace virec::cpu {
namespace {

mem::MemSystemConfig ooo_mem_config() {
  mem::MemSystemConfig config;
  // Table 1 OoO: 64kB icache, 32kB dcache (4 cycles), 1MB L2.
  config.dcache = mem::CacheConfig{.name = "dcache",
                                   .size_bytes = 32 * 1024,
                                   .assoc = 4,
                                   .hit_latency = 4,
                                   .mshrs = 32};
  config.has_l2 = true;
  return config;
}

TEST(OooCore, ExecutesStraightLine) {
  const kasm::Program p = kasm::assemble(R"(
    mov x0, #6
    mov x1, #7
    mul x2, x0, x1
    halt
  )");
  mem::MemorySystem ms(ooo_mem_config());
  OooCore core(OooCoreConfig{}, ms, 0, p);
  core.run();
  EXPECT_EQ(core.regfile().read_reg(0, 2), 42u);
  EXPECT_EQ(core.instructions(), 4u);
}

TEST(OooCore, LoopSemantics) {
  const kasm::Program p = kasm::assemble(R"(
    mov x0, #100
    mov x1, #0
    loop:
      add x1, x1, #3
      sub x0, x0, #1
      cbnz x0, loop
    halt
  )");
  mem::MemorySystem ms(ooo_mem_config());
  OooCore core(OooCoreConfig{}, ms, 0, p);
  core.run();
  EXPECT_EQ(core.regfile().read_reg(0, 1), 300u);
}

TEST(OooCore, IndependentOpsExceedIpc1) {
  // 8-wide with independent chains: IPC must exceed a single-issue
  // in-order core's ceiling of 1.
  std::string source = "mov x9, #200\nloop:\n";
  for (int i = 0; i < 8; ++i) {
    source += "add x" + std::to_string(i) + ", x" + std::to_string(i) +
              ", #1\n";
  }
  source += "sub x9, x9, #1\ncbnz x9, loop\nhalt\n";
  const kasm::Program p = kasm::assemble(source);
  mem::MemorySystem ms(ooo_mem_config());
  OooCore core(OooCoreConfig{}, ms, 0, p);
  core.run();
  EXPECT_GT(core.ipc(), 1.5);
}

TEST(OooCore, DependentChainLimitedToIpc1) {
  std::string source = "mov x0, #0\nmov x9, #200\nloop:\n";
  for (int i = 0; i < 8; ++i) source += "add x0, x0, #1\n";
  source += "sub x9, x9, #1\ncbnz x9, loop\nhalt\n";
  const kasm::Program p = kasm::assemble(source);
  mem::MemorySystem ms(ooo_mem_config());
  OooCore core(OooCoreConfig{}, ms, 0, p);
  core.run();
  EXPECT_LE(core.ipc(), 1.3);  // serial dependence chain
}

TEST(OooCore, ExtractsMemoryLevelParallelism) {
  // Independent strided misses: an OoO core with a deep LQ overlaps
  // them; total time must be far below misses * latency.
  const kasm::Program p = kasm::assemble(R"(
    mov x0, #0x100000
    mov x2, #64
    mov x3, #0
    loop:
      ldr x1, [x0], #4224
      add x3, x3, x1
      sub x2, x2, #1
      cbnz x2, loop
    halt
  )");
  mem::MemorySystem ms(ooo_mem_config());
  OooCore core(OooCoreConfig{}, ms, 0, p);
  const Cycle cycles = core.run();
  // 64 DRAM misses at ~60+ cycles each would be ~4000 serial.
  EXPECT_LT(cycles, 2500u);
}

TEST(OooCore, PointerChaseStaysSerial) {
  // Build a tiny pointer ring in memory; each load depends on the last.
  mem::MemorySystem ms(ooo_mem_config());
  const Addr base = 0x200000;
  const int n = 64;
  for (int i = 0; i < n; ++i) {
    ms.memory().write_u64(base + i * 4096,
                          base + ((i + 1) % n) * 4096);
  }
  const kasm::Program p = kasm::assemble(R"(
    mov x2, #64
    loop:
      ldr x0, [x0]
      sub x2, x2, #1
      cbnz x2, loop
    halt
  )");
  OooCore core(OooCoreConfig{}, ms, 0, p);
  core.regfile().write_reg(0, 0, base);
  const Cycle cycles = core.run();
  // Serial chain: cannot be much faster than misses * latency.
  EXPECT_GT(cycles, 1500u);
}

TEST(OooCore, RobLimitsRunahead) {
  // A tiny ROB throttles MLP extraction relative to a big one. The L2
  // stride prefetcher is disabled so every load is a true DRAM miss.
  const char* src = R"(
    mov x0, #0x100000
    mov x2, #64
    loop:
      ldr x1, [x0], #4224
      sub x2, x2, #1
      cbnz x2, loop
    halt
  )";
  const kasm::Program p = kasm::assemble(src);
  mem::MemSystemConfig mc = ooo_mem_config();
  mc.has_l2 = false;
  mem::MemorySystem ms_small(mc);
  OooCoreConfig small;
  small.rob_entries = 4;
  OooCore core_small(small, ms_small, 0, p);
  const Cycle t_small = core_small.run();

  mem::MemorySystem ms_big(mc);
  OooCore core_big(OooCoreConfig{}, ms_big, 0, p);
  const Cycle t_big = core_big.run();
  EXPECT_LT(t_big, t_small);
}

TEST(OooCore, InstructionCapThrows) {
  const kasm::Program p = kasm::assemble("loop: b loop\nhalt\n");
  mem::MemorySystem ms(ooo_mem_config());
  OooCoreConfig config;
  config.max_instructions = 1000;
  OooCore core(config, ms, 0, p);
  EXPECT_THROW(core.run(), std::runtime_error);
}

TEST(OooCore, StoresRetireThroughSq) {
  const kasm::Program p = kasm::assemble(R"(
    mov x0, #0x8000
    mov x1, #5
    str x1, [x0]
    ldr x2, [x0]
    halt
  )");
  mem::MemorySystem ms(ooo_mem_config());
  OooCore core(OooCoreConfig{}, ms, 0, p);
  core.run();
  EXPECT_EQ(core.regfile().read_reg(0, 2), 5u);
  EXPECT_EQ(ms.memory().read_u64(0x8000), 5u);
}

}  // namespace
}  // namespace virec::cpu
