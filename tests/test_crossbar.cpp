// Crossbar contention tests.
#include <gtest/gtest.h>

#include "mem/crossbar.hpp"

namespace virec::mem {
namespace {

class FixedLevel final : public MemLevel {
 public:
  Cycle line_access(Addr, bool, Cycle now) override { return now + 30; }
};

TEST(Crossbar, AddsTraversalLatencyBothWays) {
  FixedLevel below;
  CrossbarConfig config{.latency = 8, .cycles_per_line = 4};
  Crossbar xbar(config, below);
  // 8 (request) + 30 (below) + 8 (response).
  EXPECT_EQ(xbar.line_access(0, false, 0), 46u);
}

TEST(Crossbar, BackToBackTransfersContend) {
  FixedLevel below;
  CrossbarConfig config{.latency = 8, .cycles_per_line = 4};
  Crossbar xbar(config, below);
  const Cycle a = xbar.line_access(0, false, 0);
  const Cycle b = xbar.line_access(64, false, 0);  // same cycle
  EXPECT_EQ(b - a, 4u);  // shifted by the link occupancy
  EXPECT_GT(xbar.stats().get("contention_cycles"), 0.0);
}

TEST(Crossbar, NoContentionWhenSpaced) {
  FixedLevel below;
  CrossbarConfig config{.latency = 8, .cycles_per_line = 4};
  Crossbar xbar(config, below);
  xbar.line_access(0, false, 0);
  xbar.line_access(64, false, 100);
  EXPECT_EQ(xbar.stats().get("contention_cycles"), 0.0);
}

TEST(Crossbar, ManyCoresSerialiseOnLink) {
  FixedLevel below;
  CrossbarConfig config{.latency = 8, .cycles_per_line = 4};
  Crossbar xbar(config, below);
  Cycle last = 0;
  for (int i = 0; i < 8; ++i) {
    last = std::max(last, xbar.line_access(i * 64, false, 0));
  }
  // 8 transfers x 4 cycles of occupancy serialise the starts.
  EXPECT_GE(last, 46u + 7 * 4);
}

TEST(Crossbar, ResetClearsLinkState) {
  FixedLevel below;
  Crossbar xbar(CrossbarConfig{}, below);
  xbar.line_access(0, false, 0);
  xbar.reset();
  EXPECT_EQ(xbar.stats().get("transfers"), 0.0);
  const Cycle a = xbar.line_access(0, false, 0);
  xbar.reset();
  EXPECT_EQ(xbar.line_access(0, false, 0), a);
}

}  // namespace
}  // namespace virec::mem
