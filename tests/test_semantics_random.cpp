// Randomized differential testing of the ISA semantics against host
// arithmetic: for random operand values, each opcode's execute() result
// must equal the natively computed expected value.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/rng.hpp"
#include "cpu/ooo_core.hpp"
#include "isa/semantics.hpp"

namespace virec::isa {
namespace {

double as_f64(u64 bits) {
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}
u64 as_bits(double v) {
  u64 bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

class RandomSemantics : public ::testing::Test {
 protected:
  u64 run_binary(Op op, u64 a, u64 b) {
    cpu::ArrayRegFile rf;
    rf.write_reg(0, 1, a);
    rf.write_reg(0, 2, b);
    Inst inst;
    inst.op = op;
    inst.rd = 0;
    inst.rn = 1;
    inst.rm = 2;
    u8 nzcv = 0;
    mem::SparseMemory memory;
    execute(inst, 0, 0, rf, memory, nzcv);
    return rf.read_reg(0, 0);
  }

  Xorshift128 rng{20240704};
};

TEST_F(RandomSemantics, IntegerOpsMatchHost) {
  for (int i = 0; i < 2000; ++i) {
    const u64 a = rng.next();
    const u64 b = rng.next();
    EXPECT_EQ(run_binary(Op::kAdd, a, b), a + b);
    EXPECT_EQ(run_binary(Op::kSub, a, b), a - b);
    EXPECT_EQ(run_binary(Op::kMul, a, b), a * b);
    EXPECT_EQ(run_binary(Op::kAnd, a, b), a & b);
    EXPECT_EQ(run_binary(Op::kOrr, a, b), a | b);
    EXPECT_EQ(run_binary(Op::kEor, a, b), a ^ b);
    EXPECT_EQ(run_binary(Op::kLsl, a, b), a << (b & 63));
    EXPECT_EQ(run_binary(Op::kLsr, a, b), a >> (b & 63));
    EXPECT_EQ(run_binary(Op::kAsr, a, b),
              static_cast<u64>(static_cast<i64>(a) >> (b & 63)));
    if (b != 0) {
      EXPECT_EQ(run_binary(Op::kUdiv, a, b), a / b);
    }
  }
}

TEST_F(RandomSemantics, SdivMatchesHostTruncation) {
  for (int i = 0; i < 1000; ++i) {
    const i64 a = static_cast<i64>(rng.next());
    i64 b = static_cast<i64>(rng.next());
    if (b == 0) b = 1;
    if (a == std::numeric_limits<i64>::min() && b == -1) {
      // The one case host i64 division cannot evaluate (it overflows);
      // covered by the directed DivisionEdgeCases test below.
      continue;
    }
    EXPECT_EQ(static_cast<i64>(run_binary(Op::kSdiv, static_cast<u64>(a),
                                          static_cast<u64>(b))),
              a / b);
  }
}

// Directed edge operands (the cases a uniform-random sweep essentially
// never hits). AArch64 semantics: x/0 == 0 for both divisions and
// INT64_MIN / -1 == INT64_MIN (no trap, no UB).
TEST_F(RandomSemantics, DivisionEdgeCases) {
  const u64 int_min = static_cast<u64>(std::numeric_limits<i64>::min());
  EXPECT_EQ(run_binary(Op::kSdiv, int_min, static_cast<u64>(-1)), int_min);
  EXPECT_EQ(run_binary(Op::kSdiv, 12345, 0), 0u);
  EXPECT_EQ(run_binary(Op::kSdiv, int_min, 0), 0u);
  EXPECT_EQ(run_binary(Op::kUdiv, 12345, 0), 0u);
  EXPECT_EQ(run_binary(Op::kUdiv, ~u64{0}, 0), 0u);
  EXPECT_EQ(run_binary(Op::kSdiv, int_min, 1), int_min);
  EXPECT_EQ(run_binary(Op::kSdiv, static_cast<u64>(-7), 2),
            static_cast<u64>(-3));  // truncation toward zero
}

// Register-amount shifts use only the low 6 bits of rm (so >= 64 wraps
// instead of invoking host UB).
TEST_F(RandomSemantics, ShiftAmountsAtAndBeyondWidth) {
  const u64 v = 0x8000'0000'0000'0001ull;
  EXPECT_EQ(run_binary(Op::kLsl, v, 64), v);       // 64 & 63 == 0
  EXPECT_EQ(run_binary(Op::kLsr, v, 64), v);
  EXPECT_EQ(run_binary(Op::kAsr, v, 64), v);
  EXPECT_EQ(run_binary(Op::kLsl, v, 65), v << 1);  // 65 & 63 == 1
  EXPECT_EQ(run_binary(Op::kLsr, v, 127), v >> 63);
  EXPECT_EQ(run_binary(Op::kAsr, v, 127), ~u64{0});  // sign fill
  EXPECT_EQ(run_binary(Op::kLsl, v, 63), u64{1} << 63);
}

// movk inserts one halfword lane and must leave the other three alone,
// including lane 3 (the sign-carrying top) and the all-ones/all-zeros
// immediates.
TEST_F(RandomSemantics, MovkLaneExtremes) {
  cpu::ArrayRegFile rf;
  mem::SparseMemory memory;
  u8 nzcv = 0;
  for (u32 lane = 0; lane < 4; ++lane) {
    for (const u64 imm : {u64{0}, u64{0xffff}, u64{0x1234}}) {
      rf.write_reg(0, 0, 0x0123'4567'89ab'cdefull);
      Inst movk;
      movk.op = Op::kMovk;
      movk.rd = 0;
      movk.imm = static_cast<i64>(imm);
      movk.imm2 = static_cast<i64>(lane);
      execute(movk, 0, 0, rf, memory, nzcv);
      const u64 mask = u64{0xffff} << (16 * lane);
      const u64 expected =
          (0x0123'4567'89ab'cdefull & ~mask) | (imm << (16 * lane));
      EXPECT_EQ(rf.read_reg(0, 0), expected) << "lane " << lane;
    }
  }
}

// fcvtzs must saturate (not UB-cast) for out-of-range and NaN inputs.
TEST_F(RandomSemantics, FcvtzsSaturates) {
  const u64 int_max = static_cast<u64>(std::numeric_limits<i64>::max());
  const u64 int_min = static_cast<u64>(std::numeric_limits<i64>::min());
  EXPECT_EQ(run_binary(Op::kFcvtzs, as_bits(1e30), 0), int_max);
  EXPECT_EQ(run_binary(Op::kFcvtzs, as_bits(-1e30), 0), int_min);
  EXPECT_EQ(run_binary(Op::kFcvtzs,
                       as_bits(std::numeric_limits<double>::infinity()), 0),
            int_max);
  EXPECT_EQ(run_binary(Op::kFcvtzs,
                       as_bits(-std::numeric_limits<double>::infinity()), 0),
            int_min);
  EXPECT_EQ(run_binary(Op::kFcvtzs,
                       as_bits(std::numeric_limits<double>::quiet_NaN()), 0),
            0u);
  EXPECT_EQ(run_binary(Op::kFcvtzs, as_bits(9223372036854775808.0), 0),
            int_max);  // exactly 2^63: first unrepresentable value
  EXPECT_EQ(run_binary(Op::kFcvtzs, as_bits(-9223372036854775808.0), 0),
            int_min);  // exactly -2^63: still representable
  EXPECT_EQ(run_binary(Op::kFcvtzs, as_bits(-1.5), 0), static_cast<u64>(-1));
}

TEST_F(RandomSemantics, FpOpsAreBitExact) {
  for (int i = 0; i < 1000; ++i) {
    const double a =
        (rng.next_double() - 0.5) * std::pow(10.0, rng.next_below(6));
    const double b =
        (rng.next_double() - 0.5) * std::pow(10.0, rng.next_below(6));
    EXPECT_EQ(run_binary(Op::kFadd, as_bits(a), as_bits(b)), as_bits(a + b));
    EXPECT_EQ(run_binary(Op::kFsub, as_bits(a), as_bits(b)), as_bits(a - b));
    EXPECT_EQ(run_binary(Op::kFmul, as_bits(a), as_bits(b)), as_bits(a * b));
    EXPECT_EQ(run_binary(Op::kFdiv, as_bits(a), as_bits(b)), as_bits(a / b));
  }
}

TEST_F(RandomSemantics, FpSpecialValues) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(as_f64(run_binary(Op::kFadd, as_bits(inf), as_bits(1.0))), inf);
  EXPECT_TRUE(std::isnan(
      as_f64(run_binary(Op::kFsub, as_bits(inf), as_bits(inf)))));
  EXPECT_EQ(as_f64(run_binary(Op::kFdiv, as_bits(1.0), as_bits(0.0))), inf);
  EXPECT_EQ(run_binary(Op::kFmul, as_bits(-0.0), as_bits(0.0)),
            as_bits(-0.0));
}

TEST_F(RandomSemantics, CmpFlagsMatchHostComparisons) {
  for (int i = 0; i < 2000; ++i) {
    const u64 a = rng.next_below(8) == 0 ? rng.next_below(16) : rng.next();
    const u64 b = rng.next_below(8) == 0 ? a : rng.next();
    cpu::ArrayRegFile rf;
    rf.write_reg(0, 1, a);
    rf.write_reg(0, 2, b);
    Inst cmp;
    cmp.op = Op::kCmp;
    cmp.rn = 1;
    cmp.rm = 2;
    u8 nzcv = 0;
    mem::SparseMemory memory;
    execute(cmp, 0, 0, rf, memory, nzcv);
    const i64 sa = static_cast<i64>(a);
    const i64 sb = static_cast<i64>(b);
    EXPECT_EQ(cond_holds(Cond::kEq, nzcv), a == b);
    EXPECT_EQ(cond_holds(Cond::kNe, nzcv), a != b);
    EXPECT_EQ(cond_holds(Cond::kLt, nzcv), sa < sb);
    EXPECT_EQ(cond_holds(Cond::kLe, nzcv), sa <= sb);
    EXPECT_EQ(cond_holds(Cond::kGt, nzcv), sa > sb);
    EXPECT_EQ(cond_holds(Cond::kGe, nzcv), sa >= sb);
    EXPECT_EQ(cond_holds(Cond::kLo, nzcv), a < b);
    EXPECT_EQ(cond_holds(Cond::kLs, nzcv), a <= b);
    EXPECT_EQ(cond_holds(Cond::kHi, nzcv), a > b);
    EXPECT_EQ(cond_holds(Cond::kHs, nzcv), a >= b);
  }
}

TEST_F(RandomSemantics, MemoryRoundTripsRandomWidths) {
  cpu::ArrayRegFile rf;
  mem::SparseMemory memory;
  u8 nzcv = 0;
  for (int i = 0; i < 1000; ++i) {
    const Addr addr = 0x1000 + rng.next_below(4096) * 8;
    const u64 value = rng.next();
    rf.write_reg(0, 1, addr);
    rf.write_reg(0, 2, value);

    Inst str;
    str.op = Op::kStr;
    str.rd = 2;
    str.rn = 1;
    execute(str, 0, 0, rf, memory, nzcv);

    Inst ldr;
    ldr.op = Op::kLdr;
    ldr.rd = 3;
    ldr.rn = 1;
    execute(ldr, 0, 0, rf, memory, nzcv);
    EXPECT_EQ(rf.read_reg(0, 3), value);

    Inst ldrb;
    ldrb.op = Op::kLdrb;
    ldrb.rd = 4;
    ldrb.rn = 1;
    execute(ldrb, 0, 0, rf, memory, nzcv);
    EXPECT_EQ(rf.read_reg(0, 4), value & 0xff);
  }
}

TEST_F(RandomSemantics, ConversionRoundTrip) {
  for (int i = 0; i < 1000; ++i) {
    const i64 v = static_cast<i64>(rng.next_below(1u << 30)) -
                  (1 << 29);
    cpu::ArrayRegFile rf;
    rf.write_reg(0, 1, static_cast<u64>(v));
    mem::SparseMemory memory;
    u8 nzcv = 0;
    Inst scvtf;
    scvtf.op = Op::kScvtf;
    scvtf.rd = 2;
    scvtf.rn = 1;
    execute(scvtf, 0, 0, rf, memory, nzcv);
    Inst fcvt;
    fcvt.op = Op::kFcvtzs;
    fcvt.rd = 3;
    fcvt.rn = 2;
    execute(fcvt, 0, 0, rf, memory, nzcv);
    EXPECT_EQ(static_cast<i64>(rf.read_reg(0, 3)), v);
  }
}

}  // namespace
}  // namespace virec::isa
