// Checkpoint/restore subsystem tests: the headline invariant (restore a
// mid-run snapshot, run to completion, get bit-identical results and
// stats versus the uninterrupted run — for every scheme x policy), the
// crash-safety of the on-disk format, and the run watchdog.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/serialize.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "workloads/workload.hpp"

namespace virec::sim {
namespace {

namespace fs = std::filesystem;

RunSpec tiny_spec(Scheme scheme, core::PolicyKind policy) {
  RunSpec spec;
  spec.workload = "gather";
  spec.scheme = scheme;
  spec.policy = policy;
  spec.threads_per_core = 4;
  spec.context_fraction = 0.5;
  spec.params.iters_per_thread = 24;
  spec.params.elements = 1 << 12;
  return spec;
}

/// Fresh per-test scratch directory under the gtest temp dir.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("ckpt_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// The ckpt-<cycle>.vckpt files in @p dir, sorted by cycle.
std::vector<fs::path> snapshots_in(const fs::path& dir) {
  std::vector<fs::path> out;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".vckpt") out.push_back(e.path());
  }
  std::sort(out.begin(), out.end(), [](const fs::path& a, const fs::path& b) {
    auto cycle = [](const fs::path& p) {
      return std::stoull(p.stem().string().substr(5));  // "ckpt-<cycle>"
    };
    return cycle(a) < cycle(b);
  });
  return out;
}

/// Bit-exact double comparison: "close" is not good enough for the
/// determinism contract.
void expect_bits_eq(double a, double b, const char* what) {
  u64 ab, bb;
  std::memcpy(&ab, &a, sizeof ab);
  std::memcpy(&bb, &b, sizeof bb);
  EXPECT_EQ(ab, bb) << what << ": " << a << " vs " << b;
}

void expect_results_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  expect_bits_eq(a.ipc, b.ipc, "ipc");
  EXPECT_EQ(a.check_ok, b.check_ok);
  expect_bits_eq(a.rf_hit_rate, b.rf_hit_rate, "rf_hit_rate");
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.rf_fills, b.rf_fills);
  EXPECT_EQ(a.rf_spills, b.rf_spills);
  expect_bits_eq(a.avg_dcache_miss_latency, b.avg_dcache_miss_latency,
                 "avg_dcache_miss_latency");
}

void expect_stats_identical(System& a, System& b) {
  const std::vector<Stat> sa = a.registry().all_scalars();
  const std::vector<Stat> sb = b.registry().all_scalars();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].name, sb[i].name) << i;
    expect_bits_eq(sa[i].value, sb[i].value, sa[i].name.c_str());
  }
}

// ---------------------------------------------------------------------
// Headline invariant: checkpoint at cycle k, restore, run to completion
// => bit-identical RunResult and stats, for every scheme x policy.

class RestoreEquivalence
    : public ::testing::TestWithParam<std::tuple<Scheme, core::PolicyKind>> {};

TEST_P(RestoreEquivalence, MidRunSnapshotReproducesStraightRun) {
  const auto [scheme, policy] = GetParam();
  const RunSpec spec = tiny_spec(scheme, policy);
  const std::string tag = std::string(scheme_name(scheme)) + "_" +
                          core::policy_name(policy);
  const fs::path dir = scratch_dir(tag);

  const workloads::Workload& workload = workloads::find_workload(spec.workload);
  const SystemConfig config = build_config(spec);

  System straight(config, workload, spec.params);
  straight.set_checkpointing(1000, dir.string());
  const RunResult want = straight.run();
  ASSERT_TRUE(want.check_ok) << want.check_msg;

  const std::vector<fs::path> snaps = snapshots_in(dir);
  ASSERT_GE(snaps.size(), 2u) << "run too short to checkpoint mid-flight";

  // Restore from a snapshot in the middle of the run, not the last one.
  const fs::path& snap = snaps[snaps.size() / 2];
  System resumed(config, workload, spec.params);
  resumed.restore(snap.string());
  const RunResult got = resumed.run();

  expect_results_identical(want, got);
  expect_stats_identical(straight, resumed);
  fs::remove_all(dir);
}

std::vector<std::tuple<Scheme, core::PolicyKind>> all_points() {
  std::vector<std::tuple<Scheme, core::PolicyKind>> out;
  for (Scheme s : {Scheme::kBanked, Scheme::kSoftware, Scheme::kPrefetchFull,
                   Scheme::kPrefetchExact, Scheme::kViReC, Scheme::kNSF}) {
    for (core::PolicyKind p : core::all_policies()) out.emplace_back(s, p);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAllPolicies, RestoreEquivalence,
    ::testing::ValuesIn(all_points()),
    [](const ::testing::TestParamInfo<RestoreEquivalence::ParamType>& info) {
      std::string name =
          std::string(scheme_name(std::get<0>(info.param))) + "_" +
          core::policy_name(std::get<1>(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// ---------------------------------------------------------------------
// Mid-miss snapshots: a checkpoint taken while dcache MSHRs are busy
// must capture the in-flight misses.

TEST(Checkpoint, MidMissSnapshotCapturesBusyMshrs) {
  // gather with many threads keeps misses outstanding almost always; an
  // odd interval avoids aliasing with any workload period.
  RunSpec spec = tiny_spec(Scheme::kViReC, core::PolicyKind::kLRC);
  spec.threads_per_core = 8;
  spec.params.iters_per_thread = 48;
  const fs::path dir = scratch_dir("midmiss");

  const workloads::Workload& workload = workloads::find_workload(spec.workload);
  const SystemConfig config = build_config(spec);

  System straight(config, workload, spec.params);
  straight.set_checkpointing(777, dir.string());
  const RunResult want = straight.run();
  ASSERT_TRUE(want.check_ok);

  const std::vector<fs::path> snaps = snapshots_in(dir);
  ASSERT_GE(snaps.size(), 2u);

  // At least one mid-run snapshot must hold busy MSHRs, and every one
  // must restore into a run that reproduces the straight-through result.
  bool saw_busy_mshr = false;
  for (const fs::path& snap : snaps) {
    System resumed(config, workload, spec.params);
    resumed.restore(snap.string());
    const Cycle now = resumed.core(0).cycle();
    if (resumed.memory_system().dcache(0).outstanding_misses(now) > 0) {
      saw_busy_mshr = true;
    }
    const RunResult got = resumed.run();
    expect_results_identical(want, got);
  }
  EXPECT_TRUE(saw_busy_mshr) << "no snapshot caught an in-flight miss";
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Multicore and sampled runs restore too.

TEST(Checkpoint, MulticoreRestoreEquivalence) {
  RunSpec spec = tiny_spec(Scheme::kViReC, core::PolicyKind::kLRC);
  spec.num_cores = 2;
  const fs::path dir = scratch_dir("multicore");

  const workloads::Workload& workload = workloads::find_workload(spec.workload);
  const SystemConfig config = build_config(spec);

  System straight(config, workload, spec.params);
  straight.set_checkpointing(1000, dir.string());
  const RunResult want = straight.run();
  ASSERT_TRUE(want.check_ok);

  const std::vector<fs::path> snaps = snapshots_in(dir);
  ASSERT_GE(snaps.size(), 1u);
  System resumed(config, workload, spec.params);
  resumed.restore(snaps[snaps.size() / 2].string());
  const RunResult got = resumed.run();
  expect_results_identical(want, got);
  expect_stats_identical(straight, resumed);
  fs::remove_all(dir);
}

TEST(Checkpoint, RestoredRunResamplesAtTheSameCycles) {
  const RunSpec spec = tiny_spec(Scheme::kViReC, core::PolicyKind::kLRC);
  const fs::path dir = scratch_dir("sampled");

  const workloads::Workload& workload = workloads::find_workload(spec.workload);
  const SystemConfig config = build_config(spec);

  System straight(config, workload, spec.params);
  straight.set_sample_interval(500);
  straight.set_checkpointing(1300, dir.string());
  const RunResult want = straight.run();
  ASSERT_TRUE(want.check_ok);

  const std::vector<fs::path> snaps = snapshots_in(dir);
  ASSERT_GE(snaps.size(), 1u);
  System resumed(config, workload, spec.params);
  resumed.set_sample_interval(500);
  resumed.restore(snaps.back().string());
  const RunResult got = resumed.run();
  expect_results_identical(want, got);

  const std::vector<Sample>& sa = straight.samples();
  const std::vector<Sample>& sb = resumed.samples();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].cycle, sb[i].cycle) << i;
    EXPECT_EQ(sa[i].instructions, sb[i].instructions) << i;
    expect_bits_eq(sa[i].ipc, sb[i].ipc, "sample ipc");
    expect_bits_eq(sa[i].interval_ipc, sb[i].interval_ipc,
                   "sample interval_ipc");
    EXPECT_EQ(sa[i].runnable_threads, sb[i].runnable_threads) << i;
    EXPECT_EQ(sa[i].outstanding_misses, sb[i].outstanding_misses) << i;
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Crash safety of the on-disk format.

class CheckpointFile : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = scratch_dir("file");
    spec_ = tiny_spec(Scheme::kViReC, core::PolicyKind::kLRC);
    path_ = (dir_ / "snap.vckpt").string();
    const workloads::Workload& w = workloads::find_workload(spec_.workload);
    System system(build_config(spec_), w, spec_.params);
    system.save(path_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void expect_restore_fails(const std::string& path,
                            const std::string& needle) {
    const workloads::Workload& w = workloads::find_workload(spec_.workload);
    System system(build_config(spec_), w, spec_.params);
    try {
      system.restore(path);
      FAIL() << "expected CkptError";
    } catch (const ckpt::CkptError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  }

  fs::path dir_;
  RunSpec spec_;
  std::string path_;
};

TEST_F(CheckpointFile, SaveIsAtomicNoTempLeftBehind) {
  EXPECT_TRUE(fs::exists(path_));
  EXPECT_FALSE(fs::exists(path_ + ".tmp"));
}

TEST_F(CheckpointFile, TruncatedFileFailsCleanly) {
  const auto full = fs::file_size(path_);
  const std::string trunc = (dir_ / "trunc.vckpt").string();
  {
    std::ifstream in(path_, std::ios::binary);
    std::vector<char> bytes(full / 3);
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    std::ofstream out(trunc, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  expect_restore_fails(trunc, "truncated");
}

TEST_F(CheckpointFile, CorruptPayloadFailsCrcCheck) {
  const std::string bad = (dir_ / "bad.vckpt").string();
  fs::copy_file(path_, bad);
  std::fstream f(bad, std::ios::in | std::ios::out | std::ios::binary);
  // Flip one byte well past the header, inside some section payload.
  f.seekp(static_cast<std::streamoff>(fs::file_size(bad) / 2));
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(static_cast<std::streamoff>(fs::file_size(bad) / 2));
  byte = static_cast<char>(byte ^ 0x40);
  f.write(&byte, 1);
  f.close();
  expect_restore_fails(bad, "CRC");
}

TEST_F(CheckpointFile, BadMagicFailsCleanly) {
  const std::string bad = (dir_ / "magic.vckpt").string();
  fs::copy_file(path_, bad);
  std::fstream f(bad, std::ios::in | std::ios::out | std::ios::binary);
  const char junk[4] = {'J', 'U', 'N', 'K'};
  f.write(junk, 4);
  f.close();
  expect_restore_fails(bad, "not a checkpoint");
}

TEST_F(CheckpointFile, ConfigMismatchRefusesRestore) {
  RunSpec other = spec_;
  other.scheme = Scheme::kBanked;
  const workloads::Workload& w = workloads::find_workload(other.workload);
  System system(build_config(other), w, other.params);
  try {
    system.restore(path_);
    FAIL() << "expected CkptError";
  } catch (const ckpt::CkptError& e) {
    EXPECT_NE(std::string(e.what()).find("config hash"), std::string::npos)
        << e.what();
  }
}

TEST_F(CheckpointFile, WorkloadParamChangesConfigHash) {
  // The hash covers workload parameters, not just the topology: a
  // different seed means different memory contents, so restoring would
  // silently corrupt the run.
  RunSpec other = spec_;
  other.params.seed += 1;
  const workloads::Workload& w = workloads::find_workload(other.workload);
  System a(build_config(spec_), w, spec_.params);
  System b(build_config(other), w, other.params);
  EXPECT_NE(a.config_hash(), b.config_hash());
}

// ---------------------------------------------------------------------
// Serializer primitives.

TEST(Serialize, PrimitivesRoundTrip) {
  ckpt::Encoder enc;
  enc.put_u8(0xAB);
  enc.put_bool(true);
  enc.put_u16(0xBEEF);
  enc.put_u32(0xDEADBEEFu);
  enc.put_u64(0x0123456789ABCDEFull);
  enc.put_i64(-42);
  enc.put_f64(3.25);
  enc.put_str("virec");
  enc.put_u64_vec({1, 2, 3});

  ckpt::Decoder dec(enc.bytes().data(), enc.size());
  EXPECT_EQ(dec.get_u8(), 0xAB);
  EXPECT_TRUE(dec.get_bool());
  EXPECT_EQ(dec.get_u16(), 0xBEEF);
  EXPECT_EQ(dec.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(dec.get_i64(), -42);
  EXPECT_EQ(dec.get_f64(), 3.25);
  EXPECT_EQ(dec.get_str(), "virec");
  EXPECT_EQ(dec.get_u64_vec(), (std::vector<u64>{1, 2, 3}));
  EXPECT_TRUE(dec.done());
  dec.finish();  // must not throw: everything consumed
}

TEST(Serialize, DecoderBoundsChecked) {
  ckpt::Encoder enc;
  enc.put_u32(7);
  ckpt::Decoder dec(enc.bytes().data(), enc.size());
  EXPECT_THROW(dec.get_u64(), ckpt::CkptError);
}

TEST(Serialize, FinishRejectsLeftoverBytes) {
  ckpt::Encoder enc;
  enc.put_u32(7);
  enc.put_u32(8);
  ckpt::Decoder dec(enc.bytes().data(), enc.size());
  dec.get_u32();
  EXPECT_THROW(dec.finish(), ckpt::CkptError);
}

TEST(Serialize, Crc32MatchesZlibConvention) {
  // Known-answer test: CRC-32 ("123456789") = 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(ckpt::crc32(s, 9), 0xCBF43926u);
}

// ---------------------------------------------------------------------
// Watchdog: hangs become errors that name the stuck core/thread.

TEST(Watchdog, TinyMaxCyclesAbortsAndNamesCore) {
  RunSpec spec = tiny_spec(Scheme::kViReC, core::PolicyKind::kLRC);
  spec.max_cycles = 200;  // far below the real runtime
  try {
    run_spec(spec);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("max_cycles"), std::string::npos) << what;
    EXPECT_NE(what.find("core 0"), std::string::npos) << what;
    EXPECT_NE(what.find("thread"), std::string::npos) << what;
  }
}

TEST(Watchdog, GenerousMaxCyclesDoesNotFire) {
  RunSpec spec = tiny_spec(Scheme::kViReC, core::PolicyKind::kLRC);
  spec.max_cycles = 100'000'000;
  const RunResult result = run_spec(spec);
  EXPECT_TRUE(result.check_ok);
}

}  // namespace
}  // namespace virec::sim
