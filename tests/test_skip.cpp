// Event-driven cycle skipping tests: the headline invariant (a run
// with quiet-stretch skipping is bit-identical to the cycle-stepped
// run — results, every registry scalar, every sample — for every
// scheme x policy), its interaction with sampling, checkpointing and
// sweeps, the unified watchdog boundary, and the checked-harness /
// repro plumbing of the --no-skip flag.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "check/harness.hpp"
#include "check/progen.hpp"
#include "check/repro.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "sim/system.hpp"
#include "workloads/workload.hpp"

namespace virec::sim {
namespace {

namespace fs = std::filesystem;

RunSpec tiny_spec(Scheme scheme, core::PolicyKind policy) {
  RunSpec spec;
  spec.workload = "gather";
  spec.scheme = scheme;
  spec.policy = policy;
  spec.threads_per_core = 4;
  spec.context_fraction = 0.5;
  spec.params.iters_per_thread = 24;
  spec.params.elements = 1 << 12;
  return spec;
}

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("skip_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Bit-exact double comparison: "close" is not good enough for the
/// skip-equivalence contract.
void expect_bits_eq(double a, double b, const char* what) {
  u64 ab, bb;
  std::memcpy(&ab, &a, sizeof ab);
  std::memcpy(&bb, &b, sizeof bb);
  EXPECT_EQ(ab, bb) << what << ": " << a << " vs " << b;
}

void expect_results_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  expect_bits_eq(a.ipc, b.ipc, "ipc");
  EXPECT_EQ(a.check_ok, b.check_ok);
  expect_bits_eq(a.rf_hit_rate, b.rf_hit_rate, "rf_hit_rate");
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.rf_fills, b.rf_fills);
  EXPECT_EQ(a.rf_spills, b.rf_spills);
  expect_bits_eq(a.avg_dcache_miss_latency, b.avg_dcache_miss_latency,
                 "avg_dcache_miss_latency");
  // The bulk-charged cycle-accounting stack is part of the contract:
  // skipping must attribute every fast-forwarded cycle to exactly the
  // bucket the stepped run would have.
  for (std::size_t i = 0; i < kNumCycleBuckets; ++i) {
    expect_bits_eq(a.cpi_stack[i], b.cpi_stack[i],
                   cycle_bucket_name(static_cast<CycleBucket>(i)));
  }
}

/// Every scalar in the registry — including the stall counters the
/// skip path bulk-adds — must match the stepped run bit for bit.
void expect_stats_identical(System& skip, System& stepped) {
  const std::vector<Stat> sa = skip.registry().all_scalars();
  const std::vector<Stat> sb = stepped.registry().all_scalars();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].name, sb[i].name) << i;
    expect_bits_eq(sa[i].value, sb[i].value, sa[i].name.c_str());
  }
}

/// Run @p spec twice — skipping on and off — returning both systems
/// through @p out so callers can compare registries/samples too.
std::pair<RunResult, RunResult> run_both(const RunSpec& spec,
                                         std::unique_ptr<System>* skip_out,
                                         std::unique_ptr<System>* stepped_out,
                                         Cycle sample_interval = 0) {
  const workloads::Workload& workload = workloads::find_workload(spec.workload);
  RunSpec stepped_spec = spec;
  stepped_spec.no_skip = true;
  auto skip_sys =
      std::make_unique<System>(build_config(spec), workload, spec.params);
  auto stepped_sys = std::make_unique<System>(build_config(stepped_spec),
                                             workload, spec.params);
  if (sample_interval > 0) {
    skip_sys->set_sample_interval(sample_interval);
    stepped_sys->set_sample_interval(sample_interval);
  }
  const RunResult ra = skip_sys->run();
  const RunResult rb = stepped_sys->run();
  *skip_out = std::move(skip_sys);
  *stepped_out = std::move(stepped_sys);
  return {ra, rb};
}

// ---------------------------------------------------------------------
// Headline invariant: skipping on vs off => bit-identical RunResult and
// registry, for every scheme x policy.

class SkipEquivalence
    : public ::testing::TestWithParam<std::tuple<Scheme, core::PolicyKind>> {};

TEST_P(SkipEquivalence, SkippedRunMatchesSteppedRun) {
  const auto [scheme, policy] = GetParam();
  std::unique_ptr<System> skip, stepped;
  const auto [ra, rb] = run_both(tiny_spec(scheme, policy), &skip, &stepped);
  ASSERT_TRUE(ra.check_ok) << ra.check_msg;
  expect_results_identical(ra, rb);
  expect_stats_identical(*skip, *stepped);
}

std::vector<std::tuple<Scheme, core::PolicyKind>> all_points() {
  std::vector<std::tuple<Scheme, core::PolicyKind>> out;
  for (Scheme s : {Scheme::kBanked, Scheme::kSoftware, Scheme::kPrefetchFull,
                   Scheme::kPrefetchExact, Scheme::kViReC, Scheme::kNSF}) {
    for (core::PolicyKind p : core::all_policies()) out.emplace_back(s, p);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAllPolicies, SkipEquivalence, ::testing::ValuesIn(all_points()),
    [](const ::testing::TestParamInfo<SkipEquivalence::ParamType>& info) {
      std::string name =
          std::string(scheme_name(std::get<0>(info.param))) + "_" +
          core::policy_name(std::get<1>(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// ---------------------------------------------------------------------
// The single-thread pointer chase is the skip showcase (long quiet
// memory stalls, the frontend-wait and idle classifications) — check
// it explicitly rather than only via gather.

TEST(Skip, PointerChaseEquivalence) {
  RunSpec spec = tiny_spec(Scheme::kViReC, core::PolicyKind::kLRC);
  spec.workload = "pchase";
  spec.threads_per_core = 1;
  spec.params.iters_per_thread = 2000;
  spec.params.elements = 1 << 14;
  std::unique_ptr<System> skip, stepped;
  const auto [ra, rb] = run_both(spec, &skip, &stepped);
  ASSERT_TRUE(ra.check_ok) << ra.check_msg;
  expect_results_identical(ra, rb);
  expect_stats_identical(*skip, *stepped);
}

// ---------------------------------------------------------------------
// Multi-core contention: the lockstep loop may only jump to the global
// minimum next event, or crossbar/DRAM interleaving would diverge.

TEST(Skip, MulticoreContentionEquivalence) {
  RunSpec spec = tiny_spec(Scheme::kViReC, core::PolicyKind::kLRC);
  spec.num_cores = 2;
  std::unique_ptr<System> skip, stepped;
  const auto [ra, rb] = run_both(spec, &skip, &stepped);
  ASSERT_TRUE(ra.check_ok) << ra.check_msg;
  expect_results_identical(ra, rb);
  expect_stats_identical(*skip, *stepped);
}

// ---------------------------------------------------------------------
// Sampling: skips are clamped to the sampling grid, so the sampled
// time series (including instantaneous fields like runnable_threads
// and outstanding_misses) is identical sample for sample.

TEST(Skip, SampledTimeSeriesIdentical) {
  std::unique_ptr<System> skip, stepped;
  // An odd interval avoids aliasing with any workload period.
  const auto [ra, rb] = run_both(tiny_spec(Scheme::kViReC,
                                           core::PolicyKind::kLRC),
                                 &skip, &stepped, /*sample_interval=*/237);
  ASSERT_TRUE(ra.check_ok) << ra.check_msg;
  expect_results_identical(ra, rb);
  const std::vector<Sample>& sa = skip->samples();
  const std::vector<Sample>& sb = stepped->samples();
  ASSERT_EQ(sa.size(), sb.size());
  ASSERT_GE(sa.size(), 3u) << "run too short to exercise sampling";
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].cycle, sb[i].cycle) << i;
    EXPECT_EQ(sa[i].instructions, sb[i].instructions) << i;
    expect_bits_eq(sa[i].ipc, sb[i].ipc, "sample ipc");
    expect_bits_eq(sa[i].interval_ipc, sb[i].interval_ipc,
                   "sample interval_ipc");
    expect_bits_eq(sa[i].rf_hit_rate, sb[i].rf_hit_rate,
                   "sample rf_hit_rate");
    EXPECT_EQ(sa[i].runnable_threads, sb[i].runnable_threads) << i;
    EXPECT_EQ(sa[i].outstanding_misses, sb[i].outstanding_misses) << i;
  }
}

// ---------------------------------------------------------------------
// Checkpointing: skips clamp to the checkpoint grid, snapshots carry
// no skip state, and config_hash ignores the skip flag — so snapshots
// move freely between skip modes in either direction.

TEST(Skip, CheckpointsCrossSkipModes) {
  RunSpec spec = tiny_spec(Scheme::kViReC, core::PolicyKind::kLRC);
  const fs::path dir = scratch_dir("ckpt");
  const workloads::Workload& workload = workloads::find_workload(spec.workload);

  RunSpec stepped_spec = spec;
  stepped_spec.no_skip = true;
  EXPECT_EQ(System(build_config(spec), workload, spec.params).config_hash(),
            System(build_config(stepped_spec), workload, spec.params)
                .config_hash())
      << "config_hash must ignore the skip flag";

  // Checkpoint under skipping...
  System straight(build_config(spec), workload, spec.params);
  straight.set_checkpointing(1000, dir.string());
  const RunResult want = straight.run();
  ASSERT_TRUE(want.check_ok) << want.check_msg;

  std::vector<fs::path> snaps;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".vckpt") snaps.push_back(e.path());
  }
  std::sort(snaps.begin(), snaps.end());
  ASSERT_GE(snaps.size(), 2u) << "run too short to checkpoint mid-flight";
  const fs::path snap = snaps[snaps.size() / 2];

  // ...restore into a stepped run, and the other way around.
  System stepped(build_config(stepped_spec), workload, spec.params);
  stepped.restore(snap.string());
  expect_results_identical(want, stepped.run());

  System skipped(build_config(spec), workload, spec.params);
  skipped.restore(snap.string());
  expect_results_identical(want, skipped.run());
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Sweeps: a whole sweep CSV is byte-identical across skip modes.

TEST(Skip, SweepCsvByteIdentical) {
  auto sweep_csv = [](bool no_skip) {
    Sweep sweep;
    sweep.base().workload = "gather";
    sweep.base().context_fraction = 0.8;
    sweep.base().params.iters_per_thread = 16;
    sweep.base().params.elements = 1 << 12;
    sweep.base().no_skip = no_skip;
    sweep.over_schemes({Scheme::kBanked, Scheme::kViReC})
        .over_threads({2, 4})
        .over_context_fractions({1.0, 0.5});
    std::ostringstream os;
    sweep.run().write_csv(os);
    return os.str();
  };
  EXPECT_EQ(sweep_csv(false), sweep_csv(true));
}

// ---------------------------------------------------------------------
// Watchdog boundary: both run loops (single-core fast path and the
// lockstep loop) fire strictly after max_cycles — a budget equal to
// the natural run length completes, one cycle less throws — and the
// boundary is the same with skipping on or off (skips are clamped to
// the budget).

class SkipWatchdog : public ::testing::TestWithParam<bool> {};

TEST_P(SkipWatchdog, FiresStrictlyAfterBudgetOnBothLoops) {
  const bool no_skip = GetParam();
  RunSpec spec = tiny_spec(Scheme::kViReC, core::PolicyKind::kLRC);
  spec.no_skip = no_skip;
  const Cycle natural = run_spec(spec).cycles;
  ASSERT_GT(natural, 1u);

  spec.max_cycles = natural;  // exactly enough: must complete
  EXPECT_NO_THROW(run_spec(spec));
  spec.max_cycles = natural - 1;  // one short: must throw
  EXPECT_THROW(run_spec(spec), std::runtime_error);

  // Same boundary on the lockstep loop (sampling forces it).
  spec.max_cycles = natural;
  const workloads::Workload& workload = workloads::find_workload(spec.workload);
  {
    System sys(build_config(spec), workload, spec.params);
    sys.set_sample_interval(100);
    EXPECT_NO_THROW(sys.run());
  }
  spec.max_cycles = natural - 1;
  {
    System sys(build_config(spec), workload, spec.params);
    sys.set_sample_interval(100);
    EXPECT_THROW(sys.run(), std::runtime_error);
  }
}

INSTANTIATE_TEST_SUITE_P(SkipAndStepped, SkipWatchdog, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "stepped" : "skipping";
                         });

// ---------------------------------------------------------------------
// Checked harness: the fuzzer rig reports identical cycle counts and
// oracle progress across skip modes, and the repro format round-trips
// the flag.

TEST(Skip, CheckedHarnessEquivalence) {
  check::ProgenOptions gen;
  gen.body_len = 24;
  gen.loop_iters = 40;
  gen.edge_ops = true;
  for (u64 seed = 1; seed <= 4; ++seed) {
    const kasm::Program program = check::random_program(seed, gen);
    check::HarnessSpec spec;
    spec.seed = seed;
    const check::HarnessResult skip = check::run_checked(program, spec);
    check::HarnessSpec stepped_spec = spec;
    stepped_spec.no_skip = true;
    const check::HarnessResult stepped =
        check::run_checked(program, stepped_spec);
    EXPECT_EQ(skip.ok, stepped.ok) << seed;
    EXPECT_EQ(skip.timed_out, stepped.timed_out) << seed;
    EXPECT_EQ(skip.cycles, stepped.cycles) << seed;
    EXPECT_EQ(skip.instructions, stepped.instructions) << seed;
    EXPECT_EQ(skip.commits_checked, stepped.commits_checked) << seed;
  }
}

TEST(Skip, ReproRoundTripsNoSkipFlag) {
  check::ProgenOptions gen;
  gen.body_len = 8;
  gen.loop_iters = 4;
  const kasm::Program program = check::random_program(7, gen);

  check::HarnessSpec spec;
  spec.no_skip = true;
  const std::string text = check::write_repro(spec, program);
  EXPECT_NE(text.find("// repro no-skip 1"), std::string::npos);
  EXPECT_TRUE(check::parse_repro(text).spec.no_skip);

  // The flag is only recorded when set: default repros (and pre-skip
  // ones) parse with skipping on.
  spec.no_skip = false;
  const std::string default_text = check::write_repro(spec, program);
  EXPECT_EQ(default_text.find("no-skip"), std::string::npos);
  EXPECT_FALSE(check::parse_repro(default_text).spec.no_skip);
}

}  // namespace
}  // namespace virec::sim
