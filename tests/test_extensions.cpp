// Tests for the future-work extensions (Section 8 of the paper):
// group spills and the prefetch + caching hybrid.
#include <gtest/gtest.h>

#include "sim/runner.hpp"
#include "sim/system.hpp"

namespace virec {
namespace {

workloads::WorkloadParams tiny_params() {
  workloads::WorkloadParams params;
  params.iters_per_thread = 64;
  params.elements = 1 << 12;
  return params;
}

sim::RunSpec base_spec(const std::string& workload) {
  sim::RunSpec spec;
  spec.workload = workload;
  spec.scheme = sim::Scheme::kViReC;
  spec.threads_per_core = 8;
  spec.context_fraction = 0.8;
  spec.params = tiny_params();
  return spec;
}

TEST(GroupSpill, ResultsStayCorrect) {
  for (const char* wl : {"gather", "spmv", "maebo", "hist"}) {
    sim::RunSpec spec = base_spec(wl);
    spec.group_spill = true;
    EXPECT_TRUE(sim::run_spec(spec).check_ok) << wl;
  }
}

TEST(GroupSpill, ActuallySpillsGroups) {
  sim::RunSpec spec = base_spec("gather");
  spec.group_spill = true;
  sim::System system(sim::build_config(spec),
                     workloads::find_workload("gather"), spec.params);
  system.run();
  EXPECT_GT(system.manager(0).stats().get("group_spills"), 0.0);
}

TEST(GroupSpill, ReducesCriticalPathSpills) {
  // Eagerly written-back registers are clean when evicted, so the
  // demand path performs fewer spills.
  sim::RunSpec spec = base_spec("spmv");
  sim::System plain(sim::build_config(spec),
                    workloads::find_workload("spmv"), spec.params);
  plain.run();
  spec.group_spill = true;
  sim::System eager(sim::build_config(spec),
                    workloads::find_workload("spmv"), spec.params);
  eager.run();
  EXPECT_LT(eager.manager(0).stats().get("rf_spills"),
            plain.manager(0).stats().get("rf_spills"));
}

TEST(SwitchPrefetch, ResultsStayCorrect) {
  for (const char* wl : {"gather", "spmv", "maebo", "hist"}) {
    sim::RunSpec spec = base_spec(wl);
    spec.switch_prefetch = true;
    EXPECT_TRUE(sim::run_spec(spec).check_ok) << wl;
  }
}

TEST(SwitchPrefetch, IssuesPrefetches) {
  sim::RunSpec spec = base_spec("gather");
  spec.switch_prefetch = true;
  sim::System system(sim::build_config(spec),
                     workloads::find_workload("gather"), spec.params);
  system.run();
  EXPECT_GT(system.manager(0).stats().get("switch_prefetch_fills"), 0.0);
}

TEST(SwitchPrefetch, ReducesDecodeStallFills) {
  // Registers prefetched at switch time no longer demand-miss in
  // decode: rf_misses must drop.
  sim::RunSpec spec = base_spec("gather");
  spec.params.iters_per_thread = 128;
  sim::System plain(sim::build_config(spec),
                    workloads::find_workload("gather"), spec.params);
  plain.run();
  spec.switch_prefetch = true;
  sim::System pf(sim::build_config(spec),
                 workloads::find_workload("gather"), spec.params);
  pf.run();
  EXPECT_LT(pf.manager(0).stats().get("rf_misses"),
            plain.manager(0).stats().get("rf_misses"));
}

TEST(Extensions, ComposeCorrectly) {
  sim::RunSpec spec = base_spec("spmv");
  spec.group_spill = true;
  spec.switch_prefetch = true;
  spec.context_fraction = 0.4;  // heavy pressure
  EXPECT_TRUE(sim::run_spec(spec).check_ok);
}

TEST(Extensions, DeterministicWithExtensions) {
  sim::RunSpec spec = base_spec("gather");
  spec.group_spill = true;
  spec.switch_prefetch = true;
  const sim::RunResult a = sim::run_spec(spec);
  const sim::RunResult b = sim::run_spec(spec);
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(Extensions, OffByDefault) {
  const sim::RunSpec spec = base_spec("gather");
  const sim::SystemConfig config = sim::build_config(spec);
  EXPECT_FALSE(config.virec.group_spill);
  EXPECT_FALSE(config.virec.switch_prefetch);
}

}  // namespace
}  // namespace virec
