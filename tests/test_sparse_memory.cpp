// SparseMemory functional tests.
#include <gtest/gtest.h>

#include <vector>

#include "mem/sparse_memory.hpp"

namespace virec::mem {
namespace {

TEST(SparseMemory, UnwrittenReadsZero) {
  SparseMemory memory;
  EXPECT_EQ(memory.read_u64(0x1234), 0u);
  EXPECT_EQ(memory.read(0xdeadbeef, 1), 0u);
}

TEST(SparseMemory, RoundTripAllWidths) {
  SparseMemory memory;
  memory.write(0x100, 1, 0xab);
  memory.write(0x200, 2, 0xcdef);
  memory.write(0x300, 4, 0x12345678);
  memory.write(0x400, 8, 0x1122334455667788ull);
  EXPECT_EQ(memory.read(0x100, 1), 0xabu);
  EXPECT_EQ(memory.read(0x200, 2), 0xcdefu);
  EXPECT_EQ(memory.read(0x300, 4), 0x12345678u);
  EXPECT_EQ(memory.read(0x400, 8), 0x1122334455667788ull);
}

TEST(SparseMemory, LittleEndianLayout) {
  SparseMemory memory;
  memory.write_u64(0x500, 0x0807060504030201ull);
  for (u32 i = 0; i < 8; ++i) {
    EXPECT_EQ(memory.read(0x500 + i, 1), i + 1);
  }
}

TEST(SparseMemory, CrossPageAccess) {
  SparseMemory memory;
  const Addr addr = SparseMemory::kPageSize - 4;
  memory.write_u64(addr, 0xa1b2c3d4e5f60718ull);
  EXPECT_EQ(memory.read_u64(addr), 0xa1b2c3d4e5f60718ull);
  EXPECT_EQ(memory.page_count(), 2u);
}

TEST(SparseMemory, PartialOverwrite) {
  SparseMemory memory;
  memory.write_u64(0x600, ~u64{0});
  memory.write(0x602, 2, 0);
  EXPECT_EQ(memory.read_u64(0x600), 0xffffffff0000ffffull);
}

TEST(SparseMemory, F64RoundTrip) {
  SparseMemory memory;
  memory.write_f64(0x700, 3.14159);
  EXPECT_DOUBLE_EQ(memory.read_f64(0x700), 3.14159);
  memory.write_f64(0x708, -0.0);
  EXPECT_EQ(memory.read_u64(0x708), 0x8000000000000000ull);
}

TEST(SparseMemory, BlockRoundTrip) {
  SparseMemory memory;
  std::vector<u8> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<u8>(i * 7);
  }
  memory.write_block(0x12345, data.data(), data.size());
  std::vector<u8> out(data.size());
  memory.read_block(0x12345, out.data(), out.size());
  EXPECT_EQ(data, out);
}

TEST(SparseMemory, BlockReadOfUnwrittenIsZero) {
  SparseMemory memory;
  std::vector<u8> out(64, 0xff);
  memory.read_block(0x9999, out.data(), out.size());
  for (u8 b : out) EXPECT_EQ(b, 0);
}

TEST(SparseMemory, SparseAddressesDoNotCollide) {
  SparseMemory memory;
  memory.write_u64(0x0, 1);
  memory.write_u64(0xffff'ffff'0000ull, 2);
  EXPECT_EQ(memory.read_u64(0x0), 1u);
  EXPECT_EQ(memory.read_u64(0xffff'ffff'0000ull), 2u);
}

TEST(SparseMemory, ClearDropsEverything) {
  SparseMemory memory;
  memory.write_u64(0x10, 5);
  memory.clear();
  EXPECT_EQ(memory.read_u64(0x10), 0u);
  EXPECT_EQ(memory.page_count(), 0u);
}

TEST(SparseMemory, PageCountGrowsPerPage) {
  SparseMemory memory;
  memory.write_u64(0, 1);
  memory.write_u64(8, 2);
  EXPECT_EQ(memory.page_count(), 1u);
  memory.write_u64(SparseMemory::kPageSize, 3);
  EXPECT_EQ(memory.page_count(), 2u);
}

}  // namespace
}  // namespace virec::mem
