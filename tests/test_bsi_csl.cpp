// Backing Store Interface and Context Switch Logic tests.
#include <gtest/gtest.h>

#include "core/backing_store_interface.hpp"
#include "core/context_switch_logic.hpp"
#include "mem/memory_system.hpp"

namespace virec::core {
namespace {

class BsiTest : public ::testing::Test {
 protected:
  BsiTest()
      : ms(mem::MemSystemConfig{}),
        env{.core_id = 0, .num_threads = 4, .ms = &ms},
        stats("test") {}

  mem::MemorySystem ms;
  cpu::CoreEnv env;
  StatSet stats;
};

TEST_F(BsiTest, FillReturnsAfterDcacheLatency) {
  BackingStoreInterface bsi(BsiConfig{}, env, stats);
  const Cycle done = bsi.fill(0, 3, 100);
  EXPECT_GT(done, 100u);  // cold miss to DRAM the first time
  // Second fill from the (now pinned) line hits.
  const Cycle done2 = bsi.fill(0, 4, done + 10);
  EXPECT_EQ(done2, done + 10 + ms.config().dcache.hit_latency);
}

TEST_F(BsiTest, FillPinsLineWhenEnabled) {
  BackingStoreInterface bsi(BsiConfig{.pin_lines = true}, env, stats);
  bsi.fill(0, 0, 0);
  EXPECT_EQ(ms.dcache(0).pinned_lines(), 1u);
}

TEST_F(BsiTest, NsfModeDoesNotPin) {
  BackingStoreInterface bsi(
      BsiConfig{.non_blocking = false, .dummy_dest_fill = false,
                .pin_lines = false},
      env, stats);
  bsi.fill(0, 0, 0);
  EXPECT_EQ(ms.dcache(0).pinned_lines(), 0u);
}

TEST_F(BsiTest, NonBlockingPipelinesRequests) {
  BackingStoreInterface nb(BsiConfig{.non_blocking = true}, env, stats);
  // Warm the line.
  const Cycle warm = nb.fill(0, 0, 0);
  const Cycle a = nb.fill(0, 1, warm);
  const Cycle b = nb.fill(0, 2, warm);
  // Pipelined: the second completes one port-cycle later, not one full
  // access later.
  EXPECT_EQ(b - a, 1u);
}

TEST_F(BsiTest, BlockingSerialisesRequests) {
  BackingStoreInterface blocking(BsiConfig{.non_blocking = false}, env, stats);
  const Cycle warm = blocking.fill(0, 0, 0);
  const Cycle a = blocking.fill(0, 1, warm);
  const Cycle b = blocking.fill(0, 2, warm);
  EXPECT_GE(b - a, ms.config().dcache.hit_latency);
}

TEST_F(BsiTest, DummyFillOffCriticalPath) {
  BackingStoreInterface bsi(BsiConfig{.dummy_dest_fill = true}, env, stats);
  bsi.fill(0, 0, 0);  // warm/pin the line
  const Cycle done = bsi.dummy_fill(0, 1, 1000);
  EXPECT_EQ(done, 1000u);  // no latency on the critical path
  EXPECT_EQ(stats.get("bsi_dummy_fills"), 1.0);
}

TEST_F(BsiTest, DummyFillDisabledBehavesLikeFill) {
  BackingStoreInterface bsi(BsiConfig{.dummy_dest_fill = false}, env, stats);
  bsi.fill(0, 0, 0);
  const Cycle done = bsi.dummy_fill(0, 1, 1000);
  EXPECT_GT(done, 1000u);
}

TEST_F(BsiTest, FillOutstandingMasksSwitches) {
  BackingStoreInterface bsi(BsiConfig{}, env, stats);
  const Cycle done = bsi.fill(0, 0, 50);
  EXPECT_TRUE(bsi.fill_outstanding(done - 1));
  EXPECT_FALSE(bsi.fill_outstanding(done));
}

TEST_F(BsiTest, SpillDoesNotMaskSwitches) {
  BackingStoreInterface bsi(BsiConfig{}, env, stats);
  const Cycle done = bsi.spill(0, 0, 50);
  EXPECT_FALSE(bsi.fill_outstanding(done - 1));
  EXPECT_EQ(stats.get("bsi_spills"), 1.0);
}

TEST_F(BsiTest, SysregTransfersCounted) {
  BackingStoreInterface bsi(BsiConfig{}, env, stats);
  bsi.sysreg_transfer(2, false, 0);
  bsi.sysreg_transfer(2, true, 100);
  EXPECT_EQ(stats.get("bsi_sysreg_reads"), 1.0);
  EXPECT_EQ(stats.get("bsi_sysreg_writes"), 1.0);
}

class CslTest : public BsiTest {
 protected:
  CslTest() : bsi(BsiConfig{}, env, stats) {}
  BackingStoreInterface bsi;
};

TEST_F(CslTest, ThreadStartFetchesSysregs) {
  ContextSwitchLogic csl(CslConfig{}, 4, bsi, stats);
  const Cycle ready = csl.on_thread_start(0, 10);
  EXPECT_GT(ready, 10u);
  // Second call: already buffered.
  EXPECT_EQ(csl.on_thread_start(0, ready + 5), ready + 5);
}

TEST_F(CslTest, PrefetchedSwitchIsFree) {
  ContextSwitchLogic csl(CslConfig{.sysreg_prefetch = true}, 4, bsi, stats);
  csl.on_thread_start(0, 0);
  // Switch 0 -> 1 predicting 2: prefetches thread 2's sysregs.
  const Cycle r1 = csl.on_switch(0, 1, 2, 100);
  (void)r1;
  // Much later, switch 1 -> 2: the buffer has thread 2.
  const Cycle r2 = csl.on_switch(1, 2, 3, 10'000);
  EXPECT_EQ(r2, 10'000u);
  EXPECT_EQ(stats.get("csl_demand_sysreg_fetches"), 1.0);  // only thread 1
}

TEST_F(CslTest, WrongPredictionDemandFetches) {
  ContextSwitchLogic csl(CslConfig{.sysreg_prefetch = true}, 4, bsi, stats);
  csl.on_thread_start(0, 0);
  csl.on_switch(0, 1, 2, 100);       // prefetches 2
  const double before = stats.get("csl_demand_sysreg_fetches");
  const Cycle r = csl.on_switch(1, 3, 0, 10'000);  // 3 was not prefetched
  EXPECT_GT(r, 10'000u);
  EXPECT_GT(stats.get("csl_demand_sysreg_fetches"), before);
}

TEST_F(CslTest, NoPrefetchModeAlwaysDemandFetches) {
  ContextSwitchLogic csl(CslConfig{.sysreg_prefetch = false}, 4, bsi, stats);
  csl.on_thread_start(0, 0);
  csl.on_switch(0, 1, 2, 100);
  const Cycle r = csl.on_switch(1, 2, 3, 10'000);
  EXPECT_GT(r, 10'000u);  // thread 2 was never prefetched
  EXPECT_EQ(stats.get("csl_sysreg_prefetches"), 0.0);
}

TEST_F(CslTest, LatePrefetchDelaysSwitch) {
  ContextSwitchLogic csl(CslConfig{.sysreg_prefetch = true}, 4, bsi, stats);
  csl.on_thread_start(0, 0);
  const Cycle r1 = csl.on_switch(0, 1, 2, 100);
  (void)r1;
  // Switch to 2 immediately after the prefetch was issued: it cannot
  // have completed yet (cold DRAM miss), so the switch waits.
  const Cycle r2 = csl.on_switch(1, 2, 3, 101);
  EXPECT_GT(r2, 101u);
  EXPECT_GE(stats.get("csl_prefetch_late"), 1.0);
}

TEST_F(CslTest, BufferHoldsOnlyTwoContexts) {
  ContextSwitchLogic csl(CslConfig{.sysreg_prefetch = true}, 4, bsi, stats);
  csl.on_thread_start(0, 0);
  csl.on_switch(0, 1, 2, 100);   // buffer: {1, 2}
  csl.on_switch(1, 2, 3, 1000);  // buffer: {2, 3}; thread 0/1 dropped
  const Cycle r = csl.on_switch(2, 0, 1, 5000);  // 0 fell out
  EXPECT_GT(r, 5000u);
}

}  // namespace
}  // namespace virec::core
