// End-to-end tests of the virec-sim command-line front end: spawn the
// real binary (path injected by CMake) and check its output contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "json_checker.hpp"

namespace {

#ifndef VIREC_SIM_PATH
#define VIREC_SIM_PATH "virec-sim"
#endif

struct CliResult {
  int exit_code = -1;
  std::string output;
};

CliResult run_cli(const std::string& args) {
  const std::string command = std::string(VIREC_SIM_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  CliResult result;
  if (pipe == nullptr) return result;
  std::array<char, 512> buffer;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

bool has_line_prefix(const std::string& output, const std::string& prefix) {
  return output.find("\n" + prefix) != std::string::npos ||
         output.rfind(prefix, 0) == 0;
}

TEST(Cli, HelpExitsCleanly) {
  const CliResult r = run_cli("--help");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("--workload"), std::string::npos);
  EXPECT_NE(r.output.find("--policy"), std::string::npos);
}

TEST(Cli, VersionPrintsProvenance) {
  const CliResult r = run_cli("--version");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_TRUE(has_line_prefix(r.output, "virec-sim")) << r.output;
  EXPECT_TRUE(has_line_prefix(r.output, "provenance ")) << r.output;
  EXPECT_NE(r.output.find("git="), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("compiler="), std::string::npos) << r.output;
  EXPECT_TRUE(has_line_prefix(r.output, "report_schema ")) << r.output;
  EXPECT_TRUE(has_line_prefix(r.output, "spec_codec ")) << r.output;
}

TEST(Cli, ConnectRequiresReachableDaemon) {
  // No daemon at this socket: a clean connection error, not a hang or a
  // silent local fallback.
  const CliResult r = run_cli(
      "--connect " + ::testing::TempDir() + "no-such-daemon.sock --iters 8");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("error:"), std::string::npos) << r.output;
}

TEST(Cli, ConnectRejectsLocalOnlyFlags) {
  const CliResult r = run_cli("--connect x.sock --trace --iters 8");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--connect"), std::string::npos) << r.output;
}

TEST(Cli, ListShowsEveryKernel) {
  const CliResult r = run_cli("--list");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* name : {"gather", "spmv", "pchase", "gather_wide"}) {
    EXPECT_NE(r.output.find(name), std::string::npos) << name;
  }
}

TEST(Cli, DefaultRunReportsAndPasses) {
  const CliResult r = run_cli("--iters 32 --elements 4096");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(has_line_prefix(r.output, "cycles "));
  EXPECT_TRUE(has_line_prefix(r.output, "ipc "));
  EXPECT_NE(r.output.find("check OK"), std::string::npos);
}

TEST(Cli, SchemeAndPolicySelection) {
  const CliResult r = run_cli(
      "--workload spmv --scheme virec --policy mrt-plru --threads 4 "
      "--iters 32 --elements 4096");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("policy mrt-plru"), std::string::npos);
  EXPECT_NE(r.output.find("check OK"), std::string::npos);
}

TEST(Cli, StatsDumpIncludesComponents) {
  const CliResult r = run_cli("--iters 32 --elements 4096 --stats");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("core0.virec.rf_hits"), std::string::npos);
  EXPECT_NE(r.output.find("dram.reads"), std::string::npos);
  EXPECT_NE(r.output.find("xbar.transfers"), std::string::npos);
}

TEST(Cli, TraceShowsCommits) {
  const CliResult r =
      run_cli("--workload reduce --threads 1 --iters 4 --trace");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("commit @"), std::string::npos);
}

TEST(Cli, AreaReport) {
  const CliResult r = run_cli("--iters 16 --elements 4096 --area");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_TRUE(has_line_prefix(r.output, "area.total_mm2"));
}

TEST(Cli, UnknownWorkloadFails) {
  const CliResult r = run_cli("--workload nonsense");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

TEST(Cli, UnknownFlagFails) {
  const CliResult r = run_cli("--frobnicate");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(Cli, MissingValueFails) {
  const CliResult r = run_cli("--workload");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(Cli, ExtensionsRun) {
  const CliResult r = run_cli(
      "--workload gather --group-spill --switch-prefetch --iters 32 "
      "--elements 4096");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("check OK"), std::string::npos);
}

// ---------------------------------------------------------------------
// Sweep mode: comma-separated grid axes, --jobs, CSV/JSON output.

TEST(Cli, SweepPrintsCsvGrid) {
  const CliResult r = run_cli(
      "--sweep --workload gather,reduce --scheme banked,virec --threads 4 "
      "--iters 16 --elements 4096 --jobs 2");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("workload,scheme,policy"), std::string::npos);
  // header + 2 workloads x 2 schemes
  EXPECT_EQ(std::count(r.output.begin(), r.output.end(), '\n'), 5)
      << r.output;
}

TEST(Cli, SweepIsDeterministicAcrossJobCounts) {
  const std::string args =
      "--sweep --workload reduce --scheme banked,virec --policy plru,lrc "
      "--threads 2,4 --iters 16 --elements 4096 --jobs ";
  const CliResult serial = run_cli(args + "1");
  const CliResult parallel = run_cli(args + "4");
  EXPECT_EQ(serial.exit_code, 0) << serial.output;
  EXPECT_EQ(parallel.exit_code, 0) << parallel.output;
  EXPECT_EQ(serial.output, parallel.output);
}

TEST(Cli, SweepJsonIsValid) {
  const CliResult r = run_cli(
      "--sweep --workload reduce --threads 2,4 --iters 16 --elements 4096 "
      "--jobs 2 --json");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const auto v = virec::testing::JsonParser::parse(r.output);
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.array.size(), 2u);
  EXPECT_EQ(v.array[1].at("spec").at("threads").number, 4.0);
  EXPECT_TRUE(v.array[0].at("result").at("check_ok").boolean);
}

TEST(Cli, ListsRequireSweepMode) {
  const CliResult r = run_cli("--workload gather,reduce --iters 16");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--sweep"), std::string::npos) << r.output;
}

TEST(Cli, SweepRejectsSingleRunOnlyFlags) {
  const CliResult r = run_cli("--sweep --trace --iters 16");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--sweep"), std::string::npos) << r.output;
}

TEST(Cli, JobsRejectsTrailingGarbage) {
  const CliResult r = run_cli("--jobs 4x --iters 16 --elements 4096");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--jobs"), std::string::npos) << r.output;
}

// ---------------------------------------------------------------------
// Checkpoint/restore and sweep resume surface.

TEST(Cli, CheckpointRestoreReproducesRun) {
  const std::string dir = ::testing::TempDir() + "virec_cli_ckpt";
  const std::string args =
      "--workload gather --scheme virec --threads 4 --iters 24 "
      "--elements 4096";
  const CliResult straight = run_cli(
      args + " --checkpoint-every 1000 --checkpoint-out " + dir);
  ASSERT_EQ(straight.exit_code, 0) << straight.output;
  const CliResult restored =
      run_cli(args + " --restore " + dir + "/ckpt-1000.vckpt");
  ASSERT_EQ(restored.exit_code, 0) << restored.output;
  EXPECT_EQ(straight.output, restored.output);
}

TEST(Cli, RestoreRejectsMismatchedConfig) {
  const std::string dir = ::testing::TempDir() + "virec_cli_ckpt_mismatch";
  const CliResult straight = run_cli(
      "--workload gather --scheme virec --threads 4 --iters 24 "
      "--elements 4096 --checkpoint-every 1000 --checkpoint-out " + dir);
  ASSERT_EQ(straight.exit_code, 0) << straight.output;
  const CliResult other = run_cli(
      "--workload gather --scheme banked --threads 4 --iters 24 "
      "--elements 4096 --restore " + dir + "/ckpt-1000.vckpt");
  EXPECT_EQ(other.exit_code, 2);
  EXPECT_NE(other.output.find("config hash"), std::string::npos)
      << other.output;
}

TEST(Cli, CheckpointFlagsMustComeTogether) {
  const CliResult r = run_cli("--iters 16 --checkpoint-every 100");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--checkpoint-out"), std::string::npos) << r.output;
}

TEST(Cli, CheckpointFlagsRejectedInSweepMode) {
  const CliResult r =
      run_cli("--sweep --iters 16 --checkpoint-every 100 --checkpoint-out x");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--sweep"), std::string::npos) << r.output;
}

TEST(Cli, ResumeRequiresSweepMode) {
  const CliResult r = run_cli("--iters 16 --resume journal.vjl");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--sweep"), std::string::npos) << r.output;
}

TEST(Cli, MaxCyclesWatchdogNamesStuckCore) {
  const CliResult r =
      run_cli("--workload gather --iters 32 --elements 4096 --max-cycles 200");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("max_cycles"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("core 0"), std::string::npos) << r.output;
}

TEST(Cli, SweepResumeReproducesCleanCsv) {
  // Kill-and-resume, CLI flavour: run half the grid against a journal,
  // then the full grid against the same journal; the resumed CSV must
  // equal the clean uninterrupted run's byte for byte.
  const std::string journal = ::testing::TempDir() + "virec_cli_resume.vjl";
  std::remove(journal.c_str());
  const std::string tail =
      " --threads 4 --iters 16 --elements 4096 --jobs 2";
  const CliResult clean =
      run_cli("--sweep --workload gather,reduce --scheme banked,virec" + tail);
  ASSERT_EQ(clean.exit_code, 0) << clean.output;
  const CliResult half = run_cli(
      "--sweep --workload gather --scheme banked,virec" + tail +
      " --resume " + journal);
  ASSERT_EQ(half.exit_code, 0) << half.output;
  const CliResult resumed = run_cli(
      "--sweep --workload gather,reduce --scheme banked,virec" + tail +
      " --resume " + journal);
  ASSERT_EQ(resumed.exit_code, 0) << resumed.output;
  // stderr (captured alongside stdout) carries the resume banner; the
  // CSV part must match the clean run exactly.
  EXPECT_NE(resumed.output.find("2 of 4 point(s) already journalled"),
            std::string::npos)
      << resumed.output;
  const std::string csv =
      resumed.output.substr(resumed.output.find("workload,"));
  EXPECT_EQ(csv, clean.output);
  std::remove(journal.c_str());
}

// ---------------------------------------------------------------------
// Observability surface: strict parsing, --json, --trace-out,
// --trace-core, --sample-interval.

TEST(Cli, TrailingGarbageInNumberIsRejected) {
  // The old parser accepted "8x" as 8; the flag name must be reported.
  const CliResult r = run_cli("--threads 8x");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--threads"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("8x"), std::string::npos) << r.output;

  const CliResult d = run_cli("--ctx 0.8oops");
  EXPECT_EQ(d.exit_code, 2);
  EXPECT_NE(d.output.find("--ctx"), std::string::npos) << d.output;
}

TEST(Cli, TraceCoreOutOfRangeIsRejected) {
  const CliResult r = run_cli("--trace-core 3 --iters 8 --elements 1024");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--trace-core"), std::string::npos) << r.output;
}

TEST(Cli, TraceCoreSelectsCore) {
  const CliResult r = run_cli(
      "--workload gather --cores 2 --threads 2 --iters 8 --elements 1024 "
      "--trace --trace-core 1");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("commit @"), std::string::npos);
}

TEST(Cli, JsonReportIsValidAndComplete) {
  const CliResult r = run_cli(
      "--workload gather --scheme virec --iters 32 --elements 4096 --json");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  const auto v = virec::testing::JsonParser::parse(r.output);
  EXPECT_EQ(v.at("config").at("workload").string, "gather");
  EXPECT_EQ(v.at("config").at("scheme").string, "virec");
  EXPECT_TRUE(v.at("results").at("check_ok").boolean);
  int populated_hists = 0;
  for (const auto& s : v.at("stats").array) {
    if (s.at("kind").string == "histogram" && s.at("count").number > 0) {
      ++populated_hists;
    }
  }
  EXPECT_GE(populated_hists, 3) << r.output.substr(0, 400);
}

TEST(Cli, JsonToFileKeepsTextReport) {
  const std::string path = ::testing::TempDir() + "virec_cli_report.json";
  const CliResult r = run_cli("--iters 16 --elements 1024 --json=" + path);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  // stdout still carries the human-readable report.
  EXPECT_TRUE(has_line_prefix(r.output, "cycles "));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const auto v = virec::testing::JsonParser::parse(ss.str());
  EXPECT_TRUE(v.has("results"));
}

TEST(Cli, SampleIntervalAddsTimeSeries) {
  const CliResult r = run_cli(
      "--iters 32 --elements 4096 --json --sample-interval 200");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  const auto v = virec::testing::JsonParser::parse(r.output);
  const auto& ts = v.at("time_series");
  EXPECT_DOUBLE_EQ(ts.at("interval").number, 200.0);
  ASSERT_FALSE(ts.at("samples").array.empty());
  const double final_ipc = ts.at("samples").array.back().at("ipc").number;
  const double scalar_ipc = v.at("results").at("ipc").number;
  EXPECT_NEAR(final_ipc, scalar_ipc, 0.01 * scalar_ipc);
}

TEST(Cli, TraceOutIsWellFormedEventArray) {
  const std::string path = ::testing::TempDir() + "virec_cli_trace.json";
  const CliResult r = run_cli(
      "--workload gather --iters 16 --elements 1024 --trace-out " + path);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const auto v = virec::testing::JsonParser::parse(ss.str());
  ASSERT_TRUE(v.is_array());
  ASSERT_FALSE(v.array.empty());
  bool saw_residency = false;
  for (const auto& e : v.array) {
    ASSERT_TRUE(e.is_object());
    ASSERT_TRUE(e.has("ph"));
    if (e.at("ph").string == "X" && e.at("cat").string == "residency") {
      saw_residency = true;
    }
  }
  EXPECT_TRUE(saw_residency);
}

TEST(Cli, SampledRunReportsEstimate) {
  const CliResult r = run_cli(
      "--workload gather --iters 2048 --elements 4096 "
      "--sample-windows 6 --window-insts 400 --warmup-insts 200");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(has_line_prefix(r.output, "tier sampled")) << r.output;
  EXPECT_TRUE(has_line_prefix(r.output, "est_ipc ")) << r.output;
  EXPECT_TRUE(has_line_prefix(r.output, "est_ipc_lo ")) << r.output;
  EXPECT_TRUE(has_line_prefix(r.output, "window 5 ")) << r.output;
  EXPECT_TRUE(has_line_prefix(r.output, "check OK")) << r.output;
}

TEST(Cli, SampledJsonCarriesWindows) {
  const CliResult r = run_cli(
      "--workload gather --iters 2048 --elements 4096 "
      "--sample-windows 5 --window-insts 300 --warmup-insts 150 --json");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  const auto v = virec::testing::JsonParser::parse(r.output);
  ASSERT_TRUE(v.is_object());
  const auto& tiered = v.at("tiered");
  EXPECT_EQ(tiered.at("windows").array.size(), 5u);
  EXPECT_GT(tiered.at("est_ipc").number, 0.0);
  EXPECT_LE(tiered.at("est_ipc_lo").number, tiered.at("est_ipc").number);
  EXPECT_GE(tiered.at("est_ipc_hi").number, tiered.at("est_ipc").number);
  EXPECT_EQ(v.at("result").at("check").string, "OK");
}

TEST(Cli, FunctionalFFWithCheckPasses) {
  const CliResult r = run_cli(
      "--workload stride --iters 64 --elements 4096 --functional-ff "
      "--check");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(has_line_prefix(r.output, "tier functional")) << r.output;
  EXPECT_TRUE(has_line_prefix(r.output, "check OK")) << r.output;
}

TEST(Cli, SamplingGuardsReject) {
  // Each bad combination must exit 2 with an explanatory error, not
  // fall through to a run.
  const char* const bad[] = {
      "--sample-windows 4 --check",
      "--window-insts 100",
      "--warmup-insts 100",
      "--sample-windows 4 --window-insts 0",
      "--sample-windows 4 --functional-ff",
      "--sample-windows 4 --cores 2",
      "--sample-windows 4 --trace",
      "--sample-windows 4 --sample-interval 100",
      "--sample-windows 4 --restore nonexistent.vckpt",
      "--sample-windows 4 --checkpoint-every 100 --checkpoint-out /tmp/x",
      "--functional-ff --cpi-stack",
      "--sample-windows nope",
  };
  for (const char* args : bad) {
    const CliResult r = run_cli(args);
    EXPECT_EQ(r.exit_code, 2) << args << "\n" << r.output;
    EXPECT_NE(r.output.find("error:"), std::string::npos)
        << args << "\n" << r.output;
  }
}

TEST(Cli, SampledSweepUsesEstimatedIpc) {
  const CliResult r = run_cli(
      "--sweep --workload gather --scheme virec,banked --iters 1024 "
      "--elements 4096 --sample-windows 5 --window-insts 300 "
      "--warmup-insts 100 --jobs 2");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("gather,virec"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("gather,banked"), std::string::npos) << r.output;
}

}  // namespace
