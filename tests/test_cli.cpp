// End-to-end tests of the virec-sim command-line front end: spawn the
// real binary (path injected by CMake) and check its output contract.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

#ifndef VIREC_SIM_PATH
#define VIREC_SIM_PATH "virec-sim"
#endif

struct CliResult {
  int exit_code = -1;
  std::string output;
};

CliResult run_cli(const std::string& args) {
  const std::string command = std::string(VIREC_SIM_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  CliResult result;
  if (pipe == nullptr) return result;
  std::array<char, 512> buffer;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

bool has_line_prefix(const std::string& output, const std::string& prefix) {
  return output.find("\n" + prefix) != std::string::npos ||
         output.rfind(prefix, 0) == 0;
}

TEST(Cli, HelpExitsCleanly) {
  const CliResult r = run_cli("--help");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("--workload"), std::string::npos);
  EXPECT_NE(r.output.find("--policy"), std::string::npos);
}

TEST(Cli, ListShowsEveryKernel) {
  const CliResult r = run_cli("--list");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* name : {"gather", "spmv", "pchase", "gather_wide"}) {
    EXPECT_NE(r.output.find(name), std::string::npos) << name;
  }
}

TEST(Cli, DefaultRunReportsAndPasses) {
  const CliResult r = run_cli("--iters 32 --elements 4096");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(has_line_prefix(r.output, "cycles "));
  EXPECT_TRUE(has_line_prefix(r.output, "ipc "));
  EXPECT_NE(r.output.find("check OK"), std::string::npos);
}

TEST(Cli, SchemeAndPolicySelection) {
  const CliResult r = run_cli(
      "--workload spmv --scheme virec --policy mrt-plru --threads 4 "
      "--iters 32 --elements 4096");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("policy mrt-plru"), std::string::npos);
  EXPECT_NE(r.output.find("check OK"), std::string::npos);
}

TEST(Cli, StatsDumpIncludesComponents) {
  const CliResult r = run_cli("--iters 32 --elements 4096 --stats");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("core0.virec.rf_hits"), std::string::npos);
  EXPECT_NE(r.output.find("dram.reads"), std::string::npos);
  EXPECT_NE(r.output.find("xbar.transfers"), std::string::npos);
}

TEST(Cli, TraceShowsCommits) {
  const CliResult r =
      run_cli("--workload reduce --threads 1 --iters 4 --trace");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("commit @"), std::string::npos);
}

TEST(Cli, AreaReport) {
  const CliResult r = run_cli("--iters 16 --elements 4096 --area");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_TRUE(has_line_prefix(r.output, "area.total_mm2"));
}

TEST(Cli, UnknownWorkloadFails) {
  const CliResult r = run_cli("--workload nonsense");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

TEST(Cli, UnknownFlagFails) {
  const CliResult r = run_cli("--frobnicate");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(Cli, MissingValueFails) {
  const CliResult r = run_cli("--workload");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(Cli, ExtensionsRun) {
  const CliResult r = run_cli(
      "--workload gather --group-spill --switch-prefetch --iters 32 "
      "--elements 4096");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("check OK"), std::string::npos);
}

}  // namespace
