// Area/delay model tests: calibration anchors from the paper and
// scaling-shape properties.
#include <gtest/gtest.h>

#include "area/area_model.hpp"

namespace virec::area {
namespace {

TEST(Calibration, BaselineInOrderCore) {
  // CVA6-class core at 45nm: ~1.4-1.5 mm^2.
  const CoreAreaReport ino = ino_core_area();
  EXPECT_GT(ino.total_mm2, 1.3);
  EXPECT_LT(ino.total_mm2, 1.6);
}

TEST(Calibration, BankedCoresMatchPaperRange) {
  // Paper Section 6.2: 8-16 thread banked cores span 2.8-3.9 mm^2
  // (64-register banks).
  const double b8 = banked_core_area(8, 64).total_mm2;
  const double b16 = banked_core_area(16, 64).total_mm2;
  EXPECT_NEAR(b8, 2.8, 0.4);
  EXPECT_NEAR(b16, 3.9, 0.5);
}

TEST(Calibration, ViReC64RegsAbout1p7) {
  // ViReC with 8 regs/thread at 8 threads (64 physical): ~1.7 mm^2,
  // ~20% over the baseline core.
  const CoreAreaReport virec = virec_core_area(64);
  EXPECT_NEAR(virec.total_mm2, 1.7, 0.2);
  const double overhead = virec.total_mm2 / ino_core_area().total_mm2 - 1.0;
  EXPECT_NEAR(overhead, 0.20, 0.08);
}

TEST(Calibration, ViReCSavesVsBanked) {
  // Up to ~40% savings vs the banked designs.
  const double virec = virec_core_area(64).total_mm2;
  const double banked16 = banked_core_area(16, 64).total_mm2;
  const double savings = 1.0 - virec / banked16;
  EXPECT_GT(savings, 0.35);
}

TEST(Calibration, OooIsAbout19xInO) {
  EXPECT_NEAR(ooo_core_area().total_mm2 / ino_core_area().total_mm2, 19.1,
              0.5);
}

TEST(Calibration, RfDelayAnchors) {
  // 0.22 ns baseline RF, ~0.24 ns at 80 registers (+~10%).
  EXPECT_NEAR(rf_delay_ns(32), 0.22, 0.02);
  EXPECT_NEAR(virec_core_area(80).rf_delay_ns, 0.24, 0.02);
}

TEST(Scaling, RfAreaLinearInRegs) {
  const double a = rf_area_mm2(32);
  const double b = rf_area_mm2(64);
  EXPECT_NEAR(b / a, 2.0, 1e-9);
}

TEST(Scaling, RfAreaQuadraticInPorts) {
  const double base = rf_area_mm2(32, 2, 1);
  const double wide = rf_area_mm2(32, 4, 2);
  EXPECT_NEAR(wide / base, 4.0, 1e-9);
}

TEST(Scaling, CamSuperlinear) {
  // Fully-associative tag stores grow faster than linearly: doubling
  // entries more than doubles area.
  const double a = cam_area_mm2(64);
  const double b = cam_area_mm2(128);
  EXPECT_GT(b, 2.0 * a);
  EXPECT_LT(b, 4.0 * a);
}

TEST(Scaling, ViReCOvertakesBankedForFullContexts) {
  // Figure 14: storing complete 64-register contexts per thread in the
  // fully-associative ViReC RF eventually costs more than banking.
  bool crossover = false;
  for (u32 threads = 1; threads <= 16; ++threads) {
    const double banked = banked_core_area(threads, 64).total_mm2;
    const double virec = virec_core_area(threads * 64).total_mm2;
    if (virec > banked) crossover = true;
  }
  EXPECT_TRUE(crossover);
}

TEST(Scaling, ViReCWinsForSmallActiveContexts) {
  // ...but with 8 registers per thread it stays well below banked at
  // every thread count (the paper's headline trade-off).
  for (u32 threads = 4; threads <= 16; ++threads) {
    const double banked = banked_core_area(threads, 64).total_mm2;
    const double virec = virec_core_area(threads * 8).total_mm2;
    EXPECT_LT(virec, banked) << threads;
  }
}

TEST(Scaling, DelayGrowsWithEntries) {
  EXPECT_GT(rf_delay_ns(128), rf_delay_ns(32));
  EXPECT_GT(cam_delay_ns(256), cam_delay_ns(64));
  EXPECT_GT(banked_rf_delay_ns(16, 64), banked_rf_delay_ns(2, 64));
}

TEST(Reports, ComponentsSumToTotal) {
  for (const CoreAreaReport& r :
       {ino_core_area(), banked_core_area(8), virec_core_area(48),
        ooo_core_area()}) {
    EXPECT_NEAR(r.total_mm2,
                r.base_mm2 + r.rf_mm2 + r.tag_mm2 + r.queue_mm2, 1e-12)
        << r.label;
    EXPECT_FALSE(r.label.empty());
  }
}

TEST(Reports, RollbackQueueIsSmallFractionOfRf) {
  // Paper: rollback queue + VRMU logic < 10% of the RF size.
  const CoreAreaReport virec = virec_core_area(64, 8);
  EXPECT_LT(virec.queue_mm2, 0.1 * virec.rf_mm2);
}

TEST(Reports, CoreAreaForEachScheme) {
  sim::SystemConfig config = sim::SystemConfig::nmp_default();
  config.threads_per_core = 8;
  config.virec.num_phys_regs = 40;
  config.scheme = sim::Scheme::kBanked;
  const double banked = core_area_for(config).total_mm2;
  config.scheme = sim::Scheme::kViReC;
  const double virec = core_area_for(config).total_mm2;
  config.scheme = sim::Scheme::kSoftware;
  const double software = core_area_for(config).total_mm2;
  config.scheme = sim::Scheme::kPrefetchExact;
  const double prefetch = core_area_for(config).total_mm2;
  EXPECT_LT(software, virec);
  EXPECT_LT(virec, banked);
  EXPECT_LT(prefetch, banked);
  EXPECT_GT(prefetch, software);
}

}  // namespace
}  // namespace virec::area
