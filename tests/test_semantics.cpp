// Architectural semantics tests: every opcode's commit-time behaviour,
// flag setting, condition evaluation and addressing modes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "cpu/ooo_core.hpp"  // ArrayRegFile
#include "isa/semantics.hpp"

namespace virec::isa {
namespace {

class SemanticsTest : public ::testing::Test {
 protected:
  u64 reg(int r) { return rf.read_reg(0, static_cast<RegId>(r)); }
  void set(int r, u64 v) { rf.write_reg(0, static_cast<RegId>(r), v); }
  void setf(int r, double v) {
    u64 bits;
    std::memcpy(&bits, &v, sizeof bits);
    set(r, bits);
  }
  double regf(int r) {
    double v;
    const u64 bits = reg(r);
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  ExecResult run(Inst inst, u64 pc = 10) {
    return execute(inst, pc, 0, rf, memory, nzcv);
  }

  Inst alu(Op op, int rd, int rn, int rm) {
    Inst inst;
    inst.op = op;
    inst.rd = static_cast<RegId>(rd);
    inst.rn = static_cast<RegId>(rn);
    inst.rm = static_cast<RegId>(rm);
    return inst;
  }

  Inst alu_imm(Op op, int rd, int rn, i64 imm) {
    Inst inst;
    inst.op = op;
    inst.rd = static_cast<RegId>(rd);
    inst.rn = static_cast<RegId>(rn);
    inst.imm = imm;
    return inst;
  }

  cpu::ArrayRegFile rf;
  mem::SparseMemory memory;
  u8 nzcv = 0;
};

TEST_F(SemanticsTest, AddSubMul) {
  set(1, 7);
  set(2, 5);
  run(alu(Op::kAdd, 0, 1, 2));
  EXPECT_EQ(reg(0), 12u);
  run(alu(Op::kSub, 0, 1, 2));
  EXPECT_EQ(reg(0), 2u);
  run(alu(Op::kMul, 0, 1, 2));
  EXPECT_EQ(reg(0), 35u);
}

TEST_F(SemanticsTest, SubWraps) {
  set(1, 0);
  set(2, 1);
  run(alu(Op::kSub, 0, 1, 2));
  EXPECT_EQ(reg(0), ~u64{0});
}

TEST_F(SemanticsTest, Divisions) {
  set(1, 100);
  set(2, 7);
  run(alu(Op::kUdiv, 0, 1, 2));
  EXPECT_EQ(reg(0), 14u);
  set(1, static_cast<u64>(-100));
  run(alu(Op::kSdiv, 0, 1, 2));
  EXPECT_EQ(static_cast<i64>(reg(0)), -14);
}

TEST_F(SemanticsTest, DivisionByZeroYieldsZero) {
  set(1, 42);
  set(2, 0);
  run(alu(Op::kUdiv, 0, 1, 2));
  EXPECT_EQ(reg(0), 0u);
  run(alu(Op::kSdiv, 0, 1, 2));
  EXPECT_EQ(reg(0), 0u);
}

TEST_F(SemanticsTest, Logical) {
  set(1, 0b1100);
  set(2, 0b1010);
  run(alu(Op::kAnd, 0, 1, 2));
  EXPECT_EQ(reg(0), 0b1000u);
  run(alu(Op::kOrr, 0, 1, 2));
  EXPECT_EQ(reg(0), 0b1110u);
  run(alu(Op::kEor, 0, 1, 2));
  EXPECT_EQ(reg(0), 0b0110u);
}

TEST_F(SemanticsTest, Shifts) {
  set(1, 0x80);
  set(2, 4);
  run(alu(Op::kLsl, 0, 1, 2));
  EXPECT_EQ(reg(0), 0x800u);
  run(alu(Op::kLsr, 0, 1, 2));
  EXPECT_EQ(reg(0), 0x8u);
  set(1, static_cast<u64>(-64));
  run(alu(Op::kAsr, 0, 1, 2));
  EXPECT_EQ(static_cast<i64>(reg(0)), -4);
}

TEST_F(SemanticsTest, ImmediateForms) {
  set(1, 10);
  run(alu_imm(Op::kAddImm, 0, 1, 5));
  EXPECT_EQ(reg(0), 15u);
  run(alu_imm(Op::kSubImm, 0, 1, 5));
  EXPECT_EQ(reg(0), 5u);
  run(alu_imm(Op::kLslImm, 0, 1, 3));
  EXPECT_EQ(reg(0), 80u);
  run(alu_imm(Op::kAndImm, 0, 1, 0xff));
  EXPECT_EQ(reg(0), 10u);
}

TEST_F(SemanticsTest, MovForms) {
  Inst movi;
  movi.op = Op::kMovImm;
  movi.rd = 0;
  movi.imm = -7;
  run(movi);
  EXPECT_EQ(static_cast<i64>(reg(0)), -7);

  set(2, 99);
  Inst mov;
  mov.op = Op::kMov;
  mov.rd = 1;
  mov.rm = 2;
  run(mov);
  EXPECT_EQ(reg(1), 99u);

  Inst mvn;
  mvn.op = Op::kMvn;
  mvn.rd = 1;
  mvn.rm = 2;
  run(mvn);
  EXPECT_EQ(reg(1), ~u64{99});
}

TEST_F(SemanticsTest, MovkReplacesLane) {
  set(0, 0x1111222233334444ull);
  Inst movk;
  movk.op = Op::kMovk;
  movk.rd = 0;
  movk.imm = 0xabcd;
  movk.imm2 = 2;
  run(movk);
  EXPECT_EQ(reg(0), 0x1111abcd33334444ull);
}

TEST_F(SemanticsTest, Madd) {
  set(1, 3);
  set(2, 4);
  set(3, 100);
  Inst madd;
  madd.op = Op::kMadd;
  madd.rd = 0;
  madd.rn = 1;
  madd.rm = 2;
  madd.ra = 3;
  run(madd);
  EXPECT_EQ(reg(0), 112u);
}

TEST_F(SemanticsTest, FpArithmetic) {
  setf(1, 1.5);
  setf(2, 2.25);
  run(alu(Op::kFadd, 0, 1, 2));
  EXPECT_DOUBLE_EQ(regf(0), 3.75);
  run(alu(Op::kFsub, 0, 1, 2));
  EXPECT_DOUBLE_EQ(regf(0), -0.75);
  run(alu(Op::kFmul, 0, 1, 2));
  EXPECT_DOUBLE_EQ(regf(0), 3.375);
  run(alu(Op::kFdiv, 0, 1, 2));
  EXPECT_DOUBLE_EQ(regf(0), 1.5 / 2.25);
}

TEST_F(SemanticsTest, Fmadd) {
  setf(1, 2.0);
  setf(2, 3.0);
  setf(3, 10.0);
  Inst fmadd;
  fmadd.op = Op::kFmadd;
  fmadd.rd = 0;
  fmadd.rn = 1;
  fmadd.rm = 2;
  fmadd.ra = 3;
  run(fmadd);
  EXPECT_DOUBLE_EQ(regf(0), 16.0);
}

TEST_F(SemanticsTest, FpConversions) {
  set(1, static_cast<u64>(-5));
  Inst scvtf;
  scvtf.op = Op::kScvtf;
  scvtf.rd = 0;
  scvtf.rn = 1;
  run(scvtf);
  EXPECT_DOUBLE_EQ(regf(0), -5.0);

  setf(2, 7.9);
  Inst fcvt;
  fcvt.op = Op::kFcvtzs;
  fcvt.rd = 0;
  fcvt.rn = 2;
  run(fcvt);
  EXPECT_EQ(static_cast<i64>(reg(0)), 7);  // truncation toward zero
}

TEST_F(SemanticsTest, CmpSetsFlags) {
  set(1, 5);
  set(2, 5);
  Inst cmp;
  cmp.op = Op::kCmp;
  cmp.rn = 1;
  cmp.rm = 2;
  run(cmp);
  EXPECT_TRUE(cond_holds(Cond::kEq, nzcv));
  EXPECT_TRUE(cond_holds(Cond::kGe, nzcv));
  EXPECT_TRUE(cond_holds(Cond::kHs, nzcv));
  EXPECT_FALSE(cond_holds(Cond::kLt, nzcv));
  EXPECT_FALSE(cond_holds(Cond::kNe, nzcv));
}

TEST_F(SemanticsTest, CmpSignedUnsignedDistinction) {
  // -1 vs 1: signed less-than, unsigned greater (higher).
  set(1, ~u64{0});
  Inst cmp;
  cmp.op = Op::kCmpImm;
  cmp.rn = 1;
  cmp.imm = 1;
  run(cmp);
  EXPECT_TRUE(cond_holds(Cond::kLt, nzcv));
  EXPECT_TRUE(cond_holds(Cond::kHi, nzcv));
  EXPECT_FALSE(cond_holds(Cond::kGt, nzcv));
  EXPECT_FALSE(cond_holds(Cond::kLo, nzcv));
}

TEST_F(SemanticsTest, CondAlAlwaysHolds) {
  EXPECT_TRUE(cond_holds(Cond::kAl, 0));
  EXPECT_TRUE(cond_holds(Cond::kAl, 0xf));
}

TEST_F(SemanticsTest, BranchTaken) {
  Inst b;
  b.op = Op::kB;
  b.target = 3;
  const ExecResult res = run(b, 10);
  EXPECT_TRUE(res.taken_branch);
  EXPECT_EQ(res.next_pc, 3u);
}

TEST_F(SemanticsTest, BcondFollowsFlags) {
  set(1, 1);
  Inst cmp;
  cmp.op = Op::kCmpImm;
  cmp.rn = 1;
  cmp.imm = 2;
  run(cmp);  // 1 < 2
  Inst bc;
  bc.op = Op::kBcond;
  bc.cond = Cond::kLt;
  bc.target = 0;
  EXPECT_TRUE(run(bc, 5).taken_branch);
  bc.cond = Cond::kGt;
  const ExecResult res = run(bc, 5);
  EXPECT_FALSE(res.taken_branch);
  EXPECT_EQ(res.next_pc, 6u);
}

TEST_F(SemanticsTest, CbzCbnz) {
  set(1, 0);
  Inst cbz;
  cbz.op = Op::kCbz;
  cbz.rn = 1;
  cbz.target = 2;
  EXPECT_TRUE(run(cbz).taken_branch);
  Inst cbnz;
  cbnz.op = Op::kCbnz;
  cbnz.rn = 1;
  cbnz.target = 2;
  EXPECT_FALSE(run(cbnz).taken_branch);
  set(1, 9);
  EXPECT_TRUE(run(cbnz).taken_branch);
}

TEST_F(SemanticsTest, BlAndRet) {
  Inst bl;
  bl.op = Op::kBl;
  bl.target = 100;
  const ExecResult call = run(bl, 7);
  EXPECT_EQ(call.next_pc, 100u);
  EXPECT_EQ(reg(30), 8u);  // return address

  Inst ret;
  ret.op = Op::kRet;
  const ExecResult back = run(ret, 100);
  EXPECT_EQ(back.next_pc, 8u);
}

TEST_F(SemanticsTest, HaltStops) {
  Inst halt;
  halt.op = Op::kHalt;
  const ExecResult res = run(halt, 4);
  EXPECT_TRUE(res.halted);
}

TEST_F(SemanticsTest, LoadStoreOffset) {
  set(1, 0x1000);
  memory.write_u64(0x1008, 0xdeadbeefcafef00dull);
  Inst ldr;
  ldr.op = Op::kLdr;
  ldr.rd = 0;
  ldr.rn = 1;
  ldr.imm = 8;
  run(ldr);
  EXPECT_EQ(reg(0), 0xdeadbeefcafef00dull);

  set(2, 0x1234);
  Inst str;
  str.op = Op::kStr;
  str.rd = 2;
  str.rn = 1;
  str.imm = 32;
  run(str);
  EXPECT_EQ(memory.read_u64(0x1020), 0x1234u);
}

TEST_F(SemanticsTest, SubWordWidths) {
  set(1, 0x1000);
  memory.write_u64(0x1000, 0xffffffff90ffff80ull);
  Inst ldrb;
  ldrb.op = Op::kLdrb;
  ldrb.rd = 0;
  ldrb.rn = 1;
  run(ldrb);
  EXPECT_EQ(reg(0), 0x80u);  // zero-extended

  Inst ldrh;
  ldrh.op = Op::kLdrh;
  ldrh.rd = 0;
  ldrh.rn = 1;
  run(ldrh);
  EXPECT_EQ(reg(0), 0xff80u);

  Inst ldrw;
  ldrw.op = Op::kLdrw;
  ldrw.rd = 0;
  ldrw.rn = 1;
  run(ldrw);
  EXPECT_EQ(reg(0), 0x90ffff80u);

  Inst ldrsw;
  ldrsw.op = Op::kLdrsw;
  ldrsw.rd = 0;
  ldrsw.rn = 1;
  run(ldrsw);
  EXPECT_EQ(reg(0), 0xffffffff90ffff80ull);  // sign-extended
}

TEST_F(SemanticsTest, PostIndexAdvancesBaseAfterAccess) {
  set(1, 0x2000);
  memory.write_u64(0x2000, 77);
  Inst ldr;
  ldr.op = Op::kLdr;
  ldr.rd = 0;
  ldr.rn = 1;
  ldr.imm = 8;
  ldr.mem_mode = MemMode::kPostIndex;
  run(ldr);
  EXPECT_EQ(reg(0), 77u);       // loaded from the un-incremented base
  EXPECT_EQ(reg(1), 0x2008u);   // base advanced afterwards
}

TEST_F(SemanticsTest, PreIndexAdvancesBaseBeforeAccess) {
  set(1, 0x2000);
  memory.write_u64(0x2008, 55);
  Inst ldr;
  ldr.op = Op::kLdr;
  ldr.rd = 0;
  ldr.rn = 1;
  ldr.imm = 8;
  ldr.mem_mode = MemMode::kPreIndex;
  run(ldr);
  EXPECT_EQ(reg(0), 55u);
  EXPECT_EQ(reg(1), 0x2008u);
}

TEST_F(SemanticsTest, RegOffsetWithShift) {
  set(1, 0x3000);
  set(2, 5);
  memory.write_u64(0x3000 + (5 << 3), 41);
  Inst ldr;
  ldr.op = Op::kLdr;
  ldr.rd = 0;
  ldr.rn = 1;
  ldr.rm = 2;
  ldr.shift = 3;
  ldr.mem_mode = MemMode::kRegOffset;
  EXPECT_EQ(compute_mem_addr(ldr, 0, rf), 0x3028u);
  run(ldr);
  EXPECT_EQ(reg(0), 41u);
}

TEST_F(SemanticsTest, XzrReadsZeroWritesDiscarded) {
  Inst add;
  add.op = Op::kAddImm;
  add.rd = kZeroReg;
  add.rn = kZeroReg;
  add.imm = 99;
  run(add);
  // xzr writes are discarded: nothing observable. Read through a normal
  // register to confirm xzr source reads as zero.
  Inst mov;
  mov.op = Op::kMov;
  mov.rd = 0;
  mov.rm = kZeroReg;
  set(0, 123);
  run(mov);
  EXPECT_EQ(reg(0), 0u);
}

TEST_F(SemanticsTest, StoreOfXzrWritesZero) {
  set(1, 0x4000);
  memory.write_u64(0x4000, 999);
  Inst str;
  str.op = Op::kStr;
  str.rd = kZeroReg;
  str.rn = 1;
  run(str);
  EXPECT_EQ(memory.read_u64(0x4000), 0u);
}

TEST_F(SemanticsTest, NonBranchAdvancesPc) {
  Inst nop;
  nop.op = Op::kNop;
  EXPECT_EQ(run(nop, 41).next_pc, 42u);
}

}  // namespace
}  // namespace virec::isa
