// Analysis module tests: the register-usage profiler must agree with
// each kernel's declared active context (the Figure 2 data), and the
// reuse-distance analyzer must show the inter-thread effects that
// motivate MRT/LRC.
#include <gtest/gtest.h>

#include "analysis/reg_usage.hpp"
#include "analysis/reuse_distance.hpp"

namespace virec::analysis {
namespace {

workloads::WorkloadParams tiny_params() {
  workloads::WorkloadParams params;
  params.iters_per_thread = 64;
  params.elements = 1 << 12;
  return params;
}

class RegUsageTest
    : public ::testing::TestWithParam<const workloads::Workload*> {};

TEST_P(RegUsageTest, InnerRegsMatchDeclaredActiveContext) {
  const workloads::Workload& w = *GetParam();
  const RegUsageReport report = profile_registers(w, tiny_params());
  EXPECT_EQ(report.inner_regs, w.active_regs()) << w.name();
  EXPECT_GE(report.total_regs, report.inner_regs);
  EXPECT_GT(report.instructions, 0u);
}

TEST_P(RegUsageTest, UtilisationIsWellBelowFullContext) {
  // Figure 2's observation: memory-intensive kernels use a small
  // fraction of the 31-register context in their inner loops.
  const workloads::Workload& w = *GetParam();
  const RegUsageReport report = profile_registers(w, tiny_params());
  EXPECT_LT(report.inner_fraction(), 0.5) << w.name();
}

INSTANTIATE_TEST_SUITE_P(AllKernels, RegUsageTest,
                         ::testing::ValuesIn(workloads::workload_registry()),
                         [](const auto& info) { return info.param->name(); });

TEST(RegUsage, AccessCountsConcentrateOnInnerRegs) {
  const auto& gather = workloads::find_workload("gather");
  const RegUsageReport report = profile_registers(gather, tiny_params());
  u64 inner_accesses = 0, total = 0;
  for (u64 c : report.access_counts) total += c;
  // x0..x5 carry the gather loop.
  for (int r = 0; r <= 5; ++r) inner_accesses += report.access_counts[r];
  EXPECT_GT(static_cast<double>(inner_accesses), 0.95 * static_cast<double>(total));
}

TEST(RegUsage, CapGuardsRunaways) {
  const auto& gather = workloads::find_workload("gather");
  EXPECT_THROW(profile_registers(gather, tiny_params(), 10),
               std::runtime_error);
}

TEST(ReuseDistance, SingleThreadDistancesAreShort) {
  const auto& gather = workloads::find_workload("gather");
  const ReuseHistogram hist = register_reuse(gather, tiny_params());
  EXPECT_GT(hist.total_accesses, 0u);
  // A 6-register loop: intra-thread stack distances stay below the
  // active context size for nearly all accesses.
  EXPECT_GT(hist.cdf(8), 0.99);
}

TEST(ReuseDistance, InterleavingStretchesDistances) {
  const auto& gather = workloads::find_workload("gather");
  const ReuseHistogram single = register_reuse(gather, tiny_params());
  const ReuseHistogram inter =
      interleaved_register_reuse(gather, tiny_params(), /*threads=*/4,
                                 /*accesses_per_episode=*/12);
  // Section 4.1: interleaved execution adds the other threads' working
  // sets to every reuse distance.
  EXPECT_GT(inter.mean_distance(), single.mean_distance() * 2);
}

TEST(ReuseDistance, MoreThreadsStretchFurther) {
  const auto& gather = workloads::find_workload("gather");
  const ReuseHistogram two =
      interleaved_register_reuse(gather, tiny_params(), 2, 12);
  const ReuseHistogram eight =
      interleaved_register_reuse(gather, tiny_params(), 8, 12);
  EXPECT_GT(eight.mean_distance(), two.mean_distance());
}

TEST(ReuseDistance, FirstTouchesCounted) {
  const auto& gather = workloads::find_workload("gather");
  const ReuseHistogram hist = register_reuse(gather, tiny_params());
  EXPECT_GT(hist.first_touches, 0u);
  EXPECT_LE(hist.first_touches, 31u);
}

TEST(ReuseDistance, CdfIsMonotonic) {
  const auto& spmv = workloads::find_workload("spmv");
  const ReuseHistogram hist = register_reuse(spmv, tiny_params());
  double prev = 0.0;
  for (u32 d = 0; d <= ReuseHistogram::kMaxDistance; ++d) {
    const double c = hist.cdf(d);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(hist.cdf(ReuseHistogram::kMaxDistance), 1.0, 1e-12);
}

TEST(ReuseDistance, BadArgumentsThrow) {
  const auto& gather = workloads::find_workload("gather");
  EXPECT_THROW(
      interleaved_register_reuse(gather, tiny_params(), 0, 8),
      std::invalid_argument);
  EXPECT_THROW(
      interleaved_register_reuse(gather, tiny_params(), 2, 0),
      std::invalid_argument);
}

}  // namespace
}  // namespace virec::analysis
