// ViReCManager tests: functional register movement through the cached
// RF and backing store, decode-time fill/eviction behaviour, rollback
// interactions and thread teardown.
#include <gtest/gtest.h>

#include "core/virec_manager.hpp"

namespace virec::core {
namespace {

class ViReCManagerTest : public ::testing::Test {
 protected:
  ViReCManagerTest()
      : ms(mem::MemSystemConfig{}),
        env{.core_id = 0, .num_threads = 4, .ms = &ms} {}

  std::unique_ptr<ViReCManager> make(u32 regs,
                                     PolicyKind policy = PolicyKind::kLRC) {
    ViReCConfig config;
    config.num_phys_regs = regs;
    config.policy = policy;
    return std::make_unique<ViReCManager>(config, env);
  }

  isa::Inst add(int rd, int rn, int rm) {
    isa::Inst inst;
    inst.op = isa::Op::kAdd;
    inst.rd = static_cast<isa::RegId>(rd);
    inst.rn = static_cast<isa::RegId>(rn);
    inst.rm = static_cast<isa::RegId>(rm);
    return inst;
  }

  void seed_backing(int tid, int reg, u64 value) {
    ms.memory().write_u64(
        ms.reg_addr(0, static_cast<u32>(tid), static_cast<u32>(reg)), value);
  }

  u64 backing(int tid, int reg) {
    return ms.memory().read_u64(
        ms.reg_addr(0, static_cast<u32>(tid), static_cast<u32>(reg)));
  }

  mem::MemorySystem ms;
  cpu::CoreEnv env;
};

TEST_F(ViReCManagerTest, ReadsFallBackToBackingStore) {
  auto mgr = make(8);
  seed_backing(0, 5, 1234);
  EXPECT_EQ(mgr->read_reg(0, 5), 1234u);
}

TEST_F(ViReCManagerTest, WriteWithoutMappingGoesToBacking) {
  auto mgr = make(8);
  mgr->write_reg(1, 3, 777);
  EXPECT_EQ(backing(1, 3), 777u);
}

TEST_F(ViReCManagerTest, DecodeFillsSourcesFromBacking) {
  auto mgr = make(8);
  seed_backing(0, 1, 11);
  seed_backing(0, 2, 22);
  const cpu::DecodeAccess acc = mgr->on_decode(0, add(3, 1, 2), 100);
  EXPECT_FALSE(acc.hit);
  EXPECT_EQ(acc.fills, 2u);
  EXPECT_GT(acc.ready, 100u);
  EXPECT_EQ(mgr->read_reg(0, 1), 11u);
  EXPECT_EQ(mgr->read_reg(0, 2), 22u);
  EXPECT_GE(mgr->tag_store().valid_entries(), 3u);  // 2 srcs + dest
  mgr->on_commit(0, add(3, 1, 2));
}

TEST_F(ViReCManagerTest, SecondDecodeHits) {
  auto mgr = make(8);
  const isa::Inst inst = add(3, 1, 2);
  mgr->on_decode(0, inst, 0);
  mgr->on_commit(0, inst);
  const cpu::DecodeAccess acc = mgr->on_decode(0, inst, 100);
  EXPECT_TRUE(acc.hit);
  EXPECT_EQ(acc.ready, 100u);
  mgr->on_commit(0, inst);
}

TEST_F(ViReCManagerTest, DestinationOnlyUsesDummyFill) {
  auto mgr = make(8);
  seed_backing(0, 1, 1);
  seed_backing(0, 2, 2);
  // Warm the backing line so dummy fills are cheap.
  mgr->on_decode(0, add(9, 1, 2), 0);
  mgr->on_commit(0, add(9, 1, 2));
  // rd=10 is a pure destination: with the optimisation its latency does
  // not extend decode.
  const cpu::DecodeAccess acc = mgr->on_decode(0, add(10, 1, 2), 1000);
  EXPECT_EQ(acc.ready, 1000u);
  EXPECT_GE(mgr->stats().get("bsi_dummy_fills"), 1.0);
  mgr->on_commit(0, add(10, 1, 2));
}

TEST_F(ViReCManagerTest, CommitWritesStayInPhysicalRf) {
  auto mgr = make(8);
  mgr->on_decode(0, add(3, 1, 2), 0);
  mgr->write_reg(0, 3, 99);  // commit-time write
  mgr->on_commit(0, add(3, 1, 2));
  EXPECT_EQ(mgr->read_reg(0, 3), 99u);
  // Not yet in backing store (dirty in RF).
  EXPECT_EQ(backing(0, 3), 0u);
}

TEST_F(ViReCManagerTest, EvictionSpillsDirtyValueToBacking) {
  auto mgr = make(4);  // tiny RF forces evictions
  mgr->on_decode(0, add(3, 1, 2), 0);
  mgr->write_reg(0, 3, 4242);
  mgr->on_commit(0, add(3, 1, 2));
  // Flood the RF with another thread's registers until x3 is evicted.
  Cycle t = 100;
  for (int i = 0; i < 8; ++i) {
    const isa::Inst inst = add((i % 5) + 4, (i % 7) + 10, (i % 3) + 20);
    mgr->on_decode(1, inst, t);
    mgr->on_commit(1, inst);
    t += 50;
  }
  // Wherever x3 lives now, its value must still be 4242.
  EXPECT_EQ(mgr->read_reg(0, 3), 4242u);
  EXPECT_GT(mgr->stats().get("rf_evictions"), 0.0);
}

TEST_F(ViReCManagerTest, ContextSwitchResetsFlushedCBits) {
  auto mgr = make(8);
  const isa::Inst inst = add(3, 1, 2);
  mgr->on_decode(0, inst, 0);
  // No commit: the instruction is in flight when the switch happens.
  mgr->on_context_switch(0, 1, 2, 10);
  const TagStore& tags = mgr->tag_store();
  bool found_flushed = false;
  for (u32 i = 0; i < tags.size(); ++i) {
    if (tags.entry(i).valid && tags.entry(i).tid == 0) {
      EXPECT_FALSE(tags.entry(i).c_bit);
      found_flushed = true;
    }
  }
  EXPECT_TRUE(found_flushed);
  EXPECT_TRUE(mgr->rollback_queue().empty());
}

TEST_F(ViReCManagerTest, CommittedRegistersKeepCBit) {
  auto mgr = make(8);
  const isa::Inst inst = add(3, 1, 2);
  mgr->on_decode(0, inst, 0);
  mgr->on_commit(0, inst);
  mgr->on_context_switch(0, 1, 2, 10);
  const TagStore& tags = mgr->tag_store();
  for (u32 i = 0; i < tags.size(); ++i) {
    if (tags.entry(i).valid && tags.entry(i).tid == 0) {
      EXPECT_TRUE(tags.entry(i).c_bit);
    }
  }
}

TEST_F(ViReCManagerTest, MispredictFlushDropsRollbackOnly) {
  auto mgr = make(8);
  mgr->on_decode(0, add(3, 1, 2), 0);
  mgr->on_mispredict_flush(0);
  EXPECT_TRUE(mgr->rollback_queue().empty());
  // Wrong-path registers keep their speculative C bit.
  const TagStore& tags = mgr->tag_store();
  for (u32 i = 0; i < tags.size(); ++i) {
    if (tags.entry(i).valid) EXPECT_TRUE(tags.entry(i).c_bit);
  }
}

TEST_F(ViReCManagerTest, SwitchMaskedDuringOutstandingFill) {
  auto mgr = make(8);
  const cpu::DecodeAccess acc = mgr->on_decode(0, add(3, 1, 2), 100);
  EXPECT_FALSE(mgr->switch_allowed(acc.ready - 1));
  EXPECT_TRUE(mgr->switch_allowed(acc.ready));
}

TEST_F(ViReCManagerTest, ThreadHaltSpillsAndInvalidates) {
  auto mgr = make(8);
  mgr->on_decode(0, add(3, 1, 2), 0);
  mgr->write_reg(0, 3, 555);
  mgr->on_commit(0, add(3, 1, 2));
  mgr->on_thread_halt(0, 1000);
  EXPECT_EQ(backing(0, 3), 555u);
  const TagStore& tags = mgr->tag_store();
  for (u32 i = 0; i < tags.size(); ++i) {
    EXPECT_FALSE(tags.entry(i).valid && tags.entry(i).tid == 0);
  }
}

TEST_F(ViReCManagerTest, HitRateAccounting) {
  auto mgr = make(8);
  const isa::Inst inst = add(3, 1, 2);
  mgr->on_decode(0, inst, 0);
  mgr->on_commit(0, inst);
  mgr->on_decode(0, inst, 100);
  mgr->on_commit(0, inst);
  EXPECT_GT(mgr->rf_hit_rate(), 0.0);
  EXPECT_LT(mgr->rf_hit_rate(), 1.0);
  EXPECT_EQ(mgr->stats().get("rf_hits") + mgr->stats().get("rf_misses"), 6.0);
}

TEST_F(ViReCManagerTest, NsfConfigHasPublishedFeatureSet) {
  const ViReCConfig nsf = make_nsf_config(32);
  EXPECT_EQ(nsf.policy, PolicyKind::kPLRU);
  EXPECT_FALSE(nsf.bsi.non_blocking);
  EXPECT_FALSE(nsf.bsi.dummy_dest_fill);
  EXPECT_FALSE(nsf.bsi.pin_lines);
  EXPECT_FALSE(nsf.csl.sysreg_prefetch);
  EXPECT_EQ(nsf.num_phys_regs, 32u);
}

TEST_F(ViReCManagerTest, PhysicalRegsReported) {
  EXPECT_EQ(make(24)->physical_regs(), 24u);
}

TEST_F(ViReCManagerTest, FunctionalCorrectnessAcrossManyEvictions) {
  // Property: any interleaving of writes + evictions preserves values.
  auto mgr = make(6);
  Xorshift128 rng(42);
  std::array<std::array<u64, 8>, 2> expected{};
  Cycle t = 0;
  for (int step = 0; step < 500; ++step) {
    const int tid = static_cast<int>(rng.next_below(2));
    const int reg = static_cast<int>(rng.next_below(8));
    const isa::Inst inst = add(reg, (reg + 1) % 8, (reg + 2) % 8);
    mgr->on_decode(tid, inst, t);
    const u64 value = rng.next();
    mgr->write_reg(tid, static_cast<isa::RegId>(reg), value);
    expected[static_cast<u32>(tid)][static_cast<u32>(reg)] = value;
    mgr->on_commit(tid, inst);
    t += 20;
    if (step % 37 == 0) {
      mgr->on_context_switch(tid, 1 - tid, tid, t);
    }
  }
  for (int tid = 0; tid < 2; ++tid) {
    for (int reg = 0; reg < 8; ++reg) {
      EXPECT_EQ(mgr->read_reg(tid, static_cast<isa::RegId>(reg)),
                expected[static_cast<u32>(tid)][static_cast<u32>(reg)])
          << "tid " << tid << " reg " << reg;
    }
  }
}

}  // namespace
}  // namespace virec::core
