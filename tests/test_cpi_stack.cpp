// Closed cycle accounting (CPI stacks): the closure invariant — every
// simulated cycle of every core lands in exactly one bucket — across
// every scheme x policy, bit-identical stacks between skipped and
// stepped runs, exact identities against the legacy stall counters,
// checkpoint/restore preservation mid-run, and presence of the stack
// in the JSON report and sweep CSV.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "common/cycle_account.hpp"
#include "cpu/ooo_core.hpp"
#include "kasm/assembler.hpp"
#include "sim/observability.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "sim/system.hpp"
#include "json_checker.hpp"
#include "workloads/workload.hpp"

namespace virec::sim {
namespace {

namespace fs = std::filesystem;

RunSpec tiny_spec(Scheme scheme, core::PolicyKind policy) {
  RunSpec spec;
  spec.workload = "gather";
  spec.scheme = scheme;
  spec.policy = policy;
  spec.threads_per_core = 4;
  spec.context_fraction = 0.5;
  spec.params.iters_per_thread = 16;
  spec.params.elements = 1 << 12;
  return spec;
}

void expect_bits_eq(double a, double b, const char* what) {
  u64 ab, bb;
  std::memcpy(&ab, &a, sizeof ab);
  std::memcpy(&bb, &b, sizeof bb);
  EXPECT_EQ(ab, bb) << what << ": " << a << " vs " << b;
}

// ---------------------------------------------------------------------
// Closure: Σ buckets == elapsed cycles, per core and summed, with the
// per-cycle invariant armed (enable_check makes every step/skip assert
// it internally too — a broken charge path aborts the run right there).

class CpiClosure
    : public ::testing::TestWithParam<std::tuple<Scheme, core::PolicyKind>> {};

TEST_P(CpiClosure, EveryCycleInExactlyOneBucket) {
  const auto [scheme, policy] = GetParam();
  const RunSpec spec = tiny_spec(scheme, policy);
  const workloads::Workload& workload =
      workloads::find_workload(spec.workload);
  System system(build_config(spec), workload, spec.params);
  system.enable_check();
  const RunResult result = system.run();
  ASSERT_TRUE(result.check_ok) << result.check_msg;

  const cpu::CgmtCore& core = system.core(0);
  const CycleAccount& acct = core.cycle_account();

  // Core-level closure, bit exact.
  expect_bits_eq(acct.total(), static_cast<double>(core.cycle()),
                 "core bucket sum vs cycles");

  // Thread closure: idle cycles belong to no thread; everything else
  // is attributed to exactly one.
  double threads_total = 0.0;
  for (u32 t = 0; t < acct.num_threads(); ++t) {
    threads_total += acct.thread_total(t);
  }
  expect_bits_eq(threads_total + acct.bucket(CycleBucket::kIdle),
                 static_cast<double>(core.cycle()),
                 "thread bucket sum + idle vs cycles");

  // RunResult carries the same (single-core) stack.
  double result_total = 0.0;
  for (const double v : result.cpi_stack) result_total += v;
  expect_bits_eq(result_total, static_cast<double>(result.cycles),
                 "RunResult.cpi_stack sum vs cycles");

  // Something committed, so useful cycles cannot be zero.
  EXPECT_GT(acct.bucket(CycleBucket::kCommit), 0.0);
}

std::vector<std::tuple<Scheme, core::PolicyKind>> all_points() {
  std::vector<std::tuple<Scheme, core::PolicyKind>> out;
  for (Scheme s : {Scheme::kBanked, Scheme::kSoftware, Scheme::kPrefetchFull,
                   Scheme::kPrefetchExact, Scheme::kViReC, Scheme::kNSF}) {
    for (core::PolicyKind p : core::all_policies()) out.emplace_back(s, p);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, CpiClosure, ::testing::ValuesIn(all_points()),
    [](const ::testing::TestParamInfo<CpiClosure::ParamType>& info) {
      std::string name =
          std::string(scheme_name(std::get<0>(info.param))) + "_" +
          core::policy_name(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------
// The OoO comparator carries a coarse commit-gap stack: one commit
// cycle per advance, the rest of the gap attributed to frontend /
// memory / pipeline. It must close against the core's cycle count with
// the invariant armed, and a miss-heavy chain must show memory stall.

TEST(CpiOooCore, CoarseStackClosesAndSeesMemoryStall) {
  // Dependent pointer-style loads over a 256 KiB stride stream: every
  // load misses the dcache and the chain serialises them.
  const kasm::Program p = kasm::assemble(R"(
    mov x0, #0
    mov x9, #64
    loop:
      ldr x1, [x0]
      add x0, x0, #4096
      sub x9, x9, #1
      cbnz x9, loop
    halt
  )");
  mem::MemSystemConfig mem_config;
  mem_config.has_l2 = true;
  mem::MemorySystem ms(mem_config);
  cpu::OooCore core(cpu::OooCoreConfig{}, ms, 0, p);
  check::CheckContext check;
  core.set_check(&check);
  EXPECT_NO_THROW(core.run());  // closure VIREC_CHECK armed

  const CycleAccount& acct = core.cycle_account();
  expect_bits_eq(acct.total(), static_cast<double>(core.cycles()),
                 "ooo bucket sum vs cycles");
  EXPECT_GT(acct.bucket(CycleBucket::kCommit), 0.0);
  EXPECT_GT(acct.bucket(CycleBucket::kMemData), 0.0);
}

// ---------------------------------------------------------------------
// Skip equivalence: the bulk-charge in skip_to() must land every
// fast-forwarded cycle in the bucket the stepped run charges.

TEST(CpiSkipEquivalence, BucketsBitIdenticalSkippedVsStepped) {
  const RunSpec spec = tiny_spec(Scheme::kViReC, core::PolicyKind::kLRC);
  RunSpec stepped_spec = spec;
  stepped_spec.no_skip = true;
  const RunResult skip = run_spec(spec);
  const RunResult stepped = run_spec(stepped_spec);
  ASSERT_TRUE(skip.check_ok);
  EXPECT_EQ(skip.cycles, stepped.cycles);
  for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
    expect_bits_eq(skip.cpi_stack[b], stepped.cpi_stack[b],
                   cycle_bucket_name(static_cast<CycleBucket>(b)));
  }
}

// ---------------------------------------------------------------------
// Legacy identities: buckets that shadow a pre-existing stall counter
// must equal it exactly — the accounting is a closure over the same
// events, not a parallel approximation.

TEST(CpiLegacyIdentity, BucketsMatchLegacyStallCounters) {
  const RunSpec spec = tiny_spec(Scheme::kViReC, core::PolicyKind::kLRC);
  const workloads::Workload& workload =
      workloads::find_workload(spec.workload);
  System system(build_config(spec), workload, spec.params);
  const RunResult result = system.run();
  ASSERT_TRUE(result.check_ok) << result.check_msg;

  const StatSet& cs = system.core(0).stats();
  expect_bits_eq(cs.get("cpi_idle"), cs.get("idle_cycles"), "idle");
  expect_bits_eq(cs.get("cpi_switch_no_target"),
                 cs.get("switch_no_target_cycles"), "switch_no_target");
  expect_bits_eq(cs.get("cpi_switch_masked"), cs.get("switch_masked_cycles"),
                 "switch_masked");
  expect_bits_eq(cs.get("cpi_sq_full"), cs.get("sq_full_stall_cycles"),
                 "sq_full");
}

// ---------------------------------------------------------------------
// Checkpointing: the stack lives in the core's StatSet, so a mid-run
// snapshot must carry it and a resumed run must finish with the exact
// stack of the uninterrupted run.

TEST(CpiCheckpoint, MidRunRestorePreservesStack) {
  const RunSpec spec = tiny_spec(Scheme::kViReC, core::PolicyKind::kLRC);
  const fs::path dir = fs::path(::testing::TempDir()) / "cpi_ckpt";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const workloads::Workload& workload =
      workloads::find_workload(spec.workload);
  const SystemConfig config = build_config(spec);

  System straight(config, workload, spec.params);
  straight.set_checkpointing(400, dir.string());
  const RunResult want = straight.run();
  ASSERT_TRUE(want.check_ok) << want.check_msg;

  std::vector<fs::path> snaps;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".vckpt") snaps.push_back(e.path());
  }
  ASSERT_GE(snaps.size(), 2u) << "run too short to checkpoint mid-flight";
  std::sort(snaps.begin(), snaps.end());

  System resumed(config, workload, spec.params);
  resumed.restore(snaps[snaps.size() / 2].string());
  // The restored snapshot itself must already close: buckets summed so
  // far equal the restored core's cycle.
  expect_bits_eq(resumed.core(0).cycle_account().total(),
                 static_cast<double>(resumed.core(0).cycle()),
                 "restored stack closes at snapshot cycle");
  const RunResult got = resumed.run();

  for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
    expect_bits_eq(want.cpi_stack[b], got.cpi_stack[b],
                   cycle_bucket_name(static_cast<CycleBucket>(b)));
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Reporting surfaces: the JSON report carries a closed cpi_stack
// section (names + totals + per-core + per-thread) and per-sample
// stacks; the sweep CSV gains one normalised column per bucket.

TEST(CpiReport, JsonReportCarriesClosedStack) {
  const RunSpec spec = tiny_spec(Scheme::kViReC, core::PolicyKind::kLRC);
  const workloads::Workload& workload =
      workloads::find_workload(spec.workload);
  System system(build_config(spec), workload, spec.params);
  system.set_sample_interval(512);
  const RunResult result = system.run();
  ASSERT_TRUE(result.check_ok) << result.check_msg;

  std::ostringstream os;
  write_json_report(os, system, spec, result, 512);
  const testing::JsonValue doc = testing::JsonParser::parse(os.str());

  const testing::JsonValue& stack = doc.at("cpi_stack");
  const testing::JsonValue& buckets = stack.at("buckets");
  ASSERT_EQ(buckets.array.size(), kNumCycleBuckets);
  EXPECT_EQ(buckets.array[0].string,
            cycle_bucket_name(CycleBucket::kCommit));

  const testing::JsonValue& total = stack.at("total");
  ASSERT_EQ(total.array.size(), kNumCycleBuckets);
  double sum = 0.0;
  for (const testing::JsonValue& v : total.array) sum += v.number;
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(result.cycles));

  ASSERT_EQ(stack.at("per_core").array.size(), 1u);
  EXPECT_EQ(stack.at("per_thread").array.size(), 4u);

  // Every sample row carries the cumulative stack.
  const testing::JsonValue& samples = doc.at("time_series").at("samples");
  ASSERT_FALSE(samples.array.empty());
  for (const testing::JsonValue& s : samples.array) {
    ASSERT_EQ(s.at("cpi").array.size(), kNumCycleBuckets);
  }

  // The stack's cpi_* scalars are registered stats with descriptions.
  bool found = false;
  for (const Stat& s : system.registry().all_scalars()) {
    if (s.name.find("cpi_commit") == std::string::npos) continue;
    found = true;
    EXPECT_FALSE(s.desc.empty()) << s.name;
  }
  EXPECT_TRUE(found);
}

TEST(CpiReport, SweepCsvCarriesBucketColumns) {
  Sweep sweep;
  sweep.base() = tiny_spec(Scheme::kViReC, core::PolicyKind::kLRC);
  sweep.over_schemes({Scheme::kBanked, Scheme::kViReC});
  const SweepResults results = sweep.run(1);

  std::ostringstream os;
  results.write_csv(os);
  const std::string csv = os.str();
  std::istringstream lines(csv);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
    const std::string col =
        std::string(",cpi_") + cycle_bucket_name(static_cast<CycleBucket>(b));
    EXPECT_NE(header.find(col), std::string::npos) << col;
  }
  // Data rows have the full arity: 14 base fields + one per bucket.
  std::string row;
  ASSERT_TRUE(std::getline(lines, row));
  const std::size_t commas = std::count(row.begin(), row.end(), ',');
  EXPECT_EQ(commas, 13u + kNumCycleBuckets);

  // The JSON export carries the raw stack and it closes there too.
  std::ostringstream js;
  results.write_json(js);
  const testing::JsonValue doc = testing::JsonParser::parse(js.str());
  ASSERT_EQ(doc.array.size(), 2u);
  for (const testing::JsonValue& rec : doc.array) {
    const testing::JsonValue& stack = rec.at("result").at("cpi_stack");
    double sum = 0.0;
    for (const auto& [name, v] : stack.object) sum += v.number;
    EXPECT_DOUBLE_EQ(sum, rec.at("result").at("cycles").number);
  }
}

}  // namespace
}  // namespace virec::sim
