// Store queue unit tests.
#include <gtest/gtest.h>

#include "cpu/store_queue.hpp"
#include "mem/memory_system.hpp"

namespace virec::cpu {
namespace {

class StoreQueueTest : public ::testing::Test {
 protected:
  StoreQueueTest() : ms(mem::MemSystemConfig{}), sq(3, ms.dcache(0)) {}
  mem::MemorySystem ms;
  StoreQueue sq;
};

TEST_F(StoreQueueTest, AcceptsUpToCapacity) {
  // Cold stores miss to DRAM: they stay in flight for a long time.
  EXPECT_TRUE(sq.push(0x1000, 0));
  EXPECT_TRUE(sq.push(0x2000, 0));
  EXPECT_TRUE(sq.push(0x3000, 0));
  EXPECT_EQ(sq.occupancy(0), 3u);
  EXPECT_FALSE(sq.push(0x4000, 0));  // full
}

TEST_F(StoreQueueTest, SlotsFreeAtCompletion) {
  sq.push(0x1000, 0);
  sq.push(0x2000, 0);
  sq.push(0x3000, 0);
  const Cycle done = sq.last_completion();
  EXPECT_GT(done, 0u);
  EXPECT_TRUE(sq.push(0x4000, done + 1));
  EXPECT_LT(sq.occupancy(done + 1), 3u);
}

TEST_F(StoreQueueTest, HitsRetireQuickly) {
  // Warm the line, then a store to it completes in the hit latency.
  const Cycle warm = ms.dcache(0).access(0x5000, false, 0).done;
  ASSERT_TRUE(sq.push(0x5000, warm + 1));
  EXPECT_LE(sq.last_completion(),
            warm + 1 + ms.config().dcache.hit_latency + 1);
}

TEST_F(StoreQueueTest, EmptyReportsCorrectly) {
  EXPECT_TRUE(sq.empty(0));
  sq.push(0x1000, 0);
  EXPECT_FALSE(sq.empty(1));
  EXPECT_TRUE(sq.empty(sq.last_completion()));
}

TEST_F(StoreQueueTest, ReusesFreedSlotsWithoutGrowth) {
  Cycle now = 0;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(sq.push(0x6000 + i * 8, now));
    now = sq.last_completion() + 1;
  }
  EXPECT_EQ(sq.occupancy(now), 0u);
}

TEST_F(StoreQueueTest, RegisterRegionStoresDriveUnpinning) {
  // A register-region read pins the line; a register-region store
  // through the SQ unpins it.
  const Addr reg_addr = ms.reg_addr(0, 0, 0);
  const Cycle warm =
      ms.dcache(0).access(reg_addr, false, 0, /*reg_region=*/true).done;
  ASSERT_EQ(ms.dcache(0).pinned_lines(), 1u);
  ASSERT_TRUE(sq.push(reg_addr, warm + 1, /*reg_region=*/true));
  EXPECT_EQ(ms.dcache(0).pinned_lines(), 0u);
}

}  // namespace
}  // namespace virec::cpu
