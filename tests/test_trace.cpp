// Pipeline tracer tests.
#include <gtest/gtest.h>

#include <sstream>

#include "cpu/banked_manager.hpp"
#include "cpu/cgmt_core.hpp"
#include "kasm/assembler.hpp"

namespace virec::cpu {
namespace {

struct Rig {
  explicit Rig(const std::string& source, u32 threads = 1)
      : program(kasm::assemble(source)),
        ms(mem::MemSystemConfig{}),
        env{.core_id = 0, .num_threads = threads, .ms = &ms},
        manager(env),
        core(make_config(threads), env, manager, program) {}

  static CgmtCoreConfig make_config(u32 threads) {
    CgmtCoreConfig config;
    config.num_threads = threads;
    return config;
  }

  kasm::Program program;
  mem::MemorySystem ms;
  CoreEnv env;
  BankedManager manager;
  CgmtCore core;
};

TEST(CountingTracer, CountsCommitsAndHalts) {
  Rig rig(R"(
    mov x0, #3
    loop:
      sub x0, x0, #1
      cbnz x0, loop
    halt
  )");
  CountingTracer tracer;
  rig.core.set_tracer(&tracer);
  rig.core.start_thread(0);
  rig.core.run();
  EXPECT_EQ(tracer.commits, rig.core.instructions());
  EXPECT_EQ(tracer.halts, 1u);
  EXPECT_GE(tracer.fetches, tracer.commits);  // wrong path fetches extra
}

TEST(CountingTracer, SeesDataMissesAndSwitches) {
  Rig rig(R"(
    loop:
      ldr x1, [x0], #4224
      sub x2, x2, #1
      cbnz x2, loop
    halt
  )", 2);
  for (u32 t = 0; t < 2; ++t) {
    rig.ms.memory().write_u64(rig.ms.reg_addr(0, t, 0),
                              0x100000 + t * 0x400000);
    rig.ms.memory().write_u64(rig.ms.reg_addr(0, t, 2), 16);
    rig.core.start_thread(static_cast<int>(t));
  }
  CountingTracer tracer;
  rig.core.set_tracer(&tracer);
  rig.core.run();
  EXPECT_GT(tracer.data_misses, 10u);
  EXPECT_GT(tracer.switches, 5u);
  EXPECT_EQ(tracer.halts, 2u);
}

TEST(CountingTracer, CountsMispredicts) {
  Rig rig(R"(
    mov x0, #0
    cbz x0, far
    mov x1, #1
    far: halt
  )");
  CountingTracer tracer;
  rig.core.set_tracer(&tracer);
  rig.core.start_thread(0);
  rig.core.run();
  EXPECT_EQ(tracer.mispredicts, 1u);
}

TEST(TextTracer, RendersReadableLines) {
  Rig rig(R"(
    mov x0, #2
    loop:
      sub x0, x0, #1
      cbnz x0, loop
    halt
  )");
  std::ostringstream os;
  TextTracer tracer(os);
  rig.core.set_tracer(&tracer);
  rig.core.start_thread(0);
  rig.core.run();
  const std::string log = os.str();
  EXPECT_NE(log.find("commit @0\tmov x0, #2"), std::string::npos);
  EXPECT_NE(log.find("cbnz x0, @1"), std::string::npos);
  EXPECT_NE(log.find("halt"), std::string::npos);
  EXPECT_EQ(log.find("fetch"), std::string::npos);  // off by default
}

TEST(TextTracer, FetchTracingOptIn) {
  Rig rig("halt\n");
  std::ostringstream os;
  TextTracer tracer(os);
  tracer.set_trace_fetch(true);
  rig.core.set_tracer(&tracer);
  rig.core.start_thread(0);
  rig.core.run();
  EXPECT_NE(os.str().find("fetch"), std::string::npos);
}

TEST(Tracer, DetachingStopsEvents) {
  Rig rig(R"(
    mov x0, #2
    loop:
      sub x0, x0, #1
      cbnz x0, loop
    halt
  )");
  CountingTracer tracer;
  rig.core.set_tracer(&tracer);
  rig.core.start_thread(0);
  rig.core.step();
  rig.core.set_tracer(nullptr);
  rig.core.run();
  EXPECT_LT(tracer.commits, rig.core.instructions());
}

}  // namespace
}  // namespace virec::cpu
