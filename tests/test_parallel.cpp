// Parallel experiment engine tests: result ordering, serial fallback,
// exception propagation (without deadlock) and the generic task entry
// point.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "sim/parallel.hpp"

namespace virec::sim {
namespace {

RunSpec tiny_spec(u32 threads) {
  RunSpec spec;
  spec.workload = "reduce";
  spec.threads_per_core = threads;
  spec.params.iters_per_thread = 32;
  spec.params.elements = 1 << 12;
  return spec;
}

TEST(Parallel, DefaultJobsIsAtLeastOne) { EXPECT_GE(default_jobs(), 1u); }

TEST(Parallel, ResultsFollowSubmissionOrder) {
  // Thread counts give each point a distinguishable cycle count, so a
  // mis-ordered result vector is detectable.
  const std::vector<u32> threads = {1, 2, 4, 8, 3, 6};
  std::vector<RunSpec> specs;
  for (u32 t : threads) specs.push_back(tiny_spec(t));

  const std::vector<RunResult> serial = run_specs(specs, 1);
  const std::vector<RunResult> parallel = run_specs(specs, 4);
  ASSERT_EQ(serial.size(), specs.size());
  ASSERT_EQ(parallel.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(serial[i].cycles, run_spec(specs[i]).cycles) << i;
    EXPECT_EQ(parallel[i].cycles, serial[i].cycles) << i;
    EXPECT_EQ(parallel[i].instructions, serial[i].instructions) << i;
  }
}

TEST(Parallel, SubmitReturnsIncreasingIndices) {
  ParallelExecutor pool(2);
  EXPECT_EQ(pool.submit(tiny_spec(2)), 0u);
  EXPECT_EQ(pool.submit(tiny_spec(4)), 1u);
  const std::vector<RunResult> results = pool.join();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].check_ok);
  EXPECT_TRUE(results[1].check_ok);
}

TEST(Parallel, JobsZeroMeansHardwareConcurrency) {
  ParallelExecutor pool(0);
  EXPECT_EQ(pool.jobs(), default_jobs());
}

TEST(Parallel, EmptySubmissionJoinsCleanly) {
  ParallelExecutor pool(4);
  EXPECT_TRUE(pool.join().empty());
}

TEST(Parallel, BadWorkloadThrowsOutOfPool) {
  std::vector<RunSpec> specs = {tiny_spec(2), tiny_spec(4)};
  specs[1].workload = "no-such-kernel";
  specs.push_back(tiny_spec(8));
  // Must rethrow on join, not deadlock with tasks still queued. The
  // rethrown exception carries the spec label of the failing point.
  EXPECT_THROW(run_specs(specs, 4), std::runtime_error);
  try {
    run_specs(specs, 1);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("workload=no-such-kernel"), std::string::npos) << what;
    EXPECT_NE(what.find("scheme="), std::string::npos) << what;
    EXPECT_NE(what.find("threads=4"), std::string::npos) << what;
  }
}

TEST(Parallel, SerialFailureSkipsLaterWork) {
  // With jobs = 1 execution is strictly ordered, so the first failing
  // spec must be the one reported and later specs never run.
  std::vector<RunSpec> specs = {tiny_spec(2), tiny_spec(4), tiny_spec(8)};
  specs[1].workload = "first-bad";
  specs[2].workload = "second-bad";
  try {
    run_specs(specs, 1);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("first-bad"), std::string::npos)
        << e.what();
    EXPECT_EQ(std::string(e.what()).find("second-bad"), std::string::npos)
        << e.what();
  }
}

TEST(Parallel, SpecLabelNamesEveryAxis) {
  RunSpec spec = tiny_spec(4);
  spec.scheme = Scheme::kViReC;
  spec.policy = core::PolicyKind::kLRC;
  spec.num_cores = 2;
  const std::string label = spec_label(spec);
  EXPECT_NE(label.find("workload=reduce"), std::string::npos) << label;
  EXPECT_NE(label.find("scheme=virec"), std::string::npos) << label;
  EXPECT_NE(label.find("policy=lrc"), std::string::npos) << label;
  EXPECT_NE(label.find("cores=2"), std::string::npos) << label;
  EXPECT_NE(label.find("threads=4"), std::string::npos) << label;
}

TEST(Parallel, UnlabelledTaskExceptionIsNotWrapped) {
  // submit_task without a label must rethrow the original type — the
  // wrapping is opt-in via the label so callers keep exact exceptions.
  ParallelExecutor pool(1);
  pool.submit_task([]() -> RunResult {
    throw std::out_of_range("untouched");
  });
  EXPECT_THROW(pool.join(), std::out_of_range);
}

TEST(Parallel, RunTasksCoversNonSpecPoints) {
  std::vector<std::function<RunResult()>> tasks;
  for (u32 t : {2u, 4u}) {
    tasks.emplace_back([t] { return run_spec(tiny_spec(t)); });
  }
  const std::vector<RunResult> results = run_tasks(std::move(tasks), 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].cycles, run_spec(tiny_spec(2)).cycles);
  EXPECT_EQ(results[1].cycles, run_spec(tiny_spec(4)).cycles);
}

}  // namespace
}  // namespace virec::sim
