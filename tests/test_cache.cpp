// Cache model tests: hits/misses, LRU, MSHR coalescing and limits,
// write-back, ViReC register-line pinning and bypass behaviour.
#include <gtest/gtest.h>

#include "mem/cache.hpp"

namespace virec::mem {
namespace {

/// Fixed-latency backing level that records accesses.
class FakeBacking final : public MemLevel {
 public:
  explicit FakeBacking(u32 latency) : latency_(latency) {}
  Cycle line_access(Addr line_addr, bool is_write, Cycle now) override {
    ++accesses;
    if (is_write) ++writes;
    last_addr = line_addr;
    return now + latency_;
  }
  u32 accesses = 0;
  u32 writes = 0;
  Addr last_addr = 0;

 private:
  u32 latency_;
};

CacheConfig small_config() {
  CacheConfig config;
  config.name = "test";
  config.size_bytes = 1024;  // 4 sets x 4 ways
  config.assoc = 4;
  config.hit_latency = 2;
  config.mshrs = 4;
  return config;
}

class CacheTest : public ::testing::Test {
 protected:
  CacheTest() : backing(100), cache(small_config(), backing) {}
  FakeBacking backing;
  Cache cache;
};

TEST_F(CacheTest, ColdMissGoesToBacking) {
  const CacheAccess acc = cache.access(0x1000, false, 0);
  EXPECT_FALSE(acc.hit);
  EXPECT_EQ(backing.accesses, 1u);
  EXPECT_GE(acc.done, 100u);
}

TEST_F(CacheTest, SecondAccessHits) {
  const CacheAccess miss = cache.access(0x1000, false, 0);
  const CacheAccess hit = cache.access(0x1008, false, miss.done);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.done, miss.done + 2);
  EXPECT_EQ(backing.accesses, 1u);
}

TEST_F(CacheTest, HitUnderMissCoalesces) {
  const CacheAccess miss = cache.access(0x1000, false, 0);
  // Access the same line while the fill is in flight.
  const CacheAccess coalesced = cache.access(0x1010, false, 5);
  EXPECT_FALSE(coalesced.hit);
  EXPECT_EQ(coalesced.done, miss.done);
  EXPECT_EQ(backing.accesses, 1u);
  EXPECT_EQ(cache.stats().get("coalesced_misses"), 1.0);
}

TEST_F(CacheTest, EvictsLruWay) {
  // 4-way set: fill 4 lines mapping to set 0, touch the first again,
  // then insert a 5th: the least-recently-touched should go.
  const u32 set_stride = cache.num_sets() * kLineBytes;
  Cycle t = 0;
  for (u32 i = 0; i < 4; ++i) {
    t = cache.access(i * set_stride, false, t).done + 1;
  }
  t = cache.access(0, false, t).done + 1;  // refresh line 0
  ASSERT_TRUE(cache.probe(1 * set_stride));
  t = cache.access(4 * set_stride, false, t).done + 1;  // evict
  EXPECT_TRUE(cache.probe(0));
  EXPECT_FALSE(cache.probe(1 * set_stride));  // line 1 was LRU
}

TEST_F(CacheTest, DirtyEvictionWritesBack) {
  const u32 set_stride = cache.num_sets() * kLineBytes;
  Cycle t = cache.access(0, true, 0).done + 1;  // dirty line in set 0
  for (u32 i = 1; i <= 4; ++i) {
    t = cache.access(i * set_stride, false, t).done + 1;
  }
  EXPECT_FALSE(cache.probe(0));
  EXPECT_GE(backing.writes, 1u);
  EXPECT_GE(cache.stats().get("writebacks"), 1.0);
}

TEST_F(CacheTest, MshrLimitStallsFifthMiss) {
  // 4 MSHRs: 5 concurrent misses to distinct sets; the 5th waits.
  Cycle done4 = 0;
  for (u32 i = 0; i < 4; ++i) {
    done4 = std::max(done4, cache.access(i * kLineBytes, false, 0).done);
  }
  const CacheAccess fifth =
      cache.access(4 * kLineBytes * 16, false, 4);  // while all busy
  EXPECT_TRUE(fifth.mshr_stall);
  EXPECT_GT(fifth.done, done4);
  EXPECT_GT(cache.stats().get("mshr_stall_cycles"), 0.0);
}

TEST_F(CacheTest, PortSerialisesAccesses) {
  cache.access(0x0, false, 0);
  cache.access(0x40, false, 0);  // same cycle: port busy
  EXPECT_GT(cache.stats().get("port_wait_cycles"), 0.0);
}

TEST_F(CacheTest, RegisterReadPinsLine) {
  const CacheAccess fill = cache.access(0x2000, false, 0, /*reg_region=*/true);
  EXPECT_EQ(cache.pinned_lines(), 1u);
  // A register write (spill) unpins.
  cache.access(0x2000, true, fill.done + 1, /*reg_region=*/true);
  EXPECT_EQ(cache.pinned_lines(), 0u);
}

TEST_F(CacheTest, PinCounterSaturatesAtSeven) {
  Cycle t = 0;
  for (int i = 0; i < 20; ++i) {
    t = cache.access(0x2000, false, t, true).done + 1;
  }
  EXPECT_EQ(cache.pinned_lines(), 1u);
  // 7 writes bring the saturated counter back to zero.
  for (int i = 0; i < 7; ++i) {
    t = cache.access(0x2000, true, t, true).done + 1;
  }
  EXPECT_EQ(cache.pinned_lines(), 0u);
}

TEST_F(CacheTest, PinnedLinesAreNotEvicted) {
  const u32 set_stride = cache.num_sets() * kLineBytes;
  Cycle t = cache.access(0, false, 0, /*reg_region=*/true).done + 1;
  ASSERT_EQ(cache.pinned_lines(), 1u);
  for (u32 i = 1; i <= 8; ++i) {
    t = cache.access(i * set_stride, false, t).done + 1;
  }
  EXPECT_TRUE(cache.probe(0));  // survived heavy set pressure
}

TEST_F(CacheTest, AllWaysPinnedBypasses) {
  Cycle t = 0;
  const u32 set_stride = cache.num_sets() * kLineBytes;
  for (u32 i = 0; i < 4; ++i) {
    t = cache.access(i * set_stride, false, t, /*reg_region=*/true).done + 1;
  }
  ASSERT_EQ(cache.pinned_lines(), 4u);
  const u32 before = backing.accesses;
  const CacheAccess acc = cache.access(4 * set_stride, false, t);
  EXPECT_FALSE(acc.hit);
  EXPECT_EQ(backing.accesses, before + 1);
  EXPECT_EQ(cache.stats().get("bypasses"), 1.0);
  // Bypassed line was not allocated.
  EXPECT_FALSE(cache.probe(4 * set_stride));
}

TEST_F(CacheTest, MidFillLinesAreNotEvicted) {
  CacheConfig config = small_config();
  config.mshrs = 8;  // plenty, so the 5th miss issues while fills pend
  Cache c(config, backing);
  const u32 set_stride = c.num_sets() * kLineBytes;
  // Start 4 fills into set 0 at t=0 (all pending until ~100).
  for (u32 i = 0; i < 4; ++i) {
    c.access(i * set_stride, false, 0);
  }
  // A 5th miss while all four are mid-fill must bypass, not evict.
  const CacheAccess acc = c.access(4 * set_stride, false, 10);
  EXPECT_FALSE(acc.hit);
  EXPECT_GE(c.stats().get("bypasses"), 1.0);
}

TEST_F(CacheTest, LineInsertedAtFillResponseTime) {
  // A line filled for a blocked thread must look *recently used* at its
  // arrival time, so it is not immediately LRU when the thread resumes.
  const u32 set_stride = cache.num_sets() * kLineBytes;
  const CacheAccess first = cache.access(0, false, 0);
  Cycle t = first.done + 1;
  // Touch three other ways AFTER the fill arrived.
  for (u32 i = 1; i < 4; ++i) {
    t = cache.access(i * set_stride, false, t).done + 1;
  }
  // Line 0 must still be resident: its LRU stamp is its *arrival* time
  // (close to the other lines'), not its issue time (cycle 0, which
  // would make it trivially the eviction victim).
  EXPECT_TRUE(cache.probe(0));
}

TEST_F(CacheTest, WriteMissAllocatesDirtyLine) {
  const CacheAccess acc = cache.access(0x3000, true, 0);
  EXPECT_FALSE(acc.hit);
  const u32 set_stride = cache.num_sets() * kLineBytes;
  Cycle t = acc.done + 1;
  for (u32 i = 1; i <= 4; ++i) {
    t = cache.access(0x3000 + i * set_stride, false, t).done + 1;
  }
  EXPECT_GE(backing.writes, 1u);  // the allocated dirty line wrote back
}

TEST_F(CacheTest, ResetRestoresColdState) {
  cache.access(0x1000, false, 0);
  cache.reset();
  EXPECT_FALSE(cache.probe(0x1000));
  EXPECT_EQ(cache.stats().get("misses"), 0.0);
}

TEST(CachePrefetch, StridePrefetcherFillsAhead) {
  FakeBacking backing(50);
  CacheConfig config = small_config();
  config.size_bytes = 8 * 1024;
  config.stride_prefetch = true;
  config.prefetch_degree = 4;
  Cache cache(config, backing);
  // Two misses with the same line stride train the prefetcher; the
  // third access should find its line prefetched (pending or present).
  Cycle t = cache.access(0x0, false, 0).done;
  t = cache.access(0x40, false, t).done;
  t = cache.access(0x80, false, t).done;
  EXPECT_GT(cache.stats().get("prefetches"), 0.0);
  const Cycle before = t + 200;
  const CacheAccess acc = cache.access(0xc0, false, before);
  EXPECT_TRUE(acc.hit);
}

TEST(CacheConfigValidation, RejectsNonPow2Sets) {
  FakeBacking backing(10);
  CacheConfig config;
  config.size_bytes = 24 * 64;  // 24 lines / 4 ways = 6 sets
  config.assoc = 4;
  EXPECT_THROW(Cache(config, backing), std::invalid_argument);
}

TEST(CacheArbiter, RegisterRequestsYieldToProgram) {
  FakeBacking backing(10);
  Cache cache(small_config(), backing);
  // Warm two lines.
  Cycle t = cache.access(0x100, false, 0).done;
  t = cache.access(0x2000, false, t, true).done;
  const Cycle now = t + 10;
  // Program access and register access the same cycle: program gets the
  // port immediately, register access waits.
  const CacheAccess prog = cache.access(0x100, false, now);
  const CacheAccess reg = cache.access(0x2000, false, now, true);
  EXPECT_TRUE(prog.hit);
  EXPECT_TRUE(reg.hit);
  EXPECT_GT(reg.done, prog.done);
}

}  // namespace
}  // namespace virec::mem
