// Minimal recursive-descent JSON parser for test assertions only.
// Parses a complete document into a small DOM (null/bool/number/
// string/array/object) and rejects trailing garbage, so the tests can
// both golden-parse the --json report and assert that the Perfetto
// trace file is well-formed. Deliberately not a library: no escapes
// beyond the JSON-standard set, numbers via strtod, no streaming.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace virec::testing {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  // map keeps tests order-independent; duplicate keys are rejected.
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  bool has(const std::string& key) const {
    return is_object() && object.count(key) > 0;
  }
  const JsonValue& at(const std::string& key) const {
    if (!has(key)) throw std::runtime_error("missing key: " + key);
    return object.at(key);
  }
};

class JsonParser {
 public:
  /// Parse a full document; throws std::runtime_error on any syntax
  /// error, including trailing non-whitespace.
  static JsonValue parse(const std::string& text) {
    JsonParser p(text);
    JsonValue v = p.parse_value();
    p.skip_ws();
    if (p.pos_ != text.size()) p.fail("trailing garbage");
    return v;
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json error at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      if (!v.object.emplace(std::move(key), parse_value()).second) {
        fail("duplicate key");
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            // Tests only need ASCII round-trips; decode the code unit
            // and keep the low byte.
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number " + token);
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = d;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace virec::testing
