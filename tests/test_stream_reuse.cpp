// Shared functional stream tests: the headline contract (sampled
// estimates are bit-identical with stream reuse on vs off, for every
// scheme x policy), the sweep economics (one golden build per
// functional identity, however many points share it), the disk
// persistence path (round-trip, corruption degrades to a rebuild) and
// the stream codec itself.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/spec_codec.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "tiered/func_stream.hpp"
#include "tiered/tiered_runner.hpp"

namespace virec::sim {
namespace {

namespace fs = std::filesystem;

struct SchemePoint {
  Scheme scheme;
  core::PolicyKind policy;
};

// All six schemes; the ViReC-family entries carry representative
// replacement policies (the others ignore the field).
const std::vector<SchemePoint>& scheme_grid() {
  static const std::vector<SchemePoint> grid = {
      {Scheme::kBanked, core::PolicyKind::kLRC},
      {Scheme::kSoftware, core::PolicyKind::kLRC},
      {Scheme::kPrefetchFull, core::PolicyKind::kLRC},
      {Scheme::kPrefetchExact, core::PolicyKind::kLRC},
      {Scheme::kViReC, core::PolicyKind::kLRC},
      {Scheme::kViReC, core::PolicyKind::kPLRU},
      {Scheme::kViReC, core::PolicyKind::kLRU},
      {Scheme::kNSF, core::PolicyKind::kPLRU},
  };
  return grid;
}

RunSpec sampled_spec(const std::string& workload, Scheme scheme,
                     core::PolicyKind policy) {
  RunSpec spec;
  spec.workload = workload;
  spec.scheme = scheme;
  spec.policy = policy;
  spec.threads_per_core = 4;
  spec.params.iters_per_thread = 256;
  spec.params.elements = 1 << 12;
  spec.sample_windows = 5;
  spec.window_insts = 200;
  spec.warmup_insts = 100;
  return spec;
}

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("stream_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Bit-exact double comparison: "close" is not good enough for the
/// reuse-equivalence contract.
void expect_bits_eq(double a, double b, const char* what) {
  u64 ab, bb;
  std::memcpy(&ab, &a, sizeof ab);
  std::memcpy(&bb, &b, sizeof bb);
  EXPECT_EQ(ab, bb) << what << ": " << a << " vs " << b;
}

void expect_tiered_identical(const TieredResult& a, const TieredResult& b) {
  EXPECT_EQ(a.total_insts, b.total_insts);
  EXPECT_EQ(a.insts_functional, b.insts_functional);
  EXPECT_EQ(a.insts_detailed, b.insts_detailed);
  expect_bits_eq(a.cpi_mean, b.cpi_mean, "cpi_mean");
  expect_bits_eq(a.cpi_ci_half, b.cpi_ci_half, "cpi_ci_half");
  expect_bits_eq(a.est_cycles, b.est_cycles, "est_cycles");
  expect_bits_eq(a.est_ipc, b.est_ipc, "est_ipc");
  expect_bits_eq(a.est_ipc_lo, b.est_ipc_lo, "est_ipc_lo");
  expect_bits_eq(a.est_ipc_hi, b.est_ipc_hi, "est_ipc_hi");
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].start_inst, b.windows[i].start_inst) << i;
    EXPECT_EQ(a.windows[i].insts, b.windows[i].insts) << i;
    EXPECT_EQ(a.windows[i].cycles, b.windows[i].cycles) << i;
    expect_bits_eq(a.windows[i].cpi, b.windows[i].cpi, "window cpi");
    for (std::size_t s = 0; s < kNumCycleBuckets; ++s) {
      expect_bits_eq(a.windows[i].cpi_stack[s], b.windows[i].cpi_stack[s],
                     "window cpi_stack");
    }
  }
  EXPECT_EQ(a.full.cycles, b.full.cycles);
  EXPECT_EQ(a.full.instructions, b.full.instructions);
  EXPECT_EQ(a.full.context_switches, b.full.context_switches);
  expect_bits_eq(a.full.rf_hit_rate, b.full.rf_hit_rate, "rf_hit_rate");
  EXPECT_EQ(a.full.rf_fills, b.full.rf_fills);
  EXPECT_EQ(a.full.rf_spills, b.full.rf_spills);
}

// ---------------------------------------------------------------------
// Headline contract: reuse is a pure sharing optimization. A reused
// (keyed) stream and a private (key 0) stream drive bit-identical
// sampled runs for every scheme x policy.

TEST(StreamReuse, BitIdenticalOnVsOffAllSchemes) {
  for (const SchemePoint& p : scheme_grid()) {
    SCOPED_TRACE(std::string(scheme_name(p.scheme)) + "/" +
                 core::policy_name(p.policy));
    RunSpec spec = sampled_spec("gather", p.scheme, p.policy);
    spec.stream_reuse = true;
    const TieredResult shared = run_spec_tiered(spec);
    spec.stream_reuse = false;
    const TieredResult priv = run_spec_tiered(spec);
    expect_tiered_identical(shared, priv);
  }
}

// ---------------------------------------------------------------------
// Sweep economics: every point of a scheme x policy grid shares one
// functional identity (scheme and policy are switch-mechanism knobs,
// not functional ones), so an N-point sweep pays exactly one golden
// build — including under parallel --jobs, where concurrent acquirers
// of the in-flight key must block rather than build twice.

TEST(StreamReuse, PolicySweepBuildsStreamOnce) {
  StreamCache::instance().reset_for_test();
  Sweep sweep;
  sweep.base() = sampled_spec("gather", Scheme::kViReC, core::PolicyKind::kLRC);
  sweep.over_schemes({Scheme::kBanked, Scheme::kViReC, Scheme::kNSF})
      .over_policies({core::PolicyKind::kLRC, core::PolicyKind::kLRU,
                      core::PolicyKind::kPLRU, core::PolicyKind::kFIFO});
  const SweepResults results = sweep.run(/*jobs=*/2);
  ASSERT_EQ(results.size(), 12u);
  const StreamCache::Stats stats = StreamCache::instance().stats();
  EXPECT_EQ(stats.built, 1u) << "functional tier must run once per identity";
  EXPECT_EQ(stats.loaded, 0u);
  EXPECT_EQ(stats.mem_hits, 11u);
}

TEST(StreamReuse, DistinctIdentitiesBuildSeparately) {
  StreamCache::instance().reset_for_test();
  Sweep sweep;
  sweep.base() = sampled_spec("gather", Scheme::kViReC, core::PolicyKind::kLRC);
  sweep.over_threads({2, 4});  // thread count is part of the identity
  const SweepResults results = sweep.run(/*jobs=*/1);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NE(results.records()[0].result.cycles,
            results.records()[1].result.cycles);
  const StreamCache::Stats stats = StreamCache::instance().stats();
  EXPECT_EQ(stats.built, 2u);
  EXPECT_EQ(stats.mem_hits, 0u);
}

// ---------------------------------------------------------------------
// Disk persistence: a stream store lets a later process skip the build
// too, and the loaded stream reproduces the estimates bit for bit.
// Corrupt or truncated files degrade to a rebuild, never an error.

TEST(StreamReuse, DiskStoreRoundTripAndCorruption) {
  const fs::path dir = scratch_dir("store");
  RunSpec spec = sampled_spec("gather", Scheme::kViReC, core::PolicyKind::kLRC);
  spec.stream_dir = dir.string();

  StreamCache::instance().reset_for_test();
  const TieredResult first = run_spec_tiered(spec);
  EXPECT_EQ(StreamCache::instance().stats().built, 1u);

  char name[32];
  std::snprintf(name, sizeof name, "%016llx.vfs",
                static_cast<unsigned long long>(
                    ckpt::functional_stream_hash(spec)));
  const fs::path file = dir / name;
  ASSERT_TRUE(fs::exists(file)) << file;

  // Fresh process simulated by resetting the in-memory cache: the
  // stream comes off disk, nothing is rebuilt, estimates are identical.
  StreamCache::instance().reset_for_test();
  const TieredResult reloaded = run_spec_tiered(spec);
  const StreamCache::Stats after_load = StreamCache::instance().stats();
  EXPECT_EQ(after_load.built, 0u);
  EXPECT_EQ(after_load.loaded, 1u);
  expect_tiered_identical(first, reloaded);

  // Flip one record byte: the CRC rejects the file and the build runs
  // again, transparently.
  {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f);
    f.seekp(-16, std::ios::end);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-16, std::ios::end);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  StreamCache::instance().reset_for_test();
  const TieredResult rebuilt = run_spec_tiered(spec);
  const StreamCache::Stats after_corrupt = StreamCache::instance().stats();
  EXPECT_EQ(after_corrupt.built, 1u);
  EXPECT_EQ(after_corrupt.loaded, 0u);
  expect_tiered_identical(first, rebuilt);

  StreamCache::instance().reset_for_test();
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Stream codec: save/load round-trips every field; identity and
// truncation are both rejected (as nullptr, not exceptions).

TEST(StreamReuse, CodecRoundTrip) {
  RunSpec spec = sampled_spec("stride", Scheme::kViReC, core::PolicyKind::kLRC);
  System system(build_config(spec), workloads::find_workload(spec.workload),
                spec.params);
  const auto stream = build_func_stream(system, /*identity=*/0x1234);
  ASSERT_NE(stream, nullptr);
  EXPECT_GT(stream->n_total, 0u);
  EXPECT_FALSE(stream->records.empty());

  const fs::path dir = scratch_dir("codec");
  const std::string path = (dir / "s.vfs").string();
  ASSERT_TRUE(save_func_stream(path, *stream));

  const auto back = load_func_stream(path, 0x1234);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->identity, stream->identity);
  EXPECT_EQ(back->num_threads, stream->num_threads);
  EXPECT_EQ(back->start_tid, stream->start_tid);
  EXPECT_EQ(back->n_total, stream->n_total);
  EXPECT_EQ(back->records, stream->records);

  // Wrong identity: the file is valid but not the stream we want.
  EXPECT_EQ(load_func_stream(path, 0x9999), nullptr);

  // Truncation: drop the CRC trailer.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(),
            static_cast<std::streamsize>(bytes.size() - 6));
  out.close();
  EXPECT_EQ(load_func_stream(path, 0x1234), nullptr);

  EXPECT_EQ(load_func_stream((dir / "absent.vfs").string(), 0), nullptr);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Checkpoint interop: a snapshot taken mid-sampled-run embeds the
// stream, so a restore into a fresh process (empty StreamCache, no
// store) resumes without rebuilding and reproduces the estimates.

TEST(StreamReuse, CheckpointCarriesStream) {
  RunSpec spec = sampled_spec("gather", Scheme::kViReC, core::PolicyKind::kLRC);
  spec.params.iters_per_thread = 512;
  TieredConfig config;
  config.sample_windows = 6;
  config.window_insts = 250;
  config.warmup_insts = 100;
  config.stream_key = ckpt::functional_stream_hash(spec);
  const fs::path dir = scratch_dir("ckpt");
  const std::string path = (dir / "mid.vckpt").string();

  System sys_a(build_config(spec), workloads::find_workload(spec.workload),
               spec.params);
  TieredRunner runner_a(sys_a, config);
  runner_a.set_window_hook([&](u32 done) {
    if (done == 3) runner_a.save(path);
  });
  const TieredResult uninterrupted = runner_a.run();

  StreamCache::instance().reset_for_test();
  System sys_b(build_config(spec), workloads::find_workload(spec.workload),
               spec.params);
  TieredRunner runner_b(sys_b, config);
  runner_b.restore(path);
  const TieredResult resumed = runner_b.run();
  EXPECT_EQ(StreamCache::instance().stats().built, 0u)
      << "restore must not re-run the functional prepass";

  ASSERT_EQ(resumed.windows.size(), uninterrupted.windows.size());
  for (std::size_t i = 0; i < resumed.windows.size(); ++i) {
    EXPECT_EQ(resumed.windows[i].start_inst,
              uninterrupted.windows[i].start_inst);
    EXPECT_EQ(resumed.windows[i].cycles, uninterrupted.windows[i].cycles);
  }
  expect_bits_eq(resumed.est_ipc, uninterrupted.est_ipc, "est_ipc");
  StreamCache::instance().reset_for_test();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace virec::sim
