// Workload suite tests: every kernel must assemble, run to completion
// on the timing simulator and produce bit-exact results — under both a
// banked register file and a small ViReC register cache (which routes
// every value through fills/spills and the backing store).
#include <gtest/gtest.h>

#include "sim/runner.hpp"
#include "workloads/workload.hpp"

namespace virec::workloads {
namespace {

WorkloadParams tiny_params() {
  WorkloadParams params;
  params.iters_per_thread = 64;
  params.elements = 1 << 12;
  return params;
}

TEST(Registry, ContainsAllKernels) {
  EXPECT_EQ(workload_registry().size(), 13u);
  for (const char* name :
       {"gather", "gather_local", "scatter", "stride", "maebo", "pchase",
        "triad", "reduce", "copy", "stencil3", "hist", "spmv",
        "gather_wide"}) {
    EXPECT_NO_THROW(find_workload(name)) << name;
  }
}

TEST(Registry, FigureSubsetHasEight) {
  EXPECT_EQ(figure_workloads().size(), 8u);
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(find_workload("nope"), std::out_of_range);
}

TEST(Registry, NamesAndDescriptionsNonEmpty) {
  for (const Workload* w : workload_registry()) {
    EXPECT_FALSE(w->name().empty());
    EXPECT_FALSE(w->description().empty());
    EXPECT_GT(w->active_regs(), 0u);
    EXPECT_LE(w->active_regs(), 31u);
  }
}

TEST(Programs, AllValidateAndListing) {
  for (const Workload* w : workload_registry()) {
    const kasm::Program p = w->program(tiny_params());
    EXPECT_NO_THROW(p.validate()) << w->name();
    EXPECT_GT(p.size(), 0u);
    EXPECT_FALSE(p.listing().empty());
  }
}

struct RunCase {
  std::string workload;
  sim::Scheme scheme;
};

class WorkloadRunTest : public ::testing::TestWithParam<RunCase> {};

TEST_P(WorkloadRunTest, ProducesCorrectResults) {
  sim::RunSpec spec;
  spec.workload = GetParam().workload;
  spec.scheme = GetParam().scheme;
  spec.threads_per_core = 4;
  spec.context_fraction = 0.6;  // force register pressure under ViReC
  spec.params = tiny_params();
  const sim::RunResult result = sim::run_spec(spec);
  EXPECT_TRUE(result.check_ok) << result.check_msg;
  EXPECT_GT(result.instructions, 0u);
  EXPECT_GT(result.cycles, 0u);
}

std::vector<RunCase> all_cases() {
  std::vector<RunCase> cases;
  for (const Workload* w : workload_registry()) {
    cases.push_back({w->name(), sim::Scheme::kBanked});
    cases.push_back({w->name(), sim::Scheme::kViReC});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, WorkloadRunTest,
                         ::testing::ValuesIn(all_cases()),
                         [](const auto& info) {
                           return info.param.workload + "_" +
                                  sim::scheme_name(info.param.scheme);
                         });

TEST(GatherWide, RegisterReductionVariantsAgree) {
  // The wide (registers) and reduced (spilled) variants must compute
  // the same result; the reduced one executes extra loads.
  WorkloadParams wide = tiny_params();
  wide.max_regs = 31;
  WorkloadParams reduced = tiny_params();
  reduced.max_regs = 10;

  sim::RunSpec spec;
  spec.workload = "gather_wide";
  spec.scheme = sim::Scheme::kBanked;
  spec.threads_per_core = 2;
  spec.params = wide;
  const sim::RunResult a = sim::run_spec(spec);
  spec.params = reduced;
  const sim::RunResult b = sim::run_spec(spec);
  EXPECT_TRUE(a.check_ok);
  EXPECT_TRUE(b.check_ok);
  EXPECT_GT(b.instructions, a.instructions);  // explicit spill loads
}

TEST(GatherWide, ReductionOverheadIsSmall) {
  // Section 4.2: outer-loop spill instructions are a negligible
  // fraction of the dynamic instruction count.
  WorkloadParams wide = tiny_params();
  WorkloadParams reduced = tiny_params();
  reduced.max_regs = 10;
  sim::RunSpec spec;
  spec.workload = "gather_wide";
  spec.scheme = sim::Scheme::kBanked;
  spec.threads_per_core = 2;
  spec.params = wide;
  const u64 base = sim::run_spec(spec).instructions;
  spec.params = reduced;
  const u64 more = sim::run_spec(spec).instructions;
  EXPECT_LT(static_cast<double>(more - base) / static_cast<double>(base),
            0.15);
}

TEST(Maebo, ExtraComputeKnobAddsInstructions) {
  WorkloadParams lo = tiny_params();
  lo.extra_compute = 0;
  WorkloadParams hi = tiny_params();
  hi.extra_compute = 6;
  sim::RunSpec spec;
  spec.workload = "maebo";
  spec.scheme = sim::Scheme::kBanked;
  spec.threads_per_core = 2;
  spec.params = lo;
  const u64 a = sim::run_spec(spec).instructions;
  spec.params = hi;
  const u64 b = sim::run_spec(spec).instructions;
  EXPECT_GT(b, a);
}

TEST(Stride, LargerStrideIsSlower) {
  sim::RunSpec spec;
  spec.workload = "stride";
  spec.scheme = sim::Scheme::kBanked;
  spec.threads_per_core = 2;
  spec.params = tiny_params();
  spec.params.stride = 1;  // dense: 8 values per line
  const Cycle dense = sim::run_spec(spec).cycles;
  spec.params.stride = 8;  // one miss per element
  const Cycle sparse = sim::run_spec(spec).cycles;
  EXPECT_GT(sparse, dense);
}

TEST(GatherLocal, SmallerWindowIsFaster) {
  // Locality window controls the dcache hit rate and hence the context
  // switch frequency.
  sim::RunSpec spec;
  spec.workload = "gather_local";
  spec.scheme = sim::Scheme::kBanked;
  spec.threads_per_core = 4;
  spec.params = tiny_params();
  spec.params.iters_per_thread = 128;
  spec.params.locality_window = 64;  // fits comfortably in the dcache
  const Cycle local = sim::run_spec(spec).cycles;
  spec.params.locality_window = spec.params.elements;  // ~uniform random
  const Cycle uniform = sim::run_spec(spec).cycles;
  EXPECT_LT(local, uniform);
}

TEST(Pchase, SerialChainIsLatencyBound) {
  // Pointer chasing cannot overlap its own misses: cycles per iteration
  // must be on the order of the memory latency.
  sim::RunSpec spec;
  spec.workload = "pchase";
  spec.scheme = sim::Scheme::kBanked;
  spec.threads_per_core = 1;
  spec.params = tiny_params();
  const sim::RunResult r = sim::run_spec(spec);
  EXPECT_GT(static_cast<double>(r.cycles) /
                static_cast<double>(spec.params.iters_per_thread),
            20.0);
}

TEST(Workloads, DeterministicAcrossRuns) {
  for (const char* name : {"gather", "spmv"}) {
    sim::RunSpec spec;
    spec.workload = name;
    spec.scheme = sim::Scheme::kViReC;
    spec.threads_per_core = 4;
    spec.params = tiny_params();
    const sim::RunResult a = sim::run_spec(spec);
    const sim::RunResult b = sim::run_spec(spec);
    EXPECT_EQ(a.cycles, b.cycles) << name;
    EXPECT_EQ(a.instructions, b.instructions) << name;
    EXPECT_EQ(a.rf_fills, b.rf_fills) << name;
  }
}

}  // namespace
}  // namespace virec::workloads
