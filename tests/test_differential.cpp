// Differential testing: randomly generated programs are executed on
// three independent engines — the CGMT pipeline with a banked register
// file, the CGMT pipeline with a deliberately tiny ViReC register cache
// (every value crosses the fill/spill path many times), and the OoO
// dataflow core — and must produce identical architectural state.
//
// This catches whole classes of bugs no directed test would: register
// liveness races between decode-time fills and commit-time writes,
// replay-after-flush divergence, store-queue/memory ordering slips.
//
// The generator lives in src/check/progen.* (shared with virec-fuzz);
// with edge_ops off it reproduces the historical per-seed programs of
// this file's original local generator bit for bit.
#include <gtest/gtest.h>

#include <array>
#include <string>

#include "check/progen.hpp"
#include "core/virec_manager.hpp"
#include "cpu/banked_manager.hpp"
#include "cpu/cgmt_core.hpp"
#include "cpu/ooo_core.hpp"
#include "kasm/builder.hpp"

namespace virec {
namespace {

kasm::Program random_program(u64 seed, u32 body_len, u32 loop_iters,
                             bool edge_ops = false) {
  check::ProgenOptions opts;
  opts.body_len = body_len;
  opts.loop_iters = loop_iters;
  opts.edge_ops = edge_ops;
  return check::random_program(seed, opts);
}

struct ArchState {
  std::array<u64, isa::kNumAllocatableRegs> regs{};
  std::array<u64, check::kArenaWords> arena{};

  bool operator==(const ArchState&) const = default;
};

ArchState collect(isa::RegisterFileIO& rf, const mem::SparseMemory& memory) {
  ArchState state;
  for (u32 r = 0; r < isa::kNumAllocatableRegs; ++r) {
    state.regs[r] = rf.read_reg(0, static_cast<isa::RegId>(r));
  }
  for (u64 w = 0; w < check::kArenaWords; ++w) {
    state.arena[w] = memory.read_u64(check::kArenaBase + w * 8);
  }
  return state;
}

ArchState run_cgmt(const kasm::Program& program, bool use_virec,
                   core::PolicyKind policy, u32 phys_regs) {
  mem::MemSystemConfig mc;
  mem::MemorySystem ms(mc);
  check::seed_arena(ms.memory());
  cpu::CoreEnv env{.core_id = 0, .num_threads = 1, .ms = &ms};
  std::unique_ptr<cpu::ContextManager> manager;
  if (use_virec) {
    core::ViReCConfig vc;
    vc.num_phys_regs = phys_regs;
    vc.policy = policy;
    manager = std::make_unique<core::ViReCManager>(vc, env);
  } else {
    manager = std::make_unique<cpu::BankedManager>(env);
  }
  // Offloaded context: arena base register.
  ms.memory().write_u64(ms.reg_addr(0, 0, check::kArenaBaseReg),
                        check::kArenaBase);
  cpu::CgmtCoreConfig cc;
  cpu::CgmtCore core(cc, env, *manager, program);
  core.start_thread(0);
  core.run();
  return collect(*manager, ms.memory());
}

ArchState run_ooo(const kasm::Program& program) {
  mem::MemSystemConfig mc;
  mc.has_l2 = true;
  mem::MemorySystem ms(mc);
  check::seed_arena(ms.memory());
  cpu::OooCore core(cpu::OooCoreConfig{}, ms, 0, program);
  core.regfile().write_reg(0, check::kArenaBaseReg, check::kArenaBase);
  core.run();
  return collect(core.regfile(), ms.memory());
}

class DifferentialTest : public ::testing::TestWithParam<u64> {};

TEST_P(DifferentialTest, ThreeEnginesAgree) {
  const u64 seed = GetParam();
  const kasm::Program program = random_program(seed, 24, 40);
  const ArchState banked = run_cgmt(program, false, core::PolicyKind::kLRC, 0);
  const ArchState virec =
      run_cgmt(program, true, core::PolicyKind::kLRC, /*phys_regs=*/6);
  const ArchState ooo = run_ooo(program);
  EXPECT_EQ(banked.regs, virec.regs) << "seed " << seed;
  EXPECT_EQ(banked.arena, virec.arena) << "seed " << seed;
  EXPECT_EQ(banked.regs, ooo.regs) << "seed " << seed;
  EXPECT_EQ(banked.arena, ooo.arena) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<u64>(1, 21));

/// Same three-engine comparison over the extended generator: division
/// by 0/-1/INT64_MIN, register-amount shifts >= 64, movk lane inserts,
/// sub-word loads and stores.
class EdgeOpDifferentialTest : public ::testing::TestWithParam<u64> {};

TEST_P(EdgeOpDifferentialTest, ThreeEnginesAgree) {
  const u64 seed = GetParam();
  const kasm::Program program =
      random_program(seed, 32, 24, /*edge_ops=*/true);
  const ArchState banked = run_cgmt(program, false, core::PolicyKind::kLRC, 0);
  const ArchState virec =
      run_cgmt(program, true, core::PolicyKind::kLRC, /*phys_regs=*/5);
  const ArchState ooo = run_ooo(program);
  EXPECT_EQ(banked.regs, virec.regs) << "seed " << seed;
  EXPECT_EQ(banked.arena, virec.arena) << "seed " << seed;
  EXPECT_EQ(banked.regs, ooo.regs) << "seed " << seed;
  EXPECT_EQ(banked.arena, ooo.arena) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(EdgeSeeds, EdgeOpDifferentialTest,
                         ::testing::Range<u64>(100, 112));

class PolicyDifferentialTest
    : public ::testing::TestWithParam<core::PolicyKind> {};

TEST_P(PolicyDifferentialTest, EveryPolicyMatchesBanked) {
  const kasm::Program program = random_program(/*seed=*/99, 32, 32);
  const ArchState banked = run_cgmt(program, false, GetParam(), 0);
  const ArchState virec = run_cgmt(program, true, GetParam(), 5);
  EXPECT_EQ(banked.regs, virec.regs);
  EXPECT_EQ(banked.arena, virec.arena);
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicyDifferentialTest,
                         ::testing::ValuesIn(core::all_policies()),
                         [](const auto& info) {
                           std::string name = core::policy_name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(DifferentialStress, TinyRfLongProgram) {
  // 4 physical registers, long body: maximal fill/spill churn.
  const kasm::Program program = random_program(4242, 48, 64);
  const ArchState banked = run_cgmt(program, false, core::PolicyKind::kLRC, 0);
  const ArchState virec =
      run_cgmt(program, true, core::PolicyKind::kLRC, /*phys_regs=*/4);
  EXPECT_EQ(banked.regs, virec.regs);
  EXPECT_EQ(banked.arena, virec.arena);
}

}  // namespace
}  // namespace virec
