// Differential testing: randomly generated programs are executed on
// three independent engines — the CGMT pipeline with a banked register
// file, the CGMT pipeline with a deliberately tiny ViReC register cache
// (every value crosses the fill/spill path many times), and the OoO
// dataflow core — and must produce identical architectural state.
//
// This catches whole classes of bugs no directed test would: register
// liveness races between decode-time fills and commit-time writes,
// replay-after-flush divergence, store-queue/memory ordering slips.
#include <gtest/gtest.h>

#include <array>
#include <string>

#include "common/rng.hpp"
#include "core/virec_manager.hpp"
#include "cpu/banked_manager.hpp"
#include "cpu/cgmt_core.hpp"
#include "cpu/ooo_core.hpp"
#include "kasm/builder.hpp"

namespace virec {
namespace {

using kasm::ProgramBuilder;
using kasm::X;

constexpr Addr kArena = 0x4000'0000;
constexpr u64 kArenaWords = 128;
constexpr int kArenaBaseReg = 28;  // never overwritten by the generator
constexpr int kLoopReg = 27;       // only touched by the loop bookkeeping

/// Generate a random terminating program: a counted loop whose body is
/// a random mix of ALU ops, loads/stores into the arena and forward
/// conditional skips.
kasm::Program random_program(u64 seed, u32 body_len, u32 loop_iters) {
  Xorshift128 rng(seed);
  ProgramBuilder b;
  auto reg = [&] { return X(static_cast<int>(rng.next_below(12))); };
  auto arena_off = [&] {
    return static_cast<i64>(rng.next_below(kArenaWords) * 8);
  };

  // Seed registers with deterministic junk.
  for (int r = 0; r < 12; ++r) {
    b.mov_imm(X(r), static_cast<i64>(rng.next_below(1 << 20)));
  }
  b.mov_imm(X(kLoopReg), loop_iters);
  b.label("loop");
  u32 skip_id = 0;
  for (u32 i = 0; i < body_len; ++i) {
    switch (rng.next_below(10)) {
      case 0:
        b.add(reg(), reg(), reg());
        break;
      case 1:
        b.sub(reg(), reg(), reg());
        break;
      case 2:
        b.mul(reg(), reg(), reg());
        break;
      case 3:
        b.eor(reg(), reg(), reg());
        break;
      case 4:
        b.add_imm(reg(), reg(), static_cast<i64>(rng.next_below(1000)));
        break;
      case 5:
        b.madd(reg(), reg(), reg(), reg());
        break;
      case 6:
        b.ldr(reg(), X(kArenaBaseReg), arena_off());
        break;
      case 7:
        b.str(reg(), X(kArenaBaseReg), arena_off());
        break;
      case 8:
        b.lsr_imm(reg(), reg(), static_cast<i64>(rng.next_below(8)));
        break;
      case 9: {
        // Forward conditional skip over one instruction.
        const std::string label = "skip" + std::to_string(skip_id++);
        b.cmp_imm(reg(), static_cast<i64>(rng.next_below(512)));
        b.b_cond(rng.next_below(2) ? kasm::Cond::kLt : kasm::Cond::kGe,
                 label);
        b.orr_imm(reg(), reg(), 1);
        b.label(label);
        break;
      }
    }
  }
  b.sub_imm(X(kLoopReg), X(kLoopReg), 1);
  b.cbnz(X(kLoopReg), "loop");
  b.halt();
  return b.build();
}

struct ArchState {
  std::array<u64, isa::kNumAllocatableRegs> regs{};
  std::array<u64, kArenaWords> arena{};

  bool operator==(const ArchState&) const = default;
};

void seed_arena(mem::SparseMemory& memory) {
  for (u64 w = 0; w < kArenaWords; ++w) {
    memory.write_u64(kArena + w * 8, w * 0x9e37u + 7);
  }
}

ArchState collect(isa::RegisterFileIO& rf, const mem::SparseMemory& memory) {
  ArchState state;
  for (u32 r = 0; r < isa::kNumAllocatableRegs; ++r) {
    state.regs[r] = rf.read_reg(0, static_cast<isa::RegId>(r));
  }
  for (u64 w = 0; w < kArenaWords; ++w) {
    state.arena[w] = memory.read_u64(kArena + w * 8);
  }
  return state;
}

ArchState run_cgmt(const kasm::Program& program, bool use_virec,
                   core::PolicyKind policy, u32 phys_regs) {
  mem::MemSystemConfig mc;
  mem::MemorySystem ms(mc);
  seed_arena(ms.memory());
  cpu::CoreEnv env{.core_id = 0, .num_threads = 1, .ms = &ms};
  std::unique_ptr<cpu::ContextManager> manager;
  if (use_virec) {
    core::ViReCConfig vc;
    vc.num_phys_regs = phys_regs;
    vc.policy = policy;
    manager = std::make_unique<core::ViReCManager>(vc, env);
  } else {
    manager = std::make_unique<cpu::BankedManager>(env);
  }
  // Offloaded context: arena base register.
  ms.memory().write_u64(ms.reg_addr(0, 0, kArenaBaseReg), kArena);
  cpu::CgmtCoreConfig cc;
  cpu::CgmtCore core(cc, env, *manager, program);
  core.start_thread(0);
  core.run();
  return collect(*manager, ms.memory());
}

ArchState run_ooo(const kasm::Program& program) {
  mem::MemSystemConfig mc;
  mc.has_l2 = true;
  mem::MemorySystem ms(mc);
  seed_arena(ms.memory());
  cpu::OooCore core(cpu::OooCoreConfig{}, ms, 0, program);
  core.regfile().write_reg(0, kArenaBaseReg, kArena);
  core.run();
  return collect(core.regfile(), ms.memory());
}

class DifferentialTest : public ::testing::TestWithParam<u64> {};

TEST_P(DifferentialTest, ThreeEnginesAgree) {
  const u64 seed = GetParam();
  const kasm::Program program = random_program(seed, 24, 40);
  const ArchState banked = run_cgmt(program, false, core::PolicyKind::kLRC, 0);
  const ArchState virec =
      run_cgmt(program, true, core::PolicyKind::kLRC, /*phys_regs=*/6);
  const ArchState ooo = run_ooo(program);
  EXPECT_EQ(banked.regs, virec.regs) << "seed " << seed;
  EXPECT_EQ(banked.arena, virec.arena) << "seed " << seed;
  EXPECT_EQ(banked.regs, ooo.regs) << "seed " << seed;
  EXPECT_EQ(banked.arena, ooo.arena) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<u64>(1, 21));

class PolicyDifferentialTest
    : public ::testing::TestWithParam<core::PolicyKind> {};

TEST_P(PolicyDifferentialTest, EveryPolicyMatchesBanked) {
  const kasm::Program program = random_program(/*seed=*/99, 32, 32);
  const ArchState banked = run_cgmt(program, false, GetParam(), 0);
  const ArchState virec = run_cgmt(program, true, GetParam(), 5);
  EXPECT_EQ(banked.regs, virec.regs);
  EXPECT_EQ(banked.arena, virec.arena);
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicyDifferentialTest,
                         ::testing::ValuesIn(core::all_policies()),
                         [](const auto& info) {
                           std::string name = core::policy_name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(DifferentialStress, TinyRfLongProgram) {
  // 4 physical registers, long body: maximal fill/spill churn.
  const kasm::Program program = random_program(4242, 48, 64);
  const ArchState banked = run_cgmt(program, false, core::PolicyKind::kLRC, 0);
  const ArchState virec =
      run_cgmt(program, true, core::PolicyKind::kLRC, /*phys_regs=*/4);
  EXPECT_EQ(banked.regs, virec.regs);
  EXPECT_EQ(banked.arena, virec.arena);
}

}  // namespace
}  // namespace virec
