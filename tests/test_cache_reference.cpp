// Differential testing of the cache model against an independent
// reference implementation of set-associative LRU tag state, plus
// randomized invariants (pin safety, accounting identities, timing
// monotonicity per line).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "mem/cache.hpp"

namespace virec::mem {
namespace {

class FixedBacking final : public MemLevel {
 public:
  Cycle line_access(Addr, bool, Cycle now) override { return now + 40; }
};

/// Independent reference: set-associative LRU tag array with the same
/// insertion-at-fill-response rule, no MSHR/port modelling.
class ReferenceTags {
 public:
  ReferenceTags(u32 sets, u32 ways) : sets_(sets), lines_(sets * ways) {}

  /// Returns true on hit. @p now is the access time; fills stamp
  /// @p fill_time.
  bool access(Addr addr, Cycle now, Cycle fill_time) {
    const u64 line_no = addr / kLineBytes;
    const u32 set = static_cast<u32>(line_no % sets_);
    const u64 tag = line_no / sets_;
    const u32 ways = static_cast<u32>(lines_.size() / sets_);
    Line* base = &lines_[set * ways];
    for (u32 w = 0; w < ways; ++w) {
      if (base[w].valid && base[w].tag == tag) {
        base[w].stamp = now;
        return true;
      }
    }
    Line* victim = &base[0];
    for (u32 w = 1; w < ways; ++w) {
      if (!base[w].valid) {
        victim = &base[w];
        break;
      }
      if (base[w].stamp < victim->stamp && victim->valid) victim = &base[w];
    }
    victim->valid = true;
    victim->tag = tag;
    victim->stamp = fill_time;
    return false;
  }

 private:
  struct Line {
    bool valid = false;
    u64 tag = 0;
    Cycle stamp = 0;
  };
  u32 sets_;
  std::vector<Line> lines_;
};

TEST(CacheReference, RandomTrafficMatchesReferenceHitSequence) {
  FixedBacking backing;
  CacheConfig config;
  config.size_bytes = 1024;  // 4 sets x 4 ways
  config.assoc = 4;
  config.hit_latency = 2;
  config.mshrs = 64;  // effectively unlimited so timing never reorders
  Cache cache(config, backing);
  ReferenceTags reference(cache.num_sets(), config.assoc);

  Xorshift128 rng(2024);
  Cycle now = 0;
  u64 agreements = 0;
  for (int i = 0; i < 4000; ++i) {
    // 16 distinct lines over 4 sets: plenty of conflict pressure.
    const Addr addr = rng.next_below(16) * kLineBytes * 1;
    const CacheAccess acc = cache.access(addr, false, now);
    // Serialise: wait for completion so pending-fill states never
    // block the reference comparison.
    const bool ref_hit = reference.access(addr, now, acc.done);
    EXPECT_EQ(acc.hit, ref_hit) << "access " << i << " addr " << addr;
    agreements += acc.hit == ref_hit;
    now = acc.done + 1;
  }
  EXPECT_EQ(agreements, 4000u);
}

TEST(CacheReference, AccountingIdentityUnderRandomTraffic) {
  FixedBacking backing;
  CacheConfig config;
  config.size_bytes = 2048;
  config.assoc = 4;
  Cache cache(config, backing);
  Xorshift128 rng(7);
  Cycle now = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const Addr addr = rng.next_below(256) * 8;
    const bool write = rng.next_below(4) == 0;
    now = cache.access(addr, write, now).done + rng.next_below(3);
  }
  const StatSet& stats = cache.stats();
  EXPECT_EQ(stats.get("reads") + stats.get("writes"), n);
  EXPECT_EQ(stats.get("hits") + stats.get("misses") +
                stats.get("coalesced_misses"),
            n);
}

TEST(CacheReference, PinnedLinesSurviveArbitraryTraffic) {
  FixedBacking backing;
  CacheConfig config;
  config.size_bytes = 1024;
  config.assoc = 4;
  Cache cache(config, backing);
  // Pin one line per set.
  Cycle now = 0;
  const u32 sets = cache.num_sets();
  for (u32 s = 0; s < sets; ++s) {
    now = cache.access(s * kLineBytes, false, now, /*reg_region=*/true).done +
          1;
  }
  ASSERT_EQ(cache.pinned_lines(), sets);
  Xorshift128 rng(99);
  for (int i = 0; i < 3000; ++i) {
    const Addr addr = (sets + rng.next_below(64)) * kLineBytes;
    now = cache.access(addr, rng.next_below(2) == 0, now).done + 1;
  }
  for (u32 s = 0; s < sets; ++s) {
    EXPECT_TRUE(cache.probe(s * kLineBytes)) << s;
  }
  EXPECT_EQ(cache.pinned_lines(), sets);
}

TEST(CacheReference, CompletionTimesAreCausal) {
  FixedBacking backing;
  CacheConfig config;
  Cache cache(config, backing);
  Xorshift128 rng(31337);
  Cycle now = 0;
  for (int i = 0; i < 2000; ++i) {
    const Addr addr = rng.next_below(512) * 8;
    const CacheAccess acc = cache.access(addr, false, now);
    EXPECT_GT(acc.done, now);  // data can never be ready in the past
    now += rng.next_below(5);
  }
}

TEST(CacheReference, ReservationProtectsExactlyOneEviction) {
  FixedBacking backing;
  CacheConfig config;
  config.size_bytes = 1024;
  config.assoc = 4;
  Cache cache(config, backing);
  const u32 stride = cache.num_sets() * kLineBytes;
  Cycle now = cache.access(0, false, 0).done + 1;
  ASSERT_TRUE(cache.reserve_line(0));
  for (u32 i = 1; i <= 8; ++i) {
    now = cache.access(i * stride, false, now).done + 1;
  }
  EXPECT_TRUE(cache.probe(0));
  cache.release_line(0);
  for (u32 i = 9; i <= 16; ++i) {
    now = cache.access(i * stride, false, now).done + 1;
  }
  EXPECT_FALSE(cache.probe(0));
}

TEST(CacheReference, ReserveAbsentLineFails) {
  FixedBacking backing;
  Cache cache(CacheConfig{}, backing);
  EXPECT_FALSE(cache.reserve_line(0xdead000));
  cache.release_line(0xdead000);  // no-op, must not crash
}

}  // namespace
}  // namespace virec::mem
