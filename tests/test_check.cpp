// Self-checking subsystem tests: lockstep oracle on every scheme,
// injected-fault detection for each hard invariant, repro round-trip
// and replay determinism, and the bug-fix guards in rng / workload
// parameter validation.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "check/check.hpp"
#include "check/harness.hpp"
#include "check/progen.hpp"
#include "check/repro.hpp"
#include "common/rng.hpp"
#include "core/tag_store.hpp"
#include "isa/disasm.hpp"
#include "cpu/store_queue.hpp"
#include "mem/memory_system.hpp"
#include "sim/runner.hpp"
#include "workloads/workload.hpp"

namespace virec {
namespace {

kasm::Program edge_program(u64 seed) {
  check::ProgenOptions opts;
  opts.body_len = 24;
  opts.loop_iters = 16;
  opts.edge_ops = true;
  return check::random_program(seed, opts);
}

// ---------------------------------------------------------------------
// Lockstep oracle: every scheme runs a random edge-op program clean.

class OracleSchemeTest : public ::testing::TestWithParam<sim::Scheme> {};

TEST_P(OracleSchemeTest, RandomProgramRunsClean) {
  check::HarnessSpec spec;
  spec.scheme = GetParam();
  spec.threads = 2;
  spec.phys_regs = 6;
  const check::HarnessResult r = check::run_checked(edge_program(7), spec);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_FALSE(r.timed_out);
  EXPECT_GT(r.commits_checked, 0u);
  EXPECT_EQ(r.commits_checked, r.instructions);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, OracleSchemeTest,
    ::testing::Values(sim::Scheme::kBanked, sim::Scheme::kSoftware,
                      sim::Scheme::kPrefetchFull, sim::Scheme::kPrefetchExact,
                      sim::Scheme::kViReC, sim::Scheme::kNSF),
    [](const auto& info) {
      std::string name = sim::scheme_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Oracle, TinyRfStress) {
  // 4 physical registers: every value crosses the fill/spill path.
  check::HarnessSpec spec;
  spec.phys_regs = 4;
  spec.threads = 3;
  const check::HarnessResult r = check::run_checked(edge_program(11), spec);
  EXPECT_TRUE(r.ok) << r.message;
}

// ---------------------------------------------------------------------
// System-level --check path: the full simulator (workload init, task
// offload, multi-core) under the oracle, for every scheme.

TEST(SystemCheck, GatherRunsCleanOnEveryScheme) {
  for (sim::Scheme scheme :
       {sim::Scheme::kBanked, sim::Scheme::kSoftware,
        sim::Scheme::kPrefetchFull, sim::Scheme::kPrefetchExact,
        sim::Scheme::kViReC, sim::Scheme::kNSF}) {
    sim::RunSpec spec;
    spec.workload = "gather";
    spec.scheme = scheme;
    spec.threads_per_core = 4;
    spec.params.iters_per_thread = 16;
    spec.params.elements = 1024;
    spec.check = true;
    const sim::RunResult result = sim::run_spec(spec);
    EXPECT_TRUE(result.check_ok) << sim::scheme_name(scheme);
  }
}

// ---------------------------------------------------------------------
// Injected faults: each invariant must fire.

TEST(Invariants, InjectedTagCorruptionIsDetected) {
  check::HarnessSpec spec;
  spec.phys_regs = 6;
  spec.threads = 2;
  spec.seed = 3;
  EXPECT_TRUE(check::tag_bug_detected(edge_program(3), spec));
}

TEST(Invariants, TagStoreAuditCatchesSwappedTags) {
  core::TagStore tags(/*num_phys_regs=*/4, /*num_threads=*/2,
                      core::PolicyKind::kLRC);
  const std::vector<u8> locked(4, 0);
  core::TagStore::Victim victim;
  ASSERT_GE(tags.allocate(0, 1, locked, &victim), 0);
  ASSERT_GE(tags.allocate(1, 2, locked, &victim), 0);
  const check::CheckContext check;  // invariant-only context
  EXPECT_NO_THROW(tags.audit(&check));
  ASSERT_TRUE(tags.corrupt_swap_tags_for_test());
  EXPECT_THROW(tags.audit(&check), check::CheckError);
  // Null / disabled contexts must never throw (checking off).
  EXPECT_NO_THROW(tags.audit(nullptr));
  check::CheckContext off;
  off.set_enabled(false);
  EXPECT_NO_THROW(tags.audit(&off));
}

TEST(Invariants, StoreQueueOverfillIsDetected) {
  mem::MemorySystem ms{mem::MemSystemConfig{}};
  cpu::StoreQueue sq(3, ms.dcache(0));
  const check::CheckContext check;
  sq.set_check(&check);
  EXPECT_TRUE(sq.push(0x1000, 0));  // a sane push passes
  sq.overfill_for_test(/*until=*/1'000'000);
  EXPECT_THROW(sq.push(0x2000, 0), check::CheckError);
}

TEST(Invariants, LeakedMshrIsDetected) {
  mem::MemorySystem ms{mem::MemSystemConfig{}};
  const check::CheckContext check;
  ms.dcache(0).set_check(&check);
  EXPECT_NO_THROW(ms.dcache(0).access(0x1000, false, 0));
  ms.dcache(0).leak_mshr_for_test();
  EXPECT_THROW(ms.dcache(0).access(0x8000, false, 1'000'000),
               check::CheckError);
}

// ---------------------------------------------------------------------
// Repro files: round-trip and deterministic replay.

TEST(Repro, RoundTripPreservesSpecAndProgram) {
  check::HarnessSpec spec;
  spec.scheme = sim::Scheme::kNSF;
  spec.policy = core::PolicyKind::kMrtPLRU;
  spec.phys_regs = 5;
  spec.threads = 3;
  spec.max_cycles = 12345;
  spec.seed = 42;
  const kasm::Program program = edge_program(5);
  const std::string text = check::write_repro(spec, program);
  const check::Repro repro = check::parse_repro(text);
  EXPECT_EQ(repro.spec.scheme, spec.scheme);
  EXPECT_EQ(repro.spec.policy, spec.policy);
  EXPECT_EQ(repro.spec.phys_regs, spec.phys_regs);
  EXPECT_EQ(repro.spec.threads, spec.threads);
  EXPECT_EQ(repro.spec.max_cycles, spec.max_cycles);
  EXPECT_EQ(repro.spec.seed, spec.seed);
  ASSERT_EQ(repro.program.size(), program.size());
  for (u64 pc = 0; pc < program.size(); ++pc) {
    EXPECT_EQ(isa::disasm(repro.program.at(pc)), isa::disasm(program.at(pc)))
        << "pc " << pc;
  }
}

TEST(Repro, ReplayIsDeterministic) {
  check::HarnessSpec spec;
  spec.phys_regs = 5;
  const kasm::Program program = edge_program(9);
  const std::string text = check::write_repro(spec, program);
  const check::Repro repro = check::parse_repro(text);
  const check::HarnessResult a = check::run_checked(program, spec);
  const check::HarnessResult b =
      check::run_checked(repro.program, repro.spec);
  EXPECT_TRUE(a.ok) << a.message;
  EXPECT_TRUE(b.ok) << b.message;
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.commits_checked, b.commits_checked);
}

TEST(Repro, RejectsMalformedHeaders) {
  EXPECT_THROW(check::parse_repro("// repro scheme\nhalt\n"),
               std::invalid_argument);
  EXPECT_THROW(check::parse_repro("// repro bogus-key 3\nhalt\n"),
               std::invalid_argument);
  EXPECT_THROW(check::parse_repro("// repro scheme virec\n"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Shrinking passes.

TEST(Shrink, DropInstructionRetargetsBranches) {
  const kasm::Program program = edge_program(13);
  u64 candidates = 0;
  for (u64 i = 0; i < program.size(); ++i) {
    const kasm::Program smaller = check::drop_instruction(program, i);
    if (smaller.size() == 0) continue;  // structurally invalid, rejected
    ++candidates;
    ASSERT_EQ(smaller.size(), program.size() - 1);
    // Every survivor must still be runnable (possibly timing out).
    check::HarnessSpec spec;
    spec.max_cycles = 50'000;
    const check::HarnessResult r = check::run_checked(smaller, spec);
    EXPECT_TRUE(r.ok || r.timed_out) << "drop " << i << ": " << r.message;
  }
  EXPECT_GT(candidates, 0u);
}

TEST(Shrink, HalveLoopItersConverges) {
  kasm::Program program = edge_program(17);
  u32 halvings = 0;
  for (;;) {
    kasm::Program halved = check::halve_loop_iters(program);
    if (halved.size() == 0) break;
    program = std::move(halved);
    ++halvings;
    ASSERT_LT(halvings, 64u) << "halving must terminate";
  }
  EXPECT_GT(halvings, 0u);
  const check::HarnessResult r =
      check::run_checked(program, check::HarnessSpec{});
  EXPECT_TRUE(r.ok) << r.message;
}

// ---------------------------------------------------------------------
// Bug-fix guards.

TEST(RngGuards, NextBelowZeroThrows) {
  Xorshift128 rng(1);
  EXPECT_THROW(rng.next_below(0), std::logic_error);
}

TEST(WorkloadValidation, RejectsDegenerateParams) {
  workloads::WorkloadParams good;
  EXPECT_NO_THROW(good.validate());

  workloads::WorkloadParams p = good;
  p.iters_per_thread = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = good;
  p.elements = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = good;
  p.stride = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = good;
  p.locality_window = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = good;
  p.max_regs = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.max_regs = 32;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace virec
