// Offline policy simulation tests (Belady bound, LRU/FIFO/MRT-LRU on
// interleaved register traces).
#include <gtest/gtest.h>

#include <set>

#include "analysis/policy_sim.hpp"

namespace virec::analysis {
namespace {

workloads::WorkloadParams tiny_params() {
  workloads::WorkloadParams params;
  params.iters_per_thread = 48;
  params.elements = 1 << 12;
  return params;
}

std::vector<TraceAccess> gather_trace(u32 threads = 4) {
  return interleaved_trace(workloads::find_workload("gather"), tiny_params(),
                           threads, 14);
}

TEST(Trace, NonEmptyAndWellFormed) {
  const auto trace = gather_trace();
  ASSERT_FALSE(trace.empty());
  for (const TraceAccess& a : trace) {
    EXPECT_LT(a.tid, 4);
    EXPECT_LT(a.arch, isa::kNumAllocatableRegs);
  }
}

TEST(Trace, EpisodesInterleaveThreads) {
  const auto trace = gather_trace();
  // The first access is thread 0's; within the first 4 episodes every
  // thread must appear.
  std::set<u8> seen;
  for (std::size_t i = 0; i < std::min<std::size_t>(trace.size(), 4 * 14);
       ++i) {
    seen.insert(trace[i].tid);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Trace, BadArgumentsThrow) {
  EXPECT_THROW(interleaved_trace(workloads::find_workload("gather"),
                                 tiny_params(), 0, 8),
               std::invalid_argument);
  EXPECT_THROW(interleaved_trace(workloads::find_workload("gather"),
                                 tiny_params(), 2, 0),
               std::invalid_argument);
}

TEST(Belady, PerfectWhenEverythingFits) {
  const auto trace = gather_trace();
  // 4 threads x at most 31 registers.
  const double hit = belady_hit_rate(trace, 4 * 31);
  // Only first touches miss.
  EXPECT_GT(hit, 0.95);
}

TEST(Belady, DegradesWithSize) {
  const auto trace = gather_trace();
  double prev = -1.0;
  for (u32 rf : {4u, 8u, 16u, 32u}) {
    const double hit = belady_hit_rate(trace, rf);
    EXPECT_GE(hit, prev);
    prev = hit;
  }
}

TEST(Belady, DominatesEveryOnlinePolicy) {
  const auto trace = gather_trace();
  for (u32 rf : {6u, 12u, 18u, 24u}) {
    const OfflineHitRates rates = offline_hit_rates(trace, rf, 4, 14);
    EXPECT_GE(rates.opt + 1e-9, rates.lru) << rf;
    EXPECT_GE(rates.opt + 1e-9, rates.fifo) << rf;
    EXPECT_GE(rates.opt + 1e-9, rates.mrt_lru) << rf;
  }
}

TEST(Offline, MrtLruBeatsLruUnderRoundRobin) {
  // The Section 4.1 effect, measured offline: plain LRU victimises the
  // next-to-run thread's registers.
  const auto trace = gather_trace(8);
  const OfflineHitRates rates = offline_hit_rates(trace, 24, 8, 14);
  EXPECT_GT(rates.mrt_lru, rates.lru + 0.05);
}

TEST(Offline, AllPoliciesPerfectAtFullCapacity) {
  const auto trace = gather_trace();
  const OfflineHitRates rates = offline_hit_rates(trace, 4 * 31, 4, 14);
  EXPECT_NEAR(rates.opt, rates.lru, 1e-9);
  EXPECT_NEAR(rates.opt, rates.fifo, 1e-9);
  EXPECT_NEAR(rates.opt, rates.mrt_lru, 1e-9);
}

TEST(Offline, Deterministic) {
  const auto trace = gather_trace();
  const OfflineHitRates a = offline_hit_rates(trace, 12, 4, 14);
  const OfflineHitRates b = offline_hit_rates(trace, 12, 4, 14);
  EXPECT_EQ(a.opt, b.opt);
  EXPECT_EQ(a.lru, b.lru);
  EXPECT_EQ(a.mrt_lru, b.mrt_lru);
}

TEST(Offline, EmptyTraceIsTriviallyPerfect) {
  const OfflineHitRates rates = offline_hit_rates({}, 8, 4, 14);
  EXPECT_EQ(rates.opt, 1.0);
  EXPECT_EQ(rates.accesses, 0u);
}

TEST(Offline, ZeroEntryRfThrows) {
  EXPECT_THROW(offline_hit_rates(gather_trace(), 0, 4, 14),
               std::invalid_argument);
}

TEST(Offline, HandCraftedBeladyExample) {
  // Classic: A B C A B C with 2 entries.
  // OPT: A miss, B miss, C miss (evict B, keep A since A is next)...
  auto mk = [](u8 arch) { return TraceAccess{0, arch}; };
  const std::vector<TraceAccess> trace = {mk(0), mk(1), mk(2),
                                          mk(0), mk(1), mk(2)};
  // OPT with 2 entries: misses A,B,C, then A hits iff kept. Best
  // achievable: 2 hits (keep the nearest-reused key each time).
  EXPECT_NEAR(belady_hit_rate(trace, 2), 2.0 / 6.0, 1e-9);
  // LRU gets zero hits on this pattern.
  const OfflineHitRates rates = offline_hit_rates(trace, 2, 1, 100);
  EXPECT_NEAR(rates.lru, 0.0, 1e-9);
}

}  // namespace
}  // namespace virec::analysis
