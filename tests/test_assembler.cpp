// Text assembler tests: syntax coverage, label handling, error
// reporting and disassembler round-trips.
#include <gtest/gtest.h>

#include "isa/disasm.hpp"
#include "kasm/assembler.hpp"

namespace virec::kasm {
namespace {

using isa::Op;

TEST(Assembler, MinimalProgram) {
  const Program p = assemble("halt\n");
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p.at(0).op, Op::kHalt);
}

TEST(Assembler, AluRegisterAndImmediate) {
  const Program p = assemble(R"(
    add x1, x2, x3
    add x1, x2, #42
    sub x4, x4, #1
    and x5, x5, #255
    lsl x6, x7, #3
    halt
  )");
  EXPECT_EQ(p.at(0).op, Op::kAdd);
  EXPECT_EQ(p.at(1).op, Op::kAddImm);
  EXPECT_EQ(p.at(1).imm, 42);
  EXPECT_EQ(p.at(2).op, Op::kSubImm);
  EXPECT_EQ(p.at(3).op, Op::kAndImm);
  EXPECT_EQ(p.at(4).op, Op::kLslImm);
  EXPECT_EQ(p.at(4).imm, 3);
}

TEST(Assembler, HexImmediates) {
  const Program p = assemble("mov x0, #0xff\nhalt\n");
  EXPECT_EQ(p.at(0).imm, 0xff);
}

TEST(Assembler, NegativeImmediates) {
  const Program p = assemble("add x0, x1, #-8\nhalt\n");
  EXPECT_EQ(p.at(0).imm, -8);
}

TEST(Assembler, MemoryAddressingModes) {
  const Program p = assemble(R"(
    ldr x0, [x1]
    ldr x0, [x1, #16]
    ldr x0, [x1], #8
    ldr x0, [x1, #8]!
    ldr x0, [x1, x2]
    ldr x0, [x1, x2, lsl #3]
    str x0, [x1, #-8]
    halt
  )");
  using isa::MemMode;
  EXPECT_EQ(p.at(0).mem_mode, MemMode::kOffset);
  EXPECT_EQ(p.at(0).imm, 0);
  EXPECT_EQ(p.at(1).imm, 16);
  EXPECT_EQ(p.at(2).mem_mode, MemMode::kPostIndex);
  EXPECT_EQ(p.at(2).imm, 8);
  EXPECT_EQ(p.at(3).mem_mode, MemMode::kPreIndex);
  EXPECT_EQ(p.at(4).mem_mode, MemMode::kRegOffset);
  EXPECT_EQ(p.at(4).shift, 0);
  EXPECT_EQ(p.at(5).mem_mode, MemMode::kRegOffset);
  EXPECT_EQ(p.at(5).shift, 3);
  EXPECT_EQ(p.at(6).imm, -8);
}

TEST(Assembler, LoadStoreWidths) {
  const Program p = assemble(R"(
    ldrb x0, [x1]
    ldrh x0, [x1]
    ldrw x0, [x1]
    ldrsw x0, [x1]
    strb x0, [x1]
    strh x0, [x1]
    strw x0, [x1]
    halt
  )");
  EXPECT_EQ(p.at(0).op, Op::kLdrb);
  EXPECT_EQ(p.at(1).op, Op::kLdrh);
  EXPECT_EQ(p.at(2).op, Op::kLdrw);
  EXPECT_EQ(p.at(3).op, Op::kLdrsw);
  EXPECT_EQ(p.at(4).op, Op::kStrb);
  EXPECT_EQ(p.at(5).op, Op::kStrh);
  EXPECT_EQ(p.at(6).op, Op::kStrw);
}

TEST(Assembler, LabelsAndBranches) {
  const Program p = assemble(R"(
    mov x0, #4
    loop:
      sub x0, x0, #1
      cbnz x0, loop
    done: halt
  )");
  EXPECT_EQ(p.label("loop"), 1u);
  EXPECT_EQ(p.label("done"), 3u);
  EXPECT_EQ(p.at(2).target, 1);
}

TEST(Assembler, ForwardReferences) {
  const Program p = assemble(R"(
    cbz x0, end
    mov x1, #1
    end: halt
  )");
  EXPECT_EQ(p.at(0).target, 2);
}

TEST(Assembler, AbsoluteTargets) {
  const Program p = assemble("b @1\nhalt\n");
  EXPECT_EQ(p.at(0).target, 1);
}

TEST(Assembler, ConditionalBranches) {
  const Program p = assemble(R"(
    top:
    cmp x0, x1
    b.eq top
    b.ne top
    b.lt top
    b.ge top
    b.hi top
    b.ls top
    halt
  )");
  using isa::Cond;
  EXPECT_EQ(p.at(1).cond, Cond::kEq);
  EXPECT_EQ(p.at(2).cond, Cond::kNe);
  EXPECT_EQ(p.at(3).cond, Cond::kLt);
  EXPECT_EQ(p.at(4).cond, Cond::kGe);
  EXPECT_EQ(p.at(5).cond, Cond::kHi);
  EXPECT_EQ(p.at(6).cond, Cond::kLs);
}

TEST(Assembler, CommentsIgnored) {
  const Program p = assemble(R"(
    // full line comment
    # hash comment
    mov x0, #1   // trailing comment
    halt ; semicolon comment
  )");
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.at(0).imm, 1);
}

TEST(Assembler, CmpForms) {
  const Program p = assemble("cmp x1, x2\ncmp x1, #5\nhalt\n");
  EXPECT_EQ(p.at(0).op, Op::kCmp);
  EXPECT_EQ(p.at(1).op, Op::kCmpImm);
}

TEST(Assembler, MaddFmaddScvtf) {
  const Program p = assemble(R"(
    madd x0, x1, x2, x3
    fmadd x0, x1, x2, x3
    scvtf x0, x1
    fcvtzs x0, x1
    fadd x0, x1, x2
    fdiv x0, x1, x2
    halt
  )");
  EXPECT_EQ(p.at(0).op, Op::kMadd);
  EXPECT_EQ(p.at(0).ra, 3);
  EXPECT_EQ(p.at(1).op, Op::kFmadd);
  EXPECT_EQ(p.at(2).op, Op::kScvtf);
  EXPECT_EQ(p.at(3).op, Op::kFcvtzs);
  EXPECT_EQ(p.at(4).op, Op::kFadd);
  EXPECT_EQ(p.at(5).op, Op::kFdiv);
}

TEST(Assembler, MovkWithShift) {
  const Program p = assemble("movk x0, #0xbeef, lsl #16\nhalt\n");
  EXPECT_EQ(p.at(0).op, Op::kMovk);
  EXPECT_EQ(p.at(0).imm, 0xbeef);
  EXPECT_EQ(p.at(0).imm2, 1);
}

TEST(Assembler, XzrRegister) {
  const Program p = assemble("add x0, xzr, xzr\nhalt\n");
  EXPECT_EQ(p.at(0).rn, isa::kZeroReg);
  EXPECT_EQ(p.at(0).rm, isa::kZeroReg);
}

TEST(AssemblerErrors, UnknownMnemonic) {
  EXPECT_THROW(assemble("frobnicate x0, x1\nhalt\n"), AsmError);
}

TEST(AssemblerErrors, BadRegister) {
  EXPECT_THROW(assemble("add x0, x31, x1\nhalt\n"), AsmError);
  EXPECT_THROW(assemble("add x0, y1, x1\nhalt\n"), AsmError);
}

TEST(AssemblerErrors, UnresolvedLabel) {
  EXPECT_THROW(assemble("b nowhere\nhalt\n"), AsmError);
}

TEST(AssemblerErrors, DuplicateLabel) {
  EXPECT_THROW(assemble("a:\nnop\na:\nhalt\n"), AsmError);
}

TEST(AssemblerErrors, WrongOperandCount) {
  EXPECT_THROW(assemble("add x0, x1\nhalt\n"), AsmError);
  EXPECT_THROW(assemble("cbz x0\nhalt\n"), AsmError);
}

TEST(AssemblerErrors, MulHasNoImmediateForm) {
  EXPECT_THROW(assemble("mul x0, x1, #2\nhalt\n"), AsmError);
}

TEST(AssemblerErrors, BadMemoryOperand) {
  EXPECT_THROW(assemble("ldr x0, x1\nhalt\n"), AsmError);
  EXPECT_THROW(assemble("ldr x0, [x1\nhalt\n"), AsmError);
}

TEST(AssemblerErrors, ErrorCarriesLineNumber) {
  try {
    assemble("nop\nnop\nbogus x1\nhalt\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(AssemblerErrors, ProgramWithoutHaltRejected) {
  EXPECT_THROW(assemble("nop\n"), std::invalid_argument);
}

TEST(Assembler, DisasmRoundTrip) {
  // Assemble, disassemble, re-assemble: instruction streams must match.
  const char* source = R"(
    mov x5, #0
    loop:
    ldr x6, [x2, x5, lsl #3]
    ldrsw x7, [x3], #8
    add x8, x8, x7
    str x8, [x9, #16]!
    add x5, x5, #1
    cmp x5, x4
    b.lt loop
    halt
  )";
  const Program first = assemble(source);
  std::string redis;
  for (u64 i = 0; i < first.size(); ++i) {
    redis += isa::disasm(first.at(i)) + "\n";
  }
  const Program second = assemble(redis);
  ASSERT_EQ(first.size(), second.size());
  for (u64 i = 0; i < first.size(); ++i) {
    EXPECT_EQ(isa::disasm(first.at(i)), isa::disasm(second.at(i))) << i;
  }
}

TEST(Assembler, ListingShowsLabels) {
  const Program p = assemble("start:\nnop\nhalt\n");
  const std::string listing = p.listing();
  EXPECT_NE(listing.find("start:"), std::string::npos);
  EXPECT_NE(listing.find("nop"), std::string::npos);
}

}  // namespace
}  // namespace virec::kasm
