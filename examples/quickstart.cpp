// Quickstart: simulate one ViReC near-memory processor running the
// gather benchmark with 8 threads sharing a small register cache, and
// compare it against a conventional banked register file.
//
//   ./quickstart [workload] [threads] [context_fraction]
#include <cstdlib>
#include <iostream>

#include "sim/runner.hpp"

using namespace virec;

int main(int argc, char** argv) {
  // --- 1. Describe the experiment. -----------------------------------
  sim::RunSpec spec;
  spec.workload = argc > 1 ? argv[1] : "gather";
  spec.threads_per_core = argc > 2 ? static_cast<u32>(std::atoi(argv[2])) : 8;
  spec.context_fraction = argc > 3 ? std::atof(argv[3]) : 0.8;
  spec.scheme = sim::Scheme::kViReC;
  spec.params.iters_per_thread = 512;

  const workloads::Workload& workload =
      workloads::find_workload(spec.workload);
  std::cout << "workload : " << workload.name() << " — "
            << workload.description() << "\n"
            << "threads  : " << spec.threads_per_core << "\n"
            << "ViReC RF : " << sim::spec_phys_regs(spec) << " registers ("
            << static_cast<int>(spec.context_fraction * 100)
            << "% of the active context)\n\n";

  // --- 2. Run the ViReC system. ---------------------------------------
  // run_spec offloads the thread contexts, simulates cycle by cycle and
  // verifies the computed results against a host reference.
  const sim::RunResult virec = sim::run_spec(spec);

  // --- 3. Run the banked baseline. -------------------------------------
  spec.scheme = sim::Scheme::kBanked;
  const sim::RunResult banked = sim::run_spec(spec);

  // --- 4. Report. -------------------------------------------------------
  std::cout << "                    ViReC        banked\n";
  std::cout << "cycles           " << virec.cycles << "      " << banked.cycles
            << "\n";
  std::cout << "IPC              " << virec.ipc << "     " << banked.ipc
            << "\n";
  std::cout << "context switches " << virec.context_switches << "        "
            << banked.context_switches << "\n";
  std::cout << "RF hit rate      " << virec.rf_hit_rate * 100.0 << "%\n";
  std::cout << "register fills   " << virec.rf_fills << "\n";
  std::cout << "results check    " << (virec.check_ok ? "OK" : "FAIL")
            << "           " << (banked.check_ok ? "OK" : "FAIL") << "\n\n";
  std::cout << "relative performance: "
            << static_cast<double>(banked.cycles) /
                   static_cast<double>(virec.cycles)
            << "x of banked, using " << sim::spec_phys_regs(spec)
            << " instead of "
            << spec.threads_per_core * isa::kNumArchRegs << " registers\n";
  return virec.check_ok && banked.check_ok ? 0 : 1;
}
