// Thread/context scaling study: for a fixed physical register budget,
// how should it be split between threads and per-thread context? This
// automates the trade-off behind Figure 10 / Section 6.1 ("ViReC
// scaling") for any workload and register budget.
//
//   ./scaling_study [workload] [register_budget] [total_iters]
#include <cstdlib>
#include <iostream>

#include "area/area_model.hpp"
#include "common/table.hpp"
#include "sim/runner.hpp"

using namespace virec;

int main(int argc, char** argv) {
  const std::string workload_name = argc > 1 ? argv[1] : "gather";
  const u32 budget = argc > 2 ? static_cast<u32>(std::atoi(argv[2])) : 32;
  const u64 total_iters =
      argc > 3 ? static_cast<u64>(std::atoll(argv[3])) : 2048;

  const workloads::Workload& workload =
      workloads::find_workload(workload_name);
  std::cout << "scaling study: " << workload_name << ", "
            << budget << "-register ViReC file, " << total_iters
            << " total iterations\n"
            << "active context: " << workload.active_regs()
            << " registers/thread\n\n";

  Table table({"threads", "regs/thread", "context %", "cycles", "perf",
               "area mm^2"});
  double best = 0.0;
  u32 best_threads = 0;
  for (u32 threads : {1u, 2u, 4u, 6u, 8u, 10u, 12u}) {
    if (total_iters % threads != 0) continue;
    sim::RunSpec spec;
    spec.workload = workload_name;
    spec.scheme = sim::Scheme::kViReC;
    spec.threads_per_core = threads;
    spec.phys_regs = budget;
    spec.params.iters_per_thread = total_iters / threads;
    const sim::RunResult result = sim::run_spec(spec);
    const double perf =
        static_cast<double>(total_iters) / static_cast<double>(result.cycles);
    const double context_pct =
        100.0 * static_cast<double>(budget) /
        (static_cast<double>(threads) * workload.active_regs());
    if (perf > best) {
      best = perf;
      best_threads = threads;
    }
    table.add_row({std::to_string(threads),
                   Table::fmt(static_cast<double>(budget) / threads, 1),
                   Table::fmt(std::min(context_pct, 100.0), 0) + "%",
                   std::to_string(result.cycles), Table::fmt(perf * 1000, 2),
                   Table::fmt(area::virec_core_area(budget).total_mm2, 2)});
  }
  table.print(std::cout);
  std::cout << "\nbest thread count for a " << budget
            << "-register file: " << best_threads << "\n"
            << "(banked comparison: " << best_threads
            << " threads would need "
            << best_threads * isa::kNumArchRegs << " registers, "
            << Table::fmt(
                   area::banked_core_area(best_threads).total_mm2, 2)
            << " mm^2)\n";
  return 0;
}
