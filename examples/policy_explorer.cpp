// Replacement-policy explorer: sweep every policy over a workload and
// context-fraction grid, printing hit rates and runtimes — the tool to
// reproduce Section 4's design-space exploration on new kernels.
//
//   ./policy_explorer [workload] [threads]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "sim/runner.hpp"

using namespace virec;

int main(int argc, char** argv) {
  const std::string workload = argc > 1 ? argv[1] : "gather";
  const u32 threads = argc > 2 ? static_cast<u32>(std::atoi(argv[2])) : 8;

  std::cout << "policy exploration: " << workload << ", " << threads
            << " threads\n";

  for (double fraction : {1.0, 0.8, 0.6, 0.4}) {
    sim::RunSpec probe;
    probe.workload = workload;
    probe.threads_per_core = threads;
    probe.context_fraction = fraction;
    std::cout << "\n=== " << static_cast<int>(fraction * 100)
              << "% context (" << sim::spec_phys_regs(probe)
              << " physical registers) ===\n";
    Table table({"policy", "hit rate", "cycles", "IPC", "fills", "spills"});
    for (core::PolicyKind policy : core::all_policies()) {
      sim::RunSpec spec = probe;
      spec.scheme = sim::Scheme::kViReC;
      spec.policy = policy;
      spec.params.iters_per_thread = 256;
      const sim::RunResult r = sim::run_spec(spec);
      table.add_row({core::policy_name(policy),
                     Table::fmt_pct(r.rf_hit_rate, 1),
                     std::to_string(r.cycles), Table::fmt(r.ipc, 3),
                     std::to_string(r.rf_fills),
                     std::to_string(r.rf_spills)});
    }
    table.print(std::cout);
  }
  return 0;
}
