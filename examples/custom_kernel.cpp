// Writing your own near-memory kernel: assemble NMP ISA text, build a
// two-thread ViReC core by hand (no workload registry involved), offload
// contexts and inspect the results.
//
// The kernel computes a dot product of two integer vectors; each thread
// handles half the elements.
#include <iostream>

#include "core/virec_manager.hpp"
#include "cpu/cgmt_core.hpp"
#include "kasm/assembler.hpp"

using namespace virec;

int main() {
  // --- 1. The kernel, in NMP assembly. --------------------------------
  const kasm::Program program = kasm::assemble(R"(
    // x0 = &a[start], x1 = &b[start], x2 = count, x3 = acc, x6 = &result
    loop:
      ldr  x4, [x0], #8
      ldr  x5, [x1], #8
      madd x3, x4, x5, x3
      sub  x2, x2, #1
      cbnz x2, loop
    str  x3, [x6]
    halt
  )");
  std::cout << "kernel listing:\n" << program.listing() << "\n";

  // --- 2. A memory system and a 2-thread ViReC core. -------------------
  mem::MemSystemConfig mem_config;  // Table-1 NMP defaults
  mem::MemorySystem ms(mem_config);

  cpu::CoreEnv env{.core_id = 0, .num_threads = 2, .ms = &ms};
  core::ViReCConfig virec_config;
  virec_config.num_phys_regs = 12;  // deliberately tiny: forces fills
  virec_config.policy = core::PolicyKind::kLRC;
  core::ViReCManager manager(virec_config, env);

  cpu::CgmtCoreConfig core_config;
  core_config.num_threads = 2;
  cpu::CgmtCore core(core_config, env, manager, program);

  // --- 3. Input data + offloaded thread contexts. ----------------------
  constexpr u64 kN = 256;
  constexpr Addr kA = 0x2000'0000, kB = 0x2100'0000, kOut = 0x2200'0000;
  u64 expected = 0;
  for (u64 i = 0; i < kN; ++i) {
    ms.memory().write_u64(kA + i * 8, i + 1);
    ms.memory().write_u64(kB + i * 8, 2 * i + 1);
    expected += (i + 1) * (2 * i + 1);
  }
  for (u32 tid = 0; tid < 2; ++tid) {
    const u64 start = tid * (kN / 2);
    // The offload mechanism writes initial register values into the
    // core's reserved backing region; the core fetches them when the
    // thread is first scheduled.
    auto set = [&](u32 reg, u64 value) {
      ms.memory().write_u64(ms.reg_addr(0, tid, reg), value);
    };
    set(0, kA + start * 8);
    set(1, kB + start * 8);
    set(2, kN / 2);
    set(3, 0);
    set(6, kOut + tid * 64);
    core.start_thread(static_cast<int>(tid));
  }

  // --- 4. Simulate. -----------------------------------------------------
  core.run();

  const u64 result = ms.memory().read_u64(kOut) +
                     ms.memory().read_u64(kOut + 64);
  std::cout << "dot product  = " << result << " (expected " << expected
            << ")\n"
            << "cycles       = " << core.cycle() << "\n"
            << "instructions = " << core.instructions() << "\n"
            << "IPC          = " << core.ipc() << "\n"
            << "RF hit rate  = " << manager.rf_hit_rate() * 100.0 << "%\n"
            << "ctx switches = "
            << core.stats().get("context_switches") << "\n";
  return result == expected ? 0 : 1;
}
