// virec-simd — the simulation service daemon (docs/service.md).
//
//   virec-simd --socket /tmp/virec.sock --store .virec-store --jobs 8
//   virec-simd --store .virec-store --store-verify --repair
//   virec-simd --store .virec-store --store-gc 10000
//   virec-simd --version
//
// Serves experiment points over a local Unix socket (NDJSON with CRC
// framing; see src/svc/protocol.hpp). Every completed point is
// persisted in a content-addressed ResultStore, so repeated sweeps —
// across clients, across daemon restarts — cost one simulator run per
// unique point. Concurrent requests for the same point coalesce onto
// one execution; queued work drains round-robin across clients; a full
// queue rejects new batches with a retry-after hint instead of growing
// without bound.
//
// Clients: `virec-sim --connect SOCKET` and bench harnesses via
// svc::ServiceClient.
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/json.hpp"
#include "common/json_parse.hpp"
#include "common/version.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/result_store.hpp"
#include "svc/socket.hpp"
#include "svc/sweep_service.hpp"

using namespace virec;

namespace {

struct Options {
  std::string socket_path = "virec-simd.sock";
  std::string store_dir = ".virec-store";
  u32 jobs = 0;  // 0 = hardware concurrency
  std::size_t max_pending = 4096;
  double retry_after_secs = 0.25;
  bool version = false;
  bool help = false;
  bool store_verify = false;
  bool repair = false;
  bool store_gc = false;
  std::size_t gc_keep = 0;
};

void print_usage() {
  std::cout <<
      "virec-simd — simulation service daemon with a content-addressed "
      "result cache\n"
      "\n"
      "usage: virec-simd [options]\n"
      "  --socket PATH     Unix socket to listen on\n"
      "                    (default virec-simd.sock)\n"
      "  --store DIR       result store directory (default .virec-store)\n"
      "  --jobs N          simulator worker threads (0 = all hardware\n"
      "                    threads, the default)\n"
      "  --max-pending N   admission limit: queued executions before new\n"
      "                    batches are rejected busy (default 4096)\n"
      "  --retry-after S   retry hint (seconds) carried by busy replies\n"
      "                    (default 0.25)\n"
      "  --store-verify    scan every store entry, report corruption and\n"
      "                    exit (no daemon); --repair deletes bad entries\n"
      "  --store-gc N      keep only the newest N store entries and exit\n"
      "  --version         print build provenance and exit\n";
}

u64 parse_u64(const std::string& flag, const std::string& v) {
  errno = 0;
  char* end = nullptr;
  const u64 out = std::strtoull(v.c_str(), &end, 0);
  if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE) {
    throw std::invalid_argument(flag + ": invalid number '" + v + "'");
  }
  return out;
}

bool parse(int argc, char** argv, Options& opt) {
  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument(arg + " needs a value");
      }
      return args[++i];
    };
    if (arg == "--help" || arg == "-h") opt.help = true;
    else if (arg == "--version") opt.version = true;
    else if (arg == "--socket") opt.socket_path = value();
    else if (arg == "--store") opt.store_dir = value();
    else if (arg == "--jobs") opt.jobs = static_cast<u32>(parse_u64(arg, value()));
    else if (arg == "--max-pending") opt.max_pending = parse_u64(arg, value());
    else if (arg == "--retry-after") {
      errno = 0;
      char* end = nullptr;
      const std::string v = value();
      opt.retry_after_secs = std::strtod(v.c_str(), &end);
      if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE ||
          opt.retry_after_secs < 0) {
        throw std::invalid_argument("--retry-after: invalid '" + v + "'");
      }
    }
    else if (arg == "--store-verify") opt.store_verify = true;
    else if (arg == "--repair") opt.repair = true;
    else if (arg == "--store-gc") {
      opt.store_gc = true;
      opt.gc_keep = parse_u64(arg, value());
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return false;
    }
  }
  return true;
}

/// Everything a connection handler needs; owned by main for the
/// daemon's lifetime.
struct Daemon {
  Daemon(const Options& opt)
      : store(opt.store_dir),
        service(
            svc::ServiceConfig{
                opt.jobs == 0
                    ? std::max(1u, std::thread::hardware_concurrency())
                    : opt.jobs,
                opt.max_pending, opt.retry_after_secs},
            &store),
        listener(opt.socket_path),
        stream_dir((std::filesystem::path(store.dir()) / "streams").string()) {
    // Sampled points replay shared functional streams; persisting them
    // beside the result store means daemon restarts skip the golden
    // prepass too (docs/performance.md, "Stream reuse"). The store key
    // ignores stream_dir, so cached results are unaffected.
    std::error_code ec;
    std::filesystem::create_directories(stream_dir, ec);
    if (ec) stream_dir.clear();  // degrade to in-memory sharing
  }

  svc::ResultStore store;
  svc::SweepService service;
  svc::UnixListener listener;
  std::string stream_dir;  // "" = no on-disk stream persistence
  std::atomic<bool> stop{false};

  /// Open connections, so shutdown can wake handlers blocked in
  /// read_line (their threads are joined by main before exit).
  std::mutex conns_mu;
  std::unordered_set<svc::UnixConn*> conns;
  std::mutex log_mu;

  void shutdown_all() {
    stop = true;
    listener.shutdown();
    std::lock_guard<std::mutex> lk(conns_mu);
    for (svc::UnixConn* c : conns) c->shutdown();
  }

  void log(const std::string& line) {
    std::lock_guard<std::mutex> lk(log_mu);
    std::cerr << line << "\n";
  }
};

/// The signal handler may only touch async-signal-safe calls: shut the
/// pre-captured listening fd down, which unblocks accept(); main then
/// runs the orderly shutdown path.
volatile std::sig_atomic_t g_signalled = 0;
int g_listen_fd = -1;

void on_signal(int) {
  g_signalled = 1;
  if (g_listen_fd >= 0) ::shutdown(g_listen_fd, SHUT_RDWR);
}

std::string compact(const std::function<void(JsonWriter&)>& fill) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  fill(w);
  w.end_object();
  return os.str();
}

void handle_sweep(Daemon& d, svc::UnixConn& conn, const JsonValue& msg,
                  const std::string& client_key) {
  const u64 id = msg.at("id").as_u64();
  const JsonValue& spec_hexes = msg.at("specs");
  if (!spec_hexes.is_array()) {
    throw JsonParseError("specs is not an array");
  }

  // Decode the batch up front. Undecodable entries are answered as
  // per-point errors (not a dropped connection): the client may be
  // newer than the daemon, and the rest of its batch is still useful.
  const std::size_t total = spec_hexes.array.size();
  std::vector<sim::RunSpec> specs;
  std::vector<std::size_t> spec_index;  // position in the wire batch
  std::vector<std::size_t> bad;
  specs.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    sim::RunSpec spec;
    if (spec_hexes.array[i].is_string() &&
        svc::proto::decode_spec_hex(spec_hexes.array[i].string, &spec)) {
      // The wire codec does not carry stream_dir (it is host-local);
      // the daemon supplies its own persistent stream store.
      if (spec.sample_windows > 0) spec.stream_dir = d.stream_dir;
      specs.push_back(std::move(spec));
      spec_index.push_back(i);
    } else {
      bad.push_back(i);
    }
  }
  for (const std::size_t i : bad) {
    conn.write_line(svc::proto::frame(compact([&](JsonWriter& w) {
      w.kv("type", "error");
      w.kv("id", id);
      w.kv("index", static_cast<u64>(i));
      w.kv("message", "undecodable spec");
    })));
  }

  svc::SweepTicket ticket;
  // Set by the delivery callback when the client stops accepting
  // frames; the polling loop below then withdraws the client.
  auto write_failed = std::make_shared<std::atomic<bool>>(false);
  try {
    // Streamed delivery: each point goes out the moment it resolves.
    // Write failures (client gone) flag the connection so unstarted
    // points are cancelled; executions already running still finish
    // and land in the store, so the client's retry is all cache hits.
    ticket = d.service.submit(
        client_key, specs,
        [&conn, &spec_index, id, write_failed](std::size_t index,
                                               const sim::RunResult* result,
                                               svc::PointSource source,
                                               const std::string& error) {
          const u64 wire_index = spec_index[index];
          if (result == nullptr) {
            if (!conn.write_line(svc::proto::frame(compact([&](JsonWriter& w) {
                  w.kv("type", "error");
                  w.kv("id", id);
                  w.kv("index", wire_index);
                  w.kv("message", error);
                })))) {
              write_failed->store(true);
            }
            return;
          }
          if (!conn.write_line(svc::proto::frame(compact([&](JsonWriter& w) {
                w.kv("type", "point");
                w.kv("id", id);
                w.kv("index", wire_index);
                w.kv("source", svc::point_source_name(source));
                w.kv("result", svc::proto::encode_result_hex(*result));
              })))) {
            write_failed->store(true);
          }
        });
  } catch (const svc::ServiceBusy& busy) {
    conn.write_line(svc::proto::frame(compact([&](JsonWriter& w) {
      w.kv("type", "busy");
      w.kv("id", id);
      w.kv("retry_after_secs", busy.retry_after_secs);
    })));
    return;
  }
  // Poll instead of a blind wait: a client that disconnects mid-stream
  // must not keep its unstarted points occupying admission slots until
  // they all simulate into the void. Cancelling fails this client's
  // waiters, so the ticket drains promptly after the reclaim.
  while (!ticket.wait_for(0.25)) {
    if (d.stop || write_failed->load() || conn.peer_closed()) {
      const std::size_t reclaimed = d.service.cancel(client_key);
      d.log("sweep id=" + std::to_string(id) + " client=" + client_key +
            ": client gone, cancelled " + std::to_string(reclaimed) +
            " queued point(s)");
      ticket.wait();
      break;
    }
  }
  const svc::SweepTicket::Counts counts = ticket.counts();
  conn.write_line(svc::proto::frame(compact([&](JsonWriter& w) {
    w.kv("type", "done");
    w.kv("id", id);
    w.kv("points", static_cast<u64>(total));
    w.kv("executed", static_cast<u64>(counts.executed));
    w.kv("store_hits", static_cast<u64>(counts.store_hits));
    w.kv("dedup_hits", static_cast<u64>(counts.dedup_hits));
    w.kv("failed", static_cast<u64>(counts.failed + bad.size()));
  })));
  std::ostringstream log;
  log << "sweep id=" << id << " client=" << client_key << " points=" << total
      << " executed=" << counts.executed
      << " store_hits=" << counts.store_hits
      << " dedup_hits=" << counts.dedup_hits
      << " failed=" << counts.failed + bad.size();
  d.log(log.str());
}

void handle_conn(Daemon& d, svc::UnixConn conn, u64 conn_id) {
  {
    std::lock_guard<std::mutex> lk(d.conns_mu);
    d.conns.insert(&conn);
  }
  std::string client_key = "conn#" + std::to_string(conn_id);
  std::string line;
  while (!d.stop && conn.read_line(&line)) {
    std::string body;
    if (!svc::proto::unframe(line, &body)) {
      d.log("client " + client_key + ": corrupt frame, dropping connection");
      break;
    }
    try {
      const JsonValue msg = json_parse(body);
      const std::string& type = msg.at("type").string;
      if (type == "hello") {
        if (msg.at("protocol").as_u64() != svc::proto::kProtocolVersion) {
          conn.write_line(svc::proto::frame(compact([&](JsonWriter& w) {
            w.kv("type", "error");
            w.kv("id", u64{0});
            w.kv("index", u64{0});
            w.kv("message", "protocol version mismatch");
          })));
          break;
        }
        if (const JsonValue* name = msg.find("client")) {
          // Fairness key stays unique per connection even when many
          // clients announce the same name.
          client_key = name->string + "#" + std::to_string(conn_id);
        }
        conn.write_line(svc::proto::frame(compact([&](JsonWriter& w) {
          w.kv("type", "hello");
          w.kv("protocol", svc::proto::kProtocolVersion);
          w.kv("provenance", build::provenance());
        })));
      } else if (type == "sweep") {
        handle_sweep(d, conn, msg, client_key);
      } else if (type == "stats") {
        const svc::SweepService::Stats s = d.service.stats();
        const u64 entries = d.store.size();
        conn.write_line(svc::proto::frame(compact([&](JsonWriter& w) {
          w.kv("type", "stats");
          w.kv("executed", static_cast<u64>(s.executed));
          w.kv("store_hits", static_cast<u64>(s.store_hits));
          w.kv("dedup_hits", static_cast<u64>(s.dedup_hits));
          w.kv("failed", static_cast<u64>(s.failed));
          w.kv("pending", static_cast<u64>(s.pending));
          w.kv("inflight", static_cast<u64>(s.inflight));
          w.kv("store_entries", entries);
          w.kv("provenance", build::provenance());
        })));
      } else if (type == "ping") {
        conn.write_line(svc::proto::frame("{\"type\":\"pong\"}"));
      } else if (type == "shutdown") {
        conn.write_line(svc::proto::frame("{\"type\":\"bye\"}"));
        d.log("shutdown requested by " + client_key);
        d.shutdown_all();
        break;
      } else {
        d.log("client " + client_key + ": unknown message type " + type);
        break;
      }
    } catch (const JsonParseError& e) {
      d.log("client " + client_key + ": bad message (" + e.what() +
            "), dropping connection");
      break;
    }
  }
  {
    std::lock_guard<std::mutex> lk(d.conns_mu);
    d.conns.erase(&conn);
  }
}

int run_daemon(const Options& opt) {
  Daemon d(opt);
  g_listen_fd = d.listener.native_handle();
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::ostringstream hello;
  hello << "virec-simd listening on " << opt.socket_path << " (store "
        << d.store.dir() << ", " << d.store.size() << " entr"
        << (d.store.size() == 1 ? "y" : "ies") << "; "
        << build::provenance() << ")";
  d.log(hello.str());

  std::vector<std::thread> handlers;
  u64 next_conn_id = 1;
  for (;;) {
    svc::UnixConn conn = d.listener.accept();
    if (!conn.valid()) break;  // listener shut down (signal or message)
    handlers.emplace_back(
        [&d, conn = std::move(conn), id = next_conn_id]() mutable {
          handle_conn(d, std::move(conn), id);
        });
    ++next_conn_id;
  }
  d.shutdown_all();
  for (std::thread& t : handlers) t.join();
  d.log("virec-simd stopped");
  return 0;
}

int run_store_verify(const Options& opt) {
  svc::ResultStore store(opt.store_dir);
  const svc::ResultStore::VerifyReport report = store.verify(opt.repair);
  std::cout << "store " << store.dir() << "\n"
            << "entries " << report.total << "\n"
            << "ok " << report.ok << "\n"
            << "corrupt " << report.corrupt << "\n"
            << "foreign " << report.foreign << "\n";
  for (const std::string& path : report.removed) {
    std::cout << "removed " << path << "\n";
  }
  return report.corrupt > 0 && !opt.repair ? 1 : 0;
}

int run_store_gc(const Options& opt) {
  svc::ResultStore store(opt.store_dir);
  const std::size_t removed = store.gc(opt.gc_keep);
  std::cout << "store " << store.dir() << "\n"
            << "removed " << removed << "\n"
            << "entries " << store.size() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    if (!parse(argc, argv, opt)) {
      print_usage();
      return 2;
    }
    if (opt.help) {
      print_usage();
      return 0;
    }
    if (opt.version) {
      std::cout << "virec-simd\n"
                << "provenance " << build::provenance() << "\n"
                << "protocol " << svc::proto::kProtocolVersion << "\n"
                << "store_format " << svc::kStoreFormatVersion << "\n"
                << "spec_codec " << ckpt::kSpecCodecVersion << "\n";
      return 0;
    }
    if (opt.store_verify) return run_store_verify(opt);
    if (opt.store_gc) return run_store_gc(opt);
    return run_daemon(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
