// virec-sim — command-line front end for the simulator.
//
//   virec-sim --workload gather --scheme virec --threads 8 --ctx 0.8
//   virec-sim --workload spmv --policy mrt-plru --cores 4 --stats
//   virec-sim --workload gather --trace --iters 8   # pipeline trace
//   virec-sim --workload gather --json --trace-out trace.json
//   virec-sim --sweep --workload gather,reduce --threads 4,8 --jobs 4
//   virec-sim --list
//
// Prints runtime, IPC, RF behaviour and (optionally) every counter of
// every component, in a stable machine-greppable "key value" format —
// or, with --json, one JSON document carrying the config echo, the
// results and every typed stat (see docs/observability.md).
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "area/area_model.hpp"
#include "check/harness.hpp"
#include "check/repro.hpp"
#include "ckpt/journal.hpp"
#include "ckpt/spec_codec.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "common/version.hpp"
#include "cpu/perfetto_trace.hpp"
#include "cpu/trace.hpp"
#include "sim/observability.hpp"
#include "sim/parallel.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "sim/system.hpp"
#include "svc/client.hpp"
#include "tiered/func_stream.hpp"

using namespace virec;

namespace {

struct Options {
  sim::RunSpec spec;
  bool list = false;
  bool stats = false;
  bool trace = false;
  bool area = false;
  bool help = false;
  bool version = false;
  std::string connect_path;  // virec-simd socket; empty = run locally
  u32 trace_core = 0;
  bool json = false;
  bool cpi_stack = false;  // print the closed cycle-accounting table
  bool lint_stats = false; // stat-schema lint mode (CI)
  bool progress = false;   // JSON heartbeat lines on stderr
  double progress_secs = 1.0;
  std::string json_path;   // empty = stdout
  std::string trace_out;   // Perfetto trace file; empty = off
  u64 sample_interval = 0;
  // Tiered simulation (docs/performance.md): the values live in spec;
  // the *_set flags catch window/warmup options given without
  // --sample-windows.
  bool window_insts_set = false;
  bool warmup_insts_set = false;
  bool adaptive_warmup_set = false;
  bool warm_set_sample_set = false;
  bool sweep = false;
  u32 jobs = 0;            // 0 = hardware concurrency
  u64 checkpoint_every = 0;   // periodic snapshot interval (cycles)
  std::string checkpoint_out; // snapshot directory
  std::string restore_path;   // snapshot to resume a single run from
  std::string resume_path;    // sweep journal to resume a sweep from
  std::string replay_path;    // fuzzer repro file to replay and exit
  // Grid axes: in --sweep mode these accept comma-separated lists, so
  // they are captured raw and parsed once the mode is known.
  std::string workload_arg, scheme_arg, policy_arg;
  std::string threads_arg, ctx_arg, cores_arg;
};

void print_usage() {
  std::cout <<
      "virec-sim — near-memory multithreading simulator (ViReC reproduction)\n"
      "\n"
      "usage: virec-sim [options]\n"
      "  --workload NAME     kernel to run (default gather; see --list)\n"
      "  --scheme NAME       banked | software | prefetch-full |\n"
      "                      prefetch-exact | virec | nsf (default virec)\n"
      "  --policy NAME       plru | lru | fifo | random | mrt-plru |\n"
      "                      mrt-lru | lrc (default lrc)\n"
      "  --threads N         hardware threads per core (default 8)\n"
      "  --cores N           near-memory processors (default 1)\n"
      "  --ctx F             context fraction stored on chip (default 0.8)\n"
      "  --regs N            explicit physical register count\n"
      "  --iters N           inner iterations per thread (default 256)\n"
      "  --elements N        data set elements (default 65536)\n"
      "  --stride N          stride kernel: element stride (default 8)\n"
      "  --window N          gather_local: locality window (default 512)\n"
      "  --dcache-bytes N    override dcache capacity\n"
      "  --dcache-latency N  override dcache hit latency\n"
      "  --group-spill       enable the group-spill extension\n"
      "  --switch-prefetch   enable the switch-prefetch extension\n"
      "  --seed N            workload RNG seed (default 42)\n"
      "  --trace             print a pipeline trace (see --trace-core)\n"
      "  --trace-core N      core to trace with --trace (default 0)\n"
      "  --trace-out FILE    write a Perfetto/Chrome trace-event JSON\n"
      "                      file covering every core\n"
      "  --json[=FILE]       emit the run report as JSON (stdout or FILE);\n"
      "                      enables histogram/distribution collection\n"
      "  --sample-interval N record a time-series sample every N cycles\n"
      "                      (reported in the JSON time_series section;\n"
      "                      with --trace-out, also emits Perfetto\n"
      "                      counter tracks per core: CPI stack, IPC,\n"
      "                      MSHRs in flight, store-queue depth, ready\n"
      "                      threads)\n"
      "  --cpi-stack         print the closed cycle-accounting table\n"
      "                      (every cycle attributed to one bucket;\n"
      "                      single-run only, docs/observability.md)\n"
      "  --progress[=SECS]   emit a JSON heartbeat line on stderr every\n"
      "                      SECS seconds (default 1) of wall time —\n"
      "                      cycle, IPC, top stall bucket, skip\n"
      "                      efficiency and ETA for a single run;\n"
      "                      points done/total for a sweep\n"
      "  --lint-stats        stat-schema lint: build every scheme and\n"
      "                      fail (exit 1) if any registered stat lacks\n"
      "                      a description; used by CI\n"
      "  --stats             dump every component counter\n"
      "  --area              print the area/delay report for this config\n"
      "  --max-cycles N      watchdog: abort (naming the stuck core/\n"
      "                      thread) after N cycles\n"
      "  --sample-windows N  SMARTS-style sampled measurement: fast-\n"
      "                      forward functionally between N systematic\n"
      "                      measurement windows and report an estimated\n"
      "                      IPC with a confidence interval\n"
      "                      (docs/performance.md)\n"
      "  --window-insts K    measured instructions per window (default\n"
      "                      10000; needs --sample-windows)\n"
      "  --warmup-insts W    detailed warm-up instructions before each\n"
      "                      window (default 2000; needs\n"
      "                      --sample-windows)\n"
      "  --functional-ff     run the whole program through the\n"
      "                      functional tier (no cycle estimate; useful\n"
      "                      with --check to validate the functional\n"
      "                      tier against the oracle)\n"
      "  --adaptive-warmup F with --sample-windows: let each window\n"
      "                      extend its warm-up by up to F-1 further\n"
      "                      chunks of W instructions while the dcache\n"
      "                      miss rate is still converging (default 1 =\n"
      "                      fixed warm-up; docs/performance.md)\n"
      "  --warm-set-sample K with --sample-windows: only warm dcache\n"
      "                      sets with index % K == 0 between windows\n"
      "                      (K a power of two; default 1 = exact).\n"
      "                      Faster but APPROXIMATE — estimates are no\n"
      "                      longer bit-identical to K=1\n"
      "  --stream-store DIR  persist recorded functional streams in DIR\n"
      "                      (<identity>.vfs) and reuse them across\n"
      "                      processes; sampled sweep points sharing a\n"
      "                      functional identity already share one\n"
      "                      stream in-process (stream_* stats go to\n"
      "                      stderr after sampled runs/sweeps)\n"
      "  --no-stream-reuse   build a private functional stream per\n"
      "                      sampled point instead of sharing per\n"
      "                      identity (estimates are bit-identical\n"
      "                      either way; this is a debugging knob)\n"
      "  --no-skip           disable event-driven cycle skipping and\n"
      "                      step every cycle. Results are bit-identical\n"
      "                      either way (docs/performance.md); use this\n"
      "                      only to bisect the simulator itself\n"
      "  --pdes-jobs N       partition the simulated cores across N\n"
      "                      worker threads (conservative PDES,\n"
      "                      docs/performance.md). Results stay bit-\n"
      "                      identical to the serial loop; like\n"
      "                      --no-skip this is purely a simulator-speed\n"
      "                      knob. Local runs only (ignored by --check\n"
      "                      and single-core systems)\n"
      "  --relaxed-sync      with --pdes-jobs: let partitions race\n"
      "                      within one crossbar round trip instead of\n"
      "                      synchronizing exactly. Faster but NOT\n"
      "                      deterministic — never use for recorded\n"
      "                      experiments\n"
      "  --check             run the lockstep reference oracle and hard\n"
      "                      invariants alongside the simulation; abort\n"
      "                      with a divergence report on any mismatch\n"
      "                      (docs/correctness.md)\n"
      "  --replay FILE       replay a virec-fuzz repro file under the\n"
      "                      oracle and exit (0 = clean, 1 = diverged)\n"
      "  --checkpoint-every N  write a snapshot every N cycles (needs\n"
      "                      --checkpoint-out; single-run only)\n"
      "  --checkpoint-out DIR  directory for ckpt-<cycle>.vckpt files\n"
      "  --restore FILE      restore a snapshot and continue the run\n"
      "                      (config must match; single-run only)\n"
      "  --resume FILE       journal completed sweep points to FILE and\n"
      "                      skip points already recorded in it (so a\n"
      "                      killed sweep continues where it stopped;\n"
      "                      needs --sweep)\n"
      "  --sweep             run the full cross product of the grid axes\n"
      "                      (--workload/--scheme/--policy/--threads/\n"
      "                      --ctx/--cores accept comma-separated lists)\n"
      "                      and print a CSV table (or JSON with --json)\n"
      "  --jobs N            worker threads for --sweep (0 = all\n"
      "                      hardware threads, the default; 1 = serial)\n"
      "  --connect SOCKET    run points through a virec-simd daemon\n"
      "                      (docs/service.md) instead of simulating\n"
      "                      locally; cached points cost no simulation\n"
      "                      and output stays byte-identical. Works for\n"
      "                      plain single runs and --sweep; local-\n"
      "                      inspection flags (--trace/--stats/--json\n"
      "                      single-run reports/...) stay local-only\n"
      "  --list              list workloads and exit\n"
      "  --version           print build provenance and exit\n";
}

/// Strict numeric parsing: the whole value must be consumed, so
/// "--threads 8x" is an error instead of silently parsing as 8.
u64 parse_u64(const std::string& flag, const std::string& v) {
  errno = 0;
  char* end = nullptr;
  const u64 out = std::strtoull(v.c_str(), &end, 0);
  if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE) {
    throw std::invalid_argument(flag + ": invalid number '" + v + "'");
  }
  return out;
}

double parse_double(const std::string& flag, const std::string& v) {
  errno = 0;
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE) {
    throw std::invalid_argument(flag + ": invalid number '" + v + "'");
  }
  return out;
}

std::vector<std::string> split_csv(const std::string& flag,
                                   const std::string& v) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= v.size()) {
    const std::size_t comma = v.find(',', start);
    const std::string item = v.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (item.empty()) {
      throw std::invalid_argument(flag + ": empty list item in '" + v + "'");
    }
    out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty()) {
    throw std::invalid_argument(flag + " needs a value");
  }
  return out;
}

/// Non-sweep mode: the axis flags must be single values, not lists.
std::string single_value(const std::string& flag, const std::string& v) {
  if (v.find(',') != std::string::npos) {
    throw std::invalid_argument(flag + ": list '" + v +
                                "' is only valid with --sweep");
  }
  return v;
}

bool parse(int argc, char** argv, Options& opt) {
  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument(arg + " needs a value");
      }
      return args[++i];
    };
    auto u64_value = [&]() { return parse_u64(arg, value()); };
    if (arg == "--help" || arg == "-h") opt.help = true;
    else if (arg == "--version") opt.version = true;
    else if (arg == "--connect") opt.connect_path = value();
    else if (arg == "--list") opt.list = true;
    else if (arg == "--stats") opt.stats = true;
    else if (arg == "--trace") opt.trace = true;
    else if (arg == "--area") opt.area = true;
    else if (arg == "--sweep") opt.sweep = true;
    else if (arg == "--jobs") opt.jobs = static_cast<u32>(u64_value());
    else if (arg == "--group-spill") opt.spec.group_spill = true;
    else if (arg == "--switch-prefetch") opt.spec.switch_prefetch = true;
    else if (arg == "--workload") opt.workload_arg = value();
    else if (arg == "--scheme") opt.scheme_arg = value();
    else if (arg == "--policy") opt.policy_arg = value();
    else if (arg == "--threads") opt.threads_arg = value();
    else if (arg == "--cores") opt.cores_arg = value();
    else if (arg == "--ctx") opt.ctx_arg = value();
    else if (arg == "--regs")
      opt.spec.phys_regs = static_cast<u32>(u64_value());
    else if (arg == "--iters") opt.spec.params.iters_per_thread = u64_value();
    else if (arg == "--elements") opt.spec.params.elements = u64_value();
    else if (arg == "--stride") opt.spec.params.stride = u64_value();
    else if (arg == "--window")
      opt.spec.params.locality_window = u64_value();
    else if (arg == "--dcache-bytes")
      opt.spec.dcache_bytes = static_cast<u32>(u64_value());
    else if (arg == "--dcache-latency")
      opt.spec.dcache_latency = static_cast<u32>(u64_value());
    else if (arg == "--seed") opt.spec.params.seed = u64_value();
    else if (arg == "--max-cycles") opt.spec.max_cycles = u64_value();
    else if (arg == "--no-skip") opt.spec.no_skip = true;
    else if (arg == "--pdes-jobs")
      opt.spec.pdes_jobs = static_cast<u32>(u64_value());
    else if (arg == "--relaxed-sync") opt.spec.relaxed_sync = true;
    else if (arg == "--sample-windows")
      opt.spec.sample_windows = static_cast<u32>(u64_value());
    else if (arg == "--window-insts") {
      opt.spec.window_insts = u64_value();
      opt.window_insts_set = true;
    }
    else if (arg == "--warmup-insts") {
      opt.spec.warmup_insts = u64_value();
      opt.warmup_insts_set = true;
    }
    else if (arg == "--functional-ff") opt.spec.functional_ff = true;
    else if (arg == "--adaptive-warmup") {
      opt.spec.adaptive_warmup = static_cast<u32>(u64_value());
      opt.adaptive_warmup_set = true;
    }
    else if (arg == "--warm-set-sample") {
      opt.spec.warm_set_sample = static_cast<u32>(u64_value());
      opt.warm_set_sample_set = true;
    }
    else if (arg == "--stream-store") opt.spec.stream_dir = value();
    else if (arg == "--no-stream-reuse") opt.spec.stream_reuse = false;
    else if (arg == "--checkpoint-every") opt.checkpoint_every = u64_value();
    else if (arg == "--checkpoint-out") opt.checkpoint_out = value();
    else if (arg == "--restore") opt.restore_path = value();
    else if (arg == "--resume") opt.resume_path = value();
    else if (arg == "--check") opt.spec.check = true;
    else if (arg == "--replay") opt.replay_path = value();
    else if (arg == "--trace-core")
      opt.trace_core = static_cast<u32>(u64_value());
    else if (arg == "--trace-out") opt.trace_out = value();
    else if (arg == "--sample-interval") opt.sample_interval = u64_value();
    else if (arg == "--cpi-stack") opt.cpi_stack = true;
    else if (arg == "--lint-stats") opt.lint_stats = true;
    else if (arg == "--progress") opt.progress = true;
    else if (arg.rfind("--progress=", 0) == 0) {
      opt.progress = true;
      opt.progress_secs = parse_double("--progress", arg.substr(11));
      if (opt.progress_secs <= 0) {
        throw std::invalid_argument("--progress: interval must be > 0");
      }
    }
    else if (arg == "--json") opt.json = true;
    else if (arg.rfind("--json=", 0) == 0) {
      opt.json = true;
      opt.json_path = arg.substr(7);
      if (opt.json_path.empty()) {
        throw std::invalid_argument("--json=FILE needs a file name");
      }
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return false;
    }
  }
  if (!opt.sweep) {
    // Single-run mode: the axis flags behave exactly as before.
    if (!opt.workload_arg.empty()) {
      opt.spec.workload = single_value("--workload", opt.workload_arg);
    }
    if (!opt.scheme_arg.empty()) {
      opt.spec.scheme =
          sim::parse_scheme(single_value("--scheme", opt.scheme_arg));
    }
    if (!opt.policy_arg.empty()) {
      opt.spec.policy =
          core::parse_policy(single_value("--policy", opt.policy_arg));
    }
    if (!opt.threads_arg.empty()) {
      opt.spec.threads_per_core = static_cast<u32>(
          parse_u64("--threads", single_value("--threads", opt.threads_arg)));
    }
    if (!opt.cores_arg.empty()) {
      opt.spec.num_cores = static_cast<u32>(
          parse_u64("--cores", single_value("--cores", opt.cores_arg)));
    }
    if (!opt.ctx_arg.empty()) {
      opt.spec.context_fraction =
          parse_double("--ctx", single_value("--ctx", opt.ctx_arg));
    }
  }
  // Sampling-flag consistency (docs/performance.md); these hold in
  // both single-run and sweep mode.
  if ((opt.window_insts_set || opt.warmup_insts_set) &&
      opt.spec.sample_windows == 0) {
    throw std::invalid_argument(
        "--window-insts/--warmup-insts need --sample-windows");
  }
  if (opt.window_insts_set && opt.spec.window_insts == 0) {
    throw std::invalid_argument("--window-insts: must be > 0");
  }
  if ((opt.adaptive_warmup_set || opt.warm_set_sample_set ||
       !opt.spec.stream_dir.empty() || !opt.spec.stream_reuse) &&
      opt.spec.sample_windows == 0) {
    throw std::invalid_argument(
        "--adaptive-warmup/--warm-set-sample/--stream-store/"
        "--no-stream-reuse tune sampled measurement and need "
        "--sample-windows");
  }
  if (opt.adaptive_warmup_set && opt.spec.adaptive_warmup == 0) {
    throw std::invalid_argument("--adaptive-warmup: must be >= 1");
  }
  if (opt.warm_set_sample_set &&
      (opt.spec.warm_set_sample == 0 ||
       (opt.spec.warm_set_sample & (opt.spec.warm_set_sample - 1)) != 0)) {
    throw std::invalid_argument(
        "--warm-set-sample: must be a power of two >= 1");
  }
  if (opt.spec.sample_windows > 0 && opt.spec.functional_ff) {
    throw std::invalid_argument(
        "--functional-ff runs the whole program functionally and cannot "
        "be combined with --sample-windows");
  }
  if (opt.spec.sample_windows > 0 && opt.spec.check) {
    throw std::invalid_argument(
        "--check validates the full detailed model, which sampling "
        "deliberately skips most of; use --functional-ff --check to "
        "validate the functional tier");
  }
  if (opt.spec.relaxed_sync && opt.spec.pdes_jobs == 0) {
    throw std::invalid_argument("--relaxed-sync needs --pdes-jobs");
  }
  if (opt.spec.pdes_jobs > 0 &&
      (opt.spec.sample_windows > 0 || opt.spec.functional_ff)) {
    throw std::invalid_argument(
        "--pdes-jobs parallelizes the detailed run loop and cannot be "
        "combined with --sample-windows/--functional-ff (the tiered "
        "runner drives the cores itself)");
  }
  return true;
}

/// Build the sweep grid from the comma-separated axis flags. Axes the
/// user did not give stay at the base spec's single value.
sim::Sweep build_sweep(const Options& opt) {
  sim::Sweep sweep;
  sweep.base() = opt.spec;
  if (!opt.workload_arg.empty()) {
    sweep.over_workloads(split_csv("--workload", opt.workload_arg));
  }
  if (!opt.scheme_arg.empty()) {
    std::vector<sim::Scheme> schemes;
    for (const std::string& s : split_csv("--scheme", opt.scheme_arg)) {
      schemes.push_back(sim::parse_scheme(s));
    }
    sweep.over_schemes(std::move(schemes));
  }
  if (!opt.policy_arg.empty()) {
    std::vector<core::PolicyKind> policies;
    for (const std::string& p : split_csv("--policy", opt.policy_arg)) {
      policies.push_back(core::parse_policy(p));
    }
    sweep.over_policies(std::move(policies));
  }
  if (!opt.threads_arg.empty()) {
    std::vector<u32> threads;
    for (const std::string& t : split_csv("--threads", opt.threads_arg)) {
      threads.push_back(static_cast<u32>(parse_u64("--threads", t)));
    }
    sweep.over_threads(std::move(threads));
  }
  if (!opt.cores_arg.empty()) {
    std::vector<u32> cores;
    for (const std::string& c : split_csv("--cores", opt.cores_arg)) {
      cores.push_back(static_cast<u32>(parse_u64("--cores", c)));
    }
    sweep.over_cores(std::move(cores));
  }
  if (!opt.ctx_arg.empty()) {
    std::vector<double> fractions;
    for (const std::string& f : split_csv("--ctx", opt.ctx_arg)) {
      fractions.push_back(parse_double("--ctx", f));
    }
    sweep.over_context_fractions(std::move(fractions));
  }
  return sweep;
}

/// Shared by sweep and single-run --connect paths: dial the daemon,
/// run the grid remotely, and print the client-side source summary
/// (machine-greppable on stderr; CI asserts service_executed 0 on a
/// warm cache).
svc::ServiceClient::Outcome run_via_service(
    const Options& opt, const std::vector<sim::RunSpec>& grid) {
  svc::ServiceClient client(opt.connect_path);
  if (!client.connect()) {
    throw std::runtime_error("--connect: " + client.error());
  }
  std::function<void(std::size_t, std::size_t)> on_progress;
  if (opt.progress) {
    auto t0 = std::chrono::steady_clock::now();
    on_progress = [t0](std::size_t done, std::size_t total) {
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      std::cerr << "{\"type\": \"sweep\", \"done\": " << done
                << ", \"total\": " << total << ", \"wall_secs\": " << wall
                << "}\n";
    };
  }
  const svc::ServiceClient::Outcome outcome =
      client.run_sweep(grid, std::move(on_progress));
  std::cerr << "service_points " << grid.size() << "\n"
            << "service_executed " << outcome.executed << "\n"
            << "service_store_hits " << outcome.store_hits << "\n"
            << "service_dedup_hits " << outcome.dedup_hits << "\n"
            << "service_failed " << outcome.failed << "\n";
  return outcome;
}

/// Machine-greppable stream-cache summary on stderr after sampled
/// runs/sweeps (the CI smoke asserts stream_builds 0 on a warm
/// --stream-store, i.e. the functional tier was not paid again).
/// Suppressed under --json: consumers that merge the streams must
/// still parse stdout as a single JSON document.
void print_stream_stats() {
  const sim::StreamCache::Stats s = sim::StreamCache::instance().stats();
  std::cerr << "stream_builds " << s.built << "\n"
            << "stream_loads " << s.loaded << "\n"
            << "stream_mem_hits " << s.mem_hits << "\n";
}

int run_sweep_mode(const Options& opt) {
  if (opt.trace || !opt.trace_out.empty() || opt.sample_interval > 0 ||
      opt.stats || opt.area || opt.cpi_stack) {
    throw std::invalid_argument(
        "--trace/--trace-out/--sample-interval/--stats/--area/"
        "--cpi-stack are single-run options and cannot be combined "
        "with --sweep");
  }
  if (opt.checkpoint_every > 0 || !opt.checkpoint_out.empty() ||
      !opt.restore_path.empty()) {
    throw std::invalid_argument(
        "--checkpoint-every/--checkpoint-out/--restore are single-run "
        "options and cannot be combined with --sweep (use --resume to "
        "make a sweep resumable)");
  }
  if (!opt.connect_path.empty()) {
    if (!opt.resume_path.empty()) {
      throw std::invalid_argument(
          "--resume journals local sweeps; with --connect the daemon's "
          "result store already makes re-runs resumable");
    }
    const sim::Sweep sweep = build_sweep(opt);
    std::vector<sim::RunSpec> grid = sweep.specs();
    const svc::ServiceClient::Outcome outcome = run_via_service(opt, grid);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (!outcome.errors[i].empty()) {
        throw std::runtime_error("point " + std::to_string(i) +
                                 " failed on the daemon: " +
                                 outcome.errors[i]);
      }
    }
    std::vector<sim::SweepRecord> records;
    records.reserve(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      records.push_back(
          sim::SweepRecord{std::move(grid[i]), outcome.results[i]});
    }
    const sim::SweepResults results(std::move(records));
    if (opt.json) {
      if (opt.json_path.empty()) {
        results.write_json(std::cout);
      } else {
        std::ofstream out(opt.json_path);
        if (!out) throw std::runtime_error("cannot open " + opt.json_path);
        results.write_json(out);
        results.write_csv(std::cout);
      }
    } else {
      results.write_csv(std::cout);
    }
    return 0;
  }
  const sim::Sweep sweep = build_sweep(opt);
  std::unique_ptr<ckpt::SweepJournal> journal;
  if (!opt.resume_path.empty()) {
    journal = std::make_unique<ckpt::SweepJournal>(opt.resume_path);
    const std::size_t done = journal->load();
    std::cerr << "resume: " << done << " of " << sweep.size()
              << " point(s) already journalled in " << opt.resume_path
              << "\n";
  }
  sim::Sweep::SweepProgressFn on_point;
  if (opt.progress) {
    // Called from worker threads: one mutex serialises the stderr
    // lines. ETA extrapolates the observed completion rate.
    auto mu = std::make_shared<std::mutex>();
    const auto t0 = std::chrono::steady_clock::now();
    on_point = [mu, t0](std::size_t done, std::size_t total,
                        double point_secs) {
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const double eta =
          done == 0 ? 0.0
                    : wall * static_cast<double>(total - done) /
                          static_cast<double>(done);
      std::lock_guard<std::mutex> lock(*mu);
      std::cerr << "{\"type\": \"sweep\", \"done\": " << done
                << ", \"total\": " << total
                << ", \"point_secs\": " << point_secs
                << ", \"wall_secs\": " << wall << ", \"eta_secs\": " << eta
                << "}\n";
    };
  }
  const sim::SweepResults results =
      sweep.run(opt.jobs, journal.get(), std::move(on_point));
  if (opt.spec.sample_windows > 0 && !opt.json) print_stream_stats();
  if (opt.json) {
    if (opt.json_path.empty()) {
      results.write_json(std::cout);
    } else {
      std::ofstream out(opt.json_path);
      if (!out) throw std::runtime_error("cannot open " + opt.json_path);
      results.write_json(out);
      results.write_csv(std::cout);
    }
  } else {
    results.write_csv(std::cout);
  }
  return 0;
}

/// --lint-stats: build (and briefly run) a tiny system per scheme so
/// every component type registers its stats, then require a non-empty
/// description on each registered scalar, histogram and distribution.
/// CI runs this so a counter can't land without documentation.
int run_lint_stats() {
  const char* schemes[] = {"banked",         "software", "prefetch-full",
                           "prefetch-exact", "virec",    "nsf"};
  int missing = 0;
  for (const char* scheme : schemes) {
    sim::RunSpec spec;
    spec.workload = "gather";
    spec.scheme = sim::parse_scheme(scheme);
    spec.params.iters_per_thread = 1;
    spec.params.elements = 256;
    const workloads::Workload& workload =
        workloads::find_workload(spec.workload);
    sim::System system(sim::build_config(spec), workload, spec.params);
    // Run so stats created lazily on first inc() are registered too.
    system.run();
    for (const Stat& s : system.registry().all_scalars()) {
      if (!s.desc.empty()) continue;
      std::cerr << "lint: stat without description: " << scheme << ": "
                << s.name << "\n";
      ++missing;
    }
    for (const StatRegistry::Entry& entry : system.registry().entries()) {
      for (const auto& h : entry.set->histograms()) {
        if (h->desc().empty()) {
          std::cerr << "lint: histogram without description: " << scheme
                    << ": " << h->name() << "\n";
          ++missing;
        }
      }
      for (const auto& d : entry.set->distributions()) {
        if (d->desc().empty()) {
          std::cerr << "lint: distribution without description: " << scheme
                    << ": " << d->name() << "\n";
          ++missing;
        }
      }
    }
  }
  if (missing > 0) {
    std::cerr << "lint: " << missing << " stat(s) lack a description\n";
    return 1;
  }
  std::cout << "lint: every registered stat carries a description\n";
  return 0;
}

/// Single-run tiered mode (--sample-windows / --functional-ff):
/// alternate the functional fast-forward tier with cycle-accurate
/// measurement windows and report the sampled estimate
/// (docs/performance.md).
int run_tiered_mode(const Options& opt) {
  if (opt.trace || !opt.trace_out.empty() || opt.sample_interval > 0) {
    throw std::invalid_argument(
        "--trace/--trace-out/--sample-interval follow every detailed "
        "cycle and cannot be combined with --sample-windows/"
        "--functional-ff");
  }
  if (opt.checkpoint_every > 0 || !opt.checkpoint_out.empty() ||
      !opt.restore_path.empty()) {
    throw std::invalid_argument(
        "--checkpoint-every/--checkpoint-out/--restore snapshot full "
        "detailed runs and cannot be combined with --sample-windows/"
        "--functional-ff");
  }
  if (opt.spec.num_cores != 1) {
    throw std::invalid_argument(
        "--sample-windows/--functional-ff require --cores 1");
  }
  if (opt.cpi_stack && opt.spec.functional_ff) {
    throw std::invalid_argument(
        "--cpi-stack needs measurement windows; --functional-ff runs "
        "no detailed cycles to account");
  }

  const workloads::Workload& workload =
      workloads::find_workload(opt.spec.workload);
  const sim::SystemConfig config = sim::build_config(opt.spec);
  if (opt.area) {
    const area::CoreAreaReport report = area::core_area_for(config);
    std::cout << "area.label " << report.label << "\n"
              << "area.total_mm2 " << report.total_mm2 << "\n"
              << "area.rf_mm2 " << report.rf_mm2 << "\n"
              << "area.tag_mm2 " << report.tag_mm2 << "\n"
              << "area.rf_delay_ns " << report.rf_delay_ns << "\n";
  }

  sim::System system(config, workload, opt.spec.params);
  if (opt.json) system.set_detailed_stats(true);
  if (opt.spec.check) system.enable_check();

  sim::TieredConfig tiered;
  tiered.sample_windows = opt.spec.sample_windows;
  tiered.window_insts = opt.spec.window_insts;
  tiered.warmup_insts = opt.spec.warmup_insts;
  tiered.functional_ff = opt.spec.functional_ff;
  tiered.adaptive_warmup = opt.spec.adaptive_warmup;
  tiered.warm_set_sample = opt.spec.warm_set_sample;
  tiered.stream_key =
      opt.spec.stream_reuse ? ckpt::functional_stream_hash(opt.spec) : 0;
  tiered.stream_dir = opt.spec.stream_dir;
  tiered.validate();
  sim::TieredRunner runner(system, tiered);
  if (opt.progress) {
    runner.set_progress(
        [](const sim::TieredProgress& p) {
          std::cerr << "{\"type\": \"tiered\", \"tier\": \"" << p.tier
                    << "\", \"insts_done\": " << p.insts_done
                    << ", \"insts_total\": " << p.insts_total
                    << ", \"window\": " << p.window
                    << ", \"windows\": " << p.windows
                    << ", \"wall_secs\": " << p.wall_secs
                    << ", \"eta_secs\": " << p.eta_secs << "}\n";
        },
        opt.progress_secs);
  }
  const sim::TieredResult result = runner.run();

  const bool sampled = opt.spec.sample_windows > 0;
  if (sampled && !opt.json) print_stream_stats();
  // Achieved speedup estimate: the wall time an all-detailed run would
  // have taken at the measured detailed simulation rate, over the
  // actual (functional + detailed) wall time.
  const double wall_total =
      result.wall_secs_functional + result.wall_secs_detailed;
  double est_speedup = 0.0;
  if (result.insts_detailed > 0 && result.wall_secs_detailed > 0 &&
      wall_total > 0) {
    const double detailed_rate =
        static_cast<double>(result.insts_detailed) / result.wall_secs_detailed;
    est_speedup =
        static_cast<double>(result.total_insts) / detailed_rate / wall_total;
  }

  if (opt.json) {
    auto write = [&](std::ostream& os) {
      JsonWriter w(os);
      w.begin_object();
      w.key("config");
      w.begin_object();
      w.kv("workload", workload.name());
      w.kv("scheme", sim::scheme_name(opt.spec.scheme));
      w.kv("policy", core::policy_name(opt.spec.policy));
      w.kv("cores", opt.spec.num_cores);
      w.kv("threads_per_core", opt.spec.threads_per_core);
      w.kv("phys_regs", sim::spec_phys_regs(opt.spec));
      w.kv("sample_windows", opt.spec.sample_windows);
      w.kv("window_insts", opt.spec.window_insts);
      w.kv("warmup_insts", opt.spec.warmup_insts);
      w.kv("adaptive_warmup", opt.spec.adaptive_warmup);
      w.kv("warm_set_sample", opt.spec.warm_set_sample);
      w.kv("functional_ff", opt.spec.functional_ff);
      w.end_object();
      w.key("tiered");
      w.begin_object();
      w.kv("total_insts", result.total_insts);
      w.kv("insts_functional", result.insts_functional);
      w.kv("insts_detailed", result.insts_detailed);
      w.kv("cpi_mean", result.cpi_mean);
      w.kv("cpi_ci_half", result.cpi_ci_half);
      w.kv("est_cycles", result.est_cycles);
      w.kv("est_ipc", result.est_ipc);
      w.kv("est_ipc_lo", result.est_ipc_lo);
      w.kv("est_ipc_hi", result.est_ipc_hi);
      w.kv("wall_secs_functional", result.wall_secs_functional);
      w.kv("wall_secs_detailed", result.wall_secs_detailed);
      w.kv("est_speedup", est_speedup);
      w.key("windows");
      w.begin_array();
      for (const sim::WindowStat& win : result.windows) {
        w.begin_object();
        w.kv("start_inst", win.start_inst);
        w.kv("insts", win.insts);
        w.kv("cycles", win.cycles);
        w.kv("cpi", win.cpi);
        w.key("cpi_stack");
        w.begin_object();
        for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
          w.kv(cycle_bucket_name(static_cast<CycleBucket>(b)),
               win.insts == 0
                   ? 0.0
                   : win.cpi_stack[b] / static_cast<double>(win.insts));
        }
        w.end_object();
        w.end_object();
      }
      w.end_array();
      w.end_object();
      w.key("result");
      w.begin_object();
      w.kv("check", result.full.check_ok ? "OK" : "FAIL");
      w.end_object();
      w.end_object();
      os << "\n";
    };
    if (opt.json_path.empty()) {
      write(std::cout);
    } else {
      std::ofstream out(opt.json_path);
      if (!out) throw std::runtime_error("cannot open " + opt.json_path);
      write(out);
    }
  }

  if (!opt.json || !opt.json_path.empty()) {
    std::cout << "workload " << workload.name() << "\n"
              << "scheme " << sim::scheme_name(opt.spec.scheme) << "\n"
              << "policy " << core::policy_name(opt.spec.policy) << "\n"
              << "cores " << opt.spec.num_cores << "\n"
              << "threads_per_core " << opt.spec.threads_per_core << "\n"
              << "phys_regs " << sim::spec_phys_regs(opt.spec) << "\n"
              << "tier " << (sampled ? "sampled" : "functional") << "\n"
              << "total_insts " << result.total_insts << "\n"
              << "insts_functional " << result.insts_functional << "\n"
              << "insts_detailed " << result.insts_detailed << "\n";
    if (sampled) {
      std::cout << "sample_windows " << opt.spec.sample_windows << "\n"
                << "window_insts " << opt.spec.window_insts << "\n"
                << "warmup_insts " << opt.spec.warmup_insts << "\n"
                << "adaptive_warmup " << opt.spec.adaptive_warmup << "\n"
                << "warm_set_sample " << opt.spec.warm_set_sample << "\n"
                << "cpi_mean " << result.cpi_mean << "\n"
                << "cpi_ci_half " << result.cpi_ci_half << "\n"
                << "est_cycles " << result.est_cycles << "\n"
                << "est_ipc " << result.est_ipc << "\n"
                << "est_ipc_lo " << result.est_ipc_lo << "\n"
                << "est_ipc_hi " << result.est_ipc_hi << "\n";
      for (std::size_t i = 0; i < result.windows.size(); ++i) {
        const sim::WindowStat& win = result.windows[i];
        const double ipc =
            win.cycles == 0 ? 0.0
                            : static_cast<double>(win.insts) /
                                  static_cast<double>(win.cycles);
        std::cout << "window " << i << " start_inst " << win.start_inst
                  << " insts " << win.insts << " cycles " << win.cycles
                  << " ipc " << ipc << "\n";
      }
    }
    std::cout << "wall_secs_functional " << result.wall_secs_functional
              << "\n"
              << "wall_secs_detailed " << result.wall_secs_detailed << "\n"
              << "est_speedup " << est_speedup << "\n"
              << "check " << (result.full.check_ok ? "OK" : "FAIL") << "\n";
  }

  if (opt.cpi_stack && sampled && !result.windows.empty()) {
    // Mean per-window CPI stack: each window's bucket deltas divided by
    // its measured instructions, averaged across windows. Shares sum to
    // 100% and the CPI column sums to cpi_mean.
    Table table({"bucket", "cpi", "share"});
    std::array<double, kNumCycleBuckets> mean{};
    double total = 0.0;
    for (const sim::WindowStat& win : result.windows) {
      if (win.insts == 0) continue;
      for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
        mean[b] += win.cpi_stack[b] / static_cast<double>(win.insts) /
                   static_cast<double>(result.windows.size());
      }
    }
    for (const double v : mean) total += v;
    for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
      table.add_row({cycle_bucket_name(static_cast<CycleBucket>(b)),
                     Table::fmt(mean[b]),
                     Table::fmt_pct(total == 0 ? 0 : mean[b] / total)});
    }
    table.add_row({"total", Table::fmt(total), Table::fmt_pct(1.0)});
    table.print(std::cout);
  }

  if (opt.stats && !opt.json) {
    for (const Stat& s : system.registry().all_scalars()) {
      std::cout << s.name << " " << s.value << "\n";
    }
  }
  if (!result.full.check_ok) {
    std::cerr << "CHECK FAILED: " << result.full.check_msg << "\n";
    return 1;
  }
  return 0;
}

/// Single run through a virec-simd daemon: the spec travels over the
/// wire, the result comes back bit-exact, and the standard text report
/// is printed. Flags that inspect the local System (traces, stats,
/// JSON reports, checkpoints) have nothing to inspect and are
/// rejected.
int run_connect_single(const Options& opt) {
  if (opt.trace || !opt.trace_out.empty() || opt.sample_interval > 0 ||
      opt.stats || opt.area || opt.cpi_stack || opt.json) {
    throw std::invalid_argument(
        "--trace/--trace-out/--sample-interval/--stats/--area/"
        "--cpi-stack/--json inspect the local simulation and cannot be "
        "combined with --connect (run the daemon-side sweep with "
        "--sweep --json instead)");
  }
  if (opt.checkpoint_every > 0 || !opt.checkpoint_out.empty() ||
      !opt.restore_path.empty()) {
    throw std::invalid_argument(
        "--checkpoint-every/--checkpoint-out/--restore snapshot local "
        "runs and cannot be combined with --connect");
  }
  if (opt.spec.sample_windows > 0 || opt.spec.functional_ff) {
    throw std::invalid_argument(
        "--sample-windows/--functional-ff report tiered estimates the "
        "service protocol does not carry; run them locally");
  }
  if (opt.spec.pdes_jobs > 0) {
    throw std::invalid_argument(
        "--pdes-jobs parallelizes the local run loop; the daemon "
        "schedules its own workers (drop the flag with --connect)");
  }
  // Validates the workload name before dialling the daemon.
  const workloads::Workload& workload =
      workloads::find_workload(opt.spec.workload);
  const svc::ServiceClient::Outcome outcome =
      run_via_service(opt, {opt.spec});
  if (!outcome.errors[0].empty()) {
    throw std::runtime_error("daemon run failed: " + outcome.errors[0]);
  }
  const sim::RunResult& result = outcome.results[0];
  std::cout << "workload " << workload.name() << "\n"
            << "scheme " << sim::scheme_name(opt.spec.scheme) << "\n"
            << "policy " << core::policy_name(opt.spec.policy) << "\n"
            << "cores " << opt.spec.num_cores << "\n"
            << "threads_per_core " << opt.spec.threads_per_core << "\n"
            << "phys_regs " << sim::spec_phys_regs(opt.spec) << "\n"
            << "cycles " << result.cycles << "\n"
            << "instructions " << result.instructions << "\n"
            << "ipc " << result.ipc << "\n"
            << "context_switches " << result.context_switches << "\n"
            << "rf_hit_rate " << result.rf_hit_rate << "\n"
            << "rf_fills " << result.rf_fills << "\n"
            << "rf_spills " << result.rf_spills << "\n"
            << "check " << (result.check_ok ? "OK" : "FAIL") << "\n";
  if (!result.check_ok) {
    std::cerr << "CHECK FAILED: " << result.check_msg << "\n";
    return 1;
  }
  return 0;
}

/// --replay FILE: re-run a fuzzer repro under the lockstep oracle.
int run_replay_mode(const Options& opt) {
  check::Repro repro = check::load_repro(opt.replay_path);
  // A repro recorded under --no-skip replays stepped; the flag on the
  // replay command line forces stepping either way.
  repro.spec.no_skip |= opt.spec.no_skip;
  std::cout << "replay " << opt.replay_path << "\n"
            << "scheme " << sim::scheme_name(repro.spec.scheme) << "\n"
            << "policy " << core::policy_name(repro.spec.policy) << "\n"
            << "phys_regs " << repro.spec.phys_regs << "\n"
            << "threads " << repro.spec.threads << "\n"
            << "instructions_in_program " << repro.program.size() << "\n";
  const check::HarnessResult result =
      check::run_checked(repro.program, repro.spec);
  std::cout << "cycles " << result.cycles << "\n"
            << "commits_checked " << result.commits_checked << "\n"
            << "replay_result "
            << (result.ok ? "OK" : (result.timed_out ? "TIMEOUT" : "FAIL"))
            << "\n";
  if (!result.ok) {
    std::cerr << (result.timed_out ? "replay timed out: " : "replay failed: ")
              << result.message << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.spec.params.iters_per_thread = 256;
  try {
    if (!parse(argc, argv, opt)) {
      print_usage();
      return 2;
    }
    if (opt.help) {
      print_usage();
      return 0;
    }
    if (opt.version) {
      std::cout << "virec-sim\n"
                << "provenance " << build::provenance() << "\n"
                << "report_schema " << sim::kReportSchemaVersion << "\n"
                << "spec_codec " << ckpt::kSpecCodecVersion << "\n";
      return 0;
    }
    if (opt.list) {
      for (const workloads::Workload* w : workloads::workload_registry()) {
        std::cout << w->name() << "\t(" << w->active_regs()
                  << " active regs)\t" << w->description() << "\n";
      }
      return 0;
    }
    if (opt.lint_stats) return run_lint_stats();
    if (!opt.replay_path.empty()) return run_replay_mode(opt);
    if (opt.sweep) return run_sweep_mode(opt);

    if (!opt.resume_path.empty()) {
      throw std::invalid_argument(
          "--resume journals sweep points and needs --sweep "
          "(to continue a single run from a snapshot, use --restore)");
    }
    if (!opt.connect_path.empty()) return run_connect_single(opt);
    if (opt.spec.sample_windows > 0 || opt.spec.functional_ff) {
      return run_tiered_mode(opt);
    }
    if ((opt.checkpoint_every > 0) != !opt.checkpoint_out.empty()) {
      throw std::invalid_argument(
          "--checkpoint-every and --checkpoint-out must be given "
          "together");
    }

    const workloads::Workload& workload =
        workloads::find_workload(opt.spec.workload);
    const sim::SystemConfig config = sim::build_config(opt.spec);

    if (opt.trace_core >= opt.spec.num_cores) {
      throw std::invalid_argument(
          "--trace-core " + std::to_string(opt.trace_core) +
          ": system has only " + std::to_string(opt.spec.num_cores) +
          " core(s)");
    }

    if (opt.area) {
      const area::CoreAreaReport report = area::core_area_for(config);
      std::cout << "area.label " << report.label << "\n"
                << "area.total_mm2 " << report.total_mm2 << "\n"
                << "area.rf_mm2 " << report.rf_mm2 << "\n"
                << "area.tag_mm2 " << report.tag_mm2 << "\n"
                << "area.rf_delay_ns " << report.rf_delay_ns << "\n";
    }

    sim::System system(config, workload, opt.spec.params);
    cpu::TextTracer tracer(std::cout);
    if (opt.trace) system.core(opt.trace_core).set_tracer(&tracer);

    // Perfetto trace: one shared writer, one sink per core (pipeline
    // events + register traffic). Takes precedence over --trace on a
    // core, since a core holds a single tracer.
    std::ofstream trace_file;
    std::unique_ptr<cpu::PerfettoTraceWriter> trace_writer;
    std::vector<std::unique_ptr<cpu::PerfettoTracer>> perfetto;
    if (!opt.trace_out.empty()) {
      trace_file.open(opt.trace_out);
      if (!trace_file) {
        throw std::runtime_error("cannot open trace file " + opt.trace_out);
      }
      trace_writer = std::make_unique<cpu::PerfettoTraceWriter>(trace_file);
      for (u32 c = 0; c < opt.spec.num_cores; ++c) {
        perfetto.push_back(std::make_unique<cpu::PerfettoTracer>(
            *trace_writer, c, opt.spec.threads_per_core));
        system.set_tracer(c, perfetto[c].get());
      }
    }

    if (opt.json) system.set_detailed_stats(true);
    if (opt.sample_interval > 0) {
      system.set_sample_interval(opt.sample_interval);
    }

    // Perfetto counter tracks ride the sampling grid: at every sample,
    // emit per-core series — the CPI stack (cycles per bucket within
    // the elapsed epoch), epoch IPC, and instantaneous MSHR / store-
    // queue / ready-thread occupancy.
    struct CounterState {
      std::array<double, kNumCycleBuckets> cpi{};
      u64 instructions = 0;
      Cycle cycle = 0;
    };
    auto counter_state = std::make_shared<std::vector<CounterState>>(
        opt.spec.num_cores);
    if (trace_writer && opt.sample_interval > 0) {
      system.set_sample_hook([&system, &opt, counter_state,
                              w = trace_writer.get()](const sim::Sample& s) {
        for (u32 c = 0; c < opt.spec.num_cores; ++c) {
          CounterState& st = (*counter_state)[c];
          const cpu::CgmtCore& core = system.core(c);
          const CycleAccount& acct = core.cycle_account();
          std::ostringstream stack;
          stack << "{";
          for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
            const double v = acct.bucket(static_cast<CycleBucket>(b));
            if (b != 0) stack << ", ";
            stack << '"' << cycle_bucket_name(static_cast<CycleBucket>(b))
                  << "\": " << v - st.cpi[b];
            st.cpi[b] = v;
          }
          stack << "}";
          w->counter_event("cpi stack", c, s.cycle, stack.str());
          const Cycle cycle = core.cycle();
          const u64 instructions = core.instructions();
          const double epoch_ipc =
              cycle > st.cycle
                  ? static_cast<double>(instructions - st.instructions) /
                        static_cast<double>(cycle - st.cycle)
                  : 0.0;
          st.cycle = cycle;
          st.instructions = instructions;
          std::ostringstream ipc;
          ipc << "{\"ipc\": " << epoch_ipc << "}";
          w->counter_event("ipc", c, s.cycle, ipc.str());
          std::ostringstream occ;
          occ << "{\"busy\": "
              << system.memory_system().dcache(c).outstanding_misses(s.cycle)
              << "}";
          w->counter_event("mshrs in flight", c, s.cycle, occ.str());
          std::ostringstream sq;
          sq << "{\"entries\": " << core.sq_occupancy(s.cycle) << "}";
          w->counter_event("store queue", c, s.cycle, sq.str());
          std::ostringstream ready;
          ready << "{\"ready\": " << core.runnable_threads(s.cycle) << "}";
          w->counter_event("ready threads", c, s.cycle, ready.str());
        }
      });
    }

    if (opt.progress) {
      system.set_progress(
          [](const sim::RunProgress& p) {
            // ETA against the watchdog budget: an upper bound, since
            // most runs finish well before max_cycles.
            const double eta =
                (p.max_cycles > 0 && p.cycle > 0 && p.wall_secs > 0)
                    ? p.wall_secs *
                          static_cast<double>(p.max_cycles - p.cycle) /
                          static_cast<double>(p.cycle)
                    : 0.0;
            std::cerr << "{\"type\": \"run\", \"cycle\": " << p.cycle
                      << ", \"instructions\": " << p.instructions
                      << ", \"ipc\": " << p.ipc << ", \"top_stall\": \""
                      << p.top_stall
                      << "\", \"top_stall_frac\": " << p.top_stall_frac
                      << ", \"skip_efficiency\": " << p.skip_efficiency
                      << ", \"wall_secs\": " << p.wall_secs
                      << ", \"eta_secs\": " << eta << "}\n";
          },
          opt.progress_secs);
    }
    if (opt.checkpoint_every > 0) {
      std::filesystem::create_directories(opt.checkpoint_out);
      system.set_checkpointing(opt.checkpoint_every, opt.checkpoint_out);
    }
    if (opt.spec.check) system.enable_check();
    if (opt.spec.pdes_jobs > 0) {
      system.set_pdes(opt.spec.pdes_jobs, opt.spec.relaxed_sync);
    }
    // Restore after all sinks are attached so the continued run traces
    // and samples exactly like the tail of an uninterrupted one.
    if (!opt.restore_path.empty()) system.restore(opt.restore_path);

    const sim::RunResult result = system.run();

    if (trace_writer) {
      for (u32 c = 0; c < opt.spec.num_cores; ++c) {
        perfetto[c]->flush_open_spans(system.core(c).cycle());
      }
      trace_writer->finish();
    }

    if (opt.json) {
      if (opt.json_path.empty()) {
        sim::write_json_report(std::cout, system, opt.spec, result,
                               opt.sample_interval);
      } else {
        std::ofstream out(opt.json_path);
        if (!out) {
          throw std::runtime_error("cannot open " + opt.json_path);
        }
        sim::write_json_report(out, system, opt.spec, result,
                               opt.sample_interval);
      }
    }

    // The human-readable report goes to stdout unless the JSON report
    // already owns it.
    if (!opt.json || !opt.json_path.empty()) {
      std::cout << "workload " << workload.name() << "\n"
                << "scheme " << sim::scheme_name(opt.spec.scheme) << "\n"
                << "policy " << core::policy_name(opt.spec.policy) << "\n"
                << "cores " << opt.spec.num_cores << "\n"
                << "threads_per_core " << opt.spec.threads_per_core << "\n"
                << "phys_regs " << sim::spec_phys_regs(opt.spec) << "\n"
                << "cycles " << result.cycles << "\n"
                << "instructions " << result.instructions << "\n"
                << "ipc " << result.ipc << "\n"
                << "context_switches " << result.context_switches << "\n"
                << "rf_hit_rate " << result.rf_hit_rate << "\n"
                << "rf_fills " << result.rf_fills << "\n"
                << "rf_spills " << result.rf_spills << "\n"
                << "check " << (result.check_ok ? "OK" : "FAIL") << "\n";
    }

    if (opt.cpi_stack) {
      // Closed cycle accounting: every simulated cycle of every core is
      // in exactly one bucket, so shares sum to 100% and the CPI column
      // sums to the run's overall CPI.
      Table table({"bucket", "cycles", "share", "cpi"});
      double total = 0.0;
      for (const double v : result.cpi_stack) total += v;
      for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
        const double v = result.cpi_stack[b];
        table.add_row(
            {cycle_bucket_name(static_cast<CycleBucket>(b)),
             Table::fmt(v, 0), Table::fmt_pct(total == 0 ? 0 : v / total),
             Table::fmt(result.instructions == 0
                            ? 0
                            : v / static_cast<double>(result.instructions))});
      }
      table.add_row({"total", Table::fmt(total, 0), Table::fmt_pct(1.0),
                     Table::fmt(result.instructions == 0
                                    ? 0
                                    : total / static_cast<double>(
                                                  result.instructions))});
      table.print(std::cout);
    }

    if (opt.stats && !opt.json) {
      for (const Stat& s : system.registry().all_scalars()) {
        std::cout << s.name << " " << s.value << "\n";
      }
    }
    if (!result.check_ok) {
      std::cerr << "CHECK FAILED: " << result.check_msg << "\n";
      return 1;
    }
    return 0;
  } catch (const check::CheckError& e) {
    std::cerr << "CHECK FAILED: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
