// virec-fuzz — differential program fuzzer for the simulator.
//
// Generates random programs (check::random_program, edge operands on),
// runs each one across every scheme x policy configuration under the
// lockstep reference oracle + hard invariants (check::run_checked), and
// on the first failure shrinks the program (drop-instruction and
// halve-iteration passes) and writes a standalone repro file replayable
// with `virec-sim --replay FILE`.
//
//   virec-fuzz --programs 200 --seed 1 --jobs 8
//   virec-fuzz --inject-tag-bug        # negative self-test (exit 0 if
//                                      # the corruption is caught)
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "check/harness.hpp"
#include "check/progen.hpp"
#include "check/repro.hpp"
#include "core/replacement_policy.hpp"
#include "sim/system_config.hpp"

using namespace virec;

namespace {

struct Options {
  u64 programs = 50;
  u64 seed = 1;        // seed of program 0; program i uses seed + i
  u32 body_len = 24;
  u32 loop_iters = 40;
  u32 threads = 2;
  u32 phys_regs = 6;
  u32 jobs = 0;        // 0 = hardware concurrency
  std::string out = "virec-fuzz-repro.txt";
  bool inject_tag_bug = false;
  bool no_skip = false;
  bool help = false;
};

void print_usage() {
  std::cout <<
      "virec-fuzz — differential fuzzer (oracle-checked, all schemes)\n"
      "\n"
      "usage: virec-fuzz [options]\n"
      "  --programs N     programs to generate (default 50)\n"
      "  --seed N         seed of the first program (default 1)\n"
      "  --body N         loop-body instructions per program (default 24)\n"
      "  --iters N        loop iterations per program (default 40)\n"
      "  --threads N      hardware threads in the harness (default 2)\n"
      "  --regs N         physical registers, virec/nsf (default 6)\n"
      "  --jobs N         worker threads (0 = all hardware threads)\n"
      "  --out FILE       repro file for a shrunk failure\n"
      "                   (default virec-fuzz-repro.txt)\n"
      "  --inject-tag-bug self-test: corrupt the ViReC tag store mid-run\n"
      "                   and exit 0 iff the check layer catches it\n"
      "  --no-skip        step every cycle instead of event-skipping\n"
      "                   quiet stretches (results are identical; this\n"
      "                   exists to bisect the skip layer itself)\n";
}

u64 parse_u64(const std::string& flag, const std::string& v) {
  errno = 0;
  char* end = nullptr;
  const u64 out = std::strtoull(v.c_str(), &end, 0);
  if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE) {
    throw std::invalid_argument(flag + ": invalid number '" + v + "'");
  }
  return out;
}

bool parse(int argc, char** argv, Options& opt) {
  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument(arg + " needs a value");
      }
      return args[++i];
    };
    auto u64_value = [&]() { return parse_u64(arg, value()); };
    if (arg == "--help" || arg == "-h") opt.help = true;
    else if (arg == "--programs") opt.programs = u64_value();
    else if (arg == "--seed") opt.seed = u64_value();
    else if (arg == "--body") opt.body_len = static_cast<u32>(u64_value());
    else if (arg == "--iters") opt.loop_iters = static_cast<u32>(u64_value());
    else if (arg == "--threads") opt.threads = static_cast<u32>(u64_value());
    else if (arg == "--regs") opt.phys_regs = static_cast<u32>(u64_value());
    else if (arg == "--jobs") opt.jobs = static_cast<u32>(u64_value());
    else if (arg == "--out") opt.out = value();
    else if (arg == "--inject-tag-bug") opt.inject_tag_bug = true;
    else if (arg == "--no-skip") opt.no_skip = true;
    else {
      std::cerr << "unknown option: " << arg << "\n";
      return false;
    }
  }
  return true;
}

/// Every configuration each program is checked under: the five
/// fixed-policy schemes plus ViReC under every replacement policy.
std::vector<check::HarnessSpec> build_configs(const Options& opt) {
  std::vector<check::HarnessSpec> configs;
  auto base = [&](sim::Scheme scheme) {
    check::HarnessSpec spec;
    spec.scheme = scheme;
    spec.threads = opt.threads;
    spec.phys_regs = opt.phys_regs;
    spec.no_skip = opt.no_skip;
    return spec;
  };
  configs.push_back(base(sim::Scheme::kBanked));
  configs.push_back(base(sim::Scheme::kSoftware));
  configs.push_back(base(sim::Scheme::kPrefetchFull));
  configs.push_back(base(sim::Scheme::kPrefetchExact));
  configs.push_back(base(sim::Scheme::kNSF));
  for (core::PolicyKind policy : core::all_policies()) {
    check::HarnessSpec spec = base(sim::Scheme::kViReC);
    spec.policy = policy;
    configs.push_back(spec);
  }
  return configs;
}

std::string config_name(const check::HarnessSpec& spec) {
  std::string name = sim::scheme_name(spec.scheme);
  if (spec.scheme == sim::Scheme::kViReC) {
    name += std::string("/") + core::policy_name(spec.policy);
  }
  return name;
}

struct Failure {
  bool found = false;
  u64 seed = 0;
  check::HarnessSpec spec;
  kasm::Program program;
  std::string message;
};

/// A run reproduces the bug only if the checker fired; a timeout is a
/// different (shrinker-induced) condition and must not be chased.
bool reproduces(const kasm::Program& program, const check::HarnessSpec& spec,
                std::string* message = nullptr) {
  const check::HarnessResult r = check::run_checked(program, spec);
  if (message != nullptr) *message = r.message;
  return !r.ok && !r.timed_out;
}

/// Greedy shrink: repeat drop-instruction and halve-iteration passes
/// until neither makes progress, re-checking that every accepted
/// candidate still fails the same configuration.
kasm::Program shrink(kasm::Program program, const check::HarnessSpec& spec) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (u64 i = 0; i < program.size(); ++i) {
      const kasm::Program candidate = check::drop_instruction(program, i);
      if (candidate.size() == 0) continue;
      if (reproduces(candidate, spec)) {
        program = candidate;
        progress = true;
        --i;  // the next instruction shifted into this slot
      }
    }
    for (;;) {
      const kasm::Program candidate = check::halve_loop_iters(program);
      if (candidate.size() == 0 || !reproduces(candidate, spec)) break;
      program = candidate;
      progress = true;
    }
  }
  return program;
}

int fuzz(const Options& opt) {
  const std::vector<check::HarnessSpec> configs = build_configs(opt);
  check::ProgenOptions gen;
  gen.body_len = opt.body_len;
  gen.loop_iters = opt.loop_iters;
  gen.edge_ops = true;

  std::atomic<u64> next{0};
  std::atomic<bool> stop{false};
  std::atomic<u64> done{0};
  std::mutex mu;
  Failure failure;

  auto worker = [&]() {
    for (;;) {
      const u64 index = next.fetch_add(1);
      if (index >= opt.programs || stop.load()) return;
      const u64 seed = opt.seed + index;
      const kasm::Program program = check::random_program(seed, gen);
      for (const check::HarnessSpec& spec : configs) {
        check::HarnessSpec run_spec = spec;
        run_spec.seed = seed;
        const check::HarnessResult r = check::run_checked(program, run_spec);
        if (r.ok) continue;
        if (r.timed_out) {
          std::lock_guard<std::mutex> lock(mu);
          std::cerr << "warning: seed " << seed << " timed out on "
                    << config_name(spec) << " (" << r.message << ")\n";
          continue;
        }
        std::lock_guard<std::mutex> lock(mu);
        if (!failure.found) {
          failure = Failure{true, seed, run_spec, program, r.message};
          stop.store(true);
        }
        return;
      }
      done.fetch_add(1);
    }
  };

  u32 jobs = opt.jobs != 0 ? opt.jobs : std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  std::vector<std::thread> threads;
  for (u32 j = 1; j < jobs; ++j) threads.emplace_back(worker);
  worker();
  for (std::thread& t : threads) t.join();

  if (!failure.found) {
    std::cout << "fuzz: " << done.load() << " program(s) x "
              << configs.size() << " config(s) clean (seeds " << opt.seed
              << ".." << (opt.seed + opt.programs - 1) << ")\n";
    return 0;
  }

  std::cerr << "fuzz: seed " << failure.seed << " FAILED on "
            << config_name(failure.spec) << ":\n  " << failure.message
            << "\n";
  std::cerr << "shrinking (" << failure.program.size()
            << " instructions)...\n";
  const kasm::Program shrunk = shrink(failure.program, failure.spec);
  std::cerr << "shrunk to " << shrunk.size() << " instruction(s)\n";

  std::ofstream out(opt.out);
  if (!out) {
    std::cerr << "error: cannot open " << opt.out << "\n";
    return 2;
  }
  out << check::write_repro(failure.spec, shrunk);
  std::cerr << "repro written to " << opt.out << "\n"
            << "replay with: virec-sim --replay " << opt.out << "\n";
  return 1;
}

int inject_tag_bug(const Options& opt) {
  check::ProgenOptions gen;
  gen.body_len = opt.body_len;
  gen.loop_iters = opt.loop_iters;
  gen.edge_ops = true;
  const kasm::Program program = check::random_program(opt.seed, gen);
  check::HarnessSpec spec;
  spec.threads = opt.threads;
  spec.phys_regs = opt.phys_regs;
  spec.seed = opt.seed;
  spec.no_skip = opt.no_skip;
  if (check::tag_bug_detected(program, spec)) {
    std::cout << "inject-tag-bug: corruption detected by the check layer\n";
    return 0;
  }
  std::cerr << "inject-tag-bug: corruption NOT detected\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    if (!parse(argc, argv, opt)) {
      print_usage();
      return 2;
    }
    if (opt.help) {
      print_usage();
      return 0;
    }
    if (opt.inject_tag_bug) return inject_tag_bug(opt);
    if (opt.programs == 0) {
      throw std::invalid_argument("--programs must be > 0");
    }
    return fuzz(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
