// Figure 1: performance-area trade-off for the gather kernel.
//
// Points: a single in-order core, the OoO comparator, banked CGMT cores
// with 4/8 threads, and ViReC cores at 40-100% context storage for 4/8
// threads. Performance is normalised to the single in-order core at
// equal total work; area comes from the analytical 45nm model.
#include "area/area_model.hpp"
#include "bench/bench_util.hpp"
#include "cpu/ooo_core.hpp"

using namespace virec;

namespace {

/// Total work: kTotalIters gather iterations, split across threads.
constexpr u64 kTotalIters = 2048;

bench::CachedRunner runner;

sim::RunSpec cgmt_spec(sim::Scheme scheme, u32 threads, double fraction) {
  sim::RunSpec spec;
  spec.workload = "gather";
  spec.scheme = scheme;
  spec.threads_per_core = threads;
  spec.context_fraction = fraction;
  spec.params = bench::default_params();
  spec.params.iters_per_thread = kTotalIters / threads;
  return spec;
}

Cycle run_cgmt(sim::Scheme scheme, u32 threads, double fraction) {
  return runner.cycles(cgmt_spec(scheme, threads, fraction));
}

/// The OoO anchor runs the whole gather sequentially on the simplified
/// dataflow core (2GHz in the paper; we report cycles at its clock and
/// scale to the 1GHz NMP time base).
double ooo_time_units() {
  const workloads::Workload& gather = workloads::find_workload("gather");
  workloads::WorkloadParams params = bench::default_params();
  params.iters_per_thread = kTotalIters;
  mem::MemSystemConfig mc;
  mc.dcache = mem::CacheConfig{.name = "dcache",
                               .size_bytes = 32 * 1024,
                               .assoc = 4,
                               .hit_latency = 4,
                               .mshrs = 32};
  mc.has_l2 = true;
  mem::MemorySystem ms(mc);
  gather.init_memory(ms.memory(), params, 1);
  const workloads::RegContext regs = gather.thread_regs(params, 0, 1);
  const kasm::Program program = gather.program(params);
  cpu::OooCore core(cpu::OooCoreConfig{}, ms, 0, program);
  for (u32 r = 0; r < isa::kNumAllocatableRegs; ++r) {
    core.regfile().write_reg(0, static_cast<isa::RegId>(r), regs[r]);
  }
  const Cycle cycles = core.run();
  // 2GHz core: halve the cycle count to express time in 1GHz units.
  return static_cast<double>(cycles) / 2.0;
}

}  // namespace

int main(int argc, char** argv) {
  runner.set_jobs(bench::parse_jobs(argc, argv));
  std::vector<sim::RunSpec> grid;
  grid.push_back(cgmt_spec(sim::Scheme::kBanked, 1, 1.0));
  for (u32 threads : {4u, 8u}) {
    grid.push_back(cgmt_spec(sim::Scheme::kBanked, threads, 1.0));
    for (double frac : {1.0, 0.8, 0.6, 0.4}) {
      grid.push_back(cgmt_spec(sim::Scheme::kViReC, threads, frac));
    }
  }
  runner.prefetch(grid);

  bench::print_header(
      "Figure 1 — performance-area trade-off (gather)",
      "Paper: OoO ~5.3x perf at ~19.1x area of one InO; banked CGMT better\n"
      "perf/area; ViReC matches banked at 100% ctx with ~40% less area and\n"
      "degrades gracefully at 80%/40% context.");

  struct Point {
    std::string label;
    double time;  // 1GHz cycles for the full job
    double area;
  };
  std::vector<Point> points;

  const Cycle ino = run_cgmt(sim::Scheme::kBanked, 1, 1.0);
  points.push_back({"InO x1", static_cast<double>(ino),
                    area::ino_core_area().total_mm2});
  points.push_back({"OoO (N1-class)", ooo_time_units(),
                    area::ooo_core_area().total_mm2});

  for (u32 threads : {4u, 8u}) {
    points.push_back(
        {"banked " + std::to_string(threads) + "T",
         static_cast<double>(run_cgmt(sim::Scheme::kBanked, threads, 1.0)),
         area::banked_core_area(threads).total_mm2});
    for (double frac : {1.0, 0.8, 0.6, 0.4}) {
      sim::RunSpec spec;
      spec.workload = "gather";
      spec.threads_per_core = threads;
      spec.context_fraction = frac;
      const u32 regs = sim::spec_phys_regs(spec);
      points.push_back(
          {"virec " + std::to_string(threads) + "T " +
               Table::fmt_pct(frac, 0) + " (" + std::to_string(regs) + "r)",
           static_cast<double>(run_cgmt(sim::Scheme::kViReC, threads, frac)),
           area::virec_core_area(regs).total_mm2});
    }
  }

  const double base_time = points[0].time;
  const double base_area = points[0].area;
  Table table({"configuration", "perf (x InO)", "area mm^2", "area (x InO)",
               "perf/area"});
  for (const Point& p : points) {
    const double perf = base_time / p.time;
    table.add_row({p.label, Table::fmt(perf, 2), Table::fmt(p.area, 2),
                   Table::fmt(p.area / base_area, 2),
                   Table::fmt(perf / (p.area / base_area), 2)});
  }
  table.print(std::cout);
  return 0;
}
