// Policy-bound study: how close does the implementable LRC policy get
// to Belady's clairvoyant optimum on the register access traces a CGMT
// processor produces?
//
// For each workload and RF size, the offline simulator (analysis/
// policy_sim) replays the interleaved access trace under OPT, LRU,
// FIFO and MRT-LRU, while the timing simulator supplies the online LRC
// hit rate for the matching configuration.
#include "analysis/policy_sim.hpp"
#include "bench/bench_util.hpp"

using namespace virec;

namespace {
constexpr u32 kThreads = 8;
constexpr u32 kAccessesPerEpisode = 14;  // ~5-6 instructions per episode

bench::CachedRunner runner;

sim::RunSpec spec_for(const char* name, double frac,
                      const workloads::WorkloadParams& params) {
  sim::RunSpec spec;
  spec.workload = name;
  spec.scheme = sim::Scheme::kViReC;
  spec.threads_per_core = kThreads;
  spec.context_fraction = frac;
  spec.params = params;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  runner.set_jobs(bench::parse_jobs(argc, argv));

  bench::print_header(
      "Policy bound — LRC vs Belady's OPT (8 threads)",
      "Section 4: LRC aims to evict the register used furthest in the\n"
      "future, 'similar to Belady's min'. Offline OPT/LRU/FIFO/MRT-LRU\n"
      "on the interleaved trace vs the online LRC hit rate.");

  workloads::WorkloadParams params = bench::default_params();
  params.iters_per_thread = 128;

  std::vector<sim::RunSpec> grid;
  for (const char* name : {"gather", "maebo", "spmv"}) {
    for (double frac : {0.4, 0.6, 0.8, 1.0}) {
      grid.push_back(spec_for(name, frac, params));
    }
  }
  runner.prefetch(grid);

  for (const char* name : {"gather", "maebo", "spmv"}) {
    const workloads::Workload& workload = workloads::find_workload(name);
    const auto trace = analysis::interleaved_trace(
        workload, params, kThreads, kAccessesPerEpisode);
    std::cout << "\n--- " << name << " (" << trace.size()
              << " accesses) ---\n";
    Table table({"RF entries", "ctx %", "OPT", "MRT-LRU", "LRU", "FIFO",
                 "LRC (online)"});
    for (double frac : {0.4, 0.6, 0.8, 1.0}) {
      const sim::RunSpec spec = spec_for(name, frac, params);
      const u32 rf = sim::spec_phys_regs(spec);
      const analysis::OfflineHitRates offline = analysis::offline_hit_rates(
          trace, rf, kThreads, kAccessesPerEpisode);
      const double lrc_online = runner.result(spec).rf_hit_rate;
      table.add_row({std::to_string(rf), Table::fmt_pct(frac, 0),
                     Table::fmt_pct(offline.opt, 1),
                     Table::fmt_pct(offline.mrt_lru, 1),
                     Table::fmt_pct(offline.lru, 1),
                     Table::fmt_pct(offline.fifo, 1),
                     Table::fmt_pct(lrc_online, 1)});
    }
    table.print(std::cout);
  }
  std::cout << "\n(The online LRC column includes pipeline effects —\n"
               " replayed flushed instructions, destination-only\n"
               " allocations — absent from the offline traces, so it can\n"
               " exceed offline MRT-LRU.)\n";
  return 0;
}
