// Feature ablation: quantifies each ViReC design choice DESIGN.md calls
// out by toggling it individually (full design -> one feature removed),
// plus the paper's two future-work extensions (group spills,
// switch-time prefetch) added on top.
//
// This is the experiment behind the Section 6.1 claim that ViReC's
// advantage over the NSF comes from "reduced RF misses from the LRC
// policy and lower register miss penalties from improvements like the
// BSI and register pinning".
#include <functional>
#include <map>

#include "bench/bench_util.hpp"
#include "sim/system.hpp"

using namespace virec;

namespace {

sim::RunResult run_point(const std::string& workload,
                         const std::function<void(core::ViReCConfig&)>& tweak) {
  sim::RunSpec spec;
  spec.workload = workload;
  spec.scheme = sim::Scheme::kViReC;
  spec.threads_per_core = 8;
  spec.context_fraction = 0.8;
  spec.params = bench::default_params();
  sim::SystemConfig config = sim::build_config(spec);
  tweak(config.virec);
  sim::System system(config, workloads::find_workload(workload), spec.params);
  const sim::RunResult result = system.run();
  if (!result.check_ok) throw std::runtime_error(result.check_msg);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const u32 jobs = bench::parse_jobs(argc, argv);

  bench::print_header(
      "Ablation — contribution of each ViReC feature (8 threads, 80% ctx)",
      "Each row removes ONE feature from the full design (or adds one\n"
      "future-work extension); values are slowdown vs the full design\n"
      "(>1.00 means the feature helps).");

  struct Variant {
    const char* label;
    std::function<void(core::ViReCConfig&)> tweak;
  };
  const std::vector<Variant> variants = {
      {"full design", [](core::ViReCConfig&) {}},
      {"- LRC (PLRU policy)",
       [](core::ViReCConfig& c) { c.policy = core::PolicyKind::kPLRU; }},
      {"- MRT (no thread bits)",
       [](core::ViReCConfig& c) { c.policy = core::PolicyKind::kLRU; }},
      {"- non-blocking BSI",
       [](core::ViReCConfig& c) { c.bsi.non_blocking = false; }},
      {"- dummy dest fill",
       [](core::ViReCConfig& c) { c.bsi.dummy_dest_fill = false; }},
      {"- line pinning",
       [](core::ViReCConfig& c) { c.bsi.pin_lines = false; }},
      {"- sysreg prefetch",
       [](core::ViReCConfig& c) { c.csl.sysreg_prefetch = false; }},
      {"+ group spills (future work)",
       [](core::ViReCConfig& c) { c.group_spill = true; }},
      {"+ switch prefetch (future work)",
       [](core::ViReCConfig& c) { c.switch_prefetch = true; }},
      {"+ both extensions",
       [](core::ViReCConfig& c) {
         c.group_spill = true;
         c.switch_prefetch = true;
       }},
  };

  const std::vector<const char*> kernels = {"gather", "maebo", "spmv",
                                            "stride"};
  std::vector<std::string> headers = {"variant"};
  for (const char* k : kernels) headers.emplace_back(k);
  headers.emplace_back("geomean");
  // CPI-stack columns (gather): how each ablated feature shifts cycles
  // between memory stalls and context-switch loss.
  headers.emplace_back("mem cpi");
  headers.emplace_back("sw cpi");
  Table table(headers);

  // Every (variant, kernel) point is an independent simulation; run
  // the whole grid on the worker pool, then format from the flat
  // result vector (row-major: variants x kernels).
  std::vector<std::function<sim::RunResult()>> tasks;
  for (const Variant& variant : variants) {
    for (const char* k : kernels) {
      tasks.emplace_back([k, tweak = variant.tweak] {
        return run_point(k, tweak);
      });
    }
  }
  const std::vector<sim::RunResult> results =
      sim::run_tasks(std::move(tasks), jobs);

  // Row 0 is the full design: the baseline each slowdown is against.
  std::map<std::string, Cycle> full;
  for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
    full[kernels[ki]] = results[ki].cycles;
  }
  for (std::size_t vi = 0; vi < variants.size(); ++vi) {
    std::vector<std::string> row = {variants[vi].label};
    std::vector<double> rel;
    for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
      const Cycle cycles = results[vi * kernels.size() + ki].cycles;
      const double slowdown =
          static_cast<double>(cycles) / static_cast<double>(full[kernels[ki]]);
      rel.push_back(slowdown);
      row.push_back(Table::fmt(slowdown, 3));
    }
    row.push_back(Table::fmt(geomean(rel), 3));
    // kernels[0] is gather: the row-major index of its result is the
    // start of this variant's block.
    const sim::RunResult& gather = results[vi * kernels.size()];
    row.push_back(Table::fmt(bench::mem_stall_cpi(gather), 2));
    row.push_back(Table::fmt(bench::switch_cpi(gather), 2));
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "(NSF = all of rows 2,4,5,6,7 removed at once; see fig09)\n";
  return 0;
}
