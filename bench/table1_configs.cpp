// Table 1: the simulated processor configurations. Prints the
// parameters actually instantiated by this repository side by side with
// the paper's values.
#include "area/area_model.hpp"
#include "bench/bench_util.hpp"

using namespace virec;

int main() {
  bench::print_header("Table 1 — performance simulation parameters",
                      "Paper: 1GHz single-issue NMP cores, 32kB icache, 8kB "
                      "dcache, no L2,\nDDR5_6400 (2ch, tRP-tCL-tRCD "
                      "14-14-14); OoO: 8-wide, 224 ROB, L2 1MB");

  const sim::SystemConfig nmp = sim::SystemConfig::nmp_default();
  Table table({"parameter", "this repo", "paper"});
  table.add_row({"NMP issue width", "1", "1"});
  table.add_row({"NMP store queue", std::to_string(nmp.core.sq_entries), "5"});
  table.add_row({"icache", std::to_string(nmp.mem.icache.size_bytes / 1024) +
                               "kB/" + std::to_string(nmp.mem.icache.assoc) +
                               "-way/" +
                               std::to_string(nmp.mem.icache.hit_latency) +
                               "cyc",
                 "32kB/4-way/2cyc"});
  table.add_row({"dcache", std::to_string(nmp.mem.dcache.size_bytes / 1024) +
                               "kB/" + std::to_string(nmp.mem.dcache.assoc) +
                               "-way/" +
                               std::to_string(nmp.mem.dcache.hit_latency) +
                               "cyc",
                 "8kB/4-way/2cyc"});
  table.add_row({"dcache MSHRs", std::to_string(nmp.mem.dcache.mshrs), "24"});
  table.add_row({"DRAM channels", std::to_string(nmp.mem.dram.channels), "2"});
  table.add_row({"tRP-tCL-tRCD", std::to_string(nmp.mem.dram.t_rp) + "-" +
                                     std::to_string(nmp.mem.dram.t_cl) + "-" +
                                     std::to_string(nmp.mem.dram.t_rcd),
                 "14-14-14"});
  table.add_row({"banked core", "32 regs/bank, 1 bank/thread",
                 "8 banks 32/32 Int/FP"});
  table.add_row({"ViReC RF", "24-120 regs (per-config)", "24-120 regs"});
  table.add_row({"ViReC T/C/A bits", "3/1/3", "3/1/3"});
  table.add_row({"OoO width/ROB/LQ/SQ", "8/224/113/120", "8/224/113/120"});
  table.add_row({"OoO L2", "1MB/8-way/12cyc + stride pf deg 8",
                 "1MB/8-way/12cyc + stride pf deg 8"});
  table.print(std::cout);

  std::cout << "\nArea model anchors (45nm, Section 6.2):\n";
  Table area({"core", "area mm^2", "RF delay ns"});
  for (const auto& report :
       {area::ino_core_area(), area::banked_core_area(8, 64),
        area::banked_core_area(16, 64), area::virec_core_area(64),
        area::ooo_core_area()}) {
    area.add_row({report.label, Table::fmt(report.total_mm2, 2),
                  Table::fmt(report.rf_delay_ns, 3)});
  }
  area.print(std::cout);
  return 0;
}
