// Figure 10: performance-per-register trade-off for gather.
//
// Sweeps the number of scheduled threads; for each thread count plots
// ViReC at 40/60/80/100% context storage plus a banked configuration.
// "Performance" is total work over cycles, divided by physical
// registers.
#include "bench/bench_util.hpp"

using namespace virec;

namespace {
constexpr u64 kTotalIters = 2048;

bench::CachedRunner runner;

sim::RunSpec spec_for(u32 threads, double frac) {
  sim::RunSpec spec;
  spec.workload = "gather";
  spec.threads_per_core = threads;
  spec.params = bench::default_params();
  spec.params.iters_per_thread = kTotalIters / threads;
  if (frac < 0) {
    spec.scheme = sim::Scheme::kBanked;
  } else {
    spec.scheme = sim::Scheme::kViReC;
    spec.context_fraction = frac;
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  runner.set_jobs(bench::parse_jobs(argc, argv));
  std::vector<sim::RunSpec> grid;
  for (u32 threads : {2u, 4u, 6u, 8u, 10u}) {
    for (double frac : {0.4, 0.6, 0.8, 1.0, -1.0}) {
      grid.push_back(spec_for(threads, frac));
    }
  }
  runner.prefetch(grid);

  bench::print_header(
      "Figure 10 — performance per register (gather)",
      "Paper: with few threads (latency not hidden) small contexts cost\n"
      "little; once latency is hidden, extra per-thread context beats\n"
      "extra threads. ViReC dominates banked on perf/register.");

  Table table({"threads", "config", "regs", "cycles", "perf", "perf/reg"});
  double base_perf = 0.0;
  for (u32 threads : {2u, 4u, 6u, 8u, 10u}) {
    for (double frac : {0.4, 0.6, 0.8, 1.0, -1.0 /* banked */}) {
      const sim::RunSpec spec = spec_for(threads, frac);
      u32 regs;
      std::string label;
      if (frac < 0) {
        regs = threads * isa::kNumArchRegs;
        label = "banked";
      } else {
        regs = sim::spec_phys_regs(spec);
        label = "virec " + Table::fmt_pct(frac, 0);
      }
      const sim::RunResult result = runner.result(spec);
      const double perf = static_cast<double>(kTotalIters) /
                          static_cast<double>(result.cycles);
      if (base_perf == 0.0) base_perf = perf;
      table.add_row({std::to_string(threads), label, std::to_string(regs),
                     std::to_string(result.cycles),
                     Table::fmt(perf / base_perf, 2),
                     Table::fmt(1000.0 * perf / regs, 3)});
    }
  }
  table.print(std::cout);
  return 0;
}
