// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cycle_account.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/parallel.hpp"
#include "sim/runner.hpp"
#include "svc/client.hpp"

namespace virec::bench {

/// Standard experiment sizing: large enough for steady-state behaviour,
/// small enough that a full figure regenerates in seconds.
inline workloads::WorkloadParams default_params() {
  workloads::WorkloadParams params;
  params.iters_per_thread = 256;
  params.elements = 1 << 16;
  return params;
}

inline void print_header(const std::string& title, const std::string& paper) {
  std::cout << "\n================================================================\n"
            << title << "\n" << paper
            << "\n================================================================\n";
}

/// Performance = work / time, normalised so the baseline run is 1.0.
inline double relative_perf(Cycle baseline, Cycle measured) {
  return static_cast<double>(baseline) / static_cast<double>(measured);
}

/// Cycles per instruction charged to @p buckets of @p r's closed cycle
/// stack (0 when nothing committed).
inline double cpi_of(const sim::RunResult& r,
                     std::initializer_list<CycleBucket> buckets) {
  if (r.instructions == 0) return 0.0;
  double cycles = 0.0;
  for (const CycleBucket b : buckets) {
    cycles += r.cpi_stack[static_cast<std::size_t>(b)];
  }
  return cycles / static_cast<double>(r.instructions);
}

/// CPI lost to the memory system: data/register-region/MSHR miss
/// stalls plus store-queue backpressure.
inline double mem_stall_cpi(const sim::RunResult& r) {
  return cpi_of(r, {CycleBucket::kMemData, CycleBucket::kMemReg,
                    CycleBucket::kMemMshr, CycleBucket::kSqFull});
}

/// CPI lost to context switching: the switch bubble itself plus cycles
/// a switch was wanted but no target was ready / the mask blocked it.
inline double switch_cpi(const sim::RunResult& r) {
  return cpi_of(r, {CycleBucket::kSwitchOverhead, CycleBucket::kSwitchNoTarget,
                    CycleBucket::kSwitchMasked});
}

/// Worker count for a harness: `--jobs N` on the command line, else the
/// BENCH_JOBS environment variable, else 0 (= every hardware thread).
/// Strict parsing — "--jobs 4x" is an error, not 4.
inline u32 parse_jobs(int argc, char** argv) {
  auto parse = [](const char* src, const std::string& v) -> u32 {
    errno = 0;
    char* end = nullptr;
    const unsigned long long out = std::strtoull(v.c_str(), &end, 0);
    if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE) {
      throw std::invalid_argument(std::string(src) + ": invalid job count '" +
                                  v + "'");
    }
    return static_cast<u32>(out);
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      if (i + 1 >= argc) throw std::invalid_argument("--jobs needs a value");
      return parse("--jobs", argv[i + 1]);
    }
  }
  if (const char* env = std::getenv("BENCH_JOBS")) {
    return parse("BENCH_JOBS", env);
  }
  return 0;
}

/// Applies the VIREC_STREAM_DIR environment variable to a sampled spec:
/// when set, locally-run sampled points persist their functional streams
/// there, so repeated harness invocations skip the golden prepass.
/// Stream persistence never changes estimates (replay is bit-identical
/// to a fresh build), so the result-cache key is unaffected.
inline void apply_stream_env(sim::RunSpec& spec) {
  if (spec.sample_windows == 0 || !spec.stream_dir.empty()) return;
  if (const char* dir = std::getenv("VIREC_STREAM_DIR")) {
    spec.stream_dir = dir;
  }
}

/// Exact identity of an experiment point — every field that changes the
/// simulation outcome, so two specs share a cache slot only when their
/// runs would be identical.
inline std::string spec_key(const sim::RunSpec& s) {
  u64 fraction_bits;
  std::memcpy(&fraction_bits, &s.context_fraction, sizeof fraction_bits);
  std::string key = s.workload;
  for (const u64 v :
       {static_cast<u64>(s.scheme), static_cast<u64>(s.num_cores),
        static_cast<u64>(s.threads_per_core), fraction_bits,
        static_cast<u64>(s.policy), s.params.iters_per_thread,
        s.params.elements, s.params.stride, s.params.locality_window,
        static_cast<u64>(s.params.extra_compute),
        static_cast<u64>(s.params.max_regs), s.params.seed,
        static_cast<u64>(s.dcache_bytes), static_cast<u64>(s.dcache_latency),
        static_cast<u64>(s.phys_regs), static_cast<u64>(s.group_spill),
        static_cast<u64>(s.switch_prefetch)}) {
    key += '\0';
    key += std::to_string(v);
  }
  return key;
}

/// Runs experiment points through sim::run_specs and memoises the
/// results. The harness enumerates its whole grid once, prefetches it
/// (all points run concurrently on the worker pool), then keeps its
/// original formatting logic, which now hits the cache. A point the
/// grid missed still works — it just runs serially on first use.
///
/// When the VIREC_SIMD_SOCKET environment variable names a live
/// virec-simd socket (docs/service.md), points run through the daemon
/// instead: repeated figure regenerations are then served from its
/// persistent result store without re-simulating, and concurrent
/// harnesses share one execution per unique point. Results are
/// bit-identical either way (the wire carries doubles by bit pattern).
/// If the socket is unreachable the runner warns once and falls back
/// to local simulation.
class CachedRunner {
 public:
  explicit CachedRunner(u32 jobs = 0) : jobs_(jobs) {}

  void set_jobs(u32 jobs) { jobs_ = jobs; }
  u32 jobs() const { return jobs_; }

  /// Run every not-yet-cached spec on the worker pool.
  void prefetch(const std::vector<sim::RunSpec>& specs) {
    std::vector<sim::RunSpec> todo;
    std::vector<std::string> keys;
    for (const sim::RunSpec& spec : specs) {
      std::string key = spec_key(spec);
      if (cache_.count(key) || std::count(keys.begin(), keys.end(), key)) {
        continue;
      }
      todo.push_back(spec);
      apply_stream_env(todo.back());
      keys.push_back(std::move(key));
    }
    std::vector<sim::RunResult> results;
    if (svc::ServiceClient* client = service()) {
      svc::ServiceClient::Outcome outcome = client->run_sweep(todo);
      for (std::size_t i = 0; i < todo.size(); ++i) {
        if (!outcome.errors[i].empty()) {
          throw std::runtime_error("virec-simd point failed: " +
                                   outcome.errors[i]);
        }
      }
      results = std::move(outcome.results);
    } else {
      results = sim::run_specs(todo, jobs_);
    }
    for (std::size_t i = 0; i < todo.size(); ++i) {
      cache_.emplace(std::move(keys[i]), std::move(results[i]));
    }
  }

  /// Cached result for @p spec; runs it on demand if absent.
  const sim::RunResult& result(const sim::RunSpec& spec) {
    std::string key = spec_key(spec);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      sim::RunResult fresh;
      if (svc::ServiceClient* client = service()) {
        if (!client->run_one(spec, &fresh)) {
          throw std::runtime_error("virec-simd point failed: " +
                                   client->error());
        }
      } else {
        sim::RunSpec local = spec;
        apply_stream_env(local);
        fresh = sim::run_spec(local);
      }
      it = cache_.emplace(std::move(key), std::move(fresh)).first;
    }
    return it->second;
  }

  Cycle cycles(const sim::RunSpec& spec) { return result(spec).cycles; }

 private:
  /// Daemon connection per VIREC_SIMD_SOCKET, dialled once on first
  /// use; null = run locally.
  svc::ServiceClient* service() {
    if (!service_checked_) {
      service_checked_ = true;
      if (const char* sock = std::getenv("VIREC_SIMD_SOCKET")) {
        auto client = std::make_unique<svc::ServiceClient>(sock, "bench");
        if (client->connect()) {
          client_ = std::move(client);
        } else {
          std::cerr << "bench: VIREC_SIMD_SOCKET=" << sock
                    << " unreachable (" << client->error()
                    << "); simulating locally\n";
        }
      }
    }
    return client_.get();
  }

  u32 jobs_;
  bool service_checked_ = false;
  std::unique_ptr<svc::ServiceClient> client_;
  std::unordered_map<std::string, sim::RunResult> cache_;
};

}  // namespace virec::bench
