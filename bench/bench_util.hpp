// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/runner.hpp"

namespace virec::bench {

/// Standard experiment sizing: large enough for steady-state behaviour,
/// small enough that a full figure regenerates in seconds.
inline workloads::WorkloadParams default_params() {
  workloads::WorkloadParams params;
  params.iters_per_thread = 256;
  params.elements = 1 << 16;
  return params;
}

inline void print_header(const std::string& title, const std::string& paper) {
  std::cout << "\n================================================================\n"
            << title << "\n" << paper
            << "\n================================================================\n";
}

/// Performance = work / time, normalised so the baseline run is 1.0.
inline double relative_perf(Cycle baseline, Cycle measured) {
  return static_cast<double>(baseline) / static_cast<double>(measured);
}

}  // namespace virec::bench
