// Figure 14: processor area versus thread count — banked cores with
// 64-register banks against ViReC cores with 8/16/32/64 registers of
// per-thread context — plus the Section 6.2 delay comparison.
#include "area/area_model.hpp"
#include "bench/bench_util.hpp"

using namespace virec;

int main() {
  bench::print_header(
      "Figure 14 — area vs thread count",
      "Paper: the fully-associative tag store scales superlinearly, so\n"
      "full contexts in ViReC eventually cost more than banking; at the\n"
      "5-10 registers/thread memory-intensive kernels need, ViReC stays\n"
      "~40% below banked (1.7 vs 2.8-3.9 mm^2 at 8-16 threads).");

  Table table({"threads", "banked(64r/bank)", "virec 8r/t", "virec 16r/t",
               "virec 32r/t", "virec 64r/t"});
  for (u32 threads : {1u, 2u, 4u, 8u, 12u, 16u}) {
    table.add_row(
        {std::to_string(threads),
         Table::fmt(area::banked_core_area(threads, 64).total_mm2, 2),
         Table::fmt(area::virec_core_area(threads * 8).total_mm2, 2),
         Table::fmt(area::virec_core_area(threads * 16).total_mm2, 2),
         Table::fmt(area::virec_core_area(threads * 32).total_mm2, 2),
         Table::fmt(area::virec_core_area(threads * 64).total_mm2, 2)});
  }
  table.print(std::cout);

  std::cout << "\n--- component breakdown (ViReC, 64 physical registers) ---\n";
  const area::CoreAreaReport v = area::virec_core_area(64);
  Table parts({"component", "mm^2", "share"});
  parts.add_row({"base core (sans RF)", Table::fmt(v.base_mm2, 3),
                 Table::fmt_pct(v.base_mm2 / v.total_mm2, 1)});
  parts.add_row({"register file", Table::fmt(v.rf_mm2, 3),
                 Table::fmt_pct(v.rf_mm2 / v.total_mm2, 1)});
  parts.add_row({"VRMU tag store (CAM)", Table::fmt(v.tag_mm2, 3),
                 Table::fmt_pct(v.tag_mm2 / v.total_mm2, 1)});
  parts.add_row({"rollback queue + misc", Table::fmt(v.queue_mm2, 3),
                 Table::fmt_pct(v.queue_mm2 / v.total_mm2, 1)});
  parts.print(std::cout);

  std::cout << "\n--- RF access delay ---\n";
  Table delay({"configuration", "delay ns"});
  delay.add_row({"baseline 32-reg RF",
                 Table::fmt(area::ino_core_area().rf_delay_ns, 3)});
  delay.add_row({"virec 80 regs",
                 Table::fmt(area::virec_core_area(80).rf_delay_ns, 3)});
  delay.add_row({"banked 8x64",
                 Table::fmt(area::banked_core_area(8, 64).rf_delay_ns, 3)});
  delay.print(std::cout);
  return 0;
}
