// Figure 13: dcache latency and capacity sensitivity for a single
// processor with 8 threads — ViReC vs banked, geometric-mean IPC across
// the figure workloads.
#include "bench/bench_util.hpp"

using namespace virec;

namespace {

bench::CachedRunner runner;

sim::RunSpec spec_for(const std::string& workload, sim::Scheme scheme,
                      u32 latency, u32 bytes) {
  sim::RunSpec spec;
  spec.workload = workload;
  spec.scheme = scheme;
  spec.threads_per_core = 8;
  spec.context_fraction = 0.8;
  spec.dcache_latency = latency;
  spec.dcache_bytes = bytes;
  spec.params = bench::default_params();
  spec.params.iters_per_thread = 128;
  return spec;
}

double geomean_ipc(sim::Scheme scheme, u32 latency, u32 bytes) {
  std::vector<double> ipcs;
  for (const workloads::Workload* w : workloads::figure_workloads()) {
    ipcs.push_back(runner.result(spec_for(w->name(), scheme, latency, bytes)).ipc);
  }
  return geomean(ipcs);
}

}  // namespace

int main(int argc, char** argv) {
  runner.set_jobs(bench::parse_jobs(argc, argv));
  std::vector<sim::RunSpec> grid;
  for (const workloads::Workload* w : workloads::figure_workloads()) {
    for (sim::Scheme s : {sim::Scheme::kBanked, sim::Scheme::kViReC}) {
      for (u32 latency : {2u, 3u, 4u, 6u, 8u}) {
        grid.push_back(spec_for(w->name(), s, latency, 0));
      }
      for (u32 bytes : {2048u, 4096u, 8192u, 16384u, 32768u}) {
        grid.push_back(spec_for(w->name(), s, 0, bytes));
      }
    }
  }
  runner.prefetch(grid);

  bench::print_header(
      "Figure 13 — dcache latency / capacity sweep (8 threads, geomean IPC)",
      "Paper: all schemes degrade with dcache latency, ViReC slightly\n"
      "faster (register fills). Pinned register lines shrink effective\n"
      "capacity, so ViReC thrashes small dcaches before banked does.");

  std::cout << "\n--- latency sweep (8kB dcache) ---\n";
  Table lat({"dcache latency", "banked IPC", "virec IPC", "virec/banked"});
  for (u32 latency : {2u, 3u, 4u, 6u, 8u}) {
    const double banked = geomean_ipc(sim::Scheme::kBanked, latency, 0);
    const double virec = geomean_ipc(sim::Scheme::kViReC, latency, 0);
    lat.add_row({std::to_string(latency), Table::fmt(banked, 3),
                 Table::fmt(virec, 3), Table::fmt(virec / banked, 2)});
  }
  lat.print(std::cout);

  std::cout << "\n--- capacity sweep (2-cycle dcache) ---\n";
  Table cap({"dcache bytes", "banked IPC", "virec IPC", "virec/banked"});
  for (u32 bytes : {2048u, 4096u, 8192u, 16384u, 32768u}) {
    const double banked = geomean_ipc(sim::Scheme::kBanked, 0, bytes);
    const double virec = geomean_ipc(sim::Scheme::kViReC, 0, bytes);
    cap.add_row({std::to_string(bytes), Table::fmt(banked, 3),
                 Table::fmt(virec, 3), Table::fmt(virec / banked, 2)});
  }
  cap.print(std::cout);
  return 0;
}
