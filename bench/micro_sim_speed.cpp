// Micro-benchmarks (google-benchmark) of the simulator's hot paths:
// cache accesses, replacement-policy victim selection, the ViReC decode
// path and whole-system simulation throughput.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "core/virec_manager.hpp"
#include "mem/memory_system.hpp"
#include "sim/parallel.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "svc/result_store.hpp"
#include "svc/sweep_service.hpp"
#include "tiered/func_stream.hpp"

namespace virec {
namespace {

void BM_CacheHit(benchmark::State& state) {
  mem::MemSystemConfig mc;
  mem::MemorySystem ms(mc);
  mem::Cache& dcache = ms.dcache(0);
  Cycle now = dcache.access(0x1000, false, 0).done;
  for (auto _ : state) {
    now = dcache.access(0x1000, false, now).done;
    benchmark::DoNotOptimize(now);
  }
}
BENCHMARK(BM_CacheHit);

void BM_CacheMissStream(benchmark::State& state) {
  mem::MemSystemConfig mc;
  mem::MemorySystem ms(mc);
  mem::Cache& dcache = ms.dcache(0);
  Cycle now = 0;
  Addr addr = 0;
  for (auto _ : state) {
    now = dcache.access(addr, false, now).done;
    addr += 4224;
    benchmark::DoNotOptimize(now);
  }
}
BENCHMARK(BM_CacheMissStream);

void BM_PolicyVictim(benchmark::State& state) {
  core::ReplacementPolicy policy(core::PolicyKind::kLRC);
  std::vector<core::RfEntry> entries(static_cast<std::size_t>(state.range(0)));
  for (u32 i = 0; i < entries.size(); ++i) {
    policy.on_insert(entries, i, static_cast<u8>(i % 8),
                     static_cast<isa::RegId>(i % 31));
  }
  std::vector<u8> locked(entries.size(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.pick_victim(entries, locked));
  }
}
BENCHMARK(BM_PolicyVictim)->Arg(32)->Arg(64)->Arg(128);

void BM_ViReCDecode(benchmark::State& state) {
  mem::MemSystemConfig mc;
  mem::MemorySystem ms(mc);
  cpu::CoreEnv env{.core_id = 0, .num_threads = 8, .ms = &ms};
  core::ViReCConfig vc;
  vc.num_phys_regs = 48;
  core::ViReCManager manager(vc, env);
  isa::Inst inst;
  inst.op = isa::Op::kAdd;
  inst.rd = 3;
  inst.rn = 1;
  inst.rm = 2;
  Cycle now = 0;
  int tid = 0;
  for (auto _ : state) {
    const cpu::DecodeAccess acc = manager.on_decode(tid, inst, now);
    manager.on_commit(tid, inst);
    now = acc.ready + 1;
    tid = (tid + 1) % 8;
    benchmark::DoNotOptimize(acc.ready);
  }
}
BENCHMARK(BM_ViReCDecode);

void BM_GatherSimulation(benchmark::State& state) {
  // Whole-system simulation throughput (simulated instructions/sec).
  sim::RunSpec spec;
  spec.workload = "gather";
  spec.scheme = sim::Scheme::kViReC;
  spec.threads_per_core = 8;
  spec.context_fraction = 0.8;
  spec.params.iters_per_thread = 256;
  u64 instructions = 0;
  for (auto _ : state) {
    const sim::RunResult result = sim::run_spec(spec);
    instructions += result.instructions;
    benchmark::DoNotOptimize(result.cycles);
  }
  state.counters["sim_instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GatherSimulation)->Unit(benchmark::kMillisecond);

void BM_PointerChase(benchmark::State& state) {
  // Event-skip showcase: a single-thread pointer chase over a 1 MiB
  // arena misses the (8 KiB) dcache on every load, so the overwhelming
  // majority of simulated cycles are quiet memory stalls the
  // event-driven run loop fast-forwards. Arg(1) sets --no-skip (the
  // cycle-stepped loop); the two rows bound the skip-layer speedup.
  // Results are bit-identical either way (see tests/test_skip.cpp).
  // The arena deliberately fits the host LLC: the point is simulator
  // loop overhead, not host DRAM behaviour.
  sim::RunSpec spec;
  spec.workload = "pchase";
  spec.scheme = sim::Scheme::kBanked;
  spec.threads_per_core = 1;
  spec.params.iters_per_thread = 500000;
  spec.params.elements = 1 << 17;
  spec.no_skip = state.range(0) != 0;
  u64 instructions = 0;
  for (auto _ : state) {
    const sim::RunResult result = sim::run_spec(spec);
    instructions += result.instructions;
    benchmark::DoNotOptimize(result.cycles);
  }
  state.counters["sim_instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PointerChase)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SampledPointerChase(benchmark::State& state) {
  // Tiered-simulation showcase on the same long pointer chase as
  // BM_PointerChase: Arg is the number of SMARTS measurement windows
  // (0 = full detailed run, the baseline row). The sampled rows skip
  // most detailed cycles through the functional tier, so the
  // sim_instr/s ratio against Arg(0) is the achieved tiered speedup
  // (docs/performance.md records the matching IPC error).
  sim::RunSpec spec;
  spec.workload = "pchase";
  spec.scheme = sim::Scheme::kBanked;
  spec.threads_per_core = 1;
  spec.params.iters_per_thread = 500000;
  spec.params.elements = 1 << 17;
  spec.sample_windows = static_cast<u32>(state.range(0));
  spec.window_insts = 10'000;
  spec.warmup_insts = 2'000;
  u64 instructions = 0;
  for (auto _ : state) {
    const sim::RunResult result = sim::run_spec(spec);
    instructions += result.instructions;
    benchmark::DoNotOptimize(result.cycles);
  }
  state.counters["sim_instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SampledPointerChase)
    ->Arg(0)
    ->Arg(10)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond);

void BM_FunctionalTier(benchmark::State& state) {
  // Functional-tier-only throughput: the whole gather program through
  // the interpreter + warm hooks, no detailed cycles at all. This is
  // the ceiling the fast-forward stretches of a sampled run approach.
  sim::RunSpec spec;
  spec.workload = "gather";
  spec.scheme = sim::Scheme::kViReC;
  spec.threads_per_core = 8;
  spec.context_fraction = 0.8;
  spec.params.iters_per_thread = 2048;
  spec.functional_ff = true;
  u64 instructions = 0;
  for (auto _ : state) {
    const sim::RunResult result = sim::run_spec(spec);
    instructions += result.instructions;
    benchmark::DoNotOptimize(result.instructions);
  }
  state.counters["sim_instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalTier)->Unit(benchmark::kMillisecond);

void BM_FunctionalReuse(benchmark::State& state) {
  // Stream-reuse payoff: the same sampled gather point with the
  // process-wide stream cache cleared before every run (Arg 0 — each
  // run pays the golden functional prepass) or kept warm (Arg 1 —
  // every run replays the recorded stream). The rows' ratio is the
  // per-point saving every sweep point after the first enjoys in a
  // policy/scheme grid sharing one functional identity.
  sim::RunSpec spec;
  spec.workload = "gather";
  spec.scheme = sim::Scheme::kViReC;
  spec.threads_per_core = 8;
  spec.context_fraction = 0.8;
  spec.params.iters_per_thread = 25'600;
  spec.params.elements = 1 << 16;
  spec.sample_windows = 10;
  spec.window_insts = 10'000;
  spec.warmup_insts = 2'000;
  const bool warm = state.range(0) != 0;
  sim::StreamCache::instance().reset_for_test();
  if (warm) sim::run_spec(spec);  // builds the shared stream, untimed
  u64 instructions = 0;
  for (auto _ : state) {
    if (!warm) sim::StreamCache::instance().reset_for_test();
    const sim::RunResult result = sim::run_spec(spec);
    instructions += result.instructions;
    benchmark::DoNotOptimize(result.cycles);
  }
  state.counters["sim_instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalReuse)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SweepThroughput(benchmark::State& state) {
  // Whole-sweep throughput (experiment points/sec) through the
  // parallel executor. Arg = worker threads; 0 = hardware concurrency.
  // Compare the jobs=1 row against a multi-job row to read the
  // end-to-end sweep scaling on this machine.
  sim::Sweep sweep;
  sweep.base().workload = "gather";
  sweep.base().context_fraction = 0.8;
  sweep.base().params.iters_per_thread = 64;
  sweep.base().params.elements = 1 << 14;
  sweep.over_schemes({sim::Scheme::kBanked, sim::Scheme::kViReC})
      .over_threads({4, 8})
      .over_context_fractions({1.0, 0.8, 0.4});
  const u32 jobs = static_cast<u32>(state.range(0));
  u64 points = 0;
  for (auto _ : state) {
    const sim::SweepResults results = sweep.run(jobs);
    points += results.size();
    benchmark::DoNotOptimize(results.records().data());
  }
  state.counters["points/s"] = benchmark::Counter(
      static_cast<double>(points), benchmark::Counter::kIsRate);
}
// Real time, not CPU time: the workers' cycles are not attributed to
// the main thread, so a CPU-time rate would overstate multi-job runs.
BENCHMARK(BM_SweepThroughput)
    ->Arg(1)
    ->Arg(4)
    ->Arg(0)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ResultStoreLookup(benchmark::State& state) {
  // Cost of serving one experiment point from the persistent result
  // store (docs/service.md): file read + whole-entry CRC + identity
  // verification + payload decode. Compare against BM_GatherSimulation
  // to read the warm-over-cold advantage: a lookup must be orders of
  // magnitude cheaper than the run it replaces for the cache to pay.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "virec_bench_store").string();
  std::filesystem::remove_all(dir);
  svc::ResultStore store(dir);
  sim::RunSpec spec;
  spec.workload = "gather";
  spec.params.iters_per_thread = 64;
  spec.params.elements = 1 << 14;
  const u64 hash = ckpt::spec_hash(spec);
  store.put(hash, spec, sim::run_spec(spec), 0.1);
  sim::RunResult out;
  for (auto _ : state) {
    const bool hit = store.lookup(hash, spec, &out);
    benchmark::DoNotOptimize(hit);
    benchmark::DoNotOptimize(out.cycles);
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ResultStoreLookup);

void BM_WarmSweepThroughput(benchmark::State& state) {
  // The same 24-point grid as BM_SweepThroughput, but through a
  // SweepService over a pre-warmed ResultStore: every point is a store
  // hit, no simulation runs. points/s here vs BM_SweepThroughput's
  // jobs=1 row is the measured warm-over-cold sweep speedup
  // (BENCH_sim_speed.json records the pair per PR).
  const std::string dir =
      (std::filesystem::temp_directory_path() / "virec_bench_warm").string();
  std::filesystem::remove_all(dir);
  svc::ResultStore store(dir);
  sim::Sweep sweep;
  sweep.base().workload = "gather";
  sweep.base().context_fraction = 0.8;
  sweep.base().params.iters_per_thread = 64;
  sweep.base().params.elements = 1 << 14;
  sweep.over_schemes({sim::Scheme::kBanked, sim::Scheme::kViReC})
      .over_threads({4, 8})
      .over_context_fractions({1.0, 0.8, 0.4});
  const std::vector<sim::RunSpec> grid = sweep.specs();
  {
    // Warm the store (not timed); a fresh service per iteration below
    // keeps the in-memory memo cold so disk lookups are measured.
    svc::SweepService warmer(svc::ServiceConfig{}, &store);
    warmer.submit("warmup", grid, {}).wait();
  }
  u64 points = 0;
  for (auto _ : state) {
    svc::SweepService service(svc::ServiceConfig{}, &store);
    svc::SweepTicket ticket = service.submit("bench", grid, {});
    ticket.wait();
    points += ticket.counts().points;
    if (ticket.counts().executed != 0) {
      state.SkipWithError("warm sweep executed points");
    }
  }
  state.counters["points/s"] = benchmark::Counter(
      static_cast<double>(points), benchmark::Counter::kIsRate);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_WarmSweepThroughput)->UseRealTime();

}  // namespace
}  // namespace virec

BENCHMARK_MAIN();
