// Figure 12: register replacement policy hit rates on a single ViReC
// processor with 8 threads at 80% and 40% context storage, plus the
// derived speedups the paper quotes in Section 6.1.
#include <map>

#include "bench/bench_util.hpp"

using namespace virec;

namespace {

struct Point {
  double hit;
  Cycle cycles;
};

bench::CachedRunner runner;

sim::RunSpec spec_for(const std::string& workload, core::PolicyKind policy,
                      double fraction) {
  sim::RunSpec spec;
  spec.workload = workload;
  spec.scheme = sim::Scheme::kViReC;
  spec.policy = policy;
  spec.threads_per_core = 8;
  spec.context_fraction = fraction;
  spec.params = bench::default_params();
  return spec;
}

Point run(const std::string& workload, core::PolicyKind policy,
          double fraction) {
  const sim::RunResult& result =
      runner.result(spec_for(workload, policy, fraction));
  return {result.rf_hit_rate, result.cycles};
}

}  // namespace

int main(int argc, char** argv) {
  runner.set_jobs(bench::parse_jobs(argc, argv));

  bench::print_header(
      "Figure 12 — replacement policy hit rates (8 threads)",
      "Paper: scheduling-aware policies (MRT-*, LRC) beat PLRU/LRU;\n"
      "LRC ~93.9%/82.9% hit at 80%/40% ctx, within 0.3% of MRT-LRU, and\n"
      "20.7%/7.1% mean speedup over PLRU.");

  const std::vector<core::PolicyKind> policies = {
      core::PolicyKind::kPLRU,    core::PolicyKind::kLRU,
      core::PolicyKind::kFIFO,    core::PolicyKind::kRandom,
      core::PolicyKind::kMrtPLRU, core::PolicyKind::kMrtLRU,
      core::PolicyKind::kLRC};

  std::vector<sim::RunSpec> grid;
  for (double fraction : {0.8, 0.4}) {
    for (const workloads::Workload* w : workloads::figure_workloads()) {
      for (core::PolicyKind pk : policies) {
        grid.push_back(spec_for(w->name(), pk, fraction));
      }
    }
  }
  runner.prefetch(grid);

  for (double fraction : {0.8, 0.4}) {
    std::cout << "\n--- " << Table::fmt_pct(fraction, 0) << " context ---\n";
    std::vector<std::string> headers = {"workload"};
    for (core::PolicyKind pk : policies) headers.push_back(policy_name(pk));
    Table table(headers);

    std::map<core::PolicyKind, std::vector<double>> hits;
    std::map<core::PolicyKind, std::vector<double>> speedups;
    std::map<std::string, Cycle> plru_cycles;

    for (const workloads::Workload* w : workloads::figure_workloads()) {
      std::vector<std::string> row = {w->name()};
      const Point plru = run(w->name(), core::PolicyKind::kPLRU, fraction);
      plru_cycles[w->name()] = plru.cycles;
      for (core::PolicyKind pk : policies) {
        const Point p = pk == core::PolicyKind::kPLRU
                            ? plru
                            : run(w->name(), pk, fraction);
        hits[pk].push_back(p.hit);
        speedups[pk].push_back(static_cast<double>(plru.cycles) /
                               static_cast<double>(p.cycles));
        row.push_back(Table::fmt_pct(p.hit, 1));
      }
      table.add_row(row);
    }
    std::vector<std::string> mean_row = {"mean hit"};
    std::vector<std::string> speed_row = {"speedup vs plru"};
    for (core::PolicyKind pk : policies) {
      mean_row.push_back(Table::fmt_pct(mean(hits[pk]), 1));
      speed_row.push_back(Table::fmt_pct(geomean(speedups[pk]) - 1.0, 1));
    }
    table.add_row(mean_row);
    table.add_row(speed_row);
    table.print(std::cout);
  }
  return 0;
}
