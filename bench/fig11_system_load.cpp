// Figure 11: performance scaling with increased system load.
//
// Instantiates 1/2/4/8 ViReC processors executing gather behind the
// shared crossbar and DRAM, with 8 or 10 threads per processor, and
// reports per-processor runtime plus the observed memory latency.
#include "bench/bench_util.hpp"

using namespace virec;

namespace {

sim::RunSpec spec_for(u32 cores, u32 threads) {
  sim::RunSpec spec;
  spec.workload = "gather";
  spec.scheme = sim::Scheme::kViReC;
  spec.num_cores = cores;
  spec.threads_per_core = threads;
  // Fixed RF budget per processor: 8 threads get 100% of a 6-reg
  // context; 10 threads squeeze into the same 48 registers.
  spec.phys_regs = 48;
  spec.params = bench::default_params();
  spec.params.iters_per_thread = 2048 / threads;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  bench::CachedRunner runner(bench::parse_jobs(argc, argv));
  std::vector<sim::RunSpec> grid;
  for (u32 cores : {1u, 2u, 4u, 8u}) {
    for (u32 threads : {8u, 10u}) grid.push_back(spec_for(cores, threads));
  }
  runner.prefetch(grid);

  bench::print_header(
      "Figure 11 — scaling with system load (gather)",
      "Paper: with 1-2 processors 8 threads suffice to hide latency; as\n"
      "crossbar/DRAM contention grows (4-8 processors), 10 threads win.\n"
      "ViReC supports the extra threads in the same RF by shrinking\n"
      "per-thread context.");

  Table table({"cores", "threads/core", "regs", "cycles", "norm perf",
               "avg mem latency", "mem cpi", "switch cpi"});
  double base = 0.0;
  for (u32 cores : {1u, 2u, 4u, 8u}) {
    for (u32 threads : {8u, 10u}) {
      const sim::RunResult& result = runner.result(spec_for(cores, threads));
      const double avg_lat = result.avg_dcache_miss_latency;
      const double perf = 1.0 / static_cast<double>(result.cycles);
      if (base == 0.0) base = perf;
      // The closed cycle stack makes the contention story direct:
      // rising system load shows up as memory-stall CPI, and the
      // 10-thread configuration's win as lower switch-starved CPI.
      table.add_row({std::to_string(cores), std::to_string(threads), "48",
                     std::to_string(result.cycles),
                     Table::fmt(perf / base, 3), Table::fmt(avg_lat, 1),
                     Table::fmt(bench::mem_stall_cpi(result), 2),
                     Table::fmt(bench::switch_cpi(result), 2)});
    }
  }
  table.print(std::cout);
  std::cout << "(per-processor work is constant: higher system load ->\n"
               " higher observed latency -> the 10-thread configuration\n"
               " catches up with / overtakes the 8-thread one)\n";
  return 0;
}
