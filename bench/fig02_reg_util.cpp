// Figure 2: register utilisation of memory-intensive workloads.
// Reports, per kernel, the registers referenced in the innermost loop
// and in total, as a fraction of the 31-register context.
#include "analysis/reg_usage.hpp"
#include "bench/bench_util.hpp"

using namespace virec;

int main() {
  bench::print_header(
      "Figure 2 — register utilisation",
      "Paper: many memory-intensive kernels use <30% of their register\n"
      "context in the innermost loop where they spend most of their time.");

  workloads::WorkloadParams params = bench::default_params();
  params.iters_per_thread = 128;

  Table table({"workload", "inner regs", "total regs", "inner %", "total %",
               "instructions"});
  std::vector<double> inner_fracs;
  for (const workloads::Workload* w : workloads::workload_registry()) {
    const analysis::RegUsageReport report =
        analysis::profile_registers(*w, params);
    inner_fracs.push_back(report.inner_fraction());
    table.add_row({w->name(), std::to_string(report.inner_regs),
                   std::to_string(report.total_regs),
                   Table::fmt_pct(report.inner_fraction(), 1),
                   Table::fmt_pct(report.total_fraction(), 1),
                   std::to_string(report.instructions)});
  }
  table.print(std::cout);
  std::cout << "mean inner-loop utilisation: "
            << Table::fmt_pct(mean(inner_fracs), 1) << "\n";
  return 0;
}
