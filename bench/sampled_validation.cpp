// Sampled-vs-full validation: run every point of a scheme x policy
// grid twice — once through the full cycle-accurate model, once
// through the tiered SMARTS sampler — and report the IPC estimation
// error, the confidence-interval coverage and the wall-clock speedup
// (the error/speedup frontier of docs/performance.md).
//
//   sampled_validation [--quick] [--csv PATH]
//                      [--max-err PCT] [--min-speedup X]
//                      [--adaptive-warmup F] [--warm-set-sample K]
//
// --quick shrinks the grid to the CI smoke subset. --max-err /
// --min-speedup (0 = disabled) turn the run into a gate: the process
// exits non-zero if any *gated* point violates a threshold. Points
// with a known, documented estimator bias (bulk-miss schemes whose
// steady state the short warm-up cannot reach — see "known
// limitations" in docs/performance.md) are reported but never gated.
//
// --adaptive-warmup F > 1 lets each window extend its warm-up while
// the dcache miss rate is still converging — this is what shrinks the
// bulk-miss (software / prefetch-full) optimism. --warm-set-sample
// K > 1 turns on set-sampled cache warming, which is deliberately
// APPROXIMATE: with it, every point's error gate is disabled (the
// estimates are no longer bit-faithful to exact warming) and only the
// speedup gate remains.
//
// Sampled points of the gather grid share one functional identity, so
// the recorded functional stream is built once and replayed by every
// later point (docs/performance.md, "Stream reuse"); the stream column
// shows which role each point played. A point that BUILDS its stream
// pays the one-off golden prepass — its wall-clock is the amortized
// sweep entry fee, so the speedup gate applies only to replay/load
// points (the steady-state sweep cost). Set VIREC_STREAM_DIR to
// persist streams across invocations: a warm second run replays
// everything and every gated point faces the speedup gate.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "tiered/func_stream.hpp"

using namespace virec;

namespace {

struct Point {
  sim::RunSpec spec;
  bool gated = true;      ///< participates in threshold enforcement
  const char* note = "";  ///< why a point is ungated
};

double wall_run(const sim::RunSpec& spec, sim::RunResult* out) {
  const auto t0 = std::chrono::steady_clock::now();
  *out = sim::run_spec(spec);
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  return dt.count();
}

double wall_run_tiered(const sim::RunSpec& spec, sim::TieredResult* out) {
  const auto t0 = std::chrono::steady_clock::now();
  *out = sim::run_spec_tiered(spec);
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  return dt.count();
}

double parse_double(const char* flag, const std::string& v) {
  std::size_t pos = 0;
  double out = 0.0;
  try {
    out = std::stod(v, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  if (pos != v.size()) {
    throw std::invalid_argument(std::string(flag) + ": invalid value '" + v +
                                "'");
  }
  return out;
}

sim::RunSpec gather_spec(sim::Scheme scheme, u64 iters) {
  sim::RunSpec spec;
  spec.workload = "gather";
  spec.scheme = scheme;
  spec.threads_per_core = 8;
  spec.context_fraction = 0.8;
  spec.params.iters_per_thread = iters;
  spec.params.elements = 1 << 16;
  return spec;
}

sim::RunSpec pchase_spec(u64 iters) {
  sim::RunSpec spec;
  spec.workload = "pchase";
  spec.scheme = sim::Scheme::kBanked;
  spec.threads_per_core = 1;
  spec.params.iters_per_thread = iters;
  spec.params.elements = 1 << 17;
  return spec;
}

}  // namespace

int main(int argc, char** argv) try {
  bool quick = false;
  std::string csv_path;
  double max_err_pct = 0.0;    // 0 = no error gate
  double min_speedup = 0.0;    // 0 = no speedup gate
  u32 adaptive_warmup = 1;     // 1 = fixed warm-up (bit-faithful default)
  u32 warm_set_sample = 1;     // 1 = exact warming (bit-faithful default)
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(std::string(flag) + " needs a value");
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--csv") {
      csv_path = value("--csv");
    } else if (arg == "--max-err") {
      max_err_pct = parse_double("--max-err", value("--max-err"));
    } else if (arg == "--min-speedup") {
      min_speedup = parse_double("--min-speedup", value("--min-speedup"));
    } else if (arg == "--adaptive-warmup") {
      adaptive_warmup = static_cast<u32>(
          parse_double("--adaptive-warmup", value("--adaptive-warmup")));
      if (adaptive_warmup == 0) {
        throw std::invalid_argument("--adaptive-warmup must be >= 1");
      }
    } else if (arg == "--warm-set-sample") {
      warm_set_sample = static_cast<u32>(
          parse_double("--warm-set-sample", value("--warm-set-sample")));
      if (warm_set_sample == 0 ||
          (warm_set_sample & (warm_set_sample - 1)) != 0) {
        throw std::invalid_argument(
            "--warm-set-sample must be a power of two >= 1");
      }
    } else {
      throw std::invalid_argument("unknown argument '" + arg + "'");
    }
  }

  // The ungated schemes on gather: bulk-miss prefetchers / software
  // save-restore whose RF steady state a 2k-instruction warm-up cannot
  // reach, leaving a documented positive CPI bias (~+11% at this
  // sizing; docs/performance.md, "known limitations").
  const u64 gather_iters = quick ? 102'400 : 25'600;
  std::vector<Point> grid;
  if (quick) {
    grid.push_back({gather_spec(sim::Scheme::kBanked, gather_iters)});
    grid.push_back({gather_spec(sim::Scheme::kViReC, gather_iters)});
    grid.push_back({gather_spec(sim::Scheme::kNSF, gather_iters), false,
                    "bias varies with sizing"});
    // Long enough that the fixed sampling overhead amortizes even
    // against the event-skip-accelerated full run.
    grid.push_back({pchase_spec(2'000'000)});
  } else {
    for (const sim::Scheme scheme :
         {sim::Scheme::kBanked, sim::Scheme::kSoftware,
          sim::Scheme::kPrefetchFull, sim::Scheme::kPrefetchExact,
          sim::Scheme::kViReC, sim::Scheme::kNSF}) {
      Point p{gather_spec(scheme, gather_iters)};
      if (scheme == sim::Scheme::kSoftware ||
          scheme == sim::Scheme::kPrefetchFull ||
          scheme == sim::Scheme::kPrefetchExact) {
        p.gated = false;
        p.note = "warm-up bias (docs)";
      } else if (scheme == sim::Scheme::kNSF) {
        p.gated = false;
        p.note = "bias varies with sizing";
      }
      grid.push_back(p);
    }
    for (const core::PolicyKind policy : core::all_policies()) {
      Point p{gather_spec(sim::Scheme::kViReC, gather_iters)};
      p.spec.policy = policy;
      if (policy == core::PolicyKind::kFIFO) {
        // FIFO ranks by insertion order, which the warm tier advances
        // without the detailed pipeline's flush-replay re-insertions.
        p.gated = false;
        p.note = "replay-order bias (FIFO)";
      }
      grid.push_back(p);
    }
    grid.push_back({pchase_spec(500'000)});
  }

  bench::print_header(
      "Sampled-vs-full validation (tiered SMARTS sampling)",
      std::string("Every point runs the full cycle model and the sampled\n"
                  "estimator (10 x 10k-inst windows, 2k warm-up); error is\n"
                  "est_ipc vs the full run's IPC. Mode: ") +
          (quick ? "quick (CI smoke)" : "full grid"));

  Table table({"workload", "scheme", "policy", "full IPC", "est IPC",
               "err %", "CI covers", "full s", "sampled s", "speedup",
               "stream", "gate"});
  std::ofstream csv;
  if (!csv_path.empty()) {
    csv.open(csv_path);
    if (!csv) {
      throw std::runtime_error("cannot open CSV output '" + csv_path + "'");
    }
    csv << "workload,scheme,policy,threads,iters,sample_windows,window_insts,"
           "warmup_insts,full_ipc,est_ipc,est_ipc_lo,est_ipc_hi,err_pct,"
           "ci_covers,full_secs,sampled_secs,speedup,stream,gated,note\n";
  }

  int violations = 0;
  double full_total = 0.0;
  double sampled_total = 0.0;
  for (Point& point : grid) {
    sim::RunSpec full_spec = point.spec;
    sim::RunResult full{};
    const double full_secs = wall_run(full_spec, &full);

    sim::RunSpec sampled_spec = point.spec;
    sampled_spec.sample_windows = 10;
    sampled_spec.window_insts = 10'000;
    sampled_spec.warmup_insts = 2'000;
    sampled_spec.adaptive_warmup = adaptive_warmup;
    sampled_spec.warm_set_sample = warm_set_sample;
    bench::apply_stream_env(sampled_spec);
    const sim::StreamCache::Stats before =
        sim::StreamCache::instance().stats();
    sim::TieredResult tiered{};
    const double sampled_secs = wall_run_tiered(sampled_spec, &tiered);
    const sim::StreamCache::Stats after = sim::StreamCache::instance().stats();
    // "build" = this point paid the golden prepass; "load"/"replay" =
    // it reused a stream from disk / the in-process cache.
    const char* stream_role = after.built > before.built    ? "build"
                              : after.loaded > before.loaded ? "load"
                                                             : "replay";

    full_total += full_secs;
    sampled_total += sampled_secs;
    const double err_pct = (tiered.est_ipc - full.ipc) / full.ipc * 100.0;
    const bool covers =
        full.ipc >= tiered.est_ipc_lo && full.ipc <= tiered.est_ipc_hi;
    const double speedup = full_secs / sampled_secs;

    // Set-sampled warming (K > 1) trades warming fidelity for speed; the
    // estimates are no longer bit-faithful, so only the speedup gate
    // applies (the error stays reported for inspection).
    const bool err_gated = point.gated && warm_set_sample == 1;
    // The speedup gate measures the steady-state sweep cost, so it
    // skips the one-off prepass payer (the "build" point of each
    // functional identity) — that cost amortizes across the sweep.
    const bool speedup_gated =
        point.gated && std::strcmp(stream_role, "build") != 0;
    bool bad = false;
    if (err_gated && max_err_pct > 0.0 && std::abs(err_pct) > max_err_pct) {
      bad = true;
    }
    if (speedup_gated && min_speedup > 0.0 && speedup < min_speedup) {
      bad = true;
    }
    if (bad) ++violations;

    char err_buf[32];
    std::snprintf(err_buf, sizeof err_buf, "%+.2f", err_pct);
    table.add_row({point.spec.workload,
                   sim::scheme_name(point.spec.scheme),
                   core::policy_name(point.spec.policy), Table::fmt(full.ipc),
                   Table::fmt(tiered.est_ipc), err_buf,
                   covers ? "yes" : "no", Table::fmt(full_secs, 2),
                   Table::fmt(sampled_secs, 2),
                   Table::fmt(speedup, 2) + "x", stream_role,
                   bad ? "FAIL" : (point.gated ? "ok" : "-")});
    if (csv) {
      csv << point.spec.workload << ','
          << sim::scheme_name(point.spec.scheme) << ','
          << core::policy_name(point.spec.policy) << ','
          << point.spec.threads_per_core << ','
          << point.spec.params.iters_per_thread << ','
          << sampled_spec.sample_windows << ',' << sampled_spec.window_insts
          << ',' << sampled_spec.warmup_insts << ',' << full.ipc << ','
          << tiered.est_ipc << ',' << tiered.est_ipc_lo << ','
          << tiered.est_ipc_hi << ',' << err_pct << ',' << (covers ? 1 : 0)
          << ',' << full_secs << ',' << sampled_secs << ',' << speedup << ','
          << stream_role << ',' << (point.gated ? 1 : 0) << ',' << point.note
          << '\n';
    }
  }

  table.print(std::cout);
  std::cout << "\nUngated rows (gate '-') carry a documented estimator bias;"
               "\nsee the tiered-simulation section of docs/performance.md.\n";
  if (warm_set_sample > 1) {
    std::cout << "warm-set-sample " << warm_set_sample
              << " is approximate: error gates disabled for this run.\n";
  }
  const sim::StreamCache::Stats ss = sim::StreamCache::instance().stats();
  std::cout << "stream_builds " << ss.built << " stream_loads " << ss.loaded
            << " stream_mem_hits " << ss.mem_hits << '\n';
  if (sampled_total > 0.0) {
    char agg_buf[64];
    std::snprintf(agg_buf, sizeof agg_buf, "%.2f", full_total / sampled_total);
    std::cout << "aggregate speedup (sum full / sum sampled): " << agg_buf
              << "x\n";
  }
  if (max_err_pct > 0.0 || min_speedup > 0.0) {
    std::cout << "\ngates:";
    if (max_err_pct > 0.0) std::cout << " |err| <= " << max_err_pct << "%";
    if (min_speedup > 0.0) std::cout << " speedup >= " << min_speedup << "x";
    std::cout << " -> " << (violations == 0 ? "PASS" : "FAIL") << " ("
              << violations << " violation(s))\n";
  }
  return violations == 0 ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
