// Figure 9: performance of ViReC vs a banked processor, the NSF
// register cache and full/exact context prefetching, per workload at
// 4/6/8 threads. Values are performance relative to the similarly-
// threaded banked processor.
#include "bench/bench_util.hpp"

using namespace virec;

namespace {

bench::CachedRunner runner;

sim::RunSpec spec_for(const std::string& workload, sim::Scheme scheme,
                      u32 threads, double fraction) {
  sim::RunSpec spec;
  spec.workload = workload;
  spec.scheme = scheme;
  spec.threads_per_core = threads;
  spec.context_fraction = fraction;
  spec.params = bench::default_params();
  return spec;
}

Cycle run(const std::string& workload, sim::Scheme scheme, u32 threads,
          double fraction) {
  return runner.cycles(spec_for(workload, scheme, threads, fraction));
}

}  // namespace

int main(int argc, char** argv) {
  runner.set_jobs(bench::parse_jobs(argc, argv));
  std::vector<sim::RunSpec> grid;
  for (u32 threads : {4u, 6u, 8u}) {
    for (const workloads::Workload* w : workloads::figure_workloads()) {
      grid.push_back(spec_for(w->name(), sim::Scheme::kBanked, threads, 1.0));
      for (double f : {0.8, 0.6, 0.4}) {
        grid.push_back(spec_for(w->name(), sim::Scheme::kViReC, threads, f));
      }
      grid.push_back(spec_for(w->name(), sim::Scheme::kNSF, threads, 0.8));
      grid.push_back(
          spec_for(w->name(), sim::Scheme::kPrefetchExact, threads, 0.8));
      grid.push_back(
          spec_for(w->name(), sim::Scheme::kPrefetchFull, threads, 0.8));
    }
  }
  runner.prefetch(grid);

  bench::print_header(
      "Figure 9 — performance vs banked (higher is better, banked = 1.0)",
      "Paper: ViReC mean drop 4.4%/7.1%/10% at 80% ctx and\n"
      "10.7%/17.6%/22.1% at 40% ctx for 4/6/8 threads; ViReC ~2.3x NSF;\n"
      "full prefetch almost always worst; exact prefetch between.");

  for (u32 threads : {4u, 6u, 8u}) {
    std::cout << "\n--- " << threads << " threads ---\n";
    Table table({"workload", "virec80", "virec60", "virec40", "nsf80",
                 "pf-exact80", "pf-full80"});
    std::vector<double> v80, v60, v40, nsf, pfx, pff;
    for (const workloads::Workload* w : workloads::figure_workloads()) {
      const Cycle banked = run(w->name(), sim::Scheme::kBanked, threads, 1.0);
      auto rel = [&](sim::Scheme s, double f) {
        return bench::relative_perf(banked, run(w->name(), s, threads, f));
      };
      const double r80 = rel(sim::Scheme::kViReC, 0.8);
      const double r60 = rel(sim::Scheme::kViReC, 0.6);
      const double r40 = rel(sim::Scheme::kViReC, 0.4);
      const double rn = rel(sim::Scheme::kNSF, 0.8);
      const double rx = rel(sim::Scheme::kPrefetchExact, 0.8);
      const double rf = rel(sim::Scheme::kPrefetchFull, 0.8);
      v80.push_back(r80);
      v60.push_back(r60);
      v40.push_back(r40);
      nsf.push_back(rn);
      pfx.push_back(rx);
      pff.push_back(rf);
      table.add_row({w->name(), Table::fmt(r80, 2), Table::fmt(r60, 2),
                     Table::fmt(r40, 2), Table::fmt(rn, 2),
                     Table::fmt(rx, 2), Table::fmt(rf, 2)});
    }
    table.add_row({"geomean", Table::fmt(geomean(v80), 2),
                   Table::fmt(geomean(v60), 2), Table::fmt(geomean(v40), 2),
                   Table::fmt(geomean(nsf), 2), Table::fmt(geomean(pfx), 2),
                   Table::fmt(geomean(pff), 2)});
    table.print(std::cout);

    // Where the lost cycles go, from the closed cycle accounting:
    // memory-stall CPI (data/reg/MSHR misses + SQ backpressure) and
    // context-switch CPI (bubble + switch-starved cycles). ViReC's gap
    // to banked should show up as switch CPI, not extra memory CPI.
    Table cpi({"workload", "banked mem", "v80 mem", "v80 switch", "nsf mem",
               "nsf switch"});
    for (const workloads::Workload* w : workloads::figure_workloads()) {
      const sim::RunResult& banked = runner.result(
          spec_for(w->name(), sim::Scheme::kBanked, threads, 1.0));
      const sim::RunResult& v80 = runner.result(
          spec_for(w->name(), sim::Scheme::kViReC, threads, 0.8));
      const sim::RunResult& nsf = runner.result(
          spec_for(w->name(), sim::Scheme::kNSF, threads, 0.8));
      cpi.add_row({w->name(), Table::fmt(bench::mem_stall_cpi(banked), 2),
                   Table::fmt(bench::mem_stall_cpi(v80), 2),
                   Table::fmt(bench::switch_cpi(v80), 2),
                   Table::fmt(bench::mem_stall_cpi(nsf), 2),
                   Table::fmt(bench::switch_cpi(nsf), 2)});
    }
    cpi.print(std::cout);
    std::cout << "virec80 vs nsf80 speedup: "
              << Table::fmt_pct(geomean(v80) / geomean(nsf) - 1.0, 1)
              << "   virec80 vs pf-exact80: "
              << Table::fmt_pct(geomean(v80) / geomean(pfx) - 1.0, 1) << "\n";
  }
  return 0;
}
