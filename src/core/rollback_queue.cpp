#include "core/rollback_queue.hpp"

#include <stdexcept>

namespace virec::core {

RollbackQueue::RollbackQueue(u32 depth) : depth_(depth) {}

void RollbackQueue::push(const Entry& entry) {
  if (fifo_.size() >= depth_) {
    throw std::logic_error("RollbackQueue overflow: backend deeper than queue");
  }
  fifo_.push_back(entry);
}

void RollbackQueue::pop_oldest() {
  if (fifo_.empty()) {
    throw std::logic_error("RollbackQueue underflow on commit");
  }
  fifo_.pop_front();
}

void RollbackQueue::flush_to(TagStore& tags) {
  for (const Entry& entry : fifo_) {
    for (u32 i = 0; i < entry.count; ++i) {
      tags.reset_c_bit(entry.phys[i], entry.tid[i], entry.arch[i]);
    }
  }
  fifo_.clear();
}

}  // namespace virec::core
