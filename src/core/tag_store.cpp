#include "core/tag_store.hpp"

#include <stdexcept>

namespace virec::core {

TagStore::TagStore(u32 num_phys_regs, u32 num_threads, PolicyKind policy,
                   u64 seed)
    : entries_(num_phys_regs),
      map_(static_cast<std::size_t>(num_threads) * isa::kNumArchRegs, -1),
      policy_(policy, seed) {
  if (num_phys_regs == 0 || num_phys_regs > 4096) {
    throw std::invalid_argument("TagStore: bad physical register count");
  }
}

int TagStore::lookup(int tid, isa::RegId arch) const {
  return map_[static_cast<std::size_t>(tid) * isa::kNumArchRegs + arch];
}

int TagStore::allocate(int tid, isa::RegId arch,
                       const std::vector<u8>& locked, Victim* victim) {
  if (victim != nullptr) *victim = Victim{};
  // Prefer a free entry.
  for (u32 i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].valid && !locked[i]) {
      policy_.on_insert(entries_, i, static_cast<u8>(tid), arch);
      map_[static_cast<std::size_t>(tid) * isa::kNumArchRegs + arch] =
          static_cast<i16>(i);
      return static_cast<int>(i);
    }
  }
  const int idx = policy_.pick_victim(entries_, locked);
  if (idx < 0) return -1;
  RfEntry& entry = entries_[static_cast<u32>(idx)];
  if (victim != nullptr) {
    victim->valid = true;
    victim->tid = entry.tid;
    victim->arch = entry.arch;
    victim->dirty = entry.dirty;
  }
  map_[static_cast<std::size_t>(entry.tid) * isa::kNumArchRegs + entry.arch] =
      -1;
  policy_.on_insert(entries_, static_cast<u32>(idx), static_cast<u8>(tid),
                    arch);
  map_[static_cast<std::size_t>(tid) * isa::kNumArchRegs + arch] =
      static_cast<i16>(idx);
  return idx;
}

void TagStore::invalidate(u32 idx) {
  RfEntry& entry = entries_[idx];
  if (!entry.valid) return;
  map_[static_cast<std::size_t>(entry.tid) * isa::kNumArchRegs + entry.arch] =
      -1;
  entry = RfEntry{};
}

void TagStore::reset_c_bit(u32 idx, int tid, isa::RegId arch) {
  RfEntry& entry = entries_[idx];
  if (entry.valid && static_cast<int>(entry.tid) == tid &&
      entry.arch == arch) {
    ReplacementPolicy::on_flush_reset(entry);
  }
}

u32 TagStore::valid_entries() const {
  u32 count = 0;
  for (const RfEntry& e : entries_) {
    if (e.valid) ++count;
  }
  return count;
}

}  // namespace virec::core
