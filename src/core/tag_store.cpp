#include "core/tag_store.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "check/check.hpp"

namespace virec::core {

TagStore::TagStore(u32 num_phys_regs, u32 num_threads, PolicyKind policy,
                   u64 seed)
    : entries_(num_phys_regs),
      map_(static_cast<std::size_t>(num_threads) * isa::kNumArchRegs, -1),
      policy_(policy, seed) {
  if (num_phys_regs == 0 || num_phys_regs > 4096) {
    throw std::invalid_argument("TagStore: bad physical register count");
  }
}

int TagStore::lookup(int tid, isa::RegId arch) const {
  return map_[static_cast<std::size_t>(tid) * isa::kNumArchRegs + arch];
}

int TagStore::allocate(int tid, isa::RegId arch,
                       const std::vector<u8>& locked, Victim* victim) {
  if (victim != nullptr) *victim = Victim{};
  // Prefer a free entry; skip the scan entirely when the RF is full
  // (the steady state of every long run).
  if (valid_count_ < entries_.size()) {
    for (u32 i = 0; i < entries_.size(); ++i) {
      if (!entries_[i].valid && !locked[i]) {
        policy_.on_insert(entries_, i, static_cast<u8>(tid), arch);
        ++valid_count_;
        map_[static_cast<std::size_t>(tid) * isa::kNumArchRegs + arch] =
            static_cast<i16>(i);
        return static_cast<int>(i);
      }
    }
  }
  const int idx = policy_.pick_victim(entries_, locked);
  if (idx < 0) return -1;
  RfEntry& entry = entries_[static_cast<u32>(idx)];
  if (victim != nullptr) {
    victim->valid = true;
    victim->tid = entry.tid;
    victim->arch = entry.arch;
    victim->dirty = entry.dirty;
  }
  map_[static_cast<std::size_t>(entry.tid) * isa::kNumArchRegs + entry.arch] =
      -1;
  policy_.on_insert(entries_, static_cast<u32>(idx), static_cast<u8>(tid),
                    arch);
  map_[static_cast<std::size_t>(tid) * isa::kNumArchRegs + arch] =
      static_cast<i16>(idx);
  return idx;
}

void TagStore::invalidate(u32 idx) {
  RfEntry& entry = entries_[idx];
  if (!entry.valid) return;
  map_[static_cast<std::size_t>(entry.tid) * isa::kNumArchRegs + entry.arch] =
      -1;
  entry = RfEntry{};
  --valid_count_;
}

void TagStore::reset_c_bit(u32 idx, int tid, isa::RegId arch) {
  RfEntry& entry = entries_[idx];
  if (entry.valid && static_cast<int>(entry.tid) == tid &&
      entry.arch == arch) {
    ReplacementPolicy::on_flush_reset(entry);
  }
}

u32 TagStore::valid_entries() const {
  u32 count = 0;
  for (const RfEntry& e : entries_) {
    if (e.valid) ++count;
  }
  return count;
}

void TagStore::audit(const check::CheckContext* check) const {
  if (check == nullptr || !check->enabled()) return;
  // Forward direction: every valid entry must be mapped at its slot.
  for (u32 i = 0; i < entries_.size(); ++i) {
    const RfEntry& e = entries_[i];
    if (!e.valid) continue;
    const std::size_t slot =
        static_cast<std::size_t>(e.tid) * isa::kNumArchRegs + e.arch;
    VIREC_CHECK(check, slot < map_.size(),
                "tag store entry " + std::to_string(i) +
                    " carries out-of-range tag (tid " + std::to_string(e.tid) +
                    ", x" + std::to_string(e.arch) + ")");
    VIREC_CHECK(check, map_[slot] == static_cast<i16>(i),
                "tag store entry " + std::to_string(i) + " tagged (tid " +
                    std::to_string(e.tid) + ", x" + std::to_string(e.arch) +
                    ") but map slot points at " + std::to_string(map_[slot]) +
                    " — duplicate or stale mapping");
  }
  // Reverse direction: every mapped slot must name a matching entry.
  for (std::size_t slot = 0; slot < map_.size(); ++slot) {
    const i16 m = map_[slot];
    if (m < 0) continue;
    const auto tid = static_cast<u8>(slot / isa::kNumArchRegs);
    const auto arch = static_cast<isa::RegId>(slot % isa::kNumArchRegs);
    VIREC_CHECK(check, static_cast<std::size_t>(m) < entries_.size(),
                "tag store map slot (tid " + std::to_string(tid) + ", x" +
                    std::to_string(arch) + ") points past the RF");
    const RfEntry& e = entries_[static_cast<u32>(m)];
    VIREC_CHECK(check, e.valid && e.tid == tid && e.arch == arch,
                "tag store map slot (tid " + std::to_string(tid) + ", x" +
                    std::to_string(arch) + ") points at entry " +
                    std::to_string(m) + " which is " +
                    (e.valid ? "tagged (tid " + std::to_string(e.tid) +
                                   ", x" + std::to_string(e.arch) + ")"
                             : "free"));
  }
}

bool TagStore::corrupt_swap_tags_for_test() {
  int first = -1;
  for (u32 i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].valid) continue;
    if (first < 0) {
      first = static_cast<int>(i);
      continue;
    }
    RfEntry& a = entries_[static_cast<u32>(first)];
    RfEntry& b = entries_[i];
    std::swap(a.tid, b.tid);
    std::swap(a.arch, b.arch);
    return true;
  }
  return false;
}

void TagStore::save_state(ckpt::Encoder& enc) const {
  enc.put_u32(static_cast<u32>(entries_.size()));
  for (const RfEntry& e : entries_) {
    enc.put_bool(e.valid);
    enc.put_u8(e.tid);
    enc.put_u8(e.arch);
    enc.put_bool(e.dirty);
    // Materialize the lazy T and age fields so the snapshot format is
    // unchanged from the eager representation.
    enc.put_u8(e.valid ? policy_.t_of(e) : 0);
    enc.put_u8(e.valid ? policy_.age_of(e) : 0);
    enc.put_bool(e.c_bit);
    enc.put_u64(e.last_use);
    enc.put_u64(e.insert_seq);
  }
  enc.put_u32(static_cast<u32>(map_.size()));
  for (i16 m : map_) enc.put_u16(static_cast<u16>(m));
  policy_.save_state(enc);
}

void TagStore::restore_state(ckpt::Decoder& dec) {
  const u32 n_entries = dec.get_u32();
  if (n_entries != entries_.size()) {
    throw ckpt::CkptError("TagStore: snapshot has " +
                          std::to_string(n_entries) +
                          " entries, tag store has " +
                          std::to_string(entries_.size()));
  }
  for (RfEntry& e : entries_) {
    e.valid = dec.get_bool();
    e.tid = dec.get_u8();
    e.arch = dec.get_u8();
    e.dirty = dec.get_bool();
    e.t_bits = dec.get_u8();
    e.age = dec.get_u8();
    e.c_bit = dec.get_bool();
    e.last_use = dec.get_u64();
    e.insert_seq = dec.get_u64();
  }
  const u32 n_map = dec.get_u32();
  if (n_map != map_.size()) {
    throw ckpt::CkptError("TagStore: snapshot map size mismatch");
  }
  for (i16& m : map_) m = static_cast<i16>(dec.get_u16());
  policy_.restore_state(dec);
  // The snapshot carries materialized ages and T values; rebase every
  // entry's lazy marks on the live ticks (which are not serialized) and
  // rebuild the valid-entry count.
  valid_count_ = 0;
  for (RfEntry& e : entries_) {
    e.age_mark = policy_.age_tick_now();
    e.t_mark = policy_.switch_epoch_now();
    if (e.valid) ++valid_count_;
  }
}

}  // namespace virec::core
