#include "core/replacement_policy.hpp"

#include <algorithm>
#include <stdexcept>

namespace virec::core {

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kPLRU: return "plru";
    case PolicyKind::kLRU: return "lru";
    case PolicyKind::kFIFO: return "fifo";
    case PolicyKind::kRandom: return "random";
    case PolicyKind::kMrtPLRU: return "mrt-plru";
    case PolicyKind::kMrtLRU: return "mrt-lru";
    case PolicyKind::kLRC: return "lrc";
  }
  return "?";
}

PolicyKind parse_policy(const std::string& name) {
  for (PolicyKind kind : all_policies()) {
    if (name == policy_name(kind)) return kind;
  }
  throw std::invalid_argument("unknown policy '" + name + "'");
}

std::vector<PolicyKind> all_policies() {
  return {PolicyKind::kPLRU,    PolicyKind::kLRU,    PolicyKind::kFIFO,
          PolicyKind::kRandom,  PolicyKind::kMrtPLRU, PolicyKind::kMrtLRU,
          PolicyKind::kLRC};
}

ReplacementPolicy::ReplacementPolicy(PolicyKind kind, u64 seed)
    : kind_(kind), rng_(seed) {}

void ReplacementPolicy::on_access(std::vector<RfEntry>& entries, u32 idx) {
  // Every access ages all other entries (saturating 3-bit counters):
  // entries not touched for a handful of accesses all reach the
  // maximum age — the "fuzzing of reuse distances" of Section 4.2 that
  // the commit bit disambiguates. Realized lazily: the global tick
  // advances once per access, and age_of() reads each entry's age as
  // the capped distance to its last reset, so the per-access cost is
  // O(1) instead of a sweep over the whole register file.
  ++age_tick_;
  RfEntry& entry = entries[idx];
  entry.age = 0;
  entry.age_mark = age_tick_;
  entry.last_use = ++tick_;
  entry.c_bit = true;  // speculative; rollback clears it on flush
}

void ReplacementPolicy::on_instruction(std::vector<RfEntry>& entries,
                                       const std::vector<u32>& accessed) {
  // Materialize each entry's lazy age, apply the per-instruction
  // increment, and rebase its mark on the current tick so the stored
  // value is directly readable (tests and checkpoints rely on this).
  for (u32 i = 0; i < entries.size(); ++i) {
    RfEntry& entry = entries[i];
    if (!entry.valid) continue;
    const u8 aged = age_of(entry);
    entry.age_mark = age_tick_;
    if (std::find(accessed.begin(), accessed.end(), i) != accessed.end()) {
      entry.age = aged;
      continue;
    }
    entry.age = aged < kMaxAge ? static_cast<u8>(aged + 1) : kMaxAge;
  }
}

void ReplacementPolicy::on_insert(std::vector<RfEntry>& entries, u32 idx,
                                  u8 tid, isa::RegId arch) {
  RfEntry& entry = entries[idx];
  entry.valid = true;
  entry.tid = tid;
  entry.arch = arch;
  entry.dirty = false;
  entry.t_bits = 0;
  entry.t_mark = switch_epoch_;
  entry.age = 0;
  entry.age_mark = age_tick_;
  entry.c_bit = true;
  entry.last_use = ++tick_;
  entry.insert_seq = ++seq_;
}

void ReplacementPolicy::on_context_switch(int from_tid, int to_tid) {
  // O(1) lazy form of: from's entries get T = kMaxTBits, to's get 0,
  // everyone else decrements saturating at zero. The from event is
  // recorded first so from == to resolves to kMaxTBits, matching the
  // eager walk's if/else ordering.
  ++switch_epoch_;
  if (from_tid >= 0 && from_tid < static_cast<int>(switch_ev_.size())) {
    switch_ev_[static_cast<std::size_t>(from_tid)] = {switch_epoch_,
                                                      kMaxTBits};
  }
  if (to_tid >= 0 && to_tid != from_tid &&
      to_tid < static_cast<int>(switch_ev_.size())) {
    switch_ev_[static_cast<std::size_t>(to_tid)] = {switch_epoch_, 0};
  }
}

u64 ReplacementPolicy::priority(const RfEntry& entry) const {
  // Perfect timestamps are inverted so "older" => larger priority.
  const u64 inv_use = ~entry.last_use;
  const u64 inv_seq = ~entry.insert_seq;
  switch (kind_) {
    case PolicyKind::kPLRU:
      return age_of(entry);
    case PolicyKind::kLRU:
      return inv_use;
    case PolicyKind::kFIFO:
      return inv_seq;
    case PolicyKind::kRandom:
      return 0;  // handled in pick_victim
    case PolicyKind::kMrtPLRU:
      return (u64{t_of(entry)} << 3) | age_of(entry);
    case PolicyKind::kMrtLRU:
      return (u64{t_of(entry)} << 58) | (inv_use & ((u64{1} << 58) - 1));
    case PolicyKind::kLRC:
      return (u64{t_of(entry)} << 4) | (u64{entry.c_bit} << 3) |
             age_of(entry);
  }
  return 0;
}

int ReplacementPolicy::pick_victim(const std::vector<RfEntry>& entries,
                                   const std::vector<u8>& locked) {
  if (kind_ == PolicyKind::kRandom) {
    std::vector<u32> candidates;
    for (u32 i = 0; i < entries.size(); ++i) {
      if (entries[i].valid && !locked[i]) candidates.push_back(i);
    }
    if (candidates.empty()) return -1;
    return static_cast<int>(candidates[rng_.next_below(candidates.size())]);
  }
  int best = -1;
  u64 best_priority = 0;
  for (u32 i = 0; i < entries.size(); ++i) {
    if (!entries[i].valid || locked[i]) continue;
    const u64 p = priority(entries[i]);
    if (best < 0 || p > best_priority) {
      best = static_cast<int>(i);
      best_priority = p;
    }
  }
  return best;
}

}  // namespace virec::core
