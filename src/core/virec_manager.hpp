// The ViReC context manager (Figure 3(c) / Section 5): a small
// physical register file used as a fully-associative, hardware-managed
// cache of partial per-thread register contexts, with inactive
// registers spilled to the dcache-backed reserved memory region.
//
// Components (each its own module, mirroring Figure 7):
//   TagStore               — CAM mapping (tid, arch reg) -> phys index
//   ReplacementPolicy      — PLRU / LRU / MRT-* / LRC victim selection
//   RollbackQueue          — C-bit rollback for flushed instructions
//   BackingStoreInterface  — register fills/spills through the dcache
//   ContextSwitchLogic     — sysreg ping-pong buffer on switches
//
// The NSF (Named-State Register File) prior-work baseline is the same
// datapath with its published feature set: PLRU replacement, blocking
// BSI, no dummy-destination fill, no dcache line pinning and no sysreg
// prefetching (see make_nsf_config()).
#pragma once

#include <memory>
#include <vector>

#include "core/context_switch_logic.hpp"
#include "core/rollback_queue.hpp"
#include "core/tag_store.hpp"
#include "cpu/context_manager.hpp"
#include "cpu/trace.hpp"

namespace virec::core {

struct ViReCConfig {
  /// Physical registers shared by all thread contexts.
  u32 num_phys_regs = 32;
  PolicyKind policy = PolicyKind::kLRC;
  BsiConfig bsi{};
  CslConfig csl{};
  /// Rollback queue depth = processor backend capacity.
  u32 rollback_depth = 8;
  u64 seed = 0x5eedf00d;

  // --- future-work extensions (Section 8 of the paper) ---
  /// Group evictions: on a context switch, eagerly write back the
  /// suspended thread's dirty *committed* registers as a group, so
  /// later evictions of those entries are spill-free.
  bool group_spill = false;
  /// Prefetch + caching hybrid: on a switch, prefetch the incoming
  /// thread's previous-episode register set into the RF in the
  /// background, overlapping the pipeline refill.
  bool switch_prefetch = false;
};

/// The NSF baseline configuration evaluated in Figure 9.
ViReCConfig make_nsf_config(u32 num_phys_regs);

class ViReCManager final : public cpu::ContextManager {
 public:
  ViReCManager(const ViReCConfig& config, const cpu::CoreEnv& env);

  // --- cpu::ContextManager ---
  Cycle on_thread_start(int tid, Cycle now) override;
  cpu::DecodeAccess on_decode(int tid, const isa::Inst& inst,
                              Cycle now) override;
  void on_commit(int tid, const isa::Inst& inst) override;
  void on_mispredict_flush(int tid) override;
  Cycle on_context_switch(int from_tid, int to_tid, int predicted_next,
                          Cycle now) override;
  bool switch_allowed(Cycle now) const override;
  Cycle next_event_cycle(Cycle now) const override;
  void on_thread_halt(int tid, Cycle now) override;
  void warm_thread_start(int tid, Cycle warm_now) override;
  void warm_decode(int tid, const isa::Inst& inst, Cycle warm_now) override;
  void warm_context_switch(int from_tid, int to_tid, int predicted_next,
                           Cycle warm_now) override;
  void warm_thread_halt(int tid, Cycle warm_now) override;
  u32 physical_regs() const override { return config_.num_phys_regs; }

  // --- isa::RegisterFileIO (functional) ---
  u64 read_reg(int tid, isa::RegId reg) override;
  void write_reg(int tid, isa::RegId reg, u64 value) override;

  // Introspection for tests and experiments.
  const TagStore& tag_store() const { return tags_; }
  const RollbackQueue& rollback_queue() const { return rollback_; }
  /// Mutable access for fault-injection tests (negative check tests).
  TagStore& tag_store_for_test() { return tags_; }
  const ViReCConfig& config() const { return config_; }
  double rf_hit_rate() const;

  /// Attach a trace sink for register fills/spills and rollback
  /// flushes (nullptr detaches; not owned). Typically the same sink
  /// the owning core uses.
  void set_tracer(cpu::TraceSink* tracer) override { tracer_ = tracer; }

  void save_state(ckpt::Encoder& enc) const override;
  void restore_state(ckpt::Decoder& dec) override;

 private:
  /// Evict whatever currently occupies (the policy's choice of) an
  /// entry and install (tid, arch); returns phys index or -1 when all
  /// entries are locked.
  int allocate_entry(int tid, isa::RegId arch, std::vector<u8>& locked,
                     Cycle now, Cycle& spill_done);
  /// Functional mirror of allocate_entry: same tag-store transition and
  /// dirty-victim backing write, dcache warmth via the BSI warm path,
  /// no timing, counters, or rollback interaction.
  int warm_allocate(int tid, isa::RegId arch, std::vector<u8>& locked,
                    Cycle warm_now);

  ViReCConfig config_;
  TagStore tags_;
  RollbackQueue rollback_;
  BackingStoreInterface bsi_;
  ContextSwitchLogic csl_;
  std::vector<u64> phys_values_;
  // Per-decode scratch: entries this instruction already references
  // (must not evict each other). Reused across decodes so the hot path
  // never heap-allocates.
  std::vector<u8> locked_scratch_;
  // Per-thread register sets for the switch-prefetch extension.
  std::vector<u32> used_this_episode_;
  std::vector<u32> last_episode_used_;
  // Detailed (opt-in) stats; owned by stats_.
  Histogram* hist_rollback_depth_ = nullptr;
  Distribution* dist_decode_stall_ = nullptr;
  // Hot-path counter handles (owned by stats_).
  double* c_rf_hits_ = nullptr;
  double* c_rf_misses_ = nullptr;
  double* c_rf_spills_ = nullptr;
  double* c_rf_evictions_ = nullptr;
  cpu::TraceSink* tracer_ = nullptr;
};

}  // namespace virec::core
