#include "core/context_switch_logic.hpp"

#include <algorithm>

namespace virec::core {

ContextSwitchLogic::ContextSwitchLogic(const CslConfig& config,
                                       u32 num_threads,
                                       BackingStoreInterface& bsi,
                                       StatSet& stats)
    : config_(config),
      bsi_(bsi),
      stats_(stats),
      sysreg_ready_(num_threads, 0),
      buffered_(num_threads, 0) {
  c_prefetch_late_ = stats_.counter(
      "csl_prefetch_late", "sysreg prefetches that had not landed at switch");
  c_demand_fetches_ = stats_.counter(
      "csl_demand_sysreg_fetches", "sysreg lines fetched on demand at switch");
  c_prefetches_ = stats_.counter("csl_sysreg_prefetches",
                                 "sysreg line prefetches issued ahead");
}

Cycle ContextSwitchLogic::on_thread_start(int tid, Cycle now) {
  const auto t = static_cast<std::size_t>(tid);
  if (buffered_[t]) return std::max(now, sysreg_ready_[t]);
  const Cycle done = bsi_.sysreg_transfer(tid, /*is_write=*/false, now);
  buffered_[t] = 1;
  sysreg_ready_[t] = done;
  return done;
}

Cycle ContextSwitchLogic::on_switch(int from_tid, int to_tid,
                                    int predicted_next, Cycle now) {
  const auto to = static_cast<std::size_t>(to_tid);

  Cycle ready;
  if (buffered_[to]) {
    // Ping-pong buffer swap: the incoming sysregs are (or soon will be)
    // on chip.
    ready = std::max(now, sysreg_ready_[to]);
    if (sysreg_ready_[to] > now) ++*c_prefetch_late_;
  } else {
    // Demand fetch before the new thread can run.
    ready = bsi_.sysreg_transfer(to_tid, /*is_write=*/false, now);
    sysreg_ready_[to] = ready;
    buffered_[to] = 1;
    ++*c_demand_fetches_;
  }

  // Outgoing sysregs are written back in the background and leave the
  // buffer.
  if (from_tid >= 0) {
    bsi_.sysreg_transfer(from_tid, /*is_write=*/true, ready);
    buffered_[static_cast<std::size_t>(from_tid)] = 0;
  }

  // Prefetch the predicted next thread's sysregs, overlapping the new
  // thread's pipeline warm-up.
  if (config_.sysreg_prefetch && predicted_next >= 0 &&
      predicted_next != to_tid) {
    const auto nx = static_cast<std::size_t>(predicted_next);
    if (!buffered_[nx]) {
      sysreg_ready_[nx] =
          bsi_.sysreg_transfer(predicted_next, /*is_write=*/false, ready);
      buffered_[nx] = 1;
      ++*c_prefetches_;
    }
  }

  // The ping-pong buffer holds exactly two contexts: the running thread
  // and the prefetched one. Anything else falls out of the buffer.
  for (std::size_t t = 0; t < buffered_.size(); ++t) {
    if (static_cast<int>(t) != to_tid &&
        static_cast<int>(t) != predicted_next) {
      buffered_[t] = 0;
    }
  }
  return ready;
}

void ContextSwitchLogic::warm_thread_start(int tid, Cycle warm_now) {
  const auto t = static_cast<std::size_t>(tid);
  if (buffered_[t]) return;
  bsi_.warm_sysreg_transfer(tid, /*is_write=*/false, warm_now);
  buffered_[t] = 1;
}

void ContextSwitchLogic::warm_switch(int from_tid, int to_tid,
                                     int predicted_next, Cycle warm_now) {
  const auto to = static_cast<std::size_t>(to_tid);
  if (!buffered_[to]) {
    bsi_.warm_sysreg_transfer(to_tid, /*is_write=*/false, warm_now);
    buffered_[to] = 1;
  }
  if (from_tid >= 0) {
    bsi_.warm_sysreg_transfer(from_tid, /*is_write=*/true, warm_now);
    buffered_[static_cast<std::size_t>(from_tid)] = 0;
  }
  if (config_.sysreg_prefetch && predicted_next >= 0 &&
      predicted_next != to_tid) {
    const auto nx = static_cast<std::size_t>(predicted_next);
    if (!buffered_[nx]) {
      bsi_.warm_sysreg_transfer(predicted_next, /*is_write=*/false, warm_now);
      buffered_[nx] = 1;
    }
  }
  for (std::size_t t = 0; t < buffered_.size(); ++t) {
    if (static_cast<int>(t) != to_tid &&
        static_cast<int>(t) != predicted_next) {
      buffered_[t] = 0;
    }
  }
}

}  // namespace virec::core
