#include "core/backing_store_interface.hpp"

#include <algorithm>

namespace virec::core {

BackingStoreInterface::BackingStoreInterface(const BsiConfig& config,
                                             const cpu::CoreEnv& env,
                                             StatSet& stats)
    : config_(config), env_(env), stats_(stats) {}

Cycle BackingStoreInterface::issue(Addr addr, bool is_write, Cycle now) {
  Cycle start = now;
  if (!config_.non_blocking) {
    start = std::max(start, busy_until_);
  }
  const Cycle done = env_.ms->dcache(env_.core_id)
                         .access(addr, is_write, start,
                                 /*reg_region=*/config_.pin_lines)
                         .done;
  busy_until_ = done;
  return done;
}

Cycle BackingStoreInterface::fill(int tid, isa::RegId arch, Cycle now) {
  const Addr addr =
      env_.ms->reg_addr(env_.core_id, static_cast<u32>(tid), arch);
  const Cycle done = issue(addr, /*is_write=*/false, now);
  last_fill_done_ = std::max(last_fill_done_, done);
  stats_.inc("bsi_fills");
  return done;
}

Cycle BackingStoreInterface::dummy_fill(int tid, isa::RegId arch, Cycle now) {
  const Addr addr =
      env_.ms->reg_addr(env_.core_id, static_cast<u32>(tid), arch);
  if (config_.dummy_dest_fill) {
    // Bookkeeping transaction proceeds in the background; the decode
    // stage gets a dummy value immediately.
    issue(addr, /*is_write=*/false, now);
    stats_.inc("bsi_dummy_fills");
    return now;
  }
  const Cycle done = issue(addr, /*is_write=*/false, now);
  last_fill_done_ = std::max(last_fill_done_, done);
  stats_.inc("bsi_fills");
  return done;
}

Cycle BackingStoreInterface::spill(int tid, isa::RegId arch, Cycle now) {
  const Addr addr =
      env_.ms->reg_addr(env_.core_id, static_cast<u32>(tid), arch);
  stats_.inc("bsi_spills");
  return issue(addr, /*is_write=*/true, now);
}

Cycle BackingStoreInterface::sysreg_transfer(int tid, bool is_write,
                                             Cycle now) {
  const Addr addr = env_.ms->sysreg_addr(env_.core_id, static_cast<u32>(tid));
  stats_.inc(is_write ? "bsi_sysreg_writes" : "bsi_sysreg_reads");
  return issue(addr, is_write, now);
}

}  // namespace virec::core
