#include "core/backing_store_interface.hpp"

#include <algorithm>

namespace virec::core {

BackingStoreInterface::BackingStoreInterface(const BsiConfig& config,
                                             const cpu::CoreEnv& env,
                                             StatSet& stats)
    : config_(config),
      env_(env),
      stats_(stats),
      dcache_(env.ms->dcache(env.core_id)) {
  c_fills_ = stats_.counter("bsi_fills",
                            "register fills read from the backing store");
  c_dummy_fills_ = stats_.counter(
      "bsi_dummy_fills", "fills satisfied without a memory access");
  c_spills_ = stats_.counter("bsi_spills",
                             "register spills written to the backing store");
  c_sysreg_reads_ = stats_.counter("bsi_sysreg_reads",
                                   "system-register line reads");
  c_sysreg_writes_ = stats_.counter("bsi_sysreg_writes",
                                    "system-register line writes");
}

Cycle BackingStoreInterface::issue(Addr addr, bool is_write, Cycle now) {
  Cycle start = now;
  if (!config_.non_blocking) {
    start = std::max(start, busy_until_);
  }
  const Cycle done =
      dcache_.access(addr, is_write, start, /*reg_region=*/config_.pin_lines)
          .done;
  busy_until_ = done;
  return done;
}

Cycle BackingStoreInterface::fill(int tid, isa::RegId arch, Cycle now) {
  const Addr addr =
      env_.ms->reg_addr(env_.core_id, static_cast<u32>(tid), arch);
  const Cycle done = issue(addr, /*is_write=*/false, now);
  last_fill_done_ = std::max(last_fill_done_, done);
  ++*c_fills_;
  return done;
}

Cycle BackingStoreInterface::dummy_fill(int tid, isa::RegId arch, Cycle now) {
  const Addr addr =
      env_.ms->reg_addr(env_.core_id, static_cast<u32>(tid), arch);
  if (config_.dummy_dest_fill) {
    // Bookkeeping transaction proceeds in the background; the decode
    // stage gets a dummy value immediately.
    issue(addr, /*is_write=*/false, now);
    ++*c_dummy_fills_;
    return now;
  }
  const Cycle done = issue(addr, /*is_write=*/false, now);
  last_fill_done_ = std::max(last_fill_done_, done);
  ++*c_fills_;
  return done;
}

Cycle BackingStoreInterface::spill(int tid, isa::RegId arch, Cycle now) {
  const Addr addr =
      env_.ms->reg_addr(env_.core_id, static_cast<u32>(tid), arch);
  ++*c_spills_;
  return issue(addr, /*is_write=*/true, now);
}

Cycle BackingStoreInterface::sysreg_transfer(int tid, bool is_write,
                                             Cycle now) {
  const Addr addr = env_.ms->sysreg_addr(env_.core_id, static_cast<u32>(tid));
  ++*(is_write ? c_sysreg_writes_ : c_sysreg_reads_);
  return issue(addr, is_write, now);
}

void BackingStoreInterface::warm_reg_transfer(int tid, isa::RegId arch,
                                              bool is_write, Cycle warm_now) {
  dcache_.warm_access(
      env_.ms->reg_addr(env_.core_id, static_cast<u32>(tid), arch), is_write,
      warm_now, /*reg_region=*/config_.pin_lines);
}

void BackingStoreInterface::warm_sysreg_transfer(int tid, bool is_write,
                                                 Cycle warm_now) {
  dcache_.warm_access(env_.ms->sysreg_addr(env_.core_id,
                                           static_cast<u32>(tid)),
                      is_write, warm_now, /*reg_region=*/config_.pin_lines);
}

}  // namespace virec::core
