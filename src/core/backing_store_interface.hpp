// Backing Store Interface (Section 5.3): moves registers between the
// physical RF and the dcache backing store.
//
//  * Fills are loads from the reserved register region; spills are
//    stores. Register-region accesses drive the dcache pin counters
//    when pinning is enabled.
//  * Non-blocking mode pipelines requests through the dcache port;
//    blocking mode (the NSF baseline) serialises them.
//  * The dummy-destination optimisation writes a placeholder for
//    destination-only registers: the backing transaction is still
//    issued for metadata bookkeeping, but its latency leaves the
//    critical path.
//  * While a fill is outstanding the BSI masks context switches
//    (switch_allowed input to the CSL).
#pragma once

#include "common/stats.hpp"
#include "cpu/context_manager.hpp"

namespace virec::core {

struct BsiConfig {
  bool non_blocking = true;
  bool dummy_dest_fill = true;
  /// Pin register lines in the dcache while their registers are live.
  bool pin_lines = true;
};

class BackingStoreInterface {
 public:
  BackingStoreInterface(const BsiConfig& config, const cpu::CoreEnv& env,
                        StatSet& stats);

  /// Fetch (tid, arch) from the backing store; returns data-ready time.
  Cycle fill(int tid, isa::RegId arch, Cycle now);

  /// Destination-only allocation: bookkeeping transaction off the
  /// critical path (or a real fill when the optimisation is disabled).
  Cycle dummy_fill(int tid, isa::RegId arch, Cycle now);

  /// Write an evicted register back; background (does not stall decode)
  /// but occupies the dcache port and, in blocking mode, the BSI.
  Cycle spill(int tid, isa::RegId arch, Cycle now);

  /// Write/read the sysreg line (used by the CSL ping-pong buffer).
  Cycle sysreg_transfer(int tid, bool is_write, Cycle now);

  /// Functional warm variants (tiered fast-forward): same dcache line
  /// and pin-counter footprint via Cache::warm_access, but no occupancy
  /// cursors, no counters and no switch masking.
  void warm_reg_transfer(int tid, isa::RegId arch, bool is_write,
                         Cycle warm_now);
  void warm_sysreg_transfer(int tid, bool is_write, Cycle warm_now);

  /// CSL mask: an outstanding fill forbids context switches.
  bool fill_outstanding(Cycle now) const { return last_fill_done_ > now; }

  /// Completion cycle of the masking fill when one is outstanding at
  /// @p now (kNeverCycle otherwise) — the cycle the CSL mask clears.
  Cycle mask_clear_cycle(Cycle now) const {
    return last_fill_done_ > now ? last_fill_done_ : kNeverCycle;
  }

  const BsiConfig& config() const { return config_; }

  /// Checkpoint the occupancy cursors (the stat set is owned by the
  /// manager and checkpointed there).
  void save_state(ckpt::Encoder& enc) const {
    enc.put_u64(busy_until_);
    enc.put_u64(last_fill_done_);
  }
  void restore_state(ckpt::Decoder& dec) {
    busy_until_ = dec.get_u64();
    last_fill_done_ = dec.get_u64();
  }

 private:
  Cycle issue(Addr addr, bool is_write, Cycle now);

  BsiConfig config_;
  cpu::CoreEnv env_;
  StatSet& stats_;
  mem::Cache& dcache_;  // this core's dcache, resolved once
  Cycle busy_until_ = 0;      // blocking-mode serialisation
  Cycle last_fill_done_ = 0;  // switch mask
  // Hot-path counter handles (owned by stats_).
  double* c_fills_ = nullptr;
  double* c_dummy_fills_ = nullptr;
  double* c_spills_ = nullptr;
  double* c_sysreg_reads_ = nullptr;
  double* c_sysreg_writes_ = nullptr;
};

}  // namespace virec::core
