// The VRMU rollback queue (Section 5.1): a FIFO with one entry per
// in-flight instruction, recording which physical registers it touched
// and whether it is a memory operation.
//
//  * decode pushes an entry;
//  * commit pops the oldest entry (its registers keep C = 1);
//  * a context-switch flush compacts all remaining entries into a
//    one-hot vector and resets the C bits of those registers, marking
//    them "will be replayed soon -- retain";
//  * the oldest entry's memory-op flag feeds the CSL switch mask.
#pragma once

#include <array>
#include <deque>

#include "core/tag_store.hpp"

namespace virec::core {

class RollbackQueue {
 public:
  explicit RollbackQueue(u32 depth);

  struct Entry {
    u32 count = 0;
    std::array<u16, 4> phys{};
    std::array<u8, 4> tid{};
    std::array<isa::RegId, 4> arch{};
    bool is_mem = false;
  };

  /// Push a decoded instruction's register set. The queue depth equals
  /// the processor backend capacity, so overflow indicates a pipeline
  /// modelling bug; it throws.
  void push(const Entry& entry);

  /// Commit the oldest in-flight instruction.
  void pop_oldest();

  /// Context-switch flush: reset C bits of every queued register whose
  /// mapping is still current, then clear the queue.
  void flush_to(TagStore& tags);

  /// Wrong-path discard (branch misprediction, post-halt fetch): drop
  /// entries without touching C bits.
  void clear() { fifo_.clear(); }

  /// CSL mask input: is the oldest in-flight instruction a memory op?
  bool oldest_is_mem() const { return !fifo_.empty() && fifo_.front().is_mem; }

  u32 size() const { return static_cast<u32>(fifo_.size()); }
  bool empty() const { return fifo_.empty(); }
  u32 depth() const { return depth_; }

  /// Checkpoint the in-flight entries (oldest first).
  void save_state(ckpt::Encoder& enc) const {
    enc.put_u32(static_cast<u32>(fifo_.size()));
    for (const Entry& e : fifo_) {
      enc.put_u32(e.count);
      for (u16 p : e.phys) enc.put_u16(p);
      for (u8 t : e.tid) enc.put_u8(t);
      for (isa::RegId a : e.arch) enc.put_u8(a);
      enc.put_bool(e.is_mem);
    }
  }
  void restore_state(ckpt::Decoder& dec) {
    fifo_.clear();
    const u32 n = dec.get_u32();
    if (n > depth_) {
      throw ckpt::CkptError("RollbackQueue: snapshot deeper than queue");
    }
    for (u32 i = 0; i < n; ++i) {
      Entry e;
      e.count = dec.get_u32();
      for (u16& p : e.phys) p = dec.get_u16();
      for (u8& t : e.tid) t = dec.get_u8();
      for (isa::RegId& a : e.arch) a = dec.get_u8();
      e.is_mem = dec.get_bool();
      fifo_.push_back(e);
    }
  }

 private:
  u32 depth_;
  std::deque<Entry> fifo_;
};

}  // namespace virec::core
