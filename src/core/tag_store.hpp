// The VRMU tag store (Figure 8): a fully-associative CAM that maps
// (thread, architectural register) pairs to physical register file
// indices and owns the replacement state of every entry.
#pragma once

#include <vector>

#include "core/replacement_policy.hpp"

namespace virec::check {
class CheckContext;
}  // namespace virec::check

namespace virec::core {

class TagStore {
 public:
  TagStore(u32 num_phys_regs, u32 num_threads, PolicyKind policy,
           u64 seed = 0x5eedf00d);

  /// Physical index holding (tid, arch), or -1.
  int lookup(int tid, isa::RegId arch) const;

  /// Record a decode access to @p idx (policy A/C/timestamps).
  void touch(u32 idx) { policy_.on_access(entries_, idx); }

  /// Per-instruction aging; @p accessed lists the entry indices the
  /// instruction touched.
  void age_tick(const std::vector<u32>& accessed) {
    policy_.on_instruction(entries_, accessed);
  }

  struct Victim {
    bool valid = false;  ///< an existing mapping was displaced
    u8 tid = 0;
    isa::RegId arch = 0;
    bool dirty = false;
  };

  /// Install a mapping for (tid, arch), evicting if the RF is full.
  /// Entries flagged in @p locked are exempt from eviction. Returns the
  /// physical index, or -1 when every entry is locked.
  int allocate(int tid, isa::RegId arch, const std::vector<u8>& locked,
               Victim* victim);

  /// Drop the mapping in entry @p idx (thread halt).
  void invalidate(u32 idx);

  void mark_dirty(u32 idx) { entries_[idx].dirty = true; }
  void clear_dirty(u32 idx) { entries_[idx].dirty = false; }

  /// T-bit update on a context switch (O(1); ReplacementPolicy::t_of
  /// materializes per-entry values on access).
  void on_context_switch(int from_tid, int to_tid) {
    policy_.on_context_switch(from_tid, to_tid);
  }

  /// Effective T value of entry @p idx (lazy T materialization).
  u8 entry_t(u32 idx) const { return policy_.t_of(entries_[idx]); }

  /// Rollback-queue compaction: reset the C bit of entry @p idx if it
  /// still maps (tid, arch); stale (remapped) indices are ignored.
  void reset_c_bit(u32 idx, int tid, isa::RegId arch);

  const RfEntry& entry(u32 idx) const { return entries_[idx]; }
  const std::vector<RfEntry>& entries() const { return entries_; }
  u32 size() const { return static_cast<u32>(entries_.size()); }
  u32 valid_entries() const;
  PolicyKind policy_kind() const { return policy_.kind(); }

  /// Checkpoint every entry, the (tid, arch) -> phys map and the
  /// policy counters. Restore validates the entry/map sizes.
  void save_state(ckpt::Encoder& enc) const;
  void restore_state(ckpt::Decoder& dec);

  /// Hard invariants (VIREC_CHECK through @p check, no-op when null or
  /// disabled): the CAM and the direct map must agree bidirectionally —
  /// every valid entry is mapped at its (tid, arch) slot and every
  /// mapped slot points at a valid entry with the matching tag — and no
  /// two valid entries may carry the same (tid, arch).
  void audit(const check::CheckContext* check) const;

  /// Fault injection for the negative self-tests: swap the (tid, arch)
  /// tags of the first two valid entries WITHOUT fixing the map — the
  /// CAM-aliasing corruption audit() and the oracle must both catch.
  /// Returns false if fewer than two entries are valid.
  bool corrupt_swap_tags_for_test();

 private:
  std::vector<RfEntry> entries_;
  // Direct map for O(1) lookup: (tid * 32 + arch) -> phys idx or -1.
  std::vector<i16> map_;
  ReplacementPolicy policy_;
  // Number of valid entries; lets allocate() skip the free-entry scan
  // once the RF is full (valid_entries() recounts independently).
  u32 valid_count_ = 0;
};

}  // namespace virec::core
