#include "core/virec_manager.hpp"

#include <algorithm>
#include <string>

#include "check/check.hpp"

namespace virec::core {

ViReCConfig make_nsf_config(u32 num_phys_regs) {
  ViReCConfig config;
  config.num_phys_regs = num_phys_regs;
  config.policy = PolicyKind::kPLRU;
  config.bsi.non_blocking = false;
  config.bsi.dummy_dest_fill = false;
  config.bsi.pin_lines = false;
  config.csl.sysreg_prefetch = false;
  return config;
}

ViReCManager::ViReCManager(const ViReCConfig& config, const cpu::CoreEnv& env)
    : ContextManager(env, "virec"),
      config_(config),
      tags_(config.num_phys_regs, env.num_threads, config.policy,
            config.seed),
      rollback_(config.rollback_depth),
      bsi_(config.bsi, env, stats_),
      csl_(config.csl, env.num_threads, bsi_, stats_),
      phys_values_(config.num_phys_regs, 0),
      locked_scratch_(config.num_phys_regs, 0),
      used_this_episode_(env.num_threads, 0),
      last_episode_used_(env.num_threads, 0) {
  c_rf_hits_ = stats_.counter("rf_hits",
                              "decode operands present in the physical RF");
  c_rf_misses_ = stats_.counter(
      "rf_misses", "decode operands filled from the backing store");
  c_rf_spills_ = stats_.counter(
      "rf_spills", "dirty registers written back on eviction");
  c_rf_evictions_ = stats_.counter(
      "rf_evictions", "physical registers reclaimed by the eviction policy");
  stats_.describe("context_switches", "context switches handled");
  stats_.describe("group_spills",
                  "spill-group writebacks batched at context switch");
  stats_.describe("switch_prefetch_fills",
                  "registers prefetched into the RF at context switch");
  hist_rollback_depth_ = stats_.histogram(
      "rollback_depth", "rollback-queue occupancy sampled at each decode");
  dist_decode_stall_ = stats_.distribution(
      "decode_stall", "cycles a missing decode waited for its fills");
}

Cycle ViReCManager::on_thread_start(int tid, Cycle now) {
  // General-purpose registers are demand-filled; only the sysreg line
  // must be present before the thread can fetch.
  return csl_.on_thread_start(tid, now);
}

int ViReCManager::allocate_entry(int tid, isa::RegId arch,
                                 std::vector<u8>& locked, Cycle now,
                                 Cycle& spill_done) {
  TagStore::Victim victim;
  const int idx = tags_.allocate(tid, arch, locked, &victim);
  if (idx < 0) return -1;
  if (victim.valid && victim.dirty) {
    // Functional value moves to the backing store immediately; the
    // timing cost is a background BSI spill.
    backing_write(victim.tid, victim.arch,
                  phys_values_[static_cast<u32>(idx)]);
    spill_done =
        std::max(spill_done, bsi_.spill(victim.tid, victim.arch, now));
    ++*c_rf_spills_;
    if (tracer_ != nullptr) {
      tracer_->on_reg_spill(now, victim.tid, victim.arch);
    }
  }
  if (victim.valid) ++*c_rf_evictions_;
  locked[static_cast<u32>(idx)] = 1;
  return idx;
}

cpu::DecodeAccess ViReCManager::on_decode(int tid, const isa::Inst& inst,
                                          Cycle now) {
  cpu::DecodeAccess acc;
  acc.ready = now;

  const isa::RegList srcs = isa::src_regs(inst);
  const isa::RegList dsts = isa::dst_regs(inst);

  // Registers this instruction references must not evict each other
  // while its misses resolve.
  std::vector<u8>& locked = locked_scratch_;
  std::fill(locked.begin(), locked.end(), u8{0});
  RollbackQueue::Entry rb;
  rb.is_mem = isa::is_mem(inst.op);

  Cycle spill_done = now;

  auto record = [&](int idx, isa::RegId arch) {
    used_this_episode_[static_cast<std::size_t>(tid)] |= 1u << arch;
    locked[static_cast<u32>(idx)] = 1;
    if (rb.count < rb.phys.size()) {
      rb.phys[rb.count] = static_cast<u16>(idx);
      rb.tid[rb.count] = static_cast<u8>(tid);
      rb.arch[rb.count] = arch;
      ++rb.count;
    }
  };

  // Source operands: must hold the architectural value before decode
  // completes.
  for (u32 i = 0; i < srcs.count; ++i) {
    const isa::RegId arch = srcs.regs[i];
    int idx = tags_.lookup(tid, arch);
    if (idx >= 0) {
      ++*c_rf_hits_;
      tags_.touch(static_cast<u32>(idx));
    } else {
      ++*c_rf_misses_;
      idx = allocate_entry(tid, arch, locked, now, spill_done);
      if (idx < 0) {
        // Pathological: every entry locked by this instruction. Serve
        // the operand straight from the backing store.
        acc.ready = std::max(acc.ready, bsi_.fill(tid, arch, acc.ready));
        acc.hit = false;
        ++acc.fills;
        continue;
      }
      phys_values_[static_cast<u32>(idx)] = backing_read(tid, arch);
      acc.ready = std::max(acc.ready, bsi_.fill(tid, arch, now));
      acc.hit = false;
      ++acc.fills;
      if (tracer_ != nullptr) tracer_->on_reg_fill(now, tid, arch);
    }
    record(idx, arch);
  }

  // Destination-only operands: allocate, optionally with a dummy fill.
  for (u32 i = 0; i < dsts.count; ++i) {
    const isa::RegId arch = dsts.regs[i];
    bool also_src = false;
    for (u32 j = 0; j < srcs.count; ++j) {
      if (srcs.regs[j] == arch) {
        also_src = true;
        break;
      }
    }
    if (also_src) continue;
    int idx = tags_.lookup(tid, arch);
    if (idx >= 0) {
      ++*c_rf_hits_;
      tags_.touch(static_cast<u32>(idx));
    } else {
      ++*c_rf_misses_;
      idx = allocate_entry(tid, arch, locked, now, spill_done);
      if (idx < 0) continue;  // handled functionally via backing store
      // The architectural value is dead (pure destination); install the
      // current backing value so partial-width updates stay correct,
      // but do not put the fill latency on the critical path.
      phys_values_[static_cast<u32>(idx)] = backing_read(tid, arch);
      const Cycle done = bsi_.dummy_fill(tid, arch, now);
      acc.ready = std::max(acc.ready, done);
      if (done > now) {
        acc.hit = false;
        ++acc.fills;
      }
    }
    record(idx, arch);
  }

  rollback_.push(rb);
  hist_rollback_depth_->record(static_cast<double>(rollback_.size()));
  if (check_ != nullptr) {
    tags_.audit(check_);
    VIREC_CHECK(check_, rollback_.size() <= rollback_.depth(),
                "rollback queue holds " + std::to_string(rollback_.size()) +
                    " entries, depth " + std::to_string(rollback_.depth()));
  }
  if (!acc.hit) {
    dist_decode_stall_->record(
        static_cast<double>(acc.ready > now ? acc.ready - now : 0));
  }
  acc.spills = static_cast<u32>(*c_rf_spills_);
  return acc;
}

void ViReCManager::on_commit(int tid, const isa::Inst& inst) {
  (void)tid;
  (void)inst;
  if (!rollback_.empty()) rollback_.pop_oldest();
}

void ViReCManager::on_mispredict_flush(int tid) {
  (void)tid;
  // Wrong-path instructions never replay; drop their entries without
  // resetting C bits.
  rollback_.clear();
}

Cycle ViReCManager::on_context_switch(int from_tid, int to_tid,
                                      int predicted_next, Cycle now) {
  const u32 flushed = rollback_.size();
  if (tracer_ != nullptr && flushed > 0) {
    tracer_->on_rollback(now, from_tid >= 0 ? from_tid : to_tid, flushed);
  }
  rollback_.flush_to(tags_);
  tags_.on_context_switch(from_tid, to_tid);
  stats_.inc("context_switches");

  if (from_tid >= 0) {
    const auto from = static_cast<std::size_t>(from_tid);
    last_episode_used_[from] = used_this_episode_[from];
    used_this_episode_[from] = 0;

    if (config_.group_spill) {
      // Future-work "group evictions": eagerly write back the
      // suspended thread's dirty committed registers in one burst.
      // Their entries stay valid (and clean), so when the policy later
      // victimises them no spill sits on anyone's critical path.
      Cycle t = now;
      for (u32 i = 0; i < tags_.size(); ++i) {
        const RfEntry& entry = tags_.entry(i);
        if (!entry.valid || static_cast<int>(entry.tid) != from_tid ||
            !entry.dirty || !entry.c_bit) {
          continue;
        }
        backing_write(from_tid, entry.arch, phys_values_[i]);
        t = bsi_.spill(from_tid, entry.arch, t);
        tags_.clear_dirty(i);
        stats_.inc("group_spills");
      }
    }
  }

  const Cycle ready = csl_.on_switch(from_tid, to_tid, predicted_next, now);

  if (config_.switch_prefetch && to_tid >= 0) {
    // Future-work prefetch hybrid: pull the incoming thread's
    // previous-episode registers into the RF in the background. The
    // BSI traffic overlaps the pipeline refill; wrongly predicted
    // registers simply occupy entries until evicted.
    const auto to = static_cast<std::size_t>(to_tid);
    const u32 want = last_episode_used_[to];
    std::vector<u8> locked(config_.num_phys_regs, 0);
    Cycle t = now;
    for (u8 arch = 0; arch < isa::kNumAllocatableRegs; ++arch) {
      if (!(want & (1u << arch))) continue;
      if (tags_.lookup(to_tid, arch) >= 0) continue;
      Cycle spill_done = t;
      const int idx = allocate_entry(to_tid, arch, locked, t, spill_done);
      if (idx < 0) break;
      phys_values_[static_cast<u32>(idx)] = backing_read(to_tid, arch);
      t = bsi_.fill(to_tid, arch, t);
      stats_.inc("switch_prefetch_fills");
    }
  }
  return ready;
}

bool ViReCManager::switch_allowed(Cycle now) const {
  return !bsi_.fill_outstanding(now);
}

Cycle ViReCManager::next_event_cycle(Cycle now) const {
  // The only autonomous transition is the CSL mask clearing when the
  // outstanding BSI fill completes; everything else happens inside
  // pipeline hooks.
  return bsi_.mask_clear_cycle(now);
}

void ViReCManager::on_thread_halt(int tid, Cycle now) {
  Cycle t = now;
  for (u32 i = 0; i < tags_.size(); ++i) {
    const RfEntry& entry = tags_.entry(i);
    if (!entry.valid || static_cast<int>(entry.tid) != tid) continue;
    if (entry.dirty) {
      backing_write(tid, entry.arch, phys_values_[i]);
      t = bsi_.spill(tid, entry.arch, t);
    }
    tags_.invalidate(i);
  }
}

void ViReCManager::warm_thread_start(int tid, Cycle warm_now) {
  // read_reg/write_reg are always functional (tags -> phys_values_,
  // else backing store); this is warmth only: sysreg buffer occupancy
  // and its dcache line, as on_thread_start would leave them.
  csl_.warm_thread_start(tid, warm_now);
}

int ViReCManager::warm_allocate(int tid, isa::RegId arch,
                                std::vector<u8>& locked, Cycle warm_now) {
  TagStore::Victim victim;
  const int idx = tags_.allocate(tid, arch, locked, &victim);
  if (idx < 0) return -1;
  if (victim.valid && victim.dirty) {
    backing_write(victim.tid, victim.arch,
                  phys_values_[static_cast<u32>(idx)]);
    bsi_.warm_reg_transfer(victim.tid, victim.arch, /*is_write=*/true,
                           warm_now);
  }
  locked[static_cast<u32>(idx)] = 1;
  return idx;
}

void ViReCManager::warm_decode(int tid, const isa::Inst& inst,
                               Cycle warm_now) {
  const isa::RegList srcs = isa::src_regs(inst);
  const isa::RegList dsts = isa::dst_regs(inst);

  std::vector<u8>& locked = locked_scratch_;
  std::fill(locked.begin(), locked.end(), u8{0});
  u32& used = used_this_episode_[static_cast<std::size_t>(tid)];

  for (u32 i = 0; i < srcs.count; ++i) {
    const isa::RegId arch = srcs.regs[i];
    used |= 1u << arch;
    int idx = tags_.lookup(tid, arch);
    if (idx >= 0) {
      tags_.touch(static_cast<u32>(idx));
    } else {
      idx = warm_allocate(tid, arch, locked, warm_now);
      bsi_.warm_reg_transfer(tid, arch, /*is_write=*/false, warm_now);
      if (idx < 0) continue;  // pathological: served from the backing store
      phys_values_[static_cast<u32>(idx)] = backing_read(tid, arch);
    }
    locked[static_cast<u32>(idx)] = 1;
  }

  for (u32 i = 0; i < dsts.count; ++i) {
    const isa::RegId arch = dsts.regs[i];
    bool also_src = false;
    for (u32 j = 0; j < srcs.count; ++j) {
      if (srcs.regs[j] == arch) {
        also_src = true;
        break;
      }
    }
    if (also_src) continue;
    used |= 1u << arch;
    int idx = tags_.lookup(tid, arch);
    if (idx >= 0) {
      tags_.touch(static_cast<u32>(idx));
    } else {
      idx = warm_allocate(tid, arch, locked, warm_now);
      if (idx < 0) continue;
      phys_values_[static_cast<u32>(idx)] = backing_read(tid, arch);
      bsi_.warm_reg_transfer(tid, arch, /*is_write=*/false, warm_now);
    }
    locked[static_cast<u32>(idx)] = 1;
  }
  if (check_ != nullptr) tags_.audit(check_);
}

void ViReCManager::warm_context_switch(int from_tid, int to_tid,
                                       int predicted_next, Cycle warm_now) {
  // The functional tier commits every instruction it executes, so the
  // rollback queue is empty here; only the persistent structures move.
  tags_.on_context_switch(from_tid, to_tid);

  if (from_tid >= 0) {
    const auto from = static_cast<std::size_t>(from_tid);
    last_episode_used_[from] = used_this_episode_[from];
    used_this_episode_[from] = 0;

    if (config_.group_spill) {
      for (u32 i = 0; i < tags_.size(); ++i) {
        const RfEntry& entry = tags_.entry(i);
        if (!entry.valid || static_cast<int>(entry.tid) != from_tid ||
            !entry.dirty || !entry.c_bit) {
          continue;
        }
        backing_write(from_tid, entry.arch, phys_values_[i]);
        bsi_.warm_reg_transfer(from_tid, entry.arch, /*is_write=*/true,
                               warm_now);
        tags_.clear_dirty(i);
      }
    }
  }

  csl_.warm_switch(from_tid, to_tid, predicted_next, warm_now);

  if (config_.switch_prefetch && to_tid >= 0) {
    const auto to = static_cast<std::size_t>(to_tid);
    const u32 want = last_episode_used_[to];
    std::vector<u8> locked(config_.num_phys_regs, 0);
    for (u8 arch = 0; arch < isa::kNumAllocatableRegs; ++arch) {
      if (!(want & (1u << arch))) continue;
      if (tags_.lookup(to_tid, arch) >= 0) continue;
      const int idx = warm_allocate(to_tid, arch, locked, warm_now);
      if (idx < 0) break;
      phys_values_[static_cast<u32>(idx)] = backing_read(to_tid, arch);
      bsi_.warm_reg_transfer(to_tid, arch, /*is_write=*/false, warm_now);
    }
  }
}

void ViReCManager::warm_thread_halt(int tid, Cycle warm_now) {
  for (u32 i = 0; i < tags_.size(); ++i) {
    const RfEntry& entry = tags_.entry(i);
    if (!entry.valid || static_cast<int>(entry.tid) != tid) continue;
    if (entry.dirty) {
      backing_write(tid, entry.arch, phys_values_[i]);
      bsi_.warm_reg_transfer(tid, entry.arch, /*is_write=*/true, warm_now);
    }
    tags_.invalidate(i);
  }
}

u64 ViReCManager::read_reg(int tid, isa::RegId reg) {
  const int idx = tags_.lookup(tid, reg);
  if (idx >= 0) return phys_values_[static_cast<u32>(idx)];
  return backing_read(tid, reg);
}

void ViReCManager::write_reg(int tid, isa::RegId reg, u64 value) {
  const int idx = tags_.lookup(tid, reg);
  if (idx >= 0) {
    phys_values_[static_cast<u32>(idx)] = value;
    tags_.mark_dirty(static_cast<u32>(idx));
  } else {
    backing_write(tid, reg, value);
  }
}

double ViReCManager::rf_hit_rate() const {
  const double hits = stats_.get("rf_hits");
  const double misses = stats_.get("rf_misses");
  const double total = hits + misses;
  return total == 0.0 ? 1.0 : hits / total;
}

void ViReCManager::save_state(ckpt::Encoder& enc) const {
  ContextManager::save_state(enc);
  tags_.save_state(enc);
  rollback_.save_state(enc);
  bsi_.save_state(enc);
  csl_.save_state(enc);
  enc.put_u64_vec(phys_values_);
  enc.put_u32(static_cast<u32>(used_this_episode_.size()));
  for (u32 m : used_this_episode_) enc.put_u32(m);
  for (u32 m : last_episode_used_) enc.put_u32(m);
  // locked_scratch_ is per-decode scratch; not state.
}

void ViReCManager::restore_state(ckpt::Decoder& dec) {
  ContextManager::restore_state(dec);
  tags_.restore_state(dec);
  rollback_.restore_state(dec);
  bsi_.restore_state(dec);
  csl_.restore_state(dec);
  std::vector<u64> values = dec.get_u64_vec();
  if (values.size() != phys_values_.size()) {
    throw ckpt::CkptError("ViReCManager: snapshot phys reg count mismatch");
  }
  phys_values_ = std::move(values);
  const u32 n = dec.get_u32();
  if (n != used_this_episode_.size()) {
    throw ckpt::CkptError("ViReCManager: snapshot thread count mismatch");
  }
  for (u32& m : used_this_episode_) m = dec.get_u32();
  for (u32& m : last_episode_used_) m = dec.get_u32();
}

}  // namespace virec::core
