// Register-cache replacement policies (Section 4 of the paper).
//
// Every physical register entry carries the replacement state the
// paper's tag store holds: a 3-bit thread-recency field (T), a 1-bit
// commit flag (C), a 3-bit pseudo-LRU age (A), plus perfect-LRU
// timestamps and FIFO sequence numbers for the non-pseudo baseline
// variants. The policy ranks eviction candidates by a retention
// priority word; the entry with the *highest* priority is evicted:
//
//   PLRU      A
//   LRU       oldest perfect timestamp
//   FIFO      oldest insertion
//   Random    uniform
//   MRT-PLRU  (T << 3) | A
//   MRT-LRU   T, then oldest perfect timestamp
//   LRC       (T << 4) | (C << 3) | A        <- the paper's contribution
#pragma once

#include <string>
#include <vector>

#include "ckpt/serialize.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "isa/inst.hpp"

namespace virec::core {

enum class PolicyKind {
  kPLRU,
  kLRU,
  kFIFO,
  kRandom,
  kMrtPLRU,
  kMrtLRU,
  kLRC,
};

const char* policy_name(PolicyKind kind);
/// Parse "lrc", "mrt-plru", ... Throws std::invalid_argument.
PolicyKind parse_policy(const std::string& name);
/// All policies, in the order Figure 12 reports them.
std::vector<PolicyKind> all_policies();

/// One physical register file entry's tag-store state.
///
/// The 3-bit age is stored lazily: `age` is a base value and
/// `age_mark` records the policy's global access tick when that base
/// was written; the effective age is
/// `min(kMaxAge, age + (age_tick - age_mark))` (ReplacementPolicy::
/// age_of). This turns the "every access ages all other entries" rule
/// into an O(1) tick increment instead of an O(entries) sweep per
/// operand — bit-exact with the eager form, since saturating
/// increments commute with the capped distance.
struct RfEntry {
  bool valid = false;
  u8 tid = 0;
  isa::RegId arch = 0;
  bool dirty = false;
  // Replacement policy state.
  u8 t_bits = 0;       ///< lazy T base; read through ReplacementPolicy::t_of
  u8 age = 0;          ///< 3-bit saturating pseudo-LRU age (lazy base)
  bool c_bit = false;  ///< last accessing instruction committed
  u64 last_use = 0;    ///< perfect-LRU timestamp
  u64 insert_seq = 0;  ///< FIFO insertion order
  u64 age_mark = 0;    ///< global access tick when `age` was written
  u64 t_mark = 0;      ///< global switch epoch when `t_bits` was written
};

class ReplacementPolicy {
 public:
  static constexpr u8 kMaxAge = 7;     // 3-bit A field
  static constexpr u8 kMaxTBits = 7;   // 3-bit T field

  explicit ReplacementPolicy(PolicyKind kind, u64 seed = 0x5eedf00d);

  PolicyKind kind() const { return kind_; }

  /// Entry @p idx was accessed by a decoding instruction. Resets its
  /// age, stamps perfect-LRU time and speculatively sets the C bit
  /// (Section 5.1: C is set on access and rolled back on flush).
  void on_access(std::vector<RfEntry>& entries, u32 idx);

  /// Age every valid entry except those accessed this instruction;
  /// called once per decoded instruction.
  void on_instruction(std::vector<RfEntry>& entries,
                      const std::vector<u32>& accessed);

  /// New mapping installed in entry @p idx.
  void on_insert(std::vector<RfEntry>& entries, u32 idx, u8 tid,
                 isa::RegId arch);

  /// Context switch: previous thread's registers get T = max, all
  /// others decrement saturating at zero; the incoming thread's
  /// registers are forced to zero. Realized lazily in O(1) — the same
  /// trick as the aging tick: the global switch epoch advances and a
  /// per-thread event record captures the forced value, so t_of()
  /// reads each entry's T as the forced base minus the number of
  /// switches since, without walking the register file.
  void on_context_switch(int from_tid, int to_tid);

  /// Rollback-queue compaction reset of a flushed register's C bit.
  static void on_flush_reset(RfEntry& entry) { entry.c_bit = false; }

  /// Effective (materialized) 3-bit age of an entry under lazy aging:
  /// the base value plus the number of accesses since it was written,
  /// saturating at kMaxAge.
  u8 age_of(const RfEntry& entry) const {
    const u64 aged = entry.age + (age_tick_ - entry.age_mark);
    return aged > kMaxAge ? kMaxAge : static_cast<u8>(aged);
  }

  /// Current global access tick, for rebasing age_mark after a
  /// checkpoint restore (the tick itself is deliberately not
  /// serialized: only tick-minus-mark distances are observable, so a
  /// restore rebases every mark to whatever the live tick is).
  u64 age_tick_now() const { return age_tick_; }

  /// Effective (materialized) 3-bit thread-recency field under lazy
  /// T updates: the most recent of (a) the entry's stored base and
  /// (b) the last switch event that forced this entry's thread (from:
  /// kMaxTBits, to: 0), decremented once per context switch since,
  /// saturating at zero. Bit-exact with the eager per-entry walk.
  u8 t_of(const RfEntry& entry) const {
    u64 base = entry.t_bits;
    u64 mark = entry.t_mark;
    const ThreadSwitchEvent& ev = switch_ev_[entry.tid];
    if (ev.epoch > mark) {
      base = ev.base;
      mark = ev.epoch;
    }
    const u64 dec = switch_epoch_ - mark;
    return base > dec ? static_cast<u8>(base - dec) : 0;
  }

  /// Current global switch epoch, for rebasing t_mark after a restore
  /// (not serialized, same reasoning as age_tick_now).
  u64 switch_epoch_now() const { return switch_epoch_; }

  /// Store an explicit T value into @p entry at the current epoch
  /// (tests and checkpoint restore; regular state flows through
  /// on_insert / on_context_switch).
  void set_t(RfEntry& entry, u8 t) const {
    entry.t_bits = t;
    entry.t_mark = switch_epoch_;
  }

  /// Pick the victim among valid entries whose index is not in
  /// @p locked (bool per entry). Returns -1 if none is evictable.
  int pick_victim(const std::vector<RfEntry>& entries,
                  const std::vector<u8>& locked);

  /// Checkpoint the RNG engine and LRU/FIFO counters (the per-entry
  /// state lives in the tag store's RfEntry records).
  void save_state(ckpt::Encoder& enc) const {
    enc.put_u64(rng_.state0());
    enc.put_u64(rng_.state1());
    enc.put_u64(tick_);
    enc.put_u64(seq_);
  }
  void restore_state(ckpt::Decoder& dec) {
    const u64 s0 = dec.get_u64();
    const u64 s1 = dec.get_u64();
    rng_.set_state(s0, s1);
    tick_ = dec.get_u64();
    seq_ = dec.get_u64();
    // Snapshots carry materialized T values that the tag store rebases
    // onto the live epoch; stale per-thread switch events would
    // override those marks, so drop them.
    switch_ev_.assign(switch_ev_.size(), ThreadSwitchEvent{});
  }

 private:
  /// Last context-switch event that explicitly forced a thread's
  /// entries (from: kMaxTBits, to: 0). epoch 0 = never.
  struct ThreadSwitchEvent {
    u64 epoch = 0;
    u8 base = 0;
  };

  /// Retention priority; higher values are evicted first.
  u64 priority(const RfEntry& entry) const;

  PolicyKind kind_;
  Xorshift128 rng_;
  u64 tick_ = 0;
  u64 seq_ = 0;
  u64 age_tick_ = 0;  ///< global access counter backing lazy aging
  u64 switch_epoch_ = 0;  ///< global switch counter backing lazy T bits
  // Indexed by RfEntry::tid (u8), so 256 slots cover every tag.
  std::vector<ThreadSwitchEvent> switch_ev_ =
      std::vector<ThreadSwitchEvent>(256);
};

}  // namespace virec::core
