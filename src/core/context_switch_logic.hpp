// Context Switching Logic (Section 5.2): system-register handling on
// thread switches.
//
// System registers (PC, NZCV, thread pointer) are stored per thread in
// the backing store. With the ping-pong buffer enabled, the CSL keeps
// the current and the predicted-next thread's sysregs on chip: on a
// switch the buffer halves swap, the outgoing thread's sysregs are
// written back in the background, and the next predicted thread's
// sysregs are prefetched, overlapping pipeline warm-up. Without the
// buffer (NSF baseline) the incoming thread demand-fetches its sysregs
// before its first fetch.
#pragma once

#include <vector>

#include "core/backing_store_interface.hpp"

namespace virec::core {

struct CslConfig {
  bool sysreg_prefetch = true;
};

class ContextSwitchLogic {
 public:
  ContextSwitchLogic(const CslConfig& config, u32 num_threads,
                     BackingStoreInterface& bsi, StatSet& stats);

  /// First scheduling of @p tid: demand-fetch its sysreg line.
  Cycle on_thread_start(int tid, Cycle now);

  /// Switch from @p from_tid to @p to_tid at @p now; @p predicted_next
  /// is the thread the round-robin scheduler will pick after to_tid
  /// (prefetch target). Returns when the new thread may start fetching.
  Cycle on_switch(int from_tid, int to_tid, int predicted_next, Cycle now);

  /// Functional warm mirrors (tiered fast-forward): same ping-pong
  /// buffer occupancy and sysreg-line dcache warmth, zero timing.
  void warm_thread_start(int tid, Cycle warm_now);
  void warm_switch(int from_tid, int to_tid, int predicted_next,
                   Cycle warm_now);

  /// Checkpoint the ping-pong buffer / prefetch state.
  void save_state(ckpt::Encoder& enc) const {
    enc.put_cycle_vec(sysreg_ready_);
    enc.put_u32(static_cast<u32>(buffered_.size()));
    for (u8 b : buffered_) enc.put_u8(b);
  }
  void restore_state(ckpt::Decoder& dec) {
    const std::vector<Cycle> ready = dec.get_cycle_vec();
    if (ready.size() != sysreg_ready_.size()) {
      throw ckpt::CkptError("ContextSwitchLogic: snapshot thread count "
                            "mismatch");
    }
    sysreg_ready_ = ready;
    const u32 n = dec.get_u32();
    if (n != buffered_.size()) {
      throw ckpt::CkptError("ContextSwitchLogic: snapshot buffer size "
                            "mismatch");
    }
    for (u8& b : buffered_) b = dec.get_u8();
  }

 private:
  CslConfig config_;
  BackingStoreInterface& bsi_;
  StatSet& stats_;
  std::vector<Cycle> sysreg_ready_;  // prefetch completion per thread
  std::vector<u8> buffered_;         // sysregs currently on chip
  // Hot-path counter handles (owned by stats_).
  double* c_prefetch_late_ = nullptr;
  double* c_demand_fetches_ = nullptr;
  double* c_prefetches_ = nullptr;
};

}  // namespace virec::core
