#include "area/technology.hpp"

namespace virec::area {

const TechParams& tech45() {
  static const TechParams params{};
  return params;
}

}  // namespace virec::area
