#include "area/area_model.hpp"

namespace virec::area {

namespace {
void finish(CoreAreaReport& report) {
  report.total_mm2 =
      report.base_mm2 + report.rf_mm2 + report.tag_mm2 + report.queue_mm2;
}
}  // namespace

CoreAreaReport ino_core_area() {
  CoreAreaReport report;
  report.label = "in-order";
  report.base_mm2 = tech45().ino_core_sans_rf_mm2;
  report.rf_mm2 = rf_area_mm2(32);
  report.rf_delay_ns = rf_delay_ns(32);
  finish(report);
  return report;
}

CoreAreaReport banked_core_area(u32 banks, u32 regs_per_bank) {
  CoreAreaReport report;
  report.label = "banked x" + std::to_string(banks);
  report.base_mm2 = tech45().ino_core_sans_rf_mm2 + tech45().banked_ctrl_mm2;
  report.rf_mm2 = banked_rf_area_mm2(banks, regs_per_bank);
  report.rf_delay_ns = banked_rf_delay_ns(banks, regs_per_bank);
  finish(report);
  return report;
}

CoreAreaReport virec_core_area(u32 phys_regs, u32 rollback_depth) {
  CoreAreaReport report;
  report.label = "virec r" + std::to_string(phys_regs);
  report.base_mm2 = tech45().ino_core_sans_rf_mm2;
  report.rf_mm2 = rf_area_mm2(phys_regs);
  report.tag_mm2 = cam_area_mm2(phys_regs);
  report.queue_mm2 = rollback_queue_area_mm2(rollback_depth);
  report.rf_delay_ns =
      std::max(rf_delay_ns(phys_regs), cam_delay_ns(phys_regs));
  finish(report);
  return report;
}

CoreAreaReport ooo_core_area() {
  CoreAreaReport report = ino_core_area();
  report.label = "ooo (N1-class)";
  const double scale = tech45().ooo_area_factor;
  report.base_mm2 *= scale;
  report.rf_mm2 *= scale;
  finish(report);
  return report;
}

CoreAreaReport core_area_for(const sim::SystemConfig& config) {
  switch (config.scheme) {
    case sim::Scheme::kBanked:
      return banked_core_area(config.threads_per_core);
    case sim::Scheme::kSoftware:
      return ino_core_area();
    case sim::Scheme::kPrefetchFull:
    case sim::Scheme::kPrefetchExact: {
      // Double buffer = 2 banks.
      CoreAreaReport report = banked_core_area(2);
      report.label = "prefetch double-buffer";
      return report;
    }
    case sim::Scheme::kViReC:
    case sim::Scheme::kNSF:
      return virec_core_area(config.virec.num_phys_regs,
                             config.virec.rollback_depth);
  }
  return ino_core_area();
}

}  // namespace virec::area
