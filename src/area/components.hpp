// Component-level area/delay models (register files, banked register
// files, CAM tag stores, FIFO queues) used by area_model.hpp.
#pragma once

#include "area/technology.hpp"

namespace virec::area {

inline constexpr u32 kRegBits = 64;

/// Flat SRAM register file of @p regs 64-bit registers.
double rf_area_mm2(u32 regs, u32 read_ports = 2, u32 write_ports = 1,
                   const TechParams& tech = tech45());

/// Banked register file: @p banks independent banks plus select muxes.
double banked_rf_area_mm2(u32 banks, u32 regs_per_bank,
                          const TechParams& tech = tech45());

/// Fully-associative CAM tag store with @p entries entries.
/// Superlinear growth models match lines + priority encoder.
double cam_area_mm2(u32 entries, const TechParams& tech = tech45());

/// Rollback queue (FIFO of register indices) of @p depth entries.
double rollback_queue_area_mm2(u32 depth, const TechParams& tech = tech45());

/// Access delays (ns).
double rf_delay_ns(u32 regs, const TechParams& tech = tech45());
double banked_rf_delay_ns(u32 banks, u32 regs_per_bank,
                          const TechParams& tech = tech45());
double cam_delay_ns(u32 entries, const TechParams& tech = tech45());

}  // namespace virec::area
