// 45 nm technology constants for the analytical area/delay model.
//
// The paper uses CACTI 6.0 plus FreePDK45 synthesis; we stand in an
// analytical model whose scaling shapes follow the standard SRAM/CAM
// models (register file area linear in bits and quadratic in ports,
// fully-associative CAM superlinear in entries due to match lines and
// priority encoding) and whose absolute constants are calibrated to the
// component values the paper reports:
//   * baseline CVA6-class in-order core  ~1.42 mm^2,
//   * banked cores with 8/16 64-register banks  2.8-3.9 mm^2,
//   * a ViReC core with 64 physical registers  ~1.7 mm^2 (+20%),
//   * RF access delay 0.22 ns baseline -> 0.24 ns at 80 registers,
//   * Neoverse-N1-class OoO  19.1x the in-order core area.
#pragma once

#include "common/types.hpp"

namespace virec::area {

struct TechParams {
  /// Register file: area per bit (mm^2) including decode overhead, at
  /// the base port count.
  double rf_mm2_per_bit = 0.1375 / (64.0 * 64.0);
  /// Port scaling exponent: area scales with ((r+w)/base_ports)^2 for
  /// wordlines/bitlines.
  double rf_base_ports = 3.0;  // 2R1W
  /// CAM tag store: mm^2 per entry at 64 entries, superlinear exponent.
  double cam_mm2_per_entry_at64 = 0.19 / 64.0;
  double cam_scaling_exponent = 1.4;
  /// FIFO rollback queue: mm^2 per entry (registers + comparators).
  double queue_mm2_per_entry = 0.0014;
  /// Baseline in-order core (CVA6-class, 45 nm) without its RF.
  double ino_core_sans_rf_mm2 = 1.35;
  /// Bank multiplexing/interconnect overhead per additional bank.
  double bank_mux_mm2 = 0.004;
  /// Fixed thread-select / bank-control logic of a banked CGMT core.
  double banked_ctrl_mm2 = 0.21;
  /// OoO comparator (Neoverse-N1-class) as a multiple of the in-order
  /// core (Pellegrini & Abernathy, Hot Chips'19; scaled).
  double ooo_area_factor = 19.1;
  /// RF delay: base + per-register wordline/bitline growth (ns).
  double rf_delay_base_ns = 0.200;
  double rf_delay_per_reg_ns = 0.0005;
  /// CAM match+encode delay: base + per-entry growth (ns).
  double cam_delay_base_ns = 0.150;
  double cam_delay_per_entry_ns = 0.0009;
  /// Bank select mux delay per bank (ns).
  double bank_mux_delay_ns = 0.002;
};

/// The calibrated 45 nm parameter set used throughout the repo.
const TechParams& tech45();

}  // namespace virec::area
