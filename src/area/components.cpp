#include "area/components.hpp"

#include <cmath>

namespace virec::area {

double rf_area_mm2(u32 regs, u32 read_ports, u32 write_ports,
                   const TechParams& tech) {
  const double bits = static_cast<double>(regs) * kRegBits;
  const double port_factor =
      std::pow(static_cast<double>(read_ports + write_ports) /
                   tech.rf_base_ports,
               2.0);
  return bits * tech.rf_mm2_per_bit * port_factor;
}

double banked_rf_area_mm2(u32 banks, u32 regs_per_bank,
                          const TechParams& tech) {
  return banks * rf_area_mm2(regs_per_bank, 2, 1, tech) +
         banks * tech.bank_mux_mm2;
}

double cam_area_mm2(u32 entries, const TechParams& tech) {
  const double at64 = tech.cam_mm2_per_entry_at64 * 64.0;
  return at64 * std::pow(static_cast<double>(entries) / 64.0,
                         tech.cam_scaling_exponent);
}

double rollback_queue_area_mm2(u32 depth, const TechParams& tech) {
  return depth * tech.queue_mm2_per_entry;
}

double rf_delay_ns(u32 regs, const TechParams& tech) {
  return tech.rf_delay_base_ns + regs * tech.rf_delay_per_reg_ns;
}

double banked_rf_delay_ns(u32 banks, u32 regs_per_bank,
                          const TechParams& tech) {
  return rf_delay_ns(regs_per_bank, tech) + banks * tech.bank_mux_delay_ns;
}

double cam_delay_ns(u32 entries, const TechParams& tech) {
  return tech.cam_delay_base_ns + entries * tech.cam_delay_per_entry_ns;
}

}  // namespace virec::area
