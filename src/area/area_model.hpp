// Core-level area/delay reports (Figures 1 and 14 of the paper).
#pragma once

#include <string>

#include "area/components.hpp"
#include "sim/system_config.hpp"

namespace virec::area {

struct CoreAreaReport {
  std::string label;
  double base_mm2 = 0.0;   ///< core logic + caches, without register storage
  double rf_mm2 = 0.0;     ///< register file(s)
  double tag_mm2 = 0.0;    ///< VRMU tag store CAM (ViReC/NSF only)
  double queue_mm2 = 0.0;  ///< rollback queue + misc VRMU logic
  double total_mm2 = 0.0;
  double rf_delay_ns = 0.0;
};

/// Single-threaded in-order baseline (CVA6-class, one 32-entry RF).
CoreAreaReport ino_core_area();

/// Banked CGMT core with @p banks 32-register thread banks (Figure 1)
/// or 64-register banks (Figure 14's banked sweep).
CoreAreaReport banked_core_area(u32 banks, u32 regs_per_bank = 32);

/// ViReC core with @p phys_regs shared physical registers.
CoreAreaReport virec_core_area(u32 phys_regs, u32 rollback_depth = 8);

/// OoO comparator core (Neoverse-N1-class anchor).
CoreAreaReport ooo_core_area();

/// Area of the core a SystemConfig describes (per processor).
CoreAreaReport core_area_for(const sim::SystemConfig& config);

}  // namespace virec::area
