// Experiment-runner helpers shared by the figure harnesses, examples
// and tests: one-call "configure + run + check" entry points.
#pragma once

#include <string>

#include "sim/system.hpp"

namespace virec::sim {

/// One experiment point.
struct RunSpec {
  std::string workload = "gather";
  Scheme scheme = Scheme::kViReC;
  u32 num_cores = 1;
  u32 threads_per_core = 8;
  /// Fraction of the per-thread active context stored on chip
  /// (register-cache schemes). 1.0 => full active context.
  double context_fraction = 1.0;
  core::PolicyKind policy = core::PolicyKind::kLRC;
  workloads::WorkloadParams params{};
  /// Optional overrides applied to the Table-1 preset.
  u32 dcache_bytes = 0;       // 0 = preset
  u32 dcache_latency = 0;     // 0 = preset
  /// Explicit physical register count; 0 derives from context_fraction.
  u32 phys_regs = 0;
  /// Future-work extensions (see core::ViReCConfig).
  bool group_spill = false;
  bool switch_prefetch = false;
  /// Watchdog: abort the run (std::runtime_error naming the stuck
  /// core/thread) after this many cycles. 0 keeps the preset guard.
  u64 max_cycles = 0;
  /// Arm the lockstep reference oracle and hard invariants
  /// (System::enable_check); divergence throws check::CheckError.
  bool check = false;
  /// Disable event-driven cycle skipping (CgmtCoreConfig::skip) and
  /// force the cycle-stepped loops. Results are bit-identical either
  /// way; skipping only trades simulator wall-clock.
  bool no_skip = false;
};

/// Build the SystemConfig a RunSpec describes (exposed for tests).
SystemConfig build_config(const RunSpec& spec);

/// Run the experiment point; throws std::runtime_error if the workload
/// result check fails (a simulator correctness bug, not a model
/// property).
RunResult run_spec(const RunSpec& spec);

/// Registers per thread implied by a spec (for reporting).
u32 spec_phys_regs(const RunSpec& spec);

}  // namespace virec::sim
