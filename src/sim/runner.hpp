// Experiment-runner helpers shared by the figure harnesses, examples
// and tests: one-call "configure + run + check" entry points.
#pragma once

#include <string>

#include "sim/system.hpp"
#include "tiered/tiered_runner.hpp"

namespace virec::sim {

/// One experiment point.
struct RunSpec {
  std::string workload = "gather";
  Scheme scheme = Scheme::kViReC;
  u32 num_cores = 1;
  u32 threads_per_core = 8;
  /// Fraction of the per-thread active context stored on chip
  /// (register-cache schemes). 1.0 => full active context.
  double context_fraction = 1.0;
  core::PolicyKind policy = core::PolicyKind::kLRC;
  workloads::WorkloadParams params{};
  /// Optional overrides applied to the Table-1 preset.
  u32 dcache_bytes = 0;       // 0 = preset
  u32 dcache_latency = 0;     // 0 = preset
  /// Explicit physical register count; 0 derives from context_fraction.
  u32 phys_regs = 0;
  /// Future-work extensions (see core::ViReCConfig).
  bool group_spill = false;
  bool switch_prefetch = false;
  /// Watchdog: abort the run (std::runtime_error naming the stuck
  /// core/thread) after this many cycles. 0 keeps the preset guard.
  u64 max_cycles = 0;
  /// Arm the lockstep reference oracle and hard invariants
  /// (System::enable_check); divergence throws check::CheckError.
  bool check = false;
  /// Disable event-driven cycle skipping (CgmtCoreConfig::skip) and
  /// force the cycle-stepped loops. Results are bit-identical either
  /// way; skipping only trades simulator wall-clock.
  bool no_skip = false;
  /// Conservative PDES core partitioning across this many worker
  /// threads (System::set_pdes; docs/performance.md). 0 = serial run
  /// loop. Like no_skip this is a pure simulator-speed knob: exact
  /// mode is bit-identical, so it is deliberately excluded from the
  /// spec identity (ckpt/spec_codec.cpp) and thus from result-store /
  /// memo keys. Ignored by tiered and checked runs (serial fallback).
  u32 pdes_jobs = 0;
  /// With pdes_jobs > 1: allow shared-boundary accesses to proceed
  /// within one crossbar round trip of the other partitions instead of
  /// waiting for exact order. Faster, NOT deterministic — results vary
  /// with host thread scheduling.
  bool relaxed_sync = false;
  /// Tiered simulation (sim::TieredRunner; docs/performance.md).
  /// sample_windows > 0 runs SMARTS-style sampled measurement: the
  /// returned RunResult carries the *estimated* cycles/IPC
  /// (cpi_mean * prepass instruction count) instead of measured
  /// full-run values. functional_ff runs the whole program through the
  /// functional tier. Both require a single-core spec and are mutually
  /// exclusive. Sampling also excludes check: a checked run exists to
  /// validate the full detailed model, which sampling deliberately
  /// skips most of (functional_ff + check is allowed — that is exactly
  /// how the functional tier itself is validated).
  u32 sample_windows = 0;
  u64 window_insts = 10'000;
  u64 warmup_insts = 2'000;
  bool functional_ff = false;
  /// Adaptive warm-up multiplier for sampled runs: each detailed probe
  /// may extend its warm-up by additional warmup_insts chunks (up to
  /// this factor in total) while the dcache miss rate is still
  /// converging — bulk-miss schemes need longer warm-up than the fixed
  /// budget. 1 = fixed warm-up (default); part of the spec identity.
  u32 adaptive_warmup = 1;
  /// Opt-in set-sampled cache warming (Cache::set_warm_set_sample):
  /// only 1/K of dcache sets are warmed between detailed windows.
  /// 1 = full warming (default); K > 1 is approximate (documented bias)
  /// and part of the spec identity.
  u32 warm_set_sample = 1;
  /// Reuse the functional prepass stream across same-identity points
  /// (sweeps over scheme/policy/phys_regs). Pure simulator-speed knob:
  /// per-point estimates are bit-identical with reuse on or off, so —
  /// like pdes_jobs — it is deliberately excluded from the spec
  /// identity and from result-store keys.
  bool stream_reuse = true;
  /// Directory for persisted functional streams ("" = in-memory reuse
  /// only). Excluded from the identity for the same reason.
  std::string stream_dir;
};

/// Build the SystemConfig a RunSpec describes (exposed for tests).
SystemConfig build_config(const RunSpec& spec);

/// Run the experiment point; throws std::runtime_error if the workload
/// result check fails (a simulator correctness bug, not a model
/// property). Tiered specs (sample_windows > 0 / functional_ff)
/// dispatch through sim::TieredRunner; a sampled spec's RunResult then
/// carries the estimated cycles/IPC.
RunResult run_spec(const RunSpec& spec);

/// Tiered entry point returning the full per-window statistics.
/// Requires spec.sample_windows > 0 or spec.functional_ff; throws
/// std::invalid_argument on rejected combinations (multi-core,
/// sampling + check, zero-size windows).
TieredResult run_spec_tiered(const RunSpec& spec);

/// Registers per thread implied by a spec (for reporting).
u32 spec_phys_regs(const RunSpec& spec);

}  // namespace virec::sim
