#include "sim/sweep.hpp"

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <ostream>
#include <unordered_map>

#include "ckpt/journal.hpp"
#include "common/cycle_account.hpp"
#include "common/json.hpp"
#include "sim/parallel.hpp"

namespace virec::sim {

std::string sweep_key(const std::string& workload, Scheme scheme, u32 threads,
                      double fraction) {
  u64 fraction_bits;
  std::memcpy(&fraction_bits, &fraction, sizeof fraction_bits);
  std::string key = workload;
  key += '\0';
  key += std::to_string(static_cast<int>(scheme));
  key += '\0';
  key += std::to_string(threads);
  key += '\0';
  key += std::to_string(fraction_bits);
  return key;
}

SweepResults::SweepResults(std::vector<SweepRecord> records)
    : records_(std::move(records)) {
  index_.reserve(records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const RunSpec& s = records_[i].spec;
    // emplace: first record for a key wins, matching the old linear
    // scan's front-to-back behaviour.
    index_.emplace(sweep_key(s.workload, s.scheme, s.threads_per_core,
                             s.context_fraction),
                   i);
  }
}

std::vector<const SweepRecord*> SweepResults::where(
    const std::function<bool(const SweepRecord&)>& predicate) const {
  std::vector<const SweepRecord*> out;
  for (const SweepRecord& record : records_) {
    if (predicate(record)) out.push_back(&record);
  }
  return out;
}

const SweepRecord* SweepResults::find(const std::string& workload,
                                      Scheme scheme, u32 threads,
                                      double fraction) const {
  const auto it = index_.find(sweep_key(workload, scheme, threads, fraction));
  return it == index_.end() ? nullptr : &records_[it->second];
}

std::optional<Cycle> SweepResults::cycles_of(const std::string& workload,
                                             Scheme scheme, u32 threads,
                                             double fraction) const {
  const SweepRecord* record = find(workload, scheme, threads, fraction);
  if (record == nullptr) return std::nullopt;
  return record->result.cycles;
}

void SweepResults::write_csv(std::ostream& os) const {
  os << "workload,scheme,policy,cores,threads,ctx,phys_regs,cycles,"
        "instructions,ipc,switches,rf_hit_rate,rf_fills,rf_spills";
  for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
    os << ",cpi_" << cycle_bucket_name(static_cast<CycleBucket>(b));
  }
  os << '\n';
  for (const SweepRecord& r : records_) {
    os << r.spec.workload << ',' << scheme_name(r.spec.scheme) << ','
       << core::policy_name(r.spec.policy) << ',' << r.spec.num_cores << ','
       << r.spec.threads_per_core << ',' << r.spec.context_fraction << ','
       << spec_phys_regs(r.spec) << ',' << r.result.cycles << ','
       << r.result.instructions << ',' << r.result.ipc << ','
       << r.result.context_switches << ',' << r.result.rf_hit_rate << ','
       << r.result.rf_fills << ',' << r.result.rf_spills;
    // CPI-stack columns: each bucket's cycles per committed instruction
    // (their sum is the point's total CPI).
    for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
      os << ','
         << (r.result.instructions == 0
                 ? 0.0
                 : r.result.cpi_stack[b] /
                       static_cast<double>(r.result.instructions));
    }
    os << '\n';
  }
}

void SweepResults::write_json(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_array();
  for (const SweepRecord& r : records_) {
    w.begin_object();
    w.key("spec");
    w.begin_object();
    w.kv("workload", r.spec.workload);
    w.kv("scheme", scheme_name(r.spec.scheme));
    w.kv("policy", core::policy_name(r.spec.policy));
    w.kv("cores", r.spec.num_cores);
    w.kv("threads", r.spec.threads_per_core);
    w.kv("ctx", r.spec.context_fraction);
    w.kv("phys_regs", spec_phys_regs(r.spec));
    w.end_object();
    w.key("result");
    w.begin_object();
    w.kv("cycles", r.result.cycles);
    w.kv("instructions", r.result.instructions);
    w.kv("ipc", r.result.ipc);
    w.kv("context_switches", r.result.context_switches);
    w.kv("rf_hit_rate", r.result.rf_hit_rate);
    w.kv("rf_fills", r.result.rf_fills);
    w.kv("rf_spills", r.result.rf_spills);
    w.kv("check_ok", r.result.check_ok);
    w.key("cpi_stack");
    w.begin_object();
    for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
      w.kv(cycle_bucket_name(static_cast<CycleBucket>(b)),
           r.result.cpi_stack[b]);
    }
    w.end_object();
    w.end_object();
    w.end_object();
  }
  w.end_array();
  os << "\n";
}

Sweep& Sweep::over_workloads(std::vector<std::string> workloads) {
  workloads_ = std::move(workloads);
  return *this;
}
Sweep& Sweep::over_schemes(std::vector<Scheme> schemes) {
  schemes_ = std::move(schemes);
  return *this;
}
Sweep& Sweep::over_policies(std::vector<core::PolicyKind> policies) {
  policies_ = std::move(policies);
  return *this;
}
Sweep& Sweep::over_threads(std::vector<u32> threads) {
  threads_ = std::move(threads);
  return *this;
}
Sweep& Sweep::over_context_fractions(std::vector<double> fractions) {
  fractions_ = std::move(fractions);
  return *this;
}
Sweep& Sweep::over_cores(std::vector<u32> cores) {
  cores_ = std::move(cores);
  return *this;
}

std::size_t Sweep::size() const {
  auto dim = [](std::size_t n) { return n == 0 ? 1 : n; };
  return dim(workloads_.size()) * dim(schemes_.size()) *
         dim(policies_.size()) * dim(threads_.size()) *
         dim(fractions_.size()) * dim(cores_.size());
}

std::vector<RunSpec> Sweep::specs() const {
  // Missing axes fall back to the base spec's value.
  const std::vector<std::string> workloads =
      workloads_.empty() ? std::vector<std::string>{base_.workload}
                         : workloads_;
  const std::vector<Scheme> schemes =
      schemes_.empty() ? std::vector<Scheme>{base_.scheme} : schemes_;
  const std::vector<core::PolicyKind> policies =
      policies_.empty() ? std::vector<core::PolicyKind>{base_.policy}
                        : policies_;
  const std::vector<u32> threads =
      threads_.empty() ? std::vector<u32>{base_.threads_per_core} : threads_;
  const std::vector<double> fractions =
      fractions_.empty() ? std::vector<double>{base_.context_fraction}
                         : fractions_;
  const std::vector<u32> cores =
      cores_.empty() ? std::vector<u32>{base_.num_cores} : cores_;

  std::vector<RunSpec> out;
  for (const std::string& w : workloads) {
    for (Scheme s : schemes) {
      for (core::PolicyKind p : policies) {
        for (u32 t : threads) {
          for (double f : fractions) {
            for (u32 c : cores) {
              RunSpec spec = base_;
              spec.workload = w;
              spec.scheme = s;
              spec.policy = p;
              spec.threads_per_core = t;
              spec.context_fraction = f;
              spec.num_cores = c;
              out.push_back(spec);
            }
          }
        }
      }
    }
  }
  return out;
}

SweepResults Sweep::run(u32 jobs, ckpt::SweepJournal* journal,
                        SweepProgressFn on_point) const {
  std::vector<RunSpec> grid = specs();
  std::vector<RunResult> results(grid.size());
  // Group grid indices by identity hash: a grid whose axes collapse to
  // the same point (repeated list values, axes the scheme ignores)
  // simulates each unique point once and copies the result to every
  // duplicate index. CSV/JSON output is unchanged — every grid row is
  // still emitted, duplicates just share one execution.
  std::vector<u64> hashes(grid.size());
  std::unordered_map<u64, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    hashes[i] = ckpt::spec_hash(grid[i]);
    groups[hashes[i]].push_back(i);
  }
  auto scatter = [&](std::size_t rep) {
    const std::vector<std::size_t>& members = groups[hashes[rep]];
    for (std::size_t m = 1; m < members.size(); ++m) {
      results[members[m]] = results[members[0]];
    }
  };
  if (journal == nullptr && !on_point) {
    std::vector<RunSpec> unique;
    std::vector<std::size_t> reps;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (groups[hashes[i]].front() != i) continue;
      unique.push_back(grid[i]);
      reps.push_back(i);
    }
    std::vector<RunResult> fresh = run_specs(unique, jobs);
    for (std::size_t j = 0; j < reps.size(); ++j) {
      results[reps[j]] = std::move(fresh[j]);
      scatter(reps[j]);
    }
  } else {
    // Resume: skip points the journal already records, run the rest,
    // and journal each fresh completion as it lands (crash-safe
    // progress). Results are reassembled in grid order either way.
    std::vector<std::size_t> pending;
    std::size_t pending_points = 0;  // including duplicate indices
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (groups[hashes[i]].front() != i) continue;
      if (journal != nullptr && journal->lookup(hashes[i], &results[i])) {
        scatter(i);
      } else {
        pending.push_back(i);
        pending_points += groups[hashes[i]].size();
      }
    }
    const std::size_t total = grid.size();
    // Shared across worker threads: points completed so far. Journal
    // hits and deduplicated copies count as done immediately (one
    // up-front heartbeat).
    auto done =
        std::make_shared<std::atomic<std::size_t>>(total - pending_points);
    if (on_point && done->load() > 0) on_point(done->load(), total, 0.0);
    ParallelExecutor pool(jobs);
    for (const std::size_t idx : pending) {
      const RunSpec& spec = grid[idx];
      const std::size_t copies = groups[hashes[idx]].size();
      pool.submit_task(
          [spec, journal, on_point, done, total, copies,
           hash = hashes[idx]] {
            const auto t0 = std::chrono::steady_clock::now();
            RunResult result = run_spec(spec);
            if (journal != nullptr) {
              journal->record(hash, result);
            }
            if (on_point) {
              const double secs =
                  std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
              on_point(done->fetch_add(copies) + copies, total, secs);
            }
            return result;
          },
          spec_label(spec));
    }
    std::vector<RunResult> fresh = pool.join();
    for (std::size_t j = 0; j < pending.size(); ++j) {
      results[pending[j]] = std::move(fresh[j]);
      scatter(pending[j]);
    }
  }
  std::vector<SweepRecord> records;
  records.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    records.push_back(SweepRecord{std::move(grid[i]), std::move(results[i])});
  }
  return SweepResults(std::move(records));
}

}  // namespace virec::sim
