#include "sim/system.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/pdes.hpp"

namespace virec::sim {

System::System(const SystemConfig& config, const workloads::Workload& workload,
               const workloads::WorkloadParams& params)
    : config_(config),
      workload_(workload),
      params_(params),
      program_(workload.program(params)) {
  params_.validate();
  config_.mem.num_cores = config_.num_cores;
  config_.core.num_threads = config_.threads_per_core;
  ms_ = std::make_unique<mem::MemorySystem>(config_.mem);

  for (u32 c = 0; c < config_.num_cores; ++c) {
    cpu::CoreEnv env{.core_id = c,
                     .num_threads = config_.threads_per_core,
                     .ms = ms_.get()};
    managers_.push_back(make_manager(env));
    cores_.push_back(std::make_unique<cpu::CgmtCore>(config_.core, env,
                                                     *managers_.back(),
                                                     program_));
  }

  workload_.init_memory(ms_->memory(), params_, total_threads());
  offload_contexts();
  build_registry();
}

void System::build_registry() {
  for (u32 c = 0; c < config_.num_cores; ++c) {
    const std::string path = "core" + std::to_string(c);
    registry_.add(path, cores_[c]->stats());
    registry_.add(path, managers_[c]->stats());
    registry_.add(path, ms_->icache(c).stats());
    registry_.add(path, ms_->dcache(c).stats());
  }
  if (ms_->has_l2()) registry_.add("", ms_->l2().stats());
  registry_.add("", ms_->crossbar().stats());
  registry_.add("", ms_->dram().stats());
}

void System::set_tracer(u32 core, cpu::TraceSink* tracer) {
  cores_[core]->set_tracer(tracer);
  managers_[core]->set_tracer(tracer);
}

void System::enable_check() {
  if (check_ != nullptr) return;
  check_ = std::make_unique<check::CheckContext>(
      program_, *ms_, config_.num_cores, config_.threads_per_core);
  for (u32 c = 0; c < config_.num_cores; ++c) {
    cores_[c]->set_check(check_.get());
    managers_[c]->set_check(check_.get());
    ms_->icache(c).set_check(check_.get());
    ms_->dcache(c).set_check(check_.get());
  }
  if (ms_->has_l2()) ms_->l2().set_check(check_.get());
}

std::unique_ptr<cpu::ContextManager> System::make_manager(
    const cpu::CoreEnv& env) {
  switch (config_.scheme) {
    case Scheme::kBanked:
      return std::make_unique<cpu::BankedManager>(env);
    case Scheme::kSoftware:
      return std::make_unique<cpu::SoftwareManager>(env);
    case Scheme::kPrefetchFull:
      return std::make_unique<cpu::PrefetchManager>(
          env, cpu::PrefetchMode::kFull);
    case Scheme::kPrefetchExact:
      return std::make_unique<cpu::PrefetchManager>(
          env, cpu::PrefetchMode::kExact);
    case Scheme::kViReC:
      return std::make_unique<core::ViReCManager>(config_.virec, env);
    case Scheme::kNSF: {
      core::ViReCConfig nsf = core::make_nsf_config(config_.virec.num_phys_regs);
      nsf.rollback_depth = config_.virec.rollback_depth;
      nsf.seed = config_.virec.seed;
      return std::make_unique<core::ViReCManager>(nsf, env);
    }
  }
  throw std::logic_error("unknown scheme");
}

void System::offload_contexts() {
  // Task-level offload: contexts ship through the crossbar into each
  // processor's reserved region; processors fetch them on first
  // schedule. Functionally this writes the initial register values.
  for (u32 c = 0; c < config_.num_cores; ++c) {
    for (u32 t = 0; t < config_.threads_per_core; ++t) {
      const u32 gtid = c * config_.threads_per_core + t;
      const workloads::RegContext regs =
          workload_.thread_regs(params_, gtid, total_threads());
      for (u32 r = 0; r < isa::kNumAllocatableRegs; ++r) {
        ms_->memory().write_u64(ms_->reg_addr(c, t, r), regs[r]);
      }
      // Zeroed sysreg line (PC = entry, NZCV = 0).
      for (u32 w = 0; w < mem::kLineBytes / 8; ++w) {
        ms_->memory().write_u64(ms_->sysreg_addr(c, t) + w * 8, 0);
      }
      cores_[c]->start_thread(static_cast<int>(t));
    }
  }
}

void System::take_sample(Cycle prev_cycle, u64 prev_instructions) {
  Sample s;
  for (auto& core : cores_) {
    s.cycle = std::max(s.cycle, core->cycle());
    s.instructions += core->instructions();
  }
  if (!samples_.empty() && samples_.back().cycle == s.cycle) return;
  s.ipc = s.cycle == 0 ? 0.0
                       : static_cast<double>(s.instructions) /
                             static_cast<double>(s.cycle);
  s.interval_ipc =
      s.cycle > prev_cycle
          ? static_cast<double>(s.instructions - prev_instructions) /
                static_cast<double>(s.cycle - prev_cycle)
          : 0.0;
  double hits = 0.0, misses = 0.0;
  for (auto& m : managers_) {
    hits += m->stats().get("rf_hits");
    misses += m->stats().get("rf_misses");
  }
  s.rf_hit_rate = (hits + misses) == 0.0 ? 1.0 : hits / (hits + misses);
  for (u32 c = 0; c < config_.num_cores; ++c) {
    s.runnable_threads += cores_[c]->runnable_threads(s.cycle);
    s.outstanding_misses += ms_->dcache(c).outstanding_misses(s.cycle);
  }
  for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
    s.cpi[b] = cpi_bucket_cycles(static_cast<CycleBucket>(b));
  }
  samples_.push_back(s);
  if (sample_hook_) sample_hook_(samples_.back());
}

double System::cpi_bucket_cycles(CycleBucket b) const {
  double sum = 0.0;
  for (const auto& core : cores_) sum += core->cycle_account().bucket(b);
  return sum;
}

Cycle System::max_core_cycle() const {
  Cycle now = 0;
  for (const auto& core : cores_) now = std::max(now, core->cycle());
  return now;
}

Cycle System::global_skip_target(Cycle now, Cycle next_checkpoint,
                                 Cycle limit) const {
  Cycle target = kNeverCycle;
  for (const auto& core : cores_) {
    if (core->done()) continue;
    // Cheap bail-out before the full event evaluation: a core that is
    // not stall-shaped almost certainly works next cycle.
    if (!core->maybe_quiet()) return now;
    target = std::min(target, core->next_event_cycle());
    if (target <= now + 1) return target;  // someone works next cycle
  }
  target = std::min(target, ms_->next_event_cycle(now));
  if (sample_interval_ > 0) target = std::min(target, sample_next_);
  if (checkpoint_every_ > 0) target = std::min(target, next_checkpoint);
  return std::min(target, limit);
}

RunResult System::run() {
  if (!restored_) {
    samples_.clear();
    sample_next_ = sample_interval_;
    sample_prev_cycle_ = 0;
    sample_prev_instructions_ = 0;
  }
  restored_ = false;
  if (pdes_jobs_ > 0 && cores_.size() > 1 && !check_) {
    // Conservative PDES over a worker pool. The lockstep oracle
    // (enable_check) replays commits against a serial interpreter, so
    // checked runs stay on the serial reference loop.
    run_pdes_loop();
  } else if (cores_.size() == 1 && sample_interval_ == 0 &&
             checkpoint_every_ == 0 && !progress_) {
    cores_[0]->run();
  } else {
    run_lockstep_loop();
  }
  return make_result();
}

void System::throw_watchdog() const {
  // Watchdog: name the stuck core/thread instead of spinning.
  std::string diagnosis;
  for (const auto& core : cores_) {
    if (core->done()) continue;
    if (!diagnosis.empty()) diagnosis += "; ";
    diagnosis += core->watchdog_diagnosis();
  }
  throw std::runtime_error("System: max_cycles (" +
                           std::to_string(config_.core.max_cycles) +
                           ") exceeded; " + diagnosis);
}

void System::emit_progress(std::chrono::steady_clock::time_point wall_start,
                           Cycle run_start_cycle, Cycle skipped_cycles) {
  RunProgress p;
  p.cycle = max_core_cycle();
  p.max_cycles = config_.core.max_cycles;
  for (auto& core : cores_) p.instructions += core->instructions();
  p.ipc = p.cycle == 0 ? 0.0
                       : static_cast<double>(p.instructions) /
                             static_cast<double>(p.cycle);
  double elapsed = 0.0;
  for (auto& core : cores_) elapsed += static_cast<double>(core->cycle());
  double top = 0.0;
  for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
    const auto bucket = static_cast<CycleBucket>(b);
    if (bucket == CycleBucket::kCommit || bucket == CycleBucket::kPipeline) {
      continue;  // useful cycles are not a stall
    }
    const double v = cpi_bucket_cycles(bucket);
    if (v > top) {
      top = v;
      p.top_stall = cycle_bucket_name(bucket);
    }
  }
  p.top_stall_frac = elapsed == 0.0 ? 0.0 : top / elapsed;
  p.skip_efficiency = p.cycle <= run_start_cycle
                          ? 0.0
                          : static_cast<double>(skipped_cycles) /
                                static_cast<double>(p.cycle - run_start_cycle);
  p.wall_secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              wall_start)
                    .count();
  progress_(p);
}

void System::run_lockstep_loop() {
  // Lockstep multi-core simulation so crossbar/DRAM contention is
  // interleaved correctly (also used whenever sampling or periodic
  // checkpointing needs to observe the system mid-run).
  bool any_running = true;
  Cycle next_checkpoint = 0;
  if (checkpoint_every_ > 0) {
    // Align the checkpoint grid with the core cycle count so a
    // restored run checkpoints at the same cycles as a fresh one.
    const Cycle now = max_core_cycle();
    next_checkpoint = checkpoint_every_;
    while (next_checkpoint <= now) next_checkpoint += checkpoint_every_;
  }
  // First cycle at which the watchdog fires (saturating).
  const Cycle limit = config_.core.max_cycles + 1 == 0
                          ? kNeverCycle
                          : config_.core.max_cycles + 1;
  // Live telemetry bookkeeping (observers only: the heartbeat reads
  // stats and the wall clock, never simulation state it could alter).
  const auto wall_start = std::chrono::steady_clock::now();
  const auto emit_period =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(progress_every_secs_));
  auto next_emit = wall_start + emit_period;
  const Cycle run_start_cycle = max_core_cycle();
  Cycle skipped_cycles = 0;
  u32 progress_tick = 0;
  while (any_running) {
    any_running = false;
    if (config_.core.skip) {
      // All live cores share the same cycle in lockstep, so a jump
      // to the min over their next events (and the memory system's)
      // reproduces the stepped interleaving exactly: no core would
      // have done anything but bump a stall counter in between.
      const Cycle now0 = max_core_cycle();
      const Cycle target = global_skip_target(now0, next_checkpoint, limit);
      if (target > now0 + 1) {
        skipped_cycles += target - now0;
        for (auto& core : cores_) {
          if (!core->done()) {
            core->skip_to(target);
            any_running = true;
          }
        }
      }
    }
    if (!any_running) {
      for (auto& core : cores_) {
        if (!core->done()) {
          core->step();
          any_running = true;
        }
      }
    }
    const Cycle now = max_core_cycle();
    if (sample_interval_ > 0 && now >= sample_next_) {
      take_sample(sample_prev_cycle_, sample_prev_instructions_);
      if (!samples_.empty()) {
        sample_prev_cycle_ = samples_.back().cycle;
        sample_prev_instructions_ = samples_.back().instructions;
      }
      while (sample_next_ <= now) sample_next_ += sample_interval_;
    }
    if (checkpoint_every_ > 0 && any_running && now >= next_checkpoint) {
      save(checkpoint_dir_ + "/ckpt-" + std::to_string(now) + ".vckpt");
      while (next_checkpoint <= now) next_checkpoint += checkpoint_every_;
    }
    if (progress_ && (++progress_tick & 0xffu) == 0) {
      // Amortised wall-clock check: one clock read per 256 loop
      // iterations keeps the heartbeat off the simulation hot path.
      const auto now_wall = std::chrono::steady_clock::now();
      if (now_wall >= next_emit) {
        emit_progress(wall_start, run_start_cycle, skipped_cycles);
        next_emit = now_wall + emit_period;
      }
    }
    if (now > config_.core.max_cycles) throw_watchdog();
  }
  // Final row so the series ends exactly at the run result.
  if (sample_interval_ > 0) {
    take_sample(sample_prev_cycle_, sample_prev_instructions_);
  }
  // Final heartbeat so even short runs produce one line.
  if (progress_) {
    emit_progress(wall_start, run_start_cycle, skipped_cycles);
  }
}

void System::run_pdes_loop() {
  const u32 num_cores = static_cast<u32>(cores_.size());
  const u32 parts = std::min(pdes_jobs_, num_cores);
  // Contiguous core blocks, one per worker: a partition owns its cores,
  // their private L1 slices and store queues outright, so the only
  // cross-thread state is the shared boundary behind the per-core
  // gateways plus the functional page maps (sharded).
  std::vector<u32> part_lo(parts), part_hi(parts), part_of(num_cores);
  for (u32 p = 0; p < parts; ++p) {
    part_lo[p] = num_cores * p / parts;
    part_hi[p] = num_cores * (p + 1) / parts;
    for (u32 c = part_lo[p]; c < part_hi[p]; ++c) part_of[c] = p;
  }
  // Relaxed-mode slack: one crossbar round trip (request and response
  // hops plus the line transfer). Within that window reordered shared
  // accesses at most swap places inside latency the cores cannot
  // observe anyway, keeping relaxed results plausible — though not
  // deterministic (docs/performance.md).
  const Cycle window =
      pdes_relaxed_
          ? 2 * config_.mem.xbar.latency + config_.mem.xbar.cycles_per_line
          : 0;
  PdesGate gate(parts, window);
  ms_->set_pdes_gate(&gate, part_of);
  ms_->memory().set_concurrent(true);

  Cycle next_checkpoint = 0;
  if (checkpoint_every_ > 0) {
    const Cycle now = max_core_cycle();
    next_checkpoint = checkpoint_every_;
    while (next_checkpoint <= now) next_checkpoint += checkpoint_every_;
  }
  const Cycle limit = config_.core.max_cycles + 1 == 0
                          ? kNeverCycle
                          : config_.core.max_cycles + 1;
  const auto wall_start = std::chrono::steady_clock::now();
  const auto emit_period =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(progress_every_secs_));
  auto next_emit = wall_start + emit_period;
  const Cycle run_start_cycle = max_core_cycle();

  // Epoch barrier: the coordinator publishes an epoch end (the next
  // sampling/checkpoint grid point or the watchdog limit), every worker
  // free-runs its partition up to it, and the coordinator observes the
  // quiescent system between epochs exactly where the lockstep loop
  // would.
  struct EpochCtl {
    std::mutex mu;
    std::condition_variable go_cv;
    std::condition_variable done_cv;
    u64 epoch = 0;
    Cycle epoch_end = 0;
    bool quit = false;
    u32 done_count = 0;
    Cycle skipped_cycles = 0;  // telemetry for the progress heartbeat
    std::exception_ptr error;
  } ctl;

  // Run partition p (cores [lo, hi)) to its epoch end in partition-
  // local lockstep. Invariant: all live cores of a partition share one
  // cycle (they start together and step/skip together), so the
  // published keys walk ascending (cycle, core) order — the global
  // shared-access order of the serial lockstep loop.
  const auto run_partition_epoch = [this, &gate](u32 p, u32 lo, u32 hi,
                                                 Cycle epoch_end,
                                                 Cycle* skipped) {
    for (;;) {
      Cycle now0 = 0;
      bool live = false;
      for (u32 c = lo; c < hi; ++c) {
        if (cores_[c]->done()) continue;
        live = true;
        now0 = std::max(now0, cores_[c]->cycle());
      }
      if (!live) {
        gate.publish(p, PdesGate::kDoneBound);
        return;
      }
      if (now0 >= epoch_end) {
        gate.publish(p, PdesGate::key_of(epoch_end, 0));
        return;
      }
      bool skipped_now = false;
      if (config_.core.skip) {
        // Partition-local event skip. No clamp to the shared levels'
        // next event is needed: quiet cores touch nothing shared, and
        // skip_to is chunking-invariant, so skipping further in one
        // jump than the serial loop would is still bit-exact.
        Cycle target = kNeverCycle;
        bool quiet = true;
        for (u32 c = lo; c < hi; ++c) {
          if (cores_[c]->done()) continue;
          if (!cores_[c]->maybe_quiet()) {
            quiet = false;
            break;
          }
          target = std::min(target, cores_[c]->next_event_cycle());
          if (target <= now0 + 1) {
            quiet = false;  // someone works next cycle
            break;
          }
        }
        if (quiet) {
          target = std::min(target, epoch_end);
          if (target > now0 + 1) {
            // Commit first: nothing shared happens before (target, 0).
            gate.publish(p, PdesGate::key_of(target, 0));
            for (u32 c = lo; c < hi; ++c) {
              if (!cores_[c]->done()) cores_[c]->skip_to(target);
            }
            *skipped += target - now0;
            skipped_now = true;
          }
        }
      }
      if (!skipped_now) {
        for (u32 c = lo; c < hi; ++c) {
          if (cores_[c]->done()) continue;
          gate.publish(p, PdesGate::key_of(now0, c));
          cores_[c]->step();
        }
      }
    }
  };

  const auto worker_fn = [&ctl, &gate, &run_partition_epoch, &part_lo,
                          &part_hi](u32 p) {
    u64 seen = 0;
    for (;;) {
      Cycle epoch_end = 0;
      {
        std::unique_lock<std::mutex> lock(ctl.mu);
        ctl.go_cv.wait(lock, [&] { return ctl.quit || ctl.epoch != seen; });
        if (ctl.quit) return;
        seen = ctl.epoch;
        epoch_end = ctl.epoch_end;
      }
      Cycle skipped = 0;
      try {
        run_partition_epoch(p, part_lo[p], part_hi[p], epoch_end, &skipped);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(ctl.mu);
          if (!ctl.error) ctl.error = std::current_exception();
        }
        // Storing the error before aborting guarantees PdesAborted
        // unwinds from other workers never shadow the root cause.
        gate.abort();
      }
      {
        std::lock_guard<std::mutex> lock(ctl.mu);
        ctl.skipped_cycles += skipped;
        if (++ctl.done_count == part_lo.size()) ctl.done_cv.notify_one();
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(parts);
  const auto shutdown = [&]() {
    {
      std::lock_guard<std::mutex> lock(ctl.mu);
      ctl.quit = true;
    }
    ctl.go_cv.notify_all();
    for (auto& w : workers) {
      if (w.joinable()) w.join();
    }
    ms_->set_pdes_gate(nullptr, {});
    ms_->memory().set_concurrent(false);
  };

  try {
    for (u32 p = 0; p < parts; ++p) workers.emplace_back(worker_fn, p);
    std::exception_ptr worker_error;
    for (;;) {
      bool live = false;
      for (auto& core : cores_) {
        if (!core->done()) {
          live = true;
          break;
        }
      }
      if (!live) break;
      Cycle epoch_end = limit;
      if (sample_interval_ > 0) epoch_end = std::min(epoch_end, sample_next_);
      if (checkpoint_every_ > 0) {
        epoch_end = std::min(epoch_end, next_checkpoint);
      }
      {
        std::lock_guard<std::mutex> lock(ctl.mu);
        ctl.epoch_end = epoch_end;
        ctl.done_count = 0;
        ++ctl.epoch;
      }
      ctl.go_cv.notify_all();
      Cycle skipped_cycles = 0;
      {
        std::unique_lock<std::mutex> lock(ctl.mu);
        ctl.done_cv.wait(lock, [&] { return ctl.done_count == parts; });
        worker_error = ctl.error;
        skipped_cycles = ctl.skipped_cycles;
      }
      if (worker_error) break;
      // Between epochs the workers are parked, so the coordinator
      // observes and mutates freely — in the lockstep loop's order:
      // sample, checkpoint, heartbeat, watchdog.
      const Cycle now = max_core_cycle();
      if (sample_interval_ > 0 && now >= sample_next_) {
        take_sample(sample_prev_cycle_, sample_prev_instructions_);
        if (!samples_.empty()) {
          sample_prev_cycle_ = samples_.back().cycle;
          sample_prev_instructions_ = samples_.back().instructions;
        }
        while (sample_next_ <= now) sample_next_ += sample_interval_;
      }
      if (checkpoint_every_ > 0 && now >= next_checkpoint) {
        save(checkpoint_dir_ + "/ckpt-" + std::to_string(now) + ".vckpt");
        while (next_checkpoint <= now) next_checkpoint += checkpoint_every_;
      }
      if (progress_) {
        const auto now_wall = std::chrono::steady_clock::now();
        if (now_wall >= next_emit) {
          emit_progress(wall_start, run_start_cycle, skipped_cycles);
          next_emit = now_wall + emit_period;
        }
      }
      if (now > config_.core.max_cycles) throw_watchdog();
    }
    if (worker_error) std::rethrow_exception(worker_error);
    if (sample_interval_ > 0) {
      take_sample(sample_prev_cycle_, sample_prev_instructions_);
    }
    if (progress_) {
      Cycle skipped_cycles = 0;
      {
        std::lock_guard<std::mutex> lock(ctl.mu);
        skipped_cycles = ctl.skipped_cycles;
      }
      emit_progress(wall_start, run_start_cycle, skipped_cycles);
    }
  } catch (...) {
    shutdown();
    throw;
  }
  shutdown();
}

u64 System::total_instructions() const {
  u64 n = 0;
  for (const auto& core : cores_) n += core->instructions();
  return n;
}

void System::run_detailed_insts(u64 insts) {
  const u64 target = total_instructions() + insts;
  if (cores_.size() == 1) {
    cores_[0]->run_insts(insts);
    return;
  }
  // Lockstep multi-core stepping, same interleaving as run() minus the
  // sampling/checkpoint/progress observers.
  const Cycle limit = config_.core.max_cycles + 1 == 0
                          ? kNeverCycle
                          : config_.core.max_cycles + 1;
  bool any_running = true;
  while (any_running && total_instructions() < target) {
    any_running = false;
    if (config_.core.skip) {
      const Cycle now0 = max_core_cycle();
      const Cycle skip_target = global_skip_target(now0, kNeverCycle, limit);
      if (skip_target > now0 + 1) {
        for (auto& core : cores_) {
          if (!core->done()) {
            core->skip_to(skip_target);
            any_running = true;
          }
        }
      }
    }
    if (!any_running) {
      for (auto& core : cores_) {
        if (!core->done()) {
          core->step();
          any_running = true;
        }
      }
    }
    if (max_core_cycle() > config_.core.max_cycles) {
      std::string diagnosis;
      for (auto& core : cores_) {
        if (core->done()) continue;
        if (!diagnosis.empty()) diagnosis += "; ";
        diagnosis += core->watchdog_diagnosis();
      }
      throw std::runtime_error("System: max_cycles (" +
                               std::to_string(config_.core.max_cycles) +
                               ") exceeded; " + diagnosis);
    }
  }
}

RunResult System::make_result() {
  // The step-driven paths bypass CgmtCore::run(); mirror its final
  // scalar bookkeeping so registry dumps always carry totals.
  for (auto& core : cores_) {
    core->stats().set("cycles", static_cast<double>(core->cycle()));
    core->stats().set("instructions",
                      static_cast<double>(core->instructions()));
  }

  RunResult result;
  for (u32 c = 0; c < config_.num_cores; ++c) {
    result.cycles = std::max(result.cycles, cores_[c]->cycle());
    result.instructions += cores_[c]->instructions();
    result.context_switches += static_cast<u64>(
        cores_[c]->stats().get("context_switches"));
    const StatSet& ms = managers_[c]->stats();
    result.rf_fills += static_cast<u64>(ms.get("bsi_fills"));
    result.rf_spills += static_cast<u64>(ms.get("bsi_spills"));
  }
  result.ipc = result.cycles == 0
                   ? 0.0
                   : static_cast<double>(result.instructions) /
                         static_cast<double>(result.cycles);

  double miss_cycles = 0.0, misses = 0.0;
  for (u32 c = 0; c < config_.num_cores; ++c) {
    const StatSet& ds = ms_->dcache(c).stats();
    miss_cycles += ds.get("miss_latency");
    misses += ds.get("misses");
  }
  result.avg_dcache_miss_latency = misses == 0.0 ? 0.0 : miss_cycles / misses;

  for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
    result.cpi_stack[b] = cpi_bucket_cycles(static_cast<CycleBucket>(b));
  }

  if (config_.scheme == Scheme::kViReC || config_.scheme == Scheme::kNSF) {
    double hits = 0.0, misses = 0.0;
    for (auto& m : managers_) {
      hits += m->stats().get("rf_hits");
      misses += m->stats().get("rf_misses");
    }
    result.rf_hit_rate = (hits + misses) == 0.0 ? 1.0 : hits / (hits + misses);
  }

  result.check_ok = workload_.check(ms_->memory(), params_, total_threads(),
                                    &result.check_msg);
  return result;
}

namespace {

u64 hash_u64(u64 h, u64 v) {
  for (u32 i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

u64 hash_str(u64 h, const std::string& s) {
  h = hash_u64(h, s.size());
  for (const char c : s) {
    h ^= static_cast<u8>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

u64 hash_cache(u64 h, const mem::CacheConfig& c) {
  h = hash_u64(h, c.size_bytes);
  h = hash_u64(h, c.assoc);
  h = hash_u64(h, c.hit_latency);
  h = hash_u64(h, c.mshrs);
  h = hash_u64(h, c.stride_prefetch ? 1 : 0);
  h = hash_u64(h, c.prefetch_degree);
  return h;
}

}  // namespace

u64 System::config_hash() const {
  u64 h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  h = hash_u64(h, static_cast<u64>(config_.scheme));
  h = hash_u64(h, config_.num_cores);
  h = hash_u64(h, config_.threads_per_core);
  const core::ViReCConfig& v = config_.virec;
  h = hash_u64(h, v.num_phys_regs);
  h = hash_u64(h, static_cast<u64>(v.policy));
  h = hash_u64(h, (v.bsi.non_blocking ? 1u : 0u) |
                      (v.bsi.dummy_dest_fill ? 2u : 0u) |
                      (v.bsi.pin_lines ? 4u : 0u) |
                      (v.csl.sysreg_prefetch ? 8u : 0u) |
                      (v.group_spill ? 16u : 0u) |
                      (v.switch_prefetch ? 32u : 0u));
  h = hash_u64(h, v.rollback_depth);
  h = hash_u64(h, v.seed);
  // config_.core.max_cycles is deliberately excluded: restoring with a
  // larger watchdog budget must be allowed. config_.core.skip is
  // excluded too: cycle skipping is a pure simulator-speed knob with
  // no state of its own, so snapshots move freely between skip-on and
  // --no-skip runs.
  h = hash_u64(h, config_.core.num_threads);
  h = hash_u64(h, config_.core.sq_entries);
  h = hash_u64(h, config_.core.switch_on_miss ? 1 : 0);
  const mem::MemSystemConfig& m = config_.mem;
  h = hash_cache(h, m.icache);
  h = hash_cache(h, m.dcache);
  h = hash_u64(h, m.has_l2 ? 1 : 0);
  if (m.has_l2) h = hash_cache(h, m.l2);
  h = hash_u64(h, m.xbar.latency);
  h = hash_u64(h, m.xbar.cycles_per_line);
  h = hash_u64(h, m.dram.channels);
  h = hash_u64(h, m.dram.banks_per_channel);
  h = hash_u64(h, m.dram.row_bytes);
  h = hash_u64(h, m.dram.t_rp);
  h = hash_u64(h, m.dram.t_rcd);
  h = hash_u64(h, m.dram.t_cl);
  h = hash_u64(h, m.dram.burst_cycles);
  h = hash_str(h, workload_.name());
  h = hash_u64(h, params_.iters_per_thread);
  h = hash_u64(h, params_.elements);
  h = hash_u64(h, params_.stride);
  h = hash_u64(h, params_.locality_window);
  h = hash_u64(h, params_.extra_compute);
  h = hash_u64(h, params_.max_regs);
  h = hash_u64(h, params_.seed);
  return h;
}

void System::save(
    const std::string& path,
    const std::function<void(ckpt::CheckpointWriter&)>& extra) const {
  ckpt::CheckpointWriter writer(config_hash());
  ms_->save_state(writer);
  for (u32 c = 0; c < config_.num_cores; ++c) {
    cores_[c]->save_state(writer.section("core" + std::to_string(c)));
    managers_[c]->save_state(writer.section("mgr" + std::to_string(c)));
  }
  ckpt::Encoder& sim = writer.section("sim");
  sim.put_u32(static_cast<u32>(samples_.size()));
  for (const Sample& s : samples_) {
    sim.put_u64(s.cycle);
    sim.put_u64(s.instructions);
    sim.put_f64(s.ipc);
    sim.put_f64(s.interval_ipc);
    sim.put_f64(s.rf_hit_rate);
    sim.put_u32(s.runnable_threads);
    sim.put_u32(s.outstanding_misses);
    for (const double v : s.cpi) sim.put_f64(v);
  }
  sim.put_u64(sample_next_);
  sim.put_u64(sample_prev_cycle_);
  sim.put_u64(sample_prev_instructions_);
  if (extra) extra(writer);
  writer.write_file(path);
}

void System::restore(
    const std::string& path,
    const std::function<void(ckpt::CheckpointReader&)>& extra) {
  ckpt::CheckpointReader reader(path, config_hash());
  ms_->restore_state(reader);
  for (u32 c = 0; c < config_.num_cores; ++c) {
    ckpt::Decoder core_dec = reader.section("core" + std::to_string(c));
    cores_[c]->restore_state(core_dec);
    core_dec.finish();
    ckpt::Decoder mgr_dec = reader.section("mgr" + std::to_string(c));
    managers_[c]->restore_state(mgr_dec);
    mgr_dec.finish();
  }
  ckpt::Decoder sim = reader.section("sim");
  samples_.clear();
  const u32 n_samples = sim.get_u32();
  for (u32 i = 0; i < n_samples; ++i) {
    Sample s;
    s.cycle = sim.get_u64();
    s.instructions = sim.get_u64();
    s.ipc = sim.get_f64();
    s.interval_ipc = sim.get_f64();
    s.rf_hit_rate = sim.get_f64();
    s.runnable_threads = sim.get_u32();
    s.outstanding_misses = sim.get_u32();
    for (double& v : s.cpi) v = sim.get_f64();
    samples_.push_back(s);
  }
  sample_next_ = sim.get_u64();
  sample_prev_cycle_ = sim.get_u64();
  sample_prev_instructions_ = sim.get_u64();
  sim.finish();
  if (extra) extra(reader);
  restored_ = true;
}

}  // namespace virec::sim
