#include "sim/system.hpp"

#include <stdexcept>

namespace virec::sim {

System::System(const SystemConfig& config, const workloads::Workload& workload,
               const workloads::WorkloadParams& params)
    : config_(config),
      workload_(workload),
      params_(params),
      program_(workload.program(params)) {
  config_.mem.num_cores = config_.num_cores;
  config_.core.num_threads = config_.threads_per_core;
  ms_ = std::make_unique<mem::MemorySystem>(config_.mem);

  for (u32 c = 0; c < config_.num_cores; ++c) {
    cpu::CoreEnv env{.core_id = c,
                     .num_threads = config_.threads_per_core,
                     .ms = ms_.get()};
    managers_.push_back(make_manager(env));
    cores_.push_back(std::make_unique<cpu::CgmtCore>(config_.core, env,
                                                     *managers_.back(),
                                                     program_));
  }

  workload_.init_memory(ms_->memory(), params_, total_threads());
  offload_contexts();
  build_registry();
}

void System::build_registry() {
  for (u32 c = 0; c < config_.num_cores; ++c) {
    const std::string path = "core" + std::to_string(c);
    registry_.add(path, cores_[c]->stats());
    registry_.add(path, managers_[c]->stats());
    registry_.add(path, ms_->icache(c).stats());
    registry_.add(path, ms_->dcache(c).stats());
  }
  if (ms_->has_l2()) registry_.add("", ms_->l2().stats());
  registry_.add("", ms_->crossbar().stats());
  registry_.add("", ms_->dram().stats());
}

void System::set_tracer(u32 core, cpu::TraceSink* tracer) {
  cores_[core]->set_tracer(tracer);
  managers_[core]->set_tracer(tracer);
}

std::unique_ptr<cpu::ContextManager> System::make_manager(
    const cpu::CoreEnv& env) {
  switch (config_.scheme) {
    case Scheme::kBanked:
      return std::make_unique<cpu::BankedManager>(env);
    case Scheme::kSoftware:
      return std::make_unique<cpu::SoftwareManager>(env);
    case Scheme::kPrefetchFull:
      return std::make_unique<cpu::PrefetchManager>(
          env, cpu::PrefetchMode::kFull);
    case Scheme::kPrefetchExact:
      return std::make_unique<cpu::PrefetchManager>(
          env, cpu::PrefetchMode::kExact);
    case Scheme::kViReC:
      return std::make_unique<core::ViReCManager>(config_.virec, env);
    case Scheme::kNSF: {
      core::ViReCConfig nsf = core::make_nsf_config(config_.virec.num_phys_regs);
      nsf.rollback_depth = config_.virec.rollback_depth;
      nsf.seed = config_.virec.seed;
      return std::make_unique<core::ViReCManager>(nsf, env);
    }
  }
  throw std::logic_error("unknown scheme");
}

void System::offload_contexts() {
  // Task-level offload: contexts ship through the crossbar into each
  // processor's reserved region; processors fetch them on first
  // schedule. Functionally this writes the initial register values.
  for (u32 c = 0; c < config_.num_cores; ++c) {
    for (u32 t = 0; t < config_.threads_per_core; ++t) {
      const u32 gtid = c * config_.threads_per_core + t;
      const workloads::RegContext regs =
          workload_.thread_regs(params_, gtid, total_threads());
      for (u32 r = 0; r < isa::kNumAllocatableRegs; ++r) {
        ms_->memory().write_u64(ms_->reg_addr(c, t, r), regs[r]);
      }
      // Zeroed sysreg line (PC = entry, NZCV = 0).
      for (u32 w = 0; w < mem::kLineBytes / 8; ++w) {
        ms_->memory().write_u64(ms_->sysreg_addr(c, t) + w * 8, 0);
      }
      cores_[c]->start_thread(static_cast<int>(t));
    }
  }
}

void System::take_sample(Cycle prev_cycle, u64 prev_instructions) {
  Sample s;
  for (auto& core : cores_) {
    s.cycle = std::max(s.cycle, core->cycle());
    s.instructions += core->instructions();
  }
  if (!samples_.empty() && samples_.back().cycle == s.cycle) return;
  s.ipc = s.cycle == 0 ? 0.0
                       : static_cast<double>(s.instructions) /
                             static_cast<double>(s.cycle);
  s.interval_ipc =
      s.cycle > prev_cycle
          ? static_cast<double>(s.instructions - prev_instructions) /
                static_cast<double>(s.cycle - prev_cycle)
          : 0.0;
  double hits = 0.0, misses = 0.0;
  for (auto& m : managers_) {
    hits += m->stats().get("rf_hits");
    misses += m->stats().get("rf_misses");
  }
  s.rf_hit_rate = (hits + misses) == 0.0 ? 1.0 : hits / (hits + misses);
  for (u32 c = 0; c < config_.num_cores; ++c) {
    s.runnable_threads += cores_[c]->runnable_threads(s.cycle);
    s.outstanding_misses += ms_->dcache(c).outstanding_misses(s.cycle);
  }
  samples_.push_back(s);
}

RunResult System::run() {
  samples_.clear();
  if (cores_.size() == 1 && sample_interval_ == 0) {
    cores_[0]->run();
  } else {
    // Lockstep multi-core simulation so crossbar/DRAM contention is
    // interleaved correctly (also used whenever sampling needs to
    // observe the system mid-run).
    u64 guard = 0;
    bool any_running = true;
    Cycle next_sample = sample_interval_;
    Cycle prev_cycle = 0;
    u64 prev_instructions = 0;
    while (any_running) {
      any_running = false;
      for (auto& core : cores_) {
        if (!core->done()) {
          core->step();
          any_running = true;
        }
      }
      if (sample_interval_ > 0) {
        Cycle now = 0;
        for (auto& core : cores_) now = std::max(now, core->cycle());
        if (now >= next_sample) {
          const Cycle pc = prev_cycle;
          const u64 pi = prev_instructions;
          take_sample(pc, pi);
          if (!samples_.empty()) {
            prev_cycle = samples_.back().cycle;
            prev_instructions = samples_.back().instructions;
          }
          while (next_sample <= now) next_sample += sample_interval_;
        }
      }
      if (++guard > config_.core.max_cycles) {
        throw std::runtime_error("System: max_cycles exceeded");
      }
    }
    // Final row so the series ends exactly at the run result.
    if (sample_interval_ > 0) take_sample(prev_cycle, prev_instructions);
  }
  // The step-driven paths bypass CgmtCore::run(); mirror its final
  // scalar bookkeeping so registry dumps always carry totals.
  for (auto& core : cores_) {
    core->stats().set("cycles", static_cast<double>(core->cycle()));
    core->stats().set("instructions",
                      static_cast<double>(core->instructions()));
  }

  RunResult result;
  for (u32 c = 0; c < config_.num_cores; ++c) {
    result.cycles = std::max(result.cycles, cores_[c]->cycle());
    result.instructions += cores_[c]->instructions();
    result.context_switches += static_cast<u64>(
        cores_[c]->stats().get("context_switches"));
    const StatSet& ms = managers_[c]->stats();
    result.rf_fills += static_cast<u64>(ms.get("bsi_fills"));
    result.rf_spills += static_cast<u64>(ms.get("bsi_spills"));
  }
  result.ipc = result.cycles == 0
                   ? 0.0
                   : static_cast<double>(result.instructions) /
                         static_cast<double>(result.cycles);

  double miss_cycles = 0.0, misses = 0.0;
  for (u32 c = 0; c < config_.num_cores; ++c) {
    const StatSet& ds = ms_->dcache(c).stats();
    miss_cycles += ds.get("miss_latency");
    misses += ds.get("misses");
  }
  result.avg_dcache_miss_latency = misses == 0.0 ? 0.0 : miss_cycles / misses;

  if (config_.scheme == Scheme::kViReC || config_.scheme == Scheme::kNSF) {
    double hits = 0.0, misses = 0.0;
    for (auto& m : managers_) {
      hits += m->stats().get("rf_hits");
      misses += m->stats().get("rf_misses");
    }
    result.rf_hit_rate = (hits + misses) == 0.0 ? 1.0 : hits / (hits + misses);
  }

  result.check_ok = workload_.check(ms_->memory(), params_, total_threads(),
                                    &result.check_msg);
  return result;
}

}  // namespace virec::sim
