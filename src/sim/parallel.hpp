// Parallel experiment engine: run many independent RunSpecs on a fixed
// pool of worker threads. Every experiment point is a self-contained
// simulation (its own System, memory, stats registry), so points are
// embarrassingly parallel; the engine only adds a work queue and
// deterministic result collection.
//
//   sim::ParallelExecutor pool(8);
//   for (const RunSpec& spec : grid) pool.submit(spec);
//   std::vector<RunResult> results = pool.join();  // ordered, rethrows
//
// or, in one call:
//
//   std::vector<RunResult> results = sim::run_specs(grid, /*jobs=*/0);
//
// Determinism: results are ordered by submission index, and each run is
// deterministic in isolation, so the output is bit-identical for any
// job count (jobs=1 executes on the calling thread, exactly preserving
// the serial behaviour).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/runner.hpp"

namespace virec::sim {

/// Worker count "jobs = 0" resolves to: hardware concurrency (at least
/// 1 if the runtime cannot tell).
u32 default_jobs();

/// Human-readable experiment-point label ("workload=gather scheme=virec
/// policy=lrc ..."), used to mark the failing point in exceptions
/// rethrown from ParallelExecutor::join().
std::string spec_label(const RunSpec& spec);

/// Fixed thread pool over a queue of RunSpecs. Single-use: submit any
/// number of specs, then call join() exactly once to collect results
/// in submission order. If any run throws, join() rethrows the
/// exception of the lowest-indexed failing run after the pool has
/// drained (never deadlocks; runs queued behind a failure are skipped).
class ParallelExecutor {
 public:
  /// @p jobs worker threads; 0 = default_jobs(). With jobs = 1 no
  /// threads are spawned and join() runs every spec on the calling
  /// thread in submission order — today's serial behaviour.
  explicit ParallelExecutor(u32 jobs = 0);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  /// Enqueue one experiment point; returns its submission index.
  std::size_t submit(RunSpec spec);

  /// Enqueue an arbitrary result-producing task — for studies (e.g.
  /// the feature ablation) whose points tweak config knobs RunSpec
  /// does not expose. The callable must not touch state shared with
  /// other tasks. A non-empty @p label wraps any exception the task
  /// throws in a std::runtime_error prefixed with it, so join()'s
  /// rethrow names the failing point.
  std::size_t submit_task(std::function<RunResult()> task,
                          std::string label = "");

  /// Wait for every submitted spec, stop the workers and return the
  /// results ordered by submission index. Rethrows the first (lowest
  /// submission index) captured exception, if any.
  std::vector<RunResult> join();

  u32 jobs() const { return jobs_; }

 private:
  struct Task {
    std::size_t index = 0;
    std::function<RunResult()> fn;
    std::string label;  // names the point in rethrown exceptions
  };

  void worker();
  void run_task(const Task& task);

  u32 jobs_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<Task> queue_;
  bool closed_ = false;  // no more submissions; workers drain and exit

  std::vector<RunResult> results_;  // indexed by submission order
  std::size_t submitted_ = 0;
  std::exception_ptr error_;        // lowest-index failure wins
  std::size_t error_index_ = 0;
  bool joined_ = false;
};

/// Run every spec (0 jobs = hardware concurrency) and return results in
/// input order; rethrows the first failure. jobs = 1 is exactly the
/// serial loop.
std::vector<RunResult> run_specs(const std::vector<RunSpec>& specs,
                                 u32 jobs = 0);

/// Same, for arbitrary result-producing tasks.
std::vector<RunResult> run_tasks(std::vector<std::function<RunResult()>> tasks,
                                 u32 jobs = 0);

}  // namespace virec::sim
