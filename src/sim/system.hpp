// A complete simulated near-memory system: N processors (each with its
// own context manager and L1 caches) behind a shared crossbar and DRAM,
// plus the task-level offload mechanism the paper describes — thread
// contexts are written into each processor's reserved memory region and
// the processor fetches them when the thread is first scheduled.
#pragma once

#include <array>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "ckpt/checkpoint.hpp"
#include "cpu/banked_manager.hpp"
#include "cpu/cgmt_core.hpp"
#include "cpu/prefetch_manager.hpp"
#include "cpu/software_manager.hpp"
#include "core/virec_manager.hpp"
#include "sim/system_config.hpp"
#include "workloads/workload.hpp"

namespace virec::sim {

struct RunResult {
  Cycle cycles = 0;        ///< max over all cores
  u64 instructions = 0;    ///< summed over all cores
  double ipc = 0.0;        ///< instructions / cycles (system level)
  bool check_ok = false;
  std::string check_msg;
  double rf_hit_rate = 1.0;   ///< register-cache schemes only
  u64 context_switches = 0;
  u64 rf_fills = 0;
  u64 rf_spills = 0;
  /// Mean cycles per demand dcache miss, over every core (0 if none).
  double avg_dcache_miss_latency = 0.0;
  /// Closed cycle accounting: cycles charged to each CycleBucket,
  /// summed over all cores (Σ == Σ core cycles; per-core and
  /// per-thread splits live in the stat registry as cpi_*).
  std::array<double, kNumCycleBuckets> cpi_stack{};
};

/// One row of the sampled time series (see System::set_sample_interval).
struct Sample {
  Cycle cycle = 0;             ///< sample time (max core cycle)
  u64 instructions = 0;        ///< cumulative, summed over cores
  double ipc = 0.0;            ///< cumulative instructions / cycle
  double interval_ipc = 0.0;   ///< IPC within this interval alone
  double rf_hit_rate = 1.0;    ///< cumulative RF hit rate
  u32 runnable_threads = 0;    ///< threads able to run at sample time
  u32 outstanding_misses = 0;  ///< busy dcache MSHRs, summed over cores
  /// Cumulative cycle-accounting stack at sample time (summed over
  /// cores); consumers diff consecutive samples for per-epoch stacks.
  std::array<double, kNumCycleBuckets> cpi{};
};

/// One heartbeat of a running simulation (see System::set_progress).
struct RunProgress {
  Cycle cycle = 0;           ///< current cycle (max over cores)
  u64 max_cycles = 0;        ///< watchdog budget (ETA denominator)
  u64 instructions = 0;      ///< committed so far, summed over cores
  double ipc = 0.0;          ///< cumulative IPC
  const char* top_stall = "";    ///< dominant non-useful cycle bucket
  double top_stall_frac = 0.0;   ///< its share of elapsed core cycles
  double skip_efficiency = 0.0;  ///< cycles fast-forwarded / elapsed
  double wall_secs = 0.0;        ///< wall time since run() started
};

class System {
 public:
  System(const SystemConfig& config, const workloads::Workload& workload,
         const workloads::WorkloadParams& params);

  /// Offload all thread contexts, run every core to completion, verify
  /// results.
  RunResult run();

  /// Run the detailed model until @p insts further instructions have
  /// committed (summed over cores) or every core is done. Used by the
  /// tiered runner for warm-up prefixes and measurement windows; the
  /// plain sampling/checkpoint/progress observers of run() do not
  /// apply here.
  void run_detailed_insts(u64 insts);

  /// Assemble the RunResult for the current simulation state (run()'s
  /// final bookkeeping, exposed so sim::TieredRunner can finish a
  /// sampled run through the same path).
  RunResult make_result();

  /// Instructions committed so far, summed over cores.
  u64 total_instructions() const;

  cpu::CgmtCore& core(u32 i) { return *cores_[i]; }
  const cpu::CgmtCore& core(u32 i) const { return *cores_[i]; }
  cpu::ContextManager& manager(u32 i) { return *managers_[i]; }
  mem::MemorySystem& memory_system() { return *ms_; }
  const SystemConfig& config() const { return config_; }
  const kasm::Program& program() const { return program_; }
  const workloads::Workload& workload() const { return workload_; }
  const workloads::WorkloadParams& params() const { return params_; }
  u32 total_threads() const {
    return config_.num_cores * config_.threads_per_core;
  }

  /// Every component's StatSet under hierarchical names
  /// ("core0.virec.*", "core0.dcache.*", "dram.*", "xbar.*", ...).
  StatRegistry& registry() { return registry_; }
  const StatRegistry& registry() const { return registry_; }

  /// Enable detailed (histogram / distribution) collection on every
  /// component. Off by default; recording is then a no-op branch.
  void set_detailed_stats(bool on) { registry_.set_detailed(on); }

  /// Record a Sample every @p interval cycles during run() (0 turns
  /// sampling off). Forces the lockstep run loop; event skips are
  /// clamped to the sampling grid so samples land on the same cycles
  /// either way.
  void set_sample_interval(Cycle interval) { sample_interval_ = interval; }
  const std::vector<Sample>& samples() const { return samples_; }

  /// Invoke @p hook whenever run() appends a Sample (after the append).
  /// Lets live consumers — e.g. Perfetto counter tracks — stream the
  /// series without polling. nullptr detaches.
  void set_sample_hook(std::function<void(const Sample&)> hook) {
    sample_hook_ = std::move(hook);
  }

  /// Emit a RunProgress heartbeat to @p fn roughly every @p every_secs
  /// of wall time during run() (forces the lockstep loop; purely an
  /// observer — simulation results stay bit-identical). nullptr
  /// detaches.
  void set_progress(std::function<void(const RunProgress&)> fn,
                    double every_secs = 1.0) {
    progress_ = std::move(fn);
    progress_every_secs_ = every_secs;
  }

  /// Total cycles charged to @p b, summed over every core.
  double cpi_bucket_cycles(CycleBucket b) const;

  /// Attach one trace sink per core (pipeline events from the core,
  /// register traffic from its context manager). nullptr detaches.
  void set_tracer(u32 core, cpu::TraceSink* tracer);

  /// Arm the lockstep reference oracle and all hard invariants
  /// (docs/correctness.md): every core's commits are compared against a
  /// functional interpreter and any divergence or violated structural
  /// invariant throws check::CheckError from run(). Works after
  /// restore() too — the oracle adopts the restored state lazily.
  void enable_check();
  const check::CheckContext* check_context() const { return check_.get(); }
  /// Mutable oracle access for the functional tier (nullptr when
  /// enable_check() has not run).
  check::CheckContext* check() { return check_.get(); }

  /// Hash of everything that must match between the system that saved
  /// a checkpoint and the system restoring it: scheme, core/thread
  /// counts, ViReC/memory configuration, workload name and parameters.
  /// Deliberately excludes max_cycles so a resumed run may extend the
  /// watchdog.
  u64 config_hash() const;

  /// Write a crash-safe snapshot of the complete simulation state
  /// (docs/checkpointing.md). Callable mid-run. @p extra, when set, may
  /// append owner-specific sections after the built-in ones (the
  /// tiered runner stores its sampling plan this way).
  void save(const std::string& path,
            const std::function<void(ckpt::CheckpointWriter&)>& extra =
                {}) const;

  /// Restore a snapshot produced by an identically configured system.
  /// Throws ckpt::CkptError on corruption or configuration mismatch.
  /// A subsequent run() continues from the snapshot point and produces
  /// bit-identical results to an uninterrupted run. @p extra must
  /// mirror the writer-side callback, consuming the same sections in
  /// the same order.
  void restore(const std::string& path,
               const std::function<void(ckpt::CheckpointReader&)>& extra = {});

  /// Save a snapshot to "<dir>/ckpt-<cycle>.vckpt" every @p every
  /// cycles during run() (0 disables). Forces the lockstep loop; event
  /// skips are clamped to the checkpoint grid so snapshots land on the
  /// same cycles either way.
  void set_checkpointing(Cycle every, std::string dir) {
    checkpoint_every_ = every;
    checkpoint_dir_ = std::move(dir);
  }

  /// Run() on @p jobs worker threads with conservative PDES core
  /// partitioning (docs/performance.md); 0 restores the serial loops.
  /// Exact mode (@p relaxed_sync false) is bit-identical to lockstep.
  /// A pure simulator-speed knob like `skip`: it is excluded from
  /// config_hash(), so checkpoints move freely between parallel and
  /// serial runs. Ignored (serial fallback) for single-core systems
  /// and when the lockstep oracle (enable_check) is armed.
  void set_pdes(u32 jobs, bool relaxed_sync = false) {
    pdes_jobs_ = jobs;
    pdes_relaxed_ = relaxed_sync;
  }
  u32 pdes_jobs() const { return pdes_jobs_; }

 private:
  void offload_contexts();
  std::unique_ptr<cpu::ContextManager> make_manager(const cpu::CoreEnv& env);
  void build_registry();
  void take_sample(Cycle prev_cycle, u64 prev_instructions);
  /// Global clock of the lockstep loop: max cycle over all cores.
  Cycle max_core_cycle() const;
  /// Largest cycle every live core (and the memory system) is provably
  /// quiet until, clamped to the sampling grid, the checkpoint grid
  /// and the watchdog limit so those observe exactly the cycles they
  /// would in a stepped run. <= now + 1 means "no profitable skip".
  Cycle global_skip_target(Cycle now, Cycle next_checkpoint,
                           Cycle limit) const;
  /// The serial reference loop of run() (lockstep stepping plus the
  /// sampling/checkpoint/progress/watchdog observers).
  void run_lockstep_loop();
  /// The conservative-PDES run loop (partitioned cores on a worker
  /// pool); bit-identical to run_lockstep_loop() in exact mode.
  void run_pdes_loop();
  /// Throw the watchdog error naming every stuck core.
  [[noreturn]] void throw_watchdog() const;
  /// Build and emit one RunProgress heartbeat.
  void emit_progress(std::chrono::steady_clock::time_point wall_start,
                     Cycle run_start_cycle, Cycle skipped_cycles);

  SystemConfig config_;
  const workloads::Workload& workload_;
  workloads::WorkloadParams params_;
  kasm::Program program_;
  std::unique_ptr<mem::MemorySystem> ms_;
  std::vector<std::unique_ptr<cpu::ContextManager>> managers_;
  std::vector<std::unique_ptr<cpu::CgmtCore>> cores_;
  std::unique_ptr<check::CheckContext> check_;
  StatRegistry registry_;
  Cycle sample_interval_ = 0;
  std::vector<Sample> samples_;
  std::function<void(const Sample&)> sample_hook_;
  std::function<void(const RunProgress&)> progress_;
  double progress_every_secs_ = 1.0;
  // Sampling bookkeeping lives on the System (not as run() locals) so
  // a mid-run checkpoint captures it and a restored run resamples at
  // exactly the same cycles.
  Cycle sample_next_ = 0;
  Cycle sample_prev_cycle_ = 0;
  u64 sample_prev_instructions_ = 0;
  Cycle checkpoint_every_ = 0;
  std::string checkpoint_dir_;
  u32 pdes_jobs_ = 0;
  bool pdes_relaxed_ = false;
  /// run() continues from restored state instead of starting fresh.
  bool restored_ = false;
};

}  // namespace virec::sim
