// A complete simulated near-memory system: N processors (each with its
// own context manager and L1 caches) behind a shared crossbar and DRAM,
// plus the task-level offload mechanism the paper describes — thread
// contexts are written into each processor's reserved memory region and
// the processor fetches them when the thread is first scheduled.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cpu/banked_manager.hpp"
#include "cpu/cgmt_core.hpp"
#include "cpu/prefetch_manager.hpp"
#include "cpu/software_manager.hpp"
#include "core/virec_manager.hpp"
#include "sim/system_config.hpp"
#include "workloads/workload.hpp"

namespace virec::sim {

struct RunResult {
  Cycle cycles = 0;        ///< max over all cores
  u64 instructions = 0;    ///< summed over all cores
  double ipc = 0.0;        ///< instructions / cycles (system level)
  bool check_ok = false;
  std::string check_msg;
  double rf_hit_rate = 1.0;   ///< register-cache schemes only
  u64 context_switches = 0;
  u64 rf_fills = 0;
  u64 rf_spills = 0;
};

class System {
 public:
  System(const SystemConfig& config, const workloads::Workload& workload,
         const workloads::WorkloadParams& params);

  /// Offload all thread contexts, run every core to completion, verify
  /// results.
  RunResult run();

  cpu::CgmtCore& core(u32 i) { return *cores_[i]; }
  cpu::ContextManager& manager(u32 i) { return *managers_[i]; }
  mem::MemorySystem& memory_system() { return *ms_; }
  const SystemConfig& config() const { return config_; }
  u32 total_threads() const {
    return config_.num_cores * config_.threads_per_core;
  }

 private:
  void offload_contexts();
  std::unique_ptr<cpu::ContextManager> make_manager(const cpu::CoreEnv& env);

  SystemConfig config_;
  const workloads::Workload& workload_;
  workloads::WorkloadParams params_;
  kasm::Program program_;
  std::unique_ptr<mem::MemorySystem> ms_;
  std::vector<std::unique_ptr<cpu::ContextManager>> managers_;
  std::vector<std::unique_ptr<cpu::CgmtCore>> cores_;
};

}  // namespace virec::sim
