#include "sim/observability.hpp"

#include <ostream>

#include "common/version.hpp"

namespace virec::sim {

namespace {

void append_histogram(JsonWriter& w, const std::string& full_name,
                      const Histogram& h) {
  w.begin_object();
  w.kv("name", full_name);
  w.kv("kind", "histogram");
  w.kv("desc", h.desc());
  w.kv("count", h.count());
  w.kv("sum", h.sum());
  w.kv("min", h.min());
  w.kv("max", h.max());
  w.kv("mean", h.mean());
  w.key("buckets");
  w.begin_array();
  for (u32 i = 0; i < h.buckets().size(); ++i) {
    if (h.buckets()[i] == 0) continue;
    w.begin_object();
    w.kv("lo", Histogram::bucket_low(i));
    w.kv("hi", Histogram::bucket_high(i));
    w.kv("count", h.buckets()[i]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void append_distribution(JsonWriter& w, const std::string& full_name,
                         const Distribution& d) {
  w.begin_object();
  w.kv("name", full_name);
  w.kv("kind", "distribution");
  w.kv("desc", d.desc());
  w.kv("count", d.count());
  w.kv("min", d.min());
  w.kv("max", d.max());
  w.kv("mean", d.mean());
  w.kv("stddev", d.stddev());
  w.end_object();
}

}  // namespace

void append_stats(JsonWriter& w, const StatRegistry& registry) {
  w.begin_array();
  for (const StatRegistry::Entry& entry : registry.entries()) {
    const StatSet& set = *entry.set;
    for (const Stat& s : set.all()) {
      w.begin_object();
      w.kv("name", StatRegistry::full_name(entry, s.name));
      w.kv("kind", "scalar");
      w.kv("desc", s.desc);
      w.kv("value", s.value);
      w.end_object();
    }
    const std::string set_prefix =
        set.prefix().empty() ? "" : set.prefix() + ".";
    for (const auto& h : set.histograms()) {
      append_histogram(
          w, StatRegistry::full_name(entry, set_prefix + h->name()), *h);
    }
    for (const auto& d : set.distributions()) {
      append_distribution(
          w, StatRegistry::full_name(entry, set_prefix + d->name()), *d);
    }
  }
  w.end_array();
}

void write_json_report(std::ostream& os, const System& system,
                       const RunSpec& spec, const RunResult& result,
                       Cycle sample_interval) {
  const SystemConfig& config = system.config();
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema_version", kReportSchemaVersion);

  // Provenance of the producing binary (schema v3): with reports now
  // cacheable and shareable across machines and daemon restarts, every
  // document must say which build computed it.
  w.key("provenance");
  w.begin_object();
  w.kv("git", build::kGitDescribe);
  w.kv("compiler", build::kCompiler);
  w.kv("build", build::kBuildType);
  w.kv("flags", build::kBuildFlags);
  w.end_object();

  w.key("config");
  w.begin_object();
  w.kv("workload", spec.workload);
  w.kv("scheme", scheme_name(spec.scheme));
  w.kv("policy", core::policy_name(spec.policy));
  w.kv("cores", config.num_cores);
  w.kv("threads_per_core", config.threads_per_core);
  w.kv("phys_regs", spec_phys_regs(spec));
  w.kv("context_fraction", spec.context_fraction);
  w.kv("dcache_bytes", config.mem.dcache.size_bytes);
  w.kv("dcache_hit_latency", config.mem.dcache.hit_latency);
  w.kv("icache_bytes", config.mem.icache.size_bytes);
  w.kv("iters_per_thread", spec.params.iters_per_thread);
  w.kv("elements", spec.params.elements);
  w.kv("seed", spec.params.seed);
  w.kv("group_spill", spec.group_spill);
  w.kv("switch_prefetch", spec.switch_prefetch);
  w.end_object();

  w.key("results");
  w.begin_object();
  w.kv("cycles", result.cycles);
  w.kv("instructions", result.instructions);
  w.kv("ipc", result.ipc);
  w.kv("context_switches", result.context_switches);
  w.kv("rf_hit_rate", result.rf_hit_rate);
  w.kv("rf_fills", result.rf_fills);
  w.kv("rf_spills", result.rf_spills);
  w.kv("check_ok", result.check_ok);
  w.end_object();

  // Closed cycle accounting: bucket names once, then the system-wide
  // totals and the per-core / per-thread splits as parallel arrays
  // (index b of any values array is bucket buckets[b]).
  w.key("cpi_stack");
  w.begin_object();
  w.key("buckets");
  w.begin_array();
  for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
    w.value(cycle_bucket_name(static_cast<CycleBucket>(b)));
  }
  w.end_array();
  w.key("total");
  w.begin_array();
  for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
    w.value(result.cpi_stack[b]);
  }
  w.end_array();
  w.key("per_core");
  w.begin_array();
  for (u32 c = 0; c < config.num_cores; ++c) {
    const CycleAccount& acct = system.core(c).cycle_account();
    w.begin_object();
    w.kv("core", c);
    w.key("cycles");
    w.begin_array();
    for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
      w.value(acct.bucket(static_cast<CycleBucket>(b)));
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("per_thread");
  w.begin_array();
  for (u32 c = 0; c < config.num_cores; ++c) {
    const CycleAccount& acct = system.core(c).cycle_account();
    for (u32 t = 0; t < acct.num_threads(); ++t) {
      w.begin_object();
      w.kv("core", c);
      w.kv("thread", t);
      w.key("cycles");
      w.begin_array();
      for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
        w.value(acct.thread_bucket(t, static_cast<CycleBucket>(b)));
      }
      w.end_array();
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();

  w.key("stats");
  append_stats(w, system.registry());

  if (sample_interval > 0) {
    w.key("time_series");
    w.begin_object();
    w.kv("interval", sample_interval);
    w.key("samples");
    w.begin_array();
    for (const Sample& s : system.samples()) {
      w.begin_object();
      w.kv("cycle", s.cycle);
      w.kv("instructions", s.instructions);
      w.kv("ipc", s.ipc);
      w.kv("interval_ipc", s.interval_ipc);
      w.kv("rf_hit_rate", s.rf_hit_rate);
      w.kv("runnable_threads", s.runnable_threads);
      w.kv("outstanding_misses", s.outstanding_misses);
      // Cumulative cycle-accounting stack at this sample; bucket order
      // matches cpi_stack.buckets. Diff consecutive rows for epochs.
      w.key("cpi");
      w.begin_array();
      for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
        w.value(s.cpi[b]);
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  w.end_object();
  os << "\n";
}

}  // namespace virec::sim
