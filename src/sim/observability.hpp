// Machine-readable run reports: serialise a completed experiment —
// config echo, headline results, every registered stat (scalars,
// histograms, distributions, each with kind and description) and the
// sampled time series — as one JSON document.
//
// Schema (see docs/observability.md):
//   {
//     "schema_version": 3,
//     "provenance":  { git, compiler, build, flags },
//     "config":      { workload, scheme, policy, cores, ... },
//     "results":     { cycles, instructions, ipc, ... },
//     "cpi_stack":   { buckets, total: [...], per_core: [...],
//                      per_thread: [...] },
//     "stats":       [ {name, kind, desc, ...}, ... ],
//     "time_series": { interval, samples: [...] }   // when sampled
//   }
#pragma once

#include <iosfwd>

#include "common/json.hpp"
#include "sim/runner.hpp"

namespace virec::sim {

/// Current value of the report's "schema_version" field.
/// v2: added the "cpi_stack" section and per-sample "cpi" arrays.
/// v3: added the "provenance" section (git describe, compiler, build
///     type, flags of the producing binary).
inline constexpr int kReportSchemaVersion = 3;

/// Write the full JSON report for a finished run of @p system.
/// @p spec is echoed into the "config" section; @p result into
/// "results". Includes a "time_series" section iff @p sample_interval
/// is nonzero (the system's samples() are used).
void write_json_report(std::ostream& os, const System& system,
                       const RunSpec& spec, const RunResult& result,
                       Cycle sample_interval = 0);

/// Append the registry as a "stats" array value on @p w (exposed for
/// reuse by the sweep exporter and tests). Call between w.key("stats")
/// / at an array-element position.
void append_stats(JsonWriter& w, const StatRegistry& registry);

}  // namespace virec::sim
