#include "sim/parallel.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace virec::sim {

u32 default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : static_cast<u32>(hw);
}

std::string spec_label(const RunSpec& spec) {
  return "workload=" + spec.workload +
         " scheme=" + scheme_name(spec.scheme) +
         " policy=" + core::policy_name(spec.policy) +
         " cores=" + std::to_string(spec.num_cores) +
         " threads=" + std::to_string(spec.threads_per_core) +
         " ctx=" + std::to_string(spec.context_fraction);
}

ParallelExecutor::ParallelExecutor(u32 jobs)
    : jobs_(jobs == 0 ? default_jobs() : jobs) {
  if (jobs_ > 1) {
    workers_.reserve(jobs_);
    for (u32 i = 0; i < jobs_; ++i) {
      workers_.emplace_back([this] { worker(); });
    }
  }
}

ParallelExecutor::~ParallelExecutor() {
  if (!joined_) {
    // Abandoned without join(): drop queued work and stop the pool.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.clear();
      closed_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& t : workers_) t.join();
  }
}

std::size_t ParallelExecutor::submit(RunSpec spec) {
  std::string label = spec_label(spec);
  return submit_task(
      [spec = std::move(spec)] { return run_spec(spec); },
      std::move(label));
}

std::size_t ParallelExecutor::submit_task(std::function<RunResult()> task,
                                          std::string label) {
  std::size_t index;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    index = submitted_++;
    results_.resize(submitted_);  // workers store under the same lock
    queue_.push_back(Task{index, std::move(task), std::move(label)});
  }
  work_ready_.notify_one();
  return index;
}

void ParallelExecutor::run_task(const Task& task) {
  std::exception_ptr error;
  try {
    RunResult result = task.fn();
    std::lock_guard<std::mutex> lock(mutex_);
    results_[task.index] = std::move(result);
    return;
  } catch (const std::exception& e) {
    // Mark which experiment point blew up: a bare "out of range" from
    // one point of a 200-point sweep is undebuggable.
    error = task.label.empty()
                ? std::current_exception()
                : std::make_exception_ptr(
                      std::runtime_error(task.label + ": " + e.what()));
  } catch (...) {
    error = std::current_exception();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (!error_ || task.index < error_index_) {
    error_ = error;
    error_index_ = task.index;
  }
  // Fail fast: specs queued behind a failure are skipped so a broken
  // sweep doesn't burn the rest of the grid.
  queue_.clear();
}

void ParallelExecutor::worker() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    run_task(task);
  }
}

std::vector<RunResult> ParallelExecutor::join() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  work_ready_.notify_all();
  if (workers_.empty()) {
    // jobs = 1: run everything here, in submission order, exactly like
    // the historical serial loop.
    for (;;) {
      Task task;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty()) break;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      run_task(task);
    }
  } else {
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }
  joined_ = true;
  if (error_) std::rethrow_exception(error_);
  return std::move(results_);
}

std::vector<RunResult> run_specs(const std::vector<RunSpec>& specs, u32 jobs) {
  ParallelExecutor pool(jobs);
  for (const RunSpec& spec : specs) pool.submit(spec);
  return pool.join();
}

std::vector<RunResult> run_tasks(std::vector<std::function<RunResult()>> tasks,
                                 u32 jobs) {
  ParallelExecutor pool(jobs);
  for (std::function<RunResult()>& task : tasks) {
    pool.submit_task(std::move(task));
  }
  return pool.join();
}

}  // namespace virec::sim
