#include "sim/runner.hpp"

#include <stdexcept>

namespace virec::sim {

u32 spec_phys_regs(const RunSpec& spec) {
  if (spec.phys_regs != 0) return spec.phys_regs;
  const workloads::Workload& w = workloads::find_workload(spec.workload);
  return context_regs(spec.context_fraction, w.active_regs(),
                      spec.threads_per_core);
}

SystemConfig build_config(const RunSpec& spec) {
  SystemConfig config = SystemConfig::nmp_default();
  config.num_cores = spec.num_cores;
  config.threads_per_core = spec.threads_per_core;
  config.scheme = spec.scheme;
  config.virec.policy = spec.policy;
  config.virec.num_phys_regs = spec_phys_regs(spec);
  config.virec.group_spill = spec.group_spill;
  config.virec.switch_prefetch = spec.switch_prefetch;
  if (spec.dcache_bytes != 0) config.mem.dcache.size_bytes = spec.dcache_bytes;
  if (spec.dcache_latency != 0) {
    config.mem.dcache.hit_latency = spec.dcache_latency;
  }
  if (spec.max_cycles != 0) config.core.max_cycles = spec.max_cycles;
  config.core.skip = !spec.no_skip;
  return config;
}

RunResult run_spec(const RunSpec& spec) {
  const workloads::Workload& workload = workloads::find_workload(spec.workload);
  System system(build_config(spec), workload, spec.params);
  if (spec.check) system.enable_check();
  RunResult result = system.run();
  if (!result.check_ok) {
    throw std::runtime_error("workload check failed (" + spec.workload +
                             ", scheme " + scheme_name(spec.scheme) +
                             "): " + result.check_msg);
  }
  return result;
}

}  // namespace virec::sim
