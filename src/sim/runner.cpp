#include "sim/runner.hpp"

#include <cmath>
#include <stdexcept>

#include "ckpt/spec_codec.hpp"

namespace virec::sim {

u32 spec_phys_regs(const RunSpec& spec) {
  if (spec.phys_regs != 0) return spec.phys_regs;
  const workloads::Workload& w = workloads::find_workload(spec.workload);
  return context_regs(spec.context_fraction, w.active_regs(),
                      spec.threads_per_core);
}

SystemConfig build_config(const RunSpec& spec) {
  SystemConfig config = SystemConfig::nmp_default();
  config.num_cores = spec.num_cores;
  config.threads_per_core = spec.threads_per_core;
  config.scheme = spec.scheme;
  config.virec.policy = spec.policy;
  config.virec.num_phys_regs = spec_phys_regs(spec);
  config.virec.group_spill = spec.group_spill;
  config.virec.switch_prefetch = spec.switch_prefetch;
  if (spec.dcache_bytes != 0) config.mem.dcache.size_bytes = spec.dcache_bytes;
  if (spec.dcache_latency != 0) {
    config.mem.dcache.hit_latency = spec.dcache_latency;
  }
  if (spec.max_cycles != 0) config.core.max_cycles = spec.max_cycles;
  config.core.skip = !spec.no_skip;
  return config;
}

TieredResult run_spec_tiered(const RunSpec& spec) {
  if (spec.sample_windows == 0 && !spec.functional_ff) {
    throw std::invalid_argument(
        "run_spec_tiered: spec has neither sample_windows nor functional_ff");
  }
  if (spec.sample_windows > 0 && spec.check) {
    throw std::invalid_argument(
        "sampled runs cannot be combined with check: checked runs validate "
        "the full detailed model, which sampling deliberately skips "
        "(functional_ff + check validates the functional tier)");
  }
  const workloads::Workload& workload = workloads::find_workload(spec.workload);
  System system(build_config(spec), workload, spec.params);
  if (spec.check) system.enable_check();
  TieredConfig tiered;
  tiered.sample_windows = spec.sample_windows;
  tiered.window_insts = spec.window_insts;
  tiered.warmup_insts = spec.warmup_insts;
  tiered.functional_ff = spec.functional_ff;
  tiered.adaptive_warmup = spec.adaptive_warmup;
  tiered.warm_set_sample = spec.warm_set_sample;
  // Reuse off forces a private stream (key 0): same replay engine,
  // same records, just no sharing — estimates are bit-identical.
  tiered.stream_key =
      spec.stream_reuse ? ckpt::functional_stream_hash(spec) : 0;
  tiered.stream_dir = spec.stream_dir;
  TieredRunner runner(system, tiered);
  TieredResult result = runner.run();
  if (!result.full.check_ok) {
    throw std::runtime_error("workload check failed (" + spec.workload +
                             ", scheme " + scheme_name(spec.scheme) +
                             "): " + result.full.check_msg);
  }
  return result;
}

RunResult run_spec(const RunSpec& spec) {
  if (spec.sample_windows > 0 || spec.functional_ff) {
    const TieredResult tiered = run_spec_tiered(spec);
    RunResult result = tiered.full;
    if (spec.sample_windows > 0) {
      // Report the sampled estimates through the standard fields so
      // sweeps and harnesses consume them unchanged.
      result.cycles = static_cast<Cycle>(std::llround(tiered.est_cycles));
      result.instructions = tiered.total_insts;
      result.ipc = tiered.est_ipc;
    }
    return result;
  }
  const workloads::Workload& workload = workloads::find_workload(spec.workload);
  System system(build_config(spec), workload, spec.params);
  if (spec.check) system.enable_check();
  if (spec.pdes_jobs > 0) system.set_pdes(spec.pdes_jobs, spec.relaxed_sync);
  RunResult result = system.run();
  if (!result.check_ok) {
    throw std::runtime_error("workload check failed (" + spec.workload +
                             ", scheme " + scheme_name(spec.scheme) +
                             "): " + result.check_msg);
  }
  return result;
}

}  // namespace virec::sim
