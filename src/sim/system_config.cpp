#include "sim/system_config.hpp"

#include <cmath>
#include <stdexcept>

namespace virec::sim {

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kBanked: return "banked";
    case Scheme::kSoftware: return "software";
    case Scheme::kPrefetchFull: return "prefetch-full";
    case Scheme::kPrefetchExact: return "prefetch-exact";
    case Scheme::kViReC: return "virec";
    case Scheme::kNSF: return "nsf";
  }
  return "?";
}

Scheme parse_scheme(const std::string& name) {
  for (Scheme s : {Scheme::kBanked, Scheme::kSoftware, Scheme::kPrefetchFull,
                   Scheme::kPrefetchExact, Scheme::kViReC, Scheme::kNSF}) {
    if (name == scheme_name(s)) return s;
  }
  throw std::invalid_argument("unknown scheme '" + name + "'");
}

SystemConfig SystemConfig::nmp_default() {
  SystemConfig config;
  config.num_cores = 1;
  config.threads_per_core = 8;
  config.scheme = Scheme::kViReC;
  config.core.num_threads = 8;
  config.core.sq_entries = 5;
  // Table 1 memory system: 32 kB 4-way icache (2 cycles), 8 kB 4-way
  // dcache (2 cycles, 24 MSHRs), crossbar to 2-channel DDR5-6400.
  config.mem.num_cores = 1;
  config.mem.icache = mem::CacheConfig{.name = "icache",
                                       .size_bytes = 32 * 1024,
                                       .assoc = 4,
                                       .hit_latency = 2,
                                       .mshrs = 8};
  config.mem.dcache = mem::CacheConfig{.name = "dcache",
                                       .size_bytes = 8 * 1024,
                                       .assoc = 4,
                                       .hit_latency = 2,
                                       .mshrs = 24};
  config.mem.has_l2 = false;
  return config;
}

u32 context_regs(double fraction, u32 active_regs, u32 threads) {
  const double per_thread = fraction * static_cast<double>(active_regs);
  const u32 total = static_cast<u32>(
      std::ceil(per_thread * static_cast<double>(threads)));
  return std::max<u32>(total, 4);
}

}  // namespace virec::sim
