// Declarative experiment sweeps: build a grid of RunSpecs, run them
// all, and collect flat records that can be printed, filtered, or
// exported as CSV. The figure harnesses in bench/ are hand-rolled for
// readability; this is the programmatic interface for new studies.
//
//   sim::Sweep sweep;
//   sweep.base().workload = "gather";
//   sweep.over_schemes({Scheme::kBanked, Scheme::kViReC})
//        .over_threads({4, 8})
//        .over_context_fractions({1.0, 0.8, 0.4});
//   sim::SweepResults results = sweep.run();
//   results.write_csv(std::cout);
#pragma once

#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/runner.hpp"

namespace virec::ckpt {
class SweepJournal;
}

namespace virec::sim {

/// One completed experiment point: the spec that produced it plus the
/// flattened result metrics.
struct SweepRecord {
  RunSpec spec;
  RunResult result;
};

/// Lookup key for an experiment point: the axes the figure harnesses
/// index results by. Encodes the context fraction by its exact bit
/// pattern so keyed lookups match the same doubles the grid was built
/// from (no epsilon comparison — sweeps reuse the literal values).
std::string sweep_key(const std::string& workload, Scheme scheme, u32 threads,
                      double fraction);

class SweepResults {
 public:
  explicit SweepResults(std::vector<SweepRecord> records);

  const std::vector<SweepRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  /// Records matching a predicate.
  std::vector<const SweepRecord*> where(
      const std::function<bool(const SweepRecord&)>& predicate) const;

  /// Record matching (workload, scheme, threads, fraction) via the
  /// keyed index built at construction — O(1), not a rescan. Returns
  /// nullptr if absent; the first record wins when the grid visits the
  /// same point twice.
  const SweepRecord* find(const std::string& workload, Scheme scheme,
                          u32 threads, double fraction) const;

  /// Cycles of the record matching (workload, scheme, threads,
  /// fraction); nullopt if absent.
  std::optional<Cycle> cycles_of(const std::string& workload, Scheme scheme,
                                 u32 threads, double fraction) const;

  /// CSV with a fixed header:
  /// workload,scheme,policy,cores,threads,ctx,phys_regs,cycles,
  /// instructions,ipc,switches,rf_hit_rate,rf_fills,rf_spills
  void write_csv(std::ostream& os) const;

  /// JSON array of {spec: {...}, result: {...}} records — the
  /// machine-readable counterpart of write_csv for the bench/sweep
  /// pipeline (same fields, no string re-parsing).
  void write_json(std::ostream& os) const;

 private:
  std::vector<SweepRecord> records_;
  // sweep_key -> index into records_, built once by the constructor.
  std::unordered_map<std::string, std::size_t> index_;
};

class Sweep {
 public:
  /// The spec every grid point starts from.
  RunSpec& base() { return base_; }

  Sweep& over_workloads(std::vector<std::string> workloads);
  Sweep& over_schemes(std::vector<Scheme> schemes);
  Sweep& over_policies(std::vector<core::PolicyKind> policies);
  Sweep& over_threads(std::vector<u32> threads);
  Sweep& over_context_fractions(std::vector<double> fractions);
  Sweep& over_cores(std::vector<u32> cores);

  /// Number of grid points.
  std::size_t size() const;

  /// Materialise the grid (exposed for tests).
  std::vector<RunSpec> specs() const;

  /// Run every point on @p jobs worker threads (0 = hardware
  /// concurrency, 1 = serial on the calling thread); throws if any
  /// workload check fails. Results are deterministic and ordered by
  /// grid position regardless of the job count.
  ///
  /// With a @p journal, points already recorded in it are skipped and
  /// their journalled results used instead, and every fresh completion
  /// is appended to it — so an interrupted sweep resumed against the
  /// same journal reproduces the uninterrupted output byte for byte.
  ///
  /// @p on_point, when set, is invoked after each point completes —
  /// (points done so far, total points, wall seconds the completing
  /// point took; 0 for journal hits, reported once up front). It may
  /// be called concurrently from worker threads: make it thread-safe.
  using SweepProgressFn =
      std::function<void(std::size_t done, std::size_t total,
                         double point_wall_secs)>;
  SweepResults run(u32 jobs = 1, ckpt::SweepJournal* journal = nullptr,
                   SweepProgressFn on_point = {}) const;

 private:
  RunSpec base_;
  std::vector<std::string> workloads_;
  std::vector<Scheme> schemes_;
  std::vector<core::PolicyKind> policies_;
  std::vector<u32> threads_;
  std::vector<double> fractions_;
  std::vector<u32> cores_;
};

}  // namespace virec::sim
