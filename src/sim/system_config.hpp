// System-level configuration: which register-context scheme each
// near-memory processor uses, how many processors and threads, and the
// Table-1 memory-system presets.
#pragma once

#include <string>

#include "core/virec_manager.hpp"
#include "cpu/cgmt_core.hpp"
#include "mem/memory_system.hpp"

namespace virec::sim {

/// Register-context management scheme of a near-memory processor.
enum class Scheme {
  kBanked,         // one full bank per thread (Figure 3(b))
  kSoftware,       // software save/restore (Figure 3(a))
  kPrefetchFull,   // double-buffer, full-context prefetch
  kPrefetchExact,  // double-buffer, oracle exact-set prefetch
  kViReC,          // the paper's architecture (Figure 3(c))
  kNSF,            // Named-State Register File baseline [41]
};

const char* scheme_name(Scheme scheme);
Scheme parse_scheme(const std::string& name);

struct SystemConfig {
  u32 num_cores = 1;
  u32 threads_per_core = 8;
  Scheme scheme = Scheme::kViReC;
  /// ViReC parameters (physical RF size, policy, BSI/CSL features);
  /// also the base for the NSF scheme (its feature set is forced).
  core::ViReCConfig virec{};
  cpu::CgmtCoreConfig core{};
  mem::MemSystemConfig mem{};

  /// Table 1 near-memory processor preset: 1 GHz single-issue, 32 kB
  /// icache, 8 kB dcache, no L2, DDR5-6400-like DRAM behind a crossbar.
  static SystemConfig nmp_default();
};

/// Physical registers for a ViReC processor that stores @p fraction of
/// each thread's @p active_regs-register context (Figures 1, 9, 10).
u32 context_regs(double fraction, u32 active_regs, u32 threads);

}  // namespace virec::sim
