// Assembles the timing memory hierarchy of an N-processor near-memory
// system (per-core L1 i/d caches -> optional shared L2 -> crossbar ->
// DRAM) plus the shared functional memory, and defines the reserved
// register backing-store layout each ViReC processor uses.
//
// Register region layout (per paper Section 5.3): each (core, thread)
// owns 4 lines of 8x8 B general-purpose registers followed by one line
// of system registers.
#pragma once

#include <memory>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "mem/cache.hpp"
#include "mem/crossbar.hpp"
#include "mem/dram.hpp"
#include "mem/pdes_gateway.hpp"
#include "mem/sparse_memory.hpp"

namespace virec::mem {

struct MemSystemConfig {
  u32 num_cores = 1;
  CacheConfig icache{.name = "icache",
                     .size_bytes = 32 * 1024,
                     .assoc = 4,
                     .hit_latency = 2,
                     .mshrs = 8};
  CacheConfig dcache{.name = "dcache",
                     .size_bytes = 8 * 1024,
                     .assoc = 4,
                     .hit_latency = 2,
                     .mshrs = 24};
  bool has_l2 = false;
  CacheConfig l2{.name = "l2",
                 .size_bytes = 1024 * 1024,
                 .assoc = 8,
                 .hit_latency = 12,
                 .mshrs = 64,
                 .stride_prefetch = true,
                 .prefetch_degree = 8};
  CrossbarConfig xbar{};
  DramConfig dram{};
};

class MemorySystem {
 public:
  /// Base of the reserved register backing region.
  static constexpr Addr kRegRegionBase = 0xf000'0000ull;
  /// Reserved bytes per core within the register region.
  static constexpr Addr kRegRegionPerCore = 64 * 1024;
  /// Bytes reserved per thread context: 4 GPR lines + 1 sysreg line,
  /// rounded up to 512 for cheap address arithmetic.
  static constexpr Addr kBytesPerContext = 512;
  /// Base of the (synthetic) code region used for icache timing.
  static constexpr Addr kCodeBase = 0x1000'0000ull;

  explicit MemorySystem(const MemSystemConfig& config);

  Cache& icache(u32 core) { return *icaches_[core]; }
  Cache& dcache(u32 core) { return *dcaches_[core]; }
  bool has_l2() const { return l2_ != nullptr; }
  Cache& l2() { return *l2_; }
  Crossbar& crossbar() { return *crossbar_; }
  DramModel& dram() { return *dram_; }
  SparseMemory& memory() { return functional_; }
  const SparseMemory& memory() const { return functional_; }
  u32 num_cores() const { return config_.num_cores; }
  const MemSystemConfig& config() const { return config_; }

  /// Register backing-store addresses.
  Addr reg_region_base(u32 core) const {
    return kRegRegionBase + core * kRegRegionPerCore;
  }
  Addr context_base(u32 core, u32 tid) const {
    return reg_region_base(core) + tid * kBytesPerContext;
  }
  /// Backing address of general-purpose register @p arch (x0..x30).
  Addr reg_addr(u32 core, u32 tid, u32 arch) const {
    return context_base(core, tid) + arch * 8;
  }
  /// Backing address of the system-register line (PC, NZCV, ...).
  Addr sysreg_addr(u32 core, u32 tid) const {
    return context_base(core, tid) + 4 * kLineBytes;
  }
  bool in_reg_region(Addr addr) const {
    return addr >= kRegRegionBase &&
           addr < kRegRegionBase + config_.num_cores * kRegRegionPerCore;
  }
  /// icache address for instruction index @p pc.
  static Addr code_addr(u64 pc) { return kCodeBase + pc * 4; }

  /// Attach every core's shared-boundary gateway to @p gate, mapping
  /// core c to partition @p partition_of_core[c] (nullptr detaches).
  /// While attached, all L1-miss traffic into the shared levels obeys
  /// the conservative PDES ordering protocol. Call only while the
  /// simulation is quiescent.
  void set_pdes_gate(PdesGate* gate, const std::vector<u32>& partition_of_core);

  /// Earliest future-dated timing event strictly after @p now anywhere
  /// in the hierarchy (busy MSHRs, DRAM bank/bus release, crossbar link
  /// release); kNeverCycle when everything is quiescent. Conservative
  /// event-skip clamp: all hierarchy timing is resolved at access time,
  /// so no state a core can observe changes before this cycle.
  Cycle next_event_cycle(Cycle now) const;

  /// Reset all timing state (functional memory is preserved).
  void reset_timing();

  /// Checkpoint the whole hierarchy as named sections: the functional
  /// memory, DRAM, crossbar, the L2 (if present) and each core's L1s.
  void save_state(ckpt::CheckpointWriter& writer) const;
  void restore_state(ckpt::CheckpointReader& reader);

 private:
  MemSystemConfig config_;
  SparseMemory functional_;
  std::unique_ptr<DramModel> dram_;
  std::unique_ptr<Crossbar> crossbar_;
  std::unique_ptr<Cache> l2_;
  // One gateway per core between its L1s and the shared levels; a
  // transparent forwarder until set_pdes_gate attaches a gate.
  std::vector<std::unique_ptr<PdesGateway>> gateways_;
  std::vector<std::unique_ptr<Cache>> icaches_;
  std::vector<std::unique_ptr<Cache>> dcaches_;
};

}  // namespace virec::mem
