#include "mem/cache.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "check/check.hpp"

namespace virec::mem {

Cache::Cache(const CacheConfig& config, MemLevel& below)
    : config_(config), below_(below), stats_(config.name) {
  if (config_.size_bytes % (kLineBytes * config_.assoc) != 0) {
    throw std::invalid_argument("Cache: size not divisible by assoc*line");
  }
  num_sets_ = config_.size_bytes / (kLineBytes * config_.assoc);
  if (!is_pow2(num_sets_)) {
    throw std::invalid_argument("Cache: number of sets must be a power of 2");
  }
  set_shift_ = log2_pow2(num_sets_);
  lines_.resize(static_cast<std::size_t>(num_sets_) * config_.assoc);
  mshr_until_.assign(config_.mshrs, 0);
  c_reads_ = stats_.counter("reads", "read accesses presented to this cache");
  c_writes_ = stats_.counter("writes",
                             "write accesses presented to this cache");
  c_hits_ = stats_.counter("hits",
                           "demand accesses served from a present line");
  c_misses_ = stats_.counter("misses",
                             "demand accesses that went to the next level");
  c_coalesced_ = stats_.counter(
      "coalesced_misses", "misses merged into an already in-flight MSHR");
  c_reg_region_misses_ = stats_.counter(
      "reg_region_misses", "misses to the register backing-store region");
  c_port_wait_cycles_ = stats_.counter(
      "port_wait_cycles", "cycles accesses waited for a free cache port");
  c_miss_latency_ = stats_.counter(
      "miss_latency", "summed fill latency over all demand misses");
  c_mshr_stall_cycles_ = stats_.counter(
      "mshr_stall_cycles", "cycles accesses stalled with all MSHRs busy");
  c_writebacks_ = stats_.counter("writebacks",
                                 "dirty lines written back on eviction");
  c_bypasses_ = stats_.counter("bypasses",
                               "accesses that bypassed allocation");
  c_prefetches_ = stats_.counter("prefetches",
                                 "prefetch fills issued into this cache");
  c_warm_hits_ = stats_.counter(
      "warm_hits", "functional warm-tier accesses that found the line");
  c_warm_misses_ = stats_.counter(
      "warm_misses", "functional warm-tier accesses that filled or bypassed");
  c_warm_skipped_ = stats_.counter(
      "warm_skipped", "warm-tier accesses dropped by set-sampled warming");
  hist_miss_cycles_ = stats_.histogram(
      "miss_cycles", "per-miss latency from access to data return");
}

void Cache::reset() {
  std::fill(lines_.begin(), lines_.end(), Line{});
  std::fill(mshr_until_.begin(), mshr_until_.end(), Cycle{0});
  port_next_free_ = 0;
  reg_port_next_free_ = 0;
  last_miss_line_ = 0;
  last_stride_ = 0;
  stats_.clear();
}

Cache::Line* Cache::find_line(Addr line_addr) {
  const u64 line_no = line_addr / kLineBytes;
  const u32 set = static_cast<u32>(line_no & (num_sets_ - 1));
  const u64 tag = line_no >> set_shift_;
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.assoc];
  for (u32 w = 0; w < config_.assoc; ++w) {
    if (base[w].valid && base[w].tag == tag) return &base[w];
  }
  return nullptr;
}

const Cache::Line* Cache::find_line(Addr line_addr) const {
  return const_cast<Cache*>(this)->find_line(line_addr);
}

bool Cache::probe(Addr addr) const { return find_line(line_of(addr)) != nullptr; }

bool Cache::reserve_line(Addr addr) {
  Line* line = find_line(line_of(addr));
  if (line == nullptr) return false;
  if (line->pin < 7) ++line->pin;
  return true;
}

void Cache::release_line(Addr addr) {
  Line* line = find_line(line_of(addr));
  if (line != nullptr && line->pin > 0) --line->pin;
}

u32 Cache::outstanding_misses(Cycle now) const {
  u32 count = 0;
  for (const Cycle until : mshr_until_) {
    if (until > now) ++count;
  }
  return count;
}

Cycle Cache::next_event_cycle(Cycle now) const {
  Cycle next = kNeverCycle;
  for (const Cycle until : mshr_until_) {
    if (until > now && until < next) next = until;
  }
  return next;
}

u32 Cache::pinned_lines() const {
  u32 count = 0;
  for (const Line& line : lines_) {
    if (line.valid && line.pin > 0) ++count;
  }
  return count;
}

Cache::Line* Cache::pick_victim(u32 set, Cycle now) {
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.assoc];
  Line* victim = nullptr;
  for (u32 w = 0; w < config_.assoc; ++w) {
    Line& line = base[w];
    if (!line.valid) return &line;
    if (line.pin > 0 || line.pending_until > now) continue;
    if (victim == nullptr || line.lru < victim->lru) victim = &line;
  }
  return victim;
}

Cycle Cache::acquire_mshr(Addr /*line_addr*/, Cycle start, bool& stalled) {
  // Find a free MSHR; if all are busy, wait for the earliest to retire.
  Cycle* best = &mshr_until_[0];
  for (Cycle& until : mshr_until_) {
    if (until <= start) {
      until = kNeverCycle;  // claimed; caller fills in the real time
      stalled = false;
      return start;
    }
    if (until < *best) best = &until;
  }
  stalled = true;
  const Cycle freed = *best;
  *best = kNeverCycle;
  *c_mshr_stall_cycles_ += double(freed - start);
  return freed;
}

void Cache::maybe_prefetch(Addr line_addr, Cycle now) {
  if (!config_.stride_prefetch) return;
  const u64 line_no = line_addr / kLineBytes;
  const i64 stride = static_cast<i64>(line_no) -
                     static_cast<i64>(last_miss_line_);
  if (stride != 0 && stride == last_stride_) {
    for (u32 d = 1; d <= config_.prefetch_degree; ++d) {
      const Addr pf_addr =
          static_cast<Addr>(static_cast<i64>(line_no) + stride * d) *
          kLineBytes;
      if (find_line(pf_addr) != nullptr) continue;
      const u64 pf_line_no = pf_addr / kLineBytes;
      const u32 set = static_cast<u32>(pf_line_no & (num_sets_ - 1));
      Line* victim = pick_victim(set, now);
      if (victim == nullptr) break;
      if (victim->valid && victim->dirty) {
        const Addr wb = ((victim->tag << set_shift_) |
                         (pf_line_no & (num_sets_ - 1))) *
                        kLineBytes;
        below_.line_access(wb, /*is_write=*/true, now);
      }
      const Cycle done = below_.line_access(pf_addr, false, now);
      victim->valid = true;
      victim->dirty = false;
      victim->reg_line = false;
      victim->pin = 0;
      victim->tag = pf_line_no >> set_shift_;
      victim->pending_until = done;
      victim->lru = done;  // inserted at fill response (MRU on arrival)
      ++*c_prefetches_;
    }
  }
  last_stride_ = stride;
  last_miss_line_ = line_no;
}

CacheAccess Cache::access(Addr addr, bool is_write, Cycle now,
                          bool reg_region) {
  CacheAccess result;
  // One access per cycle through the port. The arbiter always gives
  // LSQ/program requests priority; register-region (backing store)
  // requests yield to them.
  Cycle start;
  if (reg_region) {
    start = std::max(now, std::max(port_next_free_, reg_port_next_free_));
    reg_port_next_free_ = start + 1;
  } else {
    start = std::max(now, port_next_free_);
    port_next_free_ = start + 1;
  }
  if (start > now) *c_port_wait_cycles_ += double(start - now);
  ++*(is_write ? c_writes_ : c_reads_);

  const Addr laddr = line_of(addr);
  Line* line = find_line(laddr);

  auto touch_reg_bits = [&](Line& l) {
    if (!reg_region) return;
    l.reg_line = true;
    if (is_write) {
      if (l.pin > 0) --l.pin;
    } else {
      if (l.pin < 7) ++l.pin;
    }
  };

  if (line != nullptr && line->pending_until <= start) {
    // Plain hit.
    result.hit = true;
    result.done = start + config_.hit_latency;
    line->lru = start;
    if (is_write) line->dirty = true;
    touch_reg_bits(*line);
    ++*c_hits_;
    return result;
  }

  if (line != nullptr) {
    // Hit-under-miss: the line is being filled; coalesce.
    result.hit = false;
    result.done = std::max(line->pending_until,
                           static_cast<Cycle>(start + config_.hit_latency));
    line->lru = result.done;
    if (is_write) line->dirty = true;
    touch_reg_bits(*line);
    ++*c_coalesced_;
    return result;
  }

  // Miss.
  ++*c_misses_;
  if (reg_region) ++*c_reg_region_misses_;
  if (check_ != nullptr) {
    // A sentinel still present here means a previous miss claimed an
    // MSHR and never released it — a slot leaked forever.
    for (const Cycle until : mshr_until_) {
      VIREC_CHECK(check_, until != kNeverCycle,
                  std::string(config_.name) +
                      ": MSHR claimed but never released (leak)");
    }
  }
  maybe_prefetch(laddr, start);

  bool mshr_stalled = false;
  const Cycle issue = acquire_mshr(laddr, start + config_.hit_latency,
                                   mshr_stalled);
  result.mshr_stall = mshr_stalled;

  const u64 line_no = laddr / kLineBytes;
  const u32 set = static_cast<u32>(line_no & (num_sets_ - 1));
  Line* victim = pick_victim(set, issue);

  Cycle done;
  if (victim == nullptr) {
    // Every way pinned or mid-fill: bypass the cache entirely.
    done = below_.line_access(laddr, is_write, issue);
    ++*c_bypasses_;
  } else {
    if (victim->valid && victim->dirty) {
      const Addr wb = ((victim->tag << set_shift_) |
                       (line_no & (num_sets_ - 1))) *
                      kLineBytes;
      below_.line_access(wb, /*is_write=*/true, issue);
      ++*c_writebacks_;
    }
    done = below_.line_access(laddr, false, issue);
    victim->valid = true;
    victim->dirty = is_write;
    victim->reg_line = false;
    victim->pin = 0;
    victim->tag = line_no >> set_shift_;
    victim->pending_until = done;
    victim->lru = done;  // inserted at fill response (MRU on arrival)
    touch_reg_bits(*victim);
  }

  // Release the claimed MSHR at completion time.
  bool released = false;
  for (Cycle& until : mshr_until_) {
    if (until == kNeverCycle) {
      until = done;
      released = true;
      break;
    }
  }
  VIREC_CHECK(check_, released,
              std::string(config_.name) +
                  ": no claimed MSHR to release after miss");
  VIREC_CHECK(check_, done >= now,
              std::string(config_.name) + ": miss completes at cycle " +
                  std::to_string(done) + ", before issue cycle " +
                  std::to_string(now));

  result.hit = false;
  result.done = done;
  *c_miss_latency_ += double(done - start);
  hist_miss_cycles_->record(double(done - start));
  return result;
}

Cycle Cache::line_access(Addr line_addr, bool is_write, Cycle now) {
  return access(line_addr, is_write, now, /*reg_region=*/false).done;
}

void Cache::set_warm_set_sample(u32 k) {
  if (k == 0 || !is_pow2(k)) {
    throw std::invalid_argument("Cache: warm set-sample factor must be a "
                                "power of two");
  }
  if (k > num_sets_) k = num_sets_;
  warm_sample_mask_ = k - 1;
}

bool Cache::warm_access(Addr addr, bool is_write, Cycle warm_now,
                        bool reg_region) {
  const Addr laddr = line_of(addr);
  if (warm_sample_mask_ != 0) {
    const u32 set =
        static_cast<u32>((laddr / kLineBytes) & (num_sets_ - 1));
    if ((set & warm_sample_mask_) != 0) {
      // Unsampled set: pretend the line is present (no tag churn, no
      // pin/dirty updates) so the warm tier only models 1/K of the
      // sets. Deliberately pessimistic for the sampled sets' misses.
      ++*c_warm_skipped_;
      return true;
    }
  }
  Line* line = find_line(laddr);

  auto touch_reg_bits = [&](Line& l) {
    if (!reg_region) return;
    l.reg_line = true;
    if (is_write) {
      if (l.pin > 0) --l.pin;
    } else {
      if (l.pin < 7) ++l.pin;
    }
  };

  if (line != nullptr) {
    // Present (possibly still mid-fill from before the tier cut —
    // functionally the data is in memory either way): refresh recency.
    line->lru = warm_now;
    if (is_write) line->dirty = true;
    touch_reg_bits(*line);
    ++*c_warm_hits_;
    return true;
  }

  ++*c_warm_misses_;
  const u64 line_no = laddr / kLineBytes;
  const u32 set = static_cast<u32>(line_no & (num_sets_ - 1));
  Line* victim = pick_victim(set, warm_now);
  if (victim == nullptr) {
    // Every way pinned or mid-fill: the detailed model would bypass.
    below_.warm_line(laddr, is_write, warm_now);
    return false;
  }
  if (victim->valid && victim->dirty) {
    // The writeback itself is a functional no-op (the cache holds tags
    // only; SparseMemory already has the data), but it would touch the
    // level below, so warm that.
    const Addr wb = ((victim->tag << set_shift_) |
                     (line_no & (num_sets_ - 1))) *
                    kLineBytes;
    below_.warm_line(wb, /*is_write=*/true, warm_now);
  }
  below_.warm_line(laddr, /*is_write=*/false, warm_now);
  victim->valid = true;
  victim->dirty = is_write;
  victim->reg_line = false;
  victim->pin = 0;
  victim->tag = line_no >> set_shift_;
  victim->pending_until = warm_now;  // fill completes instantly
  // The detailed model inserts at fill *completion* (lru = done), so a
  // just-filled line outranks lines merely hit around the same time —
  // which is what lets streaming fills push out frequently-hit lines.
  // Reproduce that geometry: stamp warm fills ahead of the warm clock
  // by the cache's own observed mean miss latency (0 until a detailed
  // stretch has measured one).
  const Cycle fill_bias =
      *c_misses_ > 0.0 ? static_cast<Cycle>(*c_miss_latency_ / *c_misses_)
                       : 0;
  victim->lru = warm_now + fill_bias;
  touch_reg_bits(*victim);
  return false;
}

void Cache::save_state(ckpt::Encoder& enc) const {
  enc.put_u32(static_cast<u32>(lines_.size()));
  for (const Line& l : lines_) {
    enc.put_u64(l.tag);
    enc.put_bool(l.valid);
    enc.put_bool(l.dirty);
    enc.put_bool(l.reg_line);
    enc.put_u8(l.pin);
    enc.put_u64(l.pending_until);
    enc.put_u64(l.lru);
  }
  enc.put_cycle_vec(mshr_until_);
  enc.put_u64(port_next_free_);
  enc.put_u64(reg_port_next_free_);
  enc.put_u64(last_miss_line_);
  enc.put_i64(last_stride_);
  stats_.save_state(enc);
}

void Cache::restore_state(ckpt::Decoder& dec) {
  const u32 n_lines = dec.get_u32();
  if (n_lines != lines_.size()) {
    throw ckpt::CkptError(std::string(config_.name) + ": snapshot has " +
                    std::to_string(n_lines) + " lines, cache has " +
                    std::to_string(lines_.size()));
  }
  for (Line& l : lines_) {
    l.tag = dec.get_u64();
    l.valid = dec.get_bool();
    l.dirty = dec.get_bool();
    l.reg_line = dec.get_bool();
    l.pin = dec.get_u8();
    l.pending_until = dec.get_u64();
    l.lru = dec.get_u64();
  }
  const std::vector<Cycle> mshrs = dec.get_cycle_vec();
  if (mshrs.size() != mshr_until_.size()) {
    throw ckpt::CkptError(std::string(config_.name) + ": snapshot has " +
                    std::to_string(mshrs.size()) + " MSHRs, cache has " +
                    std::to_string(mshr_until_.size()));
  }
  mshr_until_ = mshrs;
  port_next_free_ = dec.get_u64();
  reg_port_next_free_ = dec.get_u64();
  last_miss_line_ = dec.get_u64();
  last_stride_ = dec.get_i64();
  stats_.restore_state(dec);
}

}  // namespace virec::mem
