// Timing interface implemented by every level of the memory hierarchy
// (caches, the crossbar, DRAM). Levels are composed into a chain; each
// resolves the completion time of a 64 B line access at issue time.
#pragma once

#include "common/types.hpp"

namespace virec::mem {

class MemLevel {
 public:
  virtual ~MemLevel() = default;

  /// Issue a full-line (64 B) access at time @p now; returns the cycle
  /// at which the data movement completes. Implementations advance
  /// their internal contention state (bus/bank/port busy-until times).
  virtual Cycle line_access(Addr line_addr, bool is_write, Cycle now) = 0;

  /// Functional warm-up: mirror the persistent state effects of a line
  /// access — cache tag/LRU/dirty/pin state, DRAM open rows — without
  /// advancing any busy-until cursor, MSHR or timing statistic. The
  /// tiered fast-forward tier uses this to keep the hierarchy warm
  /// between measurement windows. @p warm_now is the functional tier's
  /// monotonic pseudo-clock (used for recency ordering only).
  virtual void warm_line(Addr line_addr, bool is_write, Cycle warm_now) {
    (void)line_addr;
    (void)is_write;
    (void)warm_now;
  }
};

inline constexpr u32 kLineBytes = 64;
inline constexpr Addr line_of(Addr addr) { return addr & ~Addr{kLineBytes - 1}; }

}  // namespace virec::mem
