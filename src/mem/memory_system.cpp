#include "mem/memory_system.hpp"

#include <algorithm>

namespace virec::mem {

MemorySystem::MemorySystem(const MemSystemConfig& config) : config_(config) {
  dram_ = std::make_unique<DramModel>(config_.dram);
  crossbar_ = std::make_unique<Crossbar>(config_.xbar, *dram_);
  MemLevel* below = crossbar_.get();
  if (config_.has_l2) {
    l2_ = std::make_unique<Cache>(config_.l2, *crossbar_);
    below = l2_.get();
  }
  for (u32 c = 0; c < config_.num_cores; ++c) {
    gateways_.push_back(std::make_unique<PdesGateway>(*below));
    icaches_.push_back(std::make_unique<Cache>(config_.icache, *gateways_[c]));
    dcaches_.push_back(std::make_unique<Cache>(config_.dcache, *gateways_[c]));
  }
}

void MemorySystem::set_pdes_gate(PdesGate* gate,
                                 const std::vector<u32>& partition_of_core) {
  for (u32 c = 0; c < config_.num_cores; ++c) {
    const u32 p = gate != nullptr ? partition_of_core[c] : 0;
    gateways_[c]->set_gate(gate, p);
  }
}

Cycle MemorySystem::next_event_cycle(Cycle now) const {
  Cycle next = std::min(dram_->next_event_cycle(now),
                        crossbar_->next_event_cycle(now));
  if (l2_) next = std::min(next, l2_->next_event_cycle(now));
  for (const auto& c : icaches_) {
    next = std::min(next, c->next_event_cycle(now));
  }
  for (const auto& c : dcaches_) {
    next = std::min(next, c->next_event_cycle(now));
  }
  return next;
}

void MemorySystem::reset_timing() {
  dram_->reset();
  crossbar_->reset();
  if (l2_) l2_->reset();
  for (auto& c : icaches_) c->reset();
  for (auto& c : dcaches_) c->reset();
}

void MemorySystem::save_state(ckpt::CheckpointWriter& writer) const {
  functional_.save_state(writer.section("mem.functional"));
  dram_->save_state(writer.section("mem.dram"));
  crossbar_->save_state(writer.section("mem.xbar"));
  if (l2_) l2_->save_state(writer.section("mem.l2"));
  for (u32 c = 0; c < config_.num_cores; ++c) {
    icaches_[c]->save_state(writer.section("mem.icache" + std::to_string(c)));
    dcaches_[c]->save_state(writer.section("mem.dcache" + std::to_string(c)));
  }
}

void MemorySystem::restore_state(ckpt::CheckpointReader& reader) {
  auto restore = [&reader](const std::string& name, auto& component) {
    ckpt::Decoder dec = reader.section(name);
    component.restore_state(dec);
    dec.finish();
  };
  restore("mem.functional", functional_);
  restore("mem.dram", *dram_);
  restore("mem.xbar", *crossbar_);
  if (l2_) restore("mem.l2", *l2_);
  for (u32 c = 0; c < config_.num_cores; ++c) {
    restore("mem.icache" + std::to_string(c), *icaches_[c]);
    restore("mem.dcache" + std::to_string(c), *dcaches_[c]);
  }
}

}  // namespace virec::mem
