#include "mem/memory_system.hpp"

namespace virec::mem {

MemorySystem::MemorySystem(const MemSystemConfig& config) : config_(config) {
  dram_ = std::make_unique<DramModel>(config_.dram);
  crossbar_ = std::make_unique<Crossbar>(config_.xbar, *dram_);
  MemLevel* below = crossbar_.get();
  if (config_.has_l2) {
    l2_ = std::make_unique<Cache>(config_.l2, *crossbar_);
    below = l2_.get();
  }
  for (u32 c = 0; c < config_.num_cores; ++c) {
    icaches_.push_back(std::make_unique<Cache>(config_.icache, *below));
    dcaches_.push_back(std::make_unique<Cache>(config_.dcache, *below));
  }
}

void MemorySystem::reset_timing() {
  dram_->reset();
  crossbar_->reset();
  if (l2_) l2_->reset();
  for (auto& c : icaches_) c->reset();
  for (auto& c : dcaches_) c->reset();
}

}  // namespace virec::mem
