// System crossbar between near-memory processors and the memory
// controller. Adds a fixed traversal latency plus shared-link occupancy
// so concurrent processors contend for bandwidth (Figure 11).
#pragma once

#include "ckpt/serialize.hpp"
#include "common/stats.hpp"
#include "mem/mem_level.hpp"

namespace virec::mem {

struct CrossbarConfig {
  u32 latency = 8;          // one-way traversal, cycles
  u32 cycles_per_line = 4;  // shared-link occupancy per 64 B transfer
};

class Crossbar final : public MemLevel {
 public:
  Crossbar(const CrossbarConfig& config, MemLevel& below);

  Cycle line_access(Addr line_addr, bool is_write, Cycle now) override;

  /// The crossbar keeps no persistent state besides the link cursor;
  /// warm accesses pass straight through to the memory controller.
  void warm_line(Addr line_addr, bool is_write, Cycle warm_now) override {
    below_.warm_line(line_addr, is_write, warm_now);
  }

  /// Shared-link release strictly after @p now (kNeverCycle when the
  /// link is idle). Event-skip input.
  Cycle next_event_cycle(Cycle now) const {
    return link_next_free_ > now ? link_next_free_ : kNeverCycle;
  }

  const StatSet& stats() const { return stats_; }
  void reset();

  StatSet& stats() { return stats_; }

  /// Checkpoint link occupancy plus the stat set.
  void save_state(ckpt::Encoder& enc) const;
  void restore_state(ckpt::Decoder& dec);

 private:
  CrossbarConfig config_;
  MemLevel& below_;
  Cycle link_next_free_ = 0;
  StatSet stats_;
  Distribution* dist_link_wait_ = nullptr;  // owned by stats_
  // Hot-path counter handles (owned by stats_).
  double* c_transfers_ = nullptr;
  double* c_contention_cycles_ = nullptr;
};

}  // namespace virec::mem
