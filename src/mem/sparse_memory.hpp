// Functional (value-carrying) memory for the simulated system. Backing
// storage is a sparse map of 4 KiB pages so workloads can scatter data
// across a 64-bit physical address space without allocating it all.
//
// This is the *functional* half of the memory system; timing lives in
// mem/cache.hpp, mem/dram.hpp and mem/crossbar.hpp.
//
// Pages are held in kShards independently locked maps (sharded by page
// number) so the parallel simulation mode can create pages from
// several worker threads: set_concurrent(true) takes the shard lock
// around every map probe/insert and bypasses the single-entry page
// cache. The byte payloads themselves are *not* locked — the workload
// contract (workloads/workload.hpp) keeps runtime traffic race-free at
// the byte level: inputs are written once at init time and outputs are
// per-thread disjoint, and unordered_map never moves a mapped Page, so
// a pointer obtained under the shard lock stays valid outside it.
#pragma once

#include <array>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "ckpt/serialize.hpp"
#include "common/types.hpp"

namespace virec::mem {

class SparseMemory final : public ckpt::Serializable {
 public:
  static constexpr u64 kPageSize = 4096;
  static constexpr u32 kShards = 64;

  SparseMemory() = default;
  // Copies must not inherit the one-entry page cache: the raw pointer
  // would alias the *source's* page map, so a later write through the
  // copy would silently mutate the original. The check subsystem clones
  // functional memory for its shadow state, so this matters.
  SparseMemory(const SparseMemory& other) {
    for (u32 s = 0; s < kShards; ++s) shards_[s].pages = other.shards_[s].pages;
  }
  SparseMemory& operator=(const SparseMemory& other) {
    if (this != &other) {
      for (u32 s = 0; s < kShards; ++s) {
        shards_[s].pages = other.shards_[s].pages;
      }
      drop_cache();
    }
    return *this;
  }

  /// Toggle thread-safe page-map access for the parallel run loop.
  /// Call only while no simulated core is executing.
  void set_concurrent(bool on) {
    concurrent_ = on;
    drop_cache();
  }

  /// Checkpoint every touched page (sorted by page number, so the
  /// snapshot bytes are deterministic). Restore replaces all contents.
  void save_state(ckpt::Encoder& enc) const override;
  void restore_state(ckpt::Decoder& dec) override;

  /// Read @p size (1/2/4/8) bytes at @p addr, little-endian, zero if
  /// the page was never written.
  u64 read(Addr addr, u32 size) const;

  /// Write the low @p size bytes of @p value at @p addr.
  void write(Addr addr, u32 size, u64 value);

  u64 read_u64(Addr addr) const { return read(addr, 8); }
  void write_u64(Addr addr, u64 v) { write(addr, 8, v); }
  double read_f64(Addr addr) const;
  void write_f64(Addr addr, double v);

  /// Bulk copy helpers used by workload initialisation and checkers.
  void write_block(Addr addr, const void* src, std::size_t bytes);
  void read_block(Addr addr, void* dst, std::size_t bytes) const;

  /// Number of distinct touched pages (test/diagnostic aid).
  std::size_t page_count() const;

  /// Drop all contents.
  void clear() {
    for (u32 s = 0; s < kShards; ++s) shards_[s].pages.clear();
    drop_cache();
  }

  // --- Undo journal (tiered probe-and-revert; sim::TieredRunner) ---
  //
  // While active, every write() records the bytes it overwrites so
  // journal_rollback() can restore the pre-journal contents exactly
  // (entries are replayed in reverse, so overlapping writes unwind
  // correctly). Single-threaded use only — a detailed probe runs on
  // the serial loop; do not combine with set_concurrent(true).

  /// Start recording undo entries. Must not already be active.
  void journal_begin();
  /// Undo every journaled write (newest first) and stop recording.
  void journal_rollback();
  /// Stop recording and keep the written state.
  void journal_discard();
  bool journal_active() const { return journaling_; }

 private:
  using Page = std::vector<u8>;

  struct Shard {
    std::unordered_map<u64, Page> pages;
    // Guards the map structure (probe/insert) in concurrent mode only;
    // single-threaded callers skip it entirely.
    mutable std::mutex mu;
  };

  static u32 shard_of(u64 page_no) {
    return static_cast<u32>(page_no) & (kShards - 1);
  }
  void drop_cache() {
    cached_page_no_ = ~u64{0};
    cached_page_ = nullptr;
  }
  const Page* find_page(Addr addr) const;
  Page& touch_page(Addr addr);

  struct JournalEntry {
    Addr addr;
    u32 size;
    u64 old_value;
  };

  std::array<Shard, kShards> shards_;
  bool concurrent_ = false;
  bool journaling_ = false;
  std::vector<JournalEntry> journal_;
  // One-entry page cache so sequential/streaming access skips the
  // unordered_map probe. unordered_map never moves mapped values on
  // insert, so the pointer stays valid until clear(). Bypassed in
  // concurrent mode (it is shared mutable state).
  mutable u64 cached_page_no_ = ~u64{0};
  mutable Page* cached_page_ = nullptr;
};

}  // namespace virec::mem
