// Functional (value-carrying) memory for the simulated system. Backing
// storage is a sparse map of 4 KiB pages so workloads can scatter data
// across a 64-bit physical address space without allocating it all.
//
// This is the *functional* half of the memory system; timing lives in
// mem/cache.hpp, mem/dram.hpp and mem/crossbar.hpp.
#pragma once

#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ckpt/serialize.hpp"
#include "common/types.hpp"

namespace virec::mem {

class SparseMemory final : public ckpt::Serializable {
 public:
  static constexpr u64 kPageSize = 4096;

  SparseMemory() = default;
  // Copies must not inherit the one-entry page cache: the raw pointer
  // would alias the *source's* page map, so a later write through the
  // copy would silently mutate the original. The check subsystem clones
  // functional memory for its shadow state, so this matters.
  SparseMemory(const SparseMemory& other) : pages_(other.pages_) {}
  SparseMemory& operator=(const SparseMemory& other) {
    if (this != &other) {
      pages_ = other.pages_;
      cached_page_no_ = ~u64{0};
      cached_page_ = nullptr;
    }
    return *this;
  }

  /// Checkpoint every touched page (sorted by page number, so the
  /// snapshot bytes are deterministic). Restore replaces all contents.
  void save_state(ckpt::Encoder& enc) const override;
  void restore_state(ckpt::Decoder& dec) override;

  /// Read @p size (1/2/4/8) bytes at @p addr, little-endian, zero if
  /// the page was never written.
  u64 read(Addr addr, u32 size) const;

  /// Write the low @p size bytes of @p value at @p addr.
  void write(Addr addr, u32 size, u64 value);

  u64 read_u64(Addr addr) const { return read(addr, 8); }
  void write_u64(Addr addr, u64 v) { write(addr, 8, v); }
  double read_f64(Addr addr) const;
  void write_f64(Addr addr, double v);

  /// Bulk copy helpers used by workload initialisation and checkers.
  void write_block(Addr addr, const void* src, std::size_t bytes);
  void read_block(Addr addr, void* dst, std::size_t bytes) const;

  /// Number of distinct touched pages (test/diagnostic aid).
  std::size_t page_count() const { return pages_.size(); }

  /// Drop all contents.
  void clear() {
    pages_.clear();
    cached_page_no_ = ~u64{0};
    cached_page_ = nullptr;
  }

 private:
  using Page = std::vector<u8>;

  const Page* find_page(Addr addr) const;
  Page& touch_page(Addr addr);

  std::unordered_map<u64, Page> pages_;
  // One-entry page cache so sequential/streaming access skips the
  // unordered_map probe. unordered_map never moves mapped values on
  // insert, so the pointer stays valid until clear().
  mutable u64 cached_page_no_ = ~u64{0};
  mutable Page* cached_page_ = nullptr;
};

}  // namespace virec::mem
