// Set-associative write-back cache with MSHRs, used for both icaches
// and dcaches (and the OoO comparator's L2, where an optional stride
// prefetcher can be enabled).
//
// ViReC extensions (Section 5.3 of the paper):
//  * every line carries a register/data bit and a 3-bit pin counter;
//  * accesses flagged as register-region reads increment the pin
//    counter (a register became live in the RF) and register-region
//    writes decrement it (the register was evicted from the RF);
//  * pinned lines (pin > 0) are never chosen as victims, shrinking the
//    cache capacity available to program data;
//  * the access result distinguishes data misses (which signal the CSL
//    to context switch) from register-region misses (which stall the
//    pipeline until the fill returns).
#pragma once

#include <unordered_map>
#include <vector>

#include "ckpt/serialize.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/mem_level.hpp"

namespace virec::check {
class CheckContext;
}  // namespace virec::check

namespace virec::mem {

struct CacheConfig {
  const char* name = "cache";
  u32 size_bytes = 8 * 1024;
  u32 assoc = 4;
  u32 hit_latency = 2;
  u32 mshrs = 24;
  /// Enable a simple stride prefetcher (used by the OoO L2).
  bool stride_prefetch = false;
  u32 prefetch_degree = 8;
};

struct CacheAccess {
  /// Data present when the access completes its hit pipeline. A miss or
  /// a hit-under-miss coalesce (data still in flight) reports false.
  bool hit = false;
  /// Cycle at which the loaded data is available / the write retires.
  Cycle done = 0;
  /// The access had to wait for a free MSHR.
  bool mshr_stall = false;
};

class Cache final : public MemLevel {
 public:
  Cache(const CacheConfig& config, MemLevel& below);

  /// Demand access (sub-line granularity; must not cross a 64 B line).
  /// @p reg_region marks backing-store traffic for registers: it
  /// drives the pin counters and is excluded from context-switch miss
  /// signalling by the caller.
  CacheAccess access(Addr addr, bool is_write, Cycle now,
                     bool reg_region = false);

  /// MemLevel interface for an upper cache level.
  Cycle line_access(Addr line_addr, bool is_write, Cycle now) override;

  /// Functional warm-up access (tiered fast-forward tier): mirrors the
  /// tag/LRU/dirty/pin effects of access() without touching ports,
  /// MSHRs or demand statistics. Fills complete instantly (the data
  /// already lives in functional memory); misses propagate as
  /// warm_line() to the level below so lower tags and DRAM rows warm
  /// too. @p warm_now must be monotonic with the detailed clock so
  /// recency stays ordered across tier switches. Returns whether the
  /// line was already present.
  bool warm_access(Addr addr, bool is_write, Cycle warm_now,
                   bool reg_region = false);

  /// Opt-in set-sampled warming (--warm-set-sample=K): only sets whose
  /// index is 0 mod K are actually warmed; warm accesses to every other
  /// set are counted under "warm_skipped" and pretend the line is
  /// present without touching tags. K must be a power of two (1
  /// restores full warming; values above num_sets() clamp). Biases the
  /// unsampled sets cold — quantify with bench/sampled_validation
  /// before trusting absolute numbers (docs/performance.md).
  void set_warm_set_sample(u32 k);
  u32 warm_set_sample() const { return warm_sample_mask_ + 1; }

  void warm_line(Addr line_addr, bool is_write, Cycle warm_now) override {
    warm_access(line_addr, is_write, warm_now, /*reg_region=*/false);
  }

  /// True if @p addr currently hits (tags only, no state change).
  bool probe(Addr addr) const;

  /// Reserve the line holding @p addr for a blocked CGMT thread: the
  /// miss response is held for its requester until consumed (the line
  /// is exempted from eviction). Returns false if the line is absent
  /// (e.g. the miss bypassed the cache).
  bool reserve_line(Addr addr);
  /// Release a reservation taken with reserve_line.
  void release_line(Addr addr);

  /// Number of currently pinned (register) lines.
  u32 pinned_lines() const;

  /// Misses still in flight at @p now (busy MSHRs). Cheap enough for
  /// periodic sampling.
  u32 outstanding_misses(Cycle now) const;

  /// Earliest MSHR completion strictly after @p now (kNeverCycle if
  /// none are busy). Event-skip input: the cache resolves all timing at
  /// access time, so between @p now and this cycle nothing it owns
  /// changes on its own.
  Cycle next_event_cycle(Cycle now) const;

  u32 num_sets() const { return num_sets_; }
  u32 assoc() const { return config_.assoc; }

  const StatSet& stats() const { return stats_; }
  StatSet& stats() { return stats_; }

  void reset();

  /// Attach the hard-invariant context (nullptr detaches): MSHR
  /// accounting is audited on every access.
  void set_check(const check::CheckContext* check) { check_ = check; }

  /// Test hook: mark one MSHR as claimed-but-never-released so the
  /// leak invariant fires on the next miss.
  void leak_mshr_for_test() { mshr_until_[0] = kNeverCycle; }

  /// Checkpoint all tag/MSHR/port/prefetcher state plus the stat set.
  /// Restore validates that the saved geometry matches this cache's
  /// configuration and throws ckpt::CkptError otherwise.
  void save_state(ckpt::Encoder& enc) const;
  void restore_state(ckpt::Decoder& dec);

 private:
  struct Line {
    u64 tag = 0;
    bool valid = false;
    bool dirty = false;
    bool reg_line = false;
    u8 pin = 0;             // 3-bit saturating pin counter
    Cycle pending_until = 0;  // fill in flight until this cycle
    Cycle lru = 0;          // cycle of last touch (fill: response time)
  };

  Line* find_line(Addr line_addr);
  const Line* find_line(Addr line_addr) const;
  /// Pick a victim way in @p set at time @p now; returns nullptr if
  /// every line is pinned or mid-fill (caller must bypass).
  Line* pick_victim(u32 set, Cycle now);
  /// Block until an MSHR is free; returns adjusted start time.
  Cycle acquire_mshr(Addr line_addr, Cycle start, bool& stalled);
  void maybe_prefetch(Addr line_addr, Cycle now);

  CacheConfig config_;
  MemLevel& below_;
  u32 num_sets_;
  u32 set_shift_ = 0;  // log2(num_sets_), precomputed for the hot path
  std::vector<Line> lines_;  // num_sets * assoc
  std::vector<Cycle> mshr_until_;
  // Port arbiter (Section 5.3): LSQ/program accesses always win the
  // port; register (backing-store) requests wait for both cursors.
  Cycle port_next_free_ = 0;      // program-priority cursor
  Cycle reg_port_next_free_ = 0;  // register-request cursor
  // Stride prefetcher state.
  u64 last_miss_line_ = 0;
  i64 last_stride_ = 0;
  // Set-sampled warming: warm accesses to sets with (set & mask) != 0
  // are skipped. 0 = warm every set.
  u32 warm_sample_mask_ = 0;
  StatSet stats_;
  Histogram* hist_miss_cycles_ = nullptr;  // owned by stats_
  // Hot-path counter handles (owned by stats_; see StatSet::counter).
  double* c_reads_ = nullptr;
  double* c_writes_ = nullptr;
  double* c_hits_ = nullptr;
  double* c_misses_ = nullptr;
  double* c_coalesced_ = nullptr;
  double* c_reg_region_misses_ = nullptr;
  double* c_port_wait_cycles_ = nullptr;
  double* c_miss_latency_ = nullptr;
  double* c_mshr_stall_cycles_ = nullptr;
  double* c_writebacks_ = nullptr;
  double* c_bypasses_ = nullptr;
  double* c_prefetches_ = nullptr;
  double* c_warm_hits_ = nullptr;
  double* c_warm_misses_ = nullptr;
  double* c_warm_skipped_ = nullptr;
  const check::CheckContext* check_ = nullptr;
};

}  // namespace virec::mem
