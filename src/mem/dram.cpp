#include "mem/dram.hpp"

#include <algorithm>
#include <stdexcept>

namespace virec::mem {

DramModel::DramModel(const DramConfig& config)
    : config_(config),
      banks_(config.channels * config.banks_per_channel),
      bus_next_free_(config.channels),
      stats_("dram") {
  if (config_.channels == 0 || config_.banks_per_channel == 0) {
    throw std::invalid_argument("DramModel: need >=1 channel and bank");
  }
  c_reads_ = stats_.counter("reads", "DRAM read requests serviced");
  c_writes_ = stats_.counter("writes", "DRAM write requests serviced");
  c_row_hits_ = stats_.counter("row_hits",
                               "accesses to the currently open row");
  c_row_empty_ = stats_.counter("row_empty",
                                "accesses that found the bank's row closed");
  c_row_conflicts_ = stats_.counter(
      "row_conflicts", "accesses that had to close a different open row");
  c_bank_conflict_cycles_ = stats_.counter(
      "bank_conflict_cycles", "cycles requests queued behind a busy bank");
  c_total_latency_ = stats_.counter(
      "total_latency", "summed DRAM service latency over all requests");
  dist_latency_ = stats_.distribution(
      "access_latency", "per-access cycles from issue to data return");
}

Cycle DramModel::next_event_cycle(Cycle now) const {
  Cycle next = kNeverCycle;
  for (const Bank& bank : banks_) {
    if (bank.next_free > now && bank.next_free < next) next = bank.next_free;
  }
  for (const Cycle free : bus_next_free_) {
    if (free > now && free < next) next = free;
  }
  return next;
}

void DramModel::reset() {
  std::fill(banks_.begin(), banks_.end(), Bank{});
  std::fill(bus_next_free_.begin(), bus_next_free_.end(), Cycle{0});
  stats_.clear();
}

Cycle DramModel::line_access(Addr line_addr, bool is_write, Cycle now) {
  // Line-interleaved channel mapping, then bank bits.
  const u64 line = line_addr / kLineBytes;
  const u32 channel = static_cast<u32>(line % config_.channels);
  const u32 bank_idx =
      static_cast<u32>((line / config_.channels) % config_.banks_per_channel);
  Bank& bank = banks_[channel * config_.banks_per_channel + bank_idx];
  const u64 row = line_addr / config_.row_bytes;

  const Cycle start = std::max(now, bank.next_free);
  if (start > now) *c_bank_conflict_cycles_ += double(start - now);

  u32 access_latency;
  if (bank.open_row == row) {
    access_latency = config_.t_cl;
    ++*c_row_hits_;
  } else if (bank.open_row == ~u64{0}) {
    access_latency = config_.t_rcd + config_.t_cl;
    ++*c_row_empty_;
  } else {
    access_latency = config_.t_rp + config_.t_rcd + config_.t_cl;
    ++*c_row_conflicts_;
  }
  bank.open_row = row;

  const Cycle data_ready = start + access_latency;
  Cycle& bus = bus_next_free_[channel];
  const Cycle burst_start = std::max(data_ready, bus);
  const Cycle done = burst_start + config_.burst_cycles;
  bus = done;
  // The bank is busy until its data has been moved.
  bank.next_free = done;

  ++*(is_write ? c_writes_ : c_reads_);
  *c_total_latency_ += double(done - now);
  dist_latency_->record(double(done - now));
  return done;
}

void DramModel::warm_line(Addr line_addr, bool /*is_write*/,
                          Cycle /*warm_now*/) {
  const u64 line = line_addr / kLineBytes;
  const u32 channel = static_cast<u32>(line % config_.channels);
  const u32 bank_idx =
      static_cast<u32>((line / config_.channels) % config_.banks_per_channel);
  banks_[channel * config_.banks_per_channel + bank_idx].open_row =
      line_addr / config_.row_bytes;
}

void DramModel::save_state(ckpt::Encoder& enc) const {
  enc.put_u32(static_cast<u32>(banks_.size()));
  for (const Bank& b : banks_) {
    enc.put_u64(b.next_free);
    enc.put_u64(b.open_row);
  }
  enc.put_cycle_vec(bus_next_free_);
  stats_.save_state(enc);
}

void DramModel::restore_state(ckpt::Decoder& dec) {
  const u32 n_banks = dec.get_u32();
  if (n_banks != banks_.size()) {
    throw ckpt::CkptError("dram: snapshot has " + std::to_string(n_banks) +
                          " banks, model has " +
                          std::to_string(banks_.size()));
  }
  for (Bank& b : banks_) {
    b.next_free = dec.get_u64();
    b.open_row = dec.get_u64();
  }
  const std::vector<Cycle> bus = dec.get_cycle_vec();
  if (bus.size() != bus_next_free_.size()) {
    throw ckpt::CkptError("dram: snapshot has " + std::to_string(bus.size()) +
                          " channels, model has " +
                          std::to_string(bus_next_free_.size()));
  }
  bus_next_free_ = bus;
  stats_.restore_state(dec);
}

}  // namespace virec::mem
