#include "mem/crossbar.hpp"

#include <algorithm>

namespace virec::mem {

Crossbar::Crossbar(const CrossbarConfig& config, MemLevel& below)
    : config_(config), below_(below), stats_("xbar") {
  c_transfers_ = stats_.counter("transfers",
                                "line transfers carried by the crossbar");
  c_contention_cycles_ = stats_.counter(
      "contention_cycles", "cycles transfers waited for a busy output port");
  dist_link_wait_ = stats_.distribution(
      "link_wait", "per-transfer cycles spent waiting for the shared link");
}

void Crossbar::reset() {
  link_next_free_ = 0;
  stats_.clear();
}

Cycle Crossbar::line_access(Addr line_addr, bool is_write, Cycle now) {
  const Cycle start = std::max(now, link_next_free_);
  if (start > now) *c_contention_cycles_ += double(start - now);
  link_next_free_ = start + config_.cycles_per_line;
  ++*c_transfers_;
  dist_link_wait_->record(double(start - now));
  const Cycle done =
      below_.line_access(line_addr, is_write, start + config_.latency);
  // Response traverses the crossbar again.
  return done + config_.latency;
}

void Crossbar::save_state(ckpt::Encoder& enc) const {
  enc.put_u64(link_next_free_);
  stats_.save_state(enc);
}

void Crossbar::restore_state(ckpt::Decoder& dec) {
  link_next_free_ = dec.get_u64();
  stats_.restore_state(dec);
}

}  // namespace virec::mem
