// Per-core choke point between the private L1 caches and the shared
// levels below (L2/crossbar/DRAM). With no gate attached it forwards
// transparently; with a gate it enforces the conservative PDES ordering
// protocol (common/pdes.hpp) on every shared line access, so partitions
// running on different worker threads touch the shared timing state in
// exactly the lockstep loop's (cycle, core-index) order.
#pragma once

#include <mutex>

#include "common/pdes.hpp"
#include "mem/mem_level.hpp"

namespace virec::mem {

class PdesGateway final : public MemLevel {
 public:
  explicit PdesGateway(MemLevel& below) : below_(below) {}

  /// Attach to @p gate as partition @p partition (nullptr detaches and
  /// restores transparent forwarding). Call only while no simulation
  /// thread is inside line_access.
  void set_gate(PdesGate* gate, u32 partition) {
    gate_ = gate;
    partition_ = partition;
  }

  Cycle line_access(Addr line_addr, bool is_write, Cycle now) override {
    PdesGate* gate = gate_;
    if (gate == nullptr) return below_.line_access(line_addr, is_write, now);
    gate->wait_turn(partition_);
    if (gate->relaxed()) {
      // Key ordering no longer excludes concurrent accesses inside the
      // relaxed window; a plain mutex supplies the mutual exclusion.
      std::lock_guard<std::mutex> lock(gate->access_mutex());
      return below_.line_access(line_addr, is_write, now);
    }
    return below_.line_access(line_addr, is_write, now);
  }

  /// Warm-up traffic comes only from the single-threaded functional
  /// tier, so it bypasses the gate.
  void warm_line(Addr line_addr, bool is_write, Cycle warm_now) override {
    below_.warm_line(line_addr, is_write, warm_now);
  }

 private:
  MemLevel& below_;
  PdesGate* gate_ = nullptr;
  u32 partition_ = 0;
};

}  // namespace virec::mem
