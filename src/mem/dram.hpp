// DDR5-flavoured DRAM timing model.
//
// The model resolves the completion time of each 64 B line access when
// it is issued: bank state (open row, busy-until), per-channel data-bus
// occupancy and bank conflicts all push completion later, which is how
// multi-processor contention (Figure 11) arises.
#pragma once

#include <vector>

#include "ckpt/serialize.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/mem_level.hpp"

namespace virec::mem {

struct DramConfig {
  u32 channels = 2;
  u32 banks_per_channel = 16;  // one rank
  u32 row_bytes = 2048;
  // Timing parameters in core cycles (1 GHz core clock => 1 cycle/ns),
  // matching the paper's DDR5_6400 tRP-tCL-tRCD of 14-14-14.
  u32 t_rp = 14;
  u32 t_rcd = 14;
  u32 t_cl = 14;
  u32 burst_cycles = 2;  // 64 B on a 6400 MT/s channel
};

class DramModel final : public MemLevel {
 public:
  explicit DramModel(const DramConfig& config);

  /// Completion time of a line access issued at @p now.
  Cycle line_access(Addr line_addr, bool is_write, Cycle now) override;

  /// Functional warm-up: track the row-activation effect of the access
  /// (open_row) without advancing bank/bus busy cursors or stats.
  void warm_line(Addr line_addr, bool is_write, Cycle warm_now) override;

  /// Earliest bank/bus release strictly after @p now (kNeverCycle if
  /// everything is free). Event-skip input: the model resolves all
  /// timing at issue, so nothing changes on its own before this cycle.
  Cycle next_event_cycle(Cycle now) const;

  const StatSet& stats() const { return stats_; }
  StatSet& stats() { return stats_; }

  /// Forget all bank/bus state (fresh run).
  void reset();

  /// Checkpoint bank/bus timing state plus the stat set. Restore
  /// validates the bank/channel counts against this model's config.
  void save_state(ckpt::Encoder& enc) const;
  void restore_state(ckpt::Decoder& dec);

 private:
  struct Bank {
    Cycle next_free = 0;
    u64 open_row = ~u64{0};
  };

  DramConfig config_;
  std::vector<Bank> banks_;          // channels * banks_per_channel
  std::vector<Cycle> bus_next_free_;  // per channel
  StatSet stats_;
  Distribution* dist_latency_ = nullptr;  // owned by stats_
  // Hot-path counter handles (owned by stats_).
  double* c_reads_ = nullptr;
  double* c_writes_ = nullptr;
  double* c_row_hits_ = nullptr;
  double* c_row_empty_ = nullptr;
  double* c_row_conflicts_ = nullptr;
  double* c_bank_conflict_cycles_ = nullptr;
  double* c_total_latency_ = nullptr;
};

}  // namespace virec::mem
