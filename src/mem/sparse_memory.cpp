#include "mem/sparse_memory.hpp"

#include <algorithm>
#include <stdexcept>

namespace virec::mem {

void SparseMemory::save_state(ckpt::Encoder& enc) const {
  std::vector<u64> page_nos;
  page_nos.reserve(page_count());
  for (u32 s = 0; s < kShards; ++s) {
    for (const auto& [no, page] : shards_[s].pages) page_nos.push_back(no);
  }
  std::sort(page_nos.begin(), page_nos.end());
  enc.put_u64(page_nos.size());
  for (const u64 no : page_nos) {
    enc.put_u64(no);
    enc.raw(shards_[shard_of(no)].pages.at(no).data(), kPageSize);
  }
}

void SparseMemory::restore_state(ckpt::Decoder& dec) {
  clear();
  const u64 n = dec.get_u64();
  for (u64 i = 0; i < n; ++i) {
    const u64 no = dec.get_u64();
    Page& page = shards_[shard_of(no)].pages[no];
    page.resize(kPageSize);
    dec.raw(page.data(), kPageSize);
  }
}

std::size_t SparseMemory::page_count() const {
  std::size_t n = 0;
  for (u32 s = 0; s < kShards; ++s) n += shards_[s].pages.size();
  return n;
}

const SparseMemory::Page* SparseMemory::find_page(Addr addr) const {
  const u64 page_no = addr / kPageSize;
  const Shard& shard = shards_[shard_of(page_no)];
  if (concurrent_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.pages.find(page_no);
    // The Page lives in the map until clear(); returning the pointer
    // past the lock is safe (see header).
    return it == shard.pages.end() ? nullptr : &it->second;
  }
  if (page_no == cached_page_no_) return cached_page_;
  auto it = shard.pages.find(page_no);
  if (it == shard.pages.end()) return nullptr;
  cached_page_no_ = page_no;
  cached_page_ = const_cast<Page*>(&it->second);
  return &it->second;
}

SparseMemory::Page& SparseMemory::touch_page(Addr addr) {
  const u64 page_no = addr / kPageSize;
  Shard& shard = shards_[shard_of(page_no)];
  if (concurrent_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    Page& page = shard.pages[page_no];
    if (page.empty()) page.assign(kPageSize, 0);
    return page;
  }
  if (page_no == cached_page_no_) return *cached_page_;
  Page& page = shard.pages[page_no];
  if (page.empty()) page.assign(kPageSize, 0);
  cached_page_no_ = page_no;
  cached_page_ = &page;
  return page;
}

u64 SparseMemory::read(Addr addr, u32 size) const {
  const u64 off = addr % kPageSize;
  if (off + size <= kPageSize) {
    // Whole access inside one page: resolve it once.
    const Page* page = find_page(addr);
    if (page == nullptr) return 0;
    const u8* p = page->data() + off;
    u64 value = 0;
    for (u32 i = 0; i < size; ++i) value |= u64{p[i]} << (8 * i);
    return value;
  }
  u64 value = 0;
  for (u32 i = 0; i < size; ++i) {
    const Addr byte_addr = addr + i;
    const Page* page = find_page(byte_addr);
    const u64 byte = page ? (*page)[byte_addr % kPageSize] : 0;
    value |= byte << (8 * i);
  }
  return value;
}

void SparseMemory::journal_begin() {
  if (journaling_) {
    throw std::logic_error("SparseMemory: journal already active");
  }
  journaling_ = true;
  journal_.clear();
}

void SparseMemory::journal_rollback() {
  journaling_ = false;
  for (auto it = journal_.rbegin(); it != journal_.rend(); ++it) {
    write(it->addr, it->size, it->old_value);
  }
  journal_.clear();
}

void SparseMemory::journal_discard() {
  journaling_ = false;
  journal_.clear();
}

void SparseMemory::write(Addr addr, u32 size, u64 value) {
  if (journaling_) journal_.push_back({addr, size, read(addr, size)});
  const u64 off = addr % kPageSize;
  if (off + size <= kPageSize) {
    u8* p = touch_page(addr).data() + off;
    for (u32 i = 0; i < size; ++i) p[i] = static_cast<u8>(value >> (8 * i));
    return;
  }
  for (u32 i = 0; i < size; ++i) {
    const Addr byte_addr = addr + i;
    touch_page(byte_addr)[byte_addr % kPageSize] =
        static_cast<u8>(value >> (8 * i));
  }
}

double SparseMemory::read_f64(Addr addr) const {
  const u64 bits = read_u64(addr);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

void SparseMemory::write_f64(Addr addr, double v) {
  u64 bits;
  std::memcpy(&bits, &v, sizeof bits);
  write_u64(addr, bits);
}

void SparseMemory::write_block(Addr addr, const void* src, std::size_t bytes) {
  if (journaling_) {
    // Rare under a journal (bulk writes happen at init time); fall back
    // to journaled byte writes so rollback stays exact.
    const u8* q = static_cast<const u8*>(src);
    for (std::size_t i = 0; i < bytes; ++i) write(addr + i, 1, q[i]);
    return;
  }
  const u8* p = static_cast<const u8*>(src);
  std::size_t done = 0;
  while (done < bytes) {
    const Addr a = addr + done;
    Page& page = touch_page(a);
    const std::size_t off = a % kPageSize;
    const std::size_t chunk = std::min(bytes - done, kPageSize - off);
    std::memcpy(page.data() + off, p + done, chunk);
    done += chunk;
  }
}

void SparseMemory::read_block(Addr addr, void* dst, std::size_t bytes) const {
  u8* p = static_cast<u8*>(dst);
  std::size_t done = 0;
  while (done < bytes) {
    const Addr a = addr + done;
    const Page* page = find_page(a);
    const std::size_t off = a % kPageSize;
    const std::size_t chunk = std::min(bytes - done, kPageSize - off);
    if (page) {
      std::memcpy(p + done, page->data() + off, chunk);
    } else {
      std::memset(p + done, 0, chunk);
    }
    done += chunk;
  }
}

}  // namespace virec::mem
