#include "common/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace virec {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(width[c])) << row[c]
         << " |";
    }
    os << '\n';
  };
  auto print_sep = [&] {
    os << "+";
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return os.str();
}

}  // namespace virec
