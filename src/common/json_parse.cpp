#include "common/json_parse.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace virec {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw JsonParseError("missing key: " + key);
  return *v;
}

u64 JsonValue::as_u64() const {
  if (!is_number()) throw JsonParseError("not a number");
  errno = 0;
  char* end = nullptr;
  const u64 out = std::strtoull(number_raw.c_str(), &end, 10);
  if (number_raw.empty() || end != number_raw.c_str() + number_raw.size() ||
      errno == ERANGE || number_raw[0] == '-') {
    throw JsonParseError("not a u64: " + number_raw);
  }
  return out;
}

i64 JsonValue::as_i64() const {
  if (!is_number()) throw JsonParseError("not a number");
  errno = 0;
  char* end = nullptr;
  const i64 out = std::strtoll(number_raw.c_str(), &end, 10);
  if (number_raw.empty() || end != number_raw.c_str() + number_raw.size() ||
      errno == ERANGE) {
    throw JsonParseError("not an i64: " + number_raw);
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonParseError("json error at offset " + std::to_string(pos_) +
                         ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      if (v.find(key) != nullptr) fail("duplicate key " + key);
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            // The protocol is ASCII; keep the low byte of the unit.
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number " + token);
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = d;
    v.number_raw = token;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace virec
