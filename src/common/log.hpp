// Minimal leveled logging. Off by default so simulations stay quiet;
// tests and debugging sessions can raise the level per run.
#pragma once

#include <sstream>
#include <string>

namespace virec {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

/// Global log threshold. Messages above the threshold are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emit one formatted line to stderr if @p level passes the threshold.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  append_all(os, rest...);
}
}  // namespace detail

/// Variadic convenience: log_msg(LogLevel::kDebug, "x=", x).
template <typename... Args>
void log_msg(LogLevel level, const Args&... args) {
  if (level > log_level()) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(level, os.str());
}

}  // namespace virec
