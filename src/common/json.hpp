// Minimal streaming JSON writer used by the observability layer (run
// reports, sweep exports, Perfetto traces). Handles commas, nesting,
// indentation and string escaping; emits numbers with enough precision
// to round-trip doubles, and integers without an exponent.
//
//   JsonWriter w(os);
//   w.begin_object();
//   w.key("config");
//   w.begin_object();
//   w.kv("workload", "gather");
//   w.kv("threads", 8);
//   w.end_object();
//   w.end_object();   // => {"config":{"workload":"gather","threads":8}}
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace virec {

class JsonWriter {
 public:
  /// @p indent spaces per nesting level; 0 emits compact single-line
  /// JSON.
  explicit JsonWriter(std::ostream& os, int indent = 2);

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object member key; must be followed by exactly one value.
  void key(const std::string& name);

  void value(const std::string& v);
  void value(const char* v);
  void value(double v);
  void value(u64 v);
  void value(i64 v);
  void value(int v) { value(static_cast<i64>(v)); }
  void value(u32 v) { value(static_cast<u64>(v)); }
  void value(bool v);
  void null();

  /// key() + value() in one call.
  template <typename T>
  void kv(const std::string& name, const T& v) {
    key(name);
    value(v);
  }

  /// Escape @p s as a JSON string literal (with quotes).
  static std::string quote(const std::string& s);

 private:
  void before_value();
  void newline_indent();

  std::ostream& os_;
  int indent_;
  struct Level {
    bool is_object = false;
    bool has_items = false;
  };
  std::vector<Level> levels_;
  bool pending_key_ = false;
};

}  // namespace virec
