// Minimal recursive-descent JSON parser — the reading counterpart of
// common/json.hpp's JsonWriter, used by the virec-simd protocol layer
// (src/svc/protocol.cpp) to decode request/response lines. Parses a
// complete document into a small DOM and rejects trailing garbage.
// Numbers keep their raw token alongside the strtod double, so integer
// fields above 2^53 (e.g. 64-bit ids) can be re-read exactly with
// as_u64().
//
// Deliberately small: JSON-standard escapes only (\uXXXX keeps the low
// byte — the protocol is ASCII), no streaming, no comments.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace virec {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string number_raw;  // exact token, for as_u64/as_i64
  std::string string;
  std::vector<JsonValue> array;
  // Insertion order preserved; duplicate keys rejected at parse time.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  /// Member lookup; throws JsonParseError when absent.
  const JsonValue& at(const std::string& key) const;

  /// Exact integer re-parse of a number token; throws JsonParseError if
  /// this is not a number or does not parse as the requested type.
  u64 as_u64() const;
  i64 as_i64() const;
};

class JsonParseError : public std::runtime_error {
 public:
  explicit JsonParseError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Parse a full document; throws JsonParseError on any syntax error,
/// including trailing non-whitespace.
JsonValue json_parse(const std::string& text);

}  // namespace virec
