// Deterministic xorshift128+ RNG. Workload generators use this instead
// of <random> so index streams are identical across platforms and runs,
// which the experiment harnesses rely on.
#pragma once

#include <stdexcept>

#include "common/types.hpp"

namespace virec {

class Xorshift128 {
 public:
  explicit constexpr Xorshift128(u64 seed = 0x9e3779b97f4a7c15ull)
      : s0_(splitmix(seed)), s1_(splitmix(s0_ ^ seed)) {
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  /// Next 64 uniformly distributed bits.
  constexpr u64 next() {
    u64 x = s0_;
    const u64 y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform value in [0, bound). Throws on bound == 0 (% 0 is UB).
  constexpr u64 next_below(u64 bound) {
    if (bound == 0) throw std::logic_error("Xorshift128::next_below(0)");
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Raw engine state, for checkpointing.
  constexpr u64 state0() const { return s0_; }
  constexpr u64 state1() const { return s1_; }
  constexpr void set_state(u64 s0, u64 s1) {
    s0_ = s0;
    s1_ = s1;
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

 private:
  static constexpr u64 splitmix(u64 x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  u64 s0_;
  u64 s1_;
};

}  // namespace virec
