#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace virec {

namespace {
// Atomic: parallel experiment workers (sim::ParallelExecutor) read the
// threshold concurrently.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& msg) {
  if (level > log_level()) return;
  std::fprintf(stderr, "[virec %-5s] %s\n", level_name(level), msg.c_str());
}

}  // namespace virec
