#include "common/cycle_account.hpp"

#include <string>

namespace virec {
namespace {

struct BucketInfo {
  const char* name;
  const char* desc;
};

constexpr BucketInfo kBuckets[kNumCycleBuckets] = {
    {"commit", "cycles in which an instruction committed"},
    {"pipeline", "cycles spent moving work through the pipe, no stall"},
    {"decode_fill", "cycles decode waited on register fill/spill traffic"},
    {"frontend_wait", "cycles the empty pipe waited on fetch/icache"},
    {"mispredict_redirect", "cycles refilling after a mispredict flush"},
    {"switch_overhead", "cycles draining/refilling across context switches"},
    {"switch_no_target", "cycles wanting to switch with no ready thread"},
    {"switch_masked", "cycles a desired switch was masked by policy"},
    {"mem_data", "cycles blocked on a demand dcache data miss"},
    {"mem_reg", "cycles blocked on a register-region (fill) miss"},
    {"mem_mshr", "cycles blocked on a full MSHR file"},
    {"sq_full", "cycles a store stalled on a full store queue"},
    {"idle", "cycles with no runnable thread on the core"},
    {"fast_forward",
     "cycles covered by the functional fast-forward tier (sampled runs)"},
};

}  // namespace

const char* cycle_bucket_name(CycleBucket b) {
  return kBuckets[static_cast<std::size_t>(b)].name;
}

const char* cycle_bucket_desc(CycleBucket b) {
  return kBuckets[static_cast<std::size_t>(b)].desc;
}

CycleAccount::CycleAccount(StatSet& stats, u32 num_threads)
    : num_threads_(num_threads) {
  for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
    core_[b] = stats.counter(std::string("cpi_") + kBuckets[b].name,
                             kBuckets[b].desc);
  }
  thread_.resize(static_cast<std::size_t>(num_threads) * kNumCycleBuckets);
  for (u32 t = 0; t < num_threads; ++t) {
    const std::string stem = "cpi_t" + std::to_string(t) + "_";
    for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
      thread_[static_cast<std::size_t>(t) * kNumCycleBuckets + b] =
          stats.counter(stem + kBuckets[b].name,
                        std::string("thread ") + std::to_string(t) + ": " +
                            kBuckets[b].desc);
    }
  }
}

double CycleAccount::total() const {
  double sum = 0.0;
  for (std::size_t b = 0; b < kNumCycleBuckets; ++b) sum += *core_[b];
  return sum;
}

double CycleAccount::thread_total(u32 tid) const {
  double sum = 0.0;
  for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
    sum += *thread_[static_cast<std::size_t>(tid) * kNumCycleBuckets + b];
  }
  return sum;
}

}  // namespace virec
