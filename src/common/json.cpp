#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace virec {

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent) {}

std::string JsonWriter::quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < levels_.size() * indent_; ++i) os_ << ' ';
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!levels_.empty()) {
    if (levels_.back().has_items) os_ << ',';
    levels_.back().has_items = true;
    newline_indent();
  }
}

void JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  levels_.push_back(Level{true, false});
}

void JsonWriter::end_object() {
  const bool had = levels_.back().has_items;
  levels_.pop_back();
  if (had) newline_indent();
  os_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  levels_.push_back(Level{false, false});
}

void JsonWriter::end_array() {
  const bool had = levels_.back().has_items;
  levels_.pop_back();
  if (had) newline_indent();
  os_ << ']';
}

void JsonWriter::key(const std::string& name) {
  if (levels_.back().has_items) os_ << ',';
  levels_.back().has_items = true;
  newline_indent();
  os_ << quote(name) << (indent_ > 0 ? ": " : ":");
  pending_key_ = true;
}

void JsonWriter::value(const std::string& v) {
  before_value();
  os_ << quote(v);
}

void JsonWriter::value(const char* v) { value(std::string(v)); }

void JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    os_ << "null";
    return;
  }
  // Integral doubles print without a fraction; others round-trip.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    os_ << buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os_ << buf;
  }
}

void JsonWriter::value(u64 v) {
  before_value();
  os_ << v;
}

void JsonWriter::value(i64 v) {
  before_value();
  os_ << v;
}

void JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
}

void JsonWriter::null() {
  before_value();
  os_ << "null";
}

}  // namespace virec
