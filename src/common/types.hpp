// Fixed-width type aliases and small utilities shared by every module.
#pragma once

#include <cstdint>
#include <cstddef>

namespace virec {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Simulation time in core clock cycles.
using Cycle = u64;

/// Byte address in the simulated physical address space.
using Addr = u64;

/// Sentinel for "no cycle" / "not scheduled".
inline constexpr Cycle kNeverCycle = ~Cycle{0};

/// True iff @p v is a power of two (and nonzero).
constexpr bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

/// log2 of a power-of-two value.
constexpr u32 log2_pow2(u64 v) {
  u32 n = 0;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

/// Round @p v up to a multiple of power-of-two @p align.
constexpr u64 align_up(u64 v, u64 align) {
  return (v + align - 1) & ~(align - 1);
}

/// Round @p v down to a multiple of power-of-two @p align.
constexpr u64 align_down(u64 v, u64 align) { return v & ~(align - 1); }

}  // namespace virec
