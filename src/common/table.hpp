// Fixed-width ASCII table printer used by the figure/table benchmark
// harnesses so every experiment prints the same style of report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace virec {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with aligned columns to @p os.
  void print(std::ostream& os) const;

  /// Render to a string (used in tests).
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

  /// Format helpers for numeric cells.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace virec
