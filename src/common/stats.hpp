// Named statistics registry. Each simulated component owns a StatSet;
// counters are cheap (plain u64 increments) and the registry can render
// itself for reports or be queried programmatically by the harnesses.
//
// Beyond scalar counters a StatSet can hold typed statistics:
//
//  * Histogram     — log2-bucketed value distribution (miss latencies,
//                    thread run lengths, queue depths, ...);
//  * Distribution  — running min / max / mean / stddev.
//
// Both are *opt-in*: recording is a no-op (one predicted branch) until
// detailed collection is enabled, so the simulation hot path pays
// nothing when nobody asked for them. Components create their typed
// stats once at construction and keep the returned pointer; recording
// never does a name lookup.
//
// A StatRegistry aggregates the StatSets of every component of a
// system under hierarchical path names ("core0.virec.rf_hits") and is
// what the JSON exporter and the --stats dump walk.
#pragma once

#include <array>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/serialize.hpp"
#include "common/types.hpp"

namespace virec {

/// A single scalar statistic.
struct Stat {
  std::string name;
  double value = 0.0;
  std::string desc;
};

/// Log2-bucketed histogram. Bucket 0 holds values in [0, 1); bucket
/// i >= 1 holds values in [2^(i-1), 2^i). Negative values clamp to 0.
class Histogram {
 public:
  static constexpr u32 kMaxBuckets = 64;

  Histogram(std::string name, std::string desc)
      : name_(std::move(name)), desc_(std::move(desc)) {}

  /// Bucket index a value falls into.
  static u32 bucket_of(double value) {
    if (!(value >= 1.0)) return 0;
    u64 v = static_cast<u64>(value);
    u32 b = 1;
    while (v > 1 && b < kMaxBuckets - 1) {
      v >>= 1;
      ++b;
    }
    return b;
  }
  /// Inclusive lower bound of bucket @p i.
  static double bucket_low(u32 i) {
    return i == 0 ? 0.0 : static_cast<double>(u64{1} << (i - 1));
  }
  /// Exclusive upper bound of bucket @p i.
  static double bucket_high(u32 i) { return static_cast<double>(u64{1} << i); }

  /// Record one sample. No-op until enabled (hot-path guard).
  void record(double value) {
    if (!enabled_) return;
    record_always(value);
  }
  void record_always(double value);

  u64 count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// Per-bucket counts; sized to the highest occupied bucket + 1.
  const std::vector<u64>& buckets() const { return buckets_; }

  const std::string& name() const { return name_; }
  const std::string& desc() const { return desc_; }
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  void clear();
  void merge(const Histogram& other);

  /// Checkpoint the sample state (not the name/desc/enabled flag,
  /// which are configuration).
  void save_state(ckpt::Encoder& enc) const;
  void restore_state(ckpt::Decoder& dec);

 private:
  std::string name_;
  std::string desc_;
  bool enabled_ = false;
  u64 count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<u64> buckets_;
};

/// Running min / max / mean / stddev of a stream of samples.
class Distribution {
 public:
  Distribution(std::string name, std::string desc)
      : name_(std::move(name)), desc_(std::move(desc)) {}

  /// Record one sample. No-op until enabled (hot-path guard).
  void record(double value) {
    if (!enabled_) return;
    record_always(value);
  }
  void record_always(double value);

  u64 count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// Population standard deviation.
  double stddev() const;

  const std::string& name() const { return name_; }
  const std::string& desc() const { return desc_; }
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  void clear();
  void merge(const Distribution& other);

  /// Checkpoint the sample state (not the name/desc/enabled flag).
  void save_state(ckpt::Encoder& enc) const;
  void restore_state(ckpt::Decoder& dec);

 private:
  std::string name_;
  std::string desc_;
  bool enabled_ = false;
  u64 count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A flat, ordered collection of named counters plus (optional) typed
/// histogram / distribution statistics.
///
/// Counters are created on first use and retain insertion order so
/// reports are stable. Lookup is by exact name.
class StatSet {
 public:
  explicit StatSet(std::string prefix = "");

  /// Add @p delta (default 1) to counter @p name.
  void inc(const std::string& name, double delta = 1.0);

  /// Stable pointer to counter @p name's value (created if absent).
  /// Components fetch this once at construction and bump through it on
  /// the simulation hot path, skipping the by-name map lookup that
  /// inc() pays on every event. The pointer stays valid for the
  /// lifetime of the set (clear() zeroes the value, never moves it).
  double* counter(const std::string& name, const std::string& desc = "");

  /// Overwrite counter @p name.
  void set(const std::string& name, double value);

  /// Current value of @p name (0 if never touched).
  double get(const std::string& name) const;

  /// True if the counter exists.
  bool has(const std::string& name) const;

  /// Attach a description to counter @p name (creates it if absent).
  void describe(const std::string& name, const std::string& desc);

  /// All counters in insertion order, names prefixed with the set prefix.
  std::vector<Stat> all() const;

  /// Create (or fetch) the histogram @p name. The returned pointer is
  /// stable for the lifetime of the set; components keep it and call
  /// record() directly.
  Histogram* histogram(const std::string& name, const std::string& desc = "");

  /// Create (or fetch) the distribution @p name (stable pointer).
  Distribution* distribution(const std::string& name,
                             const std::string& desc = "");

  const std::vector<std::unique_ptr<Histogram>>& histograms() const {
    return histograms_;
  }
  const std::vector<std::unique_ptr<Distribution>>& distributions() const {
    return distributions_;
  }

  /// Enable / disable detailed (histogram + distribution) collection.
  /// Applies to existing and future typed stats of this set.
  void set_detailed(bool on);
  bool detailed() const { return detailed_; }

  /// Reset every counter to zero (entries are kept); clears typed stats.
  void clear();

  /// Merge: add every counter / typed stat of @p other into this set.
  void merge(const StatSet& other);

  /// Checkpoint every counter value and typed-stat sample state, by
  /// name. Restoring recreates counters in the saved order (so report
  /// ordering matches an uninterrupted run) and overwrites the values
  /// of counters that already exist.
  void save_state(ckpt::Encoder& enc) const;
  void restore_state(ckpt::Decoder& dec);

  const std::string& prefix() const { return prefix_; }

 private:
  std::size_t index_of(const std::string& name);

  std::string prefix_;
  bool detailed_ = false;
  std::deque<Stat> stats_;  // deque: counter() pointers stay stable
  std::map<std::string, std::size_t> index_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
  std::vector<std::unique_ptr<Distribution>> distributions_;
};

/// Aggregates the StatSets of a whole system under hierarchical path
/// names. An entry's full stat name is "<path>.<set prefix>.<stat>"
/// ("core0.virec.rf_hits"); entries with an empty path use the set
/// prefix alone ("dram.reads"). Does not own the sets.
class StatRegistry {
 public:
  struct Entry {
    std::string path;  ///< hierarchy prefix; may be empty
    StatSet* set = nullptr;
  };

  /// Register @p set under @p path (insertion order is dump order).
  void add(std::string path, StatSet& set);

  const std::vector<Entry>& entries() const { return entries_; }

  /// Full name of a stat of @p entry ("<path>.<prefixed name>").
  static std::string full_name(const Entry& entry, const std::string& name);

  /// Every scalar of every set, fully qualified, in registration order.
  std::vector<Stat> all_scalars() const;

  /// Enable / disable detailed collection on every registered set.
  void set_detailed(bool on);

  /// Total number of histograms with at least one sample.
  u64 populated_histograms() const;

 private:
  std::vector<Entry> entries_;
};

/// Geometric mean of a vector of positive values; returns 0 for empty.
double geomean(const std::vector<double>& values);

/// Arithmetic mean; returns 0 for empty.
double mean(const std::vector<double>& values);

}  // namespace virec
