// Named statistics registry. Each simulated component owns a StatSet;
// counters are cheap (plain u64 increments) and the registry can render
// itself for reports or be queried programmatically by the harnesses.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace virec {

/// A single scalar statistic.
struct Stat {
  std::string name;
  double value = 0.0;
};

/// A flat, ordered collection of named counters.
///
/// Counters are created on first use and retain insertion order so
/// reports are stable. Lookup is by exact name.
class StatSet {
 public:
  explicit StatSet(std::string prefix = "");

  /// Add @p delta (default 1) to counter @p name.
  void inc(const std::string& name, double delta = 1.0);

  /// Overwrite counter @p name.
  void set(const std::string& name, double value);

  /// Current value of @p name (0 if never touched).
  double get(const std::string& name) const;

  /// True if the counter exists.
  bool has(const std::string& name) const;

  /// All counters in insertion order, names prefixed with the set prefix.
  std::vector<Stat> all() const;

  /// Reset every counter to zero (entries are kept).
  void clear();

  /// Merge: add every counter of @p other into this set.
  void merge(const StatSet& other);

  const std::string& prefix() const { return prefix_; }

 private:
  std::size_t index_of(const std::string& name);

  std::string prefix_;
  std::vector<Stat> stats_;
  std::map<std::string, std::size_t> index_;
};

/// Geometric mean of a vector of positive values; returns 0 for empty.
double geomean(const std::vector<double>& values);

/// Arithmetic mean; returns 0 for empty.
double mean(const std::vector<double>& values);

}  // namespace virec
