// Conservative parallel-discrete-event synchronization for partitioned
// core stepping (docs/performance.md, "Parallel simulation").
//
// The timing hierarchy resolves everything at access time: shared
// components (crossbar, DRAM, the optional L2) never act on their own,
// so the only cross-partition ordering that matters is the order in
// which partitions issue line accesses at the shared boundary. The
// lockstep reference loop issues them in ascending (cycle, core-index)
// order; PdesGate reproduces exactly that order across free-running
// worker threads.
//
// Protocol: every partition owns one monotonically increasing bound,
// the packed key (cycle << kRankBits) | core_rank of its *next possible*
// shared access. A worker publishes key(T, c) immediately before
// stepping core c at cycle T (and key(target, 0) before skipping to
// `target`, since skipped cycles are provably quiet and touch nothing
// shared). A shared access at key k then waits until every other
// partition's bound exceeds k:
//
//  * ordering — accesses happen in global key order, matching lockstep;
//  * mutual exclusion — keys are unique (a core lives in exactly one
//    partition), and an access at k1 < k2 holds its bound at k1, so the
//    k2 access cannot start until the k1 access finished and its
//    partition published a higher bound;
//  * happens-before — bounds are published with release stores and
//    waited on with acquire loads, so everything a partition did before
//    raising its bound is visible to the partition it unblocks;
//  * progress — the partition holding the globally minimal pending key
//    never waits, and every other worker keeps raising its bound as it
//    steps quiet cores, so the minimum advances and nobody deadlocks.
//
// Relaxed mode trades this determinism for speed: an access may proceed
// once every other bound is within `window` cycles (the crossbar round
// trip), and a mutex supplies the mutual exclusion that key ordering no
// longer guarantees. Timing results then depend on thread scheduling.
#pragma once

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "common/types.hpp"

namespace virec {

/// Thrown out of a blocked shared access when another worker aborted
/// the parallel run (its partition hit an error); unwinds the worker
/// so the coordinator can rethrow the original failure.
class PdesAborted : public std::runtime_error {
 public:
  PdesAborted() : std::runtime_error("pdes: aborted by another worker") {}
};

class PdesGate {
 public:
  /// Bits reserved for the core rank inside a packed key; bounds the
  /// simulated system at 1024 cores and the clock at 2^54 cycles.
  static constexpr u32 kRankBits = 10;
  /// Published by a partition whose cores are all done (or whose worker
  /// is unwinding): it will never issue another shared access.
  static constexpr u64 kDoneBound = ~u64{0};

  /// @p num_partitions workers; @p relaxed_window > 0 enables relaxed
  /// mode with that slack (in cycles).
  PdesGate(u32 num_partitions, Cycle relaxed_window);

  PdesGate(const PdesGate&) = delete;
  PdesGate& operator=(const PdesGate&) = delete;

  /// Packed global ordering key of a shared access issued by core rank
  /// @p rank while stepping cycle @p cycle (saturates to kDoneBound).
  static u64 key_of(Cycle cycle, u32 rank) {
    if (cycle >= (kDoneBound >> kRankBits)) return kDoneBound;
    return (static_cast<u64>(cycle) << kRankBits) | rank;
  }

  /// Raise partition @p p's bound to @p key (release). Keys must be
  /// published in non-decreasing order. Wakes any worker parked on this
  /// bound in wait_turn (the notify is syscall-free when nobody waits).
  void publish(u32 p, u64 key) {
    bounds_[p].v.store(key, std::memory_order_release);
    bounds_[p].v.notify_all();
  }

  /// Block until every other partition's bound exceeds partition
  /// @p p's own current bound (minus the relaxed window, if any).
  /// Throws PdesAborted if abort() is called while waiting.
  void wait_turn(u32 p);

  bool relaxed() const { return window_keys_ != 0; }
  /// Mutual exclusion for shared accesses in relaxed mode (key ordering
  /// no longer provides it there).
  std::mutex& access_mutex() { return access_mu_; }

  /// Release every waiting worker with PdesAborted (spinning or parked:
  /// every bound is clobbered to kDoneBound and notified, so parked
  /// waiters wake immediately; the gate is dead afterwards).
  void abort();
  bool aborted() const { return abort_.load(std::memory_order_relaxed); }

  u32 num_partitions() const { return static_cast<u32>(bounds_.size()); }

 private:
  // One cache line per bound so workers spinning on each other's
  // progress do not false-share.
  struct alignas(64) Bound {
    std::atomic<u64> v{0};
  };

  std::vector<Bound> bounds_;
  u64 window_keys_;  // relaxed slack in key units (0 = exact mode)
  std::atomic<bool> abort_{false};
  std::mutex access_mu_;
};

}  // namespace virec
