#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace virec {

void Histogram::record_always(double value) {
  if (value < 0.0) value = 0.0;
  const u32 bucket = bucket_of(value);
  if (buckets_.size() <= bucket) buckets_.resize(bucket + 1, 0);
  ++buckets_[bucket];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::clear() {
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  buckets_.clear();
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (buckets_.size() < other.buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

void Distribution::record_always(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  sum_sq_ += value * value;
}

double Distribution::stddev() const {
  if (count_ == 0) return 0.0;
  const double n = static_cast<double>(count_);
  const double m = sum_ / n;
  const double var = std::max(0.0, sum_sq_ / n - m * m);
  return std::sqrt(var);
}

void Distribution::clear() {
  count_ = 0;
  sum_ = sum_sq_ = min_ = max_ = 0.0;
}

void Distribution::merge(const Distribution& other) {
  if (other.count_ == 0) return;
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

void Histogram::save_state(ckpt::Encoder& enc) const {
  enc.put_u64(count_);
  enc.put_f64(sum_);
  enc.put_f64(min_);
  enc.put_f64(max_);
  enc.put_u64_vec(buckets_);
}

void Histogram::restore_state(ckpt::Decoder& dec) {
  count_ = dec.get_u64();
  sum_ = dec.get_f64();
  min_ = dec.get_f64();
  max_ = dec.get_f64();
  buckets_ = dec.get_u64_vec();
}

void Distribution::save_state(ckpt::Encoder& enc) const {
  enc.put_u64(count_);
  enc.put_f64(sum_);
  enc.put_f64(sum_sq_);
  enc.put_f64(min_);
  enc.put_f64(max_);
}

void Distribution::restore_state(ckpt::Decoder& dec) {
  count_ = dec.get_u64();
  sum_ = dec.get_f64();
  sum_sq_ = dec.get_f64();
  min_ = dec.get_f64();
  max_ = dec.get_f64();
}

StatSet::StatSet(std::string prefix) : prefix_(std::move(prefix)) {}

std::size_t StatSet::index_of(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const std::size_t idx = stats_.size();
  stats_.push_back(Stat{name, 0.0, ""});
  index_.emplace(name, idx);
  return idx;
}

void StatSet::inc(const std::string& name, double delta) {
  stats_[index_of(name)].value += delta;
}

double* StatSet::counter(const std::string& name, const std::string& desc) {
  Stat& stat = stats_[index_of(name)];
  if (!desc.empty()) stat.desc = desc;
  return &stat.value;
}

void StatSet::set(const std::string& name, double value) {
  stats_[index_of(name)].value = value;
}

double StatSet::get(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? 0.0 : stats_[it->second].value;
}

bool StatSet::has(const std::string& name) const {
  return index_.count(name) != 0;
}

void StatSet::describe(const std::string& name, const std::string& desc) {
  stats_[index_of(name)].desc = desc;
}

std::vector<Stat> StatSet::all() const {
  std::vector<Stat> out;
  out.reserve(stats_.size());
  for (const Stat& s : stats_) {
    out.push_back(Stat{prefix_.empty() ? s.name : prefix_ + "." + s.name,
                       s.value, s.desc});
  }
  return out;
}

Histogram* StatSet::histogram(const std::string& name,
                              const std::string& desc) {
  for (auto& h : histograms_) {
    if (h->name() == name) return h.get();
  }
  histograms_.push_back(std::make_unique<Histogram>(name, desc));
  histograms_.back()->set_enabled(detailed_);
  return histograms_.back().get();
}

Distribution* StatSet::distribution(const std::string& name,
                                    const std::string& desc) {
  for (auto& d : distributions_) {
    if (d->name() == name) return d.get();
  }
  distributions_.push_back(std::make_unique<Distribution>(name, desc));
  distributions_.back()->set_enabled(detailed_);
  return distributions_.back().get();
}

void StatSet::set_detailed(bool on) {
  detailed_ = on;
  for (auto& h : histograms_) h->set_enabled(on);
  for (auto& d : distributions_) d->set_enabled(on);
}

void StatSet::clear() {
  for (Stat& s : stats_) s.value = 0.0;
  for (auto& h : histograms_) h->clear();
  for (auto& d : distributions_) d->clear();
}

void StatSet::merge(const StatSet& other) {
  for (const Stat& s : other.stats_) inc(s.name, s.value);
  for (const auto& h : other.histograms_) {
    histogram(h->name(), h->desc())->merge(*h);
  }
  for (const auto& d : other.distributions_) {
    distribution(d->name(), d->desc())->merge(*d);
  }
}

void StatSet::save_state(ckpt::Encoder& enc) const {
  enc.put_u32(static_cast<u32>(stats_.size()));
  for (const Stat& s : stats_) {
    enc.put_str(s.name);
    enc.put_f64(s.value);
  }
  enc.put_u32(static_cast<u32>(histograms_.size()));
  for (const auto& h : histograms_) {
    enc.put_str(h->name());
    h->save_state(enc);
  }
  enc.put_u32(static_cast<u32>(distributions_.size()));
  for (const auto& d : distributions_) {
    enc.put_str(d->name());
    d->save_state(enc);
  }
}

void StatSet::restore_state(ckpt::Decoder& dec) {
  const u32 n_counters = dec.get_u32();
  for (u32 i = 0; i < n_counters; ++i) {
    const std::string name = dec.get_str();
    // counter() creates absent entries in saved order, so lazily
    // created counters land at the same position as in the run that
    // produced the snapshot.
    *counter(name) = dec.get_f64();
  }
  const u32 n_hist = dec.get_u32();
  for (u32 i = 0; i < n_hist; ++i) {
    const std::string name = dec.get_str();
    histogram(name)->restore_state(dec);
  }
  const u32 n_dist = dec.get_u32();
  for (u32 i = 0; i < n_dist; ++i) {
    const std::string name = dec.get_str();
    distribution(name)->restore_state(dec);
  }
}

void StatRegistry::add(std::string path, StatSet& set) {
  entries_.push_back(Entry{std::move(path), &set});
}

std::string StatRegistry::full_name(const Entry& entry,
                                    const std::string& name) {
  return entry.path.empty() ? name : entry.path + "." + name;
}

std::vector<Stat> StatRegistry::all_scalars() const {
  std::vector<Stat> out;
  for (const Entry& entry : entries_) {
    for (const Stat& s : entry.set->all()) {
      out.push_back(Stat{full_name(entry, s.name), s.value, s.desc});
    }
  }
  return out;
}

void StatRegistry::set_detailed(bool on) {
  for (Entry& entry : entries_) entry.set->set_detailed(on);
}

u64 StatRegistry::populated_histograms() const {
  u64 n = 0;
  for (const Entry& entry : entries_) {
    for (const auto& h : entry.set->histograms()) {
      if (h->count() > 0) ++n;
    }
  }
  return n;
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += std::log(v);
  return std::exp(acc / static_cast<double>(values.size()));
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

}  // namespace virec
