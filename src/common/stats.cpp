#include "common/stats.hpp"

#include <cmath>

namespace virec {

StatSet::StatSet(std::string prefix) : prefix_(std::move(prefix)) {}

std::size_t StatSet::index_of(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const std::size_t idx = stats_.size();
  stats_.push_back(Stat{name, 0.0});
  index_.emplace(name, idx);
  return idx;
}

void StatSet::inc(const std::string& name, double delta) {
  stats_[index_of(name)].value += delta;
}

void StatSet::set(const std::string& name, double value) {
  stats_[index_of(name)].value = value;
}

double StatSet::get(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? 0.0 : stats_[it->second].value;
}

bool StatSet::has(const std::string& name) const {
  return index_.count(name) != 0;
}

std::vector<Stat> StatSet::all() const {
  std::vector<Stat> out;
  out.reserve(stats_.size());
  for (const Stat& s : stats_) {
    out.push_back(Stat{prefix_.empty() ? s.name : prefix_ + "." + s.name,
                       s.value});
  }
  return out;
}

void StatSet::clear() {
  for (Stat& s : stats_) s.value = 0.0;
}

void StatSet::merge(const StatSet& other) {
  for (const Stat& s : other.stats_) inc(s.name, s.value);
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += std::log(v);
  return std::exp(acc / static_cast<double>(values.size()));
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

}  // namespace virec
