#include "common/pdes.hpp"

namespace virec {

namespace {

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

}  // namespace

PdesGate::PdesGate(u32 num_partitions, Cycle relaxed_window)
    : bounds_(num_partitions),
      window_keys_(static_cast<u64>(relaxed_window) << kRankBits) {}

void PdesGate::wait_turn(u32 p) {
  if (abort_.load(std::memory_order_relaxed)) throw PdesAborted();
  const u64 k = bounds_[p].v.load(std::memory_order_relaxed);
  // Relaxed mode: tolerate other partitions lagging up to the window.
  const u64 wait_below = window_keys_ < k ? k - window_keys_ : 0;
  for (u32 q = 0; q < bounds_.size(); ++q) {
    if (q == p) continue;
    u64 b = bounds_[q].v.load(std::memory_order_acquire);
    u32 spins = 0;
    while (b <= wait_below) {
      if (abort_.load(std::memory_order_relaxed)) throw PdesAborted();
      // Brief busy wait for the common quick handoff, then park on q's
      // bound: publish() and abort() notify it, so with more workers
      // than hardware threads (CI containers, oversubscribed sweeps)
      // waiters sleep in the kernel instead of burning a core. wait()
      // may also return spuriously, so the bound is always re-checked.
      if (++spins < 64) {
        cpu_pause();
      } else {
        bounds_[q].v.wait(b, std::memory_order_acquire);
      }
      b = bounds_[q].v.load(std::memory_order_acquire);
    }
  }
  if (abort_.load(std::memory_order_relaxed)) throw PdesAborted();
}

void PdesGate::abort() {
  abort_.store(true, std::memory_order_relaxed);
  // Clobber every bound so parked waiters observe a value change and
  // wake (a bare flag + notify could race with a waiter that checked
  // the flag just before parking). kDoneBound is the order maximum, so
  // the non-decreasing publish invariant holds; nobody trusts bounds
  // after an abort — wait_turn rechecks the flag on wake and on entry.
  for (Bound& b : bounds_) {
    b.v.store(kDoneBound, std::memory_order_release);
    b.v.notify_all();
  }
}

}  // namespace virec
