#include "common/pdes.hpp"

#include <thread>

namespace virec {

namespace {

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

}  // namespace

PdesGate::PdesGate(u32 num_partitions, Cycle relaxed_window)
    : bounds_(num_partitions),
      window_keys_(static_cast<u64>(relaxed_window) << kRankBits) {}

void PdesGate::wait_turn(u32 p) {
  const u64 k = bounds_[p].v.load(std::memory_order_relaxed);
  // Relaxed mode: tolerate other partitions lagging up to the window.
  const u64 wait_below = window_keys_ < k ? k - window_keys_ : 0;
  for (u32 q = 0; q < bounds_.size(); ++q) {
    if (q == p) continue;
    u32 spins = 0;
    while (bounds_[q].v.load(std::memory_order_acquire) <= wait_below) {
      if (abort_.load(std::memory_order_relaxed)) throw PdesAborted();
      // Brief busy wait, then yield: with fewer hardware threads than
      // workers (CI containers) a pure spin would starve the partition
      // we are waiting on.
      if (++spins < 64) {
        cpu_pause();
      } else {
        spins = 0;
        std::this_thread::yield();
      }
    }
  }
}

}  // namespace virec
