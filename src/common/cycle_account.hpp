// Closed cycle accounting (CPI stacks): attribute every simulated
// cycle of every hardware thread to exactly one leaf cause.
//
// A CycleAccount lives inside a core's StatSet, so the buckets ride
// every existing surface for free — --stats dumps, --json reports,
// checkpoint save/restore, and the skip-vs-stepped bit-equality sweep
// in test_skip (which compares every registry scalar).
//
// The contract is *closure*: the sum of all buckets equals the core's
// elapsed cycle count exactly, in both the cycle-stepped loop and the
// event-driven skip path. CgmtCore enforces this under VIREC_CHECK
// after every charge; docs/observability.md defines each bucket.
#pragma once

#include <array>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace virec {

/// Leaf causes a cycle can be charged to. Exactly one per cycle per
/// core; see docs/observability.md for the precise semantics of each.
enum class CycleBucket : u8 {
  kCommit = 0,          ///< an instruction left the pipeline this cycle
  kPipeline,            ///< working: latch in flight, no stall condition
  kDecodeFill,          ///< decode waiting on register fill/spill traffic
  kFrontendWait,        ///< fetch/icache wait with work pending
  kMispredictRedirect,  ///< refilling after a branch mispredict flush
  kSwitchOverhead,      ///< context-switch drain + incoming-thread fill
  kSwitchNoTarget,      ///< wanted to switch but no ready thread existed
  kSwitchMasked,        ///< switch desired but masked (policy/eligibility)
  kMemData,             ///< blocked on a demand dcache data miss
  kMemReg,              ///< blocked on a register-region (fill) miss
  kMemMshr,             ///< blocked because the MSHR file was full
  kSqFull,              ///< store stalled on a full store queue
  kIdle,                ///< no runnable thread on the core
  kFastForward,         ///< bulk span covered by the functional tier
  kCount
};

inline constexpr std::size_t kNumCycleBuckets =
    static_cast<std::size_t>(CycleBucket::kCount);

/// Short stable name of a bucket ("commit", "mem_data", ...). Used for
/// stat names (cpi_<name>), JSON keys, CSV columns and table rows.
const char* cycle_bucket_name(CycleBucket b);

/// One-line human description of a bucket (stat descriptions, docs).
const char* cycle_bucket_desc(CycleBucket b);

/// Per-core (and per-thread) cycle attribution. Registers one counter
/// per bucket — "cpi_<name>" for the core roll-up and
/// "cpi_t<tid>_<name>" per hardware thread — in the owning StatSet and
/// bumps them through stable pointers, so charging costs two double
/// adds on the hot path and the values are checkpointed / reported by
/// the machinery that already handles every other counter.
class CycleAccount {
 public:
  CycleAccount(StatSet& stats, u32 num_threads);

  /// Charge @p span cycles to @p bucket, attributed to hardware thread
  /// @p tid (tid < 0: core-level only, e.g. idle with no thread).
  void charge(CycleBucket bucket, int tid, double span = 1.0) {
    *core_[static_cast<std::size_t>(bucket)] += span;
    if (tid >= 0) {
      *thread_[static_cast<std::size_t>(tid) * kNumCycleBuckets +
               static_cast<std::size_t>(bucket)] += span;
    }
  }

  /// Core-level cycles charged to @p bucket.
  double bucket(CycleBucket b) const {
    return *core_[static_cast<std::size_t>(b)];
  }

  /// Cycles charged to @p bucket on behalf of thread @p tid.
  double thread_bucket(u32 tid, CycleBucket b) const {
    return *thread_[static_cast<std::size_t>(tid) * kNumCycleBuckets +
                    static_cast<std::size_t>(b)];
  }

  /// Sum of every core-level bucket — the closure invariant compares
  /// this against the core's elapsed cycles.
  double total() const;

  /// Sum of every bucket of thread @p tid.
  double thread_total(u32 tid) const;

  u32 num_threads() const { return num_threads_; }

 private:
  u32 num_threads_;
  std::array<double*, kNumCycleBuckets> core_;
  std::vector<double*> thread_;  // tid-major, kNumCycleBuckets per tid
};

}  // namespace virec
