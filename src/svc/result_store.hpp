// Layer 1 of the simulation service (docs/service.md): a persistent,
// content-addressed cache of completed experiment points. One file per
// point under the store directory, named by the point's canonical
// identity hash (ckpt::spec_hash), in a versioned, CRC-checked binary
// format built on ckpt::Encoder/Decoder.
//
// Safety properties (enforced by tests/test_svc.cpp):
//   * writes are atomic (unique temp file + rename), so a killed
//     writer never leaves a half-written entry under a live name and
//     concurrent writers of the same point converge on one valid file;
//   * lookups verify a whole-entry CRC, the magic, format version,
//     the stored identity bytes (guarding against hash collisions and
//     codec drift) and the payload CRC — a flip of any byte in the
//     file reads as a miss, so corruption causes a clean re-run, never
//     a wrong or crashed result;
//   * entries embed the producing build's provenance string, so every
//     cached result is attributable to the binary that computed it.
//
// Maintenance: verify() scans every entry (optionally deleting bad
// ones); gc() bounds the store to the newest N entries by mtime.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ckpt/spec_codec.hpp"

namespace virec::svc {

/// Bumped whenever the entry layout changes incompatibly; old entries
/// then read as misses (and verify() reports them as foreign).
inline constexpr u32 kStoreFormatVersion = 1;
inline constexpr u32 kStoreMagic = 0x53455256u;  // "VRES"

/// A stored point plus its metadata.
struct StoreEntry {
  sim::RunResult result;
  double wall_secs = 0.0;   ///< producer's execution wall time
  std::string provenance;   ///< build that produced it
};

class ResultStore {
 public:
  /// Opens (creating if needed) the store directory. Throws
  /// std::runtime_error if the directory cannot be created.
  explicit ResultStore(std::string dir);

  /// Result for @p spec, verified against its identity bytes; false on
  /// miss, version mismatch or any corruption (all equivalent to "not
  /// cached"). @p hash must be ckpt::spec_hash(spec) (passed in so
  /// callers hashing once can reuse it).
  bool lookup(u64 hash, const sim::RunSpec& spec,
              sim::RunResult* out) const;

  /// Full entry including metadata; same miss semantics as lookup().
  bool lookup_entry(u64 hash, const sim::RunSpec& spec,
                    StoreEntry* out) const;

  /// Persist a completed point (atomic temp + rename; last writer
  /// wins, which is safe because identical specs produce identical
  /// results). Throws std::runtime_error on I/O failure.
  void put(u64 hash, const sim::RunSpec& spec,
           const sim::RunResult& result, double wall_secs = 0.0);

  /// Number of entry files currently on disk (directory scan).
  std::size_t size() const;

  struct VerifyReport {
    std::size_t total = 0;     ///< entry files scanned
    std::size_t ok = 0;        ///< well-formed, current-version entries
    std::size_t corrupt = 0;   ///< CRC/bounds/magic failures
    std::size_t foreign = 0;   ///< other format versions (not errors)
    std::vector<std::string> removed;  ///< files deleted (repair mode)
  };

  /// Scan every entry; with @p repair, delete corrupt ones (foreign
  /// versions are kept: an older/newer build may still want them).
  VerifyReport verify(bool repair);

  /// Keep only the newest @p keep entries (by file mtime); returns the
  /// number removed.
  std::size_t gc(std::size_t keep);

  const std::string& dir() const { return dir_; }

  /// Path of the entry file for @p hash (exposed for tests and the CI
  /// corruption smoke).
  std::string entry_path(u64 hash) const;

 private:
  std::string dir_;
};

}  // namespace virec::svc
