#include "svc/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace virec::svc {

namespace {

/// Fill a sockaddr_un for @p path; throws if the path does not fit the
/// fixed-size sun_path field (a bind/connect would silently truncate).
sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

UnixConn::UnixConn(UnixConn&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buf_(std::move(other.buf_)) {}

UnixConn& UnixConn::operator=(UnixConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buf_ = std::move(other.buf_);
  }
  return *this;
}

void UnixConn::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

bool UnixConn::peer_closed() const {
  if (fd_ < 0) return true;
  char probe;
  for (;;) {
    const ssize_t n =
        ::recv(fd_, &probe, sizeof probe, MSG_PEEK | MSG_DONTWAIT);
    if (n > 0) return false;   // pipelined bytes waiting: peer is alive
    if (n == 0) return true;   // orderly EOF
    if (errno == EINTR) continue;
    // No data to peek is the live-and-idle case; anything else means
    // the socket is dead.
    return errno != EAGAIN && errno != EWOULDBLOCK;
  }
}

void UnixConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

bool UnixConn::write_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::size_t off = 0;
  while (off < line.size()) {
    // MSG_NOSIGNAL: a vanished peer must yield false, not SIGPIPE.
    const ssize_t n = ::send(fd_, line.data() + off, line.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool UnixConn::read_line(std::string* line) {
  if (fd_ < 0) return false;
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF; a partial buffered line is torn
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

UnixListener::UnixListener(std::string path) : path_(std::move(path)) {
  const sockaddr_un addr = make_addr(path_);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw std::runtime_error("socket(AF_UNIX): " +
                             std::string(std::strerror(errno)));
  }
  // A stale socket file from a killed daemon would make bind fail;
  // remove it. A *live* daemon still holding the path loses the path
  // but keeps serving existing connections — callers that care use a
  // fresh path per instance (the CLI defaults to a pid-free fixed path
  // and documents one-daemon-per-path).
  ::unlink(path_.c_str());
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("bind(" + path_ + "): " + why);
  }
  if (::listen(fd_, 64) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    ::unlink(path_.c_str());
    throw std::runtime_error("listen(" + path_ + "): " + why);
  }
}

UnixListener::~UnixListener() {
  shutdown();
  ::unlink(path_.c_str());
}

UnixConn UnixListener::accept() {
  for (;;) {
    const int fd = fd_;
    if (fd < 0) return UnixConn();
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0) return UnixConn(conn);
    if (errno == EINTR) continue;
    return UnixConn();  // includes EBADF/EINVAL after shutdown()
  }
}

void UnixListener::shutdown() {
  if (fd_ >= 0) {
    // shutdown() wakes a blocked accept() with an error; the close
    // then releases the descriptor.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

UnixConn unix_connect(const std::string& path) {
  sockaddr_un addr{};
  try {
    addr = make_addr(path);
  } catch (const std::runtime_error&) {
    return UnixConn();
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return UnixConn();
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    return UnixConn();
  }
  return UnixConn(fd);
}

}  // namespace virec::svc
