#include "svc/result_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "common/version.hpp"

namespace fs = std::filesystem;

namespace virec::svc {

namespace {

// Entry layout (via ckpt::Encoder, little-endian):
//   u32 magic, u32 format_version, u64 spec_hash,
//   str provenance, f64 wall_secs,
//   u32 identity_len + identity bytes (canonical spec encoding),
//   u32 payload_crc, u32 payload_len + payload (encoded RunResult),
//   u32 entry_crc (crc32 of every preceding byte).
// The trailing entry_crc covers the whole file, so a flip anywhere —
// header, provenance, identity, payload — reads as corruption; the
// payload_crc additionally survives future envelope-layout changes.
constexpr const char* kEntrySuffix = ".vres";

/// Whole-file integrity: true iff @p bytes ends in a valid entry_crc.
/// On success *body_size excludes the trailing CRC word.
bool check_entry_crc(const std::vector<u8>& bytes, std::size_t* body_size) {
  if (bytes.size() < sizeof(u32)) return false;
  const std::size_t body = bytes.size() - sizeof(u32);
  u32 stored = 0;
  for (int i = 3; i >= 0; --i) {
    stored = (stored << 8) | bytes[body + static_cast<std::size_t>(i)];
  }
  if (ckpt::crc32(bytes.data(), body) != stored) return false;
  *body_size = body;
  return true;
}

std::vector<u8> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::vector<u8>(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
}

bool is_entry_file(const fs::directory_entry& e) {
  return e.is_regular_file() && e.path().extension() == kEntrySuffix;
}

}  // namespace

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw std::runtime_error("result store: cannot create directory " + dir_ +
                             (ec ? ": " + ec.message() : ""));
  }
}

std::string ResultStore::entry_path(u64 hash) const {
  char name[32];
  std::snprintf(name, sizeof name, "%016llx",
                static_cast<unsigned long long>(hash));
  return dir_ + "/" + name + kEntrySuffix;
}

bool ResultStore::lookup_entry(u64 hash, const sim::RunSpec& spec,
                               StoreEntry* out) const {
  const std::vector<u8> bytes = read_file(entry_path(hash));
  if (bytes.empty()) return false;
  std::size_t body_size = 0;
  if (!check_entry_crc(bytes, &body_size)) return false;
  try {
    ckpt::Decoder dec(bytes.data(), body_size, "store entry");
    if (dec.get_u32() != kStoreMagic) return false;
    if (dec.get_u32() != kStoreFormatVersion) return false;
    if (dec.get_u64() != hash) return false;
    StoreEntry entry;
    entry.provenance = dec.get_str();
    entry.wall_secs = dec.get_f64();
    // Identity verification: the stored canonical spec bytes must match
    // the requested spec exactly — a hash collision or codec drift is a
    // miss, never a wrong result.
    ckpt::Encoder want;
    ckpt::encode_spec_identity(want, spec);
    const u32 identity_len = dec.get_u32();
    if (identity_len != want.size()) return false;
    std::vector<u8> identity(identity_len);
    dec.raw(identity.data(), identity_len);
    if (identity != want.bytes()) return false;
    const u32 payload_crc = dec.get_u32();
    const u32 payload_len = dec.get_u32();
    std::vector<u8> payload(payload_len);
    dec.raw(payload.data(), payload_len);
    dec.finish();
    if (ckpt::crc32(payload.data(), payload.size()) != payload_crc) {
      return false;
    }
    ckpt::Decoder pdec(payload.data(), payload.size(), "store payload");
    entry.result = ckpt::decode_result(pdec);
    pdec.finish();
    if (out != nullptr) *out = std::move(entry);
    return true;
  } catch (const ckpt::CkptError&) {
    return false;  // truncated/corrupt entry: a miss, the point re-runs
  }
}

bool ResultStore::lookup(u64 hash, const sim::RunSpec& spec,
                         sim::RunResult* out) const {
  StoreEntry entry;
  if (!lookup_entry(hash, spec, &entry)) return false;
  if (out != nullptr) *out = std::move(entry.result);
  return true;
}

void ResultStore::put(u64 hash, const sim::RunSpec& spec,
                      const sim::RunResult& result, double wall_secs) {
  ckpt::Encoder payload;
  ckpt::encode_result(payload, result);

  ckpt::Encoder enc;
  enc.put_u32(kStoreMagic);
  enc.put_u32(kStoreFormatVersion);
  enc.put_u64(hash);
  enc.put_str(build::provenance());
  enc.put_f64(wall_secs);
  ckpt::Encoder identity;
  ckpt::encode_spec_identity(identity, spec);
  enc.put_u32(static_cast<u32>(identity.size()));
  enc.raw(identity.bytes().data(), identity.size());
  enc.put_u32(ckpt::crc32(payload.bytes().data(), payload.size()));
  enc.put_u32(static_cast<u32>(payload.size()));
  enc.raw(payload.bytes().data(), payload.size());
  const u32 entry_crc = ckpt::crc32(enc.bytes().data(), enc.size());
  enc.put_u32(entry_crc);

  // Unique temp name (pid + address of this call's encoder) so
  // concurrent writers — including separate daemon processes sharing
  // one store — never scribble on each other's partial file; rename is
  // atomic and last-writer-wins on identical content.
  const std::string path = entry_path(hash);
  char tmp_tag[64];
  std::snprintf(tmp_tag, sizeof tmp_tag, ".tmp.%ld.%p",
                static_cast<long>(::getpid()),
                static_cast<const void*>(&enc));
  const std::string tmp = path + tmp_tag;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("result store: cannot write " + tmp);
    }
    out.write(reinterpret_cast<const char*>(enc.bytes().data()),
              static_cast<std::streamsize>(enc.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error("result store: short write to " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw std::runtime_error("result store: rename " + tmp + " -> " + path +
                             " failed: " + ec.message());
  }
}

std::size_t ResultStore::size() const {
  std::size_t n = 0;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir_, ec)) {
    if (is_entry_file(e)) ++n;
  }
  return n;
}

ResultStore::VerifyReport ResultStore::verify(bool repair) {
  VerifyReport report;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir_, ec)) {
    if (!is_entry_file(e)) continue;
    ++report.total;
    const std::vector<u8> bytes = read_file(e.path().string());
    bool ok = false;
    bool foreign = false;
    std::size_t body_size = 0;
    try {
      if (!check_entry_crc(bytes, &body_size)) {
        throw ckpt::CkptError("store entry: bad entry crc");
      }
      ckpt::Decoder dec(bytes.data(), body_size, "store entry");
      if (dec.get_u32() == kStoreMagic) {
        if (dec.get_u32() != kStoreFormatVersion) {
          foreign = true;
        } else {
          dec.get_u64();   // hash (name may have been tampered; payload
                           // integrity is what verify guards)
          dec.get_str();   // provenance
          dec.get_f64();   // wall_secs
          const u32 identity_len = dec.get_u32();
          dec.skip(identity_len);
          const u32 payload_crc = dec.get_u32();
          const u32 payload_len = dec.get_u32();
          std::vector<u8> payload(payload_len);
          dec.raw(payload.data(), payload_len);
          dec.finish();
          ok = ckpt::crc32(payload.data(), payload.size()) == payload_crc;
        }
      }
    } catch (const ckpt::CkptError&) {
      ok = false;
    }
    if (foreign) {
      ++report.foreign;
    } else if (ok) {
      ++report.ok;
    } else {
      ++report.corrupt;
      if (repair) {
        std::error_code rm;
        fs::remove(e.path(), rm);
        if (!rm) report.removed.push_back(e.path().string());
      }
    }
  }
  return report;
}

std::size_t ResultStore::gc(std::size_t keep) {
  struct File {
    fs::path path;
    fs::file_time_type mtime;
  };
  std::vector<File> files;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir_, ec)) {
    if (!is_entry_file(e)) continue;
    std::error_code mec;
    files.push_back({e.path(), fs::last_write_time(e.path(), mec)});
  }
  if (files.size() <= keep) return 0;
  // Newest first; equal mtimes (common on coarse-granularity
  // filesystems, where a whole burst of writes lands on one timestamp)
  // tie-break on the filename — the spec hash — so which entries
  // survive is deterministic rather than directory-iteration order.
  std::sort(files.begin(), files.end(), [](const File& a, const File& b) {
    if (a.mtime != b.mtime) return a.mtime > b.mtime;
    return a.path.filename() < b.path.filename();
  });
  std::size_t removed = 0;
  for (std::size_t i = keep; i < files.size(); ++i) {
    std::error_code rm;
    fs::remove(files[i].path, rm);
    if (!rm) ++removed;
  }
  return removed;
}

}  // namespace virec::svc
