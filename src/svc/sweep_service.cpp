#include "svc/sweep_service.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace virec::svc {

const char* point_source_name(PointSource source) {
  switch (source) {
    case PointSource::kExecuted: return "executed";
    case PointSource::kStoreHit: return "store_hit";
    case PointSource::kDedup: return "dedup";
  }
  return "?";
}

struct SweepTicket::Impl {
  std::mutex mu;
  std::condition_variable cv;
  PointFn on_point;
  std::size_t remaining = 0;
  Counts counts;

  void deliver(std::size_t index, const sim::RunResult* result,
               PointSource source, const std::string& error) {
    std::lock_guard<std::mutex> lk(mu);
    if (result == nullptr) {
      ++counts.failed;
    } else {
      switch (source) {
        case PointSource::kExecuted: ++counts.executed; break;
        case PointSource::kStoreHit: ++counts.store_hits; break;
        case PointSource::kDedup: ++counts.dedup_hits; break;
      }
    }
    // Callback under the ticket mutex: deliveries for one ticket are
    // serialised, so PointFn implementations need no locking of their
    // own (they must not call wait() from inside the callback).
    if (on_point) on_point(index, result, source, error);
    if (--remaining == 0) cv.notify_all();
  }
};

void SweepTicket::wait() {
  std::unique_lock<std::mutex> lk(impl_->mu);
  impl_->cv.wait(lk, [&] { return impl_->remaining == 0; });
}

bool SweepTicket::wait_for(double secs) {
  std::unique_lock<std::mutex> lk(impl_->mu);
  return impl_->cv.wait_for(lk, std::chrono::duration<double>(secs),
                            [&] { return impl_->remaining == 0; });
}

SweepTicket::Counts SweepTicket::counts() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->counts;
}

namespace {

struct Waiter {
  std::shared_ptr<SweepTicket::Impl> ticket;
  std::size_t index = 0;
  PointSource source = PointSource::kExecuted;
  /// Fairness key of the submitting connection, so cancel() can find
  /// this waiter wherever dedup attached it.
  std::string client;
};

struct Execution {
  u64 hash = 0;
  sim::RunSpec spec;
  std::vector<Waiter> waiters;
};

}  // namespace

struct SweepService::State {
  mutable std::mutex mu;
  std::condition_variable work_cv;
  bool stopping = false;

  /// Executions queued or running, by identity hash. An entry is
  /// removed only after its result (or failure) is recorded, so a
  /// concurrent submit always either memo-hits or finds it here —
  /// never both misses and re-executes.
  std::unordered_map<u64, std::shared_ptr<Execution>> inflight;
  /// Results completed in this process. Closes the race between a
  /// store lookup (done outside the lock) and an execution finishing,
  /// and serves repeat points without touching disk.
  std::unordered_map<u64, sim::RunResult> memo;

  /// Per-client FIFO queues drained round-robin (fairness).
  std::unordered_map<std::string, std::deque<std::shared_ptr<Execution>>>
      queues;
  std::vector<std::string> rr_clients;
  std::size_t rr_cursor = 0;
  std::size_t pending = 0;  ///< executions queued, not yet picked up
  std::size_t running = 0;

  Stats lifetime;
  std::vector<std::thread> workers;
};

SweepService::SweepService(ServiceConfig config, ResultStore* store)
    : config_(config), store_(store), state_(std::make_unique<State>()) {
  if (config_.jobs == 0) config_.jobs = 1;
  state_->workers.reserve(config_.jobs);
  for (u32 i = 0; i < config_.jobs; ++i) {
    state_->workers.emplace_back([this] { worker_loop(); });
  }
}

SweepService::~SweepService() {
  {
    std::lock_guard<std::mutex> lk(state_->mu);
    state_->stopping = true;
  }
  state_->work_cv.notify_all();
  for (std::thread& t : state_->workers) t.join();
  // Workers are gone; anything still queued never ran. Fail those
  // waiters so no ticket blocks forever across shutdown.
  for (auto& [client, queue] : state_->queues) {
    for (const std::shared_ptr<Execution>& exec : queue) {
      for (const Waiter& w : exec->waiters) {
        w.ticket->deliver(w.index, nullptr, w.source, "service stopped");
      }
    }
  }
}

SweepTicket SweepService::submit(const std::string& client,
                                 const std::vector<sim::RunSpec>& specs,
                                 PointFn on_point) {
  auto impl = std::make_shared<SweepTicket::Impl>();
  impl->on_point = std::move(on_point);
  impl->remaining = specs.size();
  impl->counts.points = specs.size();
  SweepTicket ticket;
  ticket.impl_ = impl;
  if (specs.empty()) return ticket;

  // Phase 1 — hash every point and probe the persistent store, all
  // outside the service lock (store lookups are disk reads; holding
  // the lock across them would stall workers and other clients).
  std::vector<u64> hashes(specs.size());
  std::unordered_map<u64, std::optional<sim::RunResult>> probed;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    hashes[i] = ckpt::spec_hash(specs[i]);
    auto [it, inserted] = probed.try_emplace(hashes[i]);
    if (inserted && store_ != nullptr) {
      sim::RunResult r;
      if (store_->lookup(hashes[i], specs[i], &r)) it->second = std::move(r);
    }
  }

  // Phase 2 — classify under the lock: admission first (all-or-nothing,
  // so a rejected batch leaves no partial state), then apply.
  struct HitDelivery {
    std::size_t index;
    sim::RunResult result;
  };
  std::vector<HitDelivery> hits;
  bool added_work = false;
  {
    State& st = *state_;
    std::lock_guard<std::mutex> lk(st.mu);
    if (st.stopping) throw std::runtime_error("sweep service is stopping");

    std::unordered_set<u64> new_in_batch;
    std::size_t new_execs = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const u64 h = hashes[i];
      if (st.memo.count(h) != 0 || probed[h].has_value() ||
          st.inflight.count(h) != 0) {
        continue;
      }
      if (new_in_batch.insert(h).second) ++new_execs;
    }
    if (new_execs > 0 && st.pending + new_execs > config_.max_pending) {
      throw ServiceBusy(config_.retry_after_secs);
    }

    for (std::size_t i = 0; i < specs.size(); ++i) {
      const u64 h = hashes[i];
      if (const auto mit = st.memo.find(h); mit != st.memo.end()) {
        hits.push_back({i, mit->second});
        ++st.lifetime.store_hits;
        continue;
      }
      if (std::optional<sim::RunResult>& hit = probed[h]; hit.has_value()) {
        st.memo.emplace(h, *hit);
        hits.push_back({i, *hit});
        ++st.lifetime.store_hits;
        continue;
      }
      if (const auto fit = st.inflight.find(h); fit != st.inflight.end()) {
        fit->second->waiters.push_back({impl, i, PointSource::kDedup, client});
        ++st.lifetime.dedup_hits;
        continue;
      }
      auto exec = std::make_shared<Execution>();
      exec->hash = h;
      exec->spec = specs[i];
      exec->waiters.push_back({impl, i, PointSource::kExecuted, client});
      st.inflight.emplace(h, exec);
      auto [qit, fresh] = st.queues.try_emplace(client);
      if (fresh) st.rr_clients.push_back(client);
      qit->second.push_back(std::move(exec));
      ++st.pending;
      added_work = true;
    }
  }
  if (added_work) state_->work_cv.notify_all();

  // Deliver cache hits outside the service lock (the per-ticket lock
  // still serialises them against streaming worker deliveries).
  for (const HitDelivery& hit : hits) {
    impl->deliver(hit.index, &hit.result, PointSource::kStoreHit, "");
  }
  return ticket;
}

std::size_t SweepService::cancel(const std::string& client) {
  std::vector<Waiter> dropped;
  std::size_t reclaimed = 0;
  {
    State& st = *state_;
    std::lock_guard<std::mutex> lk(st.mu);
    // Strip the client's waiters from every execution, queued or
    // running — dedup may have attached them to another client's run.
    for (auto& [hash, exec] : st.inflight) {
      std::vector<Waiter>& ws = exec->waiters;
      for (auto it = ws.begin(); it != ws.end();) {
        if (it->client == client) {
          dropped.push_back(std::move(*it));
          it = ws.erase(it);
        } else {
          ++it;
        }
      }
    }
    // Reclaim admission slots: a queued execution nobody waits for any
    // more must never start. (An execution dedup kept alive for other
    // clients stays queued; a running one finishes and caches.)
    for (auto& [queue_client, queue] : st.queues) {
      std::deque<std::shared_ptr<Execution>> keep;
      for (std::shared_ptr<Execution>& exec : queue) {
        if (exec->waiters.empty()) {
          st.inflight.erase(exec->hash);
          --st.pending;
          ++reclaimed;
        } else {
          keep.push_back(std::move(exec));
        }
      }
      queue.swap(keep);
    }
  }
  // Fail the collected waiters outside the service lock (same rule as
  // every other delivery path).
  for (const Waiter& w : dropped) {
    w.ticket->deliver(w.index, nullptr, w.source,
                      "cancelled: client disconnected");
  }
  return reclaimed;
}

void SweepService::worker_loop() {
  State& st = *state_;
  for (;;) {
    std::shared_ptr<Execution> exec;
    {
      std::unique_lock<std::mutex> lk(st.mu);
      st.work_cv.wait(lk, [&] { return st.stopping || st.pending > 0; });
      if (st.stopping) return;
      // Round-robin across clients: take one execution from the next
      // client with queued work, then move the cursor on, so large
      // batches interleave with small ones instead of starving them.
      for (std::size_t n = 0; n < st.rr_clients.size() && !exec; ++n) {
        std::deque<std::shared_ptr<Execution>>& q =
            st.queues[st.rr_clients[st.rr_cursor]];
        st.rr_cursor = (st.rr_cursor + 1) % st.rr_clients.size();
        if (!q.empty()) {
          exec = std::move(q.front());
          q.pop_front();
        }
      }
      if (!exec) continue;
      --st.pending;
      ++st.running;
    }

    const auto t0 = std::chrono::steady_clock::now();
    sim::RunResult result;
    std::string error;
    bool ok = true;
    try {
      result = sim::run_spec(exec->spec);
    } catch (const std::exception& e) {
      ok = false;
      error = e.what();
    }
    const double wall_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (ok && store_ != nullptr) {
      try {
        store_->put(exec->hash, exec->spec, result, wall_secs);
      } catch (const std::exception&) {
        // A full or read-only store must not fail the run itself; the
        // point is simply not cached for next time.
      }
    }

    std::vector<Waiter> waiters;
    {
      std::lock_guard<std::mutex> lk(st.mu);
      --st.running;
      if (ok) {
        ++st.lifetime.executed;
        st.memo.emplace(exec->hash, result);
      } else {
        ++st.lifetime.failed;
      }
      // Erase only after the memo insert above: a submit holding the
      // lock next either memo-hits or re-queues a fresh execution (the
      // failure-retry path) — it can never fall between the two.
      st.inflight.erase(exec->hash);
      waiters = std::move(exec->waiters);
    }
    for (const Waiter& w : waiters) {
      w.ticket->deliver(w.index, ok ? &result : nullptr, w.source, error);
    }
  }
}

SweepService::Stats SweepService::stats() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  Stats s = state_->lifetime;
  s.pending = state_->pending;
  s.inflight = state_->running;
  return s;
}

}  // namespace virec::svc
