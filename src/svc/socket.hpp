// Thin RAII wrappers over AF_UNIX stream sockets for the virec-simd
// daemon and its clients. Line-oriented: the protocol layer frames
// messages as single lines (protocol.hpp), so the connection type only
// needs write-a-line / read-a-line with buffering. All errors surface
// as boolean failures (connection closed) rather than exceptions —
// a client vanishing mid-sweep is normal daemon life, not a fault.
#pragma once

#include <string>

namespace virec::svc {

/// One connected stream socket. Move-only; closes on destruction.
class UnixConn {
 public:
  UnixConn() = default;
  explicit UnixConn(int fd) : fd_(fd) {}
  ~UnixConn() { close(); }

  UnixConn(UnixConn&& other) noexcept;
  UnixConn& operator=(UnixConn&& other) noexcept;
  UnixConn(const UnixConn&) = delete;
  UnixConn& operator=(const UnixConn&) = delete;

  bool valid() const { return fd_ >= 0; }

  /// Write the full line (caller includes the trailing newline; the
  /// protocol's frame() already does). False once the peer is gone.
  bool write_line(const std::string& line);

  /// Read up to and including the next newline, returned without it.
  /// False on EOF or error with no complete line buffered.
  bool read_line(std::string* line);

  /// True once the peer has closed its end (EOF pending or the socket
  /// errored). Non-blocking peek, consumes nothing — pipelined request
  /// bytes stay buffered for read_line(). Lets a handler thread detect
  /// a vanished client while a long result stream is still in flight.
  bool peer_closed() const;

  /// Half-close from another thread: wakes a blocked read_line() with
  /// EOF without racing close() against the reader's descriptor use.
  void shutdown();

  void close();

 private:
  int fd_ = -1;
  std::string buf_;  ///< bytes received past the last returned line
};

/// Listening socket bound to a filesystem path. Removes a stale socket
/// file on bind and unlinks its own on destruction.
class UnixListener {
 public:
  /// Throws std::runtime_error if the path cannot be bound.
  explicit UnixListener(std::string path);
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Blocks for the next connection; invalid UnixConn after
  /// shutdown() or on listener failure.
  UnixConn accept();

  /// Unblocks accept() (used by the daemon's signal-driven shutdown);
  /// safe to call from another thread or a signal-notified thread.
  void shutdown();

  const std::string& path() const { return path_; }

  /// Raw listening descriptor, for the daemon's async-signal-safe
  /// ::shutdown() from a signal handler (both shutdown(2) and the
  /// resulting accept() wake-up are signal-safe; the full shutdown()
  /// method is not).
  int native_handle() const { return fd_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// Connect to a daemon's socket; invalid UnixConn if nothing listens
/// there.
UnixConn unix_connect(const std::string& path);

}  // namespace virec::svc
