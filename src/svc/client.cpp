#include "svc/client.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/json.hpp"
#include "common/json_parse.hpp"

namespace virec::svc {

namespace {

std::string compact_begin(const char* type) {
  return std::string("{\"type\":") + JsonWriter::quote(type);
}

}  // namespace

ServiceClient::ServiceClient(std::string socket_path, std::string client_name)
    : path_(std::move(socket_path)), client_name_(std::move(client_name)) {}

bool ServiceClient::read_body(std::string* body) {
  std::string line;
  if (!conn_.read_line(&line)) {
    error_ = "connection closed";
    return false;
  }
  if (!proto::unframe(line, body)) {
    error_ = "corrupt frame from server";
    return false;
  }
  return true;
}

bool ServiceClient::roundtrip(const std::string& body, std::string* reply) {
  if (!conn_.write_line(proto::frame(body))) {
    error_ = "connection closed";
    return false;
  }
  return read_body(reply);
}

bool ServiceClient::connect() {
  conn_ = unix_connect(path_);
  if (!conn_.valid()) {
    error_ = "cannot connect to " + path_;
    return false;
  }
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  w.kv("type", "hello");
  w.kv("protocol", proto::kProtocolVersion);
  w.kv("client", client_name_);
  w.end_object();
  std::string reply;
  if (!roundtrip(os.str(), &reply)) {
    conn_.close();
    return false;
  }
  try {
    const JsonValue msg = json_parse(reply);
    if (msg.at("type").string != "hello" ||
        msg.at("protocol").as_u64() != proto::kProtocolVersion) {
      error_ = "protocol mismatch with server";
      conn_.close();
      return false;
    }
    server_provenance_ = msg.at("provenance").string;
  } catch (const JsonParseError& e) {
    error_ = std::string("bad hello from server: ") + e.what();
    conn_.close();
    return false;
  }
  return true;
}

ServiceClient::Outcome ServiceClient::run_sweep(
    const std::vector<sim::RunSpec>& specs,
    std::function<void(std::size_t done, std::size_t total)> on_progress) {
  Outcome out;
  out.results.resize(specs.size());
  out.errors.assign(specs.size(), "");
  if (specs.empty()) return out;
  if (!connected()) throw std::runtime_error("not connected to virec-simd");

  // The request is identical across busy retries except for its id.
  std::vector<std::string> spec_hex;
  spec_hex.reserve(specs.size());
  for (const sim::RunSpec& spec : specs) {
    spec_hex.push_back(proto::encode_spec_hex(spec));
  }

  for (;;) {
    const u64 id = next_id_++;
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.begin_object();
    w.kv("type", "sweep");
    w.kv("id", id);
    w.key("specs");
    w.begin_array();
    for (const std::string& hex : spec_hex) w.value(hex);
    w.end_array();
    w.end_object();
    if (!conn_.write_line(proto::frame(os.str()))) {
      throw std::runtime_error("virec-simd connection closed");
    }

    std::size_t delivered = 0;
    bool retry = false;
    double retry_after = 0.25;
    while (!retry) {
      std::string body;
      if (!read_body(&body)) {
        throw std::runtime_error("virec-simd: " + error_);
      }
      JsonValue msg;
      try {
        msg = json_parse(body);
      } catch (const JsonParseError& e) {
        throw std::runtime_error(std::string("virec-simd: bad message: ") +
                                 e.what());
      }
      const std::string& type = msg.at("type").string;
      if (type == "busy") {
        retry = true;
        if (const JsonValue* v = msg.find("retry_after_secs")) {
          retry_after = v->number;
        }
        continue;
      }
      if (msg.at("id").as_u64() != id) {
        throw std::runtime_error("virec-simd: reply for unknown request");
      }
      if (type == "point") {
        const std::size_t index = msg.at("index").as_u64();
        if (index >= specs.size()) {
          throw std::runtime_error("virec-simd: point index out of range");
        }
        if (!proto::decode_result_hex(msg.at("result").string,
                                      &out.results[index])) {
          throw std::runtime_error("virec-simd: undecodable result");
        }
        const std::string& source = msg.at("source").string;
        if (source == "executed") {
          ++out.executed;
        } else if (source == "store_hit") {
          ++out.store_hits;
        } else {
          ++out.dedup_hits;
        }
        ++delivered;
        if (on_progress) on_progress(delivered, specs.size());
      } else if (type == "error") {
        const std::size_t index = msg.at("index").as_u64();
        if (index < specs.size()) {
          out.errors[index] = msg.at("message").string;
        }
        ++out.failed;
        ++delivered;
        if (on_progress) on_progress(delivered, specs.size());
      } else if (type == "done") {
        if (delivered != specs.size()) {
          throw std::runtime_error("virec-simd: sweep finished short");
        }
        return out;
      } else {
        throw std::runtime_error("virec-simd: unexpected message " + type);
      }
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(retry_after));
  }
}

bool ServiceClient::run_one(const sim::RunSpec& spec, sim::RunResult* out) {
  Outcome outcome = run_sweep({spec});
  if (outcome.failed != 0) {
    error_ = outcome.errors[0];
    return false;
  }
  if (out != nullptr) *out = std::move(outcome.results[0]);
  return true;
}

std::optional<ServiceClient::ServerStats> ServiceClient::stats() {
  std::string reply;
  if (!roundtrip(compact_begin("stats") + "}", &reply)) return std::nullopt;
  try {
    const JsonValue msg = json_parse(reply);
    if (msg.at("type").string != "stats") return std::nullopt;
    ServerStats s;
    s.executed = msg.at("executed").as_u64();
    s.store_hits = msg.at("store_hits").as_u64();
    s.dedup_hits = msg.at("dedup_hits").as_u64();
    s.failed = msg.at("failed").as_u64();
    s.pending = msg.at("pending").as_u64();
    s.inflight = msg.at("inflight").as_u64();
    s.store_entries = msg.at("store_entries").as_u64();
    s.provenance = msg.at("provenance").string;
    return s;
  } catch (const JsonParseError&) {
    error_ = "bad stats reply";
    return std::nullopt;
  }
}

bool ServiceClient::ping() {
  std::string reply;
  if (!roundtrip(compact_begin("ping") + "}", &reply)) return false;
  try {
    return json_parse(reply).at("type").string == "pong";
  } catch (const JsonParseError&) {
    return false;
  }
}

bool ServiceClient::shutdown_server() {
  std::string reply;
  if (!roundtrip(compact_begin("shutdown") + "}", &reply)) return false;
  try {
    return json_parse(reply).at("type").string == "bye";
  } catch (const JsonParseError&) {
    return false;
  }
}

}  // namespace virec::svc
