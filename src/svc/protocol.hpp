// Wire protocol of the virec-simd daemon (docs/service.md): newline-
// delimited JSON over a local Unix socket, with journal-style CRC
// framing. Every line is
//
//   <compact json> <crc32 of the json, 8 lowercase hex digits>\n
//
// so a torn or corrupted line is detected before parsing, mirroring
// the ckpt::SweepJournal line format. Specs and results travel as
// hex-encoded ckpt spec-codec bytes, not as JSON numbers — doubles
// cross the wire by bit pattern, so a client's CSV/JSON output is
// byte-identical to a local run's.
//
// Message vocabulary (type field):
//   client -> server: hello, sweep {id, specs:[hex]}, stats, ping,
//                     shutdown
//   server -> client: hello {provenance, protocol}, point {id, index,
//                     source, result:hex}, error {id, index, message},
//                     done {id, points, executed, store_hits,
//                     dedup_hits, failed}, busy {id, retry_after_secs},
//                     stats {...}, pong, bye
#pragma once

#include <string>
#include <vector>

#include "ckpt/spec_codec.hpp"

namespace virec::svc::proto {

/// Bumped on incompatible wire changes; exchanged in hello and checked
/// by both sides.
inline constexpr u32 kProtocolVersion = 1;

/// Wrap a message body in the CRC frame (appends " <crc8hex>\n").
/// @p body must not contain a newline.
std::string frame(const std::string& body);

/// Strip and verify the CRC frame of one received line (with or
/// without the trailing newline). Returns false — corrupt or
/// malformed — without touching @p body on failure.
bool unframe(const std::string& line, std::string* body);

/// Lowercase hex of raw bytes, and its inverse. from_hex rejects odd
/// lengths and non-hex characters.
std::string to_hex(const std::vector<u8>& bytes);
bool from_hex(const std::string& hex, std::vector<u8>* out);

/// Specs/results as hex-encoded canonical codec bytes (the wire form).
/// The decoders return false on any malformed payload.
std::string encode_spec_hex(const sim::RunSpec& spec);
bool decode_spec_hex(const std::string& hex, sim::RunSpec* out);
std::string encode_result_hex(const sim::RunResult& result);
bool decode_result_hex(const std::string& hex, sim::RunResult* out);

}  // namespace virec::svc::proto
