#include "svc/protocol.hpp"

#include <cstdio>
#include <cstdlib>

namespace virec::svc::proto {

std::string frame(const std::string& body) {
  char crc[16];
  std::snprintf(crc, sizeof crc, " %08x",
                ckpt::crc32(body.data(), body.size()));
  return body + crc + "\n";
}

bool unframe(const std::string& line, std::string* body) {
  std::string text = line;
  if (!text.empty() && text.back() == '\n') text.pop_back();
  if (!text.empty() && text.back() == '\r') text.pop_back();
  // " %08x" suffix: space + 8 hex digits.
  if (text.size() < 10 || text[text.size() - 9] != ' ') return false;
  const std::string crc_hex = text.substr(text.size() - 8);
  unsigned long want = 0;
  char* end = nullptr;
  want = std::strtoul(crc_hex.c_str(), &end, 16);
  if (end != crc_hex.c_str() + crc_hex.size()) return false;
  text.resize(text.size() - 9);
  if (ckpt::crc32(text.data(), text.size()) != static_cast<u32>(want)) {
    return false;
  }
  *body = std::move(text);
  return true;
}

std::string to_hex(const std::vector<u8>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (u8 b : bytes) {
    out += kDigits[b >> 4];
    out += kDigits[b & 0xf];
  }
  return out;
}

namespace {

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

bool from_hex(const std::string& hex, std::vector<u8>* out) {
  if (hex.size() % 2 != 0) return false;
  std::vector<u8> bytes;
  bytes.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    bytes.push_back(static_cast<u8>((hi << 4) | lo));
  }
  *out = std::move(bytes);
  return true;
}

std::string encode_spec_hex(const sim::RunSpec& spec) {
  ckpt::Encoder enc;
  ckpt::encode_spec(enc, spec);
  return to_hex(enc.bytes());
}

bool decode_spec_hex(const std::string& hex, sim::RunSpec* out) {
  std::vector<u8> bytes;
  if (!from_hex(hex, &bytes)) return false;
  try {
    ckpt::Decoder dec(bytes.data(), bytes.size(), "wire spec");
    *out = ckpt::decode_spec(dec);
    dec.finish();
    return true;
  } catch (const ckpt::CkptError&) {
    return false;
  }
}

std::string encode_result_hex(const sim::RunResult& result) {
  ckpt::Encoder enc;
  ckpt::encode_result(enc, result);
  return to_hex(enc.bytes());
}

bool decode_result_hex(const std::string& hex, sim::RunResult* out) {
  std::vector<u8> bytes;
  if (!from_hex(hex, &bytes)) return false;
  try {
    ckpt::Decoder dec(bytes.data(), bytes.size(), "wire result");
    *out = ckpt::decode_result(dec);
    dec.finish();
    return true;
  } catch (const ckpt::CkptError&) {
    return false;
  }
}

}  // namespace virec::svc::proto
