// Layer 2 of the simulation service (docs/service.md): an in-process
// broker that turns raw experiment points into scheduled, deduplicated,
// cache-aware work. Every consumer of simulation results — the
// virec-simd daemon, in-process harnesses, tests — goes through one of
// these instead of calling sim::run_spec directly, which buys:
//
//   * cache serving — points already in the ResultStore (or completed
//     earlier in this process) are answered without running the
//     simulator, and every fresh execution is persisted back;
//   * in-flight dedup — identical points requested concurrently (by one
//     client or several) execute exactly once; all requesters receive
//     the one result when it lands;
//   * fair scheduling — queued work is drained round-robin across
//     clients, so a client submitting a 10k-point grid cannot starve a
//     client submitting 10 points;
//   * admission control — the pending queue is bounded; a submission
//     that would overflow it is rejected whole with ServiceBusy
//     (carrying a retry-after hint) rather than queued into unbounded
//     memory.
//
// Results stream: each point is delivered through the submission's
// callback as soon as it resolves (cache hits immediately, executions
// as they finish), tagged with how it was satisfied.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "svc/result_store.hpp"

namespace virec::svc {

/// How a delivered point was satisfied.
enum class PointSource {
  kExecuted,  ///< this submission triggered the simulator run
  kStoreHit,  ///< served from the ResultStore or this process's memo
  kDedup,     ///< coalesced onto an execution another request started
};

const char* point_source_name(PointSource source);

/// Per-point delivery callback. Invoked from service worker threads
/// (serialised per ticket, so implementations need no locking against
/// themselves). @p result is null iff the point failed; then @p error
/// carries the reason.
using PointFn = std::function<void(std::size_t index,
                                   const sim::RunResult* result,
                                   PointSource source,
                                   const std::string& error)>;

/// Thrown by submit() when admission control rejects the request.
class ServiceBusy : public std::runtime_error {
 public:
  explicit ServiceBusy(double retry_after_secs)
      : std::runtime_error("service busy"),
        retry_after_secs(retry_after_secs) {}
  double retry_after_secs;
};

struct ServiceConfig {
  u32 jobs = 1;                   ///< simulator worker threads
  std::size_t max_pending = 4096; ///< queued-execution bound (admission)
  double retry_after_secs = 0.25; ///< hint carried by ServiceBusy
};

/// Handle for one submitted sweep. wait() blocks until every point has
/// been delivered; the counters then say how the request was satisfied.
class SweepTicket {
 public:
  void wait();

  /// Wait at most @p secs; true once every point has been delivered.
  /// Lets a caller poll for liveness (e.g. the daemon watching for a
  /// disconnected client) while the sweep streams.
  bool wait_for(double secs);

  struct Counts {
    std::size_t points = 0;      ///< total points in the submission
    std::size_t executed = 0;    ///< runs this submission triggered
    std::size_t store_hits = 0;  ///< served from store/memo
    std::size_t dedup_hits = 0;  ///< coalesced onto foreign executions
    std::size_t failed = 0;      ///< delivered with an error
  };
  /// Stable only after wait() returns (counters advance while points
  /// stream in).
  Counts counts() const;

  /// Opaque shared state (defined in sweep_service.cpp; public so the
  /// service's internal bookkeeping can name it).
  struct Impl;

 private:
  friend class SweepService;
  std::shared_ptr<Impl> impl_;
};

class SweepService {
 public:
  /// @p store may be null (memo-only service, used by some tests);
  /// normally it is the persistent cache that outlives the process.
  SweepService(ServiceConfig config, ResultStore* store);
  /// Drains nothing: undelivered points are failed with an error so no
  /// ticket ever hangs across shutdown.
  ~SweepService();

  SweepService(const SweepService&) = delete;
  SweepService& operator=(const SweepService&) = delete;

  /// Submit a batch of points for @p client (an opaque fairness key —
  /// one per connection in the daemon). Delivery starts immediately:
  /// cache hits are delivered inside this call, the rest stream through
  /// @p on_point from worker threads. Throws ServiceBusy (rejecting the
  /// whole batch, nothing partially queued) if the new executions it
  /// needs would overflow the pending queue.
  SweepTicket submit(const std::string& client,
                     const std::vector<sim::RunSpec>& specs,
                     PointFn on_point);

  /// Withdraw @p client from the service: its waiters are failed
  /// ("cancelled: client disconnected") on every execution — queued or
  /// running, own or dedup-joined — and queued executions left with no
  /// waiters at all are dropped before they ever start, releasing
  /// their admission slots. Executions already running finish (and
  /// cache) normally. Returns the number of unstarted executions
  /// reclaimed. Must not be called from inside a PointFn (deliveries
  /// hold the ticket lock cancel needs).
  std::size_t cancel(const std::string& client);

  struct Stats {
    std::size_t executed = 0;    ///< simulator runs completed, lifetime
    std::size_t store_hits = 0;
    std::size_t dedup_hits = 0;
    std::size_t failed = 0;
    std::size_t pending = 0;     ///< executions queued, not yet running
    std::size_t inflight = 0;    ///< executions currently running
  };
  Stats stats() const;

 private:
  struct State;
  void worker_loop();

  ServiceConfig config_;
  ResultStore* store_;
  std::unique_ptr<State> state_;
};

}  // namespace virec::svc
