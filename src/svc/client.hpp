// Client side of the virec-simd protocol (docs/service.md). Wraps one
// connection to a daemon: hello handshake, sweep submission with
// streamed point delivery, busy/retry handling, stats/ping/shutdown
// control messages. Used by `virec-sim --connect` and by
// bench::CachedRunner when VIREC_SIMD_SOCKET is set, so every harness
// shares the daemon's result cache instead of re-simulating.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "svc/protocol.hpp"
#include "svc/socket.hpp"

namespace virec::svc {

class ServiceClient {
 public:
  /// @p client_name is the daemon-side fairness/logging label.
  explicit ServiceClient(std::string socket_path,
                         std::string client_name = "virec-sim");

  /// Connect and complete the hello handshake. False (with reason in
  /// error()) if nothing listens on the path or versions mismatch.
  bool connect();
  bool connected() const { return conn_.valid(); }
  /// Build provenance string of the daemon (valid after connect()).
  const std::string& server_provenance() const { return server_provenance_; }
  /// Reason for the last failed call.
  const std::string& error() const { return error_; }

  struct Outcome {
    std::vector<sim::RunResult> results;  ///< grid order
    std::size_t executed = 0;    ///< points the daemon simulated anew
    std::size_t store_hits = 0;  ///< served from the daemon's cache
    std::size_t dedup_hits = 0;  ///< coalesced with concurrent requests
    std::size_t failed = 0;
    std::vector<std::string> errors;  ///< "" per point, message on failure
  };

  /// Run @p specs through the daemon, blocking until every point has
  /// streamed back. Retries transparently (after the server's hinted
  /// delay) when the daemon is at its admission limit. Throws
  /// std::runtime_error if the connection dies mid-sweep.
  Outcome run_sweep(
      const std::vector<sim::RunSpec>& specs,
      std::function<void(std::size_t done, std::size_t total)> on_progress =
          {});

  /// Single-point convenience for harnesses (bench::CachedRunner).
  /// False on per-point failure (message in error()).
  bool run_one(const sim::RunSpec& spec, sim::RunResult* out);

  struct ServerStats {
    u64 executed = 0;
    u64 store_hits = 0;
    u64 dedup_hits = 0;
    u64 failed = 0;
    u64 pending = 0;
    u64 inflight = 0;
    u64 store_entries = 0;
    std::string provenance;
  };
  std::optional<ServerStats> stats();

  bool ping();
  /// Ask the daemon to exit (it finishes in-flight work first).
  bool shutdown_server();

 private:
  /// Send one framed body and read the next framed reply body.
  bool roundtrip(const std::string& body, std::string* reply);
  bool read_body(std::string* body);

  std::string path_;
  std::string client_name_;
  UnixConn conn_;
  std::string server_provenance_;
  std::string error_;
  u64 next_id_ = 1;
};

}  // namespace virec::svc
