#include "workloads/workload.hpp"

#include <stdexcept>

namespace virec::workloads {

void WorkloadParams::validate() const {
  const auto reject = [](const char* what) {
    throw std::invalid_argument(std::string("WorkloadParams: ") + what);
  };
  if (iters_per_thread == 0) reject("iters_per_thread must be nonzero");
  if (elements == 0) reject("elements must be nonzero");
  if (stride == 0) reject("stride must be nonzero");
  if (locality_window == 0) reject("locality_window must be nonzero");
  if (max_regs == 0 || max_regs > 31) reject("max_regs must be in [1, 31]");
}

std::vector<const Workload*> figure_workloads() {
  // The eight-kernel subset used by the paper's multi-workload figures.
  static const char* const names[] = {"gather", "scatter", "stride", "maebo",
                                      "pchase", "triad",   "spmv",   "hist"};
  std::vector<const Workload*> out;
  for (const char* name : names) out.push_back(&find_workload(name));
  return out;
}

const Workload& find_workload(const std::string& name) {
  for (const Workload* w : workload_registry()) {
    if (w->name() == name) return *w;
  }
  throw std::out_of_range("unknown workload '" + name + "'");
}

}  // namespace virec::workloads
