#include "workloads/workload.hpp"

#include <stdexcept>

namespace virec::workloads {

std::vector<const Workload*> figure_workloads() {
  // The eight-kernel subset used by the paper's multi-workload figures.
  static const char* const names[] = {"gather", "scatter", "stride", "maebo",
                                      "pchase", "triad",   "spmv",   "hist"};
  std::vector<const Workload*> out;
  for (const char* name : names) out.push_back(&find_workload(name));
  return out;
}

const Workload& find_workload(const std::string& name) {
  for (const Workload* w : workload_registry()) {
    if (w->name() == name) return *w;
  }
  throw std::out_of_range("unknown workload '" + name + "'");
}

}  // namespace virec::workloads
