// Memory-intensive workload suite modelled after the benchmarks the
// paper evaluates (Spatter gather/scatter/stride, Arm Meabo, CORAL-2
// style streaming kernels, PrIM-style irregular kernels).
//
// Each workload provides
//   * a Program (shared by all threads of all cores),
//   * per-thread initial register values (the offloaded context),
//   * functional data initialisation, and
//   * a result checker that recomputes the expected output on the
//     host — because the simulator executes real data through real
//     register movement, a ViReC bug shows up as a wrong answer here.
//
// Memory contract (relied on by the parallel PDES run mode,
// mem/sparse_memory.hpp): every *output* byte of the functional memory
// is written by at most one simulated thread. Threads may freely share
// read-only inputs (index arrays, source data), but their result
// ranges are disjoint at byte granularity — each thread owns a slice
// of the output array selected by its thread/core id registers. New
// kernels must keep this property (the checkers verify per-slice
// results, so a violation shows up as a failed check); it is what lets
// partitions of one System touch the byte memory concurrently with
// only page-map sharding, no per-byte locks.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "kasm/program.hpp"
#include "mem/sparse_memory.hpp"

namespace virec::workloads {

struct WorkloadParams {
  /// Inner-loop iterations executed by each thread.
  u64 iters_per_thread = 1024;
  /// Elements in the shared data arrays (8 B each).
  u64 elements = 1 << 16;
  /// Stride in elements for the strided kernel.
  u64 stride = 8;
  /// Index locality window in elements for gather_local (indices fall
  /// inside a sliding window of this size; smaller => more cache hits).
  u64 locality_window = 512;
  /// Extra arithmetic per iteration (Meabo-style intensity knob).
  u32 extra_compute = 2;
  /// Compiler register-reduction knob: registers available to the
  /// register allocator (kernels exceeding it spill outer-loop values
  /// with explicit loads/stores; see gather_wide).
  u32 max_regs = 31;
  u64 seed = 42;

  /// Reject degenerate parameter combinations (zero-sized arrays, zero
  /// iteration counts, ...) that would otherwise reach `% 0` index
  /// generation or underflowing shuffle loops deep inside the kernels.
  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Fixed data layout shared by every kernel.
namespace layout {
inline constexpr Addr kArrayA = 0x2000'0000ull;  // indices / input 1
inline constexpr Addr kArrayB = 0x2800'0000ull;  // values / input 2
inline constexpr Addr kArrayC = 0x3000'0000ull;  // outputs
inline constexpr Addr kArrayD = 0x3800'0000ull;  // auxiliary (rowptr, ...)
inline constexpr Addr kArrayE = 0x4000'0000ull;  // auxiliary 2 (spmv x vector)
inline constexpr Addr kResult = 0x6000'0000ull;  // one line per thread
inline constexpr Addr kScratch = 0x7000'0000ull; // spill slots per thread

inline Addr result_addr(u32 global_tid) { return kResult + global_tid * 64ull; }
inline Addr scratch_addr(u32 global_tid) {
  return kScratch + global_tid * 256ull;
}
}  // namespace layout

/// The offloaded register context of one thread.
using RegContext = std::array<u64, isa::kNumAllocatableRegs>;

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  virtual std::string description() const = 0;

  /// Distinct registers referenced inside the innermost loop — the
  /// "active context" the ViReC RF is sized against (Figure 2). The
  /// analysis::RegUsageProfiler cross-checks these numbers in tests.
  virtual u32 active_regs() const = 0;

  virtual kasm::Program program(const WorkloadParams& params) const = 0;

  /// Write the input data sets, sized for @p total_threads threads.
  virtual void init_memory(mem::SparseMemory& memory,
                           const WorkloadParams& params,
                           u32 total_threads) const = 0;

  /// Initial registers for @p global_tid of @p total_threads.
  virtual RegContext thread_regs(const WorkloadParams& params, u32 global_tid,
                                 u32 total_threads) const = 0;

  /// Verify outputs after simulation; fills @p why on mismatch.
  virtual bool check(const mem::SparseMemory& memory,
                     const WorkloadParams& params, u32 total_threads,
                     std::string* why) const = 0;
};

/// All registered workloads (stable order).
const std::vector<const Workload*>& workload_registry();

/// The subset used for the paper's multi-workload figures.
std::vector<const Workload*> figure_workloads();

/// Lookup by name; throws std::out_of_range.
const Workload& find_workload(const std::string& name);

}  // namespace virec::workloads
