// Kernel implementations. Every kernel is written in the NMP ISA via
// the ProgramBuilder, with data initialisers and host-side reference
// checkers that recompute the expected results (bit-exact, including
// floating-point operation order).
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"
#include "kasm/builder.hpp"
#include "workloads/workload.hpp"

namespace virec::workloads {

namespace {

using kasm::Cond;
using kasm::Op;
using kasm::ProgramBuilder;
using kasm::X;

u64 f64_to_bits(double v) {
  u64 bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

/// Deterministic input formulas shared by initialisers and checkers.
u64 index_at(u64 seed, u64 k, u64 bound) {
  Xorshift128 rng(seed * 0x1003f + k);
  return rng.next_below(bound);
}
u64 int_value_at(u64 k) { return k * 0x9e3779b97f4a7c15ull + 12345; }
double f64_value_a(u64 k) { return 1.0 + static_cast<double>(k % 97) / 128.0; }
double f64_value_b(u64 k) { return 0.5 + static_cast<double>(k % 53) / 256.0; }

bool expect_eq(u64 got, u64 want, const std::string& what, std::string* why) {
  if (got == want) return true;
  if (why != nullptr) {
    std::ostringstream os;
    os << what << ": got 0x" << std::hex << got << ", want 0x" << want;
    *why = os.str();
  }
  return false;
}

// ---------------------------------------------------------------------------
// gather — Spatter-style streaming indirect read:  acc += B[A[k]]
// ---------------------------------------------------------------------------
class GatherWorkload final : public Workload {
 public:
  std::string name() const override { return "gather"; }
  std::string description() const override {
    return "streaming indirect gather (Spatter): acc += B[A[k]]";
  }
  u32 active_regs() const override { return 6; }

  kasm::Program program(const WorkloadParams&) const override {
    ProgramBuilder b;
    // x0 = &A[start], x1 = B base, x2 = iters, x3 = acc, x6 = result.
    b.label("loop");
    b.ldr_post(X(4), X(0), 8);       // idx = *A++
    b.ldr(X(5), X(1), X(4), 3);      // v = B[idx]
    b.add(X(3), X(3), X(5));
    b.sub_imm(X(2), X(2), 1);
    b.cbnz(X(2), "loop");
    b.str(X(3), X(6), 0);
    b.halt();
    return b.build();
  }

  void init_memory(mem::SparseMemory& memory, const WorkloadParams& p,
                   u32 total_threads) const override {
    const u64 total = p.iters_per_thread * total_threads;
    for (u64 k = 0; k < total; ++k) {
      memory.write_u64(layout::kArrayA + k * 8,
                       index_at(p.seed, k, p.elements));
    }
    for (u64 j = 0; j < p.elements; ++j) {
      memory.write_u64(layout::kArrayB + j * 8, int_value_at(j));
    }
  }

  RegContext thread_regs(const WorkloadParams& p, u32 gtid,
                         u32 /*total*/) const override {
    RegContext regs{};
    regs[0] = layout::kArrayA + gtid * p.iters_per_thread * 8;
    regs[1] = layout::kArrayB;
    regs[2] = p.iters_per_thread;
    regs[3] = 0;
    regs[6] = layout::result_addr(gtid);
    return regs;
  }

  bool check(const mem::SparseMemory& memory, const WorkloadParams& p,
             u32 total_threads, std::string* why) const override {
    for (u32 t = 0; t < total_threads; ++t) {
      u64 acc = 0;
      for (u64 i = 0; i < p.iters_per_thread; ++i) {
        const u64 k = t * p.iters_per_thread + i;
        acc += int_value_at(index_at(p.seed, k, p.elements));
      }
      if (!expect_eq(memory.read_u64(layout::result_addr(t)), acc,
                     "gather thread " + std::to_string(t), why)) {
        return false;
      }
    }
    return true;
  }
};

// ---------------------------------------------------------------------------
// gather_local — gather whose indices fall in a sliding locality window
// (Spatter patterns are rarely uniformly random; the window size tunes
// the dcache hit rate and therefore the context-switch frequency)
// ---------------------------------------------------------------------------
class GatherLocalWorkload final : public Workload {
 public:
  std::string name() const override { return "gather_local"; }
  std::string description() const override {
    return "gather with a sliding index-locality window";
  }
  u32 active_regs() const override { return 6; }

  kasm::Program program(const WorkloadParams& p) const override {
    return find_workload("gather").program(p);  // identical inner loop
  }

  u64 window(const WorkloadParams& p) const {
    return std::min<u64>(std::max<u64>(p.locality_window, 8), p.elements);
  }

  u64 index_for(const WorkloadParams& p, u64 k) const {
    const u64 w = window(p);
    const u64 span = p.elements - w + 1;
    const u64 base = (k / 16) * (w / 4) % span;  // window slides every 16
    return base + index_at(p.seed + 3, k, w);
  }

  void init_memory(mem::SparseMemory& memory, const WorkloadParams& p,
                   u32 total_threads) const override {
    const u64 total = p.iters_per_thread * total_threads;
    for (u64 k = 0; k < total; ++k) {
      memory.write_u64(layout::kArrayA + k * 8, index_for(p, k));
    }
    for (u64 j = 0; j < p.elements; ++j) {
      memory.write_u64(layout::kArrayB + j * 8, int_value_at(j));
    }
  }

  RegContext thread_regs(const WorkloadParams& p, u32 gtid,
                         u32 total) const override {
    return find_workload("gather").thread_regs(p, gtid, total);
  }

  bool check(const mem::SparseMemory& memory, const WorkloadParams& p,
             u32 total_threads, std::string* why) const override {
    for (u32 t = 0; t < total_threads; ++t) {
      u64 acc = 0;
      for (u64 i = 0; i < p.iters_per_thread; ++i) {
        acc += int_value_at(index_for(p, t * p.iters_per_thread + i));
      }
      if (!expect_eq(memory.read_u64(layout::result_addr(t)), acc,
                     "gather_local thread " + std::to_string(t), why)) {
        return false;
      }
    }
    return true;
  }
};

// ---------------------------------------------------------------------------
// scatter — Spatter-style indirect write: C_t[A[k]] = B[k]
// (per-thread output windows so the result is deterministic)
// ---------------------------------------------------------------------------
class ScatterWorkload final : public Workload {
 public:
  std::string name() const override { return "scatter"; }
  std::string description() const override {
    return "streaming indirect scatter (Spatter): C[A[k]] = B[k]";
  }
  u32 active_regs() const override { return 6; }

  kasm::Program program(const WorkloadParams&) const override {
    ProgramBuilder b;
    // x0 = &A[start], x1 = &B[start], x2 = C window, x3 = iters.
    b.label("loop");
    b.ldr_post(X(4), X(0), 8);   // idx
    b.ldr_post(X(5), X(1), 8);   // value
    b.str(X(5), X(2), X(4), 3);  // C[idx] = value
    b.sub_imm(X(3), X(3), 1);
    b.cbnz(X(3), "loop");
    b.halt();
    return b.build();
  }

  u64 window(const WorkloadParams& p, u32 total_threads) const {
    return std::max<u64>(1, p.elements / total_threads);
  }

  void init_memory(mem::SparseMemory& memory, const WorkloadParams& p,
                   u32 total_threads) const override {
    const u64 total = p.iters_per_thread * total_threads;
    const u64 w = window(p, total_threads);
    for (u64 k = 0; k < total; ++k) {
      memory.write_u64(layout::kArrayA + k * 8, index_at(p.seed, k, w));
      memory.write_u64(layout::kArrayB + k * 8, int_value_at(k));
    }
  }

  RegContext thread_regs(const WorkloadParams& p, u32 gtid,
                         u32 total) const override {
    RegContext regs{};
    regs[0] = layout::kArrayA + gtid * p.iters_per_thread * 8;
    regs[1] = layout::kArrayB + gtid * p.iters_per_thread * 8;
    regs[2] = layout::kArrayC + gtid * window(p, total) * 8;
    regs[3] = p.iters_per_thread;
    return regs;
  }

  bool check(const mem::SparseMemory& memory, const WorkloadParams& p,
             u32 total_threads, std::string* why) const override {
    const u64 w = window(p, total_threads);
    for (u32 t = 0; t < total_threads; ++t) {
      // Replay the writes; the final value per slot must match.
      std::vector<u64> expected(w, 0);
      std::vector<u8> written(w, 0);
      for (u64 i = 0; i < p.iters_per_thread; ++i) {
        const u64 k = t * p.iters_per_thread + i;
        const u64 idx = index_at(p.seed, k, w);
        expected[idx] = int_value_at(k);
        written[idx] = 1;
      }
      const Addr base = layout::kArrayC + t * w * 8;
      for (u64 j = 0; j < w; ++j) {
        if (!written[j]) continue;
        if (!expect_eq(memory.read_u64(base + j * 8), expected[j],
                       "scatter thread " + std::to_string(t) + " slot " +
                           std::to_string(j),
                       why)) {
          return false;
        }
      }
    }
    return true;
  }
};

// ---------------------------------------------------------------------------
// stride — strided read reduction with a configurable element stride
// ---------------------------------------------------------------------------
class StrideWorkload final : public Workload {
 public:
  std::string name() const override { return "stride"; }
  std::string description() const override {
    return "strided read reduction: acc += B[k*stride]";
  }
  u32 active_regs() const override { return 5; }

  kasm::Program program(const WorkloadParams&) const override {
    ProgramBuilder b;
    // x0 = cursor, x5 = byte stride, x2 = iters, x3 = acc, x6 = result.
    b.label("loop");
    b.ldr(X(4), X(0), 0);
    b.add(X(0), X(0), X(5));
    b.add(X(3), X(3), X(4));
    b.sub_imm(X(2), X(2), 1);
    b.cbnz(X(2), "loop");
    b.str(X(3), X(6), 0);
    b.halt();
    return b.build();
  }

  void init_memory(mem::SparseMemory& memory, const WorkloadParams& p,
                   u32 total_threads) const override {
    const u64 total = p.iters_per_thread * p.stride * total_threads;
    for (u64 j = 0; j < total; ++j) {
      memory.write_u64(layout::kArrayB + j * 8, int_value_at(j));
    }
  }

  RegContext thread_regs(const WorkloadParams& p, u32 gtid,
                         u32 /*total*/) const override {
    RegContext regs{};
    regs[0] = layout::kArrayB + gtid * p.iters_per_thread * p.stride * 8;
    regs[2] = p.iters_per_thread;
    regs[3] = 0;
    regs[5] = p.stride * 8;
    regs[6] = layout::result_addr(gtid);
    return regs;
  }

  bool check(const mem::SparseMemory& memory, const WorkloadParams& p,
             u32 total_threads, std::string* why) const override {
    for (u32 t = 0; t < total_threads; ++t) {
      u64 acc = 0;
      const u64 start = t * p.iters_per_thread * p.stride;
      for (u64 i = 0; i < p.iters_per_thread; ++i) {
        acc += int_value_at(start + i * p.stride);
      }
      if (!expect_eq(memory.read_u64(layout::result_addr(t)), acc,
                     "stride thread " + std::to_string(t), why)) {
        return false;
      }
    }
    return true;
  }
};

// ---------------------------------------------------------------------------
// maebo — Meabo-style mixed compute/memory phases: two streaming loads,
// one FMA and `extra_compute` dependent FP adds per iteration
// ---------------------------------------------------------------------------
class MaeboWorkload final : public Workload {
 public:
  std::string name() const override { return "maebo"; }
  std::string description() const override {
    return "Meabo-like mixed FP compute over two streams";
  }
  u32 active_regs() const override { return 7; }

  kasm::Program program(const WorkloadParams& p) const override {
    ProgramBuilder b;
    // x0 = &A[start], x1 = &B[start], x2 = iters, x6 = acc, x7 = acc2.
    b.label("loop");
    b.ldr_post(X(4), X(0), 8);
    b.ldr_post(X(5), X(1), 8);
    b.fmadd(X(6), X(4), X(5), X(6));
    for (u32 e = 0; e < p.extra_compute; ++e) {
      b.fadd(X(7), X(7), X(4));
    }
    b.sub_imm(X(2), X(2), 1);
    b.cbnz(X(2), "loop");
    b.fadd(X(6), X(6), X(7));
    b.str(X(6), X(8), 0);
    b.halt();
    return b.build();
  }

  void init_memory(mem::SparseMemory& memory, const WorkloadParams& p,
                   u32 total_threads) const override {
    const u64 total = p.iters_per_thread * total_threads;
    for (u64 k = 0; k < total; ++k) {
      memory.write_f64(layout::kArrayA + k * 8, f64_value_a(k));
      memory.write_f64(layout::kArrayB + k * 8, f64_value_b(k));
    }
  }

  RegContext thread_regs(const WorkloadParams& p, u32 gtid,
                         u32 /*total*/) const override {
    RegContext regs{};
    regs[0] = layout::kArrayA + gtid * p.iters_per_thread * 8;
    regs[1] = layout::kArrayB + gtid * p.iters_per_thread * 8;
    regs[2] = p.iters_per_thread;
    regs[6] = f64_to_bits(0.0);
    regs[7] = f64_to_bits(0.0);
    regs[8] = layout::result_addr(gtid);
    return regs;
  }

  bool check(const mem::SparseMemory& memory, const WorkloadParams& p,
             u32 total_threads, std::string* why) const override {
    for (u32 t = 0; t < total_threads; ++t) {
      double acc = 0.0, acc2 = 0.0;
      for (u64 i = 0; i < p.iters_per_thread; ++i) {
        const u64 k = t * p.iters_per_thread + i;
        const double a = f64_value_a(k);
        const double bb = f64_value_b(k);
        acc = acc + a * bb;
        for (u32 e = 0; e < p.extra_compute; ++e) acc2 = acc2 + a;
      }
      const u64 want = f64_to_bits(acc + acc2);
      if (!expect_eq(memory.read_u64(layout::result_addr(t)), want,
                     "maebo thread " + std::to_string(t), why)) {
        return false;
      }
    }
    return true;
  }
};

// ---------------------------------------------------------------------------
// pchase — serial pointer chasing through a random per-thread cycle
// ---------------------------------------------------------------------------
class PchaseWorkload final : public Workload {
 public:
  std::string name() const override { return "pchase"; }
  std::string description() const override {
    return "pointer chasing through a random permutation cycle";
  }
  u32 active_regs() const override { return 2; }

  kasm::Program program(const WorkloadParams&) const override {
    ProgramBuilder b;
    // x0 = cursor (holds addresses), x2 = iters, x6 = result.
    b.label("loop");
    b.ldr(X(0), X(0), 0);
    b.sub_imm(X(2), X(2), 1);
    b.cbnz(X(2), "loop");
    b.str(X(0), X(6), 0);
    b.halt();
    return b.build();
  }

  u64 window(const WorkloadParams& p, u32 total_threads) const {
    return std::max<u64>(2, p.elements / total_threads);
  }

  void init_memory(mem::SparseMemory& memory, const WorkloadParams& p,
                   u32 total_threads) const override {
    const u64 w = window(p, total_threads);
    for (u32 t = 0; t < total_threads; ++t) {
      // Sattolo's algorithm: a single random cycle over the window.
      std::vector<u64> perm(w);
      for (u64 j = 0; j < w; ++j) perm[j] = j;
      Xorshift128 rng(p.seed + 77 * t);
      // Written underflow-proof: identical iteration sequence to the
      // textbook `for (j = w - 1; j > 0; --j)` but safe for w == 0.
      for (u64 j = w; j-- > 1;) {
        const u64 r = rng.next_below(j);
        std::swap(perm[j], perm[r]);
      }
      const Addr base = layout::kArrayA + t * w * 8;
      for (u64 j = 0; j < w; ++j) {
        memory.write_u64(base + j * 8, base + perm[j] * 8);
      }
    }
  }

  RegContext thread_regs(const WorkloadParams& p, u32 gtid,
                         u32 total) const override {
    RegContext regs{};
    regs[0] = layout::kArrayA + gtid * window(p, total) * 8;
    regs[2] = p.iters_per_thread;
    regs[6] = layout::result_addr(gtid);
    return regs;
  }

  bool check(const mem::SparseMemory& memory, const WorkloadParams& p,
             u32 total_threads, std::string* why) const override {
    for (u32 t = 0; t < total_threads; ++t) {
      const u64 w = window(p, total_threads);
      Addr cursor = layout::kArrayA + t * w * 8;
      for (u64 i = 0; i < p.iters_per_thread; ++i) {
        cursor = memory.read_u64(cursor);
      }
      if (!expect_eq(memory.read_u64(layout::result_addr(t)), cursor,
                     "pchase thread " + std::to_string(t), why)) {
        return false;
      }
    }
    return true;
  }
};

// ---------------------------------------------------------------------------
// triad — STREAM triad: C[k] = A[k] + s * B[k] (f64)
// ---------------------------------------------------------------------------
class TriadWorkload final : public Workload {
 public:
  std::string name() const override { return "triad"; }
  std::string description() const override {
    return "STREAM triad: C[k] = A[k] + s*B[k]";
  }
  u32 active_regs() const override { return 8; }

  kasm::Program program(const WorkloadParams&) const override {
    ProgramBuilder b;
    // x0 = &C[start], x1 = &A[start], x2 = &B[start], x3 = iters, x7 = s.
    b.label("loop");
    b.ldr_post(X(4), X(1), 8);
    b.ldr_post(X(5), X(2), 8);
    b.fmadd(X(6), X(5), X(7), X(4));  // a + s*b
    b.str_post(X(6), X(0), 8);
    b.sub_imm(X(3), X(3), 1);
    b.cbnz(X(3), "loop");
    b.halt();
    return b.build();
  }

  void init_memory(mem::SparseMemory& memory, const WorkloadParams& p,
                   u32 total_threads) const override {
    const u64 total = p.iters_per_thread * total_threads;
    for (u64 k = 0; k < total; ++k) {
      memory.write_f64(layout::kArrayA + k * 8, f64_value_a(k));
      memory.write_f64(layout::kArrayB + k * 8, f64_value_b(k));
    }
  }

  RegContext thread_regs(const WorkloadParams& p, u32 gtid,
                         u32 /*total*/) const override {
    RegContext regs{};
    regs[0] = layout::kArrayC + gtid * p.iters_per_thread * 8;
    regs[1] = layout::kArrayA + gtid * p.iters_per_thread * 8;
    regs[2] = layout::kArrayB + gtid * p.iters_per_thread * 8;
    regs[3] = p.iters_per_thread;
    regs[7] = f64_to_bits(3.0);
    return regs;
  }

  bool check(const mem::SparseMemory& memory, const WorkloadParams& p,
             u32 total_threads, std::string* why) const override {
    const u64 total = p.iters_per_thread * total_threads;
    for (u64 k = 0; k < total; ++k) {
      const u64 want = f64_to_bits(f64_value_a(k) + 3.0 * f64_value_b(k));
      if (!expect_eq(memory.read_u64(layout::kArrayC + k * 8), want,
                     "triad element " + std::to_string(k), why)) {
        return false;
      }
    }
    return true;
  }
};

// ---------------------------------------------------------------------------
// reduce — sequential integer sum
// ---------------------------------------------------------------------------
class ReduceWorkload final : public Workload {
 public:
  std::string name() const override { return "reduce"; }
  std::string description() const override {
    return "sequential integer reduction";
  }
  u32 active_regs() const override { return 4; }

  kasm::Program program(const WorkloadParams&) const override {
    ProgramBuilder b;
    b.label("loop");
    b.ldr_post(X(4), X(0), 8);
    b.add(X(3), X(3), X(4));
    b.sub_imm(X(2), X(2), 1);
    b.cbnz(X(2), "loop");
    b.str(X(3), X(6), 0);
    b.halt();
    return b.build();
  }

  void init_memory(mem::SparseMemory& memory, const WorkloadParams& p,
                   u32 total_threads) const override {
    const u64 total = p.iters_per_thread * total_threads;
    for (u64 k = 0; k < total; ++k) {
      memory.write_u64(layout::kArrayA + k * 8, int_value_at(k));
    }
  }

  RegContext thread_regs(const WorkloadParams& p, u32 gtid,
                         u32 /*total*/) const override {
    RegContext regs{};
    regs[0] = layout::kArrayA + gtid * p.iters_per_thread * 8;
    regs[2] = p.iters_per_thread;
    regs[3] = 0;
    regs[6] = layout::result_addr(gtid);
    return regs;
  }

  bool check(const mem::SparseMemory& memory, const WorkloadParams& p,
             u32 total_threads, std::string* why) const override {
    for (u32 t = 0; t < total_threads; ++t) {
      u64 acc = 0;
      for (u64 i = 0; i < p.iters_per_thread; ++i) {
        acc += int_value_at(t * p.iters_per_thread + i);
      }
      if (!expect_eq(memory.read_u64(layout::result_addr(t)), acc,
                     "reduce thread " + std::to_string(t), why)) {
        return false;
      }
    }
    return true;
  }
};

// ---------------------------------------------------------------------------
// copy — stream copy C[k] = A[k]
// ---------------------------------------------------------------------------
class CopyWorkload final : public Workload {
 public:
  std::string name() const override { return "copy"; }
  std::string description() const override { return "stream copy C[k]=A[k]"; }
  u32 active_regs() const override { return 4; }

  kasm::Program program(const WorkloadParams&) const override {
    ProgramBuilder b;
    b.label("loop");
    b.ldr_post(X(4), X(0), 8);
    b.str_post(X(4), X(1), 8);
    b.sub_imm(X(2), X(2), 1);
    b.cbnz(X(2), "loop");
    b.halt();
    return b.build();
  }

  void init_memory(mem::SparseMemory& memory, const WorkloadParams& p,
                   u32 total_threads) const override {
    const u64 total = p.iters_per_thread * total_threads;
    for (u64 k = 0; k < total; ++k) {
      memory.write_u64(layout::kArrayA + k * 8, int_value_at(k));
    }
  }

  RegContext thread_regs(const WorkloadParams& p, u32 gtid,
                         u32 /*total*/) const override {
    RegContext regs{};
    regs[0] = layout::kArrayA + gtid * p.iters_per_thread * 8;
    regs[1] = layout::kArrayC + gtid * p.iters_per_thread * 8;
    regs[2] = p.iters_per_thread;
    return regs;
  }

  bool check(const mem::SparseMemory& memory, const WorkloadParams& p,
             u32 total_threads, std::string* why) const override {
    const u64 total = p.iters_per_thread * total_threads;
    for (u64 k = 0; k < total; ++k) {
      if (!expect_eq(memory.read_u64(layout::kArrayC + k * 8),
                     int_value_at(k), "copy element " + std::to_string(k),
                     why)) {
        return false;
      }
    }
    return true;
  }
};

// ---------------------------------------------------------------------------
// stencil3 — 3-point integer stencil: C[k] = A[k-1] + A[k] + A[k+1]
// ---------------------------------------------------------------------------
class Stencil3Workload final : public Workload {
 public:
  std::string name() const override { return "stencil3"; }
  std::string description() const override {
    return "3-point stencil with spatial reuse";
  }
  u32 active_regs() const override { return 6; }

  kasm::Program program(const WorkloadParams&) const override {
    ProgramBuilder b;
    // x0 = &C[start], x1 = &A[start+1], x2 = iters.
    b.label("loop");
    b.ldr(X(4), X(1), -8);
    b.ldr(X(5), X(1), 0);
    b.ldr(X(6), X(1), 8);
    b.add(X(4), X(4), X(5));
    b.add(X(4), X(4), X(6));
    b.str_post(X(4), X(0), 8);
    b.add_imm(X(1), X(1), 8);
    b.sub_imm(X(2), X(2), 1);
    b.cbnz(X(2), "loop");
    b.halt();
    return b.build();
  }

  void init_memory(mem::SparseMemory& memory, const WorkloadParams& p,
                   u32 total_threads) const override {
    const u64 total = p.iters_per_thread * total_threads + 2;
    for (u64 k = 0; k < total; ++k) {
      memory.write_u64(layout::kArrayA + k * 8, int_value_at(k));
    }
  }

  RegContext thread_regs(const WorkloadParams& p, u32 gtid,
                         u32 /*total*/) const override {
    RegContext regs{};
    regs[0] = layout::kArrayC + gtid * p.iters_per_thread * 8;
    regs[1] = layout::kArrayA + (gtid * p.iters_per_thread + 1) * 8;
    regs[2] = p.iters_per_thread;
    return regs;
  }

  bool check(const mem::SparseMemory& memory, const WorkloadParams& p,
             u32 total_threads, std::string* why) const override {
    const u64 total = p.iters_per_thread * total_threads;
    for (u64 k = 0; k < total; ++k) {
      const u64 want =
          int_value_at(k) + int_value_at(k + 1) + int_value_at(k + 2);
      if (!expect_eq(memory.read_u64(layout::kArrayC + k * 8), want,
                     "stencil3 element " + std::to_string(k), why)) {
        return false;
      }
    }
    return true;
  }
};

// ---------------------------------------------------------------------------
// hist — histogram over private per-thread bins (read-modify-write with
// random bin addresses)
// ---------------------------------------------------------------------------
class HistWorkload final : public Workload {
 public:
  static constexpr u64 kBins = 256;

  std::string name() const override { return "hist"; }
  std::string description() const override {
    return "histogram: random read-modify-write over 256 private bins";
  }
  u32 active_regs() const override { return 5; }

  kasm::Program program(const WorkloadParams&) const override {
    ProgramBuilder b;
    // x0 = &A[start], x1 = bin base, x2 = iters.
    b.label("loop");
    b.ldr_post(X(4), X(0), 8);
    b.and_imm(X(4), X(4), static_cast<i64>(kBins - 1));
    b.ldr(X(6), X(1), X(4), 3);
    b.add_imm(X(6), X(6), 1);
    b.str(X(6), X(1), X(4), 3);
    b.sub_imm(X(2), X(2), 1);
    b.cbnz(X(2), "loop");
    b.halt();
    return b.build();
  }

  void init_memory(mem::SparseMemory& memory, const WorkloadParams& p,
                   u32 total_threads) const override {
    const u64 total = p.iters_per_thread * total_threads;
    for (u64 k = 0; k < total; ++k) {
      memory.write_u64(layout::kArrayA + k * 8,
                       index_at(p.seed + 5, k, 1u << 30));
    }
    for (u64 j = 0; j < kBins * total_threads; ++j) {
      memory.write_u64(layout::kArrayC + j * 8, 0);
    }
  }

  RegContext thread_regs(const WorkloadParams& p, u32 gtid,
                         u32 /*total*/) const override {
    RegContext regs{};
    regs[0] = layout::kArrayA + gtid * p.iters_per_thread * 8;
    regs[1] = layout::kArrayC + gtid * kBins * 8;
    regs[2] = p.iters_per_thread;
    return regs;
  }

  bool check(const mem::SparseMemory& memory, const WorkloadParams& p,
             u32 total_threads, std::string* why) const override {
    for (u32 t = 0; t < total_threads; ++t) {
      std::vector<u64> bins(kBins, 0);
      for (u64 i = 0; i < p.iters_per_thread; ++i) {
        const u64 k = t * p.iters_per_thread + i;
        ++bins[index_at(p.seed + 5, k, 1u << 30) & (kBins - 1)];
      }
      const Addr base = layout::kArrayC + t * kBins * 8;
      for (u64 j = 0; j < kBins; ++j) {
        if (!expect_eq(memory.read_u64(base + j * 8), bins[j],
                       "hist thread " + std::to_string(t) + " bin " +
                           std::to_string(j),
                       why)) {
          return false;
        }
      }
    }
    return true;
  }
};

// ---------------------------------------------------------------------------
// spmv — CSR sparse matrix-vector product, 8 nonzeros per row
// (nested loops: rowptr/y registers live only in the outer loop)
// ---------------------------------------------------------------------------
class SpmvWorkload final : public Workload {
 public:
  static constexpr u64 kNnzPerRow = 8;

  std::string name() const override { return "spmv"; }
  std::string description() const override {
    return "CSR sparse matrix-vector product (nested loops)";
  }
  u32 active_regs() const override { return 9; }

  u64 rows_per_thread(const WorkloadParams& p) const {
    return std::max<u64>(1, p.iters_per_thread / kNnzPerRow);
  }

  kasm::Program program(const WorkloadParams&) const override {
    ProgramBuilder b;
    // x0 = &rowptr[start_row], x1 = colidx, x2 = vals, x3 = xvec,
    // x4 = &y[start_row], x5 = rows.
    b.label("outer");
    b.ldr(X(6), X(0), 0);    // row start
    b.ldr(X(7), X(0), 8);    // row end
    b.mov_imm(X(8), 0);      // acc = 0.0
    b.cmp(X(6), X(7));
    b.b_cond(Cond::kGe, "store");
    b.label("inner");
    b.ldr(X(9), X(1), X(6), 3);    // col
    b.ldr(X(10), X(2), X(6), 3);   // val
    b.ldr(X(11), X(3), X(9), 3);   // x[col]
    b.fmadd(X(8), X(10), X(11), X(8));
    b.add_imm(X(6), X(6), 1);
    b.cmp(X(6), X(7));
    b.b_cond(Cond::kLt, "inner");
    b.label("store");
    b.str_post(X(8), X(4), 8);
    b.add_imm(X(0), X(0), 8);
    b.sub_imm(X(5), X(5), 1);
    b.cbnz(X(5), "outer");
    b.halt();
    return b.build();
  }

  void init_memory(mem::SparseMemory& memory, const WorkloadParams& p,
                   u32 total_threads) const override {
    const u64 rows = rows_per_thread(p) * total_threads;
    const u64 nnz = rows * kNnzPerRow;
    for (u64 r = 0; r <= rows; ++r) {
      memory.write_u64(layout::kArrayD + r * 8, r * kNnzPerRow);
    }
    for (u64 e = 0; e < nnz; ++e) {
      memory.write_u64(layout::kArrayA + e * 8,
                       index_at(p.seed + 9, e, p.elements));
      memory.write_f64(layout::kArrayB + e * 8, f64_value_b(e));
    }
    for (u64 j = 0; j < p.elements; ++j) {
      memory.write_f64(layout::kArrayE + j * 8, f64_value_a(j));
    }
  }

  RegContext thread_regs(const WorkloadParams& p, u32 gtid,
                         u32 /*total*/) const override {
    const u64 start_row = gtid * rows_per_thread(p);
    RegContext regs{};
    regs[0] = layout::kArrayD + start_row * 8;
    regs[1] = layout::kArrayA;
    regs[2] = layout::kArrayB;
    regs[3] = layout::kArrayE;
    regs[4] = layout::kArrayC + start_row * 8;
    regs[5] = rows_per_thread(p);
    return regs;
  }

  bool check(const mem::SparseMemory& memory, const WorkloadParams& p,
             u32 total_threads, std::string* why) const override {
    const u64 rows = rows_per_thread(p) * total_threads;
    for (u64 r = 0; r < rows; ++r) {
      double acc = 0.0;
      for (u64 e = r * kNnzPerRow; e < (r + 1) * kNnzPerRow; ++e) {
        const u64 col = index_at(p.seed + 9, e, p.elements);
        acc = acc + f64_value_b(e) * f64_value_a(col);
      }
      if (!expect_eq(memory.read_u64(layout::kArrayC + r * 8),
                     f64_to_bits(acc), "spmv row " + std::to_string(r),
                     why)) {
        return false;
      }
    }
    return true;
  }
};

// ---------------------------------------------------------------------------
// gather_wide — gather whose outer loop consumes 8 additional
// registers. With max_regs >= 15 they live in the register context;
// with fewer, the "compiler" (this generator) spills them to scratch
// memory and reloads them in the outer loop — the register-reduction
// experiment of Section 4.2.
// ---------------------------------------------------------------------------
class GatherWideWorkload final : public Workload {
 public:
  static constexpr u64 kBlock = 64;  // inner iterations per outer round
  static constexpr u32 kWide = 8;    // outer-loop registers x10..x17

  std::string name() const override { return "gather_wide"; }
  std::string description() const override {
    return "gather with 8 outer-loop registers (register-reduction knob)";
  }
  u32 active_regs() const override { return 6; }

  kasm::Program program(const WorkloadParams& p) const override {
    const bool reduced = p.max_regs < 15;
    ProgramBuilder b;
    // x0=&A, x1=B, x2=outer rounds, x3=acc, x6=result, x9=scratch base,
    // x10..x17 = wide constants (full-register variant only).
    b.label("outer");
    b.mov_imm(X(4), kBlock);
    b.label("inner");
    b.ldr_post(X(5), X(0), 8);
    b.ldr(X(7), X(1), X(5), 3);
    b.add(X(3), X(3), X(7));
    b.sub_imm(X(4), X(4), 1);
    b.cbnz(X(4), "inner");
    if (reduced) {
      // Outer-loop values were spilled by the compiler: reload each,
      // accumulate, through a single temporary.
      for (u32 w = 0; w < kWide; ++w) {
        b.ldr(X(5), X(9), static_cast<i64>(w * 8));
        b.add(X(3), X(3), X(5));
      }
    } else {
      for (u32 w = 0; w < kWide; ++w) {
        b.add(X(3), X(3), X(10 + static_cast<int>(w)));
      }
    }
    b.sub_imm(X(2), X(2), 1);
    b.cbnz(X(2), "outer");
    b.str(X(3), X(6), 0);
    b.halt();
    return b.build();
  }

  u64 rounds(const WorkloadParams& p) const {
    return std::max<u64>(1, p.iters_per_thread / kBlock);
  }

  void init_memory(mem::SparseMemory& memory, const WorkloadParams& p,
                   u32 total_threads) const override {
    const u64 total = rounds(p) * kBlock * total_threads;
    for (u64 k = 0; k < total; ++k) {
      memory.write_u64(layout::kArrayA + k * 8,
                       index_at(p.seed, k, p.elements));
    }
    for (u64 j = 0; j < p.elements; ++j) {
      memory.write_u64(layout::kArrayB + j * 8, int_value_at(j));
    }
    // Spill slots for the reduced-register variant.
    for (u32 t = 0; t < total_threads; ++t) {
      for (u32 w = 0; w < kWide; ++w) {
        memory.write_u64(layout::scratch_addr(t) + w * 8, wide_value(t, w));
      }
    }
  }

  static u64 wide_value(u32 gtid, u32 w) { return 1000 + 17ull * gtid + w; }

  RegContext thread_regs(const WorkloadParams& p, u32 gtid,
                         u32 /*total*/) const override {
    RegContext regs{};
    regs[0] = layout::kArrayA + gtid * rounds(p) * kBlock * 8;
    regs[1] = layout::kArrayB;
    regs[2] = rounds(p);
    regs[3] = 0;
    regs[6] = layout::result_addr(gtid);
    regs[9] = layout::scratch_addr(gtid);
    for (u32 w = 0; w < kWide; ++w) regs[10 + w] = wide_value(gtid, w);
    return regs;
  }

  bool check(const mem::SparseMemory& memory, const WorkloadParams& p,
             u32 total_threads, std::string* why) const override {
    for (u32 t = 0; t < total_threads; ++t) {
      u64 acc = 0;
      const u64 n = rounds(p);
      for (u64 r = 0; r < n; ++r) {
        for (u64 i = 0; i < kBlock; ++i) {
          const u64 k = t * n * kBlock + r * kBlock + i;
          acc += int_value_at(index_at(p.seed, k, p.elements));
        }
        for (u32 w = 0; w < kWide; ++w) acc += wide_value(t, w);
      }
      if (!expect_eq(memory.read_u64(layout::result_addr(t)), acc,
                     "gather_wide thread " + std::to_string(t), why)) {
        return false;
      }
    }
    return true;
  }
};

}  // namespace

const std::vector<const Workload*>& workload_registry() {
  static const GatherWorkload gather;
  static const GatherLocalWorkload gather_local;
  static const ScatterWorkload scatter;
  static const StrideWorkload stride;
  static const MaeboWorkload maebo;
  static const PchaseWorkload pchase;
  static const TriadWorkload triad;
  static const ReduceWorkload reduce;
  static const CopyWorkload copy;
  static const Stencil3Workload stencil3;
  static const HistWorkload hist;
  static const SpmvWorkload spmv;
  static const GatherWideWorkload gather_wide;
  static const std::vector<const Workload*> registry = {
      &gather, &gather_local, &scatter, &stride,      &maebo,
      &pchase, &triad,        &reduce,  &copy,        &stencil3,
      &hist,   &spmv,         &gather_wide,
  };
  return registry;
}

}  // namespace virec::workloads
