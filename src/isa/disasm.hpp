// Textual rendering of instructions, round-trippable through the
// assembler in kasm/assembler.hpp.
#pragma once

#include <string>

#include "isa/inst.hpp"

namespace virec::isa {

/// Render @p reg as "x7" / "xzr".
std::string reg_name(RegId reg);

/// Render one instruction in assembler syntax. Branch targets are
/// printed as absolute instruction indices ("@12").
std::string disasm(const Inst& inst);

}  // namespace virec::isa
