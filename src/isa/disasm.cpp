#include "isa/disasm.hpp"

#include <sstream>

namespace virec::isa {

std::string reg_name(RegId reg) {
  if (reg == kZeroReg) return "xzr";
  if (reg == kNoReg) return "x?";
  return "x" + std::to_string(static_cast<int>(reg));
}

namespace {

std::string mem_operand(const Inst& inst) {
  std::ostringstream os;
  switch (inst.mem_mode) {
    case MemMode::kOffset:
      os << '[' << reg_name(inst.rn);
      if (inst.imm != 0) os << ", #" << inst.imm;
      os << ']';
      break;
    case MemMode::kPreIndex:
      os << '[' << reg_name(inst.rn) << ", #" << inst.imm << "]!";
      break;
    case MemMode::kPostIndex:
      os << '[' << reg_name(inst.rn) << "], #" << inst.imm;
      break;
    case MemMode::kRegOffset:
      os << '[' << reg_name(inst.rn) << ", " << reg_name(inst.rm);
      if (inst.shift != 0) os << ", lsl #" << static_cast<int>(inst.shift);
      os << ']';
      break;
  }
  return os.str();
}

}  // namespace

std::string disasm(const Inst& inst) {
  std::ostringstream os;
  switch (inst.op) {
    case Op::kNop:
    case Op::kHalt:
      os << op_name(inst.op);
      break;
    case Op::kRet:
      os << "ret";
      if (inst.rn != kNoReg && inst.rn != 30) os << ' ' << reg_name(inst.rn);
      break;
    case Op::kB:
    case Op::kBl:
      os << op_name(inst.op) << " @" << inst.target;
      break;
    case Op::kBcond:
      os << "b." << cond_name(inst.cond) << " @" << inst.target;
      break;
    case Op::kCbz:
    case Op::kCbnz:
      os << op_name(inst.op) << ' ' << reg_name(inst.rn) << ", @"
         << inst.target;
      break;
    case Op::kCmp:
      os << "cmp " << reg_name(inst.rn) << ", " << reg_name(inst.rm);
      break;
    case Op::kCmpImm:
      os << "cmp " << reg_name(inst.rn) << ", #" << inst.imm;
      break;
    case Op::kMov:
      os << "mov " << reg_name(inst.rd) << ", " << reg_name(inst.rm);
      break;
    case Op::kMovImm:
      os << "mov " << reg_name(inst.rd) << ", #" << inst.imm;
      break;
    case Op::kMovk:
      os << "movk " << reg_name(inst.rd) << ", #" << inst.imm << ", lsl #"
         << 16 * static_cast<int>(inst.imm2);
      break;
    case Op::kMvn:
      os << "mvn " << reg_name(inst.rd) << ", " << reg_name(inst.rm);
      break;
    case Op::kMadd:
    case Op::kFmadd:
      os << op_name(inst.op) << ' ' << reg_name(inst.rd) << ", "
         << reg_name(inst.rn) << ", " << reg_name(inst.rm) << ", "
         << reg_name(inst.ra);
      break;
    case Op::kScvtf:
    case Op::kFcvtzs:
      os << op_name(inst.op) << ' ' << reg_name(inst.rd) << ", "
         << reg_name(inst.rn);
      break;
    case Op::kAddImm:
    case Op::kSubImm:
    case Op::kAndImm:
    case Op::kOrrImm:
    case Op::kEorImm:
    case Op::kLslImm:
    case Op::kLsrImm:
    case Op::kAsrImm:
      os << op_name(inst.op) << ' ' << reg_name(inst.rd) << ", "
         << reg_name(inst.rn) << ", #" << inst.imm;
      break;
    default:
      if (is_mem(inst.op)) {
        os << op_name(inst.op) << ' ' << reg_name(inst.rd) << ", "
           << mem_operand(inst);
      } else {
        // Three-operand register ALU / FP ops.
        os << op_name(inst.op) << ' ' << reg_name(inst.rd) << ", "
           << reg_name(inst.rn) << ", " << reg_name(inst.rm);
      }
      break;
  }
  return os.str();
}

}  // namespace virec::isa
