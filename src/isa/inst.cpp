#include "isa/inst.hpp"

namespace virec::isa {

bool is_load(Op op) {
  switch (op) {
    case Op::kLdr:
    case Op::kLdrw:
    case Op::kLdrsw:
    case Op::kLdrh:
    case Op::kLdrb:
      return true;
    default:
      return false;
  }
}

bool is_store(Op op) {
  switch (op) {
    case Op::kStr:
    case Op::kStrw:
    case Op::kStrh:
    case Op::kStrb:
      return true;
    default:
      return false;
  }
}

bool is_branch(Op op) {
  switch (op) {
    case Op::kB:
    case Op::kBcond:
    case Op::kCbz:
    case Op::kCbnz:
    case Op::kBl:
    case Op::kRet:
      return true;
    default:
      return false;
  }
}

bool is_cond_branch(Op op) {
  return op == Op::kBcond || op == Op::kCbz || op == Op::kCbnz;
}

bool writes_flags(Op op) { return op == Op::kCmp || op == Op::kCmpImm; }

bool reads_flags(Op op) { return op == Op::kBcond; }

bool is_fp(Op op) {
  switch (op) {
    case Op::kFadd:
    case Op::kFsub:
    case Op::kFmul:
    case Op::kFdiv:
    case Op::kFmadd:
    case Op::kScvtf:
    case Op::kFcvtzs:
      return true;
    default:
      return false;
  }
}

u32 mem_size(Op op) {
  switch (op) {
    case Op::kLdr:
    case Op::kStr:
      return 8;
    case Op::kLdrw:
    case Op::kLdrsw:
    case Op::kStrw:
      return 4;
    case Op::kLdrh:
    case Op::kStrh:
      return 2;
    case Op::kLdrb:
    case Op::kStrb:
      return 1;
    default:
      return 0;
  }
}

u32 op_latency(Op op) {
  switch (op) {
    case Op::kMul:
    case Op::kMadd:
      return 3;
    case Op::kUdiv:
    case Op::kSdiv:
      return 12;
    case Op::kFadd:
    case Op::kFsub:
    case Op::kFmul:
    case Op::kScvtf:
    case Op::kFcvtzs:
      return 4;
    case Op::kFmadd:
      return 5;
    case Op::kFdiv:
      return 15;
    default:
      return 1;
  }
}

RegList src_regs(const Inst& inst) {
  RegList out;
  switch (inst.op) {
    case Op::kNop:
    case Op::kHalt:
    case Op::kB:
    case Op::kBcond:
    case Op::kBl:
    case Op::kMovImm:
      break;
    case Op::kRet:
      out.push(inst.rn == kNoReg ? RegId{30} : inst.rn);
      break;
    case Op::kCbz:
    case Op::kCbnz:
      out.push(inst.rn);
      break;
    case Op::kMov:
    case Op::kMvn:
      out.push(inst.rm);
      break;
    case Op::kMovk:
      out.push(inst.rd);  // read-modify-write of the destination
      break;
    case Op::kCmp:
      out.push(inst.rn);
      out.push(inst.rm);
      break;
    case Op::kCmpImm:
      out.push(inst.rn);
      break;
    case Op::kMadd:
    case Op::kFmadd:
      out.push(inst.rn);
      out.push(inst.rm);
      out.push(inst.ra);
      break;
    case Op::kScvtf:
    case Op::kFcvtzs:
      out.push(inst.rn);
      break;
    default:
      if (is_load(inst.op)) {
        out.push(inst.rn);
        if (inst.mem_mode == MemMode::kRegOffset) out.push(inst.rm);
      } else if (is_store(inst.op)) {
        out.push(inst.rd);  // value to store
        out.push(inst.rn);
        if (inst.mem_mode == MemMode::kRegOffset) out.push(inst.rm);
      } else if (inst.op == Op::kAddImm || inst.op == Op::kSubImm ||
                 inst.op == Op::kAndImm || inst.op == Op::kOrrImm ||
                 inst.op == Op::kEorImm || inst.op == Op::kLslImm ||
                 inst.op == Op::kLsrImm || inst.op == Op::kAsrImm) {
        out.push(inst.rn);
      } else {
        // Two-source register ALU ops.
        out.push(inst.rn);
        out.push(inst.rm);
      }
      break;
  }
  return out;
}

RegList dst_regs(const Inst& inst) {
  RegList out;
  switch (inst.op) {
    case Op::kNop:
    case Op::kHalt:
    case Op::kB:
    case Op::kBcond:
    case Op::kCbz:
    case Op::kCbnz:
    case Op::kRet:
    case Op::kCmp:
    case Op::kCmpImm:
      break;
    case Op::kBl:
      out.push(RegId{30});
      break;
    default:
      if (is_store(inst.op)) {
        // Stores have no value destination; fall through to writeback.
      } else {
        out.push(inst.rd);
      }
      break;
  }
  if (is_mem(inst.op) && (inst.mem_mode == MemMode::kPreIndex ||
                          inst.mem_mode == MemMode::kPostIndex)) {
    out.push(inst.rn);  // base register writeback
  }
  return out;
}

RegList all_regs(const Inst& inst) {
  const RegList s = src_regs(inst);
  const RegList d = dst_regs(inst);
  RegList out;
  auto push_unique = [&out](RegId reg) {
    for (u32 j = 0; j < out.count; ++j) {
      if (out.regs[j] == reg) return;
    }
    out.push(reg);
  };
  for (u32 i = 0; i < s.count; ++i) push_unique(s.regs[i]);
  for (u32 i = 0; i < d.count; ++i) push_unique(d.regs[i]);
  return out;
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kUdiv: return "udiv";
    case Op::kSdiv: return "sdiv";
    case Op::kAnd: return "and";
    case Op::kOrr: return "orr";
    case Op::kEor: return "eor";
    case Op::kLsl: return "lsl";
    case Op::kLsr: return "lsr";
    case Op::kAsr: return "asr";
    case Op::kAddImm: return "add";
    case Op::kSubImm: return "sub";
    case Op::kAndImm: return "and";
    case Op::kOrrImm: return "orr";
    case Op::kEorImm: return "eor";
    case Op::kLslImm: return "lsl";
    case Op::kLsrImm: return "lsr";
    case Op::kAsrImm: return "asr";
    case Op::kMov: return "mov";
    case Op::kMovImm: return "mov";
    case Op::kMovk: return "movk";
    case Op::kMvn: return "mvn";
    case Op::kMadd: return "madd";
    case Op::kFadd: return "fadd";
    case Op::kFsub: return "fsub";
    case Op::kFmul: return "fmul";
    case Op::kFdiv: return "fdiv";
    case Op::kFmadd: return "fmadd";
    case Op::kScvtf: return "scvtf";
    case Op::kFcvtzs: return "fcvtzs";
    case Op::kCmp: return "cmp";
    case Op::kCmpImm: return "cmp";
    case Op::kB: return "b";
    case Op::kBcond: return "b.";
    case Op::kCbz: return "cbz";
    case Op::kCbnz: return "cbnz";
    case Op::kBl: return "bl";
    case Op::kRet: return "ret";
    case Op::kLdr: return "ldr";
    case Op::kLdrw: return "ldrw";
    case Op::kLdrsw: return "ldrsw";
    case Op::kLdrh: return "ldrh";
    case Op::kLdrb: return "ldrb";
    case Op::kStr: return "str";
    case Op::kStrw: return "strw";
    case Op::kStrh: return "strh";
    case Op::kStrb: return "strb";
    case Op::kHalt: return "halt";
  }
  return "?";
}

const char* cond_name(Cond cond) {
  switch (cond) {
    case Cond::kEq: return "eq";
    case Cond::kNe: return "ne";
    case Cond::kLt: return "lt";
    case Cond::kLe: return "le";
    case Cond::kGt: return "gt";
    case Cond::kGe: return "ge";
    case Cond::kLo: return "lo";
    case Cond::kLs: return "ls";
    case Cond::kHi: return "hi";
    case Cond::kHs: return "hs";
    case Cond::kAl: return "al";
  }
  return "?";
}

}  // namespace virec::isa
