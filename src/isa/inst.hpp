// The NMP ISA: a small AArch64-flavoured 64-bit instruction set used by
// the simulated near-memory cores. It is deliberately close to the
// subset of AArch64 that memory-intensive kernels compile to (loads and
// stores with register/immediate addressing and pre/post-index
// writeback, ALU ops, compare + conditional branches), so the register
// access patterns the paper studies are reproduced faithfully.
#pragma once

#include <array>
#include <cstddef>

#include "common/types.hpp"

namespace virec::isa {

/// Architectural register identifier: x0..x30 are general purpose,
/// index 31 is xzr (reads as zero, writes discarded).
using RegId = u8;
inline constexpr RegId kZeroReg = 31;
inline constexpr RegId kNoReg = 0xff;
inline constexpr int kNumArchRegs = 32;  // x0..x30 + xzr
inline constexpr int kNumAllocatableRegs = 31;  // excludes xzr

enum class Op : u8 {
  kNop,
  // ALU, register operands: rd = rn OP rm.
  kAdd,
  kSub,
  kMul,
  kUdiv,
  kSdiv,
  kAnd,
  kOrr,
  kEor,
  kLsl,
  kLsr,
  kAsr,
  // ALU, immediate: rd = rn OP imm.
  kAddImm,
  kSubImm,
  kAndImm,
  kOrrImm,
  kEorImm,
  kLslImm,
  kLsrImm,
  kAsrImm,
  // Moves.
  kMov,     // rd = rm
  kMovImm,  // rd = imm (64-bit immediate, assembler sugar over movz/movk)
  kMovk,    // rd[imm2*16 +: 16] = imm (keep others)
  kMvn,     // rd = ~rm
  // Multiply-add: rd = ra + rn*rm.
  kMadd,
  // Floating point on the unified register file; register contents are
  // interpreted as IEEE-754 double bit patterns.
  kFadd,
  kFsub,
  kFmul,
  kFdiv,
  kFmadd,  // rd = ra + rn*rm
  kScvtf,  // rd = (double)(i64)rn
  kFcvtzs, // rd = (i64)(double)rn
  // Compare: sets NZCV from rn - (rm|imm).
  kCmp,
  kCmpImm,
  // Branches. Targets are absolute instruction indices.
  kB,
  kBcond,
  kCbz,
  kCbnz,
  kBl,
  kRet,
  // Memory. Loads/stores of 1/2/4/8 bytes; W-suffixed 4-byte forms
  // zero-extend, kLdrsw sign-extends.
  kLdr,
  kLdrw,
  kLdrsw,
  kLdrh,
  kLdrb,
  kStr,
  kStrw,
  kStrh,
  kStrb,
  // Control.
  kHalt,
};

/// Condition codes for kBcond (subset of AArch64, signed + unsigned).
enum class Cond : u8 { kEq, kNe, kLt, kLe, kGt, kGe, kLo, kLs, kHi, kHs, kAl };

/// Addressing mode for memory ops.
enum class MemMode : u8 {
  kOffset,    // [rn, #imm]
  kPreIndex,  // [rn, #imm]!   (rn += imm before access)
  kPostIndex, // [rn], #imm    (rn += imm after access)
  kRegOffset, // [rn, rm, lsl #shift]
};

/// One decoded instruction. Fixed-size POD; the pipeline copies these
/// freely through its stage latches.
struct Inst {
  Op op = Op::kNop;
  RegId rd = kNoReg;  // destination (loads: loaded reg; stores: stored reg)
  RegId rn = kNoReg;  // first source / base register
  RegId rm = kNoReg;  // second source / index register
  RegId ra = kNoReg;  // third source (madd/fmadd accumulator)
  Cond cond = Cond::kAl;
  MemMode mem_mode = MemMode::kOffset;
  u8 shift = 0;    // register-offset shift amount
  u8 imm2 = 0;     // movk 16-bit lane selector
  i64 imm = 0;     // immediate operand / memory displacement
  i64 target = -1; // branch target (absolute instruction index)
};

/// Instruction classification queries.
bool is_load(Op op);
bool is_store(Op op);
inline bool is_mem(Op op) { return is_load(op) || is_store(op); }
bool is_branch(Op op);
bool is_cond_branch(Op op);
bool writes_flags(Op op);
bool reads_flags(Op op);
bool is_fp(Op op);
inline bool is_halt(Op op) { return op == Op::kHalt; }

/// Access size in bytes for memory ops (0 for non-memory).
u32 mem_size(Op op);

/// Fixed execute latency in cycles for non-memory ops (memory ops take
/// the dcache-determined latency instead).
u32 op_latency(Op op);

/// Small fixed-capacity register list used for source/destination
/// queries; at most 4 registers ever participate in one instruction.
struct RegList {
  std::array<RegId, 4> regs{};
  u32 count = 0;
  void push(RegId r) {
    if (r != kNoReg && r != kZeroReg) regs[count++] = r;
  }
};

/// Architectural registers read by @p inst (excluding xzr).
RegList src_regs(const Inst& inst);
/// Architectural registers written by @p inst (excluding xzr). Includes
/// the base register for pre/post-index addressing.
RegList dst_regs(const Inst& inst);
/// Union of src and dst registers, deduplicated.
RegList all_regs(const Inst& inst);

const char* op_name(Op op);
const char* cond_name(Cond cond);

}  // namespace virec::isa
