// Architectural semantics of the NMP ISA.
//
// Execution is split in two phases to match the pipeline model:
//  * compute_mem_addr() is called when a memory instruction reaches the
//    MEM stage (all older instructions have committed, so register
//    values are architectural), and
//  * execute() is called at commit, mutating registers/memory/flags and
//    returning the successor PC. Flushed (never-committed) instructions
//    therefore have no architectural side effects and can be replayed
//    safely after a context switch — the property ViReC's rollback
//    queue relies on.
#pragma once

#include "isa/inst.hpp"
#include "mem/sparse_memory.hpp"

namespace virec::isa {

/// Per-thread functional register access. Implemented by the context
/// managers (banked, software, prefetch, ViReC); the ViReC manager
/// reads through the physical register file and falls back to the
/// backing store for evicted entries.
class RegisterFileIO {
 public:
  virtual ~RegisterFileIO() = default;
  /// Architectural read of x0..x30; callers never pass xzr.
  virtual u64 read_reg(int tid, RegId reg) = 0;
  /// Architectural write of x0..x30; callers never pass xzr.
  virtual void write_reg(int tid, RegId reg, u64 value) = 0;
};

/// NZCV flag bits (per-thread system register).
inline constexpr u8 kFlagN = 0x8;
inline constexpr u8 kFlagZ = 0x4;
inline constexpr u8 kFlagC = 0x2;
inline constexpr u8 kFlagV = 0x1;

/// Evaluate @p cond against NZCV flags.
bool cond_holds(Cond cond, u8 nzcv);

/// Effective address of a memory instruction using current register
/// values. For post-index addressing this is the un-incremented base.
Addr compute_mem_addr(const Inst& inst, int tid, RegisterFileIO& rf);

struct ExecResult {
  u64 next_pc = 0;
  bool taken_branch = false;
  bool halted = false;
};

/// Commit @p inst: perform its register/memory/flag effects and return
/// the successor PC (instruction index). @p pc is the instruction's own
/// index.
ExecResult execute(const Inst& inst, u64 pc, int tid, RegisterFileIO& rf,
                   mem::SparseMemory& memory, u8& nzcv);

}  // namespace virec::isa
