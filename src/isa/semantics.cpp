#include "isa/semantics.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace virec::isa {

namespace {

u64 read(RegisterFileIO& rf, int tid, RegId r) {
  return r == kZeroReg ? 0 : rf.read_reg(tid, r);
}

void write(RegisterFileIO& rf, int tid, RegId r, u64 v) {
  if (r != kZeroReg) rf.write_reg(tid, r, v);
}

double as_f64(u64 bits) {
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

u64 as_bits(double v) {
  u64 bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

// AArch64 SDIV semantics: x/0 == 0 and INT64_MIN / -1 == INT64_MIN.
// The latter is signed-overflow UB if evaluated with host `/`.
u64 sdiv64(i64 a, i64 b) {
  if (b == 0) return 0;
  if (a == std::numeric_limits<i64>::min() && b == -1) {
    return static_cast<u64>(a);
  }
  return static_cast<u64>(a / b);
}

// AArch64 FCVTZS semantics: NaN converts to 0, out-of-range values
// saturate. Host float->int casts are UB outside [INT64_MIN, INT64_MAX].
u64 fcvtzs64(double v) {
  if (std::isnan(v)) return 0;
  if (v >= 9223372036854775808.0) {  // 2^63
    return static_cast<u64>(std::numeric_limits<i64>::max());
  }
  if (v < -9223372036854775808.0) {  // -2^63
    return static_cast<u64>(std::numeric_limits<i64>::min());
  }
  return static_cast<u64>(static_cast<i64>(v));
}

u8 flags_from_sub(u64 a, u64 b) {
  const u64 res = a - b;
  const bool n = static_cast<i64>(res) < 0;
  const bool z = res == 0;
  const bool c = a >= b;  // no borrow
  const bool v = (static_cast<i64>(a) < 0) != (static_cast<i64>(b) < 0) &&
                 (static_cast<i64>(res) < 0) != (static_cast<i64>(a) < 0);
  return static_cast<u8>((n ? kFlagN : 0) | (z ? kFlagZ : 0) |
                         (c ? kFlagC : 0) | (v ? kFlagV : 0));
}

}  // namespace

bool cond_holds(Cond cond, u8 nzcv) {
  const bool n = nzcv & kFlagN;
  const bool z = nzcv & kFlagZ;
  const bool c = nzcv & kFlagC;
  const bool v = nzcv & kFlagV;
  switch (cond) {
    case Cond::kEq: return z;
    case Cond::kNe: return !z;
    case Cond::kLt: return n != v;
    case Cond::kLe: return z || n != v;
    case Cond::kGt: return !z && n == v;
    case Cond::kGe: return n == v;
    case Cond::kLo: return !c;
    case Cond::kLs: return !c || z;
    case Cond::kHi: return c && !z;
    case Cond::kHs: return c;
    case Cond::kAl: return true;
  }
  return false;
}

Addr compute_mem_addr(const Inst& inst, int tid, RegisterFileIO& rf) {
  const u64 base = read(rf, tid, inst.rn);
  switch (inst.mem_mode) {
    case MemMode::kOffset:
    case MemMode::kPreIndex:
      return base + static_cast<u64>(inst.imm);
    case MemMode::kPostIndex:
      return base;
    case MemMode::kRegOffset:
      return base + (read(rf, tid, inst.rm) << inst.shift);
  }
  return base;
}

ExecResult execute(const Inst& inst, u64 pc, int tid, RegisterFileIO& rf,
                   mem::SparseMemory& memory, u8& nzcv) {
  ExecResult result;
  result.next_pc = pc + 1;

  auto rd_write = [&](u64 v) { write(rf, tid, inst.rd, v); };
  const auto rn = [&] { return read(rf, tid, inst.rn); };
  const auto rm = [&] { return read(rf, tid, inst.rm); };
  const auto ra = [&] { return read(rf, tid, inst.ra); };
  const u64 imm = static_cast<u64>(inst.imm);

  switch (inst.op) {
    case Op::kNop:
      break;
    case Op::kHalt:
      result.halted = true;
      result.next_pc = pc;
      break;

    case Op::kAdd: rd_write(rn() + rm()); break;
    case Op::kSub: rd_write(rn() - rm()); break;
    case Op::kMul: rd_write(rn() * rm()); break;
    case Op::kUdiv: rd_write(rm() == 0 ? 0 : rn() / rm()); break;
    case Op::kSdiv:
      rd_write(sdiv64(static_cast<i64>(rn()), static_cast<i64>(rm())));
      break;
    case Op::kAnd: rd_write(rn() & rm()); break;
    case Op::kOrr: rd_write(rn() | rm()); break;
    case Op::kEor: rd_write(rn() ^ rm()); break;
    case Op::kLsl: rd_write(rn() << (rm() & 63)); break;
    case Op::kLsr: rd_write(rn() >> (rm() & 63)); break;
    case Op::kAsr:
      rd_write(static_cast<u64>(static_cast<i64>(rn()) >>
                                (rm() & 63)));
      break;

    case Op::kAddImm: rd_write(rn() + imm); break;
    case Op::kSubImm: rd_write(rn() - imm); break;
    case Op::kAndImm: rd_write(rn() & imm); break;
    case Op::kOrrImm: rd_write(rn() | imm); break;
    case Op::kEorImm: rd_write(rn() ^ imm); break;
    case Op::kLslImm: rd_write(rn() << (imm & 63)); break;
    case Op::kLsrImm: rd_write(rn() >> (imm & 63)); break;
    case Op::kAsrImm:
      rd_write(static_cast<u64>(static_cast<i64>(rn()) >> (imm & 63)));
      break;

    case Op::kMov: rd_write(rm()); break;
    case Op::kMovImm: rd_write(imm); break;
    case Op::kMovk: {
      const u32 lane = inst.imm2 & 3;
      const u64 mask = u64{0xffff} << (16 * lane);
      const u64 old = read(rf, tid, inst.rd);
      rd_write((old & ~mask) | ((imm & 0xffff) << (16 * lane)));
      break;
    }
    case Op::kMvn: rd_write(~rm()); break;
    case Op::kMadd: rd_write(ra() + rn() * rm()); break;

    case Op::kFadd: rd_write(as_bits(as_f64(rn()) + as_f64(rm()))); break;
    case Op::kFsub: rd_write(as_bits(as_f64(rn()) - as_f64(rm()))); break;
    case Op::kFmul: rd_write(as_bits(as_f64(rn()) * as_f64(rm()))); break;
    case Op::kFdiv: rd_write(as_bits(as_f64(rn()) / as_f64(rm()))); break;
    case Op::kFmadd:
      rd_write(as_bits(as_f64(ra()) + as_f64(rn()) * as_f64(rm())));
      break;
    case Op::kScvtf:
      rd_write(as_bits(static_cast<double>(static_cast<i64>(rn()))));
      break;
    case Op::kFcvtzs:
      rd_write(fcvtzs64(as_f64(rn())));
      break;

    case Op::kCmp: nzcv = flags_from_sub(rn(), rm()); break;
    case Op::kCmpImm: nzcv = flags_from_sub(rn(), imm); break;

    case Op::kB:
      result.next_pc = static_cast<u64>(inst.target);
      result.taken_branch = true;
      break;
    case Op::kBcond:
      if (cond_holds(inst.cond, nzcv)) {
        result.next_pc = static_cast<u64>(inst.target);
        result.taken_branch = true;
      }
      break;
    case Op::kCbz:
      if (rn() == 0) {
        result.next_pc = static_cast<u64>(inst.target);
        result.taken_branch = true;
      }
      break;
    case Op::kCbnz:
      if (rn() != 0) {
        result.next_pc = static_cast<u64>(inst.target);
        result.taken_branch = true;
      }
      break;
    case Op::kBl:
      write(rf, tid, RegId{30}, pc + 1);
      result.next_pc = static_cast<u64>(inst.target);
      result.taken_branch = true;
      break;
    case Op::kRet: {
      const RegId link = inst.rn == kNoReg ? RegId{30} : inst.rn;
      result.next_pc = read(rf, tid, link);
      result.taken_branch = true;
      break;
    }

    default: {
      if (!is_mem(inst.op)) {
        throw std::logic_error("execute: unhandled opcode");
      }
      const Addr addr = compute_mem_addr(inst, tid, rf);
      const u32 size = mem_size(inst.op);
      if (is_load(inst.op)) {
        u64 value = memory.read(addr, size);
        if (inst.op == Op::kLdrsw) {
          value = static_cast<u64>(static_cast<i64>(static_cast<i32>(value)));
        }
        rd_write(value);
      } else {
        const u64 value = inst.rd == kZeroReg ? 0 : read(rf, tid, inst.rd);
        memory.write(addr, size, value);
      }
      if (inst.mem_mode == MemMode::kPreIndex ||
          inst.mem_mode == MemMode::kPostIndex) {
        write(rf, tid, inst.rn, read(rf, tid, inst.rn) + imm);
      }
      break;
    }
  }
  return result;
}

}  // namespace virec::isa
