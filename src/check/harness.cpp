#include "check/harness.hpp"

#include <algorithm>
#include <memory>

#include "check/check.hpp"
#include "check/progen.hpp"
#include "core/virec_manager.hpp"
#include "cpu/banked_manager.hpp"
#include "cpu/cgmt_core.hpp"
#include "cpu/prefetch_manager.hpp"
#include "cpu/software_manager.hpp"
#include "mem/memory_system.hpp"

namespace virec::check {

namespace {

std::unique_ptr<cpu::ContextManager> make_manager(const HarnessSpec& spec,
                                                  const cpu::CoreEnv& env) {
  switch (spec.scheme) {
    case sim::Scheme::kBanked:
      return std::make_unique<cpu::BankedManager>(env);
    case sim::Scheme::kSoftware:
      return std::make_unique<cpu::SoftwareManager>(env);
    case sim::Scheme::kPrefetchFull:
      return std::make_unique<cpu::PrefetchManager>(env,
                                                    cpu::PrefetchMode::kFull);
    case sim::Scheme::kPrefetchExact:
      return std::make_unique<cpu::PrefetchManager>(
          env, cpu::PrefetchMode::kExact);
    case sim::Scheme::kViReC: {
      core::ViReCConfig vc;
      vc.num_phys_regs = spec.phys_regs;
      vc.policy = spec.policy;
      return std::make_unique<core::ViReCManager>(vc, env);
    }
    case sim::Scheme::kNSF:
      return std::make_unique<core::ViReCManager>(
          core::make_nsf_config(spec.phys_regs), env);
  }
  throw std::logic_error("unknown scheme");
}

// One checked single-core system, assembled by hand (the harness sits
// below sim::System in the layering so the fuzzer stays lightweight).
struct Rig {
  mem::MemorySystem ms;
  std::unique_ptr<cpu::ContextManager> manager;
  cpu::CgmtCore core;
  CheckContext check;

  Rig(const kasm::Program& program, const HarnessSpec& spec)
      : ms(mem::MemSystemConfig{}),
        manager(make_manager(spec,
                             cpu::CoreEnv{.core_id = 0,
                                          .num_threads = spec.threads,
                                          .ms = &ms})),
        core(core_config(spec),
             cpu::CoreEnv{.core_id = 0, .num_threads = spec.threads,
                          .ms = &ms},
             *manager, program),
        check(program, ms, 1, spec.threads) {
    seed_arena(ms.memory());
    for (u32 t = 0; t < spec.threads; ++t) {
      ms.memory().write_u64(ms.reg_addr(0, t, kArenaBaseReg), kArenaBase);
    }
    core.set_check(&check);
    manager->set_check(&check);
    ms.icache(0).set_check(&check);
    ms.dcache(0).set_check(&check);
    for (u32 t = 0; t < spec.threads; ++t) {
      core.start_thread(static_cast<int>(t));
    }
  }

  static cpu::CgmtCoreConfig core_config(const HarnessSpec& spec) {
    cpu::CgmtCoreConfig cc;
    cc.num_threads = spec.threads;
    cc.skip = !spec.no_skip;
    return cc;
  }
};

}  // namespace

HarnessResult run_checked(const kasm::Program& program,
                          const HarnessSpec& spec) {
  HarnessResult result;
  Rig rig(program, spec);
  // First cycle past the budget (saturating); skips are clamped here
  // so a timed-out skip run stops at the same cycle as a stepped one.
  const Cycle limit =
      spec.max_cycles + 1 == 0 ? kNeverCycle : spec.max_cycles + 1;
  try {
    while (!rig.core.done()) {
      if (!spec.no_skip && rig.core.maybe_quiet()) {
        const Cycle target = std::min(rig.core.next_event_cycle(), limit);
        if (target > rig.core.cycle() + 1) {
          rig.core.skip_to(target);
          if (rig.core.cycle() > spec.max_cycles) {
            result.timed_out = true;
            result.message = "timed out after " +
                             std::to_string(spec.max_cycles) + " cycles";
            break;
          }
          continue;
        }
      }
      rig.core.step();
      if (rig.core.cycle() > spec.max_cycles) {
        result.timed_out = true;
        result.message = "timed out after " +
                         std::to_string(spec.max_cycles) + " cycles";
        break;
      }
    }
    result.ok = !result.timed_out;
  } catch (const CheckError& e) {
    result.ok = false;
    result.message = e.what();
  }
  result.cycles = rig.core.cycle();
  result.instructions = rig.core.instructions();
  result.commits_checked = rig.check.commits_checked();
  return result;
}

bool tag_bug_detected(const kasm::Program& program, const HarnessSpec& spec) {
  HarnessSpec vspec = spec;
  vspec.scheme = sim::Scheme::kViReC;
  Rig rig(program, vspec);
  auto* manager = dynamic_cast<core::ViReCManager*>(rig.manager.get());
  if (manager == nullptr) return false;
  bool corrupted = false;
  try {
    while (!rig.core.done()) {
      rig.core.step();
      // Let the RF warm up, then swap two entries' (tid, arch) tags
      // without fixing the reverse map — the CAM-aliasing bug class.
      if (!corrupted && rig.check.commits_checked() >= 32) {
        corrupted = manager->tag_store_for_test().corrupt_swap_tags_for_test();
      }
      if (rig.core.cycle() > vspec.max_cycles) return false;
    }
  } catch (const CheckError&) {
    return corrupted;
  }
  return false;
}

}  // namespace virec::check
