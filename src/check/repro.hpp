// Standalone repro files for fuzzer-found failures.
//
// A repro is a plain-text file: `// repro <key> <value>` header lines
// carrying the failing configuration, followed by the (shrunk) program
// as a disassembly listing the kasm assembler can read back. Replay
// with `virec-sim --replay FILE` or programmatically via
// check::run_checked().
#pragma once

#include <string>

#include "check/harness.hpp"
#include "kasm/program.hpp"

namespace virec::check {

struct Repro {
  HarnessSpec spec;
  kasm::Program program;
};

/// Serialise @p spec + @p program into the repro text format.
std::string write_repro(const HarnessSpec& spec,
                        const kasm::Program& program);

/// Parse repro text (throws std::invalid_argument / kasm::AsmError on
/// malformed headers or unparseable instructions).
Repro parse_repro(const std::string& text);

/// Convenience: read @p path and parse it.
Repro load_repro(const std::string& path);

}  // namespace virec::check
