// Random-program generator shared by the differential tests and the
// fuzzing harness (apps/virec_fuzz.cpp), plus the program-shrinking
// passes the fuzzer applies to failing inputs.
//
// With `edge_ops` off the generator reproduces, byte for byte, the
// programs the original tests/test_differential.cpp generator produced
// for a given seed (the RNG consumption sequence is preserved), so
// historical seeds keep meaning. With `edge_ops` on, six extra
// instruction classes stress the ISA corner cases that motivated this
// subsystem: division by 0/-1/INT64_MIN, register-amount shifts >= 64,
// halfword-insert (movk) lane extremes, and sub-word memory traffic.
#pragma once

#include "common/types.hpp"
#include "kasm/program.hpp"
#include "mem/sparse_memory.hpp"

namespace virec::check {

/// Data arena every generated program reads and writes.
inline constexpr Addr kArenaBase = 0x4000'0000ull;
inline constexpr u64 kArenaWords = 128;
/// Holds kArenaBase; never overwritten by generated code.
inline constexpr int kArenaBaseReg = 28;
/// Loop counter; only touched by the loop bookkeeping.
inline constexpr int kLoopReg = 27;

struct ProgenOptions {
  u32 body_len = 24;
  u32 loop_iters = 40;
  /// Enable the extended edge-operand instruction classes.
  bool edge_ops = false;
};

/// Generate a random terminating program: a counted loop whose body is
/// a random mix of ALU ops, loads/stores into the arena and forward
/// conditional skips (plus edge-operand classes when enabled).
kasm::Program random_program(u64 seed, const ProgenOptions& opts);

/// Write the deterministic arena contents generated programs expect.
void seed_arena(mem::SparseMemory& memory);

/// Copy of @p program with instruction @p index removed and all branch
/// targets retargeted across the gap. Labels are dropped. Returns an
/// empty Program if the result would be structurally invalid (bad
/// target / no reachable halt), i.e. the candidate must be rejected.
kasm::Program drop_instruction(const kasm::Program& program, u64 index);

/// Copy of @p program with the loop-counter seed (mov_imm xN for
/// @p loop_reg) halved, or an empty Program if it is already 1 or the
/// instruction is absent.
kasm::Program halve_loop_iters(const kasm::Program& program,
                               int loop_reg = kLoopReg);

}  // namespace virec::check
