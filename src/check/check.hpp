// Self-checking subsystem: a lockstep reference oracle plus a hard
// runtime-invariant layer (docs/correctness.md).
//
// The oracle is a purely functional interpreter over isa::execute and a
// private shadow copy of SparseMemory. A core calls pre_commit() just
// before it architecturally executes an instruction and post_commit()
// just after; the oracle executes the same instruction against its
// shadow state and any mismatch — PC, destination registers, NZCV,
// memory write-back — aborts the run with a precise divergence report.
//
// Invariants are wired through the same object: components hold a
// `const check::CheckContext*` (null when checking is off) and assert
// structural properties with VIREC_CHECK(). The checks are compiled in
// always; a null/disabled context reduces each to one pointer test.
#pragma once

#include <array>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/inst.hpp"
#include "isa/semantics.hpp"
#include "kasm/program.hpp"
#include "mem/memory_system.hpp"

namespace virec::check {

/// Thrown on any divergence from the reference model or any violated
/// structural invariant. what() carries the full report.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& report)
      : std::runtime_error(report) {}
};

class CheckContext {
 public:
  /// Invariant-only context (no lockstep oracle). Used by unit tests
  /// that poke single components.
  CheckContext() = default;

  /// Full context: invariants plus a lockstep oracle over @p program.
  /// The shadow memory is captured lazily at the first pre_commit(), so
  /// attaching after workload init — or after a checkpoint restore —
  /// observes the correct functional state.
  CheckContext(const kasm::Program& program, mem::MemorySystem& ms,
               u32 num_cores, u32 threads_per_core);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Commits compared so far (diagnostic; 0 for invariant-only use).
  u64 commits_checked() const { return commits_; }

  /// Called by a core immediately before isa::execute() at commit.
  /// Verifies the committing PC and runs the reference model one step.
  void pre_commit(u32 core, int tid, const isa::Inst& inst, u64 pc,
                  Cycle cycle, isa::RegisterFileIO& rf, u8 nzcv);

  /// Called immediately after isa::execute() (and the manager's
  /// on_commit). Compares destination registers through the manager's
  /// read path — so fills/spills are exercised end to end — plus NZCV,
  /// the store's memory write-back, and the successor PC.
  void post_commit(u32 core, int tid, const isa::Inst& inst, u64 pc,
                   Cycle cycle, isa::RegisterFileIO& rf, u8 nzcv,
                   const isa::ExecResult& res);

  /// Invariant failure: throws CheckError with source location. Static
  /// so VIREC_CHECK works from any component without extra includes.
  [[noreturn]] static void fail(const char* file, int line, const char* cond,
                                const std::string& what);

 private:
  struct ThreadShadow {
    bool synced = false;   ///< registers captured from the real RF
    bool halted = false;
    bool has_pc = false;
    u64 expected_pc = 0;
    u8 nzcv = 0;
    std::array<u64, isa::kNumAllocatableRegs> regs{};
    // Reference result of the instruction between pre and post.
    isa::ExecResult ref;
    bool ref_is_store = false;
    Addr ref_addr = 0;
    u32 ref_size = 0;
  };

  ThreadShadow& shadow(u32 core, int tid) {
    return shadows_[core * threads_per_core_ + static_cast<u32>(tid)];
  }
  [[noreturn]] void diverge(u32 core, int tid, const isa::Inst& inst, u64 pc,
                            Cycle cycle, const std::string& detail) const;

  bool enabled_ = true;
  bool oracle_ = false;
  const kasm::Program* program_ = nullptr;
  mem::MemorySystem* ms_ = nullptr;
  u32 threads_per_core_ = 0;
  u64 commits_ = 0;
  bool shadow_mem_captured_ = false;
  mem::SparseMemory shadow_mem_;
  std::vector<ThreadShadow> shadows_;
};

}  // namespace virec::check

/// Hard invariant: always compiled, active when a CheckContext is
/// attached and enabled. @p ctx is a `const check::CheckContext*`
/// (may be null), @p what a std::string with diagnostic detail.
#define VIREC_CHECK(ctx, cond, what)                                       \
  do {                                                                     \
    if ((ctx) != nullptr && (ctx)->enabled() && !(cond)) {                 \
      ::virec::check::CheckContext::fail(__FILE__, __LINE__, #cond,        \
                                         (what));                          \
    }                                                                      \
  } while (0)
