#include "check/check.hpp"

#include <sstream>

#include "isa/disasm.hpp"

namespace virec::check {

namespace {

// RegisterFileIO view over one thread's shadow register array. The
// reference interpreter keeps every context resident — no fills, no
// spills — which is exactly what makes it a useful oracle for the
// register-caching schemes.
class ShadowRegFile final : public isa::RegisterFileIO {
 public:
  explicit ShadowRegFile(std::array<u64, isa::kNumAllocatableRegs>& regs)
      : regs_(regs) {}
  u64 read_reg(int, isa::RegId reg) override { return regs_[reg]; }
  void write_reg(int, isa::RegId reg, u64 value) override {
    regs_[reg] = value;
  }

 private:
  std::array<u64, isa::kNumAllocatableRegs>& regs_;
};

std::string hex(u64 v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

}  // namespace

CheckContext::CheckContext(const kasm::Program& program,
                           mem::MemorySystem& ms, u32 num_cores,
                           u32 threads_per_core)
    : oracle_(true),
      program_(&program),
      ms_(&ms),
      threads_per_core_(threads_per_core),
      shadows_(num_cores * threads_per_core) {}

void CheckContext::fail(const char* file, int line, const char* cond,
                        const std::string& what) {
  std::ostringstream os;
  os << "VIREC_CHECK failed: " << cond << "\n  at " << file << ":" << line
     << "\n  " << what;
  throw CheckError(os.str());
}

void CheckContext::diverge(u32 core, int tid, const isa::Inst& inst, u64 pc,
                           Cycle cycle, const std::string& detail) const {
  std::ostringstream os;
  os << "oracle divergence at cycle " << cycle << ", core " << core
     << ", thread " << tid << "\n  pc " << pc << ": " << isa::disasm(inst)
     << "\n  " << detail;
  throw CheckError(os.str());
}

void CheckContext::pre_commit(u32 core, int tid, const isa::Inst& inst,
                              u64 pc, Cycle cycle, isa::RegisterFileIO& rf,
                              u8 nzcv) {
  if (!oracle_ || !enabled_) return;
  // Lazy capture: functional memory only mutates at commits, and every
  // commit in the system flows through pre_commit in observed order, so
  // the state at the first call is a consistent snapshot.
  if (!shadow_mem_captured_) {
    shadow_mem_ = ms_->memory();
    shadow_mem_captured_ = true;
  }
  ThreadShadow& t = shadow(core, tid);
  if (t.halted) {
    diverge(core, tid, inst, pc, cycle, "commit after reference halt");
  }
  if (!t.synced) {
    // First commit of this thread (run start or checkpoint restore):
    // adopt the architectural register state through the manager's
    // functional read path, then track it independently from here on.
    for (u32 r = 0; r < isa::kNumAllocatableRegs; ++r) {
      t.regs[r] = rf.read_reg(tid, static_cast<isa::RegId>(r));
    }
    t.nzcv = nzcv;
    t.synced = true;
  } else if (t.has_pc && pc != t.expected_pc) {
    diverge(core, tid, inst, pc, cycle,
            "PC expected " + std::to_string(t.expected_pc) + ", committing " +
                std::to_string(pc));
  }

  ShadowRegFile srf(t.regs);
  t.ref_is_store = isa::is_store(inst.op);
  t.ref_addr = 0;
  t.ref_size = 0;
  if (isa::is_mem(inst.op)) {
    t.ref_addr = isa::compute_mem_addr(inst, tid, srf);
    t.ref_size = isa::mem_size(inst.op);
    // Loads from the reserved register region read state the context
    // managers own (spilled contexts, sysregs); the reference does not
    // model spilling, so refresh those bytes from the real memory —
    // still pre-commit, hence the same epoch as the shadow.
    if (isa::is_load(inst.op) && ms_->in_reg_region(t.ref_addr)) {
      shadow_mem_.write(t.ref_addr, t.ref_size,
                        ms_->memory().read(t.ref_addr, t.ref_size));
    }
  }
  t.ref = isa::execute(inst, pc, tid, srf, shadow_mem_, t.nzcv);
}

void CheckContext::post_commit(u32 core, int tid, const isa::Inst& inst,
                               u64 pc, Cycle cycle, isa::RegisterFileIO& rf,
                               u8 nzcv, const isa::ExecResult& res) {
  if (!oracle_ || !enabled_) return;
  ThreadShadow& t = shadow(core, tid);
  if (res.next_pc != t.ref.next_pc) {
    diverge(core, tid, inst, pc, cycle,
            "next PC: expected " + std::to_string(t.ref.next_pc) + ", got " +
                std::to_string(res.next_pc));
  }
  if (res.halted != t.ref.halted) {
    diverge(core, tid, inst, pc, cycle,
            std::string("halt: expected ") + (t.ref.halted ? "yes" : "no") +
                ", got " + (res.halted ? "yes" : "no"));
  }
  if (nzcv != t.nzcv) {
    diverge(core, tid, inst, pc, cycle,
            "NZCV: expected " + hex(t.nzcv) + ", got " + hex(nzcv));
  }
  const isa::RegList dsts = isa::dst_regs(inst);
  for (u32 i = 0; i < dsts.count; ++i) {
    const isa::RegId r = dsts.regs[i];
    const u64 actual = rf.read_reg(tid, r);
    if (actual != t.regs[r]) {
      diverge(core, tid, inst, pc, cycle,
              std::string(isa::reg_name(r)) + ": expected " + hex(t.regs[r]) +
                  ", got " + hex(actual));
    }
  }
  // Stores: compare the bytes the core actually wrote to functional
  // memory against the reference write-back, at the reference address.
  // Reg-region stores are skipped — the managers legitimately rewrite
  // that region when spilling contexts.
  if (t.ref_is_store && !ms_->in_reg_region(t.ref_addr)) {
    const u64 expected = shadow_mem_.read(t.ref_addr, t.ref_size);
    const u64 actual = ms_->memory().read(t.ref_addr, t.ref_size);
    if (actual != expected) {
      diverge(core, tid, inst, pc, cycle,
              "store[" + hex(t.ref_addr) + "," +
                  std::to_string(t.ref_size) + "B]: expected " +
                  hex(expected) + ", got " + hex(actual));
    }
  }
  t.expected_pc = t.ref.next_pc;
  t.has_pc = true;
  t.halted = t.ref.halted;
  ++commits_;
}

}  // namespace virec::check
