#include "check/repro.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "isa/disasm.hpp"
#include "kasm/assembler.hpp"

namespace virec::check {

std::string write_repro(const HarnessSpec& spec,
                        const kasm::Program& program) {
  std::ostringstream os;
  os << "// repro scheme " << sim::scheme_name(spec.scheme) << "\n";
  os << "// repro policy " << core::policy_name(spec.policy) << "\n";
  os << "// repro phys-regs " << spec.phys_regs << "\n";
  os << "// repro threads " << spec.threads << "\n";
  os << "// repro max-cycles " << spec.max_cycles << "\n";
  if (spec.seed != 0) os << "// repro seed " << spec.seed << "\n";
  // Only recorded when set: older repro files (and the default mode)
  // run with skipping on.
  if (spec.no_skip) os << "// repro no-skip 1\n";
  for (u64 pc = 0; pc < program.size(); ++pc) {
    os << isa::disasm(program.at(pc)) << "\n";
  }
  return os.str();
}

Repro parse_repro(const std::string& text) {
  Repro repro;
  std::istringstream is(text);
  std::string line;
  std::string body;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string slash, tag, key;
    if (line.rfind("// repro ", 0) == 0) {
      ls >> slash >> tag >> key;
      std::string value;
      ls >> value;
      if (value.empty()) {
        throw std::invalid_argument("repro header missing value: " + line);
      }
      if (key == "scheme") {
        repro.spec.scheme = sim::parse_scheme(value);
      } else if (key == "policy") {
        repro.spec.policy = core::parse_policy(value);
      } else if (key == "phys-regs") {
        repro.spec.phys_regs = static_cast<u32>(std::stoul(value));
      } else if (key == "threads") {
        repro.spec.threads = static_cast<u32>(std::stoul(value));
      } else if (key == "max-cycles") {
        repro.spec.max_cycles = std::stoull(value);
      } else if (key == "seed") {
        repro.spec.seed = std::stoull(value);
      } else if (key == "no-skip") {
        repro.spec.no_skip = std::stoull(value) != 0;
      } else {
        throw std::invalid_argument("unknown repro header key: " + key);
      }
    } else {
      body += line;
      body += '\n';
    }
  }
  repro.program = kasm::assemble(body);
  if (repro.program.empty()) {
    throw std::invalid_argument("repro contains no instructions");
  }
  return repro;
}

Repro load_repro(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open repro file " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return parse_repro(os.str());
}

}  // namespace virec::check
