// Single-core checked execution harness: run one program on a chosen
// scheme/policy configuration with the lockstep oracle and all hard
// invariants attached. This is the engine behind apps/virec_fuzz.cpp
// and `virec-sim --replay`.
#pragma once

#include <string>

#include "common/types.hpp"
#include "core/replacement_policy.hpp"
#include "kasm/program.hpp"
#include "sim/system_config.hpp"

namespace virec::check {

struct HarnessSpec {
  sim::Scheme scheme = sim::Scheme::kViReC;
  core::PolicyKind policy = core::PolicyKind::kLRC;
  /// Physical RF entries for the ViReC/NSF schemes. A deliberately
  /// small default keeps every register crossing the fill/spill path.
  u32 phys_regs = 6;
  u32 threads = 2;
  /// Cycle budget; exceeding it reports a timeout, not a failure
  /// (shrinking can produce non-terminating loops).
  Cycle max_cycles = 2'000'000;
  /// Generator seed, carried for provenance in repro files (0 = n/a).
  u64 seed = 0;
  /// Disable event-driven cycle skipping and step every cycle (the
  /// oracle checks commits identically either way; skipping only
  /// changes wall-clock).
  bool no_skip = false;
};

struct HarnessResult {
  bool ok = false;
  bool timed_out = false;
  std::string message;       ///< divergence / invariant report when !ok
  Cycle cycles = 0;
  u64 instructions = 0;
  u64 commits_checked = 0;
};

/// Execute @p program under @p spec with the oracle + invariants armed.
/// All threads start with the arena base register pointing at the
/// seeded arena (see check::seed_arena).
HarnessResult run_checked(const kasm::Program& program,
                          const HarnessSpec& spec);

/// Negative self-test: run @p program on the ViReC datapath and corrupt
/// the tag store mid-run (swap two entries' tags without fixing the
/// map). Returns true iff the check layer catches it.
bool tag_bug_detected(const kasm::Program& program, const HarnessSpec& spec);

}  // namespace virec::check
