#include "check/progen.hpp"

#include <limits>
#include <stdexcept>
#include <string>

#include "common/rng.hpp"
#include "kasm/builder.hpp"

namespace virec::check {

namespace {

using kasm::ProgramBuilder;
using kasm::X;

// Operand pool for the division edge class: every value that makes
// AArch64 and naive host semantics disagree, plus a random filler.
u64 edge_value(Xorshift128& rng) {
  switch (rng.next_below(6)) {
    case 0: return 0;
    case 1: return 1;
    case 2: return ~u64{0};  // -1
    case 3: return u64{1} << 63;  // INT64_MIN
    case 4: return static_cast<u64>(std::numeric_limits<i64>::max());
    default: return rng.next();
  }
}

// Shift amounts around the 64-bit mask boundary.
i64 edge_shift(Xorshift128& rng) {
  switch (rng.next_below(7)) {
    case 0: return 0;
    case 1: return 1;
    case 2: return 63;
    case 3: return 64;
    case 4: return 65;
    case 5: return 127;
    default: return static_cast<i64>(rng.next_below(256));
  }
}

}  // namespace

kasm::Program random_program(u64 seed, const ProgenOptions& opts) {
  Xorshift128 rng(seed);
  ProgramBuilder b;
  auto reg = [&] { return X(static_cast<int>(rng.next_below(12))); };
  auto arena_off = [&] {
    return static_cast<i64>(rng.next_below(kArenaWords) * 8);
  };

  // Seed registers with deterministic junk.
  for (int r = 0; r < 12; ++r) {
    b.mov_imm(X(r), static_cast<i64>(rng.next_below(1 << 20)));
  }
  b.mov_imm(X(kLoopReg), opts.loop_iters);
  b.label("loop");
  u32 skip_id = 0;
  const u64 num_cases = opts.edge_ops ? 16 : 10;
  for (u32 i = 0; i < opts.body_len; ++i) {
    switch (rng.next_below(num_cases)) {
      case 0:
        b.add(reg(), reg(), reg());
        break;
      case 1:
        b.sub(reg(), reg(), reg());
        break;
      case 2:
        b.mul(reg(), reg(), reg());
        break;
      case 3:
        b.eor(reg(), reg(), reg());
        break;
      case 4:
        b.add_imm(reg(), reg(), static_cast<i64>(rng.next_below(1000)));
        break;
      case 5:
        b.madd(reg(), reg(), reg(), reg());
        break;
      case 6:
        b.ldr(reg(), X(kArenaBaseReg), arena_off());
        break;
      case 7:
        b.str(reg(), X(kArenaBaseReg), arena_off());
        break;
      case 8:
        b.lsr_imm(reg(), reg(), static_cast<i64>(rng.next_below(8)));
        break;
      case 9: {
        // Forward conditional skip over one instruction.
        const std::string label = "skip" + std::to_string(skip_id++);
        b.cmp_imm(reg(), static_cast<i64>(rng.next_below(512)));
        b.b_cond(rng.next_below(2) ? kasm::Cond::kLt : kasm::Cond::kGe,
                 label);
        b.orr_imm(reg(), reg(), 1);
        b.label(label);
        break;
      }

      // --- edge-operand classes (edge_ops only) ---
      case 10: {
        // Signed/unsigned division with adversarial divisors (0, -1,
        // INT64_MIN, ...), materialised so INT64_MIN / -1 is reachable.
        const kasm::RegId rm = reg();
        b.mov_imm(rm, static_cast<i64>(edge_value(rng)));
        if (rng.next_below(2)) {
          const kasm::RegId rn = reg();
          b.mov_imm(rn, static_cast<i64>(edge_value(rng)));
          b.sdiv(reg(), rn, rm);
        } else {
          const kasm::RegId rd = reg();
          b.udiv(rd, reg(), rm);
        }
        break;
      }
      case 11: {
        // Register-amount shifts with amounts straddling the &63 mask.
        const kasm::RegId rm = reg();
        b.mov_imm(rm, edge_shift(rng));
        const u64 kind = rng.next_below(3);
        const kasm::RegId rd = reg();
        const kasm::RegId rn = reg();
        switch (kind) {
          case 0: b.lsl(rd, rn, rm); break;
          case 1: b.lsr(rd, rn, rm); break;
          default: b.asr(rd, rn, rm); break;
        }
        break;
      }
      case 12: {
        // Halfword insert at every lane, including all-ones / zero.
        const kasm::RegId rd = reg();
        const u64 pick = rng.next_below(4);
        const i64 imm16 = pick == 0   ? 0xffff
                          : pick == 1 ? 0
                                      : static_cast<i64>(
                                            rng.next_below(0x10000));
        b.movk(rd, imm16, static_cast<int>(rng.next_below(4)));
        break;
      }
      case 13: {
        const kasm::RegId rd = reg();
        b.mvn(rd, reg());
        break;
      }
      case 14: {
        // Sub-word loads: w/sw/h/b widths against the arena.
        static constexpr isa::Op kLoads[] = {isa::Op::kLdrw, isa::Op::kLdrsw,
                                             isa::Op::kLdrh, isa::Op::kLdrb};
        const isa::Op op = kLoads[rng.next_below(4)];
        const kasm::RegId rd = reg();
        b.ldr(rd, X(kArenaBaseReg), arena_off(), op);
        break;
      }
      default: {
        // Sub-word stores.
        static constexpr isa::Op kStores[] = {isa::Op::kStrw, isa::Op::kStrh,
                                              isa::Op::kStrb};
        const isa::Op op = kStores[rng.next_below(3)];
        const kasm::RegId rd = reg();
        b.str(rd, X(kArenaBaseReg), arena_off(), op);
        break;
      }
    }
  }
  b.sub_imm(X(kLoopReg), X(kLoopReg), 1);
  b.cbnz(X(kLoopReg), "loop");
  b.halt();
  return b.build();
}

void seed_arena(mem::SparseMemory& memory) {
  for (u64 w = 0; w < kArenaWords; ++w) {
    memory.write_u64(kArenaBase + w * 8, w * 0x9e37u + 7);
  }
}

namespace {

kasm::Program validated_or_empty(std::vector<isa::Inst> code) {
  kasm::Program p(std::move(code), {});
  try {
    p.validate();
  } catch (const std::invalid_argument&) {
    return kasm::Program{};
  }
  return p;
}

}  // namespace

kasm::Program drop_instruction(const kasm::Program& program, u64 index) {
  if (index >= program.size()) return kasm::Program{};
  std::vector<isa::Inst> code;
  code.reserve(program.size() - 1);
  for (u64 pc = 0; pc < program.size(); ++pc) {
    if (pc == index) continue;
    isa::Inst inst = program.at(pc);
    // Targets past the gap shift down by one; a branch *to* the dropped
    // instruction falls through to its successor (same index post-drop).
    if (inst.target > static_cast<i64>(index)) --inst.target;
    code.push_back(inst);
  }
  return validated_or_empty(std::move(code));
}

kasm::Program halve_loop_iters(const kasm::Program& program, int loop_reg) {
  std::vector<isa::Inst> code(program.code());
  for (isa::Inst& inst : code) {
    if (inst.op == isa::Op::kMovImm &&
        inst.rd == static_cast<isa::RegId>(loop_reg) && inst.imm > 1) {
      inst.imm /= 2;
      return validated_or_empty(std::move(code));
    }
  }
  return kasm::Program{};
}

}  // namespace virec::check
