// Fluent programmatic assembler. Workload kernels are written against
// this API; labels may be referenced before they are bound and are
// resolved at build() time.
//
//   ProgramBuilder b;
//   b.mov_imm(X(5), 0);
//   b.label("loop");
//   b.ldr(X(6), X(2), X(5), 3);          // ldr x6, [x2, x5, lsl #3]
//   b.add_imm(X(5), X(5), 1);
//   b.cmp(X(5), X(4));
//   b.b_cond(Cond::kLt, "loop");
//   b.halt();
//   Program p = b.build();
#pragma once

#include <map>
#include <string>
#include <vector>

#include "kasm/program.hpp"

namespace virec::kasm {

using isa::Cond;
using isa::MemMode;
using isa::Op;
using isa::RegId;

/// Convenience register constructor: X(5) == x5.
constexpr RegId X(int n) { return static_cast<RegId>(n); }
inline constexpr RegId XZR = isa::kZeroReg;

class ProgramBuilder {
 public:
  /// Bind @p name to the next emitted instruction.
  ProgramBuilder& label(const std::string& name);

  // --- ALU ---
  ProgramBuilder& add(RegId rd, RegId rn, RegId rm);
  ProgramBuilder& sub(RegId rd, RegId rn, RegId rm);
  ProgramBuilder& mul(RegId rd, RegId rn, RegId rm);
  ProgramBuilder& udiv(RegId rd, RegId rn, RegId rm);
  ProgramBuilder& sdiv(RegId rd, RegId rn, RegId rm);
  ProgramBuilder& and_(RegId rd, RegId rn, RegId rm);
  ProgramBuilder& orr(RegId rd, RegId rn, RegId rm);
  ProgramBuilder& eor(RegId rd, RegId rn, RegId rm);
  ProgramBuilder& lsl(RegId rd, RegId rn, RegId rm);
  ProgramBuilder& lsr(RegId rd, RegId rn, RegId rm);
  ProgramBuilder& asr(RegId rd, RegId rn, RegId rm);
  ProgramBuilder& madd(RegId rd, RegId rn, RegId rm, RegId ra);

  ProgramBuilder& add_imm(RegId rd, RegId rn, i64 imm);
  ProgramBuilder& sub_imm(RegId rd, RegId rn, i64 imm);
  ProgramBuilder& and_imm(RegId rd, RegId rn, i64 imm);
  ProgramBuilder& orr_imm(RegId rd, RegId rn, i64 imm);
  ProgramBuilder& eor_imm(RegId rd, RegId rn, i64 imm);
  ProgramBuilder& lsl_imm(RegId rd, RegId rn, i64 imm);
  ProgramBuilder& lsr_imm(RegId rd, RegId rn, i64 imm);
  ProgramBuilder& asr_imm(RegId rd, RegId rn, i64 imm);

  ProgramBuilder& mov(RegId rd, RegId rm);
  ProgramBuilder& mov_imm(RegId rd, i64 imm);
  ProgramBuilder& movk(RegId rd, i64 imm16, int lane);
  ProgramBuilder& mvn(RegId rd, RegId rm);

  // --- FP (unified register file, f64 bit patterns) ---
  ProgramBuilder& fadd(RegId rd, RegId rn, RegId rm);
  ProgramBuilder& fsub(RegId rd, RegId rn, RegId rm);
  ProgramBuilder& fmul(RegId rd, RegId rn, RegId rm);
  ProgramBuilder& fdiv(RegId rd, RegId rn, RegId rm);
  ProgramBuilder& fmadd(RegId rd, RegId rn, RegId rm, RegId ra);
  ProgramBuilder& scvtf(RegId rd, RegId rn);
  ProgramBuilder& fcvtzs(RegId rd, RegId rn);

  // --- Compare & branch ---
  ProgramBuilder& cmp(RegId rn, RegId rm);
  ProgramBuilder& cmp_imm(RegId rn, i64 imm);
  ProgramBuilder& b(const std::string& target);
  ProgramBuilder& b_cond(Cond cond, const std::string& target);
  ProgramBuilder& cbz(RegId rn, const std::string& target);
  ProgramBuilder& cbnz(RegId rn, const std::string& target);
  ProgramBuilder& bl(const std::string& target);
  ProgramBuilder& ret(RegId rn = isa::kNoReg);

  // --- Memory ---
  /// ldr rd, [rn, #imm]  (set op for the other widths).
  ProgramBuilder& ldr(RegId rd, RegId rn, i64 imm = 0, Op op = Op::kLdr);
  /// ldr rd, [rn, rm, lsl #shift]
  ProgramBuilder& ldr(RegId rd, RegId rn, RegId rm, u8 shift,
                      Op op = Op::kLdr);
  /// ldr rd, [rn], #imm (post-index) or [rn, #imm]! (pre-index).
  ProgramBuilder& ldr_post(RegId rd, RegId rn, i64 imm, Op op = Op::kLdr);
  ProgramBuilder& ldr_pre(RegId rd, RegId rn, i64 imm, Op op = Op::kLdr);
  ProgramBuilder& str(RegId rd, RegId rn, i64 imm = 0, Op op = Op::kStr);
  ProgramBuilder& str(RegId rd, RegId rn, RegId rm, u8 shift,
                      Op op = Op::kStr);
  ProgramBuilder& str_post(RegId rd, RegId rn, i64 imm, Op op = Op::kStr);
  ProgramBuilder& str_pre(RegId rd, RegId rn, i64 imm, Op op = Op::kStr);

  ProgramBuilder& nop();
  ProgramBuilder& halt();

  /// Append a raw instruction (escape hatch for tests).
  ProgramBuilder& emit(isa::Inst inst);

  /// Number of instructions emitted so far.
  u64 size() const { return code_.size(); }

  /// Resolve all label references and return the finished program.
  /// Throws std::invalid_argument on unresolved labels.
  Program build() const;

 private:
  ProgramBuilder& alu(Op op, RegId rd, RegId rn, RegId rm);
  ProgramBuilder& alu_imm(Op op, RegId rd, RegId rn, i64 imm);
  ProgramBuilder& branch(Op op, Cond cond, RegId rn,
                         const std::string& target);
  ProgramBuilder& memop(Op op, RegId rd, RegId rn, RegId rm, u8 shift,
                        i64 imm, MemMode mode);

  std::vector<isa::Inst> code_;
  std::map<std::string, u64> labels_;
  // Pending label fixups: instruction index -> label name.
  std::vector<std::pair<u64, std::string>> fixups_;
};

}  // namespace virec::kasm
