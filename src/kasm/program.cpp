#include "kasm/program.hpp"

#include <sstream>
#include <stdexcept>

#include "isa/disasm.hpp"

namespace virec::kasm {

Program::Program(std::vector<isa::Inst> code,
                 std::map<std::string, u64> labels)
    : code_(std::move(code)), labels_(std::move(labels)) {}

u64 Program::label(const std::string& name) const {
  auto it = labels_.find(name);
  if (it == labels_.end()) {
    throw std::out_of_range("Program: unknown label '" + name + "'");
  }
  return it->second;
}

void Program::validate() const {
  bool has_halt = false;
  for (std::size_t i = 0; i < code_.size(); ++i) {
    const isa::Inst& inst = code_[i];
    if (isa::is_branch(inst.op) && inst.op != isa::Op::kRet) {
      if (inst.target < 0 ||
          static_cast<u64>(inst.target) >= code_.size()) {
        throw std::invalid_argument(
            "Program: branch at @" + std::to_string(i) +
            " targets out-of-range index " + std::to_string(inst.target));
      }
    }
    if (inst.op == isa::Op::kHalt) has_halt = true;
  }
  if (!code_.empty() && !has_halt) {
    throw std::invalid_argument("Program: no halt instruction");
  }
}

std::string Program::listing() const {
  // Invert the label map for annotation.
  std::map<u64, std::vector<std::string>> at;
  for (const auto& [name, pc] : labels_) at[pc].push_back(name);
  std::ostringstream os;
  for (std::size_t i = 0; i < code_.size(); ++i) {
    if (auto it = at.find(i); it != at.end()) {
      for (const std::string& name : it->second) os << name << ":\n";
    }
    os << "  @" << i << "\t" << isa::disasm(code_[i]) << '\n';
  }
  return os.str();
}

}  // namespace virec::kasm
