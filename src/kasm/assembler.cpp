#include "kasm/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "kasm/builder.hpp"

namespace virec::kasm {

namespace {

using isa::Inst;
using isa::kNoReg;
using isa::kZeroReg;

std::string strip_comment(const std::string& line) {
  // "//" anywhere; ";" and "#"-at-start-of-token comments. '#' also
  // introduces immediates, so only treat it as a comment when it is the
  // first non-space character of the line.
  std::string out = line;
  if (auto pos = out.find("//"); pos != std::string::npos) out.erase(pos);
  if (auto pos = out.find(';'); pos != std::string::npos) out.erase(pos);
  const auto first = out.find_first_not_of(" \t");
  if (first != std::string::npos && out[first] == '#') out.clear();
  return out;
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Split operand list on commas that are not inside brackets.
std::vector<std::string> split_operands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (char c : s) {
    if (c == '[') ++depth;
    if (c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!trim(cur).empty()) out.push_back(trim(cur));
  return out;
}

struct LineCtx {
  int line;
  [[noreturn]] void fail(const std::string& msg) const {
    throw AsmError(line, msg);
  }
};

isa::RegId parse_reg(const std::string& tok, const LineCtx& ctx) {
  const std::string t = lower(trim(tok));
  if (t == "xzr") return kZeroReg;
  if (t.size() >= 2 && t[0] == 'x') {
    int n = 0;
    for (std::size_t i = 1; i < t.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(t[i]))) {
        ctx.fail("bad register '" + tok + "'");
      }
      n = n * 10 + (t[i] - '0');
    }
    if (n >= 0 && n <= 30) return static_cast<isa::RegId>(n);
  }
  ctx.fail("bad register '" + tok + "'");
}

i64 parse_imm(const std::string& tok, const LineCtx& ctx) {
  std::string t = trim(tok);
  if (!t.empty() && t[0] == '#') t = t.substr(1);
  if (t.empty()) ctx.fail("empty immediate");
  try {
    std::size_t used = 0;
    const i64 v = std::stoll(t, &used, 0);
    if (used != t.size()) ctx.fail("bad immediate '" + tok + "'");
    return v;
  } catch (const std::exception&) {
    ctx.fail("bad immediate '" + tok + "'");
  }
}

bool is_imm(const std::string& tok) {
  const std::string t = trim(tok);
  return !t.empty() && (t[0] == '#' || t[0] == '-' ||
                        std::isdigit(static_cast<unsigned char>(t[0])));
}

struct MemOperand {
  isa::RegId rn = kNoReg;
  isa::RegId rm = kNoReg;
  u8 shift = 0;
  i64 imm = 0;
  isa::MemMode mode = isa::MemMode::kOffset;
};

/// Parse "[xN]", "[xN, #imm]", "[xN, #imm]!", "[xN], #imm",
/// "[xN, xM]", "[xN, xM, lsl #s]".
MemOperand parse_mem(const std::string& op1, const std::string* op2,
                     const LineCtx& ctx) {
  MemOperand m;
  std::string t = trim(op1);
  if (t.empty() || t[0] != '[') ctx.fail("expected '[' in memory operand");
  const bool pre = t.size() >= 2 && t.back() == '!';
  if (pre) t.pop_back();
  const auto close = t.find(']');
  if (close == std::string::npos) ctx.fail("missing ']' in memory operand");
  const std::string inside = t.substr(1, close - 1);
  const std::string after = trim(t.substr(close + 1));
  if (!after.empty()) ctx.fail("garbage after ']'");

  const std::vector<std::string> parts = split_operands(inside);
  if (parts.empty()) ctx.fail("empty memory operand");
  m.rn = parse_reg(parts[0], ctx);

  if (op2 != nullptr) {
    // "[xN], #imm" post-index.
    if (parts.size() != 1) ctx.fail("post-index with complex base");
    if (pre) ctx.fail("cannot combine pre- and post-index");
    m.imm = parse_imm(*op2, ctx);
    m.mode = isa::MemMode::kPostIndex;
    return m;
  }
  if (parts.size() == 1) {
    m.mode = pre ? isa::MemMode::kPreIndex : isa::MemMode::kOffset;
    return m;
  }
  if (is_imm(parts[1])) {
    if (parts.size() != 2) ctx.fail("bad memory operand");
    m.imm = parse_imm(parts[1], ctx);
    m.mode = pre ? isa::MemMode::kPreIndex : isa::MemMode::kOffset;
    return m;
  }
  // Register offset.
  if (pre) ctx.fail("pre-index with register offset unsupported");
  m.rm = parse_reg(parts[1], ctx);
  m.mode = isa::MemMode::kRegOffset;
  if (parts.size() == 3) {
    std::istringstream ss(lower(trim(parts[2])));
    std::string kw;
    ss >> kw;
    if (kw != "lsl") ctx.fail("expected 'lsl' shift");
    std::string amount;
    ss >> amount;
    m.shift = static_cast<u8>(parse_imm(amount, ctx));
  } else if (parts.size() > 3) {
    ctx.fail("bad memory operand");
  }
  return m;
}

const std::map<std::string, isa::Op>& mem_ops() {
  static const std::map<std::string, isa::Op> ops = {
      {"ldr", isa::Op::kLdr},     {"ldrw", isa::Op::kLdrw},
      {"ldrsw", isa::Op::kLdrsw}, {"ldrh", isa::Op::kLdrh},
      {"ldrb", isa::Op::kLdrb},   {"str", isa::Op::kStr},
      {"strw", isa::Op::kStrw},   {"strh", isa::Op::kStrh},
      {"strb", isa::Op::kStrb},
  };
  return ops;
}

const std::map<std::string, isa::Cond>& cond_map() {
  static const std::map<std::string, isa::Cond> conds = {
      {"eq", isa::Cond::kEq}, {"ne", isa::Cond::kNe}, {"lt", isa::Cond::kLt},
      {"le", isa::Cond::kLe}, {"gt", isa::Cond::kGt}, {"ge", isa::Cond::kGe},
      {"lo", isa::Cond::kLo}, {"ls", isa::Cond::kLs}, {"hi", isa::Cond::kHi},
      {"hs", isa::Cond::kHs}, {"al", isa::Cond::kAl},
  };
  return conds;
}

struct PendingBranch {
  u64 index;
  std::string target;
  int line;
};

}  // namespace

Program assemble(const std::string& source) {
  std::vector<Inst> code;
  std::map<std::string, u64> labels;
  std::vector<PendingBranch> pending;

  std::istringstream in(source);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const LineCtx ctx{line_no};
    std::string line = trim(strip_comment(raw));
    if (line.empty()) continue;

    // Labels (possibly multiple, possibly followed by an instruction).
    while (true) {
      const auto colon = line.find(':');
      if (colon == std::string::npos) break;
      const std::string name = trim(line.substr(0, colon));
      if (name.empty()) ctx.fail("empty label");
      if (name.find(' ') != std::string::npos) break;  // ':' inside operands
      if (!labels.emplace(name, code.size()).second) {
        ctx.fail("duplicate label '" + name + "'");
      }
      line = trim(line.substr(colon + 1));
      if (line.empty()) break;
    }
    if (line.empty()) continue;

    // Mnemonic + operands.
    const auto space = line.find_first_of(" \t");
    const std::string mnemonic = lower(
        space == std::string::npos ? line : line.substr(0, space));
    const std::string rest =
        space == std::string::npos ? "" : trim(line.substr(space + 1));
    const std::vector<std::string> ops = split_operands(rest);

    auto want = [&](std::size_t n) {
      if (ops.size() != n) {
        ctx.fail(mnemonic + ": expected " + std::to_string(n) +
                 " operands, got " + std::to_string(ops.size()));
      }
    };
    auto branch_target = [&](const std::string& tok) -> i64 {
      const std::string t = trim(tok);
      if (!t.empty() && t[0] == '@') {
        return parse_imm(t.substr(1), ctx);
      }
      pending.push_back(PendingBranch{code.size(), t, line_no});
      return -1;
    };

    Inst inst;

    if (mnemonic == "nop") {
      want(0);
      inst.op = isa::Op::kNop;
    } else if (mnemonic == "halt") {
      want(0);
      inst.op = isa::Op::kHalt;
    } else if (mnemonic == "ret") {
      inst.op = isa::Op::kRet;
      if (ops.size() == 1) inst.rn = parse_reg(ops[0], ctx);
      else want(0);
    } else if (auto it = mem_ops().find(mnemonic); it != mem_ops().end()) {
      if (ops.size() != 2 && ops.size() != 3) {
        ctx.fail(mnemonic + ": expected 2-3 operands");
      }
      inst.op = it->second;
      inst.rd = parse_reg(ops[0], ctx);
      const std::string* post = ops.size() == 3 ? &ops[2] : nullptr;
      const MemOperand m = parse_mem(ops[1], post, ctx);
      inst.rn = m.rn;
      inst.rm = m.rm;
      inst.shift = m.shift;
      inst.imm = m.imm;
      inst.mem_mode = m.mode;
    } else if (mnemonic == "b") {
      want(1);
      inst.op = isa::Op::kB;
      inst.target = branch_target(ops[0]);
    } else if (mnemonic == "bl") {
      want(1);
      inst.op = isa::Op::kBl;
      inst.target = branch_target(ops[0]);
    } else if (mnemonic.size() > 2 && mnemonic.rfind("b.", 0) == 0) {
      want(1);
      const auto cit = cond_map().find(mnemonic.substr(2));
      if (cit == cond_map().end()) ctx.fail("bad condition " + mnemonic);
      inst.op = isa::Op::kBcond;
      inst.cond = cit->second;
      inst.target = branch_target(ops[0]);
    } else if (mnemonic == "cbz" || mnemonic == "cbnz") {
      want(2);
      inst.op = mnemonic == "cbz" ? isa::Op::kCbz : isa::Op::kCbnz;
      inst.rn = parse_reg(ops[0], ctx);
      inst.target = branch_target(ops[1]);
    } else if (mnemonic == "cmp") {
      want(2);
      inst.rn = parse_reg(ops[0], ctx);
      if (is_imm(ops[1])) {
        inst.op = isa::Op::kCmpImm;
        inst.imm = parse_imm(ops[1], ctx);
      } else {
        inst.op = isa::Op::kCmp;
        inst.rm = parse_reg(ops[1], ctx);
      }
    } else if (mnemonic == "mov") {
      want(2);
      inst.rd = parse_reg(ops[0], ctx);
      if (is_imm(ops[1])) {
        inst.op = isa::Op::kMovImm;
        inst.imm = parse_imm(ops[1], ctx);
      } else {
        inst.op = isa::Op::kMov;
        inst.rm = parse_reg(ops[1], ctx);
      }
    } else if (mnemonic == "movk") {
      if (ops.size() != 2 && ops.size() != 3) ctx.fail("movk: bad operands");
      inst.op = isa::Op::kMovk;
      inst.rd = parse_reg(ops[0], ctx);
      inst.imm = parse_imm(ops[1], ctx);
      if (ops.size() == 3) {
        std::istringstream ss(lower(trim(ops[2])));
        std::string kw, amount;
        ss >> kw >> amount;
        if (kw != "lsl") ctx.fail("movk: expected lsl");
        const i64 bits = parse_imm(amount, ctx);
        if (bits % 16 != 0 || bits < 0 || bits > 48) {
          ctx.fail("movk: shift must be 0/16/32/48");
        }
        inst.imm2 = static_cast<u8>(bits / 16);
      }
    } else if (mnemonic == "mvn") {
      want(2);
      inst.op = isa::Op::kMvn;
      inst.rd = parse_reg(ops[0], ctx);
      inst.rm = parse_reg(ops[1], ctx);
    } else if (mnemonic == "madd" || mnemonic == "fmadd") {
      want(4);
      inst.op = mnemonic == "madd" ? isa::Op::kMadd : isa::Op::kFmadd;
      inst.rd = parse_reg(ops[0], ctx);
      inst.rn = parse_reg(ops[1], ctx);
      inst.rm = parse_reg(ops[2], ctx);
      inst.ra = parse_reg(ops[3], ctx);
    } else if (mnemonic == "scvtf" || mnemonic == "fcvtzs") {
      want(2);
      inst.op = mnemonic == "scvtf" ? isa::Op::kScvtf : isa::Op::kFcvtzs;
      inst.rd = parse_reg(ops[0], ctx);
      inst.rn = parse_reg(ops[1], ctx);
    } else {
      // Three-operand ALU/FP ops with reg or immediate third operand.
      struct AluEntry {
        isa::Op reg;
        isa::Op imm;  // kNop when no immediate form exists
      };
      static const std::map<std::string, AluEntry> alu = {
          {"add", {isa::Op::kAdd, isa::Op::kAddImm}},
          {"sub", {isa::Op::kSub, isa::Op::kSubImm}},
          {"mul", {isa::Op::kMul, isa::Op::kNop}},
          {"udiv", {isa::Op::kUdiv, isa::Op::kNop}},
          {"sdiv", {isa::Op::kSdiv, isa::Op::kNop}},
          {"and", {isa::Op::kAnd, isa::Op::kAndImm}},
          {"orr", {isa::Op::kOrr, isa::Op::kOrrImm}},
          {"eor", {isa::Op::kEor, isa::Op::kEorImm}},
          {"lsl", {isa::Op::kLsl, isa::Op::kLslImm}},
          {"lsr", {isa::Op::kLsr, isa::Op::kLsrImm}},
          {"asr", {isa::Op::kAsr, isa::Op::kAsrImm}},
          {"fadd", {isa::Op::kFadd, isa::Op::kNop}},
          {"fsub", {isa::Op::kFsub, isa::Op::kNop}},
          {"fmul", {isa::Op::kFmul, isa::Op::kNop}},
          {"fdiv", {isa::Op::kFdiv, isa::Op::kNop}},
      };
      const auto ait = alu.find(mnemonic);
      if (ait == alu.end()) ctx.fail("unknown mnemonic '" + mnemonic + "'");
      want(3);
      inst.rd = parse_reg(ops[0], ctx);
      inst.rn = parse_reg(ops[1], ctx);
      if (is_imm(ops[2])) {
        if (ait->second.imm == isa::Op::kNop) {
          ctx.fail(mnemonic + ": no immediate form");
        }
        inst.op = ait->second.imm;
        inst.imm = parse_imm(ops[2], ctx);
      } else {
        inst.op = ait->second.reg;
        inst.rm = parse_reg(ops[2], ctx);
      }
    }
    code.push_back(inst);
  }

  for (const PendingBranch& pb : pending) {
    const auto it = labels.find(pb.target);
    if (it == labels.end()) {
      throw AsmError(pb.line, "unresolved label '" + pb.target + "'");
    }
    code[pb.index].target = static_cast<i64>(it->second);
  }

  Program program(std::move(code), std::move(labels));
  program.validate();
  return program;
}

}  // namespace virec::kasm
